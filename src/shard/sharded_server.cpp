#include "shard/sharded_server.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dgnn::shard {

int32_t
RouteShard(const PartitionBook& book, const serve::Request& request)
{
    // State follows the source endpoint (the node whose memory/embedding
    // row the interaction updates); node-blind requests fold by id so a
    // blind stream still spreads across the cluster deterministically.
    return book.ShardOf(request.src >= 0 ? request.src : request.id);
}

std::vector<std::pair<int64_t, int64_t>>
TraceEdges(const std::vector<serve::Request>& requests)
{
    std::vector<std::pair<int64_t, int64_t>> edges;
    edges.reserve(requests.size());
    for (const serve::Request& r : requests) {
        if (r.src >= 0 && r.dst >= 0) {
            edges.emplace_back(r.src, r.dst);
        }
    }
    return edges;
}

namespace {

PartitionBook
BuildBook(int64_t num_nodes, const std::vector<serve::Request>& requests,
          const ShardedOptions& options)
{
    switch (options.partitioner) {
      case PartitionerKind::kHash:
        return HashPartition(num_nodes, options.num_shards,
                             options.partition_seed);
      case PartitionerKind::kGreedy:
        return GreedyEdgeCutPartition(num_nodes, options.num_shards,
                                      TraceEdges(requests),
                                      options.partition_seed);
    }
    DGNN_CHECK(false, "unknown partitioner kind");
    return HashPartition(num_nodes, options.num_shards,
                         options.partition_seed);
}

}  // namespace

ShardedReport
ServeSharded(
    models::DgnnModel& model, sim::ExecMode mode, int64_t num_nodes,
    const std::vector<serve::Request>& requests,
    const std::function<std::unique_ptr<serve::BatchPolicy>()>& make_policy,
    const ShardedOptions& options)
{
    DGNN_CHECK(options.num_shards >= 1, "need >= 1 shard, got ",
               options.num_shards);
    const PartitionBook book = BuildBook(num_nodes, requests, options);

    std::vector<std::vector<serve::Request>> sub_streams(
        static_cast<size_t>(options.num_shards));
    for (const serve::Request& r : requests) {
        sub_streams[static_cast<size_t>(RouteShard(book, r))].push_back(r);
    }

    ShardedReport report;
    report.model = model.Name();
    report.partitioner = ToString(options.partitioner);
    report.interconnect = ToString(options.interconnect.kind);
    report.num_shards = options.num_shards;
    report.edge_cut = EdgeCut(book, TraceEdges(requests));
    report.balance_factor = book.BalanceFactor();
    if (!requests.empty() && requests.back().arrival_us > 0.0) {
        report.offered_qps = static_cast<double>(requests.size()) * 1e6 /
                             requests.back().arrival_us;
    }

    const sim::Topology topology =
        sim::Topology::ScaleOut(options.num_shards, options.interconnect);
    sim::SimTime makespan_sum_us = 0.0;
    for (int32_t shard = 0; shard < options.num_shards; ++shard) {
        const std::vector<serve::Request>& stream =
            sub_streams[static_cast<size_t>(shard)];
        if (stream.empty()) {
            report.shards.emplace_back();
            continue;
        }
        serve::ModelSession session(model, mode, options.num_neighbors,
                                    options.cache_config);
        std::unique_ptr<serve::BatchPolicy> policy = make_policy();
        ExchangeConfig exchange_config;
        exchange_config.row_bytes = model.CacheRowBytes();
        exchange_config.rows_mutable = model.CacheRowsMutable();
        ShardExchangeHook hook(book, shard, exchange_config);

        serve::ServerOptions server = options.server;
        sim::RuntimeConfig runtime_config =
            server.runtime_config.value_or(sim::RuntimeConfig{});
        runtime_config.topology = topology;
        runtime_config.device_index = shard;
        server.runtime_config = runtime_config;
        server.shard_hook = &hook;

        report.shards.push_back(
            serve::ServeRequests(session, *policy, stream, server));
        const serve::ServingReport& shard_report = report.shards.back();
        report.requests += shard_report.requests;
        report.exchange += shard_report.exchange;
        report.latency.Merge(shard_report.latency);
        report.makespan_us =
            std::max(report.makespan_us, shard_report.makespan_us);
        makespan_sum_us += shard_report.makespan_us;
    }

    if (report.makespan_us > 0.0) {
        report.sustained_qps =
            static_cast<double>(report.requests) * 1e6 / report.makespan_us;
    }
    if (makespan_sum_us > 0.0) {
        report.comm_tax_pct =
            100.0 * report.exchange.link_us / makespan_sum_us;
    }
    return report;
}

}  // namespace dgnn::shard
