#include "shard/exchange.hpp"

#include <utility>

#include "support/check.hpp"

namespace dgnn::shard {

int64_t
ExchangePlan::RemoteRows() const
{
    int64_t total = 0;
    for (const int64_t rows : rows_per_shard) {
        total += rows;
    }
    return total;
}

ExchangePlan
BuildExchangePlan(const PartitionBook& book, int32_t self_shard,
                  std::vector<int64_t>& nodes)
{
    DGNN_CHECK(self_shard >= 0 && self_shard < book.NumShards(),
               "self shard ", self_shard, " outside the book's ",
               book.NumShards(), " shards");
    ExchangePlan plan;
    plan.rows_per_shard.assign(static_cast<size_t>(book.NumShards()), 0);
    size_t keep = 0;
    for (const int64_t node : nodes) {
        const int32_t owner = book.ShardOf(node);
        if (owner == self_shard) {
            nodes[keep++] = node;
            ++plan.local_rows;
        } else {
            ++plan.rows_per_shard[static_cast<size_t>(owner)];
        }
    }
    nodes.resize(keep);
    return plan;
}

ShardExchangeHook::ShardExchangeHook(const PartitionBook& book,
                                     int32_t self_shard,
                                     ExchangeConfig config)
    : book_(book), self_shard_(self_shard), config_(std::move(config))
{
    DGNN_CHECK(config_.row_bytes >= 0, "negative exchange row width ",
               config_.row_bytes);
    staged_.rows_per_shard.assign(static_cast<size_t>(book.NumShards()), 0);
}

int64_t
ShardExchangeHook::ClaimRemote(std::vector<int64_t>& nodes)
{
    staged_ = BuildExchangePlan(book_, self_shard_, nodes);
    return staged_.RemoteRows();
}

serve::ExchangeCost
ShardExchangeHook::IssueExchange(sim::Runtime& runtime)
{
    serve::ExchangeCost cost;
    cost.local_rows = staged_.local_rows;
    if (staged_.Empty()) {
        // Nothing remote: ZERO runtime operations (1-shard bit-identity).
        totals_ += cost;
        return cost;
    }

    const int64_t slot_index = round_ % kSlots;
    const std::string slot = std::to_string(slot_index);
    const double link_before = runtime.PeerLinkTime();
    const int64_t bytes_per_row =
        config_.row_bytes * (config_.rows_mutable ? 2 : 1);

    // Back-fence: the slot's previous unpack must finish before the pulls
    // overwrite the staging buffer (the serving executors' own fences order
    // this too under the pipelined executor, but the serial executor's
    // blocking D2H only joins the host with the copy stream).
    if (slot_used_[slot_index]) {
        runtime.StreamWaitEvent(sim::StreamId::kCopy,
                                unpack_done_[slot_index]);
    }
    for (int32_t peer = 0; peer < book_.NumShards(); ++peer) {
        const int64_t rows = staged_.rows_per_shard[static_cast<size_t>(peer)];
        if (rows == 0) {
            continue;
        }
        const int64_t bytes = rows * bytes_per_row;
        sim::AccessScope scope(
            runtime, sim::AccessSet{{"peer_store#" + std::to_string(peer)},
                                    {"exchange_in#" + slot}});
        (void)runtime.PeerCopyAsync(peer, bytes, "shard_exchange_pull");
        cost.remote_rows += rows;
        cost.bytes += bytes;
        ++cost.messages;
    }
    const sim::Event exchange_ready =
        runtime.RecordEvent(sim::StreamId::kCopy);
    if (config_.install_fence) {
        runtime.StreamWaitEvent(sim::StreamId::kCompute, exchange_ready);
    }
    {
        sim::AccessScope scope(
            runtime,
            sim::AccessSet{{"exchange_in#" + slot},
                           {"dev_state#" + std::to_string(self_shard_)}});
        sim::KernelDesc unpack;
        unpack.name = "shard_unpack";
        unpack.flops = cost.remote_rows * config_.row_bytes / 4;
        unpack.bytes = 2 * cost.remote_rows * config_.row_bytes;
        unpack.parallel_items = cost.remote_rows;
        unpack.irregular = true;
        runtime.Launch(unpack);
    }
    unpack_done_[slot_index] = runtime.RecordEvent(sim::StreamId::kCompute);
    slot_used_[slot_index] = true;

    cost.link_us = runtime.PeerLinkTime() - link_before;
    ++round_;
    totals_ += cost;
    return cost;
}

}  // namespace dgnn::shard
