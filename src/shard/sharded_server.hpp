#pragma once

/// @file
/// Scale-out serving: one arrival trace partitioned across N device shards.
/// A PartitionBook (built from the trace's interaction edges) assigns every
/// node's state to one shard; each request routes to the shard owning its
/// source endpoint; each shard runs the UNMODIFIED serving loop (its own
/// ModelSession + cache + policy + runtime on a topology node) with a
/// ShardExchangeHook pulling the batch's remote rows over the peer links.
/// Shards serve their sub-streams independently — the simulated analogue of
/// data-parallel serving replicas with partitioned state — so the cluster's
/// sustained throughput is total completions over the SLOWEST shard's
/// makespan, and the exchange volume (priced per interconnect) is the tax
/// the partitioner's edge cut levies on it.
///
/// With num_shards == 1 the book owns everything, the hook never touches
/// the runtime, and the single shard's run reproduces the unsharded
/// serve::ServeRequests timeline bit-for-bit.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/device_cache.hpp"
#include "models/dgnn_model.hpp"
#include "serve/batch_policy.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "shard/exchange.hpp"
#include "shard/partition_book.hpp"
#include "sim/topology.hpp"

namespace dgnn::shard {

/// Scale-out knobs on top of the per-shard server options.
struct ShardedOptions {
    int32_t num_shards = 1;
    PartitionerKind partitioner = PartitionerKind::kHash;
    /// Peer-link class between every shard pair (PCIe vs NVLink-class).
    sim::LinkSpec interconnect = sim::LinkSpec::PcieGen4();
    uint64_t partition_seed = 1;
    /// Per-shard serving knobs. runtime_config and shard_hook are
    /// OVERRIDDEN per shard (topology node + exchange hook); everything
    /// else passes through.
    serve::ServerOptions server;
    /// Per-shard session cache (each shard caches only the rows it owns).
    cache::DeviceCacheConfig cache_config;
    /// Sampler fan-out forwarded to each shard's session.
    int64_t num_neighbors = 20;
};

/// Cluster-level merge of the per-shard serving runs.
struct ShardedReport {
    std::string model;
    std::string partitioner;
    std::string interconnect;
    int32_t num_shards = 1;

    int64_t requests = 0;
    /// Trace interactions whose endpoints live on different shards.
    int64_t edge_cut = 0;
    /// Largest shard over the ideal size (1.0 = perfectly balanced).
    double balance_factor = 1.0;
    double offered_qps = 0.0;
    /// Total completions over the slowest shard's makespan — the cluster
    /// rate an open-loop load balancer would sustain.
    double sustained_qps = 0.0;
    /// Slowest shard's serving makespan, us.
    sim::SimTime makespan_us = 0.0;
    /// Exchange totals summed over shards.
    serve::ExchangeCost exchange;
    /// Peer-link occupancy as a share of total shard serving time, percent
    /// — the cross-shard communication tax.
    double comm_tax_pct = 0.0;
    /// End-to-end latency merged across shards.
    core::LatencyHistogram latency;

    /// Per-shard runs, indexed by shard id (empty sub-streams yield empty
    /// reports).
    std::vector<serve::ServingReport> shards;
};

/// Routes @p requests (relative arrival timestamps, sorted) across
/// @p options.num_shards shards of @p model's node state and serves every
/// sub-stream. @p num_nodes sizes the partition book (the model/dataset
/// node-id space); @p make_policy builds one fresh policy per shard.
/// Deterministic for fixed inputs.
[[nodiscard]] ShardedReport ServeSharded(
    models::DgnnModel& model, sim::ExecMode mode, int64_t num_nodes,
    const std::vector<serve::Request>& requests,
    const std::function<std::unique_ptr<serve::BatchPolicy>()>& make_policy,
    const ShardedOptions& options);

/// The routing rule: requests follow their source endpoint's owner
/// (node-blind requests fold by id). Exposed for tests.
[[nodiscard]] int32_t RouteShard(const PartitionBook& book,
                                 const serve::Request& request);

/// The trace's interaction edges (both endpoints known), for the greedy
/// partitioner and for edge-cut accounting. Exposed for tests.
[[nodiscard]] std::vector<std::pair<int64_t, int64_t>> TraceEdges(
    const std::vector<serve::Request>& requests);

}  // namespace dgnn::shard
