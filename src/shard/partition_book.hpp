#pragma once

/// @file
/// Node-to-shard partitioning for scale-out serving. A PartitionBook maps
/// every node of a dataset to exactly one shard (the shard OWNS the node's
/// mutable state: TGN memory row, JODIE embedding, TGAT feature rows).
/// Two seeded, deterministic partitioners:
///
///   * HashPartition          — splitmix64 of (node ^ seed) mod shards;
///                              balance is near-perfect, edge locality is
///                              whatever chance provides
///   * GreedyEdgeCutPartition — LDG-style streaming greedy: nodes placed in
///                              id order on the shard holding most of their
///                              already-placed neighbors, discounted by a
///                              capacity penalty so shards stay balanced
///
/// Both are bit-deterministic in (num_nodes, num_shards, seed[, edges]) —
/// the same seed always reproduces the same assignment, which the shard
/// determinism suite asserts. EdgeCut counts the interactions whose
/// endpoints land on different shards: the direct predictor of the
/// alltoall exchange volume the serving bench measures.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dgnn::shard {

/// Which partitioner produced an assignment.
enum class PartitionerKind {
    kHash,
    kGreedy,
};

const char* ToString(PartitionerKind kind);

/// Immutable node -> shard assignment. Every node id in [0, NumNodes())
/// belongs to exactly one shard in [0, NumShards()).
class PartitionBook {
  public:
    /// @p assignment[i] is the owning shard of node i; every entry must lie
    /// in [0, num_shards).
    PartitionBook(int32_t num_shards, std::vector<int32_t> assignment);

    int32_t NumShards() const { return num_shards_; }
    int64_t NumNodes() const
    {
        return static_cast<int64_t>(assignment_.size());
    }

    /// Owning shard of @p node. Nodes outside the book (negative ids from
    /// node-blind generators, or ids past the dataset) fold deterministically
    /// onto a shard so routing never dead-ends.
    [[nodiscard]] int32_t ShardOf(int64_t node) const;

    /// Nodes owned by each shard, indexed by shard id.
    [[nodiscard]] std::vector<int64_t> ShardSizes() const;

    /// Largest shard relative to the ideal NumNodes()/NumShards() size.
    /// 1.0 = perfectly balanced; 2.0 = the worst shard carries twice its
    /// fair share (and its cache is half as effective per node).
    [[nodiscard]] double BalanceFactor() const;

    /// Deterministic text round-trip ("shards k\nnodes n\n" + one
    /// assignment per line).
    [[nodiscard]] std::string Serialize() const;
    [[nodiscard]] static PartitionBook Deserialize(const std::string& text);

    bool operator==(const PartitionBook& other) const
    {
        return num_shards_ == other.num_shards_ &&
               assignment_ == other.assignment_;
    }

  private:
    int32_t num_shards_;
    std::vector<int32_t> assignment_;
};

/// Seeded hash assignment: splitmix64(node ^ seed) mod shards.
[[nodiscard]] PartitionBook HashPartition(int64_t num_nodes, int32_t num_shards,
                            uint64_t seed);

/// LDG-style streaming greedy edge-cut minimizer. Nodes are placed in id
/// order; each goes to the shard maximizing
///   |already-placed neighbors on shard| * (1 - size/capacity)
/// with capacity = ceil(num_nodes/num_shards) * 1.1 slack. Ties (including
/// the no-placed-neighbor case, where every score is 0) fall back to the
/// node's HashPartition shard, unless that shard is full — then the lowest
/// non-full shard. Deterministic in all arguments.
[[nodiscard]] PartitionBook GreedyEdgeCutPartition(
    int64_t num_nodes, int32_t num_shards,
    const std::vector<std::pair<int64_t, int64_t>>& edges, uint64_t seed);

/// Interactions in @p edges whose endpoints live on different shards.
/// Self-loops and out-of-book endpoints count through ShardOf like any
/// other node.
[[nodiscard]] int64_t EdgeCut(const PartitionBook& book,
                const std::vector<std::pair<int64_t, int64_t>>& edges);

}  // namespace dgnn::shard
