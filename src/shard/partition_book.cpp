#include "shard/partition_book.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "support/check.hpp"

namespace dgnn::shard {

namespace {

/// splitmix64 finalizer — the standard 64-bit avalanche mix.
uint64_t
SplitMix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

int32_t
HashShard(int64_t node, int32_t num_shards, uint64_t seed)
{
    return static_cast<int32_t>(
        SplitMix64(static_cast<uint64_t>(node) ^ seed) %
        static_cast<uint64_t>(num_shards));
}

}  // namespace

const char*
ToString(PartitionerKind kind)
{
    switch (kind) {
      case PartitionerKind::kHash:
        return "hash";
      case PartitionerKind::kGreedy:
        return "greedy";
    }
    return "?";
}

PartitionBook::PartitionBook(int32_t num_shards,
                             std::vector<int32_t> assignment)
    : num_shards_(num_shards), assignment_(std::move(assignment))
{
    DGNN_CHECK(num_shards_ >= 1, "partition book needs >= 1 shard, got ",
               num_shards_);
    for (size_t i = 0; i < assignment_.size(); ++i) {
        DGNN_CHECK(assignment_[i] >= 0 && assignment_[i] < num_shards_,
                   "node ", i, " assigned to out-of-range shard ",
                   assignment_[i]);
    }
}

int32_t
PartitionBook::ShardOf(int64_t node) const
{
    if (node >= 0 && node < NumNodes()) {
        return assignment_[static_cast<size_t>(node)];
    }
    // Out-of-book fold: deterministic, id-only (no seed is stored), so
    // node-blind requests (src = -1) and past-the-dataset ids still route.
    const int64_t shards = num_shards_;
    return static_cast<int32_t>(((node % shards) + shards) % shards);
}

std::vector<int64_t>
PartitionBook::ShardSizes() const
{
    std::vector<int64_t> sizes(static_cast<size_t>(num_shards_), 0);
    for (const int32_t shard : assignment_) {
        ++sizes[static_cast<size_t>(shard)];
    }
    return sizes;
}

double
PartitionBook::BalanceFactor() const
{
    if (assignment_.empty()) {
        return 1.0;
    }
    const std::vector<int64_t> sizes = ShardSizes();
    const int64_t largest = *std::max_element(sizes.begin(), sizes.end());
    const double ideal = static_cast<double>(NumNodes()) /
                         static_cast<double>(num_shards_);
    return static_cast<double>(largest) / ideal;
}

std::string
PartitionBook::Serialize() const
{
    std::ostringstream out;
    out << "shards " << num_shards_ << "\n";
    out << "nodes " << NumNodes() << "\n";
    for (const int32_t shard : assignment_) {
        out << shard << "\n";
    }
    return out.str();
}

PartitionBook
PartitionBook::Deserialize(const std::string& text)
{
    std::istringstream in(text);
    std::string tag;
    int32_t num_shards = 0;
    int64_t num_nodes = 0;
    in >> tag >> num_shards;
    DGNN_CHECK(tag == "shards", "partition book header expected 'shards', ",
               "got '", tag, "'");
    in >> tag >> num_nodes;
    DGNN_CHECK(tag == "nodes", "partition book header expected 'nodes', ",
               "got '", tag, "'");
    DGNN_CHECK(num_nodes >= 0, "negative node count ", num_nodes);
    std::vector<int32_t> assignment(static_cast<size_t>(num_nodes), 0);
    for (int64_t i = 0; i < num_nodes; ++i) {
        DGNN_CHECK(static_cast<bool>(in >> assignment[static_cast<size_t>(i)]),
                   "partition book truncated at node ", i);
    }
    return PartitionBook(num_shards, std::move(assignment));
}

PartitionBook
HashPartition(int64_t num_nodes, int32_t num_shards, uint64_t seed)
{
    DGNN_CHECK(num_nodes >= 0, "negative node count ", num_nodes);
    DGNN_CHECK(num_shards >= 1, "need >= 1 shard, got ", num_shards);
    std::vector<int32_t> assignment(static_cast<size_t>(num_nodes));
    for (int64_t node = 0; node < num_nodes; ++node) {
        assignment[static_cast<size_t>(node)] =
            HashShard(node, num_shards, seed);
    }
    return PartitionBook(num_shards, std::move(assignment));
}

PartitionBook
GreedyEdgeCutPartition(int64_t num_nodes, int32_t num_shards,
                       const std::vector<std::pair<int64_t, int64_t>>& edges,
                       uint64_t seed)
{
    DGNN_CHECK(num_nodes >= 0, "negative node count ", num_nodes);
    DGNN_CHECK(num_shards >= 1, "need >= 1 shard, got ", num_shards);

    // CSR adjacency over the in-book endpoints (out-of-book endpoints carry
    // no state rows to co-locate, so they do not steer placement).
    std::vector<int64_t> degree(static_cast<size_t>(num_nodes), 0);
    for (const auto& [u, v] : edges) {
        if (u >= 0 && u < num_nodes && v >= 0 && v < num_nodes && u != v) {
            ++degree[static_cast<size_t>(u)];
            ++degree[static_cast<size_t>(v)];
        }
    }
    std::vector<int64_t> offset(static_cast<size_t>(num_nodes) + 1, 0);
    for (int64_t node = 0; node < num_nodes; ++node) {
        offset[static_cast<size_t>(node) + 1] =
            offset[static_cast<size_t>(node)] +
            degree[static_cast<size_t>(node)];
    }
    std::vector<int64_t> adjacency(static_cast<size_t>(offset.back()));
    std::vector<int64_t> cursor = offset;
    for (const auto& [u, v] : edges) {
        if (u >= 0 && u < num_nodes && v >= 0 && v < num_nodes && u != v) {
            adjacency[static_cast<size_t>(cursor[static_cast<size_t>(u)]++)] =
                v;
            adjacency[static_cast<size_t>(cursor[static_cast<size_t>(v)]++)] =
                u;
        }
    }

    const int64_t capacity = std::max<int64_t>(
        1, static_cast<int64_t>(
               static_cast<double>((num_nodes + num_shards - 1) / num_shards) *
               1.1) +
               1);
    std::vector<int64_t> sizes(static_cast<size_t>(num_shards), 0);
    std::vector<int32_t> assignment(static_cast<size_t>(num_nodes), -1);
    std::vector<int64_t> placed_neighbors(static_cast<size_t>(num_shards), 0);

    for (int64_t node = 0; node < num_nodes; ++node) {
        std::fill(placed_neighbors.begin(), placed_neighbors.end(), 0);
        for (int64_t i = offset[static_cast<size_t>(node)];
             i < offset[static_cast<size_t>(node) + 1]; ++i) {
            const int32_t owner =
                assignment[static_cast<size_t>(adjacency[static_cast<size_t>(
                    i)])];
            if (owner >= 0) {
                ++placed_neighbors[static_cast<size_t>(owner)];
            }
        }
        int32_t best = -1;
        double best_score = 0.0;
        for (int32_t shard = 0; shard < num_shards; ++shard) {
            if (sizes[static_cast<size_t>(shard)] >= capacity) {
                continue;
            }
            const double penalty =
                1.0 - static_cast<double>(sizes[static_cast<size_t>(shard)]) /
                          static_cast<double>(capacity);
            const double score =
                static_cast<double>(
                    placed_neighbors[static_cast<size_t>(shard)]) *
                penalty;
            // Strict > keeps ties on the lowest shard id — deterministic.
            if (best < 0 || score > best_score) {
                best = shard;
                best_score = score;
            }
        }
        if (best_score == 0.0) {
            // No placed neighbors (or all-full penalty): fall back to the
            // hash shard so unconnected prefixes do not pile onto shard 0.
            const int32_t hashed = HashShard(node, num_shards, seed);
            if (sizes[static_cast<size_t>(hashed)] < capacity) {
                best = hashed;
            }
        }
        DGNN_CHECK(best >= 0, "greedy partitioner found no open shard for ",
                   "node ", node);
        assignment[static_cast<size_t>(node)] = best;
        ++sizes[static_cast<size_t>(best)];
    }
    return PartitionBook(num_shards, std::move(assignment));
}

int64_t
EdgeCut(const PartitionBook& book,
        const std::vector<std::pair<int64_t, int64_t>>& edges)
{
    int64_t cut = 0;
    for (const auto& [u, v] : edges) {
        if (book.ShardOf(u) != book.ShardOf(v)) {
            ++cut;
        }
    }
    return cut;
}

}  // namespace dgnn::shard
