#pragma once

/// @file
/// The alltoall exchange of sharded serving. Each dispatched batch's unique
/// state nodes split into local rows (resolved by the shard's own cache)
/// and remote rows owned by peers; the remote rows are pulled per-batch
/// over the topology's peer links (ShardExchangeHook plugs into the serving
/// loop through the serve::BatchShardHook seam). The schedule per batch:
///
///   back-fence   StreamWaitEvent(copy, prior unpack of this slot) — the
///                staging slot (round % 2) must drain before reuse
///   pulls        one PeerCopyAsync per owning peer, ascending shard id,
///                priced through that peer's link model; mutable-state
///                models (TGN memory, JODIE embeddings) pay 2x bytes for
///                the piggybacked return delta
///   fence        StreamWaitEvent(compute, exchange_ready) — the deletable
///                edge of the hazard mutation wall (analysis::SyncEdge::
///                kExchangeFence)
///   unpack       one irregular kernel scattering the staged rows into the
///                shard's device state
///
/// Every operation is annotated for the hazard checker with the
/// peer_store#<peer> / exchange_in#<slot> / dev_state#<self> resources.
/// A batch with no remote rows issues ZERO runtime operations — the
/// 1-shard bit-identity contract of the seam.

#include <cstdint>
#include <string>
#include <vector>

#include "serve/shard_hook.hpp"
#include "shard/partition_book.hpp"
#include "sim/runtime.hpp"

namespace dgnn::shard {

/// How the exchange prices a batch's remote rows.
struct ExchangeConfig {
    /// Width of one state row, bytes (models::DgnnModel::CacheRowBytes()).
    int64_t row_bytes = 0;
    /// Mutable rows pay the piggybacked return delta: 2x bytes per pull.
    bool rows_mutable = false;
    /// Install the exchange->unpack fence. ALWAYS true in real serving;
    /// exposed only so the hazard mutation wall can delete the edge and
    /// assert the checker catches the resulting RAW.
    bool install_fence = true;
};

/// Rows a batch needs from each peer shard. Built per batch by the claim;
/// consumed by the next IssueExchange.
struct ExchangePlan {
    /// Rows owed by each shard, indexed by shard id (self entry stays 0).
    std::vector<int64_t> rows_per_shard;
    /// Rows the batch resolves locally (the complement of the claim).
    int64_t local_rows = 0;

    [[nodiscard]] int64_t RemoteRows() const;
    [[nodiscard]] bool Empty() const { return RemoteRows() == 0; }
};

/// Splits @p nodes (sorted unique) against @p book: nodes owned by
/// @p self_shard stay in @p nodes (order preserved); the rest are removed
/// and counted into the returned plan.
[[nodiscard]] ExchangePlan BuildExchangePlan(const PartitionBook& book,
                                             int32_t self_shard,
                                             std::vector<int64_t>& nodes);

/// The serving-loop hook: claims each batch's remote nodes and issues the
/// priced exchange on the shard's runtime. Stateful (staging-slot rotation,
/// run totals); create one per shard per run. With 1 shard every claim is
/// empty and the hook never touches the runtime.
class ShardExchangeHook final : public serve::BatchShardHook {
  public:
    /// @p book is borrowed and must outlive the hook.
    ShardExchangeHook(const PartitionBook& book, int32_t self_shard,
                      ExchangeConfig config);

    int64_t ClaimRemote(std::vector<int64_t>& nodes) override;
    serve::ExchangeCost IssueExchange(sim::Runtime& runtime) override;

    /// Exchange cost accumulated over every issued batch.
    const serve::ExchangeCost& Totals() const { return totals_; }
    /// Batches that issued a (non-empty) exchange.
    int64_t Rounds() const { return round_; }

  private:
    static constexpr int64_t kSlots = 2;

    const PartitionBook& book_;
    int32_t self_shard_;
    ExchangeConfig config_;
    ExchangePlan staged_;
    int64_t round_ = 0;
    serve::ExchangeCost totals_;
    /// Unpack-completion event per staging slot (the back-fence source).
    sim::Event unpack_done_[kSlots];
    bool slot_used_[kSlots] = {false, false};
};

}  // namespace dgnn::shard
