#pragma once

/// @file
/// Error-handling primitives shared by every dgnn subsystem.
///
/// Follows the gem5 fatal()/panic() split: DGNN_CHECK is for conditions a
/// *user* of the library can violate (bad arguments, shape mismatches) and
/// throws dgnn::Error; DGNN_ASSERT is for internal invariants whose failure
/// indicates a library bug and aborts in debug builds.

#include <cassert>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dgnn {

/// Exception type thrown on user-facing precondition violations.
class Error : public std::runtime_error {
  public:
    explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

/// Builds an error message by streaming arbitrary parts together.
template <typename... Parts>
std::string BuildMessage(const Parts&... parts)
{
    std::ostringstream oss;
    (oss << ... << parts);
    return oss.str();
}

[[noreturn]] void ThrowError(const std::string& message, const char* file, int line);

}  // namespace detail

}  // namespace dgnn

/// Validates a user-facing precondition; throws dgnn::Error on failure.
#define DGNN_CHECK(cond, ...)                                                        \
    do {                                                                             \
        if (!(cond)) {                                                               \
            ::dgnn::detail::ThrowError(                                              \
                ::dgnn::detail::BuildMessage("check failed: " #cond " ",             \
                                             __VA_ARGS__),                           \
                __FILE__, __LINE__);                                                 \
        }                                                                            \
    } while (false)

/// Internal invariant; failure indicates a dgnn bug (panic-style).
#define DGNN_ASSERT(cond) assert(cond)
