#include "support/check.hpp"

namespace dgnn::detail {

void
ThrowError(const std::string& message, const char* file, int line)
{
    std::ostringstream oss;
    oss << message << " (" << file << ":" << line << ")";
    throw Error(oss.str());
}

}  // namespace dgnn::detail
