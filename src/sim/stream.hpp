#pragma once

/// @file
/// An in-order execution queue on a device (the CUDA-stream analogue).
/// The simulator only needs the stream's ready time: the moment its last
/// enqueued operation completes.

#include <string>

#include "sim/sim_time.hpp"

namespace dgnn::sim {

/// FIFO work queue bound to one device.
class Stream {
  public:
    explicit Stream(std::string name) : name_(std::move(name)) {}

    const std::string& Name() const { return name_; }

    /// Time at which all previously enqueued work has finished.
    SimTime ReadyTime() const { return ready_us_; }

    /// Enqueues work starting no earlier than @p earliest_start lasting
    /// @p duration; returns the [start, end) interval actually scheduled.
    struct Interval {
        SimTime start;
        SimTime end;
    };
    Interval Enqueue(SimTime earliest_start, SimTime duration);

    /// Resets the queue to idle at t=0.
    void Reset() { ready_us_ = 0.0; }

  private:
    std::string name_;
    SimTime ready_us_ = 0.0;
};

}  // namespace dgnn::sim
