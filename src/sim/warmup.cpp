#include "sim/warmup.hpp"

#include "support/check.hpp"

namespace dgnn::sim {

namespace {
constexpr double kBytesPerMb = 1024.0 * 1024.0;
}  // namespace

OneTimeWarmup
ComputeOneTimeWarmup(const DeviceSpec& spec, const PcieLink& link, int64_t weight_bytes)
{
    DGNN_CHECK(weight_bytes >= 0, "negative weight bytes ", weight_bytes);
    OneTimeWarmup w;
    w.context_init_us = spec.context_init_us;
    const double weight_mb = static_cast<double>(weight_bytes) / kBytesPerMb;
    w.model_init_us = spec.model_init_fixed_us + spec.model_init_per_mb_us * weight_mb;
    w.weight_transfer_us =
        spec.kind == DeviceKind::kGpu ? link.TransferTime(weight_bytes) : 0.0;
    return w;
}

PerRunWarmup
ComputePerRunWarmup(const DeviceSpec& spec, int64_t working_set_bytes)
{
    DGNN_CHECK(working_set_bytes >= 0, "negative working set ", working_set_bytes);
    PerRunWarmup w;
    const double mb = static_cast<double>(working_set_bytes) / kBytesPerMb;
    w.alloc_us = spec.alloc_fixed_us + spec.alloc_per_mb_us * mb;
    return w;
}

}  // namespace dgnn::sim
