#pragma once

/// @file
/// N-device cluster topology: the scale-out generalization of the single
/// CPU+GPU pair the runtime was born with. A Topology is a set of nodes —
/// each one CPU + one GPU joined by a host link — plus a peer-link matrix
/// pricing device<->device transfers (PCIe peer-to-peer vs NVLink-class).
/// One sim::Runtime models ONE node of the topology (RuntimeConfig.topology
/// + device_index); the sharded serving layer (src/shard/) builds one
/// runtime per shard and prices cross-shard traffic through the peer links.
///
/// Bit-identity contract: SinglePair() reproduces the historical default
/// RuntimeConfig exactly (Xeon Gold 6226R + RTX A6000 over PCIe gen4 x16),
/// so a topology-carrying runtime with one device is indistinguishable from
/// a config that never mentions a topology.

#include <cstdint>
#include <vector>

#include "sim/device_spec.hpp"
#include "sim/sim_time.hpp"

namespace dgnn::sim {

/// Interconnect class of one directed link.
enum class LinkKind {
    kPcie,    ///< PCIe peer-to-peer (through the host root complex)
    kNvlink,  ///< NVLink-class direct device fabric
};

const char* ToString(LinkKind kind);

/// One directed link's analytic parameters (same model as PcieLink: fixed
/// per-transfer latency plus bytes / bandwidth, one contended queue).
struct LinkSpec {
    LinkKind kind = LinkKind::kPcie;
    double bandwidth_gbps = 12.0;
    SimTime latency_us = 10.0;

    /// PCIe 4.0 x16 with realistic pinned-memory efficiency — identical to
    /// PcieLink::Gen4x16() and the historical RuntimeConfig defaults.
    static LinkSpec PcieGen4() { return LinkSpec{LinkKind::kPcie, 12.0, 10.0}; }

    /// NVLink-class device fabric: ~7x the bandwidth at a fraction of the
    /// setup latency (the `--nvlink` sweep point of distributed-GNN
    /// harnesses).
    static LinkSpec NvlinkClass()
    {
        return LinkSpec{LinkKind::kNvlink, 80.0, 2.0};
    }
};

/// One cluster node: a CPU + GPU pair and the host link between them.
struct TopologyNode {
    DeviceSpec cpu = DeviceSpec::XeonGold6226R();
    DeviceSpec gpu = DeviceSpec::RtxA6000();
    LinkSpec host_link = LinkSpec::PcieGen4();
};

/// The cluster: nodes plus a dense peer-link matrix (row-major, from x to).
/// Self links exist in the matrix but are never scheduled.
class Topology {
  public:
    Topology() = default;

    /// The historical single CPU+GPU pair — runtimes built from this node
    /// are bit-identical to the default RuntimeConfig.
    [[nodiscard]] static Topology SinglePair();

    /// @p devices identical SinglePair nodes, every peer pair joined by
    /// @p interconnect.
    static Topology ScaleOut(int32_t devices, const LinkSpec& interconnect);

    /// Appends a node; its peer links (both directions) default to PCIe.
    void AddNode(const TopologyNode& node);

    int32_t DeviceCount() const
    {
        return static_cast<int32_t>(nodes_.size());
    }

    const TopologyNode& NodeAt(int32_t index) const;

    /// The directed link used for transfers from device @p from to device
    /// @p to. Must be distinct, in-range indices.
    const LinkSpec& PeerLink(int32_t from, int32_t to) const;

    /// Overrides one directed peer link.
    void SetPeerLink(int32_t from, int32_t to, const LinkSpec& spec);

  private:
    int64_t LinkIndex(int32_t from, int32_t to) const;

    std::vector<TopologyNode> nodes_;
    /// DeviceCount()^2 entries, row-major by `from`.
    std::vector<LinkSpec> peer_links_;
};

}  // namespace dgnn::sim
