#include "sim/topology.hpp"

#include "support/check.hpp"

namespace dgnn::sim {

const char*
ToString(LinkKind kind)
{
    switch (kind) {
      case LinkKind::kPcie:
        return "pcie";
      case LinkKind::kNvlink:
        return "nvlink";
    }
    return "?";
}

Topology
Topology::SinglePair()
{
    Topology topo;
    topo.AddNode(TopologyNode{});
    return topo;
}

Topology
Topology::ScaleOut(int32_t devices, const LinkSpec& interconnect)
{
    DGNN_CHECK(devices >= 1, "topology needs at least one device, got ",
               devices);
    Topology topo;
    for (int32_t i = 0; i < devices; ++i) {
        topo.AddNode(TopologyNode{});
    }
    for (int32_t from = 0; from < devices; ++from) {
        for (int32_t to = 0; to < devices; ++to) {
            if (from != to) {
                topo.SetPeerLink(from, to, interconnect);
            }
        }
    }
    return topo;
}

void
Topology::AddNode(const TopologyNode& node)
{
    const int32_t old_count = DeviceCount();
    const int32_t new_count = old_count + 1;
    // Rebuild the row-major matrix at the new width, preserving the old
    // entries; fresh links default to PCIe peer-to-peer.
    std::vector<LinkSpec> grown(
        static_cast<size_t>(new_count) * static_cast<size_t>(new_count));
    for (int32_t from = 0; from < old_count; ++from) {
        for (int32_t to = 0; to < old_count; ++to) {
            grown[static_cast<size_t>(from) * static_cast<size_t>(new_count) +
                  static_cast<size_t>(to)] =
                peer_links_[static_cast<size_t>(LinkIndex(from, to))];
        }
    }
    nodes_.push_back(node);
    peer_links_ = std::move(grown);
}

const TopologyNode&
Topology::NodeAt(int32_t index) const
{
    DGNN_CHECK(index >= 0 && index < DeviceCount(), "device index ", index,
               " out of range for a ", DeviceCount(), "-device topology");
    return nodes_[static_cast<size_t>(index)];
}

int64_t
Topology::LinkIndex(int32_t from, int32_t to) const
{
    DGNN_CHECK(from >= 0 && from < DeviceCount() && to >= 0 &&
                   to < DeviceCount(),
               "peer link (", from, " -> ", to, ") out of range for a ",
               DeviceCount(), "-device topology");
    return static_cast<int64_t>(from) * DeviceCount() + to;
}

const LinkSpec&
Topology::PeerLink(int32_t from, int32_t to) const
{
    DGNN_CHECK(from != to, "peer link must join two distinct devices, got ",
               from, " -> ", to);
    return peer_links_[static_cast<size_t>(LinkIndex(from, to))];
}

void
Topology::SetPeerLink(int32_t from, int32_t to, const LinkSpec& spec)
{
    DGNN_CHECK(from != to, "peer link must join two distinct devices, got ",
               from, " -> ", to);
    peer_links_[static_cast<size_t>(LinkIndex(from, to))] = spec;
}

}  // namespace dgnn::sim
