#include "sim/pcie.hpp"

#include "support/check.hpp"

namespace dgnn::sim {

SimTime
PcieLink::TransferTime(int64_t bytes) const
{
    DGNN_CHECK(bytes >= 0, "negative transfer size ", bytes);
    // GB/s == kbytes per microsecond.
    return latency_us_ + static_cast<double>(bytes) / (bandwidth_gbps_ * 1e3);
}

Stream::Interval
PcieLink::Schedule(SimTime earliest_start, int64_t bytes)
{
    return queue_.Enqueue(earliest_start, TransferTime(bytes));
}

}  // namespace dgnn::sim
