#pragma once

/// @file
/// Kernel descriptor and the analytic cost model mapping a descriptor onto a
/// DeviceSpec. The cost model is the heart of the simulator:
///
///   occ      = clamp(parallel_items / saturation_items, occ_floor, 1)
///   t_comp   = flops / (peak_gflops * 1e3 * occ)                     [us]
///   t_mem    = bytes / (mem_bw_gbps * 1e3 * min(1, 4*occ) / penalty) [us]
///   duration = launch_overhead + max(t_comp, t_mem)
///
/// Low parallelism (temporal data dependencies!) therefore yields low
/// occupancy, launch-overhead-dominated kernels, and low device utilization,
/// which is precisely the paper's bottleneck no. 1.

#include <cstdint>
#include <string>

#include "sim/device_spec.hpp"

namespace dgnn::sim {

/// One unit of device work (a kernel on GPU, an op/parallel region on CPU).
struct KernelDesc {
    /// Kernel name, e.g. "gemm" or "temporal_sample".
    std::string name;

    /// Floating-point operations performed.
    int64_t flops = 0;

    /// Bytes moved to/from device memory.
    int64_t bytes = 0;

    /// Independent parallel work items exposed by the kernel.
    int64_t parallel_items = 1;

    /// True when the access pattern is data-dependent/random (graph
    /// sampling, gather/scatter); derates effective bandwidth.
    bool irregular = false;
};

/// Fraction of the device the kernel occupies, in (0, 1].
double Occupancy(const DeviceSpec& spec, const KernelDesc& kernel);

/// Execution time excluding launch overhead, microseconds.
SimTime ComputeTime(const DeviceSpec& spec, const KernelDesc& kernel);

/// Total duration including launch overhead, microseconds.
SimTime KernelDuration(const DeviceSpec& spec, const KernelDesc& kernel);

}  // namespace dgnn::sim
