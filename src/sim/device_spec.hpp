#pragma once

/// @file
/// Parametric performance model of a compute device. Two calibrated presets
/// match the paper's testbed: an Intel Xeon Gold 6226R CPU and an NVIDIA RTX
/// A6000 GPU. The parameters are analytic-model inputs, not measurements of
/// this host; see DESIGN.md section 5.

#include <cstdint>
#include <string>

#include "sim/sim_time.hpp"

namespace dgnn::sim {

/// Which side of the PCIe link a device sits on.
enum class DeviceKind {
    kCpu,
    kGpu,
};

const char* ToString(DeviceKind kind);

/// Analytic performance description of one device.
struct DeviceSpec {
    std::string name;
    DeviceKind kind = DeviceKind::kCpu;

    /// Aggregate fp32 throughput at full occupancy, in GFLOP/s.
    double peak_gflops = 0.0;

    /// Streaming memory bandwidth in GB/s.
    double mem_bw_gbps = 0.0;

    /// Fixed cost to dispatch one kernel/op (driver + launch), microseconds.
    SimTime launch_overhead_us = 0.0;

    /// Parallel work items needed to reach occupancy 1.0.
    int64_t saturation_items = 1;

    /// Minimum occupancy a non-empty kernel achieves (one SM / one core).
    double occupancy_floor = 1.0;

    /// Derating factor applied to bandwidth for irregular (random) access.
    double irregular_penalty = 1.0;

    /// Device memory capacity in bytes.
    int64_t memory_bytes = 0;

    /// One-time lazy context creation cost (CUDA deferred init), us.
    SimTime context_init_us = 0.0;

    /// Model initialization (stream capture / module setup): fixed part, us.
    SimTime model_init_fixed_us = 0.0;

    /// Model initialization: per-MB-of-weights part, us/MB.
    SimTime model_init_per_mb_us = 0.0;

    /// Per-run allocator warm-up: fixed part, us.
    SimTime alloc_fixed_us = 0.0;

    /// Per-run allocator warm-up: per MB of working set, us/MB.
    SimTime alloc_per_mb_us = 0.0;

    /// Xeon Gold 6226R-class CPU model (16 cores, AVX-512).
    static DeviceSpec XeonGold6226R();

    /// RTX A6000-class GPU model (84 SMs, 48 GB).
    static DeviceSpec RtxA6000();
};

}  // namespace dgnn::sim
