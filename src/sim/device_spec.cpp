#include "sim/device_spec.hpp"

namespace dgnn::sim {

const char*
ToString(DeviceKind kind)
{
    switch (kind) {
      case DeviceKind::kCpu:
        return "CPU";
      case DeviceKind::kGpu:
        return "GPU";
    }
    return "?";
}

DeviceSpec
DeviceSpec::XeonGold6226R()
{
    DeviceSpec spec;
    spec.name = "Xeon Gold 6226R";
    spec.kind = DeviceKind::kCpu;
    // 16 cores x 2.9 GHz x AVX-512 FMA; derated to framework-effective GEMM
    // throughput (eager-mode PyTorch sustains a small fraction of peak on
    // the small matrices DGNN inference produces).
    spec.peak_gflops = 70.0;
    spec.mem_bw_gbps = 80.0;
    // Eager-mode per-op dispatch cost on CPU (framework overhead).
    spec.launch_overhead_us = 2.0;
    // All 16 cores saturated once a kernel exposes ~4K independent items.
    spec.saturation_items = 4096;
    // A single-threaded op still gets one core: 1/16 of the device.
    spec.occupancy_floor = 1.0 / 16.0;
    spec.irregular_penalty = 6.0;
    spec.memory_bytes = 192LL * 1024 * 1024 * 1024;
    spec.context_init_us = 0.0;
    spec.model_init_fixed_us = 6000.0;
    spec.model_init_per_mb_us = 60.0;
    spec.alloc_fixed_us = 3.0;
    spec.alloc_per_mb_us = 0.08;
    return spec;
}

DeviceSpec
DeviceSpec::RtxA6000()
{
    DeviceSpec spec;
    spec.name = "RTX A6000";
    spec.kind = DeviceKind::kGpu;
    // 84 SMs; fp32 peak 38.7 TFLOP/s derated to sustained GEMM throughput.
    spec.peak_gflops = 19000.0;
    spec.mem_bw_gbps = 600.0;
    // CUDA kernel launch + driver submit under eager execution.
    spec.launch_overhead_us = 6.0;
    // Full occupancy needs ~84 SMs x 2048 resident threads of useful work.
    spec.saturation_items = 160000;
    // A tiny kernel still runs on one SM: 1/84 of the device.
    spec.occupancy_floor = 1.0 / 84.0;
    spec.irregular_penalty = 2.5;
    spec.memory_bytes = 48LL * 1024 * 1024 * 1024;
    // Lazy CUDA context creation (first API call).
    spec.context_init_us = 1.8e6;
    // Module setup / stream capture on GPU is far slower than on CPU
    // (paper section 4.4: 40x - 937x CPU model-init time).
    spec.model_init_fixed_us = 4.2e6;
    spec.model_init_per_mb_us = 9000.0;
    // Per-run allocator warm-up: caching-allocator pool growth plus
    // first-iteration kernel autotuning (Table 2 of the paper measures this
    // at ~5.5 ms fixed, growing with the working set).
    spec.alloc_fixed_us = 5300.0;
    spec.alloc_per_mb_us = 400.0;
    return spec;
}

}  // namespace dgnn::sim
