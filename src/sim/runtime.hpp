#pragma once

/// @file
/// The simulated heterogeneous runtime. Models issue host ops, device
/// kernels, and PCIe copies through this class; it advances a deterministic
/// simulated clock, applies the analytic device cost models, tracks memory
/// and transfer volumes, and records everything into a Trace.
///
/// Execution semantics mirror eager-mode PyTorch + CUDA:
///  * host ops run synchronously on the CPU timeline;
///  * device kernels are asynchronous — the host pays only a submit cost and
///    the kernel lands on the compute stream;
///  * copies block the host (pageable-memory semantics);
///  * Synchronize() blocks the host until every device stream drains.
///
/// On top of the eager substrate the runtime exposes the primitives a
/// pipelined server needs (serve/): a dedicated copy stream,
/// CopyToDeviceAsync/CopyToHostAsync with pinned-memory semantics (the host
/// pays only the submit cost; the DMA engine runs behind it), and Event
/// record/wait for cross-stream dependencies — the cudaEvent analogue.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/device.hpp"
#include "sim/kernel.hpp"
#include "sim/pcie.hpp"
#include "sim/runtime_observer.hpp"
#include "sim/stream.hpp"
#include "sim/topology.hpp"
#include "sim/trace.hpp"
#include "sim/warmup.hpp"

namespace dgnn::sim {

/// Whether inference runs on the CPU alone or offloads to the GPU.
enum class ExecMode {
    kCpuOnly,
    kHybrid,
};

const char* ToString(ExecMode mode);

/// Configuration for a simulated system.
struct RuntimeConfig {
    DeviceSpec cpu = DeviceSpec::XeonGold6226R();
    DeviceSpec gpu = DeviceSpec::RtxA6000();
    ExecMode mode = ExecMode::kHybrid;
    double pcie_bandwidth_gbps = 12.0;
    SimTime pcie_latency_us = 10.0;
    /// Host-side cost of submitting one asynchronous kernel, us.
    SimTime submit_overhead_us = 1.5;
    /// Host-side cost of recording an event or enqueueing a stream wait, us.
    SimTime event_overhead_us = 0.5;
    /// Optional N-device cluster topology (scale-out). When set, this
    /// runtime models topology node @p device_index: cpu/gpu/pcie_* above
    /// are overridden from that node, and PeerCopyAsync prices transfers to
    /// the other devices through the topology's peer links. Unset (the
    /// default) keeps the historical single-pair behavior bit-for-bit.
    std::optional<Topology> topology;
    int32_t device_index = 0;
};

/// The runtime's device-side in-order queues.
enum class StreamId {
    kCompute,  ///< Default kernel stream.
    kCopy,     ///< Async-copy (DMA engine) stream.
};

const char* ToString(StreamId id);

/// Cross-stream synchronization marker (the cudaEvent analogue). Obtained
/// from Runtime::RecordEvent; complete once the simulated clock passes
/// ready_us. Copyable value type — recording again returns a new Event.
/// The id is unique per Runtime and identifies the record site to
/// observers (the hazard checker matches waits to records through it).
struct Event {
    SimTime ready_us = 0.0;
    int64_t id = 0;
};

class Runtime;

/// RAII handle for a simulated device/host allocation.
class DeviceBuffer {
  public:
    DeviceBuffer() = default;
    DeviceBuffer(MemoryPool* pool, int64_t id, int64_t bytes)
        : pool_(pool), id_(id), bytes_(bytes) {}
    ~DeviceBuffer() { Release(); }

    DeviceBuffer(const DeviceBuffer&) = delete;
    DeviceBuffer& operator=(const DeviceBuffer&) = delete;
    DeviceBuffer(DeviceBuffer&& other) noexcept { *this = std::move(other); }
    DeviceBuffer& operator=(DeviceBuffer&& other) noexcept;

    int64_t Bytes() const { return bytes_; }
    bool Valid() const { return pool_ != nullptr; }

    /// Frees the allocation early.
    void Release();

  private:
    MemoryPool* pool_ = nullptr;
    int64_t id_ = 0;
    int64_t bytes_ = 0;
};

/// Scoped category annotation: trace events issued inside carry the label.
class CategoryScope;

/// The simulated system: one CPU, optionally one GPU, one PCIe link.
class Runtime {
  public:
    explicit Runtime(RuntimeConfig config = RuntimeConfig{});

    ExecMode Mode() const { return config_.mode; }
    bool HasGpu() const { return config_.mode == ExecMode::kHybrid; }

    Device& Cpu() { return cpu_; }
    const Device& Cpu() const { return cpu_; }
    Device& Gpu();
    const Device& Gpu() const;

    /// The device compute kernels land on (GPU when hybrid, else CPU).
    Device& ComputeDevice() { return HasGpu() ? gpu_ : cpu_; }
    const Device& ComputeDevice() const { return HasGpu() ? gpu_ : cpu_; }

    PcieLink& Pcie() { return pcie_; }

    /// --- Topology (scale-out) -------------------------------------------

    /// Whether this runtime models one node of an N-device topology.
    bool HasTopology() const { return config_.topology.has_value(); }

    /// This runtime's node index in the topology (0 without one).
    int32_t DeviceIndex() const { return config_.device_index; }

    /// Devices in the cluster this runtime belongs to (1 without topology).
    int32_t ClusterDevices() const
    {
        return HasTopology() ? config_.topology->DeviceCount() : 1;
    }

    /// The directed link from this device to @p peer. Requires a topology.
    const LinkSpec& PeerLinkSpec(int32_t peer) const;

    /// Current host (CPU thread) simulated time, us.
    SimTime Now() const { return host_time_; }

    /// --- Category stack -------------------------------------------------
    void PushCategory(std::string category);
    void PopCategory();
    const std::string& CurrentCategory() const;

    /// --- Observer seam (src/analysis/) ----------------------------------

    /// Attaches a passive observer notified of every issued operation and
    /// synchronization action. Null (the default) disables all hooks; the
    /// simulated timeline is bit-identical either way because the hooks
    /// only read state. The observer is borrowed and must outlive the
    /// runtime or be detached first.
    void SetObserver(RuntimeObserver* observer) { observer_ = observer; }
    bool HasObserver() const { return observer_ != nullptr; }

    /// Declares the logical-resource footprint of subsequently issued
    /// operations (innermost declaration wins). Purely observational —
    /// consumed by the observer, never by the cost model. Prefer the RAII
    /// AccessScope below.
    void PushAccess(AccessSet set);
    void PopAccess();
    /// The innermost active declaration, or nullptr.
    const AccessSet* CurrentAccess() const;

    /// --- Work issue -----------------------------------------------------

    /// Runs a CPU-side op synchronously (sampling, batching, host math).
    /// Returns its completion time.
    SimTime RunHost(const KernelDesc& kernel);

    /// Host op with an explicitly modeled duration (e.g. disk load).
    SimTime RunHostFor(const std::string& name, SimTime duration_us);

    /// Launches a compute kernel on the compute device. Asynchronous when a
    /// GPU is present. Returns the kernel completion time on its stream.
    SimTime Launch(const KernelDesc& kernel);

    /// Blocking host->device copy. No-op (returns Now()) in CPU-only mode.
    SimTime CopyToDevice(int64_t bytes, const std::string& what);

    /// Blocking device->host copy; waits for the compute stream first.
    SimTime CopyToHost(int64_t bytes, const std::string& what);

    /// --- Cache-aware transfers (cache::DeviceCache cost surface) --------

    /// Host->device gather of @p hit_rows + @p miss_rows rows of
    /// @p row_bytes each through a device-resident cache: misses pay the
    /// blocking PCIe transfer exactly like CopyToDevice, hits cost only a
    /// device-side gather kernel that reads the cached rows into the
    /// batch's staging buffer. Hit bytes accumulate in CacheHitBytes()
    /// (the PCIe traffic the cache saved). No-op in CPU-only mode.
    SimTime GatherToDevice(int64_t hit_rows, int64_t miss_rows, int64_t row_bytes,
                           const std::string& what);

    /// The hit half alone: launches the device-side gather kernel for
    /// @p hit_rows cached rows and credits CacheHitBytes(). Used by the
    /// serving executors, which coalesce the miss rows into the batch's
    /// single staged input copy (blocking or async pinned) instead of
    /// paying a second PCIe transaction. No-op in CPU-only mode or with
    /// zero rows.
    SimTime GatherHits(int64_t hit_rows, int64_t row_bytes,
                       const std::string& what);

    /// Blocking device->host write-back of @p rows dirty cache rows
    /// (evicted or flushed). No-op in CPU-only mode.
    SimTime WriteBackToHost(int64_t rows, int64_t row_bytes,
                            const std::string& what);

    /// H2D bytes served from the device cache (hits) in this measurement
    /// window — the transfer volume the cache avoided.
    int64_t CacheHitBytes() const { return cache_hit_bytes_; }

    /// --- Async copies, events, streams (the pipelining primitives) ------

    /// Asynchronous host->device copy with pinned-memory semantics: the
    /// host pays only the submit overhead while the DMA engine performs the
    /// transfer on the copy stream. Returns the copy completion time.
    /// Ordering against compute kernels is the caller's responsibility
    /// (RecordEvent + StreamWaitEvent). No-op (returns Now()) in CPU-only
    /// mode. The completion time is how callers build that ordering —
    /// ignoring it is almost always a missing-sync bug, hence nodiscard.
    [[nodiscard]] SimTime CopyToDeviceAsync(int64_t bytes,
                                            const std::string& what);

    /// Asynchronous device->host copy on the copy stream (pinned
    /// destination). Does NOT implicitly wait for the compute stream —
    /// insert an event dependency first. No-op in CPU-only mode.
    [[nodiscard]] SimTime CopyToHostAsync(int64_t bytes,
                                          const std::string& what);

    /// Asynchronous device->device transfer from topology peer @p peer into
    /// this device, priced through the directed peer link (its own
    /// contended queue) and landing on the copy stream like the pinned
    /// copies above. Ordering against compute is the caller's
    /// responsibility (RecordEvent + StreamWaitEvent). Requires a topology;
    /// no-op (returns Now()) in CPU-only mode. Counted in PeerBytes(), not
    /// in the host-link H2D/D2H counters.
    [[nodiscard]] SimTime PeerCopyAsync(int32_t peer, int64_t bytes,
                                        const std::string& what);

    /// Records an event on @p stream: it completes when all work currently
    /// enqueued there has finished (immediately if the stream is idle). In
    /// CPU-only mode events complete at the current host time. A recorded
    /// event only orders anything once somebody waits on it — discarding
    /// one is a dropped sync edge, hence nodiscard.
    [[nodiscard]] Event RecordEvent(StreamId stream);

    /// Makes future work on @p stream wait for @p event (cross-stream
    /// fence). Purely device-side: the host pays only the enqueue cost.
    void StreamWaitEvent(StreamId stream, const Event& event);

    /// Blocks the host until @p event completes; records the wait like
    /// Synchronize(). Returns the (possibly advanced) host time.
    [[nodiscard]] SimTime WaitEvent(const Event& event);

    /// Time at which all work enqueued on @p stream completes.
    [[nodiscard]] SimTime StreamReadyTime(StreamId stream) const;

    /// Advances the host clock to @p until_us without charging CPU busy
    /// time — the serving loop's "wait for the next request" idle state.
    /// No-op when @p until_us is in the past.
    SimTime IdleUntil(SimTime until_us);

    /// Blocks the host until every device stream drains; records the wait.
    /// Returns the drained host time. nodiscard like the rest of the async
    /// API: call sites that genuinely only want the barrier side effect
    /// say so with a (void) cast.
    [[nodiscard]] SimTime Synchronize();

    /// Zero-duration annotation in the trace (phase boundary).
    void Marker(const std::string& name);

    /// --- Memory ---------------------------------------------------------
    /// Discarding the returned RAII handle frees the allocation on the
    /// spot, which is never what a caller means — hence nodiscard.
    [[nodiscard]] DeviceBuffer AllocDevice(int64_t bytes,
                                           const std::string& label);
    [[nodiscard]] DeviceBuffer AllocHost(int64_t bytes,
                                         const std::string& label);

    /// --- Warm-up --------------------------------------------------------

    /// One-time GPU warm-up (context + model init + weight transfer); the
    /// first call advances the host clock and records marker events, later
    /// calls return the cached report. CPU-only mode pays model init only.
    const OneTimeWarmup& EnsureWarm(int64_t weight_bytes);

    /// Whether EnsureWarm has run.
    bool IsWarm() const { return one_time_warmup_.has_value(); }

    /// Per-run allocation warm-up; advances the host clock.
    PerRunWarmup RunAllocWarmup(int64_t working_set_bytes);

    /// --- Measurement ----------------------------------------------------

    /// Starts a measurement window: resets device busy counters and peak
    /// watermarks; utilization and busy times report from this point.
    void ResetMeasurementWindow();

    SimTime MeasureStart() const { return measure_start_; }

    /// Elapsed host time inside the current measurement window.
    SimTime ElapsedInWindow() const { return host_time_ - measure_start_; }

    /// Compute-device utilization over the current window, percent.
    double ComputeUtilizationPct() const;

    int64_t BytesToDevice() const { return h2d_bytes_; }
    int64_t BytesToHost() const { return d2h_bytes_; }
    int64_t TransferCount() const { return transfer_count_; }

    /// Cross-device (peer-link) traffic in this measurement window.
    int64_t PeerBytes() const { return peer_bytes_; }
    int64_t PeerCopyCount() const { return peer_copy_count_; }
    /// Time the peer links spent occupied by this window's peer copies.
    SimTime PeerLinkTime() const { return peer_link_time_us_; }

    /// Host time spent blocked in Synchronize() since window reset.
    SimTime SyncWaitTime() const { return sync_wait_us_; }

    /// Host time spent in PCIe copies since window reset.
    SimTime TransferTime() const { return transfer_time_us_; }

    /// Host time attributed to each category since the window reset. The
    /// values partition ElapsedInWindow() exactly (async kernel execution is
    /// captured through the Synchronize() waits the model performs), which
    /// is what the paper's per-module breakdowns (Fig 7) report.
    const std::map<std::string, SimTime>& CategoryTimes() const
    {
        return category_time_;
    }

    Trace& GetTrace() { return trace_; }
    const Trace& GetTrace() const { return trace_; }

  private:
    /// Advances the host clock, attributing the delta to the current
    /// category. Every host-time mutation funnels through here.
    void AdvanceHost(SimTime delta_us);

    /// Reports one issued operation to the observer (no-op when detached).
    void NotifyOp(OpKind kind, const std::string& name, bool on_host,
                  StreamId stream, bool blocking, SimTime start, SimTime end,
                  int64_t bytes);

    TraceEvent MakeEvent(EventKind kind, std::string name, std::string device,
                         SimTime start, SimTime end) const;

    Stream& StreamFor(StreamId id);
    const Stream& StreamFor(StreamId id) const;

    RuntimeConfig config_;
    Device cpu_;
    Device gpu_;
    PcieLink pcie_;
    /// One contended queue per topology peer (self entry never scheduled);
    /// empty without a topology.
    std::vector<PcieLink> peer_links_;
    Stream compute_stream_;
    Stream copy_stream_;
    SimTime host_time_ = 0.0;
    SimTime measure_start_ = 0.0;
    RuntimeObserver* observer_ = nullptr;
    std::vector<AccessSet> access_stack_;
    int64_t next_event_id_ = 0;
    std::vector<std::string> category_stack_;
    std::map<std::string, SimTime> category_time_;
    std::optional<OneTimeWarmup> one_time_warmup_;
    Trace trace_;
    int64_t h2d_bytes_ = 0;
    int64_t d2h_bytes_ = 0;
    int64_t cache_hit_bytes_ = 0;
    int64_t transfer_count_ = 0;
    int64_t peer_bytes_ = 0;
    int64_t peer_copy_count_ = 0;
    SimTime peer_link_time_us_ = 0.0;
    SimTime sync_wait_us_ = 0.0;
    SimTime transfer_time_us_ = 0.0;
};

/// RAII helper declaring a logical-resource footprint for the duration of
/// a scope (see RuntimeObserver / AccessSet). Observational only.
class AccessScope {
  public:
    AccessScope(Runtime& runtime, AccessSet set) : runtime_(runtime)
    {
        runtime_.PushAccess(std::move(set));
    }
    ~AccessScope() { runtime_.PopAccess(); }

    AccessScope(const AccessScope&) = delete;
    AccessScope& operator=(const AccessScope&) = delete;

  private:
    Runtime& runtime_;
};

/// RAII helper pushing a category for the duration of a scope.
class CategoryScope {
  public:
    CategoryScope(Runtime& runtime, std::string category) : runtime_(runtime)
    {
        runtime_.PushCategory(std::move(category));
    }
    ~CategoryScope() { runtime_.PopCategory(); }

    CategoryScope(const CategoryScope&) = delete;
    CategoryScope& operator=(const CategoryScope&) = delete;

  private:
    Runtime& runtime_;
};

}  // namespace dgnn::sim
