#pragma once

/// @file
/// Simulated device: a DeviceSpec plus a memory pool (live/peak byte
/// tracking) and busy-time accounting used for utilization.

#include <cstdint>
#include <string>
#include <unordered_map>

#include "sim/device_spec.hpp"
#include "sim/sim_time.hpp"

namespace dgnn::sim {

/// Tracks allocations on one device; reports live and peak bytes.
class MemoryPool {
  public:
    explicit MemoryPool(int64_t capacity_bytes) : capacity_(capacity_bytes) {}

    /// Registers an allocation; returns an id to free later.
    int64_t Allocate(int64_t bytes, const std::string& label);

    /// Releases a previous allocation.
    void Free(int64_t id);

    int64_t LiveBytes() const { return live_; }
    int64_t PeakBytes() const { return peak_; }
    int64_t CapacityBytes() const { return capacity_; }
    int64_t LiveAllocationCount() const { return static_cast<int64_t>(blocks_.size()); }

    /// Cumulative bytes ever allocated (allocator traffic).
    int64_t TotalAllocatedBytes() const { return total_allocated_; }

    /// Resets the peak watermark to the current live bytes.
    void ResetPeak() { peak_ = live_; }

  private:
    struct Block {
        int64_t bytes;
        std::string label;
    };

    int64_t capacity_;
    int64_t live_ = 0;
    int64_t peak_ = 0;
    int64_t total_allocated_ = 0;
    int64_t next_id_ = 1;
    std::unordered_map<int64_t, Block> blocks_;
};

/// A compute device in the simulated system.
class Device {
  public:
    explicit Device(DeviceSpec spec)
        : spec_(std::move(spec)), memory_(spec_.memory_bytes) {}

    const DeviceSpec& Spec() const { return spec_; }
    const std::string& Name() const { return spec_.name; }
    DeviceKind Kind() const { return spec_.kind; }

    MemoryPool& Memory() { return memory_; }
    const MemoryPool& Memory() const { return memory_; }

    /// Accumulates kernel busy time: raw (wall) and occupancy-weighted.
    void AddBusy(SimTime duration_us, double occupancy);

    /// Total time the device had a kernel resident, us.
    SimTime BusyTime() const { return busy_us_; }

    /// Occupancy-weighted busy time (SM-seconds used / SM count), us.
    SimTime WeightedBusyTime() const { return weighted_busy_us_; }

    int64_t KernelCount() const { return kernel_count_; }

    /// nvidia-smi-style utilization over [0, elapsed]: fraction of time a
    /// kernel was resident on the device, as percent. This is the metric the
    /// paper's GPU-utilization plots (Fig 6, Fig 9) report.
    double UtilizationPct(SimTime elapsed_us) const;

    /// Occupancy-weighted (SM-level) utilization, as percent — how much of
    /// the device's compute capacity was actually used.
    double WeightedUtilizationPct(SimTime elapsed_us) const;

    /// Clears busy accounting (memory pool is left untouched).
    void ResetBusy();

  private:
    DeviceSpec spec_;
    MemoryPool memory_;
    SimTime busy_us_ = 0.0;
    SimTime weighted_busy_us_ = 0.0;
    int64_t kernel_count_ = 0;
};

}  // namespace dgnn::sim
