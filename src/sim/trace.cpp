#include "sim/trace.hpp"

#include <algorithm>

namespace dgnn::sim {

const char*
ToString(EventKind kind)
{
    switch (kind) {
      case EventKind::kKernel:
        return "kernel";
      case EventKind::kTransfer:
        return "transfer";
      case EventKind::kHostOp:
        return "host_op";
      case EventKind::kSync:
        return "sync";
      case EventKind::kMarker:
        return "marker";
    }
    return "?";
}

const char*
ToString(CopyDirection dir)
{
    switch (dir) {
      case CopyDirection::kHostToDevice:
        return "H2D";
      case CopyDirection::kDeviceToHost:
        return "D2H";
      case CopyDirection::kNone:
        return "-";
    }
    return "?";
}

SimTime
Trace::EndTime() const
{
    SimTime t = 0.0;
    for (const TraceEvent& e : events_) {
        t = std::max(t, e.end_us);
    }
    return t;
}

SimTime
Trace::StartTime() const
{
    if (events_.empty()) {
        return 0.0;
    }
    SimTime t = events_.front().start_us;
    for (const TraceEvent& e : events_) {
        t = std::min(t, e.start_us);
    }
    return t;
}

}  // namespace dgnn::sim
