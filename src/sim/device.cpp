#include "sim/device.hpp"

#include "support/check.hpp"

namespace dgnn::sim {

int64_t
MemoryPool::Allocate(int64_t bytes, const std::string& label)
{
    DGNN_CHECK(bytes >= 0, "negative allocation of ", bytes, " bytes (", label, ")");
    DGNN_CHECK(capacity_ <= 0 || live_ + bytes <= capacity_,
               "device out of memory: live ", live_, " + request ", bytes,
               " exceeds capacity ", capacity_, " (", label, ")");
    const int64_t id = next_id_++;
    blocks_.emplace(id, Block{bytes, label});
    live_ += bytes;
    total_allocated_ += bytes;
    peak_ = std::max(peak_, live_);
    return id;
}

void
MemoryPool::Free(int64_t id)
{
    auto it = blocks_.find(id);
    DGNN_CHECK(it != blocks_.end(), "double free or unknown allocation id ", id);
    live_ -= it->second.bytes;
    DGNN_ASSERT(live_ >= 0);
    blocks_.erase(it);
}

void
Device::AddBusy(SimTime duration_us, double occupancy)
{
    DGNN_CHECK(duration_us >= 0.0, "negative busy time ", duration_us);
    DGNN_CHECK(occupancy >= 0.0 && occupancy <= 1.0, "occupancy ", occupancy,
               " out of [0,1]");
    busy_us_ += duration_us;
    weighted_busy_us_ += duration_us * occupancy;
    ++kernel_count_;
}

double
Device::UtilizationPct(SimTime elapsed_us) const
{
    if (elapsed_us <= 0.0) {
        return 0.0;
    }
    return 100.0 * busy_us_ / elapsed_us;
}

double
Device::WeightedUtilizationPct(SimTime elapsed_us) const
{
    if (elapsed_us <= 0.0) {
        return 0.0;
    }
    return 100.0 * weighted_busy_us_ / elapsed_us;
}

void
Device::ResetBusy()
{
    busy_us_ = 0.0;
    weighted_busy_us_ = 0.0;
    kernel_count_ = 0;
}

}  // namespace dgnn::sim
