#pragma once

/// @file
/// PCIe link model: fixed per-transfer latency plus bytes / bandwidth.
/// Both directions share one link (half duplex is a good approximation for
/// the alternating H2D/D2H patterns DGNNs exhibit; see Fig 5 of the paper).

#include <cstdint>

#include "sim/sim_time.hpp"
#include "sim/stream.hpp"

namespace dgnn::sim {

/// Host <-> device interconnect.
class PcieLink {
  public:
    /// @param bandwidth_gbps effective bandwidth, GB/s
    /// @param latency_us per-transfer setup latency, us
    PcieLink(double bandwidth_gbps, SimTime latency_us)
        : bandwidth_gbps_(bandwidth_gbps), latency_us_(latency_us), queue_("pcie") {}

    /// PCIe 4.0 x16 with realistic pinned-memory efficiency.
    static PcieLink Gen4x16() { return PcieLink(12.0, 10.0); }

    /// Duration of a transfer of @p bytes, us.
    SimTime TransferTime(int64_t bytes) const;

    /// Schedules a transfer no earlier than @p earliest_start.
    Stream::Interval Schedule(SimTime earliest_start, int64_t bytes);

    double BandwidthGbps() const { return bandwidth_gbps_; }
    SimTime LatencyUs() const { return latency_us_; }
    SimTime ReadyTime() const { return queue_.ReadyTime(); }
    void Reset() { queue_.Reset(); }

  private:
    double bandwidth_gbps_;
    SimTime latency_us_;
    Stream queue_;
};

}  // namespace dgnn::sim
