#pragma once

/// @file
/// The runtime observability seam. sim::Runtime reports every issued
/// operation and every synchronization action through this passive
/// interface so an analysis layer (src/analysis/ — the happens-before
/// hazard checker) can reconstruct the exact concurrency structure of a
/// run WITHOUT perturbing it: hooks fire after the corresponding simulated
/// work was scheduled, carry read-only state, and a null observer (the
/// default) short-circuits everything, leaving the simulated timeline and
/// all committed expected outputs bit-identical.
///
/// Alongside the hooks, AccessSet/AccessScope let call sites declare the
/// LOGICAL RESOURCES an operation reads and writes (staging buffers,
/// device cache rows, host-side state stores). The declarations are purely
/// observational — they carry no simulated cost — and operations issued
/// with no declaration simply contribute their ordering edges without
/// being access-checked.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/sim_time.hpp"

namespace dgnn::sim {

enum class StreamId;
struct Event;

/// The logical-resource footprint of one or more operations. Resource
/// names are free-form strings; by convention a trailing "#<instance>"
/// suffix separates an instance (a staging slot, a cache-row residency
/// generation) from its family, and hazard reports deduplicate on the
/// family (see analysis::HazardChecker).
struct AccessSet {
    std::vector<std::string> reads;
    std::vector<std::string> writes;

    bool Empty() const { return reads.empty() && writes.empty(); }
};

/// What kind of operation an OpRecord describes.
enum class OpKind {
    kHostOp,    ///< synchronous CPU work (RunHost / RunHostFor)
    kKernel,    ///< compute kernel (async on the compute stream when hybrid)
    kCopyH2D,   ///< host->device transfer
    kCopyD2H,   ///< device->host transfer
    kCopyPeer,  ///< device->device transfer over a topology peer link
};

const char* ToString(OpKind kind);

/// One issued operation, as reported to the observer. Timeline semantics
/// (which the hazard checker mirrors — DESIGN.md §11):
///   * on_host == true: the op ran synchronously on the host timeline.
///     A blocking D2H additionally drained the compute stream first
///     (kind == kCopyD2H && blocking), i.e. the host joined the compute
///     timeline before the access. A blocking H2D (kCopyH2D && blocking)
///     fences the compute stream behind its completion, but because the
///     host is blocked for the copy's duration, later device submissions
///     already order after it through submission order.
///   * on_host == false: the op was enqueued on @p stream (in-order
///     queue); it happens-after everything previously enqueued there and
///     after everything the host had observed at submission time.
struct OpRecord {
    OpKind kind = OpKind::kHostOp;
    /// Operation label (kernel name, copy tag). Borrowed; valid only for
    /// the duration of the hook.
    const std::string* name = nullptr;
    bool on_host = true;
    StreamId stream{};  ///< valid only when !on_host
    /// Blocking copy semantics (see above); false for async copies.
    bool blocking = true;
    SimTime start_us = 0.0;
    SimTime end_us = 0.0;
    int64_t bytes = 0;
    /// The innermost declared footprint, or nullptr when none is active.
    /// Borrowed; valid only for the duration of the hook.
    const AccessSet* access = nullptr;
};

/// Passive observer of one Runtime. All hooks default to no-ops. Hooks are
/// invoked in issue order, which for a deterministic simulation is itself
/// deterministic.
class RuntimeObserver {
  public:
    virtual ~RuntimeObserver() = default;

    /// An operation was issued (host op, kernel launch, or copy).
    virtual void OnOp(const OpRecord&) {}

    /// RecordEvent: @p event completes when all work currently enqueued on
    /// @p stream has finished.
    virtual void OnEventRecorded(const Event& /*event*/, StreamId /*stream*/)
    {
    }

    /// StreamWaitEvent: future work on @p stream happens-after @p event.
    virtual void OnStreamWaitEvent(StreamId /*stream*/, const Event& /*event*/)
    {
    }

    /// WaitEvent: the host blocked until @p event completed (the edge
    /// exists even when the event had already passed).
    virtual void OnHostWaitEvent(const Event& /*event*/) {}

    /// Synchronize: the host drained every device stream.
    virtual void OnSynchronize() {}
};

}  // namespace dgnn::sim
