#pragma once

/// @file
/// Simulated time base. All simulator timestamps and durations are in
/// microseconds, stored as double. Nothing in the simulator ever reads the
/// wall clock, so runs replay deterministically.

#include <string>

namespace dgnn::sim {

/// Simulated time / duration in microseconds.
using SimTime = double;

/// Formats a duration with an auto-selected unit (us / ms / s).
std::string FormatDuration(SimTime us);

}  // namespace dgnn::sim
