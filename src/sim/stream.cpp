#include "sim/stream.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dgnn::sim {

Stream::Interval
Stream::Enqueue(SimTime earliest_start, SimTime duration)
{
    DGNN_CHECK(duration >= 0.0, "negative duration ", duration, " on stream ", name_);
    const SimTime start = std::max(earliest_start, ready_us_);
    ready_us_ = start + duration;
    return Interval{start, ready_us_};
}

}  // namespace dgnn::sim
