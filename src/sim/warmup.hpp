#pragma once

/// @file
/// GPU warm-up model (paper section 4.4). Two distinct overheads:
///
///  * One-time warm-up — lazy CUDA context creation, model initialization /
///    stream capture, and the initial weight transfer. Paid once per
///    process, seconds in magnitude.
///  * Per-run warm-up — allocator growth before each inference run, which
///    scales with the working set and whose *relative* share grows with
///    batch size (Table 2).

#include <cstdint>

#include "sim/device_spec.hpp"
#include "sim/pcie.hpp"
#include "sim/sim_time.hpp"

namespace dgnn::sim {

/// Components of the one-time GPU warm-up.
struct OneTimeWarmup {
    SimTime context_init_us = 0.0;
    SimTime model_init_us = 0.0;
    SimTime weight_transfer_us = 0.0;

    SimTime TotalUs() const
    {
        return context_init_us + model_init_us + weight_transfer_us;
    }
};

/// Components of the per-run warm-up.
struct PerRunWarmup {
    SimTime alloc_us = 0.0;

    SimTime TotalUs() const { return alloc_us; }
};

/// Computes the one-time warm-up for a model with @p weight_bytes of
/// parameters on @p spec, transferring weights over @p link.
OneTimeWarmup ComputeOneTimeWarmup(const DeviceSpec& spec, const PcieLink& link,
                                   int64_t weight_bytes);

/// Computes the per-run allocation warm-up for @p working_set_bytes.
PerRunWarmup ComputePerRunWarmup(const DeviceSpec& spec, int64_t working_set_bytes);

}  // namespace dgnn::sim
