#pragma once

/// @file
/// Kernel fusion over the analytic cost model. A FusedKernelDesc composes a
/// chain of KernelDescs into ONE launch:
///
///   launch_overhead  paid once instead of once per part
///   flops            sum over parts
///   bytes            sum over parts, minus the chain-internal intermediate
///                    tensors each boundary keeps in registers/shared memory
///                    (an intermediate is counted out of BOTH the producer's
///                    write bytes and the consumer's read bytes)
///   parallel_items   max over parts (the chain occupies the device as well
///                    as its widest stage)
///   irregular        any irregular part poisons the whole chain: the fused
///                    kernel inherits the worst access pattern, which is why
///                    fusing a regular GEMM behind a gather can LOSE on
///                    byte-bound chains and why placement stays a per-batch
///                    decision (src/dispatch/) instead of a global switch
///
/// Collapse() is device-independent: the same collapsed descriptor prices on
/// any DeviceSpec via the unchanged KernelDuration(), so fused launches flow
/// through Runtime::Launch, tracing, and profile capture with zero runtime
/// changes. This mirrors the paper's Fig 6/7 diagnosis — many tiny irregular
/// kernels whose launch overhead swamps execution — and the fusion remedies
/// surveyed in PAPERS.md.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/device_spec.hpp"
#include "sim/kernel.hpp"

namespace dgnn::sim {

/// A chain of kernels composed into one launch. parts run in order; the
/// boundary between parts[i] and parts[i+1] keeps intermediate_bytes[i]
/// bytes on-chip (never touching device memory or PCIe).
struct FusedKernelDesc {
    /// Collapsed launch name, e.g. "tgn_memory_fused".
    std::string name;

    /// The unfused kernels, in execution order. Must be non-empty.
    std::vector<KernelDesc> parts;

    /// Bytes of the intermediate tensor at each part boundary; size must be
    /// parts.size() - 1 and every entry non-negative. An entry of 0 models
    /// horizontal fusion (no producer/consumer tensor, just a shared launch).
    std::vector<int64_t> intermediate_bytes;
};

/// Collapse the chain into a single KernelDesc priced by the unchanged cost
/// model. Device-independent; validates the chain (non-empty, boundary count,
/// non-negative intermediates and work, positive parallel_items).
[[nodiscard]] KernelDesc Collapse(const FusedKernelDesc& fused);

/// Duration of the chain as ONE launch: KernelDuration(spec, Collapse(fused)).
[[nodiscard]] SimTime FusedDuration(const DeviceSpec& spec,
                                    const FusedKernelDesc& fused);

/// Duration of the chain launched part by part: sum of KernelDuration over
/// parts, each paying its own launch overhead and full memory traffic.
[[nodiscard]] SimTime UnfusedDuration(const DeviceSpec& spec,
                                      const FusedKernelDesc& fused);

/// UnfusedDuration - FusedDuration. Usually positive (launch overhead and
/// intermediate traffic saved); can be negative when an irregular part
/// poisons a byte-bound regular part's bandwidth.
[[nodiscard]] SimTime FusedSavings(const DeviceSpec& spec,
                                   const FusedKernelDesc& fused);

}  // namespace dgnn::sim
