#include "sim/sim_time.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace dgnn::sim {

std::string
FormatDuration(SimTime us)
{
    std::ostringstream oss;
    oss << std::fixed;
    const double a = std::fabs(us);
    if (a >= 1e6) {
        oss << std::setprecision(2) << us / 1e6 << " s";
    } else if (a >= 1e3) {
        oss << std::setprecision(2) << us / 1e3 << " ms";
    } else {
        oss << std::setprecision(2) << us << " us";
    }
    return oss.str();
}

}  // namespace dgnn::sim
