#include "sim/fusion.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dgnn::sim {

KernelDesc
Collapse(const FusedKernelDesc& fused)
{
    const size_t n = fused.parts.size();
    DGNN_CHECK(n >= 1, "fused chain '", fused.name, "' has no parts");
    DGNN_CHECK(fused.intermediate_bytes.size() == n - 1, "fused chain '",
               fused.name, "' has ", n, " parts but ",
               fused.intermediate_bytes.size(),
               " boundary intermediates (want parts - 1)");
    for (const int64_t bytes : fused.intermediate_bytes) {
        DGNN_CHECK(bytes >= 0, "fused chain '", fused.name,
                   "' has a negative intermediate (", bytes, " bytes)");
    }

    KernelDesc out;
    out.name = fused.name;
    out.flops = 0;
    out.bytes = 0;
    out.parallel_items = 1;
    out.irregular = false;
    for (size_t i = 0; i < n; ++i) {
        const KernelDesc& part = fused.parts[i];
        DGNN_CHECK(part.flops >= 0 && part.bytes >= 0, "fused chain '",
                   fused.name, "' part '", part.name, "' has negative work");
        DGNN_CHECK(part.parallel_items >= 1, "fused chain '", fused.name,
                   "' part '", part.name, "' has non-positive parallel_items ",
                   part.parallel_items);
        out.flops += part.flops;
        // The intermediate at each boundary stays on-chip: the producer does
        // not write it and the consumer does not read it back. Clamp per part
        // so an optimistic intermediate estimate cannot go negative.
        int64_t on_chip = 0;
        if (i > 0) {
            on_chip += fused.intermediate_bytes[i - 1];
        }
        if (i + 1 < n) {
            on_chip += fused.intermediate_bytes[i];
        }
        out.bytes += std::max<int64_t>(0, part.bytes - on_chip);
        out.parallel_items = std::max(out.parallel_items, part.parallel_items);
        out.irregular = out.irregular || part.irregular;
    }
    return out;
}

SimTime
FusedDuration(const DeviceSpec& spec, const FusedKernelDesc& fused)
{
    return KernelDuration(spec, Collapse(fused));
}

SimTime
UnfusedDuration(const DeviceSpec& spec, const FusedKernelDesc& fused)
{
    DGNN_CHECK(!fused.parts.empty(), "fused chain '", fused.name,
               "' has no parts");
    SimTime total = 0.0;
    for (const KernelDesc& part : fused.parts) {
        total += KernelDuration(spec, part);
    }
    return total;
}

SimTime
FusedSavings(const DeviceSpec& spec, const FusedKernelDesc& fused)
{
    return UnfusedDuration(spec, fused) - FusedDuration(spec, fused);
}

}  // namespace dgnn::sim
