#include "sim/kernel.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dgnn::sim {

double
Occupancy(const DeviceSpec& spec, const KernelDesc& kernel)
{
    DGNN_CHECK(kernel.parallel_items >= 1, "kernel '", kernel.name,
               "' has non-positive parallel_items ", kernel.parallel_items);
    const double raw = static_cast<double>(kernel.parallel_items) /
                       static_cast<double>(spec.saturation_items);
    return std::clamp(raw, spec.occupancy_floor, 1.0);
}

SimTime
ComputeTime(const DeviceSpec& spec, const KernelDesc& kernel)
{
    DGNN_CHECK(kernel.flops >= 0 && kernel.bytes >= 0, "kernel '", kernel.name,
               "' has negative work");
    const double occ = Occupancy(spec, kernel);

    // GFLOP/s == kflops per microsecond.
    const double flops_per_us = spec.peak_gflops * 1e3 * occ;
    const SimTime t_comp =
        flops_per_us > 0.0 ? static_cast<double>(kernel.flops) / flops_per_us : 0.0;

    // GB/s == kbytes per microsecond. Memory saturates faster than compute
    // (a quarter of the device streams near-full bandwidth).
    double bw_per_us = spec.mem_bw_gbps * 1e3 * std::min(1.0, 4.0 * occ);
    if (kernel.irregular) {
        bw_per_us /= spec.irregular_penalty;
    }
    const SimTime t_mem =
        bw_per_us > 0.0 ? static_cast<double>(kernel.bytes) / bw_per_us : 0.0;

    return std::max(t_comp, t_mem);
}

SimTime
KernelDuration(const DeviceSpec& spec, const KernelDesc& kernel)
{
    return spec.launch_overhead_us + ComputeTime(spec, kernel);
}

}  // namespace dgnn::sim
