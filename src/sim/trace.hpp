#pragma once

/// @file
/// Event trace recorded by the runtime — the simulated equivalent of an
/// NVIDIA Nsight Systems timeline. Analysis utilities (breakdowns,
/// utilization timelines, chrome-trace export) live in core/.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/sim_time.hpp"

namespace dgnn::sim {

/// What kind of activity a trace event records.
enum class EventKind {
    kKernel,    ///< Device compute kernel.
    kTransfer,  ///< PCIe copy (either direction).
    kHostOp,    ///< Host-side (CPU thread) operation.
    kSync,      ///< Host blocked waiting for a device.
    kMarker,    ///< Zero-cost annotation (phase boundaries, warm-up stages).
};

const char* ToString(EventKind kind);

/// Direction of a transfer event.
enum class CopyDirection {
    kHostToDevice,
    kDeviceToHost,
    kNone,
};

const char* ToString(CopyDirection dir);

/// One timeline entry.
struct TraceEvent {
    EventKind kind = EventKind::kMarker;
    /// Kernel/op name ("gemm", "h2d", "sampling_bisect", ...).
    std::string name;
    /// Profiler category active at issue time ("GNN", "Memory Copy", ...).
    std::string category;
    /// Device name the event ran on ("RTX A6000", "Xeon Gold 6226R", "PCIe").
    std::string device;
    SimTime start_us = 0.0;
    SimTime end_us = 0.0;
    /// Occupancy for kernels (0 for other kinds).
    double occupancy = 0.0;
    int64_t flops = 0;
    int64_t bytes = 0;
    /// Parallel work items and access-pattern flag of the issuing
    /// KernelDesc (kKernel/kHostOp only). Together with flops/bytes these
    /// make the descriptor reconstructible from the trace, which is what
    /// serve::ModelSession relies on to replay captured batches.
    int64_t parallel_items = 1;
    bool irregular = false;
    CopyDirection direction = CopyDirection::kNone;

    SimTime Duration() const { return end_us - start_us; }
};

/// Append-only event log for one run.
class Trace {
  public:
    void Add(TraceEvent event) { events_.push_back(std::move(event)); }

    const std::vector<TraceEvent>& Events() const { return events_; }
    size_t Size() const { return events_.size(); }
    bool Empty() const { return events_.empty(); }
    void Clear() { events_.clear(); }

    /// Latest end timestamp across all events (0 when empty).
    SimTime EndTime() const;

    /// Earliest start timestamp across all events (0 when empty).
    SimTime StartTime() const;

  private:
    std::vector<TraceEvent> events_;
};

}  // namespace dgnn::sim
