#include "sim/runtime.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dgnn::sim {

namespace {
const std::string kUncategorized = "Uncategorized";
}  // namespace

const char*
ToString(ExecMode mode)
{
    switch (mode) {
      case ExecMode::kCpuOnly:
        return "CPU";
      case ExecMode::kHybrid:
        return "GPU";
    }
    return "?";
}

const char*
ToString(StreamId id)
{
    switch (id) {
      case StreamId::kCompute:
        return "compute";
      case StreamId::kCopy:
        return "copy";
    }
    return "?";
}

const char*
ToString(OpKind kind)
{
    switch (kind) {
      case OpKind::kHostOp:
        return "host_op";
      case OpKind::kKernel:
        return "kernel";
      case OpKind::kCopyH2D:
        return "copy_h2d";
      case OpKind::kCopyD2H:
        return "copy_d2h";
      case OpKind::kCopyPeer:
        return "copy_peer";
    }
    return "?";
}

DeviceBuffer&
DeviceBuffer::operator=(DeviceBuffer&& other) noexcept
{
    if (this != &other) {
        Release();
        pool_ = other.pool_;
        id_ = other.id_;
        bytes_ = other.bytes_;
        other.pool_ = nullptr;
        other.id_ = 0;
        other.bytes_ = 0;
    }
    return *this;
}

void
DeviceBuffer::Release()
{
    if (pool_ != nullptr) {
        pool_->Free(id_);
        pool_ = nullptr;
        id_ = 0;
        bytes_ = 0;
    }
}

namespace {

/// Resolves a topology-carrying config to its node's concrete parameters,
/// so everything downstream reads one flat set of knobs. A config without
/// a topology passes through untouched (the historical single pair).
RuntimeConfig
ResolveTopology(RuntimeConfig config)
{
    if (config.topology.has_value()) {
        const TopologyNode& node = config.topology->NodeAt(config.device_index);
        config.cpu = node.cpu;
        config.gpu = node.gpu;
        config.pcie_bandwidth_gbps = node.host_link.bandwidth_gbps;
        config.pcie_latency_us = node.host_link.latency_us;
    }
    return config;
}

}  // namespace

Runtime::Runtime(RuntimeConfig config)
    : config_(ResolveTopology(std::move(config))),
      cpu_(config_.cpu),
      gpu_(config_.gpu),
      pcie_(config_.pcie_bandwidth_gbps, config_.pcie_latency_us),
      compute_stream_("compute"),
      copy_stream_("copy")
{
    DGNN_CHECK(config_.cpu.kind == DeviceKind::kCpu, "cpu spec must be a CPU");
    DGNN_CHECK(config_.gpu.kind == DeviceKind::kGpu, "gpu spec must be a GPU");
    if (config_.topology.has_value()) {
        const Topology& topo = *config_.topology;
        peer_links_.reserve(static_cast<size_t>(topo.DeviceCount()));
        for (int32_t peer = 0; peer < topo.DeviceCount(); ++peer) {
            // The self entry keeps the indexing direct; it is never used.
            const LinkSpec& link = peer == config_.device_index
                                       ? LinkSpec::PcieGen4()
                                       : topo.PeerLink(config_.device_index,
                                                       peer);
            peer_links_.emplace_back(link.bandwidth_gbps, link.latency_us);
        }
    }
}

const LinkSpec&
Runtime::PeerLinkSpec(int32_t peer) const
{
    DGNN_CHECK(HasTopology(), "PeerLinkSpec requires a topology");
    return config_.topology->PeerLink(config_.device_index, peer);
}

Device&
Runtime::Gpu()
{
    DGNN_CHECK(HasGpu(), "no GPU in CPU-only mode");
    return gpu_;
}

const Device&
Runtime::Gpu() const
{
    DGNN_CHECK(HasGpu(), "no GPU in CPU-only mode");
    return gpu_;
}

void
Runtime::PushCategory(std::string category)
{
    category_stack_.push_back(std::move(category));
}

void
Runtime::PopCategory()
{
    DGNN_CHECK(!category_stack_.empty(), "PopCategory on empty category stack");
    category_stack_.pop_back();
}

const std::string&
Runtime::CurrentCategory() const
{
    return category_stack_.empty() ? kUncategorized : category_stack_.back();
}

void
Runtime::PushAccess(AccessSet set)
{
    access_stack_.push_back(std::move(set));
}

void
Runtime::PopAccess()
{
    DGNN_CHECK(!access_stack_.empty(), "PopAccess on empty access stack");
    access_stack_.pop_back();
}

const AccessSet*
Runtime::CurrentAccess() const
{
    return access_stack_.empty() ? nullptr : &access_stack_.back();
}

void
Runtime::NotifyOp(OpKind kind, const std::string& name, bool on_host,
                  StreamId stream, bool blocking, SimTime start, SimTime end,
                  int64_t bytes)
{
    if (observer_ == nullptr) {
        return;
    }
    OpRecord record;
    record.kind = kind;
    record.name = &name;
    record.on_host = on_host;
    record.stream = stream;
    record.blocking = blocking;
    record.start_us = start;
    record.end_us = end;
    record.bytes = bytes;
    record.access = CurrentAccess();
    observer_->OnOp(record);
}

void
Runtime::AdvanceHost(SimTime delta_us)
{
    DGNN_ASSERT(delta_us >= 0.0);
    host_time_ += delta_us;
    category_time_[CurrentCategory()] += delta_us;
}

TraceEvent
Runtime::MakeEvent(EventKind kind, std::string name, std::string device, SimTime start,
                   SimTime end) const
{
    TraceEvent e;
    e.kind = kind;
    e.name = std::move(name);
    e.category = CurrentCategory();
    e.device = std::move(device);
    e.start_us = start;
    e.end_us = end;
    return e;
}

SimTime
Runtime::RunHost(const KernelDesc& kernel)
{
    const SimTime duration = KernelDuration(cpu_.Spec(), kernel);
    const double occ = Occupancy(cpu_.Spec(), kernel);
    const SimTime start = host_time_;
    AdvanceHost(duration);
    cpu_.AddBusy(duration, occ);

    TraceEvent e = MakeEvent(EventKind::kHostOp, kernel.name, cpu_.Name(), start,
                             host_time_);
    e.occupancy = occ;
    e.flops = kernel.flops;
    e.bytes = kernel.bytes;
    e.parallel_items = kernel.parallel_items;
    e.irregular = kernel.irregular;
    trace_.Add(std::move(e));
    NotifyOp(OpKind::kHostOp, kernel.name, /*on_host=*/true, StreamId::kCompute,
             /*blocking=*/true, start, host_time_, kernel.bytes);
    return host_time_;
}

SimTime
Runtime::RunHostFor(const std::string& name, SimTime duration_us)
{
    DGNN_CHECK(duration_us >= 0.0, "negative host duration ", duration_us);
    const SimTime start = host_time_;
    AdvanceHost(duration_us);
    cpu_.AddBusy(duration_us, cpu_.Spec().occupancy_floor);
    trace_.Add(MakeEvent(EventKind::kHostOp, name, cpu_.Name(), start, host_time_));
    NotifyOp(OpKind::kHostOp, name, /*on_host=*/true, StreamId::kCompute,
             /*blocking=*/true, start, host_time_, 0);
    return host_time_;
}

SimTime
Runtime::Launch(const KernelDesc& kernel)
{
    Device& dev = ComputeDevice();
    const SimTime duration = KernelDuration(dev.Spec(), kernel);
    const SimTime execution = ComputeTime(dev.Spec(), kernel);
    const double occ = Occupancy(dev.Spec(), kernel);

    SimTime start;
    SimTime end;
    if (HasGpu()) {
        // Asynchronous: host pays the submit cost, the kernel queues on the
        // compute stream behind previously launched work.
        const SimTime earliest = host_time_ + config_.submit_overhead_us;
        const Stream::Interval iv = compute_stream_.Enqueue(earliest, duration);
        start = iv.start;
        end = iv.end;
        AdvanceHost(config_.submit_overhead_us);
    } else {
        // Synchronous on the CPU: the host thread *is* the device.
        start = host_time_;
        end = start + duration;
        AdvanceHost(duration);
    }
    // Only the execution portion keeps the device busy; the launch gap is
    // idle time (this is what nvidia-smi-style utilization measures).
    dev.AddBusy(execution, occ);

    // The trace event spans the execution interval, after the launch gap.
    TraceEvent e =
        MakeEvent(EventKind::kKernel, kernel.name, dev.Name(), end - execution, end);
    e.occupancy = occ;
    e.flops = kernel.flops;
    e.bytes = kernel.bytes;
    e.parallel_items = kernel.parallel_items;
    e.irregular = kernel.irregular;
    trace_.Add(std::move(e));
    NotifyOp(OpKind::kKernel, kernel.name, /*on_host=*/!HasGpu(),
             StreamId::kCompute, /*blocking=*/!HasGpu(), end - execution, end,
             kernel.bytes);
    return end;
}

SimTime
Runtime::CopyToDevice(int64_t bytes, const std::string& what)
{
    if (!HasGpu()) {
        return host_time_;
    }
    const Stream::Interval iv = pcie_.Schedule(host_time_, bytes);
    const SimTime start = host_time_;
    AdvanceHost(iv.end - host_time_);
    h2d_bytes_ += bytes;
    ++transfer_count_;
    transfer_time_us_ += host_time_ - start;
    // Data is visible to later kernels: the stream may not start work that
    // was issued after this copy before the copy ends. Enqueue a zero-length
    // fence at the copy end.
    compute_stream_.Enqueue(iv.end, 0.0);

    TraceEvent e = MakeEvent(EventKind::kTransfer, what, "PCIe", iv.start, iv.end);
    e.bytes = bytes;
    e.direction = CopyDirection::kHostToDevice;
    trace_.Add(std::move(e));
    NotifyOp(OpKind::kCopyH2D, what, /*on_host=*/true, StreamId::kCompute,
             /*blocking=*/true, iv.start, iv.end, bytes);
    return host_time_;
}

SimTime
Runtime::CopyToHost(int64_t bytes, const std::string& what)
{
    if (!HasGpu()) {
        return host_time_;
    }
    // The copy reads results produced on the compute stream: wait for it.
    const SimTime earliest = std::max(host_time_, compute_stream_.ReadyTime());
    const Stream::Interval iv = pcie_.Schedule(earliest, bytes);
    const SimTime start = host_time_;
    AdvanceHost(iv.end - host_time_);
    d2h_bytes_ += bytes;
    ++transfer_count_;
    transfer_time_us_ += host_time_ - start;

    TraceEvent e = MakeEvent(EventKind::kTransfer, what, "PCIe", iv.start, iv.end);
    e.bytes = bytes;
    e.direction = CopyDirection::kDeviceToHost;
    trace_.Add(std::move(e));
    NotifyOp(OpKind::kCopyD2H, what, /*on_host=*/true, StreamId::kCompute,
             /*blocking=*/true, iv.start, iv.end, bytes);
    return host_time_;
}

namespace {

/// The device-side gather assembling cached rows into the batch's staging
/// buffer (the index_select a real framework issues): one scattered read
/// plus one contiguous write per row.
KernelDesc
CacheHitGatherKernel(int64_t hit_rows, int64_t row_bytes, const std::string& what)
{
    KernelDesc k;
    k.name = what + ":cache_hit_gather";
    k.flops = hit_rows * row_bytes / 4;
    k.bytes = 2 * hit_rows * row_bytes;
    k.parallel_items = std::max<int64_t>(1, hit_rows * row_bytes / 4);
    k.irregular = true;
    return k;
}

}  // namespace

SimTime
Runtime::GatherToDevice(int64_t hit_rows, int64_t miss_rows, int64_t row_bytes,
                        const std::string& what)
{
    DGNN_CHECK(hit_rows >= 0 && miss_rows >= 0 && row_bytes > 0,
               "invalid cache gather: ", hit_rows, " hits, ", miss_rows,
               " misses, ", row_bytes, " bytes/row");
    if (!HasGpu()) {
        return host_time_;
    }
    if (miss_rows > 0) {
        CopyToDevice(miss_rows * row_bytes, what + ":cache_miss_h2d");
    }
    GatherHits(hit_rows, row_bytes, what);
    return host_time_;
}

SimTime
Runtime::GatherHits(int64_t hit_rows, int64_t row_bytes, const std::string& what)
{
    DGNN_CHECK(hit_rows >= 0 && row_bytes > 0, "invalid hit gather: ", hit_rows,
               " rows of ", row_bytes, " bytes");
    if (!HasGpu() || hit_rows == 0) {
        return host_time_;
    }
    cache_hit_bytes_ += hit_rows * row_bytes;
    return Launch(CacheHitGatherKernel(hit_rows, row_bytes, what));
}

SimTime
Runtime::WriteBackToHost(int64_t rows, int64_t row_bytes, const std::string& what)
{
    DGNN_CHECK(rows >= 0 && row_bytes > 0, "invalid write-back: ", rows,
               " rows of ", row_bytes, " bytes");
    if (!HasGpu() || rows == 0) {
        return host_time_;
    }
    return CopyToHost(rows * row_bytes, what + ":cache_writeback_d2h");
}

Stream&
Runtime::StreamFor(StreamId id)
{
    return id == StreamId::kCompute ? compute_stream_ : copy_stream_;
}

const Stream&
Runtime::StreamFor(StreamId id) const
{
    return id == StreamId::kCompute ? compute_stream_ : copy_stream_;
}

SimTime
Runtime::StreamReadyTime(StreamId stream) const
{
    return StreamFor(stream).ReadyTime();
}

SimTime
Runtime::CopyToDeviceAsync(int64_t bytes, const std::string& what)
{
    if (!HasGpu()) {
        return host_time_;
    }
    // Pinned-memory semantics: the host only submits; the DMA engine runs
    // the transfer once both the PCIe link and the copy stream are free.
    AdvanceHost(config_.submit_overhead_us);
    const SimTime earliest = std::max(host_time_, copy_stream_.ReadyTime());
    const Stream::Interval iv = pcie_.Schedule(earliest, bytes);
    copy_stream_.Enqueue(iv.end, 0.0);
    h2d_bytes_ += bytes;
    ++transfer_count_;

    TraceEvent e = MakeEvent(EventKind::kTransfer, what, "PCIe", iv.start, iv.end);
    e.bytes = bytes;
    e.direction = CopyDirection::kHostToDevice;
    trace_.Add(std::move(e));
    NotifyOp(OpKind::kCopyH2D, what, /*on_host=*/false, StreamId::kCopy,
             /*blocking=*/false, iv.start, iv.end, bytes);
    return iv.end;
}

SimTime
Runtime::CopyToHostAsync(int64_t bytes, const std::string& what)
{
    if (!HasGpu()) {
        return host_time_;
    }
    AdvanceHost(config_.submit_overhead_us);
    const SimTime earliest = std::max(host_time_, copy_stream_.ReadyTime());
    const Stream::Interval iv = pcie_.Schedule(earliest, bytes);
    copy_stream_.Enqueue(iv.end, 0.0);
    d2h_bytes_ += bytes;
    ++transfer_count_;

    TraceEvent e = MakeEvent(EventKind::kTransfer, what, "PCIe", iv.start, iv.end);
    e.bytes = bytes;
    e.direction = CopyDirection::kDeviceToHost;
    trace_.Add(std::move(e));
    NotifyOp(OpKind::kCopyD2H, what, /*on_host=*/false, StreamId::kCopy,
             /*blocking=*/false, iv.start, iv.end, bytes);
    return iv.end;
}

SimTime
Runtime::PeerCopyAsync(int32_t peer, int64_t bytes, const std::string& what)
{
    DGNN_CHECK(HasTopology(), "PeerCopyAsync requires a topology");
    DGNN_CHECK(peer >= 0 && peer < ClusterDevices() &&
                   peer != config_.device_index,
               "invalid peer ", peer, " for device ", config_.device_index,
               " in a ", ClusterDevices(), "-device topology");
    DGNN_CHECK(bytes >= 0, "negative peer-copy size ", bytes);
    if (!HasGpu()) {
        return host_time_;
    }
    // Same submission semantics as the pinned async copies: the host only
    // submits; the transfer runs once both the directed peer link and the
    // copy stream are free.
    AdvanceHost(config_.submit_overhead_us);
    const SimTime earliest = std::max(host_time_, copy_stream_.ReadyTime());
    const Stream::Interval iv =
        peer_links_[static_cast<size_t>(peer)].Schedule(earliest, bytes);
    copy_stream_.Enqueue(iv.end, 0.0);
    peer_bytes_ += bytes;
    ++peer_copy_count_;
    peer_link_time_us_ += iv.end - iv.start;

    TraceEvent e = MakeEvent(EventKind::kTransfer, what,
                             std::string("peer:") +
                                 ToString(PeerLinkSpec(peer).kind),
                             iv.start, iv.end);
    e.bytes = bytes;
    trace_.Add(std::move(e));
    NotifyOp(OpKind::kCopyPeer, what, /*on_host=*/false, StreamId::kCopy,
             /*blocking=*/false, iv.start, iv.end, bytes);
    return iv.end;
}

Event
Runtime::RecordEvent(StreamId stream)
{
    Event event;
    event.id = next_event_id_++;
    if (!HasGpu()) {
        event.ready_us = host_time_;
    } else {
        AdvanceHost(config_.event_overhead_us);
        // The event completes when work already on the stream completes; an
        // idle stream completes it immediately (at the record point).
        event.ready_us = std::max(StreamFor(stream).ReadyTime(), host_time_);
    }
    if (observer_ != nullptr) {
        observer_->OnEventRecorded(event, stream);
    }
    return event;
}

void
Runtime::StreamWaitEvent(StreamId stream, const Event& event)
{
    if (!HasGpu()) {
        return;
    }
    AdvanceHost(config_.event_overhead_us);
    StreamFor(stream).Enqueue(event.ready_us, 0.0);
    if (observer_ != nullptr) {
        observer_->OnStreamWaitEvent(stream, event);
    }
}

SimTime
Runtime::WaitEvent(const Event& event)
{
    if (event.ready_us > host_time_) {
        const SimTime start = host_time_;
        sync_wait_us_ += event.ready_us - host_time_;
        AdvanceHost(event.ready_us - host_time_);
        trace_.Add(MakeEvent(EventKind::kSync, "event_wait", cpu_.Name(), start,
                             host_time_));
    }
    // The ordering edge exists even when the event had already completed.
    if (observer_ != nullptr) {
        observer_->OnHostWaitEvent(event);
    }
    return host_time_;
}

SimTime
Runtime::IdleUntil(SimTime until_us)
{
    if (until_us > host_time_) {
        const SimTime start = host_time_;
        AdvanceHost(until_us - host_time_);
        trace_.Add(
            MakeEvent(EventKind::kHostOp, "idle", cpu_.Name(), start, host_time_));
    }
    return host_time_;
}

SimTime
Runtime::Synchronize()
{
    if (!HasGpu()) {
        return host_time_;
    }
    const SimTime ready =
        std::max(compute_stream_.ReadyTime(), copy_stream_.ReadyTime());
    if (ready > host_time_) {
        const SimTime start = host_time_;
        sync_wait_us_ += ready - host_time_;
        AdvanceHost(ready - host_time_);
        trace_.Add(MakeEvent(EventKind::kSync, "cuda_synchronize", cpu_.Name(), start,
                             host_time_));
    }
    if (observer_ != nullptr) {
        observer_->OnSynchronize();
    }
    return host_time_;
}

void
Runtime::Marker(const std::string& name)
{
    trace_.Add(MakeEvent(EventKind::kMarker, name, cpu_.Name(), host_time_,
                         host_time_));
}

DeviceBuffer
Runtime::AllocDevice(int64_t bytes, const std::string& label)
{
    Device& dev = ComputeDevice();
    const int64_t id = dev.Memory().Allocate(bytes, label);
    return DeviceBuffer(&dev.Memory(), id, bytes);
}

DeviceBuffer
Runtime::AllocHost(int64_t bytes, const std::string& label)
{
    const int64_t id = cpu_.Memory().Allocate(bytes, label);
    return DeviceBuffer(&cpu_.Memory(), id, bytes);
}

const OneTimeWarmup&
Runtime::EnsureWarm(int64_t weight_bytes)
{
    if (one_time_warmup_.has_value()) {
        return *one_time_warmup_;
    }
    const DeviceSpec& spec = ComputeDevice().Spec();
    OneTimeWarmup w = ComputeOneTimeWarmup(spec, pcie_, weight_bytes);

    const SimTime t0 = host_time_;
    AdvanceHost(w.context_init_us);
    trace_.Add(MakeEvent(EventKind::kMarker, "warmup:context_init",
                         ComputeDevice().Name(), t0, host_time_));
    const SimTime t1 = host_time_;
    AdvanceHost(w.model_init_us);
    trace_.Add(MakeEvent(EventKind::kMarker, "warmup:model_init",
                         ComputeDevice().Name(), t1, host_time_));
    if (w.weight_transfer_us > 0.0) {
        const SimTime t2 = host_time_;
        AdvanceHost(w.weight_transfer_us);
        TraceEvent e = MakeEvent(EventKind::kTransfer, "warmup:weights_h2d", "PCIe", t2,
                                 host_time_);
        e.bytes = weight_bytes;
        e.direction = CopyDirection::kHostToDevice;
        trace_.Add(std::move(e));
    }
    // Warm-up stalls the compute stream too: nothing ran before it.
    compute_stream_.Enqueue(host_time_, 0.0);

    one_time_warmup_ = w;
    return *one_time_warmup_;
}

PerRunWarmup
Runtime::RunAllocWarmup(int64_t working_set_bytes)
{
    const PerRunWarmup w =
        ComputePerRunWarmup(ComputeDevice().Spec(), working_set_bytes);
    const SimTime start = host_time_;
    AdvanceHost(w.TotalUs());
    trace_.Add(MakeEvent(EventKind::kMarker, "warmup:alloc", ComputeDevice().Name(),
                         start, host_time_));
    compute_stream_.Enqueue(host_time_, 0.0);
    return w;
}

void
Runtime::ResetMeasurementWindow()
{
    (void)Synchronize();
    measure_start_ = host_time_;
    cpu_.ResetBusy();
    gpu_.ResetBusy();
    cpu_.Memory().ResetPeak();
    gpu_.Memory().ResetPeak();
    h2d_bytes_ = 0;
    d2h_bytes_ = 0;
    cache_hit_bytes_ = 0;
    transfer_count_ = 0;
    peer_bytes_ = 0;
    peer_copy_count_ = 0;
    peer_link_time_us_ = 0.0;
    sync_wait_us_ = 0.0;
    transfer_time_us_ = 0.0;
    category_time_.clear();
}

double
Runtime::ComputeUtilizationPct() const
{
    const SimTime elapsed = ElapsedInWindow();
    return ComputeDevice().UtilizationPct(elapsed);
}

}  // namespace dgnn::sim
