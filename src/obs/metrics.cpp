#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "core/bench_json_writer.hpp"

namespace dgnn::obs {

namespace {

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string
EscapeLabelValue(const std::string& raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

}  // namespace

std::string
RenderLabels(const Labels& labels)
{
    if (labels.empty()) {
        return "";
    }
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    std::string out = "{";
    bool first = true;
    for (const auto& [key, value] : sorted) {
        if (!first) {
            out += ",";
        }
        first = false;
        out += key;
        out += "=\"";
        out += EscapeLabelValue(value);
        out += "\"";
    }
    out += "}";
    return out;
}

std::string
FormatMetricValue(double value)
{
    if (std::floor(value) == value && std::abs(value) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(value));
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    std::string out = buf;
    // Trim trailing zeros but keep at least one fractional digit so the
    // value never re-reads as an integer.
    while (out.size() > 2 && out.back() == '0' &&
           out[out.size() - 2] != '.') {
        out.pop_back();
    }
    return out;
}

void
MetricsRegistry::CounterAdd(const std::string& name, double delta,
                            const Labels& labels)
{
    counters_[{name, RenderLabels(labels)}] += delta;
}

void
MetricsRegistry::GaugeSet(const std::string& name, double value,
                          const Labels& labels)
{
    gauges_[{name, RenderLabels(labels)}] = value;
}

void
MetricsRegistry::SummaryObserve(const std::string& name, double value,
                                const Labels& labels)
{
    summaries_[{name, RenderLabels(labels)}].Record(value);
}

double
MetricsRegistry::CounterValue(const std::string& name,
                              const Labels& labels) const
{
    const auto it = counters_.find({name, RenderLabels(labels)});
    return it != counters_.end() ? it->second : 0.0;
}

double
MetricsRegistry::GaugeValue(const std::string& name, const Labels& labels) const
{
    const auto it = gauges_.find({name, RenderLabels(labels)});
    return it != gauges_.end() ? it->second : 0.0;
}

const core::RunningStat*
MetricsRegistry::Summary(const std::string& name, const Labels& labels) const
{
    const auto it = summaries_.find({name, RenderLabels(labels)});
    return it != summaries_.end() ? &it->second : nullptr;
}

int64_t
MetricsRegistry::InstrumentCount() const
{
    return static_cast<int64_t>(counters_.size() + gauges_.size() +
                                summaries_.size());
}

std::string
MetricsRegistry::PrometheusText() const
{
    std::ostringstream oss;
    // Each family emits its TYPE header once, before its first series; the
    // maps iterate in (name, labels) order, so series of one name are
    // contiguous.
    auto emit_scalar = [&oss](const std::map<SeriesKey, double>& series,
                              const char* type) {
        std::string current;
        for (const auto& [key, value] : series) {
            if (key.first != current) {
                current = key.first;
                oss << "# TYPE " << current << " " << type << "\n";
            }
            oss << key.first << key.second << " " << FormatMetricValue(value)
                << "\n";
        }
    };
    emit_scalar(counters_, "counter");
    emit_scalar(gauges_, "gauge");
    std::string current;
    for (const auto& [key, stat] : summaries_) {
        if (key.first != current) {
            current = key.first;
            oss << "# TYPE " << current << " summary\n";
        }
        oss << key.first << "_count" << key.second << " "
            << FormatMetricValue(static_cast<double>(stat.Count())) << "\n";
        oss << key.first << "_sum" << key.second << " "
            << FormatMetricValue(stat.Sum()) << "\n";
        oss << key.first << "_min" << key.second << " "
            << FormatMetricValue(stat.Min()) << "\n";
        oss << key.first << "_mean" << key.second << " "
            << FormatMetricValue(stat.Mean()) << "\n";
        oss << key.first << "_max" << key.second << " "
            << FormatMetricValue(stat.Max()) << "\n";
        oss << key.first << "_stddev" << key.second << " "
            << FormatMetricValue(stat.StdDev()) << "\n";
    }
    return oss.str();
}

std::string
MetricsRegistry::ToJson() const
{
    core::BenchJsonWriter writer("metrics_snapshot");
    for (const auto& [key, value] : counters_) {
        writer.BeginRecord();
        writer.Field("metric", key.first);
        writer.Field("type", "counter");
        writer.Field("labels", key.second);
        writer.Field("value", value, 6);
    }
    for (const auto& [key, value] : gauges_) {
        writer.BeginRecord();
        writer.Field("metric", key.first);
        writer.Field("type", "gauge");
        writer.Field("labels", key.second);
        writer.Field("value", value, 6);
    }
    for (const auto& [key, stat] : summaries_) {
        writer.BeginRecord();
        writer.Field("metric", key.first);
        writer.Field("type", "summary");
        writer.Field("labels", key.second);
        writer.Field("count", stat.Count());
        writer.Field("sum", stat.Sum(), 6);
        writer.Field("min", stat.Min(), 6);
        writer.Field("mean", stat.Mean(), 6);
        writer.Field("max", stat.Max(), 6);
        writer.Field("stddev", stat.StdDev(), 6);
    }
    return writer.ToString();
}

}  // namespace dgnn::obs
