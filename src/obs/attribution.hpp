#pragma once

/// @file
/// Online bottleneck attribution — the paper's Fig 6/7 taxonomy applied
/// per batch, while serving. Each dispatched batch's time decomposes into
/// four components built from its spans:
///
///   queueing = mean member queue wait + pipeline-throttle stall
///              (time the work existed but the server couldn't start it)
///   host     = host-side batch build + submit overheads
///   transfer = PCIe input staging (H2D) + result/write-back return (D2H)
///   compute  = device kernel execution (incl. the cache hit-gather)
///
/// The batch is classified by its largest component. Aggregating the
/// classifications over a run yields the scenario's bottleneck profile:
/// a flash crowd drives batches queueing-dominated, a cache-adversarial
/// node stream (hit rate collapsed, every batch re-staging state over
/// PCIe) drives them transfer-dominated — the online analogue of the
/// paper's offline breakdown flip between CPU- and GPU-side bottlenecks.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/observer.hpp"

namespace dgnn::obs {

/// The dominant-cost taxonomy. kCrossShard (the peer-link time a batch's
/// alltoall exchange occupied — sharded serving only) is appended LAST so
/// every pre-scale-out consumer indexing the first four categories, and
/// every unsharded run (where it is identically zero), is unaffected.
enum class BottleneckCategory {
    kQueueing,
    kHost,
    kTransfer,
    kCompute,
    kCrossShard,
};

inline constexpr int kNumBottleneckCategories = 5;

const char* ToString(BottleneckCategory category);

/// One batch's component decomposition and verdict.
struct BatchAttribution {
    int64_t batch_index = 0;
    double queueing_us = 0.0;
    double host_us = 0.0;
    double transfer_us = 0.0;
    double compute_us = 0.0;
    /// Peer-link occupancy of the batch's cross-shard exchange. NOTE: the
    /// exchange overlaps the stage it delays (the copy stream), so unlike
    /// the other four this component does not extend the span telescope —
    /// it over-covers in sharded runs and is zero otherwise.
    double cross_shard_us = 0.0;
    BottleneckCategory dominant = BottleneckCategory::kQueueing;

    double TotalUs() const
    {
        return queueing_us + host_us + transfer_us + compute_us +
               cross_shard_us;
    }
};

/// Largest component wins; ties break in enum order (queueing first),
/// deterministically. The defaulted cross-shard component keeps every
/// pre-scale-out call site's verdicts unchanged.
BottleneckCategory Classify(double queueing_us, double host_us,
                            double transfer_us, double compute_us,
                            double cross_shard_us = 0.0);

/// Run-level aggregate of per-batch verdicts.
struct AttributionSummary {
    /// Batches classified into each category, indexed by BottleneckCategory.
    std::array<int64_t, kNumBottleneckCategories> batches{};
    /// Total component time accumulated across all batches, us.
    std::array<double, kNumBottleneckCategories> total_us{};
    int64_t total_batches = 0;

    /// Share of batches carrying the category's verdict, percent.
    double BatchSharePct(BottleneckCategory category) const;
    /// Share of summed component time, percent.
    double TimeSharePct(BottleneckCategory category) const;
    /// Category with the most batch verdicts (ties: enum order).
    BottleneckCategory Dominant() const;
    /// Category with the largest summed component time (ties: enum order).
    /// Batch votes weight every batch equally; this weights by time, so a
    /// few giant queueing batches can out-rank many small host-bound ones.
    BottleneckCategory DominantByTime() const;
};

/// Classifies every observed batch and aggregates the verdicts.
class BottleneckAttributor {
  public:
    void OnBatch(const serve::BatchObservation& ob);

    const std::vector<BatchAttribution>& Batches() const { return batches_; }
    AttributionSummary Summary() const;

    void Clear() { batches_.clear(); }

  private:
    std::vector<BatchAttribution> batches_;
};

/// Per-placement accounting of one run's dispatch verdicts.
struct PlacementBucket {
    int64_t batches = 0;
    /// Sum of the dispatcher's predicted service time for batches routed
    /// here, us.
    double predicted_us = 0.0;
    /// Sum of the measured in-executor service time (stall_done ->
    /// complete, i.e. excluding queue wait), us.
    double actual_us = 0.0;
};

/// Audits the hybrid dispatcher through the observation seam: how batches
/// were routed and how the cost-model predictions the routing was based on
/// compare against the measured executor spans (predict-then-place, then
/// verify). Ignores batches without a decision, so it composes with
/// dispatcherless runs.
class DispatchLedger {
  public:
    void OnBatch(const serve::BatchObservation& ob);

    const std::array<PlacementBucket, dispatch::kNumPlacements>& Buckets()
        const
    {
        return buckets_;
    }
    const PlacementBucket& Bucket(dispatch::Placement placement) const
    {
        return buckets_[static_cast<size_t>(placement)];
    }

    /// Batches that carried a dispatch decision.
    int64_t RoutedBatches() const;

    /// Mean |predicted - actual| / actual over routed batches, the
    /// prediction-quality figure (0 when nothing was routed).
    double MeanRelativeError() const;

    void Clear();

  private:
    std::array<PlacementBucket, dispatch::kNumPlacements> buckets_{};
    double rel_error_sum_ = 0.0;
    int64_t routed_ = 0;
};

}  // namespace dgnn::obs
