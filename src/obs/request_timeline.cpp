#include "obs/request_timeline.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace dgnn::obs {

const char*
ToString(SpanKind kind)
{
    switch (kind) {
      case SpanKind::kQueue:
        return "queue";
      case SpanKind::kStall:
        return "stall";
      case SpanKind::kHostPrep:
        return "host";
      case SpanKind::kH2d:
        return "h2d";
      case SpanKind::kCompute:
        return "compute";
      case SpanKind::kD2h:
        return "d2h";
    }
    return "?";
}

double
RequestRecord::SpanTotalUs() const
{
    double total = 0.0;
    for (const double s : span_us) {
        total += s;
    }
    return total;
}

void
RequestTimeline::RecordBatch(const serve::BatchObservation& ob)
{
    const serve::BatchSpans& s = ob.spans;
    const auto batch_size = static_cast<int64_t>(ob.requests.size());
    DGNN_CHECK(batch_size > 0, "batch observation with no member requests");
    const double denom = static_cast<double>(batch_size);
    const double h2d_share =
        ob.profile != nullptr
            ? static_cast<double>(ob.profile->h2d_bytes +
                                  ob.cache_cost.miss_rows *
                                      ob.cache_cost.row_bytes) / denom
            : 0.0;
    const double d2h_share =
        ob.profile != nullptr
            ? static_cast<double>(ob.profile->d2h_bytes +
                                  ob.cache_cost.WritebackBytes()) / denom
            : 0.0;
    for (const serve::Request& r : ob.requests) {
        RequestRecord rec;
        rec.id = r.id;
        rec.batch_index = ob.batch_index;
        rec.batch_size = batch_size;
        rec.arrival_us = r.arrival_us;
        rec.complete_us = s.complete_us;
        // Arrivals precede their dispatch by construction (the server
        // admits before it batches), so the queue span is non-negative.
        rec.span_us[static_cast<size_t>(SpanKind::kQueue)] =
            s.dispatch_us - r.arrival_us;
        rec.span_us[static_cast<size_t>(SpanKind::kStall)] =
            s.stall_done_us - s.dispatch_us;
        rec.span_us[static_cast<size_t>(SpanKind::kHostPrep)] =
            s.host_done_us - s.stall_done_us;
        rec.span_us[static_cast<size_t>(SpanKind::kH2d)] =
            s.h2d_done_us - s.host_done_us;
        rec.span_us[static_cast<size_t>(SpanKind::kCompute)] =
            s.compute_done_us - s.h2d_done_us;
        rec.span_us[static_cast<size_t>(SpanKind::kD2h)] =
            s.complete_us - s.compute_done_us;
        rec.h2d_bytes_share = h2d_share;
        rec.d2h_bytes_share = d2h_share;
        records_.push_back(rec);
    }
}

double
RequestTimeline::MaxConservationErrorUs() const
{
    double worst = 0.0;
    for (const RequestRecord& rec : records_) {
        worst = std::max(worst, std::abs(rec.SpanTotalUs() - rec.LatencyUs()));
    }
    return worst;
}

double
RequestTimeline::MeanSpanUs(SpanKind kind) const
{
    if (records_.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    for (const RequestRecord& rec : records_) {
        sum += rec.span_us[static_cast<size_t>(kind)];
    }
    return sum / static_cast<double>(records_.size());
}

}  // namespace dgnn::obs
