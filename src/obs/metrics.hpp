#pragma once

/// @file
/// Labeled metrics registry for the serving observability layer. Three
/// instrument kinds, matching the Prometheus data model:
///
///   * counter — monotone accumulator (requests served, bytes moved);
///   * gauge   — last-write-wins sample (queue depth at run end);
///   * summary — count/sum/min/mean/max/stddev over a value series
///               (batch sizes, per-stage span durations), backed by
///               core::RunningStat.
///
/// Every instrument is addressed by (name, label set). Export is
/// deterministic by construction — instruments sort by name then rendered
/// labels, and values print through one fixed formatter — so golden tests
/// can diff the Prometheus text exposition and the JSON snapshot byte for
/// byte. The JSON side rides core::BenchJsonWriter, giving metrics
/// snapshots the same schema-stable envelope as BENCH_*.json trajectories.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/latency_histogram.hpp"

namespace dgnn::obs {

/// One metric's label set: key/value pairs, canonicalized (sorted by key)
/// at render time. Pass {} for an unlabeled instrument.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonical rendering: {a="x",b="y"} with keys sorted, values escaped for
/// the Prometheus exposition format (backslash, quote, newline). Empty
/// label sets render as "".
std::string RenderLabels(const Labels& labels);

/// Deterministic value formatting shared by both exports: integral values
/// print without a fraction, others as fixed %.6f with trailing zeros
/// trimmed.
std::string FormatMetricValue(double value);

/// Registry of labeled counters, gauges, and summaries.
class MetricsRegistry {
  public:
    /// Adds @p delta to the counter, creating it at zero on first touch.
    void CounterAdd(const std::string& name, double delta,
                    const Labels& labels = {});

    /// Sets the gauge to @p value (last write wins).
    void GaugeSet(const std::string& name, double value,
                  const Labels& labels = {});

    /// Records @p value into the summary's RunningStat.
    void SummaryObserve(const std::string& name, double value,
                        const Labels& labels = {});

    double CounterValue(const std::string& name, const Labels& labels = {}) const;
    double GaugeValue(const std::string& name, const Labels& labels = {}) const;
    /// Null when the summary does not exist.
    const core::RunningStat* Summary(const std::string& name,
                                     const Labels& labels = {}) const;

    int64_t InstrumentCount() const;

    /// Prometheus text exposition: one "# TYPE" header per metric name,
    /// series sorted by (name, labels). Summaries expose _count, _sum,
    /// _min, _mean, _max, and _stddev series.
    std::string PrometheusText() const;

    /// Schema-stable JSON snapshot (BenchJsonWriter envelope, bench name
    /// "metrics_snapshot"): one record per series with fields
    /// {metric, type, labels, value...} in fixed order.
    std::string ToJson() const;

  private:
    /// (metric name, rendered labels) — the map order IS the export order.
    using SeriesKey = std::pair<std::string, std::string>;

    std::map<SeriesKey, double> counters_;
    std::map<SeriesKey, double> gauges_;
    std::map<SeriesKey, core::RunningStat> summaries_;
};

}  // namespace dgnn::obs
