#pragma once

/// @file
/// The serving observability facade: a serve::ServingObserver that fans
/// every hook out to the layer's components —
///
///   * MetricsRegistry       labeled counters/gauges/summaries, exported
///                           as Prometheus text or schema-stable JSON;
///   * RequestTimeline       per-request span records with the
///                           conservation invariant;
///   * WindowedMetrics       fixed-interval QPS/latency/hit-rate series;
///   * BottleneckAttributor  per-batch Fig 6/7-style classification.
///
/// Attach one instance through ServerOptions::observer. The observer only
/// READS serving state: the lower layers (sim/, cache/) never depend on
/// obs/ — instead the observer pulls from them, snapshotting the runtime's
/// counters and cache stats at run begin and diffing at run end, and
/// scanning the runtime's event trace from a cursor planted at run begin
/// (so warm-up events stay out of the run's figures). One instance may
/// observe several sequential runs; run-scoped metric labels (model, mode,
/// policy, executor) keep the series apart.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/request_timeline.hpp"
#include "obs/windowed_metrics.hpp"
#include "serve/observer.hpp"

namespace dgnn::obs {

/// Facade knobs.
struct ObservabilityOptions {
    /// Windowed-aggregation interval, us.
    sim::SimTime window_us = 100000.0;
    /// Keep per-request records (the timeline grows by one record per
    /// request; disable for very long runs where only aggregates matter).
    bool keep_request_records = true;
    /// Copy the runtime's device trace events at run end (needed for the
    /// merged chrome-trace export).
    bool keep_device_trace = true;
};

/// The composite observer.
class ServingObservability : public serve::ServingObserver {
  public:
    explicit ServingObservability(ObservabilityOptions options = {});

    // --- serve::ServingObserver ------------------------------------------
    void OnRunBegin(const serve::RunContext& ctx) override;
    void OnArrival(const serve::Request& request) override;
    void OnIdleWake(sim::SimTime wake_us, bool policy_wake) override;
    void OnBatch(const serve::BatchObservation& ob) override;
    void OnRunEnd() override;

    // --- components -------------------------------------------------------
    MetricsRegistry& Metrics() { return metrics_; }
    const MetricsRegistry& Metrics() const { return metrics_; }
    const RequestTimeline& Timeline() const { return timeline_; }
    const BottleneckAttributor& Attribution() const { return attribution_; }
    const WindowedMetrics& Windows() const { return windows_; }

    /// Chrome-trace (chrome://tracing / Perfetto) JSON merging the request
    /// span lanes with the device timeline: pid 1 carries the simulated
    /// device/host lanes (as core::ToChromeTraceJson emits them), pid 2
    /// carries one lane per serving stage with a slice per batch plus a
    /// request lane with one slice per request lifetime. All strings pass
    /// through core::JsonEscape.
    std::string MergedChromeTraceJson() const;

    int64_t RunsObserved() const { return runs_observed_; }

  private:
    ObservabilityOptions options_;

    // Run-scoped state, reset at each OnRunBegin.
    serve::RunContext ctx_;
    Labels run_labels_;
    bool run_active_ = false;
    size_t trace_cursor_ = 0;
    cache::CacheStats cache_before_;
    int64_t h2d_bytes_before_ = 0;
    int64_t d2h_bytes_before_ = 0;
    sim::SimTime sync_wait_before_ = 0.0;
    sim::SimTime transfer_time_before_ = 0.0;

    MetricsRegistry metrics_;
    RequestTimeline timeline_;
    BottleneckAttributor attribution_;
    WindowedMetrics windows_;
    /// Batch stage boundaries in arrival order (for the merged trace).
    std::vector<serve::BatchSpans> batch_spans_;
    /// Device/host trace events copied at run end.
    std::vector<sim::TraceEvent> device_events_;
    int64_t runs_observed_ = 0;
};

}  // namespace dgnn::obs
