#include "obs/attribution.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace dgnn::obs {

const char*
ToString(BottleneckCategory category)
{
    switch (category) {
      case BottleneckCategory::kQueueing:
        return "queueing";
      case BottleneckCategory::kHost:
        return "host";
      case BottleneckCategory::kTransfer:
        return "transfer";
      case BottleneckCategory::kCompute:
        return "compute";
      case BottleneckCategory::kCrossShard:
        return "cross-shard";
    }
    return "?";
}

BottleneckCategory
Classify(double queueing_us, double host_us, double transfer_us,
         double compute_us, double cross_shard_us)
{
    const std::array<double, kNumBottleneckCategories> components = {
        queueing_us, host_us, transfer_us, compute_us, cross_shard_us};
    size_t best = 0;
    for (size_t i = 1; i < components.size(); ++i) {
        // Strict > keeps ties on the earlier enum value.
        if (components[i] > components[best]) {
            best = i;
        }
    }
    return static_cast<BottleneckCategory>(best);
}

double
AttributionSummary::BatchSharePct(BottleneckCategory category) const
{
    return total_batches > 0
               ? 100.0 *
                     static_cast<double>(
                         batches[static_cast<size_t>(category)]) /
                     static_cast<double>(total_batches)
               : 0.0;
}

double
AttributionSummary::TimeSharePct(BottleneckCategory category) const
{
    double total = 0.0;
    for (const double t : total_us) {
        total += t;
    }
    return total > 0.0
               ? 100.0 * total_us[static_cast<size_t>(category)] / total
               : 0.0;
}

BottleneckCategory
AttributionSummary::Dominant() const
{
    size_t best = 0;
    for (size_t i = 1; i < batches.size(); ++i) {
        if (batches[i] > batches[best]) {
            best = i;
        }
    }
    return static_cast<BottleneckCategory>(best);
}

BottleneckCategory
AttributionSummary::DominantByTime() const
{
    return Classify(
        total_us[static_cast<size_t>(BottleneckCategory::kQueueing)],
        total_us[static_cast<size_t>(BottleneckCategory::kHost)],
        total_us[static_cast<size_t>(BottleneckCategory::kTransfer)],
        total_us[static_cast<size_t>(BottleneckCategory::kCompute)],
        total_us[static_cast<size_t>(BottleneckCategory::kCrossShard)]);
}

void
BottleneckAttributor::OnBatch(const serve::BatchObservation& ob)
{
    const serve::BatchSpans& s = ob.spans;
    DGNN_CHECK(!ob.requests.empty(), "batch observation with no members");

    BatchAttribution a;
    a.batch_index = ob.batch_index;
    // Queue wait is request-specific; the batch carries its members' mean.
    double queue_sum = 0.0;
    for (const serve::Request& r : ob.requests) {
        queue_sum += s.dispatch_us - r.arrival_us;
    }
    a.queueing_us = queue_sum / static_cast<double>(ob.requests.size()) +
                    (s.stall_done_us - s.dispatch_us);
    a.host_us = s.host_done_us - s.stall_done_us;
    a.transfer_us = (s.h2d_done_us - s.host_done_us) +
                    (s.complete_us - s.compute_done_us);
    a.compute_us = s.compute_done_us - s.h2d_done_us;
    a.cross_shard_us = ob.exchange.link_us;
    a.dominant = Classify(a.queueing_us, a.host_us, a.transfer_us,
                          a.compute_us, a.cross_shard_us);
    batches_.push_back(a);
}

void
DispatchLedger::OnBatch(const serve::BatchObservation& ob)
{
    if (!ob.decision.has_value()) {
        return;
    }
    const dispatch::PlacementDecision& d = *ob.decision;
    PlacementBucket& bucket = buckets_[static_cast<size_t>(d.placement)];
    double predicted = 0.0;
    switch (d.placement) {
      case dispatch::Placement::kCpu:
        predicted = d.predicted_cpu_us;
        break;
      case dispatch::Placement::kGpu:
        predicted = d.predicted_gpu_us;
        break;
      case dispatch::Placement::kGpuFused:
        predicted = d.predicted_gpu_fused_us;
        break;
    }
    // In-executor service time: everything after the throttle stall. The
    // prediction models exactly this window (host build + transfers +
    // kernels), not the queue wait in front of it.
    const double actual = ob.spans.complete_us - ob.spans.stall_done_us;
    ++bucket.batches;
    bucket.predicted_us += predicted;
    bucket.actual_us += actual;
    if (actual > 0.0) {
        rel_error_sum_ += std::abs(predicted - actual) / actual;
    }
    ++routed_;
}

int64_t
DispatchLedger::RoutedBatches() const
{
    return routed_;
}

double
DispatchLedger::MeanRelativeError() const
{
    return routed_ > 0 ? rel_error_sum_ / static_cast<double>(routed_) : 0.0;
}

void
DispatchLedger::Clear()
{
    buckets_ = {};
    rel_error_sum_ = 0.0;
    routed_ = 0;
}

AttributionSummary
BottleneckAttributor::Summary() const
{
    AttributionSummary summary;
    summary.total_batches = static_cast<int64_t>(batches_.size());
    for (const BatchAttribution& a : batches_) {
        ++summary.batches[static_cast<size_t>(a.dominant)];
        summary.total_us[static_cast<size_t>(BottleneckCategory::kQueueing)] +=
            a.queueing_us;
        summary.total_us[static_cast<size_t>(BottleneckCategory::kHost)] +=
            a.host_us;
        summary.total_us[static_cast<size_t>(BottleneckCategory::kTransfer)] +=
            a.transfer_us;
        summary.total_us[static_cast<size_t>(BottleneckCategory::kCompute)] +=
            a.compute_us;
        summary
            .total_us[static_cast<size_t>(BottleneckCategory::kCrossShard)] +=
            a.cross_shard_us;
    }
    return summary;
}

}  // namespace dgnn::obs
