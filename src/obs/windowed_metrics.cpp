#include "obs/windowed_metrics.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace dgnn::obs {

double
WindowStats::Qps(sim::SimTime window_us) const
{
    return window_us > 0.0
               ? static_cast<double>(completions) / window_us * 1e6
               : 0.0;
}

double
WindowStats::HitRate() const
{
    const int64_t rows = cache_hit_rows + cache_miss_rows;
    return rows > 0 ? static_cast<double>(cache_hit_rows) /
                          static_cast<double>(rows)
                    : 0.0;
}

WindowedMetrics::WindowedMetrics(sim::SimTime window_us) : window_us_(window_us)
{
    DGNN_CHECK(window_us_ > 0.0, "window length must be positive, got ",
               window_us_);
}

WindowStats&
WindowedMetrics::WindowFor(sim::SimTime t_us)
{
    const int64_t index = std::max<int64_t>(
        0, static_cast<int64_t>(std::floor((t_us - origin_us_) / window_us_)));
    if (index >= static_cast<int64_t>(windows_.size())) {
        const auto old = static_cast<int64_t>(windows_.size());
        windows_.resize(static_cast<size_t>(index) + 1);
        for (int64_t i = old; i <= index; ++i) {
            windows_[static_cast<size_t>(i)].index = i;
            windows_[static_cast<size_t>(i)].start_us =
                static_cast<double>(i) * window_us_;
        }
    }
    return windows_[static_cast<size_t>(index)];
}

void
WindowedMetrics::OnArrival(sim::SimTime t_us)
{
    ++WindowFor(t_us).arrivals;
}

void
WindowedMetrics::OnCompletion(sim::SimTime t_us, double latency_us)
{
    WindowStats& w = WindowFor(t_us);
    ++w.completions;
    w.latency.Record(latency_us);
}

void
WindowedMetrics::OnBatch(sim::SimTime t_us, int64_t h2d_bytes, int64_t d2h_bytes,
                         int64_t hit_rows, int64_t miss_rows)
{
    WindowStats& w = WindowFor(t_us);
    ++w.batches;
    w.h2d_bytes += h2d_bytes;
    w.d2h_bytes += d2h_bytes;
    w.cache_hit_rows += hit_rows;
    w.cache_miss_rows += miss_rows;
}

}  // namespace dgnn::obs
