#pragma once

/// @file
/// Fixed-interval windowed aggregation: the time axis (relative to the
/// serving window's opening) is cut into equal windows, and every
/// observation — arrival, completion, batch transfer, cache outcome — is
/// binned into the window containing its timestamp. The result is a
/// deterministic time series of QPS / p50 / p99 / hit-rate / PCIe volume
/// per window, which is what makes non-stationary scenarios (flash
/// crowds, hotset drift) legible: a scalar report averages the regimes
/// away, the window series shows the transition.
///
/// Completions are binned at their completion time and latency quantiles
/// are over the requests COMPLETED in the window (the standard dashboard
/// semantics, not arrival-cohort semantics).

#include <cstdint>
#include <vector>

#include "core/latency_histogram.hpp"
#include "sim/sim_time.hpp"

namespace dgnn::obs {

/// Aggregates of one window.
struct WindowStats {
    int64_t index = 0;
    /// Window start, us, relative to the configured origin.
    sim::SimTime start_us = 0.0;
    int64_t arrivals = 0;
    int64_t completions = 0;
    int64_t batches = 0;
    int64_t h2d_bytes = 0;
    int64_t d2h_bytes = 0;
    int64_t cache_hit_rows = 0;
    int64_t cache_miss_rows = 0;
    /// Latency of requests completed in this window.
    core::LatencyHistogram latency;

    /// Completions over the window length, 1/s.
    double Qps(sim::SimTime window_us) const;
    /// Hit rows over gathered rows; 0 with no gathers.
    double HitRate() const;
};

/// Bins observations into fixed windows.
class WindowedMetrics {
  public:
    /// @param window_us  window length; must be positive.
    explicit WindowedMetrics(sim::SimTime window_us);

    sim::SimTime WindowUs() const { return window_us_; }

    /// Sets the time origin (window 0 starts here). Call once, before the
    /// first observation; timestamps earlier than the origin clamp into
    /// window 0.
    void SetOrigin(sim::SimTime origin_us) { origin_us_ = origin_us; }

    void OnArrival(sim::SimTime t_us);
    void OnCompletion(sim::SimTime t_us, double latency_us);
    /// Batch-level volumes, binned at the batch's completion time.
    void OnBatch(sim::SimTime t_us, int64_t h2d_bytes, int64_t d2h_bytes,
                 int64_t hit_rows, int64_t miss_rows);

    /// All windows from 0 through the latest observed, contiguous (quiet
    /// windows appear with zero counts).
    const std::vector<WindowStats>& Windows() const { return windows_; }

    void Clear() { windows_.clear(); }

  private:
    WindowStats& WindowFor(sim::SimTime t_us);

    sim::SimTime window_us_;
    sim::SimTime origin_us_ = 0.0;
    std::vector<WindowStats> windows_;
};

}  // namespace dgnn::obs
