#pragma once

/// @file
/// Per-request span tracing. Every served request's lifetime decomposes
/// into six consecutive spans derived from its batch's stage boundaries
/// (serve::BatchSpans):
///
///   queue    arrival -> batch dispatch        (request-specific)
///   stall    dispatch -> pipeline throttle cleared
///   host     throttle -> host build/submit done
///   h2d      host done -> inputs on the device
///   compute  inputs -> device kernels done
///   d2h      kernels -> results on the host   (= batch completion)
///
/// The five stage spans are the batch's shared wall-clock: every member
/// request lives through the full stage, so each member carries the whole
/// stage duration (stages are NOT divided among members — dividing them
/// would break the timeline semantics of "where did this request's
/// latency go"). Byte/work costs, by contrast, ARE pro-rated: a member's
/// transfer share is the batch's volume over its size.
///
/// Conservation invariant: because the spans are consecutive differences
/// of monotone boundaries ending at the completion time the server's
/// latency histogram records, each request's spans telescope to exactly
/// its end-to-end latency. MaxConservationErrorUs() reports the worst
/// floating-point residual; tests pin it below 1e-6 us across every
/// gauntlet scenario on both executors.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/observer.hpp"

namespace dgnn::obs {

/// The six lifecycle spans, in timeline order.
enum class SpanKind {
    kQueue,
    kStall,
    kHostPrep,
    kH2d,
    kCompute,
    kD2h,
};

inline constexpr int kNumSpanKinds = 6;

const char* ToString(SpanKind kind);

/// One request's reconstructed lifetime.
struct RequestRecord {
    int64_t id = 0;
    int64_t batch_index = 0;
    int64_t batch_size = 0;
    sim::SimTime arrival_us = 0.0;
    sim::SimTime complete_us = 0.0;
    /// Span durations indexed by SpanKind, us.
    std::array<double, kNumSpanKinds> span_us{};
    /// Pro-rated byte shares: the batch's transfer volume over its size.
    double h2d_bytes_share = 0.0;
    double d2h_bytes_share = 0.0;

    double LatencyUs() const { return complete_us - arrival_us; }
    /// Sum of the six spans — equals LatencyUs() up to FP round-off.
    double SpanTotalUs() const;
};

/// Accumulates RequestRecords from batch observations.
class RequestTimeline {
  public:
    /// Expands @p ob into one record per member request.
    void RecordBatch(const serve::BatchObservation& ob);

    const std::vector<RequestRecord>& Records() const { return records_; }
    int64_t Count() const { return static_cast<int64_t>(records_.size()); }

    /// Worst |SpanTotalUs - LatencyUs| across all records (0 when empty) —
    /// the conservation residual.
    double MaxConservationErrorUs() const;

    /// Mean duration of one span kind across all records, us.
    double MeanSpanUs(SpanKind kind) const;

    void Clear() { records_.clear(); }

  private:
    std::vector<RequestRecord> records_;
};

}  // namespace dgnn::obs
