#include "obs/observability.hpp"

#include <array>
#include <sstream>
#include <utility>

#include "core/bench_json_writer.hpp"
#include "support/check.hpp"

namespace dgnn::obs {

ServingObservability::ServingObservability(ObservabilityOptions options)
    : options_(options), windows_(options.window_us)
{
}

void
ServingObservability::OnRunBegin(const serve::RunContext& ctx)
{
    DGNN_CHECK(ctx.runtime != nullptr, "run context carries no runtime");
    ctx_ = ctx;
    run_active_ = true;
    ++runs_observed_;
    run_labels_ = {{"model", ctx.model},
                   {"mode", ctx.mode},
                   {"policy", ctx.policy},
                   {"executor", ctx.executor}};
    // Plant the trace cursor past warm-up so the run's device scan covers
    // only serving-window events.
    trace_cursor_ = ctx.runtime->GetTrace().Size();
    cache_before_ =
        ctx.cache != nullptr ? ctx.cache->Stats() : cache::CacheStats{};
    h2d_bytes_before_ = ctx.runtime->BytesToDevice();
    d2h_bytes_before_ = ctx.runtime->BytesToHost();
    sync_wait_before_ = ctx.runtime->SyncWaitTime();
    transfer_time_before_ = ctx.runtime->TransferTime();
    windows_.SetOrigin(ctx.window_start_us);
}

void
ServingObservability::OnArrival(const serve::Request& request)
{
    metrics_.CounterAdd("dgnn_serve_requests_total", 1.0, run_labels_);
    windows_.OnArrival(request.arrival_us);
}

void
ServingObservability::OnIdleWake(sim::SimTime /*wake_us*/, bool policy_wake)
{
    Labels labels = run_labels_;
    labels.emplace_back("kind", policy_wake ? "policy" : "arrival");
    metrics_.CounterAdd("dgnn_serve_idle_wakes_total", 1.0, labels);
}

void
ServingObservability::OnBatch(const serve::BatchObservation& ob)
{
    const serve::BatchSpans& s = ob.spans;
    const auto members = static_cast<double>(ob.requests.size());

    metrics_.CounterAdd("dgnn_serve_batches_total", 1.0, run_labels_);
    metrics_.CounterAdd("dgnn_serve_completions_total", members, run_labels_);
    metrics_.SummaryObserve("dgnn_serve_queue_depth",
                            static_cast<double>(ob.queue_depth), run_labels_);
    metrics_.SummaryObserve("dgnn_serve_batch_size", members, run_labels_);

    // Batch-level stage durations as labeled summaries (one series per
    // stage — the jitter gauges of the span model).
    const std::array<std::pair<const char*, double>, 5> stages = {{
        {"stall", s.stall_done_us - s.dispatch_us},
        {"host", s.host_done_us - s.stall_done_us},
        {"h2d", s.h2d_done_us - s.host_done_us},
        {"compute", s.compute_done_us - s.h2d_done_us},
        {"d2h", s.complete_us - s.compute_done_us},
    }};
    for (const auto& [stage, duration] : stages) {
        Labels labels = run_labels_;
        labels.emplace_back("stage", stage);
        metrics_.SummaryObserve("dgnn_serve_stage_us", duration, labels);
    }

    const int64_t h2d_bytes =
        (ob.profile != nullptr ? ob.profile->h2d_bytes : 0) +
        ob.cache_cost.miss_rows * ob.cache_cost.row_bytes;
    const int64_t d2h_bytes =
        (ob.profile != nullptr ? ob.profile->d2h_bytes : 0) +
        ob.cache_cost.WritebackBytes();
    metrics_.CounterAdd("dgnn_serve_h2d_bytes_total",
                        static_cast<double>(h2d_bytes), run_labels_);
    metrics_.CounterAdd("dgnn_serve_d2h_bytes_total",
                        static_cast<double>(d2h_bytes), run_labels_);
    metrics_.CounterAdd("dgnn_cache_hit_rows_total",
                        static_cast<double>(ob.cache_cost.hit_rows),
                        run_labels_);
    metrics_.CounterAdd("dgnn_cache_miss_rows_total",
                        static_cast<double>(ob.cache_cost.miss_rows),
                        run_labels_);
    metrics_.CounterAdd("dgnn_cache_writeback_rows_total",
                        static_cast<double>(ob.cache_cost.writeback_rows),
                        run_labels_);

    for (const serve::Request& r : ob.requests) {
        windows_.OnCompletion(s.complete_us, s.complete_us - r.arrival_us);
    }
    windows_.OnBatch(s.complete_us, h2d_bytes, d2h_bytes,
                     ob.cache_cost.hit_rows, ob.cache_cost.miss_rows);

    if (options_.keep_request_records) {
        timeline_.RecordBatch(ob);
    }
    attribution_.OnBatch(ob);
    batch_spans_.push_back(s);
}

void
ServingObservability::OnRunEnd()
{
    if (!run_active_) {
        return;
    }
    run_active_ = false;
    sim::Runtime& runtime = *ctx_.runtime;

    // Runtime counter deltas over the run (cursor-snapshot style: the
    // runtime never learns about obs/).
    metrics_.CounterAdd(
        "dgnn_sim_h2d_bytes_total",
        static_cast<double>(runtime.BytesToDevice() - h2d_bytes_before_),
        run_labels_);
    metrics_.CounterAdd(
        "dgnn_sim_d2h_bytes_total",
        static_cast<double>(runtime.BytesToHost() - d2h_bytes_before_),
        run_labels_);
    metrics_.GaugeSet("dgnn_sim_sync_wait_us",
                      runtime.SyncWaitTime() - sync_wait_before_, run_labels_);
    metrics_.GaugeSet("dgnn_sim_transfer_time_us",
                      runtime.TransferTime() - transfer_time_before_,
                      run_labels_);

    // Device-trace scan from the cursor: kernel launches and occupancy.
    const std::vector<sim::TraceEvent>& events = runtime.GetTrace().Events();
    int64_t kernels = 0;
    double occupancy_sum = 0.0;
    for (size_t i = trace_cursor_; i < events.size(); ++i) {
        const sim::TraceEvent& e = events[i];
        if (e.kind == sim::EventKind::kKernel) {
            ++kernels;
            occupancy_sum += e.occupancy;
        }
        if (options_.keep_device_trace) {
            device_events_.push_back(e);
        }
    }
    metrics_.CounterAdd("dgnn_sim_kernel_launches_total",
                        static_cast<double>(kernels), run_labels_);
    metrics_.GaugeSet(
        "dgnn_sim_kernel_occupancy_mean",
        kernels > 0 ? occupancy_sum / static_cast<double>(kernels) : 0.0,
        run_labels_);

    // Cache stats delta (evictions/insertions the per-batch GatherResults
    // cannot see arrive here).
    if (ctx_.cache != nullptr) {
        const cache::CacheStats delta = ctx_.cache->Stats() - cache_before_;
        metrics_.CounterAdd("dgnn_cache_evictions_total",
                            static_cast<double>(delta.evictions), run_labels_);
        metrics_.CounterAdd("dgnn_cache_insertions_total",
                            static_cast<double>(delta.insertions), run_labels_);
        metrics_.CounterAdd("dgnn_cache_lookups_total",
                            static_cast<double>(delta.lookups), run_labels_);
    }
}

std::string
ServingObservability::MergedChromeTraceJson() const
{
    using core::JsonEscape;
    std::ostringstream oss;
    oss << "{\"traceEvents\":[";
    bool first = true;
    auto emit = [&oss, &first](const std::string& name, const std::string& cat,
                               const std::string& tid, int pid,
                               sim::SimTime start, sim::SimTime dur) {
        if (!first) {
            oss << ",";
        }
        first = false;
        oss << "{\"name\":\"" << JsonEscape(name) << "\",\"cat\":\""
            << JsonEscape(cat) << "\",\"ph\":\"X\",\"ts\":" << start
            << ",\"dur\":" << dur << ",\"pid\":" << pid << ",\"tid\":\""
            << JsonEscape(tid) << "\"}";
    };

    // pid 1: the simulated device/host lanes (same shape as
    // core::ToChromeTraceJson, one tid per device).
    for (const sim::TraceEvent& e : device_events_) {
        emit(e.name, e.category, e.device, 1, e.start_us,
             e.end_us - e.start_us);
    }

    // pid 2: serving-stage lanes, one slice per batch per stage.
    for (size_t b = 0; b < batch_spans_.size(); ++b) {
        const serve::BatchSpans& s = batch_spans_[b];
        const std::string batch_name = "batch " + std::to_string(b);
        const std::array<std::pair<const char*,
                                   std::pair<sim::SimTime, sim::SimTime>>,
                         5>
            stages = {{
                {"serve:stall", {s.dispatch_us, s.stall_done_us}},
                {"serve:host", {s.stall_done_us, s.host_done_us}},
                {"serve:h2d", {s.host_done_us, s.h2d_done_us}},
                {"serve:compute", {s.h2d_done_us, s.compute_done_us}},
                {"serve:d2h", {s.compute_done_us, s.complete_us}},
            }};
        for (const auto& [tid, span] : stages) {
            if (span.second > span.first) {
                emit(batch_name, "serving", tid, 2, span.first,
                     span.second - span.first);
            }
        }
    }

    // pid 2, request lane: one slice per request lifetime.
    for (const RequestRecord& rec : timeline_.Records()) {
        emit("req " + std::to_string(rec.id), "request", "serve:requests", 2,
             rec.arrival_us, rec.LatencyUs());
    }

    oss << "]}";
    return oss.str();
}

}  // namespace dgnn::obs
