#pragma once

/// @file
/// Dense row-major float32 tensor used by every neural substrate.
///
/// The tensor is deliberately simple: contiguous storage, up to 4
/// dimensions, value semantics with cheap moves. All heavy math lives in
/// tensor/ops.hpp so the data type stays small and auditable.

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace dgnn {

/// Shape of a tensor; a thin wrapper over a small vector of extents.
class Shape {
  public:
    Shape() = default;
    Shape(std::initializer_list<int64_t> dims) : dims_(dims) { Validate(); }
    explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) { Validate(); }

    /// Number of dimensions.
    int64_t Rank() const { return static_cast<int64_t>(dims_.size()); }

    /// Extent of dimension @p axis; negative axes count from the back.
    int64_t Dim(int64_t axis) const;

    /// Total number of elements (1 for a rank-0 shape).
    int64_t NumElements() const;

    const std::vector<int64_t>& Dims() const { return dims_; }

    bool operator==(const Shape& other) const { return dims_ == other.dims_; }
    bool operator!=(const Shape& other) const { return !(*this == other); }

    /// Human-readable form, e.g. "[3, 4]".
    std::string ToString() const;

  private:
    void Validate() const;

    std::vector<int64_t> dims_;
};

std::ostream& operator<<(std::ostream& os, const Shape& shape);

/// Dense row-major float32 tensor with value semantics.
class Tensor {
  public:
    /// Empty rank-1 tensor of zero elements.
    Tensor() : shape_({0}) {}

    /// Zero-initialized tensor of the given shape.
    explicit Tensor(Shape shape);

    /// Tensor of the given shape filled with @p fill.
    Tensor(Shape shape, float fill);

    /// Tensor adopting @p values (must match the shape's element count).
    Tensor(Shape shape, std::vector<float> values);

    /// Convenience rank-1 constructor from a list of values.
    static Tensor FromVector(std::vector<float> values);

    /// Tensor of shape filled with zeros / ones.
    static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
    static Tensor Ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }

    /// Identity matrix of size n x n.
    static Tensor Eye(int64_t n);

    const Shape& GetShape() const { return shape_; }
    int64_t Rank() const { return shape_.Rank(); }
    int64_t Dim(int64_t axis) const { return shape_.Dim(axis); }
    int64_t NumElements() const { return static_cast<int64_t>(data_.size()); }
    /// Payload size in bytes (element count x sizeof(float)).
    int64_t NumBytes() const { return NumElements() * static_cast<int64_t>(sizeof(float)); }
    bool Empty() const { return data_.empty(); }

    float* Data() { return data_.data(); }
    const float* Data() const { return data_.data(); }

    /// Flat element access with bounds checking in debug builds.
    float& At(int64_t flat_index);
    float At(int64_t flat_index) const;

    /// 2-D element access (matrix convention: row, col).
    float& At(int64_t row, int64_t col);
    float At(int64_t row, int64_t col) const;

    /// 3-D element access.
    float& At(int64_t i, int64_t j, int64_t k);
    float At(int64_t i, int64_t j, int64_t k) const;

    /// Returns a copy with a new shape covering the same elements.
    Tensor Reshape(Shape new_shape) const;

    /// Copy of row @p row of a rank-2 tensor as a rank-1 tensor.
    Tensor Row(int64_t row) const;

    /// Writes @p values into row @p row of a rank-2 tensor.
    void SetRow(int64_t row, const Tensor& values);

    /// Copy of rows [begin, end) of a rank-2 tensor.
    Tensor RowSlice(int64_t begin, int64_t end) const;

    /// Fills every element with @p value.
    void Fill(float value);

    /// Sum of all elements (stable pairwise-free accumulation in double).
    double Sum() const;

    /// Mean of all elements.
    double Mean() const;

    /// Maximum absolute element; 0 for an empty tensor.
    float AbsMax() const;

    /// True when all elements are finite.
    bool AllFinite() const;

    /// Human-readable form with shape and a truncated element dump.
    std::string ToString(int64_t max_elements = 8) const;

  private:
    Shape shape_;
    std::vector<float> data_;
};

std::ostream& operator<<(std::ostream& os, const Tensor& tensor);

}  // namespace dgnn
