#include "tensor/random.hpp"

#include <cmath>

namespace dgnn {

float
Rng::Uniform(float lo, float hi)
{
    std::uniform_real_distribution<float> dist(lo, hi);
    return dist(engine_);
}

float
Rng::Normal(float mean, float stddev)
{
    std::normal_distribution<float> dist(mean, stddev);
    return dist(engine_);
}

int64_t
Rng::UniformInt(int64_t lo, int64_t hi)
{
    DGNN_CHECK(lo <= hi, "UniformInt range [", lo, ", ", hi, "] is empty");
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
}

double
Rng::Exponential(double rate)
{
    DGNN_CHECK(rate > 0.0, "Exponential rate must be positive, got ", rate);
    std::exponential_distribution<double> dist(rate);
    return dist(engine_);
}

bool
Rng::Bernoulli(double p)
{
    std::bernoulli_distribution dist(p);
    return dist(engine_);
}

Rng
Rng::Fork()
{
    return Rng(engine_());
}

namespace init {

Tensor
Uniform(Shape shape, Rng& rng, float lo, float hi)
{
    Tensor t(std::move(shape));
    for (int64_t i = 0; i < t.NumElements(); ++i) {
        t.Data()[i] = rng.Uniform(lo, hi);
    }
    return t;
}

Tensor
Normal(Shape shape, Rng& rng, float stddev)
{
    Tensor t(std::move(shape));
    for (int64_t i = 0; i < t.NumElements(); ++i) {
        t.Data()[i] = rng.Normal(0.0f, stddev);
    }
    return t;
}

Tensor
XavierUniform(int64_t fan_out, int64_t fan_in, Rng& rng)
{
    DGNN_CHECK(fan_out > 0 && fan_in > 0, "XavierUniform fans must be positive, got ",
               fan_out, " x ", fan_in);
    const float bound =
        std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
    return Uniform(Shape({fan_out, fan_in}), rng, -bound, bound);
}

}  // namespace init

}  // namespace dgnn
