#pragma once

/// @file
/// Deterministic random number generation and tensor initializers.
/// Every stochastic component in dgnn (weights, datasets, samplers) takes an
/// explicit Rng so whole experiments replay bit-for-bit.

#include <cstdint>
#include <random>

#include "tensor/tensor.hpp"

namespace dgnn {

/// Seeded pseudo-random source (mt19937_64 under the hood).
class Rng {
  public:
    explicit Rng(uint64_t seed) : engine_(seed) {}

    /// Uniform float in [lo, hi).
    float Uniform(float lo = 0.0f, float hi = 1.0f);

    /// Standard normal float times @p stddev plus @p mean.
    float Normal(float mean = 0.0f, float stddev = 1.0f);

    /// Uniform integer in [lo, hi] inclusive.
    int64_t UniformInt(int64_t lo, int64_t hi);

    /// Exponentially distributed inter-arrival gap with the given rate.
    double Exponential(double rate);

    /// Bernoulli draw with probability @p p of true.
    bool Bernoulli(double p);

    /// Derives an independent child generator (for parallel-safe seeding).
    Rng Fork();

    std::mt19937_64& Engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

namespace init {

/// Tensor with iid U(lo, hi) entries.
Tensor Uniform(Shape shape, Rng& rng, float lo = -0.1f, float hi = 0.1f);

/// Tensor with iid N(0, stddev) entries.
Tensor Normal(Shape shape, Rng& rng, float stddev = 1.0f);

/// Xavier/Glorot uniform init for a [out, in] weight matrix.
Tensor XavierUniform(int64_t fan_out, int64_t fan_in, Rng& rng);

}  // namespace init

}  // namespace dgnn
