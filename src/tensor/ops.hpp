#pragma once

/// @file
/// Math kernels over dgnn::Tensor. All functions are pure (inputs const,
/// fresh output) unless the name says otherwise. These are the host-side
/// numerics behind every simulated device kernel.

#include "tensor/tensor.hpp"

namespace dgnn::ops {

/// C = A x B for rank-2 A [m,k] and B [k,n].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// C = A x B^T for rank-2 A [m,k] and B [n,k].
Tensor MatMulTransposed(const Tensor& a, const Tensor& b);

/// y = x W^T + b, PyTorch nn.Linear convention: x [m,in], W [out,in], b [out].
Tensor LinearForward(const Tensor& x, const Tensor& weight, const Tensor& bias);

/// Elementwise sum; shapes must match.
Tensor Add(const Tensor& a, const Tensor& b);

/// Elementwise difference; shapes must match.
Tensor Sub(const Tensor& a, const Tensor& b);

/// Elementwise (Hadamard) product; shapes must match.
Tensor Mul(const Tensor& a, const Tensor& b);

/// Adds a rank-1 bias to every row of a rank-2 tensor.
Tensor AddRowBroadcast(const Tensor& matrix, const Tensor& row);

/// Scales every element by @p s.
Tensor Scale(const Tensor& a, float s);

/// Elementwise activations.
Tensor Relu(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Gelu(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Cos(const Tensor& a);
Tensor Sin(const Tensor& a);

/// Row-wise softmax over the last axis of a rank-2 tensor.
Tensor SoftmaxRows(const Tensor& a);

/// Concatenates rank-2 tensors along columns (axis 1); row counts must match.
Tensor ConcatCols(const Tensor& a, const Tensor& b);

/// Concatenates rank-2 tensors along rows (axis 0); column counts must match.
Tensor ConcatRows(const Tensor& a, const Tensor& b);

/// Transpose of a rank-2 tensor.
Tensor Transpose(const Tensor& a);

/// Row-wise L2 norms of a rank-2 tensor -> rank-1 of length rows.
Tensor RowNorms(const Tensor& a);

/// Mean over rows of a rank-2 tensor -> rank-1 of length cols.
Tensor MeanRows(const Tensor& a);

/// Sum over rows of a rank-2 tensor -> rank-1 of length cols.
Tensor SumRows(const Tensor& a);

/// Gathers rows of @p table by @p indices into a new [indices.size, cols].
Tensor GatherRows(const Tensor& table, const std::vector<int64_t>& indices);

/// Scatters @p rows (rank-2) into @p table rows named by @p indices (in-place).
void ScatterRows(Tensor& table, const std::vector<int64_t>& indices, const Tensor& rows);

/// Dot product of two rank-1 tensors.
double Dot(const Tensor& a, const Tensor& b);

/// Approximate FLOP count helpers used by the device cost model.
int64_t MatMulFlops(int64_t m, int64_t k, int64_t n);
int64_t ElementwiseFlops(const Tensor& t);

}  // namespace dgnn::ops
