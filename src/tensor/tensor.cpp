#include "tensor/tensor.hpp"

#include <cmath>
#include <numeric>
#include <ostream>
#include <sstream>

namespace dgnn {

void
Shape::Validate() const
{
    DGNN_CHECK(dims_.size() <= 4, "tensors support at most 4 dimensions, got rank ",
               dims_.size());
    for (int64_t d : dims_) {
        DGNN_CHECK(d >= 0, "negative dimension ", d, " in shape");
    }
}

int64_t
Shape::Dim(int64_t axis) const
{
    const int64_t rank = Rank();
    if (axis < 0) {
        axis += rank;
    }
    DGNN_CHECK(axis >= 0 && axis < rank, "axis ", axis, " out of range for rank ", rank);
    return dims_[static_cast<size_t>(axis)];
}

int64_t
Shape::NumElements() const
{
    int64_t n = 1;
    for (int64_t d : dims_) {
        n *= d;
    }
    return n;
}

std::string
Shape::ToString() const
{
    std::ostringstream oss;
    oss << "[";
    for (size_t i = 0; i < dims_.size(); ++i) {
        if (i > 0) {
            oss << ", ";
        }
        oss << dims_[i];
    }
    oss << "]";
    return oss.str();
}

std::ostream&
operator<<(std::ostream& os, const Shape& shape)
{
    return os << shape.ToString();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(static_cast<size_t>(shape_.NumElements()), 0.0f)
{
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(static_cast<size_t>(shape_.NumElements()), fill)
{
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values))
{
    DGNN_CHECK(static_cast<int64_t>(data_.size()) == shape_.NumElements(),
               "value count ", data_.size(), " does not match shape ", shape_.ToString());
}

Tensor
Tensor::FromVector(std::vector<float> values)
{
    const int64_t n = static_cast<int64_t>(values.size());
    return Tensor(Shape({n}), std::move(values));
}

Tensor
Tensor::Eye(int64_t n)
{
    DGNN_CHECK(n >= 0, "Eye size must be non-negative, got ", n);
    Tensor t(Shape({n, n}));
    for (int64_t i = 0; i < n; ++i) {
        t.At(i, i) = 1.0f;
    }
    return t;
}

float&
Tensor::At(int64_t flat_index)
{
    DGNN_CHECK(flat_index >= 0 && flat_index < NumElements(), "flat index ", flat_index,
               " out of range for ", NumElements(), " elements");
    return data_[static_cast<size_t>(flat_index)];
}

float
Tensor::At(int64_t flat_index) const
{
    DGNN_CHECK(flat_index >= 0 && flat_index < NumElements(), "flat index ", flat_index,
               " out of range for ", NumElements(), " elements");
    return data_[static_cast<size_t>(flat_index)];
}

float&
Tensor::At(int64_t row, int64_t col)
{
    DGNN_CHECK(Rank() == 2, "2-D access on tensor of shape ", shape_.ToString());
    const int64_t rows = shape_.Dim(0);
    const int64_t cols = shape_.Dim(1);
    DGNN_CHECK(row >= 0 && row < rows && col >= 0 && col < cols, "index (", row, ", ",
               col, ") out of range for shape ", shape_.ToString());
    return data_[static_cast<size_t>(row * cols + col)];
}

float
Tensor::At(int64_t row, int64_t col) const
{
    return const_cast<Tensor*>(this)->At(row, col);
}

float&
Tensor::At(int64_t i, int64_t j, int64_t k)
{
    DGNN_CHECK(Rank() == 3, "3-D access on tensor of shape ", shape_.ToString());
    const int64_t d0 = shape_.Dim(0);
    const int64_t d1 = shape_.Dim(1);
    const int64_t d2 = shape_.Dim(2);
    DGNN_CHECK(i >= 0 && i < d0 && j >= 0 && j < d1 && k >= 0 && k < d2, "index (", i,
               ", ", j, ", ", k, ") out of range for shape ", shape_.ToString());
    return data_[static_cast<size_t>((i * d1 + j) * d2 + k)];
}

float
Tensor::At(int64_t i, int64_t j, int64_t k) const
{
    return const_cast<Tensor*>(this)->At(i, j, k);
}

Tensor
Tensor::Reshape(Shape new_shape) const
{
    DGNN_CHECK(new_shape.NumElements() == NumElements(), "cannot reshape ",
               shape_.ToString(), " (", NumElements(), " elements) to ",
               new_shape.ToString(), " (", new_shape.NumElements(), " elements)");
    return Tensor(std::move(new_shape), data_);
}

Tensor
Tensor::Row(int64_t row) const
{
    DGNN_CHECK(Rank() == 2, "Row() requires rank-2, got ", shape_.ToString());
    const int64_t cols = shape_.Dim(1);
    DGNN_CHECK(row >= 0 && row < shape_.Dim(0), "row ", row, " out of range");
    std::vector<float> values(data_.begin() + row * cols,
                              data_.begin() + (row + 1) * cols);
    return Tensor(Shape({cols}), std::move(values));
}

void
Tensor::SetRow(int64_t row, const Tensor& values)
{
    DGNN_CHECK(Rank() == 2, "SetRow() requires rank-2, got ", shape_.ToString());
    const int64_t cols = shape_.Dim(1);
    DGNN_CHECK(row >= 0 && row < shape_.Dim(0), "row ", row, " out of range");
    DGNN_CHECK(values.NumElements() == cols, "row values have ", values.NumElements(),
               " elements, expected ", cols);
    std::copy(values.Data(), values.Data() + cols, data_.begin() + row * cols);
}

Tensor
Tensor::RowSlice(int64_t begin, int64_t end) const
{
    DGNN_CHECK(Rank() == 2, "RowSlice() requires rank-2, got ", shape_.ToString());
    const int64_t rows = shape_.Dim(0);
    const int64_t cols = shape_.Dim(1);
    DGNN_CHECK(begin >= 0 && begin <= end && end <= rows, "bad row slice [", begin,
               ", ", end, ") for ", rows, " rows");
    std::vector<float> values(data_.begin() + begin * cols, data_.begin() + end * cols);
    return Tensor(Shape({end - begin, cols}), std::move(values));
}

void
Tensor::Fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

double
Tensor::Sum() const
{
    double acc = 0.0;
    for (float v : data_) {
        acc += static_cast<double>(v);
    }
    return acc;
}

double
Tensor::Mean() const
{
    DGNN_CHECK(!data_.empty(), "Mean() of empty tensor");
    return Sum() / static_cast<double>(data_.size());
}

float
Tensor::AbsMax() const
{
    float m = 0.0f;
    for (float v : data_) {
        m = std::max(m, std::fabs(v));
    }
    return m;
}

bool
Tensor::AllFinite() const
{
    for (float v : data_) {
        if (!std::isfinite(v)) {
            return false;
        }
    }
    return true;
}

std::string
Tensor::ToString(int64_t max_elements) const
{
    std::ostringstream oss;
    oss << "Tensor" << shape_.ToString() << " {";
    const int64_t n = std::min<int64_t>(max_elements, NumElements());
    for (int64_t i = 0; i < n; ++i) {
        if (i > 0) {
            oss << ", ";
        }
        oss << data_[static_cast<size_t>(i)];
    }
    if (NumElements() > n) {
        oss << ", ...";
    }
    oss << "}";
    return oss.str();
}

std::ostream&
operator<<(std::ostream& os, const Tensor& tensor)
{
    return os << tensor.ToString();
}

}  // namespace dgnn
