#include "tensor/ops.hpp"

#include <cmath>

namespace dgnn::ops {

namespace {

/// Applies @p fn to every element of @p a into a fresh tensor.
template <typename Fn>
Tensor
ElementwiseUnary(const Tensor& a, Fn fn)
{
    Tensor out(a.GetShape());
    const float* src = a.Data();
    float* dst = out.Data();
    const int64_t n = a.NumElements();
    for (int64_t i = 0; i < n; ++i) {
        dst[i] = fn(src[i]);
    }
    return out;
}

/// Applies @p fn elementwise over two same-shape tensors.
template <typename Fn>
Tensor
ElementwiseBinary(const Tensor& a, const Tensor& b, Fn fn, const char* op_name)
{
    DGNN_CHECK(a.GetShape() == b.GetShape(), op_name, ": shape mismatch ",
               a.GetShape().ToString(), " vs ", b.GetShape().ToString());
    Tensor out(a.GetShape());
    const float* pa = a.Data();
    const float* pb = b.Data();
    float* dst = out.Data();
    const int64_t n = a.NumElements();
    for (int64_t i = 0; i < n; ++i) {
        dst[i] = fn(pa[i], pb[i]);
    }
    return out;
}

}  // namespace

Tensor
MatMul(const Tensor& a, const Tensor& b)
{
    DGNN_CHECK(a.Rank() == 2 && b.Rank() == 2, "MatMul requires rank-2 inputs, got ",
               a.GetShape().ToString(), " and ", b.GetShape().ToString());
    const int64_t m = a.Dim(0);
    const int64_t k = a.Dim(1);
    const int64_t n = b.Dim(1);
    DGNN_CHECK(b.Dim(0) == k, "MatMul inner-dimension mismatch: ",
               a.GetShape().ToString(), " x ", b.GetShape().ToString());
    Tensor c(Shape({m, n}));
    const float* pa = a.Data();
    const float* pb = b.Data();
    float* pc = c.Data();
    // i-k-j loop order keeps the inner loop contiguous over B and C rows.
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t kk = 0; kk < k; ++kk) {
            const float aik = pa[i * k + kk];
            if (aik == 0.0f) {
                continue;
            }
            const float* brow = pb + kk * n;
            float* crow = pc + i * n;
            for (int64_t j = 0; j < n; ++j) {
                crow[j] += aik * brow[j];
            }
        }
    }
    return c;
}

Tensor
MatMulTransposed(const Tensor& a, const Tensor& b)
{
    DGNN_CHECK(a.Rank() == 2 && b.Rank() == 2,
               "MatMulTransposed requires rank-2 inputs, got ", a.GetShape().ToString(),
               " and ", b.GetShape().ToString());
    const int64_t m = a.Dim(0);
    const int64_t k = a.Dim(1);
    const int64_t n = b.Dim(0);
    DGNN_CHECK(b.Dim(1) == k, "MatMulTransposed inner-dimension mismatch: ",
               a.GetShape().ToString(), " x ", b.GetShape().ToString(), "^T");
    Tensor c(Shape({m, n}));
    const float* pa = a.Data();
    const float* pb = b.Data();
    float* pc = c.Data();
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            const float* arow = pa + i * k;
            const float* brow = pb + j * k;
            double acc = 0.0;
            for (int64_t kk = 0; kk < k; ++kk) {
                acc += static_cast<double>(arow[kk]) * static_cast<double>(brow[kk]);
            }
            pc[i * n + j] = static_cast<float>(acc);
        }
    }
    return c;
}

Tensor
LinearForward(const Tensor& x, const Tensor& weight, const Tensor& bias)
{
    Tensor y = MatMulTransposed(x, weight);
    if (bias.NumElements() > 0) {
        y = AddRowBroadcast(y, bias);
    }
    return y;
}

Tensor
Add(const Tensor& a, const Tensor& b)
{
    return ElementwiseBinary(a, b, [](float x, float y) { return x + y; }, "Add");
}

Tensor
Sub(const Tensor& a, const Tensor& b)
{
    return ElementwiseBinary(a, b, [](float x, float y) { return x - y; }, "Sub");
}

Tensor
Mul(const Tensor& a, const Tensor& b)
{
    return ElementwiseBinary(a, b, [](float x, float y) { return x * y; }, "Mul");
}

Tensor
AddRowBroadcast(const Tensor& matrix, const Tensor& row)
{
    DGNN_CHECK(matrix.Rank() == 2 && row.Rank() == 1,
               "AddRowBroadcast expects [m,n] + [n], got ",
               matrix.GetShape().ToString(), " and ", row.GetShape().ToString());
    const int64_t m = matrix.Dim(0);
    const int64_t n = matrix.Dim(1);
    DGNN_CHECK(row.Dim(0) == n, "AddRowBroadcast width mismatch: ", n, " vs ",
               row.Dim(0));
    Tensor out(matrix.GetShape());
    const float* pm = matrix.Data();
    const float* pr = row.Data();
    float* po = out.Data();
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            po[i * n + j] = pm[i * n + j] + pr[j];
        }
    }
    return out;
}

Tensor
Scale(const Tensor& a, float s)
{
    return ElementwiseUnary(a, [s](float x) { return x * s; });
}

Tensor
Relu(const Tensor& a)
{
    return ElementwiseUnary(a, [](float x) { return x > 0.0f ? x : 0.0f; });
}

Tensor
Sigmoid(const Tensor& a)
{
    return ElementwiseUnary(a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}

Tensor
Tanh(const Tensor& a)
{
    return ElementwiseUnary(a, [](float x) { return std::tanh(x); });
}

Tensor
Gelu(const Tensor& a)
{
    // tanh approximation of GELU, matching common framework implementations.
    constexpr float kSqrt2OverPi = 0.7978845608f;
    return ElementwiseUnary(a, [](float x) {
        const float inner = kSqrt2OverPi * (x + 0.044715f * x * x * x);
        return 0.5f * x * (1.0f + std::tanh(inner));
    });
}

Tensor
Exp(const Tensor& a)
{
    return ElementwiseUnary(a, [](float x) { return std::exp(x); });
}

Tensor
Cos(const Tensor& a)
{
    return ElementwiseUnary(a, [](float x) { return std::cos(x); });
}

Tensor
Sin(const Tensor& a)
{
    return ElementwiseUnary(a, [](float x) { return std::sin(x); });
}

Tensor
SoftmaxRows(const Tensor& a)
{
    DGNN_CHECK(a.Rank() == 2, "SoftmaxRows requires rank-2, got ",
               a.GetShape().ToString());
    const int64_t m = a.Dim(0);
    const int64_t n = a.Dim(1);
    DGNN_CHECK(n > 0, "SoftmaxRows over empty rows");
    Tensor out(a.GetShape());
    const float* pa = a.Data();
    float* po = out.Data();
    for (int64_t i = 0; i < m; ++i) {
        const float* row = pa + i * n;
        float mx = row[0];
        for (int64_t j = 1; j < n; ++j) {
            mx = std::max(mx, row[j]);
        }
        double denom = 0.0;
        for (int64_t j = 0; j < n; ++j) {
            denom += std::exp(static_cast<double>(row[j] - mx));
        }
        for (int64_t j = 0; j < n; ++j) {
            po[i * n + j] =
                static_cast<float>(std::exp(static_cast<double>(row[j] - mx)) / denom);
        }
    }
    return out;
}

Tensor
ConcatCols(const Tensor& a, const Tensor& b)
{
    DGNN_CHECK(a.Rank() == 2 && b.Rank() == 2 && a.Dim(0) == b.Dim(0),
               "ConcatCols requires matching row counts, got ",
               a.GetShape().ToString(), " and ", b.GetShape().ToString());
    const int64_t m = a.Dim(0);
    const int64_t na = a.Dim(1);
    const int64_t nb = b.Dim(1);
    Tensor out(Shape({m, na + nb}));
    for (int64_t i = 0; i < m; ++i) {
        std::copy(a.Data() + i * na, a.Data() + (i + 1) * na,
                  out.Data() + i * (na + nb));
        std::copy(b.Data() + i * nb, b.Data() + (i + 1) * nb,
                  out.Data() + i * (na + nb) + na);
    }
    return out;
}

Tensor
ConcatRows(const Tensor& a, const Tensor& b)
{
    DGNN_CHECK(a.Rank() == 2 && b.Rank() == 2 && a.Dim(1) == b.Dim(1),
               "ConcatRows requires matching column counts, got ",
               a.GetShape().ToString(), " and ", b.GetShape().ToString());
    Tensor out(Shape({a.Dim(0) + b.Dim(0), a.Dim(1)}));
    std::copy(a.Data(), a.Data() + a.NumElements(), out.Data());
    std::copy(b.Data(), b.Data() + b.NumElements(), out.Data() + a.NumElements());
    return out;
}

Tensor
Transpose(const Tensor& a)
{
    DGNN_CHECK(a.Rank() == 2, "Transpose requires rank-2, got ",
               a.GetShape().ToString());
    const int64_t m = a.Dim(0);
    const int64_t n = a.Dim(1);
    Tensor out(Shape({n, m}));
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            out.Data()[j * m + i] = a.Data()[i * n + j];
        }
    }
    return out;
}

Tensor
RowNorms(const Tensor& a)
{
    DGNN_CHECK(a.Rank() == 2, "RowNorms requires rank-2, got ", a.GetShape().ToString());
    const int64_t m = a.Dim(0);
    const int64_t n = a.Dim(1);
    Tensor out(Shape({m}));
    for (int64_t i = 0; i < m; ++i) {
        double acc = 0.0;
        for (int64_t j = 0; j < n; ++j) {
            const double v = a.Data()[i * n + j];
            acc += v * v;
        }
        out.Data()[i] = static_cast<float>(std::sqrt(acc));
    }
    return out;
}

Tensor
MeanRows(const Tensor& a)
{
    DGNN_CHECK(a.Rank() == 2 && a.Dim(0) > 0, "MeanRows requires non-empty rank-2, got ",
               a.GetShape().ToString());
    Tensor out = SumRows(a);
    const float inv = 1.0f / static_cast<float>(a.Dim(0));
    for (int64_t j = 0; j < out.NumElements(); ++j) {
        out.Data()[j] *= inv;
    }
    return out;
}

Tensor
SumRows(const Tensor& a)
{
    DGNN_CHECK(a.Rank() == 2, "SumRows requires rank-2, got ", a.GetShape().ToString());
    const int64_t m = a.Dim(0);
    const int64_t n = a.Dim(1);
    Tensor out(Shape({n}));
    for (int64_t i = 0; i < m; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            out.Data()[j] += a.Data()[i * n + j];
        }
    }
    return out;
}

Tensor
GatherRows(const Tensor& table, const std::vector<int64_t>& indices)
{
    DGNN_CHECK(table.Rank() == 2, "GatherRows requires rank-2 table, got ",
               table.GetShape().ToString());
    const int64_t rows = table.Dim(0);
    const int64_t cols = table.Dim(1);
    Tensor out(Shape({static_cast<int64_t>(indices.size()), cols}));
    for (size_t i = 0; i < indices.size(); ++i) {
        const int64_t idx = indices[i];
        DGNN_CHECK(idx >= 0 && idx < rows, "GatherRows index ", idx,
                   " out of range for ", rows, " rows");
        std::copy(table.Data() + idx * cols, table.Data() + (idx + 1) * cols,
                  out.Data() + static_cast<int64_t>(i) * cols);
    }
    return out;
}

void
ScatterRows(Tensor& table, const std::vector<int64_t>& indices, const Tensor& rows)
{
    DGNN_CHECK(table.Rank() == 2 && rows.Rank() == 2, "ScatterRows requires rank-2");
    DGNN_CHECK(rows.Dim(0) == static_cast<int64_t>(indices.size()),
               "ScatterRows: ", indices.size(), " indices but ", rows.Dim(0), " rows");
    DGNN_CHECK(rows.Dim(1) == table.Dim(1), "ScatterRows column mismatch: ",
               rows.Dim(1), " vs ", table.Dim(1));
    const int64_t cols = table.Dim(1);
    const int64_t table_rows = table.Dim(0);
    for (size_t i = 0; i < indices.size(); ++i) {
        const int64_t idx = indices[i];
        DGNN_CHECK(idx >= 0 && idx < table_rows, "ScatterRows index ", idx,
                   " out of range for ", table_rows, " rows");
        std::copy(rows.Data() + static_cast<int64_t>(i) * cols,
                  rows.Data() + static_cast<int64_t>(i + 1) * cols,
                  table.Data() + idx * cols);
    }
}

double
Dot(const Tensor& a, const Tensor& b)
{
    DGNN_CHECK(a.Rank() == 1 && b.Rank() == 1 && a.Dim(0) == b.Dim(0),
               "Dot requires equal-length rank-1 tensors, got ",
               a.GetShape().ToString(), " and ", b.GetShape().ToString());
    double acc = 0.0;
    for (int64_t i = 0; i < a.Dim(0); ++i) {
        acc += static_cast<double>(a.Data()[i]) * static_cast<double>(b.Data()[i]);
    }
    return acc;
}

int64_t
MatMulFlops(int64_t m, int64_t k, int64_t n)
{
    return 2 * m * k * n;
}

int64_t
ElementwiseFlops(const Tensor& t)
{
    return t.NumElements();
}

}  // namespace dgnn::ops
