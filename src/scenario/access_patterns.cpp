#include "scenario/access_patterns.hpp"

#include <unordered_set>

#include "support/check.hpp"
#include "tensor/random.hpp"

namespace dgnn::scenario {

void
AssignDriftingHotSet(std::vector<serve::Request>& requests,
                     const DriftingHotSetSpec& spec)
{
    DGNN_CHECK(spec.num_nodes > 0, "need positive node count, got ",
               spec.num_nodes);
    DGNN_CHECK(spec.hot_nodes > 0 && spec.hot_nodes <= spec.num_nodes,
               "hot set size must be in [1, num_nodes], got ", spec.hot_nodes);
    DGNN_CHECK(spec.hot_fraction >= 0.0 && spec.hot_fraction <= 1.0,
               "hot fraction must be a probability, got ", spec.hot_fraction);
    DGNN_CHECK(spec.drift_every > 0, "drift interval must be positive, got ",
               spec.drift_every);

    Rng rng(spec.seed);
    int64_t hot_start = 0;
    auto draw = [&]() {
        if (rng.Bernoulli(spec.hot_fraction)) {
            const int64_t offset = rng.UniformInt(0, spec.hot_nodes - 1);
            return (hot_start + offset) % spec.num_nodes;
        }
        return rng.UniformInt(0, spec.num_nodes - 1);
    };
    for (size_t i = 0; i < requests.size(); ++i) {
        if (i > 0 && static_cast<int64_t>(i) % spec.drift_every == 0) {
            hot_start = (hot_start + spec.drift_stride) % spec.num_nodes;
        }
        requests[i].src = draw();
        requests[i].dst = draw();
    }
}

void
AssignPreferentialBursts(std::vector<serve::Request>& requests,
                         const PreferentialBurstSpec& spec)
{
    DGNN_CHECK(spec.num_nodes > 0, "need positive node count, got ",
               spec.num_nodes);
    DGNN_CHECK(spec.attach_bias >= 0.0 && spec.attach_bias <= 1.0,
               "attach bias must be a probability, got ", spec.attach_bias);
    DGNN_CHECK(spec.burst_every > 0, "burst interval must be positive, got ",
               spec.burst_every);
    DGNN_CHECK(spec.burst_len >= 0, "burst length must be non-negative, got ",
               spec.burst_len);

    Rng rng(spec.seed);
    // Degree-proportional sampling via the endpoint-history trick: picking
    // a uniform element of the list of all past endpoint occurrences is
    // exactly degree-weighted.
    std::vector<int64_t> history;
    history.reserve(2 * requests.size());
    auto draw_preferential = [&]() {
        if (!history.empty() && rng.Bernoulli(spec.attach_bias)) {
            const auto pick = static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(history.size()) - 1));
            return history[pick];
        }
        return rng.UniformInt(0, spec.num_nodes - 1);
    };
    int64_t star = -1;
    int64_t burst_left = 0;
    for (size_t i = 0; i < requests.size(); ++i) {
        if (static_cast<int64_t>(i) % spec.burst_every == 0 &&
            spec.burst_len > 0) {
            // A "new celebrity" appears: a uniformly cold node every
            // following request hits for the burst window.
            star = rng.UniformInt(0, spec.num_nodes - 1);
            burst_left = spec.burst_len;
        }
        if (burst_left > 0) {
            requests[i].src = star;
            requests[i].dst = draw_preferential();
            --burst_left;
        } else {
            requests[i].src = draw_preferential();
            requests[i].dst = draw_preferential();
        }
        history.push_back(requests[i].src);
        history.push_back(requests[i].dst);
    }
}

void
AssignCommunityChurn(std::vector<serve::Request>& requests,
                     const CommunityChurnSpec& spec)
{
    DGNN_CHECK(spec.num_communities > 0, "need positive community count, got ",
               spec.num_communities);
    DGNN_CHECK(spec.community_size > 0, "need positive community size, got ",
               spec.community_size);
    DGNN_CHECK(spec.in_community >= 0.0 && spec.in_community <= 1.0,
               "in-community probability must be a probability, got ",
               spec.in_community);
    DGNN_CHECK(spec.churn_every > 0, "churn interval must be positive, got ",
               spec.churn_every);

    Rng rng(spec.seed);
    const int64_t num_nodes = spec.num_communities * spec.community_size;
    int64_t active = 0;
    auto draw = [&]() {
        if (rng.Bernoulli(spec.in_community)) {
            return active * spec.community_size +
                   rng.UniformInt(0, spec.community_size - 1);
        }
        return rng.UniformInt(0, num_nodes - 1);
    };
    for (size_t i = 0; i < requests.size(); ++i) {
        if (i > 0 && static_cast<int64_t>(i) % spec.churn_every == 0 &&
            spec.num_communities > 1) {
            // Jump to a DIFFERENT community — churn must always move, or a
            // lucky draw would hand the cache a free interval.
            const int64_t hop = rng.UniformInt(1, spec.num_communities - 1);
            active = (active + hop) % spec.num_communities;
        }
        requests[i].src = draw();
        requests[i].dst = draw();
    }
}

AccessStats
CharacterizeAccesses(const std::vector<serve::Request>& requests)
{
    AccessStats stats;
    std::unordered_set<int64_t> seen;
    int64_t refs = 0;
    int64_t repeats = 0;
    for (const serve::Request& r : requests) {
        for (const int64_t node : {r.src, r.dst}) {
            if (node < 0) {
                continue;
            }
            ++refs;
            if (!seen.insert(node).second) {
                ++repeats;
            }
        }
    }
    stats.unique_nodes = static_cast<int64_t>(seen.size());
    stats.reuse_fraction =
        refs > 0 ? static_cast<double>(repeats) / static_cast<double>(refs)
                 : 0.0;
    return stats;
}

}  // namespace dgnn::scenario
