#include "scenario/scenario.hpp"

#include <algorithm>
#include <utility>

#include "support/check.hpp"

namespace dgnn::scenario {

const char*
ToString(ArrivalKind kind)
{
    switch (kind) {
      case ArrivalKind::kPoisson:
        return "poisson";
      case ArrivalKind::kDiurnal:
        return "diurnal";
      case ArrivalKind::kFlashCrowd:
        return "flash-crowd";
      case ArrivalKind::kMmpp:
        return "mmpp";
    }
    return "?";
}

const char*
ToString(AccessKind kind)
{
    switch (kind) {
      case AccessKind::kTraceReplay:
        return "trace-replay";
      case AccessKind::kDriftingHotSet:
        return "hotset-drift";
      case AccessKind::kPreferentialBursts:
        return "pref-burst";
      case AccessKind::kCommunityChurn:
        return "community-churn";
    }
    return "?";
}

namespace {

std::vector<sim::SimTime>
GenerateArrivalTimes(const Scenario& s, int64_t n)
{
    switch (s.arrival) {
      case ArrivalKind::kPoisson:
        return serve::PoissonArrivals(s.poisson_qps, n, s.poisson_seed);
      case ArrivalKind::kDiurnal:
        return DiurnalArrivals(s.diurnal, n);
      case ArrivalKind::kFlashCrowd:
        return FlashCrowdArrivals(s.flash_crowd, n);
      case ArrivalKind::kMmpp:
        return MmppArrivals(s.mmpp, n);
    }
    DGNN_CHECK(false, "unknown arrival kind");
    return {};
}

}  // namespace

std::vector<serve::Request>
GenerateRequests(const Scenario& s, const data::InteractionDataset& dataset,
                 int64_t n)
{
    const std::vector<sim::SimTime> arrivals = GenerateArrivalTimes(s, n);
    std::vector<serve::Request> requests;
    requests.reserve(arrivals.size());
    for (int64_t i = 0; i < n; ++i) {
        requests.push_back(serve::Request{i, arrivals[static_cast<size_t>(i)]});
    }

    switch (s.access) {
      case AccessKind::kTraceReplay: {
        const graph::EventStream& stream = dataset.stream;
        DGNN_CHECK(stream.NumEvents() > 0,
                   "trace-replay access needs a non-empty dataset stream");
        for (int64_t i = 0; i < n; ++i) {
            const graph::TemporalEvent& e =
                stream.Event(i % stream.NumEvents());
            requests[static_cast<size_t>(i)].src = e.src;
            requests[static_cast<size_t>(i)].dst = e.dst;
        }
        break;
      }
      case AccessKind::kDriftingHotSet:
        AssignDriftingHotSet(requests, s.hot_set);
        break;
      case AccessKind::kPreferentialBursts:
        AssignPreferentialBursts(requests, s.preferential);
        break;
      case AccessKind::kCommunityChurn:
        AssignCommunityChurn(requests, s.churn);
        break;
    }
    return requests;
}

ScenarioSource::ScenarioSource(Scenario scenario,
                               const data::InteractionDataset& dataset)
    : scenario_(std::move(scenario)), dataset_(dataset)
{
}

std::string
ScenarioSource::Name() const
{
    return scenario_.name;
}

std::vector<serve::Request>
ScenarioSource::Generate(int64_t n) const
{
    return GenerateRequests(scenario_, dataset_, n);
}

std::vector<Scenario>
GauntletScenarios(double base_qps, int64_t num_requests, int64_t num_nodes,
                  uint64_t seed)
{
    DGNN_CHECK(base_qps > 0.0, "base rate must be positive, got ", base_qps);
    DGNN_CHECK(num_requests > 0, "need a positive request count, got ",
               num_requests);
    DGNN_CHECK(num_nodes > 0, "need a positive node count, got ", num_nodes);

    // Expected serving span at the base rate; non-stationary features are
    // placed relative to it so they land inside the window at any scale.
    const double span_s = static_cast<double>(num_requests) / base_qps;

    DiurnalSpec diurnal;
    diurnal.base_qps = base_qps;
    diurnal.peak_ratio = 4.0;
    diurnal.period_s = span_s;  // one full "day" across the run
    diurnal.seed = seed + 1;

    FlashCrowdSpec flash;
    flash.base_qps = base_qps;
    flash.spike_factor = 16.0;
    flash.spike_start_s = 0.3 * span_s;
    flash.spike_duration_s = 0.2 * span_s;
    flash.seed = seed + 2;

    MmppSpec mmpp;
    mmpp.on_qps = 3.0 * base_qps;
    mmpp.off_qps = base_qps / 3.0;
    mmpp.mean_on_s = 0.1 * span_s;
    mmpp.mean_off_s = 0.2 * span_s;
    mmpp.seed = seed + 3;

    DriftingHotSetSpec hot;
    hot.num_nodes = num_nodes;
    hot.hot_nodes = std::max<int64_t>(8, num_nodes / 16);
    hot.hot_fraction = 0.85;
    hot.drift_every = std::max<int64_t>(1, num_requests / 16);
    hot.drift_stride = hot.hot_nodes;  // every rotation is fully cold
    hot.seed = seed + 4;

    PreferentialBurstSpec pref;
    pref.num_nodes = num_nodes;
    pref.attach_bias = 0.75;
    pref.burst_every = std::max<int64_t>(1, num_requests / 8);
    pref.burst_len = std::max<int64_t>(1, num_requests / 32);
    pref.seed = seed + 5;

    CommunityChurnSpec churn;
    churn.num_communities = std::min<int64_t>(16, num_nodes);
    churn.community_size =
        std::max<int64_t>(1, num_nodes / churn.num_communities);
    churn.in_community = 0.95;
    churn.churn_every = std::max<int64_t>(1, num_requests / 8);
    churn.seed = seed + 6;

    std::vector<Scenario> scenarios;
    auto add = [&](std::string name, ArrivalKind arrival, AccessKind access) {
        Scenario s;
        s.name = std::move(name);
        s.arrival = arrival;
        s.access = access;
        s.poisson_qps = base_qps;
        s.poisson_seed = seed;
        s.diurnal = diurnal;
        s.flash_crowd = flash;
        s.mmpp = mmpp;
        s.hot_set = hot;
        s.preferential = pref;
        s.churn = churn;
        scenarios.push_back(std::move(s));
    };

    // The recurrent baseline first: the PR 2/3 regime every adversarial
    // row is judged against.
    add("poisson/recurrent", ArrivalKind::kPoisson, AccessKind::kTraceReplay);
    add("diurnal/recurrent", ArrivalKind::kDiurnal, AccessKind::kTraceReplay);
    add("flash-crowd/recurrent", ArrivalKind::kFlashCrowd,
        AccessKind::kTraceReplay);
    add("mmpp/recurrent", ArrivalKind::kMmpp, AccessKind::kTraceReplay);
    add("poisson/hotset-drift", ArrivalKind::kPoisson,
        AccessKind::kDriftingHotSet);
    add("flash-crowd/pref-burst", ArrivalKind::kFlashCrowd,
        AccessKind::kPreferentialBursts);
    add("mmpp/community-churn", ArrivalKind::kMmpp,
        AccessKind::kCommunityChurn);
    return scenarios;
}

}  // namespace dgnn::scenario
