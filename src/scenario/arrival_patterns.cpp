#include "scenario/arrival_patterns.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "tensor/random.hpp"

namespace dgnn::scenario {

namespace {

/// Thinning (Lewis & Shedler): candidates at the envelope rate
/// @p peak_qps, accepted with probability rate(t)/peak. Exact for any
/// rate(t) <= peak and deterministic in the Rng draw order.
template <typename RateFn>
std::vector<sim::SimTime>
ThinnedArrivals(double peak_qps, int64_t n, uint64_t seed, RateFn rate_qps_at)
{
    DGNN_CHECK(n >= 0, "request count must be non-negative, got ", n);
    const double peak_per_us = peak_qps / 1e6;
    Rng rng(seed);
    std::vector<sim::SimTime> arrivals;
    arrivals.reserve(static_cast<size_t>(n));
    sim::SimTime t = 0.0;
    while (static_cast<int64_t>(arrivals.size()) < n) {
        t += rng.Exponential(peak_per_us);
        const double accept = rate_qps_at(t) / peak_qps;
        if (static_cast<double>(rng.Uniform(0.0f, 1.0f)) <= accept) {
            arrivals.push_back(t);
        }
    }
    return arrivals;
}

}  // namespace

std::vector<sim::SimTime>
DiurnalArrivals(const DiurnalSpec& spec, int64_t n)
{
    DGNN_CHECK(spec.base_qps > 0.0, "base rate must be positive, got ",
               spec.base_qps);
    DGNN_CHECK(spec.peak_ratio >= 1.0, "peak ratio must be >= 1, got ",
               spec.peak_ratio);
    DGNN_CHECK(spec.period_s > 0.0, "period must be positive, got ",
               spec.period_s);
    const double amp = (spec.peak_ratio - 1.0) / (spec.peak_ratio + 1.0);
    const double period_us = spec.period_s * 1e6;
    const double two_pi = 2.0 * std::acos(-1.0);
    return ThinnedArrivals(
        spec.base_qps * (1.0 + amp), n, spec.seed, [&](sim::SimTime t) {
            return spec.base_qps * (1.0 + amp * std::sin(two_pi * t / period_us));
        });
}

std::vector<sim::SimTime>
FlashCrowdArrivals(const FlashCrowdSpec& spec, int64_t n)
{
    DGNN_CHECK(spec.base_qps > 0.0, "base rate must be positive, got ",
               spec.base_qps);
    DGNN_CHECK(spec.spike_factor >= 1.0, "spike factor must be >= 1, got ",
               spec.spike_factor);
    DGNN_CHECK(spec.spike_duration_s >= 0.0,
               "spike duration must be non-negative, got ",
               spec.spike_duration_s);
    const double start_us = spec.spike_start_s * 1e6;
    const double end_us = start_us + spec.spike_duration_s * 1e6;
    return ThinnedArrivals(spec.base_qps * spec.spike_factor, n, spec.seed,
                           [&](sim::SimTime t) {
                               const bool in_crowd = t >= start_us && t < end_us;
                               return in_crowd
                                          ? spec.base_qps * spec.spike_factor
                                          : spec.base_qps;
                           });
}

std::vector<sim::SimTime>
MmppArrivals(const MmppSpec& spec, int64_t n)
{
    DGNN_CHECK(spec.on_qps > 0.0 && spec.off_qps > 0.0,
               "MMPP phase rates must be positive");
    DGNN_CHECK(spec.mean_on_s > 0.0 && spec.mean_off_s > 0.0,
               "MMPP dwell times must be positive");
    DGNN_CHECK(n >= 0, "request count must be non-negative, got ", n);

    Rng rng(spec.seed);
    std::vector<sim::SimTime> arrivals;
    arrivals.reserve(static_cast<size_t>(n));
    bool on = true;
    sim::SimTime t = 0.0;
    sim::SimTime phase_end = rng.Exponential(1.0 / (spec.mean_on_s * 1e6));
    while (static_cast<int64_t>(arrivals.size()) < n) {
        const double rate_per_us = (on ? spec.on_qps : spec.off_qps) / 1e6;
        const double gap = rng.Exponential(rate_per_us);
        if (t + gap <= phase_end) {
            t += gap;
            arrivals.push_back(t);
            continue;
        }
        // The candidate lands past the phase boundary: move to the
        // boundary, flip phase, and redraw — exact by memorylessness of
        // the exponential.
        t = phase_end;
        on = !on;
        const double dwell_us = (on ? spec.mean_on_s : spec.mean_off_s) * 1e6;
        phase_end = t + rng.Exponential(1.0 / dwell_us);
    }
    return arrivals;
}

ArrivalStats
CharacterizeArrivals(const std::vector<sim::SimTime>& arrivals,
                     double window_us)
{
    ArrivalStats stats;
    const auto n = static_cast<int64_t>(arrivals.size());
    if (n < 2) {
        return stats;
    }
    DGNN_CHECK(window_us > 0.0, "rate window must be positive, got ",
               window_us);

    double sum = 0.0;
    double sum_sq = 0.0;
    for (int64_t i = 1; i < n; ++i) {
        const double gap = arrivals[static_cast<size_t>(i)] -
                           arrivals[static_cast<size_t>(i - 1)];
        sum += gap;
        sum_sq += gap * gap;
    }
    const double count = static_cast<double>(n - 1);
    const double mean = sum / count;
    const double var = std::max(0.0, sum_sq / count - mean * mean);
    stats.cv_gap = mean > 0.0 ? std::sqrt(var) / mean : 0.0;

    // Windowed rate: bucket arrivals into fixed windows over the span.
    const double span = arrivals.back() - arrivals.front();
    if (span <= 0.0) {
        return stats;
    }
    const auto num_windows =
        static_cast<int64_t>(std::ceil(span / window_us));
    std::vector<int64_t> counts(static_cast<size_t>(num_windows), 0);
    for (const sim::SimTime t : arrivals) {
        auto w = static_cast<int64_t>((t - arrivals.front()) / window_us);
        w = std::min(w, num_windows - 1);
        ++counts[static_cast<size_t>(w)];
    }
    int64_t peak = 0;
    for (const int64_t c : counts) {
        peak = std::max(peak, c);
    }
    const double mean_per_window =
        static_cast<double>(n) / static_cast<double>(num_windows);
    stats.peak_to_mean = static_cast<double>(peak) / mean_per_window;
    return stats;
}

}  // namespace dgnn::scenario
