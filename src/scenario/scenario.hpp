#pragma once

/// @file
/// Scenario = arrival pattern x access pattern. An arrival generator
/// (arrival_patterns.hpp) times the requests; an access shaper
/// (access_patterns.hpp) or a trace replay over a
/// data/temporal_interactions dataset assigns the node endpoints. The
/// combination plugs into serve/ through the ArrivalSource seam, so every
/// adversarial regime exercises the identical serving loop, batch
/// policies, executors, and DeviceCache as the benign PR 2 processes.
///
/// GauntletScenarios() is the committed registry the serving-gauntlet
/// bench sweeps: a recurrent baseline (the PR 3 locality regime) plus
/// non-stationary arrivals and cache-adversarial access regimes, all
/// deterministic in one seed.

#include <cstdint>
#include <string>
#include <vector>

#include "data/temporal_interactions.hpp"
#include "scenario/access_patterns.hpp"
#include "scenario/arrival_patterns.hpp"
#include "serve/arrival_source.hpp"

namespace dgnn::scenario {

/// WHEN requests arrive.
enum class ArrivalKind {
    kPoisson,     ///< stationary Poisson (the benign baseline)
    kDiurnal,     ///< sinusoidal rate cycle
    kFlashCrowd,  ///< step-function crowd window
    kMmpp,        ///< bursty ON/OFF Markov-modulated Poisson
};

/// WHICH nodes requests touch.
enum class AccessKind {
    kTraceReplay,         ///< dataset stream endpoints, cycled (recurrent)
    kDriftingHotSet,      ///< hot working set that rotates to defeat LRU
    kPreferentialBursts,  ///< rich-get-richer with celebrity bursts
    kCommunityChurn,      ///< active-community traffic that churns
};

const char* ToString(ArrivalKind kind);
const char* ToString(AccessKind kind);

/// One named scenario: kinds plus the full parameter set. Only the spec
/// matching each kind is consulted.
struct Scenario {
    std::string name;
    ArrivalKind arrival = ArrivalKind::kPoisson;
    AccessKind access = AccessKind::kTraceReplay;

    double poisson_qps = 1000.0;
    uint64_t poisson_seed = 1;
    DiurnalSpec diurnal;
    FlashCrowdSpec flash_crowd;
    MmppSpec mmpp;

    DriftingHotSetSpec hot_set;
    PreferentialBurstSpec preferential;
    CommunityChurnSpec churn;
};

/// Generates @p n requests for @p s: arrival times from the scenario's
/// arrival pattern, endpoints from its access pattern (@p dataset supplies
/// the trace-replay endpoints). Deterministic in (s, dataset, n).
std::vector<serve::Request> GenerateRequests(const Scenario& s,
                                             const data::InteractionDataset& dataset,
                                             int64_t n);

/// ArrivalSource adapter: scenarios plug into serve::Serve directly.
class ScenarioSource final : public serve::ArrivalSource {
  public:
    /// @p dataset is borrowed and must outlive the source.
    ScenarioSource(Scenario scenario, const data::InteractionDataset& dataset);

    std::string Name() const override;
    std::vector<serve::Request> Generate(int64_t n) const override;

    const Scenario& Spec() const { return scenario_; }

  private:
    Scenario scenario_;
    const data::InteractionDataset& dataset_;
};

/// The gauntlet registry: a recurrent baseline plus the adversarial
/// regimes, sized to @p num_requests at @p base_qps over @p num_nodes
/// (non-stationary windows scale with the expected run span, so bursts
/// land inside the serving window at any scale). Deterministic in @p seed.
std::vector<Scenario> GauntletScenarios(double base_qps, int64_t num_requests,
                                        int64_t num_nodes, uint64_t seed);

}  // namespace dgnn::scenario
