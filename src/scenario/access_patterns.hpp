#pragma once

/// @file
/// Cache-adversarial node-access shapers. An arrival-pattern generator
/// decides WHEN requests arrive; a shaper decides WHICH nodes they touch —
/// it stamps src/dst endpoints onto an already-timed request vector. The
/// benign baseline (trace replay over data/temporal_interactions) has heavy
/// repeat-talker locality, which the PR 3 DeviceCache exploits; the shapers
/// here produce the access regimes that locality assumption breaks under:
///
///   * DriftingHotSet      — Zipf-style hot working set whose identity
///                           rotates every drift_every requests; with
///                           stride == hot set size each rotation is a
///                           fully cold set (the classic LRU defeat)
///   * PreferentialBursts  — degree-proportional attachment (rich get
///                           richer) punctuated by "new celebrity" bursts
///                           that hammer a previously cold node
///   * CommunityChurn      — traffic concentrated in one active community
///                           that churns to another on a fixed cadence
///
/// All shapers are pure functions of (spec, request count): seeded,
/// deterministic, endpoints in [0, num_nodes).

#include <cstdint>
#include <vector>

#include "serve/request.hpp"

namespace dgnn::scenario {

/// Hot working set that drifts to defeat LRU.
struct DriftingHotSetSpec {
    int64_t num_nodes = 4096;
    int64_t hot_nodes = 64;     ///< size of the hot working set
    double hot_fraction = 0.9;  ///< probability an endpoint targets the hot set
    int64_t drift_every = 256;  ///< requests between hot-set rotations
    /// Node-id shift per rotation; == hot_nodes makes every rotation a
    /// fully cold set.
    int64_t drift_stride = 64;
    uint64_t seed = 1;
};

void AssignDriftingHotSet(std::vector<serve::Request>& requests,
                          const DriftingHotSetSpec& spec);

/// Preferential attachment with celebrity bursts.
struct PreferentialBurstSpec {
    int64_t num_nodes = 4096;
    /// Probability an endpoint is drawn degree-proportionally (from the
    /// history of past endpoints) rather than uniformly.
    double attach_bias = 0.75;
    int64_t burst_every = 512;  ///< requests between celebrity bursts
    int64_t burst_len = 128;    ///< requests per burst
    uint64_t seed = 1;
};

void AssignPreferentialBursts(std::vector<serve::Request>& requests,
                              const PreferentialBurstSpec& spec);

/// Community-concentrated traffic with periodic churn.
struct CommunityChurnSpec {
    int64_t num_communities = 16;
    int64_t community_size = 256;  ///< nodes per community (contiguous ids)
    double in_community = 0.95;    ///< probability an endpoint stays inside
                                   ///< the active community
    int64_t churn_every = 512;     ///< requests between community switches
    uint64_t seed = 1;
};

void AssignCommunityChurn(std::vector<serve::Request>& requests,
                          const CommunityChurnSpec& spec);

/// Endpoint-reuse characterization: unique endpoint count and the fraction
/// of endpoint references that repeat an endpoint already seen (the
/// locality a warm cache can exploit). Used by the gauntlet catalog.
struct AccessStats {
    int64_t unique_nodes = 0;
    double reuse_fraction = 0.0;
};

AccessStats CharacterizeAccesses(const std::vector<serve::Request>& requests);

}  // namespace dgnn::scenario
