#pragma once

/// @file
/// Umbrella header: the full public API of the dgnn bottleneck-analysis
/// library. Include this for quick experiments; production users should
/// include the specific subsystem headers they need.

// Support
#include "support/check.hpp"

// Tensor substrate
#include "tensor/ops.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

// Neural substrate
#include "nn/activations.hpp"
#include "nn/attention.hpp"
#include "nn/embedding.hpp"
#include "nn/gcn.hpp"
#include "nn/layer_norm.hpp"
#include "nn/linear.hpp"
#include "nn/mlp.hpp"
#include "nn/module.hpp"
#include "nn/rnn_cell.hpp"
#include "nn/time_encoding.hpp"

// Dynamic-graph substrate
#include "graph/event_stream.hpp"
#include "graph/snapshot.hpp"
#include "graph/snapshot_sequence.hpp"
#include "graph/tbatch.hpp"
#include "graph/temporal_sampler.hpp"

// Device-resident cache
#include "cache/device_cache.hpp"

// Hardware simulator
#include "sim/device.hpp"
#include "sim/device_spec.hpp"
#include "sim/fusion.hpp"
#include "sim/kernel.hpp"
#include "sim/pcie.hpp"
#include "sim/runtime.hpp"
#include "sim/runtime_observer.hpp"
#include "sim/sim_time.hpp"
#include "sim/stream.hpp"
#include "sim/topology.hpp"
#include "sim/trace.hpp"
#include "sim/warmup.hpp"

// Happens-before hazard analysis over the simulated runtime
#include "analysis/hazard_checker.hpp"
#include "analysis/hazard_report.hpp"
#include "analysis/sync_mutations.hpp"

// Profiling / bottleneck-analysis core
#include "core/bench_json_writer.hpp"
#include "core/bottleneck.hpp"
#include "core/breakdown.hpp"
#include "core/csv_writer.hpp"
#include "core/latency_histogram.hpp"
#include "core/model_summary.hpp"
#include "core/profiler.hpp"
#include "core/table_writer.hpp"
#include "core/trace_analysis.hpp"

// Dataset generators
#include "data/molecular_gen.hpp"
#include "data/snapshot_seq_gen.hpp"
#include "data/social_evolution_gen.hpp"
#include "data/temporal_interactions.hpp"
#include "data/traffic_gen.hpp"

// The eight profiled models
#include "models/astgnn.hpp"
#include "models/dgnn_model.hpp"
#include "models/dyrep.hpp"
#include "models/evolvegcn.hpp"
#include "models/fusion_catalog.hpp"
#include "models/jodie.hpp"
#include "models/ldg.hpp"
#include "models/moldgnn.hpp"
#include "models/tgat.hpp"
#include "models/tgn.hpp"

// Per-batch hybrid dispatch (predict-then-place over the cost model)
#include "dispatch/dispatcher.hpp"

// Online inference serving
#include "serve/arrival_source.hpp"
#include "serve/batch_policy.hpp"
#include "serve/executor.hpp"
#include "serve/model_session.hpp"
#include "serve/observer.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "serve/shard_hook.hpp"

// Scale-out sharded serving (partitioned node state across a topology)
#include "shard/exchange.hpp"
#include "shard/partition_book.hpp"
#include "shard/sharded_server.hpp"

// Serving observability (span tracing, metrics, bottleneck attribution)
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/observability.hpp"
#include "obs/request_timeline.hpp"
#include "obs/windowed_metrics.hpp"

// Adversarial workload scenarios (the serving gauntlet)
#include "scenario/access_patterns.hpp"
#include "scenario/arrival_patterns.hpp"
#include "scenario/scenario.hpp"
