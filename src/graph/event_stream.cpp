#include "graph/event_stream.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dgnn::graph {

EventStream::EventStream(int64_t num_nodes, std::vector<TemporalEvent> events)
    : num_nodes_(num_nodes), events_(std::move(events))
{
    DGNN_CHECK(num_nodes >= 0, "negative node count ", num_nodes);
    for (const TemporalEvent& e : events_) {
        DGNN_CHECK(e.src >= 0 && e.src < num_nodes && e.dst >= 0 && e.dst < num_nodes,
                   "event (", e.src, ", ", e.dst, ") out of range for ", num_nodes,
                   " nodes");
    }
    std::stable_sort(events_.begin(), events_.end(),
                     [](const TemporalEvent& a, const TemporalEvent& b) {
                         return a.time < b.time;
                     });
}

const TemporalEvent&
EventStream::Event(int64_t index) const
{
    DGNN_CHECK(index >= 0 && index < NumEvents(), "event index ", index,
               " out of range for ", NumEvents(), " events");
    return events_[static_cast<size_t>(index)];
}

std::span<const TemporalEvent>
EventStream::Slice(int64_t begin, int64_t end) const
{
    DGNN_CHECK(begin >= 0 && begin <= end && end <= NumEvents(), "bad slice [", begin,
               ", ", end, ") of ", NumEvents(), " events");
    return {events_.data() + begin, static_cast<size_t>(end - begin)};
}

double
EventStream::StartTime() const
{
    return events_.empty() ? 0.0 : events_.front().time;
}

double
EventStream::EndTime() const
{
    return events_.empty() ? 0.0 : events_.back().time;
}

int64_t
EventStream::NumBatches(int64_t batch_size) const
{
    DGNN_CHECK(batch_size > 0, "batch size must be positive, got ", batch_size);
    return (NumEvents() + batch_size - 1) / batch_size;
}

TemporalAdjacency::TemporalAdjacency(const EventStream& stream)
    : history_(static_cast<size_t>(stream.NumNodes()))
{
    // Events arrive in time order, so per-node histories are built sorted.
    for (const TemporalEvent& e : stream.Events()) {
        history_[static_cast<size_t>(e.src)].push_back(
            Entry{e.dst, e.time, e.feature_index});
        history_[static_cast<size_t>(e.dst)].push_back(
            Entry{e.src, e.time, e.feature_index});
    }
}

std::span<const TemporalAdjacency::Entry>
TemporalAdjacency::History(int64_t node) const
{
    DGNN_CHECK(node >= 0 && node < NumNodes(), "node ", node, " out of range");
    const auto& h = history_[static_cast<size_t>(node)];
    return {h.data(), h.size()};
}

int64_t
TemporalAdjacency::CountBefore(int64_t node, double time) const
{
    const auto h = History(node);
    const auto it = std::lower_bound(
        h.begin(), h.end(), time,
        [](const Entry& e, double t) { return e.time < t; });
    return static_cast<int64_t>(it - h.begin());
}

}  // namespace dgnn::graph
