#include "graph/snapshot_sequence.hpp"

#include "support/check.hpp"

namespace dgnn::graph {

SnapshotSequence::SnapshotSequence(int64_t num_nodes,
                                   std::vector<GraphSnapshot> snapshots)
    : num_nodes_(num_nodes), snapshots_(std::move(snapshots))
{
    for (const GraphSnapshot& s : snapshots_) {
        DGNN_CHECK(s.NumNodes() == num_nodes, "snapshot node count ", s.NumNodes(),
                   " != sequence node count ", num_nodes);
    }
}

const GraphSnapshot&
SnapshotSequence::Step(int64_t t) const
{
    DGNN_CHECK(t >= 0 && t < NumSteps(), "step ", t, " out of range for ", NumSteps(),
               " steps");
    return snapshots_[static_cast<size_t>(t)];
}

int64_t
SnapshotSequence::TotalEdges() const
{
    int64_t total = 0;
    for (const GraphSnapshot& s : snapshots_) {
        total += s.NumEdges();
    }
    return total;
}

double
SnapshotSequence::AdjacentOverlap(int64_t t) const
{
    DGNN_CHECK(t >= 0 && t + 1 < NumSteps(), "no adjacent pair at step ", t);
    const GraphSnapshot& a = snapshots_[static_cast<size_t>(t)];
    const GraphSnapshot& b = snapshots_[static_cast<size_t>(t) + 1];
    const int64_t common = a.CommonEdges(b);
    const int64_t union_size = a.NumEdges() + b.NumEdges() - common;
    return union_size > 0 ? static_cast<double>(common) /
                                static_cast<double>(union_size)
                          : 0.0;
}

double
SnapshotSequence::MeanOverlap() const
{
    if (NumSteps() < 2) {
        return 0.0;
    }
    double sum = 0.0;
    for (int64_t t = 0; t + 1 < NumSteps(); ++t) {
        sum += AdjacentOverlap(t);
    }
    return sum / static_cast<double>(NumSteps() - 1);
}

}  // namespace dgnn::graph
