#pragma once

/// @file
/// Continuous-time dynamic graph (CTDG): a time-ordered stream of
/// interaction events between nodes, as consumed by JODIE, TGAT, TGN,
/// DyRep, and LDG.

#include <cstdint>
#include <span>
#include <vector>

namespace dgnn::graph {

/// One timestamped interaction (src interacts with dst at time t).
struct TemporalEvent {
    int64_t src = 0;
    int64_t dst = 0;
    double time = 0.0;
    /// Index into the dataset's edge-feature matrix (-1 when featureless).
    int64_t feature_index = -1;
};

/// Immutable, time-sorted event stream over a fixed node id space.
class EventStream {
  public:
    /// Takes ownership of @p events; verifies node range and sorts by time
    /// (stable, so simultaneous events keep insertion order).
    EventStream(int64_t num_nodes, std::vector<TemporalEvent> events);

    int64_t NumNodes() const { return num_nodes_; }
    int64_t NumEvents() const { return static_cast<int64_t>(events_.size()); }

    const TemporalEvent& Event(int64_t index) const;
    const std::vector<TemporalEvent>& Events() const { return events_; }

    /// Events [begin, end) as a span — one mini-batch.
    std::span<const TemporalEvent> Slice(int64_t begin, int64_t end) const;

    /// Earliest / latest event time (0 when empty).
    double StartTime() const;
    double EndTime() const;

    /// Number of mini-batches of @p batch_size covering the stream.
    int64_t NumBatches(int64_t batch_size) const;

  private:
    int64_t num_nodes_;
    std::vector<TemporalEvent> events_;
};

/// Per-node time-sorted interaction history derived from an EventStream.
/// This is the index structure temporal neighbor sampling bisects.
class TemporalAdjacency {
  public:
    explicit TemporalAdjacency(const EventStream& stream);

    /// One historical neighbor of a node.
    struct Entry {
        int64_t neighbor;
        double time;
        int64_t feature_index;
    };

    int64_t NumNodes() const { return static_cast<int64_t>(history_.size()); }

    /// Full history of @p node, ascending in time.
    std::span<const Entry> History(int64_t node) const;

    /// Number of interactions of @p node strictly before @p time
    /// (binary search — the "bisection" the paper describes).
    int64_t CountBefore(int64_t node, double time) const;

  private:
    std::vector<std::vector<Entry>> history_;
};

}  // namespace dgnn::graph
