#include "graph/temporal_sampler.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "support/check.hpp"

namespace dgnn::graph {

SamplingCost&
SamplingCost::operator+=(const SamplingCost& other)
{
    bisection_probes += other.bisection_probes;
    sort_ops += other.sort_ops;
    gathered_bytes += other.gathered_bytes;
    candidates_scanned += other.candidates_scanned;
    return *this;
}

TemporalNeighborSampler::TemporalNeighborSampler(const TemporalAdjacency& adjacency,
                                                 SamplingStrategy strategy,
                                                 uint64_t seed)
    : adjacency_(adjacency), strategy_(strategy), rng_(seed)
{
}

SampledNeighborhood
TemporalNeighborSampler::Sample(int64_t node, double time, int64_t k)
{
    DGNN_CHECK(k > 0, "sample size must be positive, got ", k);
    const auto history = adjacency_.History(node);
    const int64_t valid = adjacency_.CountBefore(node, time);

    // Bisection over the node's time-sorted history.
    cost_.bisection_probes +=
        valid > 0 ? static_cast<int64_t>(std::ceil(std::log2(
                        static_cast<double>(history.size()) + 1.0))) + 1
                  : 1;

    SampledNeighborhood out;
    out.neighbors.assign(static_cast<size_t>(k), -1);
    out.times.assign(static_cast<size_t>(k), 0.0);
    out.feature_indices.assign(static_cast<size_t>(k), -1);

    if (valid == 0) {
        return out;
    }

    std::vector<int64_t> picked;
    picked.reserve(static_cast<size_t>(k));
    if (strategy_ == SamplingStrategy::kMostRecent) {
        const int64_t take = std::min<int64_t>(k, valid);
        for (int64_t i = 0; i < take; ++i) {
            picked.push_back(valid - take + i);
        }
        cost_.candidates_scanned += take;
    } else {
        // Uniform over [0, valid) WITHOUT replacement (Floyd's algorithm:
        // `take` distinct positions, one RNG draw per position — the same
        // stream consumption as the old with-replacement draw, but no
        // duplicate neighbors when the history has enough distinct
        // entries); then sort indices so the neighborhood stays
        // time-ordered (the index sort the paper mentions).
        const int64_t take = std::min<int64_t>(k, valid);
        std::unordered_set<int64_t> chosen;
        chosen.reserve(static_cast<size_t>(take));
        for (int64_t i = valid - take; i < valid; ++i) {
            const int64_t j = rng_.UniformInt(0, i);
            const int64_t pick = chosen.insert(j).second ? j : i;
            if (pick != j) {
                chosen.insert(pick);
            }
            picked.push_back(pick);
        }
        std::sort(picked.begin(), picked.end());
        cost_.sort_ops += static_cast<int64_t>(
            static_cast<double>(take) *
            std::max(1.0, std::log2(static_cast<double>(take) + 1.0)));
        cost_.candidates_scanned += take;
    }

    for (size_t i = 0; i < picked.size(); ++i) {
        const auto& entry = history[static_cast<size_t>(picked[i])];
        // Fill from the back so padding sits at the front (TGAT convention).
        const size_t slot = static_cast<size_t>(k) - picked.size() + i;
        out.neighbors[slot] = entry.neighbor;
        out.times[slot] = entry.time;
        out.feature_indices[slot] = entry.feature_index;
        // Each gathered entry is a random access into the history arrays.
        cost_.gathered_bytes += static_cast<int64_t>(sizeof(TemporalAdjacency::Entry));
    }
    return out;
}

std::vector<SampledNeighborhood>
TemporalNeighborSampler::SampleBatch(const std::vector<int64_t>& nodes,
                                     const std::vector<double>& times, int64_t k)
{
    DGNN_CHECK(nodes.size() == times.size(), "nodes/times size mismatch: ",
               nodes.size(), " vs ", times.size());
    std::vector<SampledNeighborhood> result;
    result.reserve(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
        result.push_back(Sample(nodes[i], times[i], k));
    }
    return result;
}

SamplingCost
TemporalNeighborSampler::TakeCost()
{
    SamplingCost c = cost_;
    cost_ = SamplingCost{};
    return c;
}

}  // namespace dgnn::graph
