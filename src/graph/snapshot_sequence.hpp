#pragma once

/// @file
/// Discrete-time dynamic graph (DTDG): an ordered sequence of snapshots, as
/// consumed by EvolveGCN, MolDGNN, and ASTGNN.

#include <memory>
#include <vector>

#include "graph/snapshot.hpp"

namespace dgnn::graph {

/// Time-ordered snapshot sequence with shared node id space.
class SnapshotSequence {
  public:
    SnapshotSequence(int64_t num_nodes, std::vector<GraphSnapshot> snapshots);

    int64_t NumNodes() const { return num_nodes_; }
    int64_t NumSteps() const { return static_cast<int64_t>(snapshots_.size()); }

    const GraphSnapshot& Step(int64_t t) const;

    /// Total edges across all snapshots.
    int64_t TotalEdges() const;

    /// Jaccard-style similarity of adjacent snapshots t and t+1:
    /// |E_t ∩ E_{t+1}| / |E_t ∪ E_{t+1}|. Drives the delta-transfer
    /// optimization study (paper section 5.2.2).
    double AdjacentOverlap(int64_t t) const;

    /// Mean AdjacentOverlap over the sequence (0 for < 2 steps).
    double MeanOverlap() const;

  private:
    int64_t num_nodes_;
    std::vector<GraphSnapshot> snapshots_;
};

}  // namespace dgnn::graph
