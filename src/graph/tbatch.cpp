#include "graph/tbatch.hpp"

#include <unordered_map>
#include <unordered_set>

#include "support/check.hpp"

namespace dgnn::graph {

std::vector<TBatch>
BuildTBatches(const EventStream& stream, int64_t begin, int64_t end)
{
    DGNN_CHECK(begin >= 0 && begin <= end && end <= stream.NumEvents(),
               "bad event range [", begin, ", ", end, ")");
    std::vector<TBatch> batches;
    // last batch index a node was placed in; -1 when not yet seen.
    std::unordered_map<int64_t, int64_t> last_batch;
    last_batch.reserve(static_cast<size_t>(end - begin) * 2);

    for (int64_t i = begin; i < end; ++i) {
        const TemporalEvent& e = stream.Event(i);
        int64_t lu = -1;
        int64_t li = -1;
        if (auto it = last_batch.find(e.src); it != last_batch.end()) {
            lu = it->second;
        }
        if (auto it = last_batch.find(e.dst); it != last_batch.end()) {
            li = it->second;
        }
        const int64_t b = std::max(lu, li) + 1;
        if (b >= static_cast<int64_t>(batches.size())) {
            batches.resize(static_cast<size_t>(b) + 1);
        }
        batches[static_cast<size_t>(b)].event_indices.push_back(i);
        last_batch[e.src] = b;
        last_batch[e.dst] = b;
    }
    return batches;
}

bool
ValidateTBatches(const EventStream& stream, const std::vector<TBatch>& batches)
{
    // Invariant 1: within a batch every node appears at most once.
    for (const TBatch& batch : batches) {
        std::unordered_set<int64_t> seen;
        for (int64_t idx : batch.event_indices) {
            const TemporalEvent& e = stream.Event(idx);
            if (!seen.insert(e.src).second || !seen.insert(e.dst).second) {
                return false;
            }
        }
    }
    // Invariant 2: per node, batch order respects event order.
    std::unordered_map<int64_t, int64_t> last_event_index;
    for (const TBatch& batch : batches) {
        for (int64_t idx : batch.event_indices) {
            const TemporalEvent& e = stream.Event(idx);
            for (int64_t node : {e.src, e.dst}) {
                auto it = last_event_index.find(node);
                if (it != last_event_index.end() && it->second > idx) {
                    return false;
                }
                last_event_index[node] = idx;
            }
        }
    }
    return true;
}

}  // namespace dgnn::graph
