#pragma once

/// @file
/// A static graph snapshot in CSR form — one time step of a discrete-time
/// dynamic graph (DTDG). Layout matches nn::SparseMatrix so models can
/// convert without copying semantics around.

#include <cstdint>
#include <span>
#include <vector>

namespace dgnn::graph {

/// One weighted directed edge.
struct Edge {
    int64_t src = 0;
    int64_t dst = 0;
    float weight = 1.0f;
};

/// Immutable CSR snapshot of a graph at one time step.
class GraphSnapshot {
  public:
    /// Builds from an edge list (duplicates kept, self-loops allowed).
    GraphSnapshot(int64_t num_nodes, const std::vector<Edge>& edges);

    int64_t NumNodes() const { return num_nodes_; }
    int64_t NumEdges() const { return static_cast<int64_t>(col_indices_.size()); }

    /// Out-degree of @p node.
    int64_t Degree(int64_t node) const;

    /// Neighbor ids of @p node.
    std::span<const int64_t> Neighbors(int64_t node) const;

    /// Edge weights aligned with Neighbors(node).
    std::span<const float> Weights(int64_t node) const;

    const std::vector<int64_t>& RowOffsets() const { return row_offsets_; }
    const std::vector<int64_t>& ColIndices() const { return col_indices_; }
    const std::vector<float>& Values() const { return values_; }

    /// Bytes of the CSR payload (what a H2D copy of the topology moves).
    int64_t TopologyBytes() const;

    /// Number of edges shared with @p other (same src->dst pair), used to
    /// quantify snapshot overlap for the delta-transfer ablation.
    int64_t CommonEdges(const GraphSnapshot& other) const;

  private:
    int64_t num_nodes_;
    std::vector<int64_t> row_offsets_;
    std::vector<int64_t> col_indices_;
    std::vector<float> values_;
};

}  // namespace dgnn::graph
