#pragma once

/// @file
/// JODIE's t-batch algorithm (Kumar et al., KDD'19): partition a time-ordered
/// interaction stream into batches such that no user or item appears twice in
/// a batch. Interactions inside a batch are then independent and can be
/// processed in parallel; batches stay time-ordered.

#include <cstdint>
#include <vector>

#include "graph/event_stream.hpp"

namespace dgnn::graph {

/// One t-batch: indices into the source stream.
struct TBatch {
    std::vector<int64_t> event_indices;
};

/// Builds t-batches over events [begin, end) of @p stream.
///
/// Greedy assignment: an interaction (u, i) goes to batch
/// 1 + max(last_batch(u), last_batch(i)) — the standard t-batch rule.
std::vector<TBatch> BuildTBatches(const EventStream& stream, int64_t begin,
                                  int64_t end);

/// Verifies the t-batch invariants (each node at most once per batch,
/// batches preserve time precedence per node). Returns true when valid.
bool ValidateTBatches(const EventStream& stream, const std::vector<TBatch>& batches);

}  // namespace dgnn::graph
