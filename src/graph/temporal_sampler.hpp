#pragma once

/// @file
/// Temporal neighborhood sampling (TGAT/TGN style): for a target node at
/// time t, pick k neighbors among interactions strictly before t, either the
/// k most recent or uniformly at random. The sampler reports an operation
/// count (bisection probes, sort comparisons, gathered bytes) that feeds the
/// CPU cost model — this is the paper's workload-imbalance bottleneck.

#include <cstdint>
#include <vector>

#include "graph/event_stream.hpp"
#include "tensor/random.hpp"

namespace dgnn::graph {

/// Sampling strategy.
enum class SamplingStrategy {
    kMostRecent,
    kUniform,
};

/// Result of sampling one target node.
struct SampledNeighborhood {
    std::vector<int64_t> neighbors;        ///< padded with -1 when history short
    std::vector<double> times;             ///< interaction times (0 for padding)
    std::vector<int64_t> feature_indices;  ///< -1 for padding
};

/// Cost accounting of a sampling call, consumed by the CPU cost model.
struct SamplingCost {
    int64_t bisection_probes = 0;  ///< binary-search comparisons
    int64_t sort_ops = 0;          ///< comparisons in candidate sorting
    int64_t gathered_bytes = 0;    ///< bytes touched via random access
    int64_t candidates_scanned = 0;

    SamplingCost& operator+=(const SamplingCost& other);
};

/// Samples temporal neighborhoods over a TemporalAdjacency.
class TemporalNeighborSampler {
  public:
    TemporalNeighborSampler(const TemporalAdjacency& adjacency,
                            SamplingStrategy strategy, uint64_t seed);

    /// Samples @p k neighbors of @p node before @p time; accumulates cost.
    SampledNeighborhood Sample(int64_t node, double time, int64_t k);

    /// Batch variant: one neighborhood per (node, time) pair.
    std::vector<SampledNeighborhood> SampleBatch(const std::vector<int64_t>& nodes,
                                                 const std::vector<double>& times,
                                                 int64_t k);

    /// Cost accumulated since the last TakeCost() call.
    SamplingCost TakeCost();

    SamplingStrategy Strategy() const { return strategy_; }

  private:
    const TemporalAdjacency& adjacency_;
    SamplingStrategy strategy_;
    Rng rng_;
    SamplingCost cost_;
};

}  // namespace dgnn::graph
