#include "graph/snapshot.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dgnn::graph {

GraphSnapshot::GraphSnapshot(int64_t num_nodes, const std::vector<Edge>& edges)
    : num_nodes_(num_nodes)
{
    DGNN_CHECK(num_nodes >= 0, "negative node count ", num_nodes);
    std::vector<int64_t> degree(static_cast<size_t>(num_nodes), 0);
    for (const Edge& e : edges) {
        DGNN_CHECK(e.src >= 0 && e.src < num_nodes && e.dst >= 0 && e.dst < num_nodes,
                   "edge (", e.src, " -> ", e.dst, ") out of range for ", num_nodes,
                   " nodes");
        ++degree[static_cast<size_t>(e.src)];
    }
    row_offsets_.assign(static_cast<size_t>(num_nodes) + 1, 0);
    for (int64_t i = 0; i < num_nodes; ++i) {
        row_offsets_[static_cast<size_t>(i) + 1] =
            row_offsets_[static_cast<size_t>(i)] + degree[static_cast<size_t>(i)];
    }
    col_indices_.resize(edges.size());
    values_.resize(edges.size());
    std::vector<int64_t> cursor(row_offsets_.begin(), row_offsets_.end() - 1);
    for (const Edge& e : edges) {
        const int64_t pos = cursor[static_cast<size_t>(e.src)]++;
        col_indices_[static_cast<size_t>(pos)] = e.dst;
        values_[static_cast<size_t>(pos)] = e.weight;
    }
    // Sort each row's columns for deterministic iteration and fast set ops.
    for (int64_t i = 0; i < num_nodes; ++i) {
        const int64_t begin = row_offsets_[static_cast<size_t>(i)];
        const int64_t end = row_offsets_[static_cast<size_t>(i) + 1];
        std::vector<std::pair<int64_t, float>> row;
        row.reserve(static_cast<size_t>(end - begin));
        for (int64_t e = begin; e < end; ++e) {
            row.emplace_back(col_indices_[static_cast<size_t>(e)],
                             values_[static_cast<size_t>(e)]);
        }
        std::sort(row.begin(), row.end());
        for (int64_t e = begin; e < end; ++e) {
            col_indices_[static_cast<size_t>(e)] = row[static_cast<size_t>(e - begin)].first;
            values_[static_cast<size_t>(e)] = row[static_cast<size_t>(e - begin)].second;
        }
    }
}

int64_t
GraphSnapshot::Degree(int64_t node) const
{
    DGNN_CHECK(node >= 0 && node < num_nodes_, "node ", node, " out of range");
    return row_offsets_[static_cast<size_t>(node) + 1] -
           row_offsets_[static_cast<size_t>(node)];
}

std::span<const int64_t>
GraphSnapshot::Neighbors(int64_t node) const
{
    DGNN_CHECK(node >= 0 && node < num_nodes_, "node ", node, " out of range");
    const int64_t begin = row_offsets_[static_cast<size_t>(node)];
    const int64_t end = row_offsets_[static_cast<size_t>(node) + 1];
    return {col_indices_.data() + begin, static_cast<size_t>(end - begin)};
}

std::span<const float>
GraphSnapshot::Weights(int64_t node) const
{
    DGNN_CHECK(node >= 0 && node < num_nodes_, "node ", node, " out of range");
    const int64_t begin = row_offsets_[static_cast<size_t>(node)];
    const int64_t end = row_offsets_[static_cast<size_t>(node) + 1];
    return {values_.data() + begin, static_cast<size_t>(end - begin)};
}

int64_t
GraphSnapshot::TopologyBytes() const
{
    return static_cast<int64_t>(row_offsets_.size() * sizeof(int64_t) +
                                col_indices_.size() * sizeof(int64_t) +
                                values_.size() * sizeof(float));
}

int64_t
GraphSnapshot::CommonEdges(const GraphSnapshot& other) const
{
    const int64_t n = std::min(num_nodes_, other.num_nodes_);
    int64_t common = 0;
    for (int64_t u = 0; u < n; ++u) {
        const auto a = Neighbors(u);
        const auto b = other.Neighbors(u);
        size_t i = 0;
        size_t j = 0;
        while (i < a.size() && j < b.size()) {
            if (a[i] == b[j]) {
                ++common;
                ++i;
                ++j;
            } else if (a[i] < b[j]) {
                ++i;
            } else {
                ++j;
            }
        }
    }
    return common;
}

}  // namespace dgnn::graph
