#pragma once

/// @file
/// Registered fusion plans for the hot per-model kernel chains. Each plan
/// names the collapsed launch and the exact unfused kernels (in order) it
/// replaces; models build the concrete FusedKernelDesc per batch through
/// MakeRegisteredChain, which validates the parts against the registry so a
/// model refactor cannot silently fuse a different chain than the one the
/// docs, bench, and dispatcher reason about.
///
/// The chains (see DESIGN.md §13 for the cost derivations):
///
///   TGN    tgn_memory_fused   aggregate_last + gru_memory_update
///          tgn_embed_fused    temporal_attention + edge_decoder
///   TGAT   tgat_encode_fused  time_encoding + feature_projection
///          tgat_attention_fused  attention + merge_ffn  (per layer)
///   JODIE  jodie_tbatch_fused project_user + predict_item + 2x rnn_update
///                             (per t-batch: 4 launches -> 1)

#include <cstdint>
#include <string>
#include <vector>

#include "sim/fusion.hpp"

namespace dgnn::models {

/// One registered fusion opportunity: a named chain of kernels in one model.
struct FusionPlan {
    /// Model the chain belongs to ("TGN", "TGAT", "JODIE").
    std::string model;

    /// Collapsed launch name, e.g. "tgn_memory_fused".
    std::string chain;

    /// Unfused kernel names, in execution order.
    std::vector<std::string> parts;
};

/// The full registry, fixed order (TGN, TGAT, JODIE).
[[nodiscard]] const std::vector<FusionPlan>& FusionCatalog();

/// Lookup by chain name; nullptr when not registered.
[[nodiscard]] const FusionPlan* FindFusionPlan(const std::string& chain);

/// Build the FusedKernelDesc for a registered chain, checking that the given
/// parts match the plan's kernel names and order. JODIE's recurrent cells
/// repeat a part name; the plan lists each repetition explicitly.
[[nodiscard]] sim::FusedKernelDesc MakeRegisteredChain(
    const std::string& chain, std::vector<sim::KernelDesc> parts,
    std::vector<int64_t> intermediate_bytes);

}  // namespace dgnn::models
