#include "models/tgn.hpp"

#include <algorithm>
#include <unordered_map>

#include "models/fusion_catalog.hpp"
#include "tensor/ops.hpp"

namespace dgnn::models {

Tgn::Tgn(const data::InteractionDataset& dataset, TgnConfig config)
    : dataset_(dataset), config_(config), adjacency_(dataset.stream)
{
    Rng rng(config_.seed);
    const int64_t n = dataset_.NumNodes();
    const int64_t md = config_.memory_dim;
    memory_ = std::make_unique<nn::Embedding>(n, md, rng);
    last_update_.assign(static_cast<size_t>(n), 0.0);
    time_encoder_ = std::make_unique<nn::BochnerTimeEncoder>(config_.time_dim, rng);
    memory_updater_ = std::make_unique<nn::GruCell>(MessageDim(), md, rng);
    embedding_attention_ =
        std::make_unique<nn::MultiHeadAttention>(md, config_.num_heads, rng);
    feature_proj_ =
        std::make_unique<nn::Linear>(dataset_.spec.edge_feature_dim, md, rng);
    edge_decoder_ = std::make_unique<nn::Mlp>(
        std::vector<int64_t>{2 * md, md, 1}, rng);
}

int64_t
Tgn::MessageDim() const
{
    return 2 * config_.memory_dim + config_.time_dim + dataset_.spec.edge_feature_dim;
}

int64_t
Tgn::WeightBytes() const
{
    // The node memory is state, not weights; exclude it from the
    // one-time-weight-transfer footprint.
    return time_encoder_->ParameterBytes() + memory_updater_->ParameterBytes() +
           embedding_attention_->ParameterBytes() + feature_proj_->ParameterBytes() +
           edge_decoder_->ParameterBytes();
}

RunResult
Tgn::RunInference(sim::Runtime& runtime, const RunConfig& run)
{
    ValidateRunConfig(runtime, run);
    NnExecutor exec(runtime);
    core::Profiler profiler(runtime);
    graph::TemporalNeighborSampler sampler(
        adjacency_, graph::SamplingStrategy::kMostRecent, config_.seed + 1);
    // Device-resident node-memory cache (hybrid + positive capacity only).
    // Hits keep memory rows on the device: the raw-message H2D shrinks to
    // the non-memory payload plus missed rows, and the per-batch memory
    // sync-back becomes eviction-driven write-backs. Numerics untouched.
    cache::DeviceCache memory_cache =
        MakeRunCache(runtime, run, CacheRowBytes());

    sim::SimTime warm_one = 0.0;
    sim::SimTime warm_run = 0.0;
    if (run.include_warmup) {
        warm_one = runtime.EnsureWarm(WeightBytes()).TotalUs();
        warm_run =
            runtime.RunAllocWarmup(run.batch_size * MessageDim() * 4).TotalUs();
    }

    sim::DeviceBuffer weights = runtime.AllocDevice(WeightBytes(), "tgn_weights");
    sim::DeviceBuffer memory_buf = runtime.AllocDevice(
        memory_->Count() * memory_->Dim() * 4, "tgn_node_memory");
    // The cache's device footprint (staging + index), capped at the full
    // memory table: cached capacity is not free device memory.
    sim::DeviceBuffer cache_buf;
    if (memory_cache.Enabled()) {
        cache_buf = runtime.AllocDevice(
            std::min(memory_cache.CapacityRows(), memory_->Count()) *
                CacheRowBytes(),
            "tgn_memory_cache");
    }

    runtime.ResetMeasurementWindow();

    const int64_t total_events =
        run.max_events > 0 ? std::min(run.max_events, dataset_.stream.NumEvents())
                           : dataset_.stream.NumEvents();
    const int64_t bs = run.batch_size;
    const int64_t k = run.num_neighbors;
    const int64_t md = config_.memory_dim;
    Checksum checksum;
    int64_t iterations = 0;

    for (int64_t begin = 0; begin < total_events; begin += bs) {
        const int64_t end = std::min(begin + bs, total_events);
        const auto batch = dataset_.stream.Slice(begin, end);
        const int64_t nb = static_cast<int64_t>(batch.size());

        // Unique nodes touched by the batch, with their latest message.
        std::unordered_map<int64_t, int64_t> last_message_event;
        for (int64_t i = 0; i < nb; ++i) {
            last_message_event[batch[i].src] = i;
            last_message_event[batch[i].dst] = i;
        }
        std::vector<int64_t> unique_nodes;
        unique_nodes.reserve(last_message_event.size());
        // determinism-ok: collected set is sorted below before use
        for (const auto& [node, event] : last_message_event) {
            unique_nodes.push_back(node);
        }
        std::sort(unique_nodes.begin(), unique_nodes.end());
        const int64_t un = static_cast<int64_t>(unique_nodes.size());

        // Per-batch working set on the device: raw messages + embeddings.
        sim::DeviceBuffer batch_buf = runtime.AllocDevice(
            2 * nb * MessageDim() * 4 + 2 * nb * (k + 1) * md * 4,
            "tgn_batch_activations");

        // Hot-chain fusion (run.fuse_kernels): the aggregation launch is
        // deferred into the GRU update launch (tgn_memory_fused), so the
        // descriptor outlives the aggregation phase scope.
        sim::KernelDesc agg;

        // --- Aggregate Messages Passing ---------------------------------
        {
            core::ProfileScope scope(profiler, "Aggregate Messages Passing");
            runtime.RunHostFor("framework_overhead",
                               kFrameworkBatchOverheadUs / 3.0);
            // CPU builds the raw-message batch (gather + concat, irregular).
            sim::KernelDesc build;
            build.name = "build_raw_messages";
            build.flops = 2 * nb * MessageDim();
            build.bytes = 2 * nb * MessageDim() * 4;
            build.parallel_items = 1;  // python-side loop in the reference
            build.irregular = true;
            runtime.RunHost(build);

            // Batched H2D of messages + edge features (Fig 5b "one batch").
            if (memory_cache.Enabled()) {
                // Memory rows route through the device cache: the message
                // tensor's two memory slices per event are assembled
                // on-device, so only missed rows and the non-memory payload
                // (time encoding + edge features) cross PCIe. Every
                // gathered row is about to be rewritten by the GRU update,
                // so it is marked dirty here (rows evicted before the
                // batch ends still owe their write-back).
                const cache::GatherResult g =
                    memory_cache.Gather(unique_nodes, /*mark_dirty=*/true);
                runtime.CopyToDevice(
                    2 * nb * (config_.time_dim + dataset_.spec.edge_feature_dim) * 4,
                    "tgn_messages_h2d");
                runtime.GatherToDevice(g.hit_rows, g.miss_rows, CacheRowBytes(),
                                       "tgn_memory");
                runtime.WriteBackToHost(g.writeback_rows, CacheRowBytes(),
                                        "tgn_memory");
            } else {
                runtime.CopyToDevice(2 * nb * MessageDim() * 4, "tgn_messages_h2d");
            }

            // Per-node "last" aggregation kernel (scatter, irregular).
            agg.name = "aggregate_last";
            agg.flops = un * MessageDim();
            agg.bytes = (2 * nb + un) * MessageDim() * 4;
            agg.parallel_items = un * MessageDim();
            agg.irregular = true;
            if (!run.fuse_kernels) {
                runtime.Launch(agg);
            }
            (void)runtime.Synchronize();
        }

        // Real message tensors for the numeric path.
        const int64_t cap =
            run.numeric_cap > 0 ? std::min<int64_t>(run.numeric_cap, un) : un;
        Tensor messages(Shape({cap, MessageDim()}));
        std::vector<int64_t> cap_nodes(unique_nodes.begin(),
                                       unique_nodes.begin() + cap);
        for (int64_t i = 0; i < cap; ++i) {
            const int64_t node = cap_nodes[static_cast<size_t>(i)];
            const auto& e = batch[last_message_event[node]];
            const int64_t other = e.src == node ? e.dst : e.src;
            const Tensor mem_self = memory_->Row(node);
            const Tensor mem_other = memory_->Row(other);
            Tensor delta(Shape({1}));
            delta.At(0) = static_cast<float>(
                e.time - last_update_[static_cast<size_t>(node)]);
            const Tensor tenc =
                time_encoder_->Forward(delta).Reshape(Shape({config_.time_dim}));
            const Tensor efeat = e.feature_index >= 0
                                     ? dataset_.edge_features.Row(e.feature_index)
                                     : Tensor(Shape({dataset_.spec.edge_feature_dim}));
            // message = [mem_self || mem_other || time_enc || edge_feat]
            int64_t off = 0;
            auto write = [&](const Tensor& part) {
                for (int64_t j = 0; j < part.NumElements(); ++j) {
                    messages.At(i, off + j) = part.At(j);
                }
                off += part.NumElements();
            };
            write(mem_self);
            write(mem_other);
            write(tenc);
            write(efeat);
        }

        // --- Update Memory ------------------------------------------------
        {
            core::ProfileScope scope(profiler, "Update Memory");
            runtime.RunHostFor("framework_overhead",
                               kFrameworkBatchOverheadUs / 3.0);
            const Tensor old_memory = memory_->Lookup(cap_nodes);
            const Tensor new_memory = memory_updater_->Forward(messages, old_memory);
            memory_->Update(cap_nodes, new_memory);
            checksum.Add(new_memory);

            sim::KernelDesc upd;
            upd.name = "gru_memory_update";
            upd.flops = memory_updater_->ForwardFlops(un);
            upd.bytes = un * (MessageDim() + 2 * md) * 4 +
                        memory_updater_->ParameterBytes();
            upd.parallel_items = un * md;
            if (run.fuse_kernels) {
                // One launch for aggregate + GRU update; the aggregated
                // per-node message tensor stays on-chip at the boundary.
                runtime.Launch(sim::Collapse(MakeRegisteredChain(
                    "tgn_memory_fused", {agg, upd}, {un * MessageDim() * 4})));
            } else {
                runtime.Launch(upd);
            }
            (void)runtime.Synchronize();

            // Fig 5b: updated memory rows flow back to the host-side store.
            // With the cache they stay device-resident (already marked
            // dirty at gather time); write-backs happen on eviction and at
            // the end-of-run flush.
            if (!memory_cache.Enabled()) {
                runtime.CopyToHost(un * md * 4, "tgn_memory_d2h");
            }

            for (int64_t i = 0; i < nb; ++i) {
                last_update_[static_cast<size_t>(batch[i].src)] = batch[i].time;
                last_update_[static_cast<size_t>(batch[i].dst)] = batch[i].time;
            }
        }

        // --- Compute Embedding ---------------------------------------------
        {
            core::ProfileScope scope(profiler, "Compute Embedding");
            runtime.RunHostFor("framework_overhead",
                               kFrameworkBatchOverheadUs / 3.0);
            // Temporal neighbor lookup on CPU (recency sampler).
            std::vector<int64_t> nodes;
            std::vector<double> times;
            for (int64_t i = 0; i < nb; ++i) {
                nodes.push_back(batch[i].src);
                times.push_back(batch[i].time);
                nodes.push_back(batch[i].dst);
                times.push_back(batch[i].time);
            }
            exec.SampleOnCpu(sampler, nodes, times, k);

            // Neighbor indices H2D; the node memory itself is resident on
            // the device (memory_buf), so only the batch's lookup structure
            // moves here. The bulk transfer growth comes from the raw
            // messages in the aggregation phase (the paper's explanation).
            const int64_t n_targets = static_cast<int64_t>(nodes.size());
            runtime.CopyToDevice(n_targets * (k + 1) * 8, "tgn_neighbor_idx_h2d");

            // Attention kernel over each target's neighborhood.
            sim::KernelDesc attn;
            attn.name = "temporal_attention";
            attn.flops =
                n_targets * embedding_attention_->ForwardFlops(1, k);
            attn.bytes = n_targets * (k + 1) * md * 4 * 3;
            attn.parallel_items = n_targets * k * md;

            // Edge probability decoder.
            sim::KernelDesc dec;
            dec.name = "edge_decoder";
            dec.flops = edge_decoder_->ForwardFlops(nb);
            dec.bytes = nb * 2 * md * 4 + edge_decoder_->ParameterBytes();
            dec.parallel_items = nb;
            if (run.fuse_kernels) {
                // Attention + decoder in one launch; the src/dst embedding
                // pairs the decoder consumes stay on-chip.
                runtime.Launch(sim::Collapse(MakeRegisteredChain(
                    "tgn_embed_fused", {attn, dec}, {nb * 2 * md * 4})));
            } else {
                runtime.Launch(attn);
                runtime.Launch(dec);
            }
            (void)runtime.Synchronize();

            // Numeric path for capped targets.
            const int64_t ncap =
                run.numeric_cap > 0 ? std::min<int64_t>(run.numeric_cap, nb) : nb;
            for (int64_t i = 0; i < ncap; ++i) {
                const auto& e = batch[i];
                const Tensor q =
                    memory_->Row(e.src).Reshape(Shape({1, md}));
                const graph::SampledNeighborhood nbh =
                    sampler.Sample(e.src, e.time, k);
                Tensor kv(Shape({k, md}));
                for (int64_t j = 0; j < k; ++j) {
                    const int64_t nbr = nbh.neighbors[static_cast<size_t>(j)];
                    if (nbr >= 0) {
                        kv.SetRow(j, memory_->Row(nbr));
                    }
                }
                const Tensor emb = embedding_attention_->Forward(q, kv, kv);
                const Tensor pair = ops::ConcatCols(
                    emb, memory_->Row(e.dst).Reshape(Shape({1, md})));
                const Tensor prob = ops::Sigmoid(edge_decoder_->Forward(pair));
                checksum.Add(prob);
            }

            // Predictions back to host.
            runtime.CopyToHost(nb * 4, "tgn_predictions_d2h");
        }
        ++iterations;
    }

    // End-of-run: the host-side memory store must see every device-resident
    // update once (one bulk write-back, not one per batch).
    if (memory_cache.Enabled()) {
        runtime.WriteBackToHost(memory_cache.FlushDirty(), CacheRowBytes(),
                                "tgn_memory_flush");
    }

    RunResult result =
        CollectRunStats(runtime, Name(), dataset_.spec.name, iterations);
    result.warmup_one_time_us = warm_one;
    result.warmup_per_run_us = warm_run;
    result.output_checksum = checksum.Value();
    result.cache_stats = memory_cache.Stats();
    return result;
}

}  // namespace dgnn::models
