#pragma once

/// @file
/// Common interface for the eight profiled DGNN models, plus the NnExecutor
/// bridge: models compute *real* numerics on the host through the nn
/// substrate while the executor issues matching cost descriptors to the
/// simulated runtime (kernels, copies, syncs). This is the seam described in
/// DESIGN.md: numerical fidelity and timing fidelity are decoupled.
///
/// Numeric fidelity: models accept a `numeric_cap` — when positive, only the
/// first `numeric_cap` items of a batch are numerically evaluated (outputs
/// for the rest reuse computed rows cyclically) while cost accounting always
/// covers the full batch. Tests and examples run with numeric_cap = 0 (full
/// math); large benchmark sweeps set a cap to keep wall-clock reasonable.
/// This is an explicit performance knob, not a simulation shortcut — the
/// full code path is identical.

#include <cstdint>
#include <string>

#include "cache/device_cache.hpp"
#include "core/breakdown.hpp"
#include "core/profiler.hpp"
#include "graph/temporal_sampler.hpp"
#include "nn/attention.hpp"
#include "nn/gcn.hpp"
#include "nn/linear.hpp"
#include "nn/mlp.hpp"
#include "nn/rnn_cell.hpp"
#include "nn/time_encoding.hpp"
#include "sim/runtime.hpp"

namespace dgnn::models {

/// Per-run execution configuration shared by every model.
struct RunConfig {
    sim::ExecMode mode = sim::ExecMode::kHybrid;
    /// Events per mini-batch (CTDG) or snapshots/graphs per batch (DTDG).
    int64_t batch_size = 256;
    /// Temporal neighbors sampled per node (TGAT / TGN).
    int64_t num_neighbors = 20;
    /// Cap on processed events/steps; 0 = whole dataset.
    int64_t max_events = 0;
    /// Numeric fidelity cap per batch; 0 = full numerics (see file header).
    int64_t numeric_cap = 0;
    /// Run the one-time warm-up before the measured window.
    bool include_warmup = true;
    /// Device-resident cache for per-node feature/memory rows, hybrid mode
    /// only (CPU-only runs bypass it untouched). capacity_bytes == 0
    /// disables the cache: every gather pays the full PCIe transfer, which
    /// is the pre-cache baseline bit-for-bit. The model overrides
    /// cache.row_bytes with its own state row width.
    cache::DeviceCacheConfig cache;
    /// Launch the model's registered hot chains (models/fusion_catalog) as
    /// single collapsed kernels (sim/fusion). Cost-shape only: the host
    /// numerics are untouched, so checksums are identical; false — the
    /// default — reproduces the historical unfused launch sequence
    /// bit-for-bit.
    bool fuse_kernels = false;
};

/// Everything a measured inference run produces.
struct RunResult {
    std::string model;
    std::string dataset;
    std::string mode;

    sim::SimTime total_us = 0.0;          ///< measured window length
    sim::SimTime per_iteration_us = 0.0;  ///< total / iterations
    int64_t iterations = 0;

    double compute_utilization_pct = 0.0;
    int64_t compute_peak_bytes = 0;  ///< peak memory on the compute device
    int64_t cpu_peak_bytes = 0;
    int64_t h2d_bytes = 0;
    int64_t d2h_bytes = 0;
    int64_t transfer_count = 0;
    sim::SimTime transfer_time_us = 0.0;

    core::Breakdown breakdown;

    sim::SimTime warmup_one_time_us = 0.0;
    sim::SimTime warmup_per_run_us = 0.0;
    /// Compute-device busy time within the window ("computation" of Table 2).
    sim::SimTime compute_busy_us = 0.0;

    /// Order-independent fingerprint of the numeric outputs, for regression
    /// tests (identical config + seed => identical checksum). The device
    /// cache never changes this value — it reshapes cost, not math.
    double output_checksum = 0.0;

    /// Device-cache counters for the run (all zero when the cache was
    /// disabled or the run was CPU-only).
    cache::CacheStats cache_stats;
    /// H2D bytes served on-device by cache hits (runtime accounting; equals
    /// cache_stats.hit_bytes for a single-cache run).
    int64_t cache_hit_bytes = 0;
};

/// Abstract profiled model.
class DgnnModel {
  public:
    virtual ~DgnnModel() = default;

    /// Model name as in the paper ("TGAT", "EvolveGCN-O", ...).
    virtual std::string Name() const = 0;

    /// Runs inference over the model's dataset under @p config.
    virtual RunResult RunInference(sim::Runtime& runtime, const RunConfig& config) = 0;

    /// Width in bytes of one cacheable per-node state row (memory rows for
    /// TGN, embedding rows for JODIE, feature rows for TGAT); 0 = the model
    /// has no per-node state the device cache can hold.
    virtual int64_t CacheRowBytes() const { return 0; }

    /// Whether cached rows are mutated on the device (node memory /
    /// embeddings => dirty tracking and write-backs) or read-only
    /// (feature tables).
    virtual bool CacheRowsMutable() const { return false; }

    /// Whether the rows a batch gathers are exactly the batch's event
    /// endpoints (src/dst). True for the endpoint-state models (TGN
    /// memory, JODIE embeddings); false when gathers extend beyond the
    /// request's nodes (TGAT pulls sampled-neighbor feature rows the
    /// serving layer cannot see), in which case cache-aware *serving*
    /// would under-account transfers and is disabled — the offline cache
    /// path is unaffected.
    virtual bool CacheKeysAreRequestEndpoints() const { return false; }
};

/// Builds a runtime for the requested execution mode with paper presets.
sim::Runtime MakeRuntime(sim::ExecMode mode);

/// Host-side eager-framework overhead per mini-batch (Python interpreter,
/// dict/batch bookkeeping, autograd bypass checks). Paid on both the
/// CPU-only and hybrid paths — it runs on the host either way.
constexpr sim::SimTime kFrameworkBatchOverheadUs = 250.0;

/// Charges the per-batch framework overhead to the current category.
void ChargeBatchOverhead(sim::Runtime& runtime);

/// Validates a run configuration (positive batch size, sane neighbor and
/// cap values, mode matching the runtime). Every model calls this first.
void ValidateRunConfig(const sim::Runtime& runtime, const RunConfig& config);

/// Builds the run's device cache: enabled only when the runtime is hybrid
/// and the config carries a positive capacity; the model's @p row_bytes
/// overrides whatever row width the config holds. Returns a disabled cache
/// otherwise (all-miss, retains nothing), which models treat as "use the
/// uncached transfer path".
cache::DeviceCache MakeRunCache(const sim::Runtime& runtime, const RunConfig& run,
                                int64_t row_bytes);

/// Single-batch probe configuration: runs exactly one mini-batch of
/// @p batch_size items (max_events == batch_size) with warm-up disabled and
/// numerics capped to one item. This is the batched entry point the online
/// serving layer (serve::ModelSession) replays against a scratch runtime to
/// capture a model's per-batch cost profile — cost accounting always covers
/// the full batch (see the numeric_cap contract in the file header).
RunConfig SingleBatchProbe(sim::ExecMode mode, int64_t batch_size,
                           int64_t num_neighbors = 20);

/// Assembles the common RunResult fields from the runtime's measurement
/// window. Model-specific fields (checksum, warm-up) are set by the caller.
RunResult CollectRunStats(sim::Runtime& runtime, const std::string& model,
                          const std::string& dataset, int64_t iterations);

/// Executes nn modules on the host and issues the matching simulated cost.
/// All methods return the real numeric result.
class NnExecutor {
  public:
    explicit NnExecutor(sim::Runtime& runtime) : runtime_(runtime) {}

    sim::Runtime& GetRuntime() { return runtime_; }

    /// y = linear(x) as one device kernel.
    Tensor Linear(const nn::Linear& linear, const Tensor& x);

    /// y = mlp(x) as one fused device kernel.
    Tensor Mlp(const nn::Mlp& mlp, const Tensor& x);

    /// h' = cell(x, h) as one device kernel (GRU).
    Tensor Gru(const nn::GruCell& cell, const Tensor& x, const Tensor& h);

    /// h' = cell(x, h) as one device kernel (vanilla RNN).
    Tensor Rnn(const nn::RnnCell& cell, const Tensor& x, const Tensor& h);

    /// LSTM step as one device kernel.
    nn::LstmState Lstm(const nn::LstmCell& cell, const Tensor& x,
                       const nn::LstmState& state);

    /// Multi-head attention as one device kernel.
    Tensor Attention(const nn::MultiHeadAttention& mha, const Tensor& q,
                     const Tensor& k, const Tensor& v);

    /// Sparse aggregation (SpMM) as one irregular device kernel.
    Tensor Spmm(const nn::SparseMatrix& a, const Tensor& x);

    /// GCN layer: SpMM kernel + dense-transform kernel.
    Tensor Gcn(const nn::GcnLayer& layer, const nn::SparseMatrix& a_hat,
               const Tensor& h);

    /// GCN layer with externally-evolved weights (EvolveGCN).
    Tensor GcnWithWeight(const nn::GcnLayer& layer, const nn::SparseMatrix& a_hat,
                         const Tensor& h, const Tensor& weight);

    /// Bochner time encoding as one device kernel.
    Tensor TimeEncode(const nn::BochnerTimeEncoder& encoder, const Tensor& deltas);

    /// Generic elementwise kernel of @p flops over @p tensor_bytes.
    void Elementwise(const std::string& name, int64_t flops, int64_t bytes,
                     int64_t items);

    /// CPU-side temporal sampling: performs the real sampling and charges
    /// the host with the calibrated irregular-access cost model.
    std::vector<graph::SampledNeighborhood>
    SampleOnCpu(graph::TemporalNeighborSampler& sampler,
                const std::vector<int64_t>& nodes, const std::vector<double>& times,
                int64_t k);

  private:
    sim::Runtime& runtime_;
};

/// Converts an accumulated sampling cost into a host kernel descriptor.
/// Calibration: each bisection probe and each gathered neighbor entry is a
/// cache-missing random access; framework per-target call overhead appears
/// as equivalent memory traffic (see DESIGN.md section 5).
/// Uniform sampling (TGAT) pays the index sort and a much larger per-call
/// overhead than the vectorizable most-recent lookup (TGN/DyRep).
sim::KernelDesc SamplingKernel(const graph::SamplingCost& cost, int64_t targets,
                               int64_t k, graph::SamplingStrategy strategy);

/// Deterministic fingerprint helper: accumulates sum + abs-sum of a tensor.
class Checksum {
  public:
    void Add(const Tensor& t);
    void Add(double v);
    double Value() const;

  private:
    double sum_ = 0.0;
    double abs_sum_ = 0.0;
    int64_t count_ = 0;
};

}  // namespace dgnn::models
