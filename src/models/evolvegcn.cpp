#include "models/evolvegcn.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/ops.hpp"

namespace dgnn::models {

const char*
ToString(EvolveGcnVariant variant)
{
    switch (variant) {
      case EvolveGcnVariant::kO:
        return "EvolveGCN-O";
      case EvolveGcnVariant::kH:
        return "EvolveGCN-H";
    }
    return "?";
}

nn::SparseMatrix
ToNormalizedCsr(const graph::GraphSnapshot& snapshot)
{
    nn::SparseMatrix m;
    m.n = snapshot.NumNodes();
    m.row_offsets = snapshot.RowOffsets();
    m.col_indices = snapshot.ColIndices();
    m.values.assign(snapshot.Values().begin(), snapshot.Values().end());
    // Use |w| for normalization so signed (Bitcoin) graphs stay stable.
    for (float& v : m.values) {
        v = std::fabs(v);
    }
    nn::RowNormalize(m);
    return m;
}

EvolveGcn::EvolveGcn(const data::SnapshotDataset& dataset, EvolveGcnConfig config)
    : dataset_(dataset), config_(config)
{
    Rng rng(config_.seed);
    const int64_t f = dataset_.spec.node_feature_dim;
    const int64_t h = config_.hidden_dim;
    layer_in_ = {f, h};
    layer_out_ = {h, h};
    for (size_t l = 0; l < layer_in_.size(); ++l) {
        weights_.push_back(init::XavierUniform(layer_out_[l], layer_in_[l], rng));
        // The GRU evolves weight rows: input and hidden width = in_features.
        weight_rnn_.push_back(
            std::make_unique<nn::GruCell>(layer_in_[l], layer_in_[l], rng));
        gcn_layers_.push_back(std::make_unique<nn::GcnLayer>(
            layer_in_[l], layer_out_[l], rng));
        topk_scorer_.push_back(
            init::Uniform(Shape({layer_in_[l]}), rng, -1.0f, 1.0f));
    }
}

std::string
EvolveGcn::Name() const
{
    return ToString(config_.variant);
}

int64_t
EvolveGcn::WeightBytes() const
{
    int64_t bytes = 0;
    for (size_t l = 0; l < weights_.size(); ++l) {
        bytes += weights_[l].NumBytes();
        bytes += weight_rnn_[l]->ParameterBytes();
        bytes += gcn_layers_[l]->ParameterBytes();
        bytes += topk_scorer_[l].NumBytes();
    }
    return bytes;
}

const Tensor&
EvolveGcn::LayerWeight(int64_t layer) const
{
    DGNN_CHECK(layer >= 0 && layer < static_cast<int64_t>(weights_.size()),
               "layer ", layer, " out of range");
    return weights_[static_cast<size_t>(layer)];
}

void
EvolveGcn::EvolveWeights(NnExecutor& exec, core::Profiler& profiler,
                         const Tensor& node_embeddings)
{
    sim::Runtime& runtime = exec.GetRuntime();
    for (size_t l = 0; l < weights_.size(); ++l) {
        Tensor rnn_input;
        if (config_.variant == EvolveGcnVariant::kH) {
            // [top-k]: score nodes, pick out_l rows to drive the GRU. The
            // paper singles this phase out as a sampling-style overhead.
            core::ProfileScope scope(profiler, "top-k");
            const Tensor& x = l == 0 ? node_embeddings : node_embeddings;
            const int64_t n = x.Dim(0);
            const int64_t k = layer_out_[l];
            std::vector<float> scores(static_cast<size_t>(n));
            for (int64_t i = 0; i < n; ++i) {
                double s = 0.0;
                const int64_t w = std::min<int64_t>(x.Dim(1), layer_in_[l]);
                for (int64_t j = 0; j < w; ++j) {
                    s += x.At(i, j) * topk_scorer_[l].At(j);
                }
                scores[static_cast<size_t>(i)] = static_cast<float>(s);
            }
            std::vector<int64_t> order(static_cast<size_t>(n));
            std::iota(order.begin(), order.end(), 0);
            std::partial_sort(order.begin(),
                              order.begin() + std::min<int64_t>(k, n), order.end(),
                              [&](int64_t a, int64_t b) {
                                  return scores[static_cast<size_t>(a)] >
                                         scores[static_cast<size_t>(b)];
                              });
            rnn_input = Tensor(Shape({layer_out_[l], layer_in_[l]}));
            for (int64_t r = 0; r < std::min<int64_t>(k, n); ++r) {
                const int64_t src = order[static_cast<size_t>(r)];
                const int64_t w = std::min<int64_t>(x.Dim(1), layer_in_[l]);
                for (int64_t j = 0; j < w; ++j) {
                    rnn_input.At(r, j) = x.At(src, j);
                }
            }
            // Host-side scoring + partial sort cost.
            sim::KernelDesc topk;
            topk.name = "topk_select";
            topk.flops = 2 * n * layer_in_[l];
            topk.bytes = n * (layer_in_[l] * 4 + 64);
            topk.parallel_items = 1;
            topk.irregular = true;
            runtime.RunHost(topk);
            // Gather kernel for the selected rows.
            sim::KernelDesc gather;
            gather.name = "topk_gather";
            gather.flops = 0;
            gather.bytes = 2 * k * layer_in_[l] * 4;
            gather.parallel_items = k;
            gather.irregular = true;
            runtime.Launch(gather);
        } else {
            rnn_input = weights_[l];
        }

        {
            core::ProfileScope scope(profiler, "RNN");
            // GRU expects matching row counts: -O uses the weight itself,
            // -H uses the top-k rows (shaped [out_l, in_l] above).
            weights_[l] = exec.Gru(*weight_rnn_[l], rnn_input, weights_[l]);
            // GCN needs the fresh weights (Fig 2a). The in-order compute
            // stream already enforces the data dependency; the baseline
            // additionally stalls the host here (eager-mode behaviour),
            // while the pipelined variant (Fig 10) lets the host run ahead.
            if (!config_.pipelined) {
                (void)runtime.Synchronize();
            }
        }
    }
}

RunResult
EvolveGcn::RunInference(sim::Runtime& runtime, const RunConfig& run)
{
    ValidateRunConfig(runtime, run);
    NnExecutor exec(runtime);
    core::Profiler profiler(runtime);

    sim::SimTime warm_one = 0.0;
    sim::SimTime warm_run = 0.0;
    if (run.include_warmup) {
        warm_one = runtime.EnsureWarm(WeightBytes()).TotalUs();
        warm_run = runtime
                       .RunAllocWarmup(dataset_.node_features.NumBytes() +
                                       dataset_.sequence.Step(0).TopologyBytes())
                       .TotalUs();
    }

    sim::DeviceBuffer weight_buf =
        runtime.AllocDevice(WeightBytes(), "evolvegcn_weights");

    runtime.ResetMeasurementWindow();

    const int64_t steps =
        run.max_events > 0
            ? std::min<int64_t>(run.max_events, dataset_.sequence.NumSteps())
            : dataset_.sequence.NumSteps();
    Checksum checksum;

    for (int64_t t = 0; t < steps; ++t) {
        const graph::GraphSnapshot& snap = dataset_.sequence.Step(t);

        // --- Memory Copy: baseline reloads the full snapshot every step;
        // delta transfer (paper 5.2.2) sends only the edges that changed
        // relative to the previous snapshot, and the node features once.
        sim::DeviceBuffer snap_buf = runtime.AllocDevice(
            snap.TopologyBytes() + dataset_.node_features.NumBytes(),
            "evolvegcn_snapshot");
        {
            core::ProfileScope scope(profiler, "Memory Copy");
            ChargeBatchOverhead(runtime);
            int64_t copy_bytes =
                snap.TopologyBytes() + dataset_.node_features.NumBytes();
            if (config_.delta_transfer) {
                if (t == 0) {
                    // First step: everything moves once.
                } else {
                    const graph::GraphSnapshot& prev =
                        dataset_.sequence.Step(t - 1);
                    const int64_t common = snap.CommonEdges(prev);
                    const double changed_frac =
                        snap.NumEdges() > 0
                            ? 1.0 - static_cast<double>(common) /
                                        static_cast<double>(snap.NumEdges())
                            : 0.0;
                    copy_bytes = static_cast<int64_t>(
                        static_cast<double>(snap.TopologyBytes()) * changed_frac);
                }
            }
            runtime.CopyToDevice(copy_bytes, "snapshot_h2d");
        }

        // --- RNN (+ top-k for -H): evolve the GCN weights.
        EvolveWeights(exec, profiler, dataset_.node_features);

        // --- GNN: two GCN layers with the evolved weights.
        Tensor h = dataset_.node_features;
        {
            core::ProfileScope scope(profiler, "GNN");
            const nn::SparseMatrix a_hat = ToNormalizedCsr(snap);
            for (size_t l = 0; l < gcn_layers_.size(); ++l) {
                h = exec.GcnWithWeight(*gcn_layers_[l], a_hat, h, weights_[l]);
            }
            if (!config_.pipelined) {
                (void)runtime.Synchronize();
            }
        }
        checksum.Add(h.RowSlice(0, std::min<int64_t>(4, h.Dim(0))));

        // --- Memory Copy: step outputs D2H.
        {
            core::ProfileScope scope(profiler, "Memory Copy");
            runtime.CopyToHost(h.NumBytes(), "embeddings_d2h");
        }
    }

    RunResult result = CollectRunStats(runtime, Name(), dataset_.spec.name, steps);
    result.warmup_one_time_us = warm_one;
    result.warmup_per_run_us = warm_run;
    result.output_checksum = checksum.Value();
    return result;
}

}  // namespace dgnn::models
