#pragma once

/// @file
/// TGN — Temporal Graph Networks (Rossi et al., 2020), inference path as
/// profiled by the paper (Figs 3b, 5b, 6c, 7a, 8b; Table 2):
///
///   per mini-batch of events:
///     [Aggregate Messages Passing]  raw messages built on CPU, batched H2D,
///                                   per-node "last" aggregation kernel
///     [Update Memory]               GRU memory update + memory row D2H/H2D
///                                   (the frequent exchange of Fig 5b)
///     [Compute Embedding]           temporal attention over sampled
///                                   neighbors using node memory, edge
///                                   probability decoder, predictions D2H
///
/// TGN's transfer volume scales with batch size, producing the decreasing
/// GPU utilization of Fig 6(c) and the message-passing-dominated breakdown
/// at 64K batch of Fig 7(a).

#include <memory>
#include <vector>

#include "data/temporal_interactions.hpp"
#include "models/dgnn_model.hpp"
#include "nn/embedding.hpp"

namespace dgnn::models {

/// TGN hyper-parameters.
struct TgnConfig {
    int64_t memory_dim = 64;
    int64_t time_dim = 64;
    int64_t num_heads = 2;
    uint64_t seed = 11;
};

/// TGN model bound to one interaction dataset.
class Tgn : public DgnnModel {
  public:
    Tgn(const data::InteractionDataset& dataset, TgnConfig config);

    std::string Name() const override { return "TGN"; }

    RunResult RunInference(sim::Runtime& runtime, const RunConfig& config) override;

    int64_t WeightBytes() const;

    /// Raw message width: [mem_src || mem_dst || time_enc || edge_feat].
    int64_t MessageDim() const;

    /// One node-memory row — the state the device cache holds. Cached rows
    /// are mutated by the GRU update, so they carry dirty bits; the rows a
    /// batch gathers are exactly its event endpoints.
    int64_t CacheRowBytes() const override { return config_.memory_dim * 4; }
    bool CacheRowsMutable() const override { return true; }
    bool CacheKeysAreRequestEndpoints() const override { return true; }

    /// Read access to the node memory (tests assert update semantics).
    const nn::Embedding& Memory() const { return *memory_; }

  private:
    const data::InteractionDataset& dataset_;
    TgnConfig config_;
    graph::TemporalAdjacency adjacency_;
    std::unique_ptr<nn::Embedding> memory_;
    std::vector<double> last_update_;
    std::unique_ptr<nn::BochnerTimeEncoder> time_encoder_;
    std::unique_ptr<nn::GruCell> memory_updater_;
    std::unique_ptr<nn::MultiHeadAttention> embedding_attention_;
    std::unique_ptr<nn::Linear> feature_proj_;
    std::unique_ptr<nn::Mlp> edge_decoder_;
};

}  // namespace dgnn::models
