#pragma once

/// @file
/// TGAT — Temporal Graph Attention Network (Xu et al., ICLR'20), inference
/// path as profiled by the paper (Figs 2b, 6a-b, 7e-h, 8a):
///
///   per mini-batch of events:
///     [Sampling (CPU)]   temporal neighbor sampling with bisection + sort
///     [Memory Copy]      gathered features + time deltas H2D
///     [Time Encoding]    Bochner harmonic encoding of relative times
///     [Attention Layer]  feature projection + per-target attention + merge
///     [Cuda Synchronization] tail sync
///     [Memory Copy]      embeddings D2H
///
/// The CPU-side sampling is the dominant cost (workload-imbalance
/// bottleneck); attention work grows with the sampled-neighbor count, which
/// drives the GPU-utilization trend of Fig 6(a).

#include <memory>
#include <vector>

#include "data/temporal_interactions.hpp"
#include "models/dgnn_model.hpp"

namespace dgnn::models {

/// TGAT hyper-parameters.
struct TgatConfig {
    int64_t embed_dim = 64;
    int64_t num_heads = 2;
    int64_t num_layers = 1;          ///< attention hops (2 enables recursion)
    int64_t second_hop_neighbors = 10;  ///< neighbors per node at layer >= 2
    uint64_t seed = 7;

    /// Paper section 5.1.1: overlap the CPU-side neighborhood sampling of
    /// the *next* mini-batch with the GPU compute of the current one. The
    /// sampling order (and therefore every numeric result) is unchanged;
    /// only the host stops stalling on the device between batches.
    bool overlap_sampling = false;
};

/// TGAT model bound to one interaction dataset.
class Tgat : public DgnnModel {
  public:
    Tgat(const data::InteractionDataset& dataset, TgatConfig config);

    std::string Name() const override { return "TGAT"; }

    RunResult RunInference(sim::Runtime& runtime, const RunConfig& config) override;

    /// Pure host-math embedding of one node at one time (used by tests).
    Tensor ComputeEmbedding(graph::TemporalNeighborSampler& sampler, int64_t node,
                            double time, int64_t num_neighbors, int64_t layer) const;

    int64_t WeightBytes() const;

    /// One node-feature row — read-only, so cached rows never write back.
    /// With the cache enabled the feature table is NOT assumed resident;
    /// the capacity sweep spans "nothing fits" to "the table fits".
    int64_t CacheRowBytes() const override
    {
        return dataset_.spec.edge_feature_dim * 4;
    }

  private:
    const data::InteractionDataset& dataset_;
    TgatConfig config_;
    graph::TemporalAdjacency adjacency_;
    std::unique_ptr<nn::Linear> feature_proj_;
    std::unique_ptr<nn::BochnerTimeEncoder> time_encoder_;
    std::vector<std::unique_ptr<nn::MultiHeadAttention>> attention_layers_;
    std::vector<std::unique_ptr<nn::Linear>> merge_layers_;
};

}  // namespace dgnn::models
