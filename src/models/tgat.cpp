#include "models/tgat.hpp"

#include <algorithm>

#include "models/fusion_catalog.hpp"
#include "tensor/ops.hpp"

namespace dgnn::models {

Tgat::Tgat(const data::InteractionDataset& dataset, TgatConfig config)
    : dataset_(dataset), config_(config), adjacency_(dataset.stream)
{
    DGNN_CHECK(config_.num_layers >= 1, "TGAT needs at least one layer");
    Rng rng(config_.seed);
    const int64_t feat_dim = dataset_.spec.edge_feature_dim;
    feature_proj_ =
        std::make_unique<nn::Linear>(feat_dim, config_.embed_dim, rng);
    time_encoder_ =
        std::make_unique<nn::BochnerTimeEncoder>(config_.embed_dim, rng);
    for (int64_t l = 0; l < config_.num_layers; ++l) {
        attention_layers_.push_back(std::make_unique<nn::MultiHeadAttention>(
            config_.embed_dim, config_.num_heads, rng));
        merge_layers_.push_back(std::make_unique<nn::Linear>(
            2 * config_.embed_dim, config_.embed_dim, rng));
    }
}

int64_t
Tgat::WeightBytes() const
{
    int64_t bytes = feature_proj_->ParameterBytes() + time_encoder_->ParameterBytes();
    for (size_t l = 0; l < attention_layers_.size(); ++l) {
        bytes += attention_layers_[l]->ParameterBytes();
        bytes += merge_layers_[l]->ParameterBytes();
    }
    return bytes;
}

Tensor
Tgat::ComputeEmbedding(graph::TemporalNeighborSampler& sampler, int64_t node,
                       double time, int64_t num_neighbors, int64_t layer) const
{
    const Tensor raw = dataset_.node_features.Row(node).Reshape(
        Shape({1, dataset_.spec.edge_feature_dim}));
    Tensor h = feature_proj_->Forward(raw);
    if (layer == 0) {
        return h;
    }
    const graph::SampledNeighborhood nbh = sampler.Sample(node, time, num_neighbors);

    // Neighbor embeddings at the previous layer (recursive).
    const int64_t k = num_neighbors;
    Tensor keys(Shape({k, config_.embed_dim}));
    Tensor deltas(Shape({k}));
    const int64_t inner_k =
        layer >= 2 ? config_.second_hop_neighbors : num_neighbors;
    for (int64_t j = 0; j < k; ++j) {
        const int64_t nb = nbh.neighbors[static_cast<size_t>(j)];
        Tensor nb_embed;
        if (nb < 0) {
            nb_embed = Tensor(Shape({1, config_.embed_dim}));
        } else {
            nb_embed = ComputeEmbedding(sampler, nb, nbh.times[static_cast<size_t>(j)],
                                        inner_k, layer - 1);
        }
        keys.SetRow(j, nb_embed.Reshape(Shape({config_.embed_dim})));
        deltas.At(j) = static_cast<float>(time - nbh.times[static_cast<size_t>(j)]);
    }
    const Tensor time_feats = time_encoder_->Forward(deltas);
    const Tensor kv = ops::Add(keys, time_feats);

    Tensor zero_delta(Shape({1}));
    const Tensor q = ops::Add(h, time_encoder_->Forward(zero_delta));
    const size_t li = static_cast<size_t>(layer - 1);
    const Tensor attended = attention_layers_[li]->Forward(q, kv, kv);
    const Tensor merged =
        merge_layers_[li]->Forward(ops::ConcatCols(attended, h));
    return ops::Relu(merged);
}

RunResult
Tgat::RunInference(sim::Runtime& runtime, const RunConfig& run)
{
    ValidateRunConfig(runtime, run);
    NnExecutor exec(runtime);
    core::Profiler profiler(runtime);
    graph::TemporalNeighborSampler sampler(adjacency_,
                                           graph::SamplingStrategy::kUniform,
                                           config_.seed + 1);

    sim::SimTime warm_one = 0.0;
    sim::SimTime warm_run = 0.0;
    if (run.include_warmup) {
        warm_one = runtime.EnsureWarm(WeightBytes()).TotalUs();
        warm_run = runtime
                       .RunAllocWarmup(run.batch_size * run.num_neighbors *
                                       config_.embed_dim * 4)
                       .TotalUs();
    }

    // Device-resident node-feature cache. Uncached baseline: the whole
    // node-feature table is assumed resident (it fits comfortably), paid
    // once before the measurement window. Cached: the node table does NOT
    // reside; each batch gathers its touched node rows through the cache
    // instead — the realistic regime once feature tables outgrow device
    // memory. The edge-feature table is keyed per event, not per node, so
    // it stays resident either way.
    cache::DeviceCache feature_cache =
        MakeRunCache(runtime, run, CacheRowBytes());

    // Model weights and resident tables occupy the device for the whole
    // run; the one-time transfers happen before the measurement window.
    sim::DeviceBuffer weights =
        runtime.AllocDevice(WeightBytes(), "tgat_weights");
    int64_t resident_table_bytes = dataset_.edge_features.NumBytes();
    sim::DeviceBuffer cache_buf;
    if (feature_cache.Enabled()) {
        // The cache's device footprint: capped at the full node table.
        cache_buf = runtime.AllocDevice(
            std::min(feature_cache.CapacityRows(), dataset_.NumNodes()) *
                CacheRowBytes(),
            "tgat_feature_cache");
    } else {
        resident_table_bytes += dataset_.node_features.NumBytes();
    }
    sim::DeviceBuffer feature_tables =
        runtime.AllocDevice(resident_table_bytes, "tgat_feature_tables");
    runtime.CopyToDevice(resident_table_bytes, "tgat_feature_tables_h2d");

    runtime.ResetMeasurementWindow();

    const int64_t total_events =
        run.max_events > 0 ? std::min(run.max_events, dataset_.stream.NumEvents())
                           : dataset_.stream.NumEvents();
    const int64_t bs = run.batch_size;
    const int64_t k = run.num_neighbors;
    const int64_t d = config_.embed_dim;
    Checksum checksum;
    int64_t iterations = 0;

    for (int64_t begin = 0; begin < total_events; begin += bs) {
        const int64_t end = std::min(begin + bs, total_events);
        const auto batch = dataset_.stream.Slice(begin, end);

        // Targets: both endpoints of every event, processed at event time.
        std::vector<int64_t> nodes;
        std::vector<double> times;
        nodes.reserve(batch.size() * 2);
        for (const graph::TemporalEvent& e : batch) {
            nodes.push_back(e.src);
            times.push_back(e.time);
            nodes.push_back(e.dst);
            times.push_back(e.time);
        }
        const int64_t n = static_cast<int64_t>(nodes.size());

        // --- Sampling (CPU): L1 neighborhoods; L2 recursion samples for
        // every sampled neighbor. With the cache on, `touched` accumulates
        // every node whose feature row the batch reads (targets + all
        // sampled hops) — the cache-key set of the gather below.
        std::vector<graph::SampledNeighborhood> hoods;
        std::vector<int64_t> touched;
        if (feature_cache.Enabled()) {
            touched = nodes;
        }
        {
            core::ProfileScope scope(profiler, "Sampling (CPU)");
            ChargeBatchOverhead(runtime);
            hoods = exec.SampleOnCpu(sampler, nodes, times, k);
            if (feature_cache.Enabled()) {
                for (const auto& h : hoods) {
                    for (const int64_t nbr : h.neighbors) {
                        if (nbr >= 0) {
                            touched.push_back(nbr);
                        }
                    }
                }
            }
            if (config_.num_layers >= 2) {
                std::vector<int64_t> inner_nodes;
                std::vector<double> inner_times;
                for (const auto& h : hoods) {
                    for (size_t j = 0; j < h.neighbors.size(); ++j) {
                        if (h.neighbors[j] >= 0) {
                            inner_nodes.push_back(h.neighbors[j]);
                            inner_times.push_back(h.times[j]);
                        }
                    }
                }
                if (!inner_nodes.empty()) {
                    const auto inner_hoods = exec.SampleOnCpu(
                        sampler, inner_nodes, inner_times,
                        config_.second_hop_neighbors);
                    if (feature_cache.Enabled()) {
                        for (const auto& h : inner_hoods) {
                            for (const int64_t nbr : h.neighbors) {
                                if (nbr >= 0) {
                                    touched.push_back(nbr);
                                }
                            }
                        }
                    }
                }
            }
        }

        // --- Memory Copy: sampled neighbor indices and time deltas (the
        // feature tables already live on the device).
        const int64_t gathered_nodes = n * (1 + k);
        const int64_t index_bytes = gathered_nodes * 8;
        const int64_t delta_bytes = n * k * 8;
        sim::DeviceBuffer activations = runtime.AllocDevice(
            gathered_nodes * d * 4 * 2, "tgat_batch");
        {
            core::ProfileScope scope(profiler, "Memory Copy");
            runtime.CopyToDevice(index_bytes + delta_bytes, "tgat_batch_h2d");
            if (feature_cache.Enabled()) {
                // Feature rows of every touched node (targets + every
                // sampled hop, deduplicated) come through the cache.
                cache::SortUnique(touched);
                const cache::GatherResult g = feature_cache.Gather(touched);
                runtime.GatherToDevice(g.hit_rows, g.miss_rows, CacheRowBytes(),
                                       "tgat_features");
            }
        }

        // --- Time Encoding: one kernel over all deltas. Under fusion the
        // launch is deferred into the projection launch (tgat_encode_fused),
        // so the descriptor outlives this phase scope.
        sim::KernelDesc tenc;
        {
            core::ProfileScope scope(profiler, "Time Encoding");
            tenc.name = "time_encoding";
            tenc.flops = time_encoder_->ForwardFlops(n * k);
            tenc.bytes = n * k * (8 + d * 4);
            tenc.parallel_items = n * k * d;
            if (!run.fuse_kernels) {
                runtime.Launch(tenc);
            }
            (void)runtime.Synchronize();
        }

        // --- Attention Layer: projection + attention + merge, batched.
        {
            core::ProfileScope scope(profiler, "Attention Layer");
            // Feature projection of all gathered nodes (one GEMM).
            sim::KernelDesc proj;
            proj.name = "feature_projection";
            proj.flops = feature_proj_->ForwardFlops(gathered_nodes);
            proj.bytes = gathered_nodes *
                             (dataset_.spec.edge_feature_dim + d) * 4 +
                         feature_proj_->ParameterBytes();
            proj.parallel_items = gathered_nodes * d;
            proj.irregular = true;  // gather from the resident table
            if (run.fuse_kernels) {
                // Horizontal fusion: the encoding and projection read
                // disjoint inputs, so one launch covers both (no shared
                // intermediate, boundary bytes 0).
                runtime.Launch(sim::Collapse(MakeRegisteredChain(
                    "tgat_encode_fused", {tenc, proj}, {0})));
            } else {
                runtime.Launch(proj);
            }

            for (int64_t l = 0; l < config_.num_layers; ++l) {
                // Layers apply bottom-up: inner layers embed every sampled
                // neighbor (n*k query rows over second-hop neighborhoods),
                // the final layer embeds the n targets over k neighbors.
                const bool is_final = l + 1 == config_.num_layers;
                const int64_t q_rows = is_final ? n : n * k;
                const int64_t kv_per_target =
                    is_final ? k : config_.second_hop_neighbors;
                sim::KernelDesc attn;
                attn.name = "attention";
                attn.flops =
                    q_rows * attention_layers_[static_cast<size_t>(l)]->ForwardFlops(
                                 1, kv_per_target);
                attn.bytes = q_rows * (kv_per_target + 1) * d * 4 * 3;
                attn.parallel_items = q_rows * kv_per_target * d;

                sim::KernelDesc merge;
                merge.name = "merge_ffn";
                merge.flops =
                    merge_layers_[static_cast<size_t>(l)]->ForwardFlops(q_rows);
                merge.bytes = q_rows * 3 * d * 4;
                merge.parallel_items = q_rows * d;

                if (run.fuse_kernels) {
                    // Attention + merge FFN in one launch; the attended
                    // rows stay on-chip at the boundary.
                    runtime.Launch(sim::Collapse(MakeRegisteredChain(
                        "tgat_attention_fused", {attn, merge},
                        {q_rows * d * 4})));
                    (void)runtime.Synchronize();
                } else {
                    runtime.Launch(attn);

                    // Attention execution is attributed to this module scope
                    // (PyTorch-profiler convention); the merge FFN drains
                    // later in the explicit synchronization phase.
                    (void)runtime.Synchronize();
                    runtime.Launch(merge);
                }
            }

            // Real numerics for up to numeric_cap targets (0 = all).
            const int64_t cap =
                run.numeric_cap > 0 ? std::min<int64_t>(run.numeric_cap, n) : n;
            graph::TemporalNeighborSampler numeric_sampler(
                adjacency_, graph::SamplingStrategy::kUniform, config_.seed + 2);
            for (int64_t i = 0; i < cap; ++i) {
                const Tensor emb = ComputeEmbedding(
                    numeric_sampler, nodes[static_cast<size_t>(i)],
                    times[static_cast<size_t>(i)], k, config_.num_layers);
                checksum.Add(emb);
            }
        }

        if (!config_.overlap_sampling) {
            // --- Cuda Synchronization: drain the tail of the compute
            // stream, then fetch results (the eager baseline).
            {
                core::ProfileScope scope(profiler, "Cuda Synchronization");
                (void)runtime.Synchronize();
            }
            core::ProfileScope scope(profiler, "Memory Copy");
            runtime.CopyToHost(n * d * 4, "tgat_embeddings_d2h");
        } else {
            // --- Overlapped variant (paper 5.1.1): do not stall; the next
            // iteration's CPU sampling proceeds while the device drains.
            // Results are fetched lazily; the deferred D2H pays the wait
            // only if the device is still behind by then.
            core::ProfileScope scope(profiler, "Memory Copy");
            runtime.CopyToHost(n * d * 4, "tgat_embeddings_d2h_async");
        }
        ++iterations;
    }

    RunResult result =
        CollectRunStats(runtime, Name(), dataset_.spec.name, iterations);
    result.warmup_one_time_us = warm_one;
    result.warmup_per_run_us = warm_run;
    result.output_checksum = checksum.Value();
    result.cache_stats = feature_cache.Stats();
    return result;
}

}  // namespace dgnn::models
