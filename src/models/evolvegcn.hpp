#pragma once

/// @file
/// EvolveGCN (Pareja et al., AAAI'20), -O and -H variants, inference path as
/// profiled by the paper (Figs 2a, 7i-j, 10):
///
///   per snapshot (sequential — weights evolve across time steps):
///     [Memory Copy]  snapshot CSR + node features H2D (the paper notes
///                    EvolveGCN reloads each snapshot rather than updating
///                    on-chip, so this repeats every step)
///     [RNN]          GRU evolves each GCN layer's weight matrix
///     [top-k]        (-H only) node-embedding top-k selection to match the
///                    weight matrix dimensions
///     [GNN]          two GCN layers with the evolved weights
///     [Memory Copy]  output embeddings D2H
///
/// The RNN -> GNN chain inside a step and the step -> step chain are the
/// temporal-dependency bottleneck (GPU utilization < 1 %).

#include <memory>
#include <vector>

#include "data/snapshot_seq_gen.hpp"
#include "models/dgnn_model.hpp"

namespace dgnn::models {

/// EvolveGCN variant selector.
enum class EvolveGcnVariant {
    kO,  ///< weights-only recurrence
    kH,  ///< recurrence driven by top-k node embeddings
};

const char* ToString(EvolveGcnVariant variant);

/// EvolveGCN hyper-parameters.
struct EvolveGcnConfig {
    EvolveGcnVariant variant = EvolveGcnVariant::kO;
    int64_t hidden_dim = 64;
    uint64_t seed = 17;

    /// Paper section 5.2.1 / Fig 10: pipeline RNN and GNN across adjacent
    /// time steps instead of synchronizing inside every step. Numerics are
    /// unchanged (the compute stream still orders the work); the host no
    /// longer stalls per step, overlapping CPU preprocessing with GPU work.
    bool pipelined = false;

    /// Paper section 5.2.2: exploit sliding-window snapshot overlap and
    /// transfer only the changed part of each snapshot (plus the static
    /// node features once) instead of reloading everything per step.
    bool delta_transfer = false;
};

/// EvolveGCN model bound to one snapshot-sequence dataset.
class EvolveGcn : public DgnnModel {
  public:
    EvolveGcn(const data::SnapshotDataset& dataset, EvolveGcnConfig config);

    std::string Name() const override;

    RunResult RunInference(sim::Runtime& runtime, const RunConfig& config) override;

    int64_t WeightBytes() const;

    /// Current evolved weight of layer @p layer (tests assert evolution).
    const Tensor& LayerWeight(int64_t layer) const;

  private:
    /// Evolves layer weights for one step; returns top-k host cost (H only).
    void EvolveWeights(NnExecutor& exec, core::Profiler& profiler,
                       const Tensor& node_embeddings);

    const data::SnapshotDataset& dataset_;
    EvolveGcnConfig config_;
    std::vector<int64_t> layer_in_;
    std::vector<int64_t> layer_out_;
    std::vector<Tensor> weights_;  ///< evolved [out, in] per layer
    std::vector<std::unique_ptr<nn::GruCell>> weight_rnn_;
    std::vector<std::unique_ptr<nn::GcnLayer>> gcn_layers_;
    std::vector<Tensor> topk_scorer_;  ///< -H: per-layer score vector [in]
};

/// Converts a snapshot to a row-normalized CSR for GCN aggregation.
nn::SparseMatrix ToNormalizedCsr(const graph::GraphSnapshot& snapshot);

}  // namespace dgnn::models
