#include "models/fusion_catalog.hpp"

#include <utility>

#include "support/check.hpp"

namespace dgnn::models {

const std::vector<FusionPlan>&
FusionCatalog()
{
    static const std::vector<FusionPlan> catalog = {
        {"TGN", "tgn_memory_fused", {"aggregate_last", "gru_memory_update"}},
        {"TGN", "tgn_embed_fused", {"temporal_attention", "edge_decoder"}},
        {"TGAT", "tgat_encode_fused", {"time_encoding", "feature_projection"}},
        {"TGAT", "tgat_attention_fused", {"attention", "merge_ffn"}},
        {"JODIE",
         "jodie_tbatch_fused",
         {"project_user", "predict_item", "rnn_update", "rnn_update"}},
    };
    return catalog;
}

const FusionPlan*
FindFusionPlan(const std::string& chain)
{
    for (const FusionPlan& plan : FusionCatalog()) {
        if (plan.chain == chain) {
            return &plan;
        }
    }
    return nullptr;
}

sim::FusedKernelDesc
MakeRegisteredChain(const std::string& chain,
                    std::vector<sim::KernelDesc> parts,
                    std::vector<int64_t> intermediate_bytes)
{
    const FusionPlan* plan = FindFusionPlan(chain);
    DGNN_CHECK(plan != nullptr, "no registered fusion plan named '", chain,
               "'");
    DGNN_CHECK(parts.size() == plan->parts.size(), "fusion chain '", chain,
               "' wants ", plan->parts.size(), " parts, got ", parts.size());
    for (size_t i = 0; i < parts.size(); ++i) {
        DGNN_CHECK(parts[i].name == plan->parts[i], "fusion chain '", chain,
                   "' part ", i, " is '", parts[i].name, "', plan says '",
                   plan->parts[i], "'");
    }
    sim::FusedKernelDesc fused;
    fused.name = chain;
    fused.parts = std::move(parts);
    fused.intermediate_bytes = std::move(intermediate_bytes);
    return fused;
}

}  // namespace dgnn::models
