#include "models/astgnn.hpp"

#include <algorithm>

#include "models/evolvegcn.hpp"  // ToNormalizedCsr
#include "tensor/ops.hpp"

namespace dgnn::models {

Astgnn::Astgnn(const data::TrafficDataset& dataset, AstgnnConfig config)
    : dataset_(dataset), config_(config), road_csr_(ToNormalizedCsr(dataset.road_graph))
{
    Rng rng(config_.seed);
    input_proj_ =
        std::make_unique<nn::Linear>(dataset_.spec.channels, config_.model_dim, rng);
    temporal_attention_ = std::make_unique<nn::MultiHeadAttention>(
        config_.model_dim, config_.num_heads, rng);
    spatial_gcn_ = std::make_unique<nn::GcnLayer>(config_.model_dim,
                                                  config_.model_dim, rng);
    output_proj_ =
        std::make_unique<nn::Linear>(config_.model_dim, dataset_.spec.channels, rng);
}

int64_t
Astgnn::WeightBytes() const
{
    return input_proj_->ParameterBytes() + temporal_attention_->ParameterBytes() +
           spatial_gcn_->ParameterBytes() + output_proj_->ParameterBytes();
}

void
Astgnn::TemporalAttentionPhase(NnExecutor& exec, core::Profiler& profiler,
                               const char* label, int64_t batch, int64_t steps,
                               int64_t numeric_cap, const Tensor& window,
                               Checksum& checksum)
{
    sim::Runtime& runtime = exec.GetRuntime();
    core::ProfileScope scope(profiler, label);
    const int64_t sensors = dataset_.spec.num_sensors;
    const int64_t channels = dataset_.spec.channels;
    const int64_t d = config_.model_dim;

    // One batched kernel: every (window, sensor) pair runs self-attention
    // over its `steps` history positions.
    sim::KernelDesc attn;
    attn.name = "temporal_attention";
    attn.flops =
        batch * sensors * temporal_attention_->ForwardFlops(steps, steps);
    attn.bytes = batch * sensors * steps * d * 4 * 4;
    attn.parallel_items = batch * sensors * steps * d;
    runtime.Launch(attn);
    (void)runtime.Synchronize();

    // Numeric path: real attention over real sensor histories, capped.
    const int64_t cap = numeric_cap > 0 ? std::min(numeric_cap, sensors)
                                        : std::min<int64_t>(4, sensors);
    const int64_t rows = std::min<int64_t>(steps, window.Dim(0));
    for (int64_t s = 0; s < std::min<int64_t>(cap, 4); ++s) {
        // [steps, channels] history of sensor s from the real signal.
        Tensor x(Shape({rows, channels}));
        for (int64_t t = 0; t < rows; ++t) {
            for (int64_t c = 0; c < channels; ++c) {
                x.At(t, c) = window.At(t, s * channels + c);
            }
        }
        const Tensor projected = input_proj_->Forward(x);
        const Tensor y = temporal_attention_->SelfAttention(projected);
        checksum.Add(y.RowSlice(0, 1));
    }
}

void
Astgnn::SpatialGcnPhase(NnExecutor& exec, core::Profiler& profiler, int64_t batch,
                        int64_t steps, int64_t numeric_cap, Checksum& checksum)
{
    core::ProfileScope scope(profiler, "Spatial-attention GCN");
    const int64_t d = config_.model_dim;
    const int64_t cap = numeric_cap > 0 ? std::min<int64_t>(numeric_cap, steps) : steps;

    // Cost: one fused aggregate+transform kernel over all (window, step)
    // pairs. The road graph is static and preprocessed, so accesses are
    // coalesced (no irregular derating).
    sim::Runtime& runtime = exec.GetRuntime();
    sim::KernelDesc gcn;
    gcn.name = "spatial_gcn";
    gcn.flops = batch * steps *
                (2 * road_csr_.Nnz() * d + ops::MatMulFlops(road_csr_.n, d, d));
    gcn.bytes = batch * steps *
                (road_csr_.Nnz() * 12 + 2 * road_csr_.n * d * 4);
    gcn.parallel_items = batch * steps * road_csr_.n * d;
    runtime.Launch(gcn);
    (void)runtime.Synchronize();

    // Numeric path: real spatial convolution over the per-sensor means of
    // the real signal, for one capped step.
    for (int64_t i = 0; i < std::min<int64_t>(cap, 1); ++i) {
        Tensor h(Shape({road_csr_.n, d}));
        for (int64_t sn = 0; sn < road_csr_.n; ++sn) {
            const float base = dataset_.signal.At(
                std::min<int64_t>(i, dataset_.spec.num_timesteps - 1),
                sn * dataset_.spec.channels);
            for (int64_t j = 0; j < d; ++j) {
                h.At(sn, j) = base * (1.0f + 0.01f * static_cast<float>(j));
            }
        }
        const Tensor y = spatial_gcn_->Forward(road_csr_, h);
        checksum.Add(y.RowSlice(0, 1));
    }
}

RunResult
Astgnn::RunInference(sim::Runtime& runtime, const RunConfig& run)
{
    ValidateRunConfig(runtime, run);
    NnExecutor exec(runtime);
    core::Profiler profiler(runtime);
    const int64_t sensors = dataset_.spec.num_sensors;
    const int64_t hist = dataset_.spec.history_len;
    const int64_t horizon = dataset_.spec.horizon;
    const int64_t d = config_.model_dim;

    sim::SimTime warm_one = 0.0;
    sim::SimTime warm_run = 0.0;
    if (run.include_warmup) {
        warm_one = runtime.EnsureWarm(WeightBytes()).TotalUs();
        warm_run = runtime
                       .RunAllocWarmup(run.batch_size * sensors *
                                       (hist + horizon) * d * 4)
                       .TotalUs();
    }

    sim::DeviceBuffer weights = runtime.AllocDevice(WeightBytes(), "astgnn_weights");
    sim::DeviceBuffer graph_buf = runtime.AllocDevice(
        dataset_.road_graph.TopologyBytes(), "astgnn_road_graph");

    runtime.ResetMeasurementWindow();

    const int64_t samples =
        run.max_events > 0 ? std::min<int64_t>(run.max_events, dataset_.NumSamples())
                           : dataset_.NumSamples();
    const int64_t bs = run.batch_size;
    Checksum checksum;
    int64_t iterations = 0;

    for (int64_t begin = 0; begin < samples; begin += bs) {
        const int64_t end = std::min(begin + bs, samples);
        const int64_t nb = end - begin;
        const int64_t window_bytes =
            sensors * dataset_.spec.channels * (hist + horizon) * 4;

        profiler.Begin("iteration");

        // --- Etc: CPU-side window gather (data loading).
        {
            core::ProfileScope scope(profiler, "Etc(data loading, cuda sync)");
            ChargeBatchOverhead(runtime);
            sim::KernelDesc load;
            load.name = "window_gather";
            load.flops = 0;
            load.bytes = 2 * nb * window_bytes;
            load.parallel_items = 1;
            runtime.RunHost(load);
        }

        // --- Memory Copy: windows H2D.
        sim::DeviceBuffer act = runtime.AllocDevice(
            nb * sensors * (hist + horizon) * d * 4, "astgnn_batch");
        {
            core::ProfileScope scope(profiler, "Memory Copy");
            runtime.CopyToDevice(nb * window_bytes, "windows_h2d");
        }

        // --- Position Encoding.
        {
            core::ProfileScope scope(profiler, "Position Encoding");
            sim::KernelDesc pe;
            pe.name = "position_encoding";
            pe.flops = nb * sensors * hist * d * 3;
            pe.bytes = nb * sensors * hist * d * 4 * 2;
            pe.parallel_items = nb * sensors * hist * d;
            runtime.Launch(pe);
        }

        // --- Encoder.
        profiler.Begin("Encoder");
        runtime.Marker("encoder_begin");
        const Tensor window = dataset_.Window(begin, hist);
        for (int64_t l = 0; l < config_.encoder_layers; ++l) {
            TemporalAttentionPhase(exec, profiler, "Temporal Attention", nb, hist,
                                   run.numeric_cap, window, checksum);
            SpatialGcnPhase(exec, profiler, nb, hist, run.numeric_cap, checksum);
        }
        (void)runtime.Synchronize();
        runtime.Marker("encoder_end");
        profiler.End();

        // --- Decoder.
        profiler.Begin("Decoder");
        runtime.Marker("decoder_begin");
        for (int64_t l = 0; l < config_.decoder_layers; ++l) {
            TemporalAttentionPhase(exec, profiler, "Temporal Attention", nb, horizon,
                                   run.numeric_cap, window, checksum);
            TemporalAttentionPhase(exec, profiler, "Temporal Attention", nb, horizon,
                                   run.numeric_cap, window, checksum);
            SpatialGcnPhase(exec, profiler, nb, horizon, run.numeric_cap, checksum);
        }
        runtime.Marker("decoder_end");
        profiler.End();

        // --- Etc: end-of-iteration CUDA synchronization.
        {
            core::ProfileScope scope(profiler, "Etc(data loading, cuda sync)");
            (void)runtime.Synchronize();
        }

        // --- Memory Copy: predictions D2H.
        {
            core::ProfileScope scope(profiler, "Memory Copy");
            runtime.CopyToHost(nb * sensors * dataset_.spec.channels * horizon * 4,
                               "predictions_d2h");
        }
        profiler.End();  // iteration
        ++iterations;
    }

    RunResult result =
        CollectRunStats(runtime, Name(), dataset_.spec.name, iterations);
    result.warmup_one_time_us = warm_one;
    result.warmup_per_run_us = warm_run;
    result.output_checksum = checksum.Value();
    return result;
}

}  // namespace dgnn::models
