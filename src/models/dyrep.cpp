#include "models/dyrep.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/ops.hpp"

namespace dgnn::models {

DyRep::DyRep(const data::PointProcessDataset& dataset, DyRepConfig config)
    : dataset_(dataset), adjacency_(dataset.stream), config_(config)
{
    Rng rng(config_.seed);
    const int64_t d = config_.embed_dim;
    embeddings_ = std::make_unique<nn::Embedding>(dataset_.spec.num_actors, d, rng);
    attention_ = std::make_unique<nn::MultiHeadAttention>(d, 1, rng);
    // RNN input: [attended neighborhood || other endpoint || exogenous].
    update_rnn_ = std::make_unique<nn::RnnCell>(3 * d, d, rng);
    intensity_head_ = std::make_unique<nn::Linear>(2 * d, 1, rng);
    exogenous_ = init::Uniform(Shape({d}), rng, -0.05f, 0.05f);
}

int64_t
DyRep::WeightBytes() const
{
    return attention_->ParameterBytes() + update_rnn_->ParameterBytes() +
           intensity_head_->ParameterBytes() + exogenous_.NumBytes();
}

double
DyRep::Intensity(int64_t u, int64_t v) const
{
    const int64_t d = config_.embed_dim;
    const Tensor zu = embeddings_->Row(u).Reshape(Shape({1, d}));
    const Tensor zv = embeddings_->Row(v).Reshape(Shape({1, d}));
    const Tensor pair = ops::ConcatCols(zu, zv);
    const double raw = intensity_head_->Forward(pair).At(0);
    // softplus keeps the intensity positive.
    return std::log1p(std::exp(raw));
}

double
DyRep::ExpectedNextEventTime(int64_t u, int64_t v) const
{
    const double lambda = Intensity(u, v);
    DGNN_CHECK(lambda > 0.0, "non-positive intensity for pair (", u, ", ", v, ")");
    return 1.0 / lambda;
}

RunResult
DyRep::RunInference(sim::Runtime& runtime, const RunConfig& run)
{
    ValidateRunConfig(runtime, run);
    core::Profiler profiler(runtime);
    const int64_t d = config_.embed_dim;
    const int64_t k = config_.attention_neighbors;

    sim::SimTime warm_one = 0.0;
    sim::SimTime warm_run = 0.0;
    if (run.include_warmup) {
        warm_one = runtime.EnsureWarm(WeightBytes()).TotalUs();
        warm_run = runtime.RunAllocWarmup(dataset_.spec.num_actors * d * 4).TotalUs();
    }

    sim::DeviceBuffer weights = runtime.AllocDevice(WeightBytes(), "dyrep_weights");
    sim::DeviceBuffer emb_buf = runtime.AllocDevice(
        embeddings_->Count() * embeddings_->Dim() * 4, "dyrep_embeddings");

    runtime.ResetMeasurementWindow();

    graph::TemporalNeighborSampler sampler(
        adjacency_, graph::SamplingStrategy::kMostRecent, config_.seed + 1);

    const int64_t total_events =
        run.max_events > 0 ? std::min(run.max_events, dataset_.stream.NumEvents())
                           : dataset_.stream.NumEvents();
    Checksum checksum;

    // Strictly sequential event loop: this IS the bottleneck.
    for (int64_t i = 0; i < total_events; ++i) {
        const graph::TemporalEvent& e = dataset_.stream.Event(i);
        const bool numeric =
            run.numeric_cap <= 0 || i < run.numeric_cap;

        // --- Temporal Attention over both endpoints' neighborhoods.
        Tensor attended_u;
        Tensor attended_v;
        {
            core::ProfileScope scope(profiler, "Temporal Attention");
            for (const int64_t node : {e.src, e.dst}) {
                const graph::SampledNeighborhood nbh =
                    sampler.Sample(node, e.time, k);
                sim::KernelDesc attn;
                attn.name = "local_attention";
                attn.flops = attention_->ForwardFlops(1, k);
                attn.bytes = (k + 2) * d * 4 * 3;
                attn.parallel_items = k;
                runtime.Launch(attn);

                if (numeric) {
                    Tensor kv(Shape({k, d}));
                    for (int64_t j = 0; j < k; ++j) {
                        const int64_t nbr = nbh.neighbors[static_cast<size_t>(j)];
                        if (nbr >= 0) {
                            kv.SetRow(j, embeddings_->Row(nbr));
                        }
                    }
                    const Tensor q =
                        embeddings_->Row(node).Reshape(Shape({1, d}));
                    Tensor& out = node == e.src ? attended_u : attended_v;
                    out = attention_->Forward(q, kv, kv);
                }
            }
        }

        // --- Node Embedding Update (RNN per endpoint).
        {
            core::ProfileScope scope(profiler, "Node Embedding Update");
            for (const int64_t node : {e.src, e.dst}) {
                sim::KernelDesc rnn;
                rnn.name = "embedding_rnn";
                rnn.flops = update_rnn_->ForwardFlops(1);
                rnn.bytes = 4 * d * 4 + update_rnn_->ParameterBytes();
                rnn.parallel_items = d;
                runtime.Launch(rnn);

                if (numeric) {
                    const int64_t other = node == e.src ? e.dst : e.src;
                    const Tensor& attended =
                        node == e.src ? attended_u : attended_v;
                    const Tensor input = ops::ConcatCols(
                        ops::ConcatCols(
                            attended,
                            embeddings_->Row(other).Reshape(Shape({1, d}))),
                        exogenous_.Reshape(Shape({1, d})));
                    const Tensor h =
                        embeddings_->Row(node).Reshape(Shape({1, d}));
                    const Tensor updated = update_rnn_->Forward(input, h);
                    embeddings_->SetRow(node,
                                        updated.Reshape(Shape({d})));
                }
            }
        }

        // --- Conditional Intensity (decoder) + hard sync: the next event
        // depends on this one's updates.
        {
            core::ProfileScope scope(profiler, "Conditional Intensity");
            sim::KernelDesc head;
            head.name = "conditional_intensity";
            head.flops = intensity_head_->ForwardFlops(1) + 4;
            head.bytes = 2 * d * 4 + intensity_head_->ParameterBytes();
            head.parallel_items = 1;
            runtime.Launch(head);
            (void)runtime.Synchronize();

            if (numeric) {
                checksum.Add(Intensity(e.src, e.dst));
            }
        }
    }

    RunResult result =
        CollectRunStats(runtime, Name(), dataset_.spec.name, total_events);
    result.warmup_one_time_us = warm_one;
    result.warmup_per_run_us = warm_run;
    result.output_checksum = checksum.Value();
    return result;
}

}  // namespace dgnn::models
