#pragma once

/// @file
/// ASTGNN (Guo et al., TKDE'21), inference path as profiled by the paper
/// (Figs 3d, 7c, 9):
///
///   per batch of traffic windows:
///     [Etc(data loading, cuda sync)]  window gather on CPU + tail syncs
///     [Memory Copy]                   signal windows H2D, predictions D2H
///     [Position Encoding]             temporal position encoding
///     encoder layers:
///       [Temporal Attention]          self-attention over the history axis
///       [Spatial-attention GCN]       dynamic GCN over the sensor graph
///     decoder layers:
///       [Temporal Attention] x2       masked + cross attention
///       [Spatial-attention GCN]
///
/// Temporal attention totals > 3x the spatial GCN (paper 4.2.2); large
/// batches saturate the GPU and delay the next iteration's encoder (Fig 9).

#include <memory>
#include <vector>

#include "data/traffic_gen.hpp"
#include "models/dgnn_model.hpp"

namespace dgnn::models {

/// ASTGNN hyper-parameters.
struct AstgnnConfig {
    int64_t model_dim = 32;
    int64_t num_heads = 2;
    int64_t encoder_layers = 2;
    int64_t decoder_layers = 2;
    uint64_t seed = 23;
};

/// ASTGNN model bound to one traffic dataset.
class Astgnn : public DgnnModel {
  public:
    Astgnn(const data::TrafficDataset& dataset, AstgnnConfig config);

    std::string Name() const override { return "ASTGNN"; }

    RunResult RunInference(sim::Runtime& runtime, const RunConfig& config) override;

    int64_t WeightBytes() const;

  private:
    /// One temporal-attention block over [steps, dim] per sensor.
    void TemporalAttentionPhase(NnExecutor& exec, core::Profiler& profiler,
                                const char* label, int64_t batch, int64_t steps,
                                int64_t numeric_cap, const Tensor& window,
                                Checksum& checksum);

    /// One spatial dynamic-GCN block over the sensor graph.
    void SpatialGcnPhase(NnExecutor& exec, core::Profiler& profiler, int64_t batch,
                        int64_t steps, int64_t numeric_cap, Checksum& checksum);

    const data::TrafficDataset& dataset_;
    AstgnnConfig config_;
    nn::SparseMatrix road_csr_;
    std::unique_ptr<nn::Linear> input_proj_;
    std::unique_ptr<nn::MultiHeadAttention> temporal_attention_;
    std::unique_ptr<nn::GcnLayer> spatial_gcn_;
    std::unique_ptr<nn::Linear> output_proj_;
};

}  // namespace dgnn::models
