#pragma once

/// @file
/// LDG — Latent Dynamic Graph (Knyazev et al., 2021), inference path as
/// profiled by the paper (Figs 4b, 8d). LDG shares DyRep's node-embedding
/// phase but adds an NRI encoder that maps node-pair embeddings to latent
/// edge embeddings, and a bilinear decoder for richer pair interactions:
///
///   per event (strictly sequential):
///     [Encoder (NRI)]          pairwise MLP -> latent edge embeddings
///     [Temporal Attention]     attention weighted by the latent edges
///     [Node Embedding Update]  RNN update of both endpoints
///     [Bilinear Decoder]       z_u^T W z_v intensity
///
/// Like DyRep, kernels are tiny and serialized: GPU slower than CPU for
/// every batch size (Fig 8d).

#include <memory>

#include "data/social_evolution_gen.hpp"
#include "models/dgnn_model.hpp"
#include "nn/embedding.hpp"

namespace dgnn::models {

/// Which encoder LDG uses (the paper profiles both).
enum class LdgEncoder {
    kMlp,       ///< NRI MLP encoder
    kBilinear,  ///< bilinear-only encoder
};

const char* ToString(LdgEncoder encoder);

/// LDG hyper-parameters.
struct LdgConfig {
    LdgEncoder encoder = LdgEncoder::kMlp;
    int64_t embed_dim = 32;
    int64_t latent_edge_dim = 16;
    int64_t attention_neighbors = 5;
    uint64_t seed = 31;
};

/// LDG model bound to one point-process dataset.
class Ldg : public DgnnModel {
  public:
    Ldg(const data::PointProcessDataset& dataset, LdgConfig config);

    std::string Name() const override;

    RunResult RunInference(sim::Runtime& runtime, const RunConfig& config) override;

    int64_t WeightBytes() const;

    /// Bilinear pair score (pure host math, for tests).
    double PairScore(int64_t u, int64_t v) const;

  private:
    const data::PointProcessDataset& dataset_;
    LdgConfig config_;
    graph::TemporalAdjacency adjacency_;
    std::unique_ptr<nn::Embedding> embeddings_;
    std::unique_ptr<nn::Mlp> nri_encoder_;
    std::unique_ptr<nn::MultiHeadAttention> attention_;
    std::unique_ptr<nn::RnnCell> update_rnn_;
    Tensor bilinear_w_;  ///< [embed_dim, embed_dim]
};

}  // namespace dgnn::models
