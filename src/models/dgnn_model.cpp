#include "models/dgnn_model.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace dgnn::models {

sim::Runtime
MakeRuntime(sim::ExecMode mode)
{
    sim::RuntimeConfig config;
    config.mode = mode;
    return sim::Runtime(config);
}

void
ChargeBatchOverhead(sim::Runtime& runtime)
{
    runtime.RunHostFor("framework_overhead", kFrameworkBatchOverheadUs);
}

void
ValidateRunConfig(const sim::Runtime& runtime, const RunConfig& config)
{
    DGNN_CHECK(config.batch_size > 0, "batch_size must be positive, got ",
               config.batch_size);
    DGNN_CHECK(config.num_neighbors >= 0, "num_neighbors must be non-negative, got ",
               config.num_neighbors);
    DGNN_CHECK(config.max_events >= 0, "max_events must be non-negative, got ",
               config.max_events);
    DGNN_CHECK(config.numeric_cap >= 0, "numeric_cap must be non-negative, got ",
               config.numeric_cap);
    DGNN_CHECK(config.mode == runtime.Mode(),
               "RunConfig mode does not match the runtime's execution mode");
    DGNN_CHECK(config.cache.capacity_bytes >= 0,
               "cache capacity must be non-negative, got ",
               config.cache.capacity_bytes);
}

cache::DeviceCache
MakeRunCache(const sim::Runtime& runtime, const RunConfig& run, int64_t row_bytes)
{
    if (!runtime.HasGpu() || run.cache.capacity_bytes <= 0 || row_bytes <= 0) {
        return cache::DeviceCache{};
    }
    cache::DeviceCacheConfig config = run.cache;
    config.row_bytes = row_bytes;
    return cache::DeviceCache(config);
}

RunConfig
SingleBatchProbe(sim::ExecMode mode, int64_t batch_size, int64_t num_neighbors)
{
    RunConfig run;
    run.mode = mode;
    run.batch_size = batch_size;
    run.num_neighbors = num_neighbors;
    run.max_events = batch_size;
    run.numeric_cap = 1;
    run.include_warmup = false;
    return run;
}

RunResult
CollectRunStats(sim::Runtime& runtime, const std::string& model,
                const std::string& dataset, int64_t iterations)
{
    (void)runtime.Synchronize();
    RunResult r;
    r.model = model;
    r.dataset = dataset;
    r.mode = sim::ToString(runtime.Mode());
    r.total_us = runtime.ElapsedInWindow();
    r.iterations = iterations;
    r.per_iteration_us =
        iterations > 0 ? r.total_us / static_cast<double>(iterations) : r.total_us;
    r.compute_utilization_pct = runtime.ComputeUtilizationPct();
    r.compute_peak_bytes = runtime.ComputeDevice().Memory().PeakBytes();
    r.cpu_peak_bytes = runtime.Cpu().Memory().PeakBytes();
    r.h2d_bytes = runtime.BytesToDevice();
    r.d2h_bytes = runtime.BytesToHost();
    r.transfer_count = runtime.TransferCount();
    r.transfer_time_us = runtime.TransferTime();
    r.compute_busy_us = runtime.ComputeDevice().BusyTime();
    r.cache_hit_bytes = runtime.CacheHitBytes();
    r.breakdown = core::Breakdown::FromRuntime(runtime);
    return r;
}

namespace {

/// Approximate payload bytes of tensors touched by a kernel.
int64_t
TensorBytes(std::initializer_list<const Tensor*> tensors)
{
    int64_t bytes = 0;
    for (const Tensor* t : tensors) {
        bytes += t->NumBytes();
    }
    return bytes;
}

}  // namespace

Tensor
NnExecutor::Linear(const nn::Linear& linear, const Tensor& x)
{
    Tensor y = linear.Forward(x);
    sim::KernelDesc k;
    k.name = "linear";
    k.flops = linear.ForwardFlops(x.Dim(0));
    k.bytes = TensorBytes({&x, &y}) + linear.ParameterBytes();
    k.parallel_items = x.Dim(0) * linear.OutFeatures();
    runtime_.Launch(k);
    return y;
}

Tensor
NnExecutor::Mlp(const nn::Mlp& mlp, const Tensor& x)
{
    Tensor y = mlp.Forward(x);
    sim::KernelDesc k;
    k.name = "mlp";
    k.flops = mlp.ForwardFlops(x.Dim(0));
    k.bytes = TensorBytes({&x, &y}) + mlp.ParameterBytes();
    k.parallel_items = x.Dim(0) * mlp.OutFeatures();
    runtime_.Launch(k);
    return y;
}

Tensor
NnExecutor::Gru(const nn::GruCell& cell, const Tensor& x, const Tensor& h)
{
    Tensor y = cell.Forward(x, h);
    sim::KernelDesc k;
    k.name = "gru_cell";
    k.flops = cell.ForwardFlops(x.Dim(0));
    k.bytes = TensorBytes({&x, &h, &y}) + cell.ParameterBytes();
    k.parallel_items = x.Dim(0) * cell.HiddenSize();
    runtime_.Launch(k);
    return y;
}

Tensor
NnExecutor::Rnn(const nn::RnnCell& cell, const Tensor& x, const Tensor& h)
{
    Tensor y = cell.Forward(x, h);
    sim::KernelDesc k;
    k.name = "rnn_cell";
    k.flops = cell.ForwardFlops(x.Dim(0));
    k.bytes = TensorBytes({&x, &h, &y}) + cell.ParameterBytes();
    k.parallel_items = x.Dim(0) * cell.HiddenSize();
    runtime_.Launch(k);
    return y;
}

nn::LstmState
NnExecutor::Lstm(const nn::LstmCell& cell, const Tensor& x, const nn::LstmState& state)
{
    nn::LstmState next = cell.Forward(x, state);
    sim::KernelDesc k;
    k.name = "lstm_cell";
    k.flops = cell.ForwardFlops(x.Dim(0));
    k.bytes = TensorBytes({&x, &state.h, &state.c, &next.h, &next.c}) +
              cell.ParameterBytes();
    k.parallel_items = x.Dim(0) * cell.HiddenSize();
    runtime_.Launch(k);
    return next;
}

Tensor
NnExecutor::Attention(const nn::MultiHeadAttention& mha, const Tensor& q,
                      const Tensor& k, const Tensor& v)
{
    Tensor y = mha.Forward(q, k, v);
    sim::KernelDesc desc;
    desc.name = "attention";
    desc.flops = mha.ForwardFlops(q.Dim(0), k.Dim(0));
    desc.bytes = TensorBytes({&q, &k, &v, &y}) + mha.ParameterBytes();
    desc.parallel_items = q.Dim(0) * k.Dim(0) * mha.ModelDim();
    runtime_.Launch(desc);
    return y;
}

Tensor
NnExecutor::Spmm(const nn::SparseMatrix& a, const Tensor& x)
{
    Tensor y = nn::Spmm(a, x);
    sim::KernelDesc k;
    k.name = "spmm";
    k.flops = 2 * a.Nnz() * x.Dim(1);
    k.bytes = TensorBytes({&x, &y}) +
              a.Nnz() * static_cast<int64_t>(sizeof(int64_t) + sizeof(float));
    k.parallel_items = a.n * x.Dim(1);
    k.irregular = true;
    runtime_.Launch(k);
    return y;
}

Tensor
NnExecutor::Gcn(const nn::GcnLayer& layer, const nn::SparseMatrix& a_hat,
                const Tensor& h)
{
    const Tensor aggregated = Spmm(a_hat, h);
    // Dense transform kernel.
    Tensor y = nn::Apply(nn::Activation::kRelu,
                         ops::MatMulTransposed(aggregated, layer.Weight()));
    sim::KernelDesc k;
    k.name = "gcn_transform";
    k.flops = ops::MatMulFlops(aggregated.Dim(0), layer.InFeatures(),
                               layer.OutFeatures());
    k.bytes = TensorBytes({&aggregated, &y}) + layer.ParameterBytes();
    k.parallel_items = aggregated.Dim(0) * layer.OutFeatures();
    runtime_.Launch(k);
    return y;
}

Tensor
NnExecutor::GcnWithWeight(const nn::GcnLayer& /*layer*/, const nn::SparseMatrix& a_hat,
                          const Tensor& h, const Tensor& weight)
{
    const Tensor aggregated = Spmm(a_hat, h);
    Tensor y = nn::Apply(nn::Activation::kRelu,
                         ops::MatMulTransposed(aggregated, weight));
    sim::KernelDesc k;
    k.name = "gcn_transform";
    k.flops = ops::MatMulFlops(aggregated.Dim(0), weight.Dim(1), weight.Dim(0));
    k.bytes = TensorBytes({&aggregated, &y, &weight});
    k.parallel_items = aggregated.Dim(0) * weight.Dim(0);
    runtime_.Launch(k);
    return y;
}

Tensor
NnExecutor::TimeEncode(const nn::BochnerTimeEncoder& encoder, const Tensor& deltas)
{
    Tensor y = encoder.Forward(deltas);
    sim::KernelDesc k;
    k.name = "time_encoding";
    k.flops = encoder.ForwardFlops(deltas.Dim(0));
    k.bytes = TensorBytes({&deltas, &y});
    k.parallel_items = deltas.Dim(0) * encoder.Dim();
    runtime_.Launch(k);
    return y;
}

void
NnExecutor::Elementwise(const std::string& name, int64_t flops, int64_t bytes,
                        int64_t items)
{
    sim::KernelDesc k;
    k.name = name;
    k.flops = flops;
    k.bytes = bytes;
    k.parallel_items = std::max<int64_t>(1, items);
    runtime_.Launch(k);
}

std::vector<graph::SampledNeighborhood>
NnExecutor::SampleOnCpu(graph::TemporalNeighborSampler& sampler,
                        const std::vector<int64_t>& nodes,
                        const std::vector<double>& times, int64_t k)
{
    std::vector<graph::SampledNeighborhood> result =
        sampler.SampleBatch(nodes, times, k);
    const graph::SamplingCost cost = sampler.TakeCost();
    runtime_.RunHost(SamplingKernel(cost, static_cast<int64_t>(nodes.size()), k,
                                    sampler.Strategy()));
    return result;
}

sim::KernelDesc
SamplingKernel(const graph::SamplingCost& cost, int64_t targets, int64_t k,
               graph::SamplingStrategy strategy)
{
    // Per-target framework overhead expressed as equivalent memory traffic.
    // Uniform temporal sampling (TGAT) performs per-target NumPy calls,
    // index sorting and scattered gathers; most-recent lookup (TGN, DyRep)
    // is a vectorizable tail slice of the history array.
    const bool uniform = strategy == graph::SamplingStrategy::kUniform;
    const int64_t per_target_bytes = uniform ? 32768 : 128;
    // Uniform draws hit scattered history entries (cache-missing, 8x line
    // amplification); the most-recent lookup is a contiguous tail slice.
    const int64_t gather_amplification = uniform ? 8 : 1;
    const int64_t per_candidate_bytes = uniform ? 64 : 8;
    sim::KernelDesc desc;
    desc.name = "temporal_sampling";
    // Probes and sort comparisons execute a handful of scalar ops each.
    desc.flops = cost.bisection_probes * 16 + cost.sort_ops * 8;
    // Uniform (TGAT-style) sampling materializes padded [targets, k]
    // NumPy arrays, so its traffic scales with the requested k even when
    // node histories are shorter than k.
    const int64_t padded_slot_bytes = uniform ? targets * k * 96 : 0;
    desc.bytes = cost.gathered_bytes * gather_amplification +
                 cost.bisection_probes * 64 + targets * per_target_bytes +
                 cost.candidates_scanned * per_candidate_bytes + padded_slot_bytes;
    // The reference samplers are single-threaded Python/NumPy.
    desc.parallel_items = 1;
    desc.irregular = true;
    return desc;
}

void
Checksum::Add(const Tensor& t)
{
    sum_ += t.Sum();
    for (int64_t i = 0; i < t.NumElements(); ++i) {
        abs_sum_ += std::fabs(static_cast<double>(t.Data()[i]));
    }
    count_ += t.NumElements();
}

void
Checksum::Add(double v)
{
    sum_ += v;
    abs_sum_ += std::fabs(v);
    ++count_;
}

double
Checksum::Value() const
{
    if (count_ == 0) {
        return 0.0;
    }
    return sum_ + 1e-3 * abs_sum_ / static_cast<double>(count_);
}

}  // namespace dgnn::models
