#pragma once

/// @file
/// JODIE (Kumar et al., KDD'19), inference path as profiled by the paper
/// (Figs 3a, 5a, 7d):
///
///   per outer chunk of events:
///     [Load Embedding]            t-batch creation on CPU + embeddings H2D
///     per t-batch (sequential — mutually-recursive RNNs):
///       [Project User Embedding]  u(t+Δ) = (1 + Δt·w) ⊙ u
///       [Predict Item Embedding]  linear prediction of the next item
///       [Update Embedding]        user RNN + item RNN updates
///     [Update Embedding]          updated embeddings D2H
///
/// The RNN chain across t-batches is the temporal-dependency bottleneck
/// (GPU utilization ~1.5-2.5 % even with t-batching).

#include <memory>
#include <vector>

#include "data/temporal_interactions.hpp"
#include "models/dgnn_model.hpp"
#include "nn/embedding.hpp"

namespace dgnn::models {

/// JODIE hyper-parameters.
struct JodieConfig {
    int64_t embed_dim = 64;
    uint64_t seed = 13;

    /// The t-batch algorithm of the JODIE paper (reported 9.2x training
    /// speedup). Disable to process every interaction individually — the
    /// ablation bench quantifies what t-batching buys at inference time.
    bool use_tbatch = true;
};

/// JODIE model bound to one interaction dataset.
class Jodie : public DgnnModel {
  public:
    Jodie(const data::InteractionDataset& dataset, JodieConfig config);

    std::string Name() const override { return "JODIE"; }

    RunResult RunInference(sim::Runtime& runtime, const RunConfig& config) override;

    int64_t WeightBytes() const;

    /// One user/item embedding row (keyed by global node id). Rows are
    /// rewritten by the RNN updates, so they carry dirty bits; the rows a
    /// chunk gathers are exactly its event endpoints.
    int64_t CacheRowBytes() const override { return config_.embed_dim * 4; }
    bool CacheRowsMutable() const override { return true; }
    bool CacheKeysAreRequestEndpoints() const override { return true; }

    const nn::Embedding& UserEmbeddings() const { return *user_embeddings_; }
    const nn::Embedding& ItemEmbeddings() const { return *item_embeddings_; }

  private:
    const data::InteractionDataset& dataset_;
    JodieConfig config_;
    std::unique_ptr<nn::Embedding> user_embeddings_;
    std::unique_ptr<nn::Embedding> item_embeddings_;
    std::vector<double> user_last_update_;
    std::unique_ptr<nn::RnnCell> user_rnn_;
    std::unique_ptr<nn::RnnCell> item_rnn_;
    std::unique_ptr<nn::Linear> item_predictor_;
    Tensor projection_w_;  ///< [embed_dim] time-projection weights
};

}  // namespace dgnn::models
