#pragma once

/// @file
/// DyRep (Trivedi et al., ICLR'19), inference path as profiled by the paper
/// (Figs 4a, 8c):
///
///   per event (strictly sequential — each conditional-intensity evaluation
///   needs the most recent embeddings):
///     [Temporal Attention]     attention over the endpoints' neighborhoods
///     [Node Embedding Update]  RNN combining localized embedding,
///                              self-propagation and exogenous drive
///     [Conditional Intensity]  softplus(w·[z_u || z_v]) decoder
///
/// Kernels are tiny and serialized, so GPU inference is *slower* than CPU
/// at every batch size (Fig 8c: 0.5x - 0.78x) — launch overhead dominates.

#include <memory>
#include <vector>

#include "data/social_evolution_gen.hpp"
#include "models/dgnn_model.hpp"
#include "nn/embedding.hpp"

namespace dgnn::models {

/// DyRep hyper-parameters.
struct DyRepConfig {
    int64_t embed_dim = 32;
    int64_t attention_neighbors = 5;
    uint64_t seed = 29;
};

/// DyRep model bound to one point-process dataset.
class DyRep : public DgnnModel {
  public:
    DyRep(const data::PointProcessDataset& dataset, DyRepConfig config);

    std::string Name() const override { return "DyRep"; }

    RunResult RunInference(sim::Runtime& runtime, const RunConfig& config) override;

    int64_t WeightBytes() const;

    /// Conditional intensity for a node pair (pure host math, for tests).
    double Intensity(int64_t u, int64_t v) const;

    /// Table-1 "time prediction" task: expected waiting time until the
    /// next (u, v) event under the current conditional intensity (the
    /// mean of an exponential with rate lambda_uv).
    double ExpectedNextEventTime(int64_t u, int64_t v) const;

  protected:
    const data::PointProcessDataset& dataset_;
    graph::TemporalAdjacency adjacency_;
    std::unique_ptr<nn::Embedding> embeddings_;
    std::unique_ptr<nn::MultiHeadAttention> attention_;
    std::unique_ptr<nn::RnnCell> update_rnn_;
    std::unique_ptr<nn::Linear> intensity_head_;
    Tensor exogenous_;  ///< [embed_dim] drive vector

  private:
    DyRepConfig config_;
};

}  // namespace dgnn::models
