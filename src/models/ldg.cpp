#include "models/ldg.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/ops.hpp"

namespace dgnn::models {

const char*
ToString(LdgEncoder encoder)
{
    switch (encoder) {
      case LdgEncoder::kMlp:
        return "LDG-MLP";
      case LdgEncoder::kBilinear:
        return "LDG-bilinear";
    }
    return "?";
}

Ldg::Ldg(const data::PointProcessDataset& dataset, LdgConfig config)
    : dataset_(dataset), config_(config), adjacency_(dataset.stream)
{
    Rng rng(config_.seed);
    const int64_t d = config_.embed_dim;
    embeddings_ = std::make_unique<nn::Embedding>(dataset_.spec.num_actors, d, rng);
    nri_encoder_ = std::make_unique<nn::Mlp>(
        std::vector<int64_t>{2 * d, 2 * config_.latent_edge_dim,
                             config_.latent_edge_dim},
        rng);
    attention_ = std::make_unique<nn::MultiHeadAttention>(d, 1, rng);
    update_rnn_ = std::make_unique<nn::RnnCell>(2 * d, d, rng);
    bilinear_w_ = init::XavierUniform(d, d, rng);
}

std::string
Ldg::Name() const
{
    return ToString(config_.encoder);
}

int64_t
Ldg::WeightBytes() const
{
    int64_t bytes = attention_->ParameterBytes() + update_rnn_->ParameterBytes() +
                    bilinear_w_.NumBytes();
    if (config_.encoder == LdgEncoder::kMlp) {
        bytes += nri_encoder_->ParameterBytes();
    }
    return bytes;
}

double
Ldg::PairScore(int64_t u, int64_t v) const
{
    const int64_t d = config_.embed_dim;
    const Tensor zu = embeddings_->Row(u).Reshape(Shape({1, d}));
    const Tensor zv = embeddings_->Row(v).Reshape(Shape({1, d}));
    const Tensor wzv = ops::MatMul(bilinear_w_, ops::Transpose(zv));
    return ops::MatMul(zu, wzv).At(0);
}

RunResult
Ldg::RunInference(sim::Runtime& runtime, const RunConfig& run)
{
    ValidateRunConfig(runtime, run);
    core::Profiler profiler(runtime);
    const int64_t d = config_.embed_dim;
    const int64_t k = config_.attention_neighbors;

    sim::SimTime warm_one = 0.0;
    sim::SimTime warm_run = 0.0;
    if (run.include_warmup) {
        warm_one = runtime.EnsureWarm(WeightBytes()).TotalUs();
        warm_run = runtime.RunAllocWarmup(dataset_.spec.num_actors * d * 4).TotalUs();
    }

    sim::DeviceBuffer weights = runtime.AllocDevice(WeightBytes(), "ldg_weights");
    sim::DeviceBuffer emb_buf = runtime.AllocDevice(
        embeddings_->Count() * embeddings_->Dim() * 4, "ldg_embeddings");

    runtime.ResetMeasurementWindow();

    graph::TemporalNeighborSampler sampler(
        adjacency_, graph::SamplingStrategy::kMostRecent, config_.seed + 1);

    const int64_t total_events =
        run.max_events > 0 ? std::min(run.max_events, dataset_.stream.NumEvents())
                           : dataset_.stream.NumEvents();
    Checksum checksum;

    for (int64_t i = 0; i < total_events; ++i) {
        const graph::TemporalEvent& e = dataset_.stream.Event(i);
        const bool numeric = run.numeric_cap <= 0 || i < run.numeric_cap;

        // --- Encoder (NRI): latent edge embedding for the event pair plus
        // the pair's sampled context edges.
        Tensor latent_edge;
        {
            core::ProfileScope scope(profiler, "Encoder (NRI)");
            if (config_.encoder == LdgEncoder::kMlp) {
                sim::KernelDesc enc;
                enc.name = "nri_encoder";
                enc.flops = nri_encoder_->ForwardFlops(1 + k);
                enc.bytes = (1 + k) * 2 * d * 4 + nri_encoder_->ParameterBytes();
                enc.parallel_items = (1 + k) * config_.latent_edge_dim;
                runtime.Launch(enc);
            } else {
                sim::KernelDesc enc;
                enc.name = "bilinear_encoder";
                enc.flops = (1 + k) * 2 * d * d;
                enc.bytes = (1 + k) * 2 * d * 4 + bilinear_w_.NumBytes();
                enc.parallel_items = 1 + k;
                runtime.Launch(enc);
            }
            if (numeric && config_.encoder == LdgEncoder::kMlp) {
                const Tensor pair = ops::ConcatCols(
                    embeddings_->Row(e.src).Reshape(Shape({1, d})),
                    embeddings_->Row(e.dst).Reshape(Shape({1, d})));
                latent_edge = nri_encoder_->Forward(pair);
                checksum.Add(latent_edge);
            }
        }

        // --- Temporal Attention over the endpoints' neighborhoods.
        Tensor attended_u;
        Tensor attended_v;
        {
            core::ProfileScope scope(profiler, "Temporal Attention");
            for (const int64_t node : {e.src, e.dst}) {
                const graph::SampledNeighborhood nbh =
                    sampler.Sample(node, e.time, k);
                sim::KernelDesc attn;
                attn.name = "latent_attention";
                attn.flops = attention_->ForwardFlops(1, k);
                attn.bytes = (k + 2) * d * 4 * 3;
                attn.parallel_items = k;
                runtime.Launch(attn);

                if (numeric) {
                    Tensor kv(Shape({k, d}));
                    for (int64_t j = 0; j < k; ++j) {
                        const int64_t nbr = nbh.neighbors[static_cast<size_t>(j)];
                        if (nbr >= 0) {
                            kv.SetRow(j, embeddings_->Row(nbr));
                        }
                    }
                    const Tensor q =
                        embeddings_->Row(node).Reshape(Shape({1, d}));
                    Tensor& out = node == e.src ? attended_u : attended_v;
                    out = attention_->Forward(q, kv, kv);
                }
            }
        }

        // --- Node Embedding Update.
        {
            core::ProfileScope scope(profiler, "Node Embedding Update");
            for (const int64_t node : {e.src, e.dst}) {
                sim::KernelDesc rnn;
                rnn.name = "embedding_rnn";
                rnn.flops = update_rnn_->ForwardFlops(1);
                rnn.bytes = 4 * d * 4 + update_rnn_->ParameterBytes();
                rnn.parallel_items = d;
                runtime.Launch(rnn);

                if (numeric) {
                    const int64_t other = node == e.src ? e.dst : e.src;
                    const Tensor& attended =
                        node == e.src ? attended_u : attended_v;
                    const Tensor input = ops::ConcatCols(
                        attended,
                        embeddings_->Row(other).Reshape(Shape({1, d})));
                    const Tensor h =
                        embeddings_->Row(node).Reshape(Shape({1, d}));
                    const Tensor updated = update_rnn_->Forward(input, h);
                    embeddings_->SetRow(node, updated.Reshape(Shape({d})));
                }
            }
        }

        // --- Bilinear Decoder + per-event sync.
        {
            core::ProfileScope scope(profiler, "Bilinear Decoder");
            sim::KernelDesc dec;
            dec.name = "bilinear_decoder";
            dec.flops = 2 * d * d + 2 * d;
            dec.bytes = 2 * d * 4 + bilinear_w_.NumBytes();
            dec.parallel_items = d;
            runtime.Launch(dec);
            (void)runtime.Synchronize();

            if (numeric) {
                checksum.Add(PairScore(e.src, e.dst));
            }
        }
    }

    RunResult result =
        CollectRunStats(runtime, Name(), dataset_.spec.name, total_events);
    result.warmup_one_time_us = warm_one;
    result.warmup_per_run_us = warm_run;
    result.output_checksum = checksum.Value();
    return result;
}

}  // namespace dgnn::models
