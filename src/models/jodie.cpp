#include "models/jodie.hpp"

#include <algorithm>

#include "graph/tbatch.hpp"
#include "models/fusion_catalog.hpp"
#include "tensor/ops.hpp"

namespace dgnn::models {

Jodie::Jodie(const data::InteractionDataset& dataset, JodieConfig config)
    : dataset_(dataset), config_(config)
{
    Rng rng(config_.seed);
    const int64_t d = config_.embed_dim;
    user_embeddings_ = std::make_unique<nn::Embedding>(dataset_.spec.num_users, d, rng);
    item_embeddings_ = std::make_unique<nn::Embedding>(dataset_.spec.num_items, d, rng);
    user_last_update_.assign(static_cast<size_t>(dataset_.spec.num_users), 0.0);
    // User RNN consumes the interacted item's embedding; item RNN the user's.
    user_rnn_ = std::make_unique<nn::RnnCell>(d, d, rng);
    item_rnn_ = std::make_unique<nn::RnnCell>(d, d, rng);
    item_predictor_ = std::make_unique<nn::Linear>(d, d, rng);
    projection_w_ = init::Uniform(Shape({d}), rng, -0.01f, 0.01f);
}

int64_t
Jodie::WeightBytes() const
{
    return user_rnn_->ParameterBytes() + item_rnn_->ParameterBytes() +
           item_predictor_->ParameterBytes() + projection_w_.NumBytes();
}

RunResult
Jodie::RunInference(sim::Runtime& runtime, const RunConfig& run)
{
    ValidateRunConfig(runtime, run);
    core::Profiler profiler(runtime);
    const int64_t d = config_.embed_dim;
    // Device-resident embedding cache keyed by global node id (users and
    // items share one id space). Hits keep rows on the device across
    // chunks; updates mark them dirty and write back on eviction/flush.
    cache::DeviceCache embedding_cache =
        MakeRunCache(runtime, run, CacheRowBytes());

    sim::SimTime warm_one = 0.0;
    sim::SimTime warm_run = 0.0;
    if (run.include_warmup) {
        warm_one = runtime.EnsureWarm(WeightBytes()).TotalUs();
        warm_run = runtime.RunAllocWarmup(run.batch_size * d * 4).TotalUs();
    }

    sim::DeviceBuffer weights = runtime.AllocDevice(WeightBytes(), "jodie_weights");
    // The cache's device footprint, capped at the full embedding tables:
    // cached capacity is not free device memory.
    sim::DeviceBuffer cache_buf;
    if (embedding_cache.Enabled()) {
        cache_buf = runtime.AllocDevice(
            std::min(embedding_cache.CapacityRows(), dataset_.NumNodes()) *
                CacheRowBytes(),
            "jodie_embedding_cache");
    }

    runtime.ResetMeasurementWindow();

    const int64_t total_events =
        run.max_events > 0 ? std::min(run.max_events, dataset_.stream.NumEvents())
                           : dataset_.stream.NumEvents();
    const int64_t bs = run.batch_size;
    Checksum checksum;
    int64_t iterations = 0;

    for (int64_t begin = 0; begin < total_events; begin += bs) {
        const int64_t end = std::min(begin + bs, total_events);
        const int64_t chunk_events = end - begin;

        // Unique endpoints of the chunk, in event order (cache keys).
        std::vector<int64_t> chunk_nodes;
        if (embedding_cache.Enabled()) {
            for (int64_t i = begin; i < end; ++i) {
                const auto& e = dataset_.stream.Event(i);
                chunk_nodes.push_back(e.src);
                chunk_nodes.push_back(e.dst);
            }
            cache::SortUnique(chunk_nodes);
        }

        // --- Load Embedding: t-batch creation (CPU) + embeddings H2D.
        std::vector<graph::TBatch> tbatches;
        {
            core::ProfileScope scope(profiler, "Load Embedding");
            ChargeBatchOverhead(runtime);
            if (config_.use_tbatch) {
                tbatches = graph::BuildTBatches(dataset_.stream, begin, end);
            } else {
                // Ablation: one event per "batch" — fully sequential RNNs.
                tbatches.resize(static_cast<size_t>(end - begin));
                for (int64_t i = begin; i < end; ++i) {
                    tbatches[static_cast<size_t>(i - begin)].event_indices = {i};
                }
            }
            sim::KernelDesc build;
            build.name = "tbatch_build";
            build.flops = chunk_events * 8;
            build.bytes = chunk_events * 128;  // hash-map traffic per event
            build.parallel_items = 1;
            build.irregular = true;
            runtime.RunHost(build);
            // Embedding rows for every event endpoint. Cached: unique rows
            // come through the device cache (hits stay resident across
            // chunks — LastFM-style streams revisit the same users/items).
            if (embedding_cache.Enabled()) {
                // Every gathered row is rewritten by the RNN updates:
                // dirty at gather time, so same-chunk evictions still owe
                // their write-back.
                const cache::GatherResult g =
                    embedding_cache.Gather(chunk_nodes, /*mark_dirty=*/true);
                runtime.GatherToDevice(g.hit_rows, g.miss_rows, CacheRowBytes(),
                                       "jodie_embeddings");
                runtime.WriteBackToHost(g.writeback_rows, CacheRowBytes(),
                                       "jodie_embeddings");
            } else {
                runtime.CopyToDevice(2 * chunk_events * d * 4,
                                     "jodie_embeddings_h2d");
            }
            sim::DeviceBuffer batch_buf =
                runtime.AllocDevice(2 * chunk_events * d * 4, "jodie_chunk");
            // Buffer freed at scope end: JODIE reuses one staging area.
        }

        // --- Per t-batch sequential processing (mutually recursive RNNs).
        for (const graph::TBatch& tb : tbatches) {
            const int64_t m = static_cast<int64_t>(tb.event_indices.size());
            const int64_t cap =
                run.numeric_cap > 0 ? std::min<int64_t>(run.numeric_cap, m) : m;

            // Gather the real rows for the numeric path.
            std::vector<int64_t> users;
            std::vector<int64_t> items;
            std::vector<float> deltas;
            for (int64_t i = 0; i < cap; ++i) {
                const auto& e =
                    dataset_.stream.Event(tb.event_indices[static_cast<size_t>(i)]);
                users.push_back(e.src);
                items.push_back(e.dst - dataset_.ItemOffset());
                deltas.push_back(static_cast<float>(
                    e.time - user_last_update_[static_cast<size_t>(e.src)]));
            }
            Tensor u = user_embeddings_->Lookup(users);
            Tensor v = item_embeddings_->Lookup(items);

            // Hot-chain fusion (run.fuse_kernels): the whole t-batch —
            // project + predict + both RNN updates — collapses into ONE
            // launch (jodie_tbatch_fused) issued in the update phase, so
            // the early descriptors outlive their phase scopes.
            sim::KernelDesc proj;
            sim::KernelDesc pred;

            // [Project User Embedding]: u' = (1 + Δt*w) ⊙ u.
            Tensor projected(u.GetShape());
            {
                core::ProfileScope scope(profiler, "Project User Embedding");
                for (int64_t i = 0; i < cap; ++i) {
                    for (int64_t j = 0; j < d; ++j) {
                        projected.At(i, j) =
                            (1.0f + deltas[static_cast<size_t>(i)] *
                                        projection_w_.At(j)) *
                            u.At(i, j);
                    }
                }
                proj.name = "project_user";
                proj.flops = 3 * m * d;
                proj.bytes = 2 * m * d * 4;
                proj.parallel_items = m * d;
                if (!run.fuse_kernels) {
                    runtime.Launch(proj);
                }
            }

            // [Predict Item Embedding]: linear head on projected users.
            Tensor predicted;
            {
                core::ProfileScope scope(profiler, "Predict Item Embedding");
                predicted = item_predictor_->Forward(projected);
                pred.name = "predict_item";
                pred.flops = item_predictor_->ForwardFlops(m);
                pred.bytes = 2 * m * d * 4 + item_predictor_->ParameterBytes();
                pred.parallel_items = m * d;
                if (!run.fuse_kernels) {
                    runtime.Launch(pred);
                }
            }

            // [Update Embedding]: mutually-recursive user and item RNNs.
            {
                core::ProfileScope scope(profiler, "Update Embedding");
                const Tensor new_u = user_rnn_->Forward(v, u);
                const Tensor new_v = item_rnn_->Forward(u, v);
                user_embeddings_->Update(users, new_u);
                item_embeddings_->Update(items, new_v);
                checksum.Add(predicted);
                checksum.Add(new_u);

                std::vector<sim::KernelDesc> rnns;
                for (const nn::RnnCell* cell : {user_rnn_.get(), item_rnn_.get()}) {
                    sim::KernelDesc rnn;
                    rnn.name = "rnn_update";
                    rnn.flops = cell->ForwardFlops(m);
                    rnn.bytes = 3 * m * d * 4 + cell->ParameterBytes();
                    rnn.parallel_items = m * d;
                    rnns.push_back(rnn);
                }
                if (run.fuse_kernels) {
                    // The whole t-batch as one launch: the projected user
                    // rows feed the predictor on-chip; the RNNs read the
                    // already-gathered u/v rows (boundary bytes 0). Tiny
                    // t-batches are exactly the paper's launch-bound cell:
                    // 4 launches -> 1.
                    runtime.Launch(sim::Collapse(MakeRegisteredChain(
                        "jodie_tbatch_fused", {proj, pred, rnns[0], rnns[1]},
                        {m * d * 4, 0, 0})));
                } else {
                    runtime.Launch(rnns[0]);
                    runtime.Launch(rnns[1]);
                }
                // The next t-batch depends on these updates: hard sync.
                (void)runtime.Synchronize();
            }

            for (int64_t i = 0; i < cap; ++i) {
                const auto& e =
                    dataset_.stream.Event(tb.event_indices[static_cast<size_t>(i)]);
                user_last_update_[static_cast<size_t>(e.src)] = e.time;
            }
        }

        // --- Updated embeddings D2H (Fig 5a final step). Cached: the
        // updated rows stay device-resident (marked dirty at gather time)
        // and write back only on eviction or the end-of-run flush.
        if (!embedding_cache.Enabled()) {
            core::ProfileScope scope(profiler, "Update Embedding");
            runtime.CopyToHost(2 * chunk_events * d * 4,
                               "jodie_embeddings_d2h");
        }
        ++iterations;
    }

    if (embedding_cache.Enabled()) {
        runtime.WriteBackToHost(embedding_cache.FlushDirty(), CacheRowBytes(),
                                "jodie_embeddings_flush");
    }

    RunResult result =
        CollectRunStats(runtime, Name(), dataset_.spec.name, iterations);
    result.warmup_one_time_us = warm_one;
    result.warmup_per_run_us = warm_run;
    result.output_checksum = checksum.Value();
    result.cache_stats = embedding_cache.Stats();
    return result;
}

}  // namespace dgnn::models
