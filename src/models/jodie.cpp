#include "models/jodie.hpp"

#include <algorithm>

#include "graph/tbatch.hpp"
#include "tensor/ops.hpp"

namespace dgnn::models {

Jodie::Jodie(const data::InteractionDataset& dataset, JodieConfig config)
    : dataset_(dataset), config_(config)
{
    Rng rng(config_.seed);
    const int64_t d = config_.embed_dim;
    user_embeddings_ = std::make_unique<nn::Embedding>(dataset_.spec.num_users, d, rng);
    item_embeddings_ = std::make_unique<nn::Embedding>(dataset_.spec.num_items, d, rng);
    user_last_update_.assign(static_cast<size_t>(dataset_.spec.num_users), 0.0);
    // User RNN consumes the interacted item's embedding; item RNN the user's.
    user_rnn_ = std::make_unique<nn::RnnCell>(d, d, rng);
    item_rnn_ = std::make_unique<nn::RnnCell>(d, d, rng);
    item_predictor_ = std::make_unique<nn::Linear>(d, d, rng);
    projection_w_ = init::Uniform(Shape({d}), rng, -0.01f, 0.01f);
}

int64_t
Jodie::WeightBytes() const
{
    return user_rnn_->ParameterBytes() + item_rnn_->ParameterBytes() +
           item_predictor_->ParameterBytes() + projection_w_.NumBytes();
}

RunResult
Jodie::RunInference(sim::Runtime& runtime, const RunConfig& run)
{
    ValidateRunConfig(runtime, run);
    core::Profiler profiler(runtime);
    const int64_t d = config_.embed_dim;

    sim::SimTime warm_one = 0.0;
    sim::SimTime warm_run = 0.0;
    if (run.include_warmup) {
        warm_one = runtime.EnsureWarm(WeightBytes()).TotalUs();
        warm_run = runtime.RunAllocWarmup(run.batch_size * d * 4).TotalUs();
    }

    sim::DeviceBuffer weights = runtime.AllocDevice(WeightBytes(), "jodie_weights");

    runtime.ResetMeasurementWindow();

    const int64_t total_events =
        run.max_events > 0 ? std::min(run.max_events, dataset_.stream.NumEvents())
                           : dataset_.stream.NumEvents();
    const int64_t bs = run.batch_size;
    Checksum checksum;
    int64_t iterations = 0;

    for (int64_t begin = 0; begin < total_events; begin += bs) {
        const int64_t end = std::min(begin + bs, total_events);
        const int64_t chunk_events = end - begin;

        // --- Load Embedding: t-batch creation (CPU) + embeddings H2D.
        std::vector<graph::TBatch> tbatches;
        {
            core::ProfileScope scope(profiler, "Load Embedding");
            ChargeBatchOverhead(runtime);
            if (config_.use_tbatch) {
                tbatches = graph::BuildTBatches(dataset_.stream, begin, end);
            } else {
                // Ablation: one event per "batch" — fully sequential RNNs.
                tbatches.resize(static_cast<size_t>(end - begin));
                for (int64_t i = begin; i < end; ++i) {
                    tbatches[static_cast<size_t>(i - begin)].event_indices = {i};
                }
            }
            sim::KernelDesc build;
            build.name = "tbatch_build";
            build.flops = chunk_events * 8;
            build.bytes = chunk_events * 128;  // hash-map traffic per event
            build.parallel_items = 1;
            build.irregular = true;
            runtime.RunHost(build);
            // Embedding rows for every event endpoint.
            runtime.CopyToDevice(2 * chunk_events * d * 4, "jodie_embeddings_h2d");
            sim::DeviceBuffer batch_buf =
                runtime.AllocDevice(2 * chunk_events * d * 4, "jodie_chunk");
            // Buffer freed at scope end: JODIE reuses one staging area.
        }

        // --- Per t-batch sequential processing (mutually recursive RNNs).
        for (const graph::TBatch& tb : tbatches) {
            const int64_t m = static_cast<int64_t>(tb.event_indices.size());
            const int64_t cap =
                run.numeric_cap > 0 ? std::min<int64_t>(run.numeric_cap, m) : m;

            // Gather the real rows for the numeric path.
            std::vector<int64_t> users;
            std::vector<int64_t> items;
            std::vector<float> deltas;
            for (int64_t i = 0; i < cap; ++i) {
                const auto& e =
                    dataset_.stream.Event(tb.event_indices[static_cast<size_t>(i)]);
                users.push_back(e.src);
                items.push_back(e.dst - dataset_.ItemOffset());
                deltas.push_back(static_cast<float>(
                    e.time - user_last_update_[static_cast<size_t>(e.src)]));
            }
            Tensor u = user_embeddings_->Lookup(users);
            Tensor v = item_embeddings_->Lookup(items);

            // [Project User Embedding]: u' = (1 + Δt*w) ⊙ u.
            Tensor projected(u.GetShape());
            {
                core::ProfileScope scope(profiler, "Project User Embedding");
                for (int64_t i = 0; i < cap; ++i) {
                    for (int64_t j = 0; j < d; ++j) {
                        projected.At(i, j) =
                            (1.0f + deltas[static_cast<size_t>(i)] *
                                        projection_w_.At(j)) *
                            u.At(i, j);
                    }
                }
                sim::KernelDesc proj;
                proj.name = "project_user";
                proj.flops = 3 * m * d;
                proj.bytes = 2 * m * d * 4;
                proj.parallel_items = m * d;
                runtime.Launch(proj);
            }

            // [Predict Item Embedding]: linear head on projected users.
            Tensor predicted;
            {
                core::ProfileScope scope(profiler, "Predict Item Embedding");
                predicted = item_predictor_->Forward(projected);
                sim::KernelDesc pred;
                pred.name = "predict_item";
                pred.flops = item_predictor_->ForwardFlops(m);
                pred.bytes = 2 * m * d * 4 + item_predictor_->ParameterBytes();
                pred.parallel_items = m * d;
                runtime.Launch(pred);
            }

            // [Update Embedding]: mutually-recursive user and item RNNs.
            {
                core::ProfileScope scope(profiler, "Update Embedding");
                const Tensor new_u = user_rnn_->Forward(v, u);
                const Tensor new_v = item_rnn_->Forward(u, v);
                user_embeddings_->Update(users, new_u);
                item_embeddings_->Update(items, new_v);
                checksum.Add(predicted);
                checksum.Add(new_u);

                for (const nn::RnnCell* cell : {user_rnn_.get(), item_rnn_.get()}) {
                    sim::KernelDesc rnn;
                    rnn.name = "rnn_update";
                    rnn.flops = cell->ForwardFlops(m);
                    rnn.bytes = 3 * m * d * 4 + cell->ParameterBytes();
                    rnn.parallel_items = m * d;
                    runtime.Launch(rnn);
                }
                // The next t-batch depends on these updates: hard sync.
                runtime.Synchronize();
            }

            for (int64_t i = 0; i < cap; ++i) {
                const auto& e =
                    dataset_.stream.Event(tb.event_indices[static_cast<size_t>(i)]);
                user_last_update_[static_cast<size_t>(e.src)] = e.time;
            }
        }

        // --- Updated embeddings D2H (Fig 5a final step).
        {
            core::ProfileScope scope(profiler, "Update Embedding");
            runtime.CopyToHost(2 * chunk_events * d * 4, "jodie_embeddings_d2h");
        }
        ++iterations;
    }

    RunResult result =
        CollectRunStats(runtime, Name(), dataset_.spec.name, iterations);
    result.warmup_one_time_us = warm_one;
    result.warmup_per_run_us = warm_run;
    result.output_checksum = checksum.Value();
    return result;
}

}  // namespace dgnn::models
