#include "models/moldgnn.hpp"

#include <algorithm>

#include "tensor/ops.hpp"

namespace dgnn::models {

nn::SparseMatrix
DenseToNormalizedCsr(const Tensor& adjacency)
{
    DGNN_CHECK(adjacency.Rank() == 2 && adjacency.Dim(0) == adjacency.Dim(1),
               "adjacency must be square, got ", adjacency.GetShape().ToString());
    nn::SparseMatrix m;
    m.n = adjacency.Dim(0);
    m.row_offsets.assign(static_cast<size_t>(m.n) + 1, 0);
    for (int64_t i = 0; i < m.n; ++i) {
        for (int64_t j = 0; j < m.n; ++j) {
            if (adjacency.At(i, j) != 0.0f) {
                m.col_indices.push_back(j);
                m.values.push_back(adjacency.At(i, j));
            }
        }
        m.row_offsets[static_cast<size_t>(i) + 1] =
            static_cast<int64_t>(m.col_indices.size());
    }
    nn::RowNormalize(m);
    return m;
}

MolDgnn::MolDgnn(const data::MolecularDataset& dataset, MolDgnnConfig config)
    : dataset_(dataset), config_(config)
{
    Rng rng(config_.seed);
    const int64_t atoms = dataset_.spec.num_atoms;
    gcn_ = std::make_unique<nn::GcnLayer>(dataset_.spec.atom_feature_dim,
                                          config_.gcn_dim, rng);
    // LSTM consumes a flattened per-frame graph embedding.
    lstm_ = std::make_unique<nn::LstmCell>(config_.gcn_dim, config_.lstm_dim, rng);
    // FFN maps the LSTM state to a predicted adjacency matrix.
    ffn_ = std::make_unique<nn::Mlp>(
        std::vector<int64_t>{config_.lstm_dim, 2 * config_.lstm_dim, atoms * atoms},
        rng);
}

int64_t
MolDgnn::WeightBytes() const
{
    return gcn_->ParameterBytes() + lstm_->ParameterBytes() + ffn_->ParameterBytes();
}

RunResult
MolDgnn::RunInference(sim::Runtime& runtime, const RunConfig& run)
{
    ValidateRunConfig(runtime, run);
    NnExecutor exec(runtime);
    core::Profiler profiler(runtime);
    const int64_t atoms = dataset_.spec.num_atoms;
    const int64_t frame_bytes = dataset_.FrameBytes();

    sim::SimTime warm_one = 0.0;
    sim::SimTime warm_run = 0.0;
    if (run.include_warmup) {
        warm_one = runtime.EnsureWarm(WeightBytes()).TotalUs();
        warm_run = runtime.RunAllocWarmup(run.batch_size * frame_bytes).TotalUs();
    }

    sim::DeviceBuffer weights = runtime.AllocDevice(WeightBytes(), "moldgnn_weights");

    runtime.ResetMeasurementWindow();

    const int64_t total_frames =
        run.max_events > 0 ? std::min<int64_t>(run.max_events, dataset_.NumFrames())
                           : dataset_.NumFrames();
    const int64_t bs = run.batch_size;
    Checksum checksum;
    int64_t iterations = 0;

    for (int64_t begin = 0; begin < total_frames; begin += bs) {
        const int64_t end = std::min(begin + bs, total_frames);
        const int64_t nf = end - begin;

        // --- Memory Copy: concatenate + H2D all adjacency matrices.
        sim::DeviceBuffer batch_buf =
            runtime.AllocDevice(nf * frame_bytes, "moldgnn_batch");
        {
            core::ProfileScope scope(profiler, "Memory Copy");
            ChargeBatchOverhead(runtime);
            sim::KernelDesc concat;
            concat.name = "concat_adjacency";
            concat.flops = 0;
            concat.bytes = 2 * nf * frame_bytes;
            concat.parallel_items = 1;
            runtime.RunHost(concat);
            // The reference implementation moves every frame's adjacency
            // (plus its feature view) as an individual pageable copy; the
            // per-transfer latency is what makes MolDGNN movement-bound.
            for (int64_t f = 0; f < nf; ++f) {
                runtime.CopyToDevice(frame_bytes +
                                         dataset_.atom_features.NumBytes(),
                                     "adjacency_h2d");
            }
        }

        const int64_t cap =
            run.numeric_cap > 0 ? std::min<int64_t>(run.numeric_cap, nf) : nf;

        // --- GCN: per-frame graph convolution (batched cost, capped math).
        std::vector<Tensor> frame_embeddings;
        {
            core::ProfileScope scope(profiler, "GCN");
            for (int64_t f = 0; f < cap; ++f) {
                const nn::SparseMatrix a = DenseToNormalizedCsr(
                    dataset_.adjacency[static_cast<size_t>(begin + f)]);
                const Tensor h = gcn_->Forward(a, dataset_.atom_features);
                frame_embeddings.push_back(
                    ops::MeanRows(h).Reshape(Shape({1, config_.gcn_dim})));
            }
            sim::KernelDesc gcn;
            gcn.name = "gcn_frames";
            gcn.flops = nf * gcn_->ForwardFlops(atoms, atoms * 4);
            gcn.bytes = nf * (frame_bytes + atoms * config_.gcn_dim * 4);
            gcn.parallel_items = nf * atoms * config_.gcn_dim;
            gcn.irregular = true;
            runtime.Launch(gcn);
            (void)runtime.Synchronize();
        }

        // --- LSTM: one fused (cuDNN-style) kernel per batch; the sequence
        // is processed step-by-step inside the kernel, so its parallelism is
        // limited to the hidden width — the temporal data dependency.
        nn::LstmState state = lstm_->InitialState(1);
        {
            core::ProfileScope scope(profiler, "LSTM");
            for (int64_t f = 0; f < cap; ++f) {
                state = lstm_->Forward(
                    frame_embeddings[static_cast<size_t>(f)], state);
            }
            sim::KernelDesc seq;
            seq.name = "lstm_sequence";
            seq.flops = nf * lstm_->ForwardFlops(1);
            seq.bytes = nf * (config_.gcn_dim + 2 * config_.lstm_dim) * 4 +
                        lstm_->ParameterBytes();
            seq.parallel_items = config_.lstm_dim;
            runtime.Launch(seq);
            (void)runtime.Synchronize();
        }

        // --- FFN: predict the next adjacency matrix.
        {
            core::ProfileScope scope(profiler, "FFN");
            const Tensor pred = ffn_->Forward(state.h);
            checksum.Add(ops::Sigmoid(pred));
            sim::KernelDesc ffn;
            ffn.name = "ffn_predict";
            ffn.flops = ffn_->ForwardFlops(nf);
            ffn.bytes = nf * (config_.lstm_dim + atoms * atoms) * 4 +
                        ffn_->ParameterBytes();
            ffn.parallel_items = nf * atoms * atoms;
            runtime.Launch(ffn);
            (void)runtime.Synchronize();
        }

        // --- Memory Copy: predicted (symmetric) matrices D2H (Fig 5c).
        {
            core::ProfileScope scope(profiler, "Memory Copy");
            for (int64_t f = 0; f < nf; ++f) {
                runtime.CopyToHost(frame_bytes, "predictions_d2h");
            }
        }
        ++iterations;
    }

    RunResult result =
        CollectRunStats(runtime, Name(), dataset_.spec.name, iterations);
    result.warmup_one_time_us = warm_one;
    result.warmup_per_run_us = warm_run;
    result.output_checksum = checksum.Value();
    return result;
}

}  // namespace dgnn::models
