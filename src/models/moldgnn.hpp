#pragma once

/// @file
/// MolDGNN (Ashby & Bilbrey, 2021), inference path as profiled by the paper
/// (Figs 3c, 5c, 6d, 7b; Table 2):
///
///   per batch of molecular-graph frames:
///     [Memory Copy]  all adjacency matrices of the batch concatenated on
///                    CPU and moved H2D (the dominant cost: 80-90 %)
///     [GCN]          graph convolution per frame (tiny: 19-atom graphs)
///     [LSTM]         sequential LSTM over the frame sequence
///     [FFN]          MLP predicting the next adjacency matrix
///     [Memory Copy]  predicted adjacency matrices D2H
///
/// Compute per frame is tiny while the adjacency traffic is large, so the
/// model is data-movement-bound at every batch size (Fig 7b).

#include <memory>
#include <vector>

#include "data/molecular_gen.hpp"
#include "models/dgnn_model.hpp"

namespace dgnn::models {

/// MolDGNN hyper-parameters.
struct MolDgnnConfig {
    int64_t gcn_dim = 32;
    int64_t lstm_dim = 64;
    uint64_t seed = 19;
};

/// MolDGNN model bound to one molecular trajectory.
class MolDgnn : public DgnnModel {
  public:
    MolDgnn(const data::MolecularDataset& dataset, MolDgnnConfig config);

    std::string Name() const override { return "MolDGNN"; }

    RunResult RunInference(sim::Runtime& runtime, const RunConfig& config) override;

    int64_t WeightBytes() const;

  private:
    const data::MolecularDataset& dataset_;
    MolDgnnConfig config_;
    std::unique_ptr<nn::GcnLayer> gcn_;
    std::unique_ptr<nn::LstmCell> lstm_;
    std::unique_ptr<nn::Mlp> ffn_;
};

/// Dense adjacency [n, n] -> row-normalized CSR.
nn::SparseMatrix DenseToNormalizedCsr(const Tensor& adjacency);

}  // namespace dgnn::models
