#pragma once

/// @file
/// Analysis utilities over the simulated trace — the Nsight-Systems side of
/// the methodology: utilization timelines, per-device activity, transfer
/// accounting, and chrome-trace export for visual inspection.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace dgnn::core {

/// One bin of a utilization timeline.
struct UtilizationSample {
    sim::SimTime t_us = 0.0;   ///< Bin start time.
    double utilization_pct = 0.0;
};

/// Utilization of @p device over [t0, t1) in fixed bins. By default this is
/// the nvidia-smi-style kernel-residency fraction (what the paper plots);
/// set @p occupancy_weighted for SM-level utilization.
std::vector<UtilizationSample> UtilizationTimeline(const sim::Trace& trace,
                                                   const std::string& device,
                                                   sim::SimTime t0, sim::SimTime t1,
                                                   sim::SimTime bin_us,
                                                   bool occupancy_weighted = false);

/// Sum of kernel durations on @p device within [t0, t1).
sim::SimTime DeviceBusyTime(const sim::Trace& trace, const std::string& device,
                            sim::SimTime t0, sim::SimTime t1);

/// Bytes moved in @p direction within [t0, t1).
int64_t TransferredBytes(const sim::Trace& trace, sim::CopyDirection direction,
                         sim::SimTime t0, sim::SimTime t1);

/// Total transfer (PCIe-busy) time within [t0, t1).
sim::SimTime TransferBusyTime(const sim::Trace& trace, sim::SimTime t0,
                              sim::SimTime t1);

/// Number of kernel events on @p device within [t0, t1).
int64_t KernelCount(const sim::Trace& trace, const std::string& device,
                    sim::SimTime t0, sim::SimTime t1);

/// Mean kernel occupancy on @p device within [t0, t1); 0 when no kernels.
double MeanKernelOccupancy(const sim::Trace& trace, const std::string& device,
                           sim::SimTime t0, sim::SimTime t1);

/// Serializes the trace to chrome://tracing JSON ("traceEvents" array).
std::string ToChromeTraceJson(const sim::Trace& trace);

}  // namespace dgnn::core
