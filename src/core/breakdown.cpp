#include "core/breakdown.hpp"

#include <algorithm>

namespace dgnn::core {

Breakdown
Breakdown::FromRuntime(const sim::Runtime& runtime, bool fold_small,
                       double min_share_pct)
{
    Breakdown b;
    for (const auto& [category, time_us] : runtime.CategoryTimes()) {
        b.total_us_ += time_us;
    }
    sim::SimTime folded = 0.0;
    for (const auto& [category, time_us] : runtime.CategoryTimes()) {
        const double share =
            b.total_us_ > 0.0 ? 100.0 * time_us / b.total_us_ : 0.0;
        if (fold_small && share < min_share_pct) {
            folded += time_us;
            continue;
        }
        b.entries_.push_back(BreakdownEntry{category, time_us, share});
    }
    if (folded > 0.0) {
        b.entries_.push_back(BreakdownEntry{
            "Others", folded, b.total_us_ > 0.0 ? 100.0 * folded / b.total_us_ : 0.0});
    }
    std::sort(b.entries_.begin(), b.entries_.end(),
              [](const BreakdownEntry& x, const BreakdownEntry& y) {
                  return x.time_us > y.time_us;
              });
    return b;
}

double
Breakdown::SharePct(const std::string& category) const
{
    for (const BreakdownEntry& e : entries_) {
        if (e.category == category) {
            return e.share_pct;
        }
    }
    return 0.0;
}

sim::SimTime
Breakdown::TimeUs(const std::string& category) const
{
    for (const BreakdownEntry& e : entries_) {
        if (e.category == category) {
            return e.time_us;
        }
    }
    return 0.0;
}

std::vector<std::string>
Breakdown::Categories() const
{
    std::vector<std::string> names;
    names.reserve(entries_.size());
    for (const BreakdownEntry& e : entries_) {
        names.push_back(e.category);
    }
    return names;
}

}  // namespace dgnn::core
