#pragma once

/// @file
/// The four bottleneck analyzers of the paper (section 4): temporal data
/// dependency, workload imbalance, data movement, and GPU warm-up. Each
/// consumes the runtime/trace of a measured run and emits a quantitative
/// report; BottleneckReport bundles all four with severity grading.

#include <cstdint>
#include <string>

#include "core/breakdown.hpp"
#include "sim/runtime.hpp"
#include "sim/warmup.hpp"

namespace dgnn::core {

/// How strongly a bottleneck manifests in a run.
enum class Severity {
    kNone,
    kModerate,
    kSevere,
};

const char* ToString(Severity severity);

/// Bottleneck 1: temporal data dependency -> low parallelism / utilization.
struct TemporalDependencyReport {
    double compute_utilization_pct = 0.0;   ///< Kernel-residency fraction.
    double weighted_utilization_pct = 0.0;  ///< SM-occupancy-weighted util.
    double mean_kernel_occupancy = 0.0;     ///< Avg per-kernel occupancy.
    int64_t kernel_count = 0;
    sim::SimTime mean_kernel_us = 0.0;
    /// Fraction of device-kernel time that is launch overhead.
    double launch_overhead_share_pct = 0.0;
    Severity severity = Severity::kNone;
};

/// Bottleneck 2: CPU/GPU workload imbalance (sampling-bound pipelines).
struct WorkloadImbalanceReport {
    sim::SimTime cpu_busy_us = 0.0;
    sim::SimTime gpu_busy_us = 0.0;
    /// Share of elapsed time the host spent in CPU-side preprocessing.
    double cpu_share_pct = 0.0;
    /// Share of elapsed time the device had any kernel resident.
    double gpu_busy_share_pct = 0.0;
    /// cpu_busy / gpu_busy (>1: CPU-bound, GPU starving).
    double imbalance_ratio = 0.0;
    Severity severity = Severity::kNone;
};

/// Bottleneck 3: CPU<->GPU data movement.
struct DataMovementReport {
    int64_t h2d_bytes = 0;
    int64_t d2h_bytes = 0;
    int64_t transfer_count = 0;
    sim::SimTime transfer_time_us = 0.0;
    /// Share of elapsed time spent on PCIe.
    double transfer_share_pct = 0.0;
    Severity severity = Severity::kNone;
};

/// Bottleneck 4: GPU warm-up.
struct WarmupBottleneckReport {
    sim::OneTimeWarmup one_time;
    sim::SimTime per_run_alloc_us = 0.0;
    sim::SimTime steady_state_iteration_us = 0.0;
    /// one_time.TotalUs() / steady-state iteration time.
    double one_time_vs_iteration = 0.0;
    Severity severity = Severity::kNone;
};

/// All four analyses for one run.
struct BottleneckReport {
    std::string model;
    std::string config;
    sim::SimTime elapsed_us = 0.0;
    TemporalDependencyReport temporal_dependency;
    WorkloadImbalanceReport workload_imbalance;
    DataMovementReport data_movement;
    WarmupBottleneckReport warmup;

    /// Renders the full report as human-readable text.
    std::string ToText() const;
};

/// Runs analyzer 1 over the current measurement window.
TemporalDependencyReport AnalyzeTemporalDependency(const sim::Runtime& runtime);

/// Runs analyzer 2 over the current measurement window.
WorkloadImbalanceReport AnalyzeWorkloadImbalance(const sim::Runtime& runtime);

/// Runs analyzer 3 over the current measurement window.
DataMovementReport AnalyzeDataMovement(const sim::Runtime& runtime);

/// Runs analyzer 4 given the measured steady-state iteration time.
WarmupBottleneckReport AnalyzeWarmup(const sim::Runtime& runtime,
                                     sim::SimTime per_run_alloc_us,
                                     sim::SimTime steady_state_iteration_us);

/// Convenience: all four analyzers at once.
BottleneckReport AnalyzeAll(const sim::Runtime& runtime, const std::string& model,
                            const std::string& config,
                            sim::SimTime per_run_alloc_us = 0.0,
                            sim::SimTime steady_state_iteration_us = 0.0);

}  // namespace dgnn::core
