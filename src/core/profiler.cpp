#include "core/profiler.hpp"

#include "support/check.hpp"

namespace dgnn::core {

void
Profiler::Begin(const std::string& name)
{
    open_.push_back(OpenRange{name, runtime_.Now()});
}

void
Profiler::End()
{
    DGNN_CHECK(!open_.empty(), "Profiler::End without matching Begin");
    const OpenRange top = open_.back();
    open_.pop_back();
    ProfileRange r;
    r.name = top.name;
    r.start_us = top.start_us;
    r.end_us = runtime_.Now();
    r.depth = static_cast<int>(open_.size());
    ranges_.push_back(std::move(r));
}

std::map<std::string, sim::SimTime>
Profiler::RangeTotals() const
{
    std::map<std::string, sim::SimTime> totals;
    for (const ProfileRange& r : ranges_) {
        totals[r.name] += r.Duration();
    }
    return totals;
}

void
Profiler::Clear()
{
    DGNN_CHECK(open_.empty(), "Profiler::Clear with open ranges");
    ranges_.clear();
}

}  // namespace dgnn::core
