#pragma once

/// @file
/// Minimal aligned ASCII table writer used by every benchmark harness so
/// that regenerated paper tables/figures print consistently.

#include <string>
#include <vector>

namespace dgnn::core {

/// Builds and renders a column-aligned text table.
class TableWriter {
  public:
    explicit TableWriter(std::vector<std::string> header);

    /// Appends a data row; must match the header width.
    void AddRow(std::vector<std::string> row);

    /// Convenience: formats doubles with @p precision.
    static std::string Num(double value, int precision = 2);

    /// Convenience: formats "12.3 (45%)" cells common in the paper's Fig 7.
    static std::string TimeWithShare(double time_ms, double share_pct);

    /// Renders the table with a separator under the header.
    std::string ToString() const;

    size_t RowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace dgnn::core
