#include "core/bottleneck.hpp"

#include <iomanip>
#include <sstream>

#include "core/trace_analysis.hpp"
#include "support/check.hpp"

namespace dgnn::core {

const char*
ToString(Severity severity)
{
    switch (severity) {
      case Severity::kNone:
        return "none";
      case Severity::kModerate:
        return "moderate";
      case Severity::kSevere:
        return "SEVERE";
    }
    return "?";
}

TemporalDependencyReport
AnalyzeTemporalDependency(const sim::Runtime& runtime)
{
    TemporalDependencyReport r;
    const sim::Device& dev = runtime.ComputeDevice();
    const sim::SimTime elapsed = runtime.ElapsedInWindow();

    r.compute_utilization_pct = dev.UtilizationPct(elapsed);
    r.weighted_utilization_pct = dev.WeightedUtilizationPct(elapsed);
    r.kernel_count = dev.KernelCount();
    if (r.kernel_count > 0) {
        r.mean_kernel_occupancy =
            dev.BusyTime() > 0.0 ? dev.WeightedBusyTime() / dev.BusyTime() : 0.0;
        r.mean_kernel_us = dev.BusyTime() / static_cast<double>(r.kernel_count);
        const sim::SimTime launch_total =
            dev.Spec().launch_overhead_us * static_cast<double>(r.kernel_count);
        r.launch_overhead_share_pct =
            100.0 * launch_total / (dev.BusyTime() + launch_total);
    }
    if (r.compute_utilization_pct < 2.0) {
        r.severity = Severity::kSevere;
    } else if (r.compute_utilization_pct < 20.0) {
        r.severity = Severity::kModerate;
    }
    return r;
}

WorkloadImbalanceReport
AnalyzeWorkloadImbalance(const sim::Runtime& runtime)
{
    WorkloadImbalanceReport r;
    const sim::SimTime elapsed = runtime.ElapsedInWindow();
    r.cpu_busy_us = runtime.Cpu().BusyTime();
    r.gpu_busy_us = runtime.HasGpu() ? runtime.Gpu().BusyTime() : 0.0;
    if (elapsed > 0.0) {
        r.cpu_share_pct = 100.0 * r.cpu_busy_us / elapsed;
        r.gpu_busy_share_pct = 100.0 * r.gpu_busy_us / elapsed;
    }
    r.imbalance_ratio = r.gpu_busy_us > 0.0 ? r.cpu_busy_us / r.gpu_busy_us : 0.0;
    if (runtime.HasGpu()) {
        if (r.imbalance_ratio > 4.0) {
            r.severity = Severity::kSevere;
        } else if (r.imbalance_ratio > 1.5) {
            r.severity = Severity::kModerate;
        }
    }
    return r;
}

DataMovementReport
AnalyzeDataMovement(const sim::Runtime& runtime)
{
    DataMovementReport r;
    const sim::SimTime elapsed = runtime.ElapsedInWindow();
    r.h2d_bytes = runtime.BytesToDevice();
    r.d2h_bytes = runtime.BytesToHost();
    r.transfer_count = runtime.TransferCount();
    r.transfer_time_us = runtime.TransferTime();
    r.transfer_share_pct =
        elapsed > 0.0 ? 100.0 * r.transfer_time_us / elapsed : 0.0;
    if (r.transfer_share_pct > 40.0) {
        r.severity = Severity::kSevere;
    } else if (r.transfer_share_pct > 15.0) {
        r.severity = Severity::kModerate;
    }
    return r;
}

WarmupBottleneckReport
AnalyzeWarmup(const sim::Runtime& runtime, sim::SimTime per_run_alloc_us,
              sim::SimTime steady_state_iteration_us)
{
    WarmupBottleneckReport r;
    if (runtime.IsWarm()) {
        // EnsureWarm caches its report; re-run the pure computation.
        r.one_time = sim::ComputeOneTimeWarmup(
            runtime.ComputeDevice().Spec(),
            const_cast<sim::Runtime&>(runtime).Pcie(), 0);
    }
    r.per_run_alloc_us = per_run_alloc_us;
    r.steady_state_iteration_us = steady_state_iteration_us;
    if (steady_state_iteration_us > 0.0) {
        r.one_time_vs_iteration = r.one_time.TotalUs() / steady_state_iteration_us;
    }
    if (r.one_time_vs_iteration > 30.0) {
        r.severity = Severity::kSevere;
    } else if (r.one_time_vs_iteration > 5.0) {
        r.severity = Severity::kModerate;
    }
    return r;
}

BottleneckReport
AnalyzeAll(const sim::Runtime& runtime, const std::string& model,
           const std::string& config, sim::SimTime per_run_alloc_us,
           sim::SimTime steady_state_iteration_us)
{
    BottleneckReport report;
    report.model = model;
    report.config = config;
    report.elapsed_us = runtime.ElapsedInWindow();
    report.temporal_dependency = AnalyzeTemporalDependency(runtime);
    report.workload_imbalance = AnalyzeWorkloadImbalance(runtime);
    report.data_movement = AnalyzeDataMovement(runtime);
    report.warmup =
        AnalyzeWarmup(runtime, per_run_alloc_us, steady_state_iteration_us);
    return report;
}

std::string
BottleneckReport::ToText() const
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(2);
    oss << "=== Bottleneck report: " << model << " (" << config << ") ===\n";
    oss << "elapsed: " << sim::FormatDuration(elapsed_us) << "\n";

    const TemporalDependencyReport& td = temporal_dependency;
    oss << "[1] temporal data dependency  [" << ToString(td.severity) << "]\n"
        << "    compute utilization: " << td.compute_utilization_pct
        << " % (SM-weighted: " << td.weighted_utilization_pct << " %)\n"
        << "    mean kernel occupancy: " << 100.0 * td.mean_kernel_occupancy << " %\n"
        << "    kernels: " << td.kernel_count
        << ", mean duration: " << sim::FormatDuration(td.mean_kernel_us) << "\n"
        << "    launch-overhead share of kernel time: "
        << td.launch_overhead_share_pct << " %\n";

    const WorkloadImbalanceReport& wi = workload_imbalance;
    oss << "[2] workload imbalance        [" << ToString(wi.severity) << "]\n"
        << "    CPU busy: " << sim::FormatDuration(wi.cpu_busy_us) << " ("
        << wi.cpu_share_pct << " % of elapsed)\n"
        << "    GPU busy: " << sim::FormatDuration(wi.gpu_busy_us) << " ("
        << wi.gpu_busy_share_pct << " % of elapsed)\n"
        << "    CPU/GPU busy ratio: " << wi.imbalance_ratio << "\n";

    const DataMovementReport& dm = data_movement;
    oss << "[3] data movement             [" << ToString(dm.severity) << "]\n"
        << "    H2D: " << static_cast<double>(dm.h2d_bytes) / 1024.0 / 1024.0
        << " MB, D2H: "
        << static_cast<double>(dm.d2h_bytes) / 1024.0 / 1024.0
        << " MB in " << dm.transfer_count
        << " transfers\n"
        << "    PCIe time: " << sim::FormatDuration(dm.transfer_time_us) << " ("
        << dm.transfer_share_pct << " % of elapsed)\n";

    const WarmupBottleneckReport& wu = warmup;
    oss << "[4] GPU warm-up               [" << ToString(wu.severity) << "]\n"
        << "    one-time: " << sim::FormatDuration(wu.one_time.TotalUs())
        << " (context " << sim::FormatDuration(wu.one_time.context_init_us)
        << ", model init " << sim::FormatDuration(wu.one_time.model_init_us)
        << ", weights " << sim::FormatDuration(wu.one_time.weight_transfer_us)
        << ")\n"
        << "    per-run alloc: " << sim::FormatDuration(wu.per_run_alloc_us) << "\n"
        << "    one-time / steady-state iteration: " << wu.one_time_vs_iteration
        << "x\n";
    return oss.str();
}

}  // namespace dgnn::core
