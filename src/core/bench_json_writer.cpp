#include "core/bench_json_writer.hpp"

#include <cstdio>
#include <fstream>
#include <utility>

#include "support/check.hpp"

namespace dgnn::core {

std::string
JsonEscape(const std::string& raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

BenchJsonWriter::BenchJsonWriter(std::string bench_name, int64_t schema)
    : bench_name_(std::move(bench_name)), schema_(schema)
{
    DGNN_CHECK(!bench_name_.empty(), "bench name must be non-empty");
}

void
BenchJsonWriter::BeginRecord()
{
    records_.emplace_back();
}

void
BenchJsonWriter::Append(const std::string& key, std::string rendered_value)
{
    DGNN_CHECK(!records_.empty(), "Field before BeginRecord");
    // Built with += (not an operator+ chain) to sidestep the GCC 12
    // -Wrestrict false positive on concatenated temporaries.
    std::string field = "\"";
    field += JsonEscape(key);
    field += "\": ";
    field += rendered_value;
    records_.back().push_back(std::move(field));
}

void
BenchJsonWriter::Field(const std::string& key, const std::string& value)
{
    std::string rendered = "\"";
    rendered += JsonEscape(value);
    rendered += "\"";
    Append(key, std::move(rendered));
}

void
BenchJsonWriter::Field(const std::string& key, const char* value)
{
    Field(key, std::string(value));
}

void
BenchJsonWriter::Field(const std::string& key, int64_t value)
{
    Append(key, std::to_string(value));
}

void
BenchJsonWriter::Field(const std::string& key, double value, int precision)
{
    DGNN_CHECK(precision >= 0 && precision <= 17,
               "precision must be in [0, 17], got ", precision);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    Append(key, buf);
}

std::string
BenchJsonWriter::ToString() const
{
    std::string out = "{\"bench\": \"" + JsonEscape(bench_name_) +
                      "\", \"schema\": " + std::to_string(schema_) +
                      ", \"records\": [";
    for (size_t i = 0; i < records_.size(); ++i) {
        out += i == 0 ? "\n" : ",\n";
        out += "  {";
        const std::vector<std::string>& fields = records_[i];
        for (size_t f = 0; f < fields.size(); ++f) {
            if (f > 0) {
                out += ", ";
            }
            out += fields[f];
        }
        out += "}";
    }
    out += records_.empty() ? "]}\n" : "\n]}\n";
    return out;
}

void
BenchJsonWriter::WriteFile(const std::string& path) const
{
    std::ofstream file(path);
    DGNN_CHECK(file.good(), "cannot open '", path, "' for writing");
    file << ToString();
    file.close();
    DGNN_CHECK(file.good(), "failed writing '", path, "'");
}

}  // namespace dgnn::core
