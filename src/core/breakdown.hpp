#pragma once

/// @file
/// Per-module inference breakdown (the paper's Fig 7 rows): each category's
/// host time and its share of one iteration / the full run.

#include <string>
#include <vector>

#include "sim/runtime.hpp"

namespace dgnn::core {

/// One row of a breakdown: module name, time, share.
struct BreakdownEntry {
    std::string category;
    sim::SimTime time_us = 0.0;
    double share_pct = 0.0;
};

/// A complete breakdown of one measured run.
class Breakdown {
  public:
    /// Builds the breakdown from the runtime's category accounting over the
    /// current measurement window. Categories with < @p min_share_pct of the
    /// total are folded into "Others" when @p fold_small is set.
    static Breakdown FromRuntime(const sim::Runtime& runtime, bool fold_small = false,
                                 double min_share_pct = 1.0);

    const std::vector<BreakdownEntry>& Entries() const { return entries_; }

    /// Total time across all entries (== elapsed window time).
    sim::SimTime TotalUs() const { return total_us_; }

    /// Share of @p category in percent (0 when absent).
    double SharePct(const std::string& category) const;

    /// Time of @p category (0 when absent).
    sim::SimTime TimeUs(const std::string& category) const;

    /// Ordered category names, largest share first.
    std::vector<std::string> Categories() const;

  private:
    std::vector<BreakdownEntry> entries_;
    sim::SimTime total_us_ = 0.0;
};

}  // namespace dgnn::core
