#pragma once

/// @file
/// Streaming serving metrics: a log-bucketed latency histogram (the
/// HdrHistogram idea at fixed ~1% value resolution) for p50/p90/p99/max
/// tail-latency reporting, and a running min/mean/max accumulator for
/// queue-depth and batch-size statistics. Both are O(1) per sample and
/// mergeable, so per-worker instances can be combined into fleet totals.

#include <cstdint>
#include <vector>

namespace dgnn::core {

/// Fixed-resolution streaming histogram over positive values (microseconds
/// by convention). Values are assigned to geometrically spaced buckets;
/// quantiles come back with a bounded relative error equal to the bucket
/// growth factor (default 1%). Exact min/max/mean are tracked on the side,
/// and Quantile(0) / Quantile(1) return them exactly.
class LatencyHistogram {
  public:
    /// @param min_value_us  lower edge of the first bucket; smaller samples
    ///                      clamp into it
    /// @param max_value_us  upper edge of the last bucket; larger samples
    ///                      clamp into it
    /// @param growth        per-bucket geometric growth factor (> 1)
    explicit LatencyHistogram(double min_value_us = 1e-1,
                              double max_value_us = 1e10, double growth = 1.01);

    /// Adds one sample. Non-positive samples count into the first bucket.
    void Record(double value_us);

    int64_t Count() const { return count_; }
    bool Empty() const { return count_ == 0; }

    /// Exact extrema and mean of the recorded samples (0 when empty).
    double Min() const { return count_ > 0 ? min_ : 0.0; }
    double Max() const { return count_ > 0 ? max_ : 0.0; }
    double Mean() const;

    /// Value at quantile @p q in [0, 1]: the smallest bucket representative
    /// v such that at least ceil(q * Count()) samples are <= its bucket.
    /// Within one growth factor of the exact order statistic; 0 when empty.
    double Quantile(double q) const;

    double P50() const { return Quantile(0.50); }
    double P90() const { return Quantile(0.90); }
    double P99() const { return Quantile(0.99); }

    /// Samples that exceeded max_value_us and were clamped into the top
    /// bucket. A non-zero count means upper quantiles are biased low (the
    /// saturation case) and the layout ceiling should be raised.
    int64_t OverflowCount() const { return overflow_count_; }

    /// Adds @p other's samples into this histogram. The two must share the
    /// same bucket layout (min/max/growth).
    void Merge(const LatencyHistogram& other);

    /// Number of buckets (layout introspection, used by tests and Merge).
    int64_t BucketCount() const { return static_cast<int64_t>(counts_.size()); }

  private:
    int64_t BucketIndex(double value_us) const;
    double BucketUpperEdge(int64_t index) const;

    double min_value_;
    double max_value_;
    double growth_;
    double log_growth_;
    std::vector<int64_t> counts_;
    int64_t count_ = 0;
    int64_t overflow_count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Running count/min/mean/max/variance over a scalar series (queue depths,
/// batch sizes, jitter gauges). O(1) memory, mergeable. Variance uses
/// Welford's online update, so it is numerically stable even when the mean
/// dwarfs the spread; Merge combines the M2 accumulators with the parallel
/// (Chan et al.) formula, so split streams reduce to the same moments as
/// one combined stream.
class RunningStat {
  public:
    void Record(double value);

    int64_t Count() const { return count_; }
    double Sum() const { return sum_; }
    double Min() const { return count_ > 0 ? min_ : 0.0; }
    double Max() const { return count_ > 0 ? max_ : 0.0; }
    double Mean() const;

    /// Population variance (M2 / n); 0 with fewer than two samples.
    double Variance() const;
    /// sqrt(Variance()) — the jitter gauge.
    double StdDev() const;

    void Merge(const RunningStat& other);

  private:
    int64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    /// Welford accumulators: running mean and sum of squared deviations.
    double mean_ = 0.0;
    double m2_ = 0.0;
};

}  // namespace dgnn::core
