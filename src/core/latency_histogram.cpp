#include "core/latency_histogram.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace dgnn::core {

LatencyHistogram::LatencyHistogram(double min_value_us, double max_value_us,
                                   double growth)
    : min_value_(min_value_us),
      max_value_(max_value_us),
      growth_(growth),
      log_growth_(std::log(growth))
{
    DGNN_CHECK(min_value_ > 0.0, "histogram min must be positive, got ",
               min_value_);
    DGNN_CHECK(max_value_ > min_value_, "histogram max must exceed min");
    DGNN_CHECK(growth_ > 1.0, "histogram growth factor must exceed 1, got ",
               growth_);
    const auto buckets = static_cast<int64_t>(
        std::ceil(std::log(max_value_ / min_value_) / log_growth_));
    counts_.assign(static_cast<size_t>(buckets) + 1, 0);
}

int64_t
LatencyHistogram::BucketIndex(double value_us) const
{
    if (value_us <= min_value_) {
        return 0;
    }
    const auto idx = static_cast<int64_t>(
        std::floor(std::log(value_us / min_value_) / log_growth_)) + 1;
    return std::min(idx, static_cast<int64_t>(counts_.size()) - 1);
}

double
LatencyHistogram::BucketUpperEdge(int64_t index) const
{
    return min_value_ * std::pow(growth_, static_cast<double>(index));
}

void
LatencyHistogram::Record(double value_us)
{
    if (value_us > max_value_) {
        // The sample still lands in the top bucket (quantiles stay
        // monotone), but silently clamping would bias p99 low under
        // saturation — count it so reports can flag the truncation.
        ++overflow_count_;
    }
    counts_[static_cast<size_t>(BucketIndex(value_us))] += 1;
    if (count_ == 0) {
        min_ = value_us;
        max_ = value_us;
    } else {
        min_ = std::min(min_, value_us);
        max_ = std::max(max_, value_us);
    }
    sum_ += value_us;
    ++count_;
}

double
LatencyHistogram::Mean() const
{
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double
LatencyHistogram::Quantile(double q) const
{
    DGNN_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1], got ", q);
    if (count_ == 0) {
        return 0.0;
    }
    if (q <= 0.0) {
        return min_;
    }
    if (q >= 1.0) {
        return max_;
    }
    const auto rank = static_cast<int64_t>(
        std::ceil(q * static_cast<double>(count_)));
    int64_t cumulative = 0;
    for (size_t i = 0; i < counts_.size(); ++i) {
        cumulative += counts_[i];
        if (cumulative >= rank) {
            // Clamp the bucket edge into the observed range so quantiles
            // never report a value outside [min, max].
            return std::clamp(BucketUpperEdge(static_cast<int64_t>(i)), min_,
                              max_);
        }
    }
    return max_;
}

void
LatencyHistogram::Merge(const LatencyHistogram& other)
{
    DGNN_CHECK(counts_.size() == other.counts_.size() &&
                   min_value_ == other.min_value_ && growth_ == other.growth_,
               "cannot merge histograms with different bucket layouts");
    if (other.count_ == 0) {
        return;
    }
    for (size_t i = 0; i < counts_.size(); ++i) {
        counts_[i] += other.counts_[i];
    }
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    sum_ += other.sum_;
    count_ += other.count_;
    overflow_count_ += other.overflow_count_;
}

void
RunningStat::Record(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    sum_ += value;
    ++count_;
    // Welford: update the running mean first, then accumulate the product of
    // the deviations from the old and new means.
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

double
RunningStat::Mean() const
{
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double
RunningStat::Variance() const
{
    return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
}

double
RunningStat::StdDev() const
{
    return std::sqrt(Variance());
}

void
RunningStat::Merge(const RunningStat& other)
{
    if (other.count_ == 0) {
        return;
    }
    if (count_ == 0) {
        *this = other;
        return;
    }
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    // Parallel-variance combination (Chan et al.): the cross term accounts
    // for the two partitions' means disagreeing.
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    mean_ = (n1 * mean_ + n2 * other.mean_) / (n1 + n2);
    sum_ += other.sum_;
    count_ += other.count_;
}

}  // namespace dgnn::core
