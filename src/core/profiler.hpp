#pragma once

/// @file
/// Module-level profiler over the simulated runtime — the analogue of the
/// PyTorch Profiler used by the paper. A ProfileScope both (a) pushes a
/// category onto the runtime so all issued work is attributed to the module,
/// and (b) records a named host-time range for phase timelines (Fig 9).

#include <map>
#include <string>
#include <vector>

#include "sim/runtime.hpp"
#include "sim/sim_time.hpp"

namespace dgnn::core {

/// One recorded profiling range on the host timeline.
struct ProfileRange {
    std::string name;
    sim::SimTime start_us = 0.0;
    sim::SimTime end_us = 0.0;
    int depth = 0;

    sim::SimTime Duration() const { return end_us - start_us; }
};

/// Collects nested, named host-time ranges for one run.
class Profiler {
  public:
    explicit Profiler(sim::Runtime& runtime) : runtime_(runtime) {}

    sim::Runtime& GetRuntime() { return runtime_; }

    /// Opens a range; pair with End(). Prefer ProfileScope.
    void Begin(const std::string& name);

    /// Closes the innermost open range.
    void End();

    /// All completed ranges in completion order.
    const std::vector<ProfileRange>& Ranges() const { return ranges_; }

    /// Total host time per range name, summed over occurrences.
    std::map<std::string, sim::SimTime> RangeTotals() const;

    /// Number of currently open ranges.
    int OpenDepth() const { return static_cast<int>(open_.size()); }

    /// Drops all recorded ranges.
    void Clear();

  private:
    struct OpenRange {
        std::string name;
        sim::SimTime start_us;
    };

    sim::Runtime& runtime_;
    std::vector<OpenRange> open_;
    std::vector<ProfileRange> ranges_;
};

/// RAII range + category scope.
class ProfileScope {
  public:
    ProfileScope(Profiler& profiler, const std::string& name)
        : profiler_(profiler), category_(profiler.GetRuntime(), name)
    {
        profiler_.Begin(name);
    }
    ~ProfileScope() { profiler_.End(); }

    ProfileScope(const ProfileScope&) = delete;
    ProfileScope& operator=(const ProfileScope&) = delete;

  private:
    Profiler& profiler_;
    sim::CategoryScope category_;
};

}  // namespace dgnn::core
