#include "core/model_summary.hpp"

#include "support/check.hpp"

namespace dgnn::core {

const char*
ToString(DgnnType type)
{
    switch (type) {
      case DgnnType::kDiscrete:
        return "discrete";
      case DgnnType::kContinuous:
        return "continuous";
    }
    return "?";
}

const std::vector<ModelSummary>&
AllModelSummaries()
{
    static const std::vector<ModelSummary> kSummaries = {
        {"JODIE", DgnnType::kContinuous, true, false, false, true, "RNN",
         "future interaction prediction, state change prediction"},
        {"TGN", DgnnType::kContinuous, true, false, true, false, "time embedding",
         "future edge prediction"},
        {"EvolveGCN", DgnnType::kDiscrete, true, true, true, false, "RNN",
         "link prediction, node classification, edge classification"},
        {"TGAT", DgnnType::kContinuous, true, true, true, false, "time embedding",
         "link prediction, link classification"},
        {"ASTGNN", DgnnType::kDiscrete, true, false, false, true, "self-attention",
         "traffic flow prediction"},
        {"DyRep", DgnnType::kContinuous, true, true, true, false, "RNN",
         "dynamic link prediction, time prediction"},
        {"LDG", DgnnType::kContinuous, true, true, true, true,
         "RNN + self-attention", "dynamic link prediction"},
        {"MolDGNN", DgnnType::kDiscrete, true, false, true, false, "RNN",
         "adjacency matrix prediction"},
    };
    return kSummaries;
}

const ModelSummary&
FindModelSummary(const std::string& name)
{
    for (const ModelSummary& s : AllModelSummaries()) {
        if (s.name == name) {
            return s;
        }
    }
    DGNN_CHECK(false, "unknown model '", name, "'");
    // Unreachable; silences the compiler.
    return AllModelSummaries().front();
}

}  // namespace dgnn::core
