#pragma once

/// @file
/// Machine-readable perf-trajectory output: a minimal, dependency-free
/// JSON emitter for BENCH_*.json files. Each bench that wants a trajectory
/// appends flat records (string / integer / fixed-precision double fields,
/// key order = insertion order) and writes one file:
///
///   {"bench": "serving_gauntlet", "schema": 1, "records": [{...}, ...]}
///
/// The emitter is schema-stable by construction — field order, float
/// formatting (fixed precision, no locale), and escaping never depend on
/// platform or build — so two runs of a deterministic bench produce
/// byte-identical files and scripts/compare_bench.py can diff trajectories
/// across PRs with per-metric tolerances.

#include <cstdint>
#include <string>
#include <vector>

namespace dgnn::core {

/// Escapes a string for embedding in a JSON document (quotes, backslashes,
/// control characters).
std::string JsonEscape(const std::string& raw);

/// Accumulates flat records and serializes the BENCH_*.json envelope.
class BenchJsonWriter {
  public:
    /// @param bench_name  trajectory identifier (the file's "bench" field)
    /// @param schema      bumped when the record layout changes meaning
    explicit BenchJsonWriter(std::string bench_name, int64_t schema = 1);

    /// Opens a new record; subsequent Field calls append to it in order.
    void BeginRecord();

    void Field(const std::string& key, const std::string& value);
    void Field(const std::string& key, const char* value);
    void Field(const std::string& key, int64_t value);
    /// Fixed-precision double (printf %.*f) — deterministic formatting.
    void Field(const std::string& key, double value, int precision);

    int64_t RecordCount() const
    {
        return static_cast<int64_t>(records_.size());
    }

    /// The full JSON document (pretty-printed, one record per line).
    std::string ToString() const;

    /// Writes ToString() to @p path (throws dgnn::Error on I/O failure).
    void WriteFile(const std::string& path) const;

  private:
    void Append(const std::string& key, std::string rendered_value);

    std::string bench_name_;
    int64_t schema_;
    /// Each record is its pre-rendered "key": value list, joined at
    /// serialization time.
    std::vector<std::vector<std::string>> records_;
};

}  // namespace dgnn::core
