#include "core/trace_analysis.hpp"

#include <algorithm>
#include <sstream>

#include "core/bench_json_writer.hpp"
#include "support/check.hpp"

namespace dgnn::core {

namespace {

/// Overlap of [a0, a1) with [b0, b1).
sim::SimTime
Overlap(sim::SimTime a0, sim::SimTime a1, sim::SimTime b0, sim::SimTime b1)
{
    return std::max(0.0, std::min(a1, b1) - std::max(a0, b0));
}

}  // namespace

std::vector<UtilizationSample>
UtilizationTimeline(const sim::Trace& trace, const std::string& device, sim::SimTime t0,
                    sim::SimTime t1, sim::SimTime bin_us, bool occupancy_weighted)
{
    DGNN_CHECK(bin_us > 0.0, "bin width must be positive, got ", bin_us);
    DGNN_CHECK(t1 >= t0, "bad window [", t0, ", ", t1, ")");
    const int64_t bins = static_cast<int64_t>((t1 - t0) / bin_us) + 1;
    std::vector<UtilizationSample> samples(static_cast<size_t>(bins));
    for (int64_t b = 0; b < bins; ++b) {
        samples[static_cast<size_t>(b)].t_us = t0 + static_cast<double>(b) * bin_us;
    }
    for (const sim::TraceEvent& e : trace.Events()) {
        if (e.kind != sim::EventKind::kKernel || e.device != device) {
            continue;
        }
        const int64_t first =
            std::max<int64_t>(0, static_cast<int64_t>((e.start_us - t0) / bin_us));
        const int64_t last =
            std::min<int64_t>(bins - 1, static_cast<int64_t>((e.end_us - t0) / bin_us));
        for (int64_t b = first; b <= last; ++b) {
            const sim::SimTime bin_start = t0 + static_cast<double>(b) * bin_us;
            const sim::SimTime ov =
                Overlap(e.start_us, e.end_us, bin_start, bin_start + bin_us);
            const double weight = occupancy_weighted ? e.occupancy : 1.0;
            samples[static_cast<size_t>(b)].utilization_pct +=
                100.0 * weight * ov / bin_us;
        }
    }
    for (UtilizationSample& s : samples) {
        s.utilization_pct = std::min(s.utilization_pct, 100.0);
    }
    return samples;
}

sim::SimTime
DeviceBusyTime(const sim::Trace& trace, const std::string& device, sim::SimTime t0,
               sim::SimTime t1)
{
    sim::SimTime busy = 0.0;
    for (const sim::TraceEvent& e : trace.Events()) {
        if (e.kind == sim::EventKind::kKernel && e.device == device) {
            busy += Overlap(e.start_us, e.end_us, t0, t1);
        }
    }
    return busy;
}

int64_t
TransferredBytes(const sim::Trace& trace, sim::CopyDirection direction, sim::SimTime t0,
                 sim::SimTime t1)
{
    int64_t bytes = 0;
    for (const sim::TraceEvent& e : trace.Events()) {
        if (e.kind == sim::EventKind::kTransfer && e.direction == direction &&
            e.start_us >= t0 && e.start_us < t1) {
            bytes += e.bytes;
        }
    }
    return bytes;
}

sim::SimTime
TransferBusyTime(const sim::Trace& trace, sim::SimTime t0, sim::SimTime t1)
{
    sim::SimTime busy = 0.0;
    for (const sim::TraceEvent& e : trace.Events()) {
        if (e.kind == sim::EventKind::kTransfer) {
            busy += Overlap(e.start_us, e.end_us, t0, t1);
        }
    }
    return busy;
}

int64_t
KernelCount(const sim::Trace& trace, const std::string& device, sim::SimTime t0,
            sim::SimTime t1)
{
    int64_t count = 0;
    for (const sim::TraceEvent& e : trace.Events()) {
        if (e.kind == sim::EventKind::kKernel && e.device == device &&
            e.start_us >= t0 && e.start_us < t1) {
            ++count;
        }
    }
    return count;
}

double
MeanKernelOccupancy(const sim::Trace& trace, const std::string& device, sim::SimTime t0,
                    sim::SimTime t1)
{
    double sum = 0.0;
    int64_t count = 0;
    for (const sim::TraceEvent& e : trace.Events()) {
        if (e.kind == sim::EventKind::kKernel && e.device == device &&
            e.start_us >= t0 && e.start_us < t1) {
            sum += e.occupancy;
            ++count;
        }
    }
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

std::string
ToChromeTraceJson(const sim::Trace& trace)
{
    std::ostringstream oss;
    oss << "{\"traceEvents\":[";
    bool first = true;
    for (const sim::TraceEvent& e : trace.Events()) {
        if (!first) {
            oss << ",";
        }
        first = false;
        // Every interpolated string goes through JsonEscape: kernel names
        // carry user-controlled labels ("what" strings, model names) that
        // may contain quotes, backslashes, or control characters.
        oss << "{\"name\":\"" << JsonEscape(e.name) << "\",\"cat\":\""
            << JsonEscape(e.category) << "\",\"ph\":\"X\",\"ts\":" << e.start_us
            << ",\"dur\":" << (e.end_us - e.start_us) << ",\"pid\":1,\"tid\":\""
            << JsonEscape(e.device) << "\",\"args\":{\"kind\":\""
            << JsonEscape(sim::ToString(e.kind))
            << "\",\"occupancy\":" << e.occupancy << ",\"flops\":" << e.flops
            << ",\"bytes\":" << e.bytes << "}}";
    }
    oss << "]}";
    return oss.str();
}

}  // namespace dgnn::core
