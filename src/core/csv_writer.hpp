#pragma once

/// @file
/// Minimal CSV writer so benchmark series can be exported for plotting
/// alongside the ASCII tables (RFC-4180-style quoting).

#include <string>
#include <vector>

namespace dgnn::core {

/// Builds and renders a CSV document.
class CsvWriter {
  public:
    explicit CsvWriter(std::vector<std::string> header);

    /// Appends a data row; must match the header width.
    void AddRow(std::vector<std::string> row);

    /// Renders the document, quoting fields that need it.
    std::string ToString() const;

    /// Writes the document to @p path; throws dgnn::Error on I/O failure.
    void WriteFile(const std::string& path) const;

    size_t RowCount() const { return rows_.size(); }

  private:
    static std::string EscapeField(const std::string& field);

    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace dgnn::core
