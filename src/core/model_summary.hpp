#pragma once

/// @file
/// Static registry of the eight profiled DGNNs and their characteristics —
/// the data behind the paper's Table 1.

#include <string>
#include <vector>

namespace dgnn::core {

/// Discrete- vs continuous-time dynamic graph model.
enum class DgnnType {
    kDiscrete,
    kContinuous,
};

const char* ToString(DgnnType type);

/// One row of Table 1.
struct ModelSummary {
    std::string name;
    DgnnType type = DgnnType::kDiscrete;
    bool evolving_node_feature = false;
    bool evolving_edge_feature = false;
    bool evolving_topology = false;
    bool evolving_weights = false;
    std::string time_encoding;
    std::string tasks;
};

/// All eight models, in the paper's Table 1 order.
const std::vector<ModelSummary>& AllModelSummaries();

/// Looks up one model by name; throws when unknown.
const ModelSummary& FindModelSummary(const std::string& name);

}  // namespace dgnn::core
