#include "core/csv_writer.hpp"

#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace dgnn::core {

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header))
{
    DGNN_CHECK(!header_.empty(), "CSV needs at least one column");
}

void
CsvWriter::AddRow(std::vector<std::string> row)
{
    DGNN_CHECK(row.size() == header_.size(), "row width ", row.size(),
               " does not match header width ", header_.size());
    rows_.push_back(std::move(row));
}

std::string
CsvWriter::EscapeField(const std::string& field)
{
    if (field.find_first_of(",\"\n") == std::string::npos) {
        return field;
    }
    std::string escaped = "\"";
    for (char c : field) {
        if (c == '"') {
            escaped += "\"\"";
        } else {
            escaped += c;
        }
    }
    escaped += "\"";
    return escaped;
}

std::string
CsvWriter::ToString() const
{
    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string>& row) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i > 0) {
                oss << ",";
            }
            oss << EscapeField(row[i]);
        }
        oss << "\n";
    };
    emit(header_);
    for (const auto& row : rows_) {
        emit(row);
    }
    return oss.str();
}

void
CsvWriter::WriteFile(const std::string& path) const
{
    std::ofstream out(path);
    DGNN_CHECK(out.good(), "cannot open '", path, "' for writing");
    out << ToString();
    DGNN_CHECK(out.good(), "write to '", path, "' failed");
}

}  // namespace dgnn::core
