#include "core/table_writer.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/check.hpp"

namespace dgnn::core {

TableWriter::TableWriter(std::vector<std::string> header) : header_(std::move(header))
{
    DGNN_CHECK(!header_.empty(), "table needs at least one column");
}

void
TableWriter::AddRow(std::vector<std::string> row)
{
    DGNN_CHECK(row.size() == header_.size(), "row width ", row.size(),
               " does not match header width ", header_.size());
    rows_.push_back(std::move(row));
}

std::string
TableWriter::Num(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
TableWriter::TimeWithShare(double time_ms, double share_pct)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(2) << time_ms << " ("
        << std::setprecision(0) << share_pct << "%)";
    return oss.str();
}

std::string
TableWriter::ToString() const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c) {
        widths[c] = header_[c].size();
    }
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < row.size(); ++c) {
            oss << (c == 0 ? "| " : " | ") << std::left
                << std::setw(static_cast<int>(widths[c])) << row[c];
        }
        oss << " |\n";
    };
    emit_row(header_);
    for (size_t c = 0; c < header_.size(); ++c) {
        oss << (c == 0 ? "|" : "|") << std::string(widths[c] + 2, '-');
    }
    oss << "|\n";
    for (const auto& row : rows_) {
        emit_row(row);
    }
    return oss.str();
}

}  // namespace dgnn::core
