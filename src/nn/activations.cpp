#include "nn/activations.hpp"

#include "support/check.hpp"
#include "tensor/ops.hpp"

namespace dgnn::nn {

const char*
ToString(Activation act)
{
    switch (act) {
      case Activation::kIdentity:
        return "identity";
      case Activation::kRelu:
        return "relu";
      case Activation::kSigmoid:
        return "sigmoid";
      case Activation::kTanh:
        return "tanh";
      case Activation::kGelu:
        return "gelu";
    }
    return "?";
}

Activation
ParseActivation(const std::string& name)
{
    if (name == "identity") {
        return Activation::kIdentity;
    }
    if (name == "relu") {
        return Activation::kRelu;
    }
    if (name == "sigmoid") {
        return Activation::kSigmoid;
    }
    if (name == "tanh") {
        return Activation::kTanh;
    }
    if (name == "gelu") {
        return Activation::kGelu;
    }
    DGNN_CHECK(false, "unknown activation '", name, "'");
    return Activation::kIdentity;
}

Tensor
Apply(Activation act, const Tensor& x)
{
    switch (act) {
      case Activation::kIdentity:
        return x;
      case Activation::kRelu:
        return ops::Relu(x);
      case Activation::kSigmoid:
        return ops::Sigmoid(x);
      case Activation::kTanh:
        return ops::Tanh(x);
      case Activation::kGelu:
        return ops::Gelu(x);
    }
    return x;
}

}  // namespace dgnn::nn
