#pragma once

/// @file
/// Recurrent cells: vanilla RNN, GRU, and LSTM. These are the time encoders
/// of JODIE, EvolveGCN, MolDGNN, DyRep, and LDG, and the source of the
/// paper's temporal-data-dependency bottleneck: each step's input is the
/// previous step's output, so steps cannot run in parallel.

#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace dgnn::nn {

/// tanh(W_ih x + W_hh h + b) vanilla recurrent cell.
class RnnCell : public Module {
  public:
    RnnCell(int64_t input_size, int64_t hidden_size, Rng& rng);

    /// x: [batch, input], h: [batch, hidden] -> new h [batch, hidden].
    Tensor Forward(const Tensor& x, const Tensor& h) const;

    int64_t InputSize() const { return input_size_; }
    int64_t HiddenSize() const { return hidden_size_; }

    /// FLOPs of one step with @p batch rows.
    int64_t ForwardFlops(int64_t batch) const;

  private:
    int64_t input_size_;
    int64_t hidden_size_;
    Linear ih_;
    Linear hh_;
};

/// Gated recurrent unit (Cho et al. 2014).
class GruCell : public Module {
  public:
    GruCell(int64_t input_size, int64_t hidden_size, Rng& rng);

    /// x: [batch, input], h: [batch, hidden] -> new h [batch, hidden].
    Tensor Forward(const Tensor& x, const Tensor& h) const;

    int64_t InputSize() const { return input_size_; }
    int64_t HiddenSize() const { return hidden_size_; }
    int64_t ForwardFlops(int64_t batch) const;

  private:
    int64_t input_size_;
    int64_t hidden_size_;
    Linear ih_;  ///< produces [r|z|n] gates from x: [batch, 3*hidden]
    Linear hh_;  ///< produces [r|z|n] gates from h: [batch, 3*hidden]
};

/// LSTM cell state: hidden h and cell c, both [batch, hidden].
struct LstmState {
    Tensor h;
    Tensor c;
};

/// Long short-term memory cell (Gers et al. 2000 variant with forget gate).
class LstmCell : public Module {
  public:
    LstmCell(int64_t input_size, int64_t hidden_size, Rng& rng);

    /// One step; returns the new state.
    LstmState Forward(const Tensor& x, const LstmState& state) const;

    /// Zero-initialized state for @p batch rows.
    LstmState InitialState(int64_t batch) const;

    int64_t InputSize() const { return input_size_; }
    int64_t HiddenSize() const { return hidden_size_; }
    int64_t ForwardFlops(int64_t batch) const;

  private:
    int64_t input_size_;
    int64_t hidden_size_;
    Linear ih_;  ///< [i|f|g|o] gates from x: [batch, 4*hidden]
    Linear hh_;  ///< [i|f|g|o] gates from h: [batch, 4*hidden]
};

}  // namespace dgnn::nn
