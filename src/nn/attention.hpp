#pragma once

/// @file
/// Multi-head scaled-dot-product attention — the aggregation engine of
/// TGAT, the embedding projection of JODIE, the temporal attention blocks of
/// ASTGNN, and the attention layers of TGN/DyRep/LDG.

#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace dgnn::nn {

/// Multi-head attention over (query, key, value) matrices.
class MultiHeadAttention : public Module {
  public:
    /// @param model_dim  embedding dimension (must divide by num_heads)
    /// @param num_heads  number of attention heads
    MultiHeadAttention(int64_t model_dim, int64_t num_heads, Rng& rng);

    /// query: [q, d], key: [k, d], value: [k, d] -> [q, d].
    Tensor Forward(const Tensor& query, const Tensor& key, const Tensor& value) const;

    /// Self-attention shorthand: Forward(x, x, x).
    Tensor SelfAttention(const Tensor& x) const { return Forward(x, x, x); }

    int64_t ModelDim() const { return model_dim_; }
    int64_t NumHeads() const { return num_heads_; }

    /// FLOPs for q queries against k keys.
    int64_t ForwardFlops(int64_t q, int64_t k) const;

  private:
    int64_t model_dim_;
    int64_t num_heads_;
    int64_t head_dim_;
    Linear wq_;
    Linear wk_;
    Linear wv_;
    Linear wo_;
};

}  // namespace dgnn::nn
