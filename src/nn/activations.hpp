#pragma once

/// @file
/// Named activation functions as a small enum-dispatched helper so model
/// configs can select them declaratively.

#include <string>

#include "tensor/tensor.hpp"

namespace dgnn::nn {

/// Supported activation kinds.
enum class Activation {
    kIdentity,
    kRelu,
    kSigmoid,
    kTanh,
    kGelu,
};

const char* ToString(Activation act);

/// Parses "relu"/"sigmoid"/"tanh"/"gelu"/"identity"; throws on other input.
Activation ParseActivation(const std::string& name);

/// Applies the activation elementwise.
Tensor Apply(Activation act, const Tensor& x);

}  // namespace dgnn::nn
