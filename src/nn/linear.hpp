#pragma once

/// @file
/// Fully-connected layer (PyTorch nn.Linear convention: y = x W^T + b).

#include "nn/module.hpp"
#include "tensor/ops.hpp"

namespace dgnn::nn {

/// Affine map from in_features to out_features.
class Linear : public Module {
  public:
    Linear(int64_t in_features, int64_t out_features, Rng& rng, bool with_bias = true);

    /// x: [batch, in] -> [batch, out].
    Tensor Forward(const Tensor& x) const;

    int64_t InFeatures() const { return in_features_; }
    int64_t OutFeatures() const { return out_features_; }

    /// FLOPs of one forward pass with @p batch rows.
    int64_t ForwardFlops(int64_t batch) const;

    const Tensor& Weight() const { return weight_; }
    const Tensor& Bias() const { return bias_; }

  private:
    int64_t in_features_;
    int64_t out_features_;
    Tensor weight_;  ///< [out, in]
    Tensor bias_;    ///< [out] (empty when bias disabled)
};

}  // namespace dgnn::nn
