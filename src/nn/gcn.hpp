#pragma once

/// @file
/// Graph convolution layer: H' = act(A_hat · H · W^T + b), with A_hat a
/// (pre-normalized) sparse adjacency. The sparse matrix lives here as a
/// minimal CSR so the nn substrate stays independent of the graph library;
/// models convert their snapshots via graph/snapshot.hpp helpers.

#include <vector>

#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace dgnn::nn {

/// Minimal CSR sparse matrix (square, float values).
struct SparseMatrix {
    int64_t n = 0;                      ///< rows == cols
    std::vector<int64_t> row_offsets;   ///< size n+1
    std::vector<int64_t> col_indices;   ///< size nnz
    std::vector<float> values;          ///< size nnz

    int64_t Nnz() const { return static_cast<int64_t>(col_indices.size()); }
};

/// y = A · x for CSR A [n, n] and dense x [n, d].
Tensor Spmm(const SparseMatrix& a, const Tensor& x);

/// One GCN layer (Kipf & Welling style with an external normalized A_hat).
class GcnLayer : public Module {
  public:
    GcnLayer(int64_t in_features, int64_t out_features, Rng& rng,
             Activation act = Activation::kRelu);

    /// a_hat: normalized adjacency [n, n]; h: [n, in] -> [n, out].
    Tensor Forward(const SparseMatrix& a_hat, const Tensor& h) const;

    /// Forward with externally supplied weights (EvolveGCN evolves them).
    Tensor ForwardWithWeight(const SparseMatrix& a_hat, const Tensor& h,
                             const Tensor& weight) const;

    int64_t InFeatures() const { return in_features_; }
    int64_t OutFeatures() const { return out_features_; }
    const Tensor& Weight() const { return weight_.Weight(); }

    /// FLOPs for n nodes and nnz edges.
    int64_t ForwardFlops(int64_t n, int64_t nnz) const;

  private:
    int64_t in_features_;
    int64_t out_features_;
    Activation act_;
    Linear weight_;
};

/// Row-normalizes a CSR adjacency in place (random-walk normalization).
void RowNormalize(SparseMatrix& a);

}  // namespace dgnn::nn
