#include "nn/gcn.hpp"

#include "tensor/ops.hpp"

namespace dgnn::nn {

Tensor
Spmm(const SparseMatrix& a, const Tensor& x)
{
    DGNN_CHECK(x.Rank() == 2 && x.Dim(0) == a.n, "Spmm expects x of [", a.n,
               ", d], got ", x.GetShape().ToString());
    DGNN_CHECK(static_cast<int64_t>(a.row_offsets.size()) == a.n + 1,
               "CSR row_offsets size ", a.row_offsets.size(), " != n+1 = ", a.n + 1);
    const int64_t d = x.Dim(1);
    Tensor y(Shape({a.n, d}));
    for (int64_t i = 0; i < a.n; ++i) {
        float* yrow = y.Data() + i * d;
        for (int64_t e = a.row_offsets[static_cast<size_t>(i)];
             e < a.row_offsets[static_cast<size_t>(i) + 1]; ++e) {
            const int64_t j = a.col_indices[static_cast<size_t>(e)];
            DGNN_ASSERT(j >= 0 && j < a.n);
            const float w = a.values[static_cast<size_t>(e)];
            const float* xrow = x.Data() + j * d;
            for (int64_t c = 0; c < d; ++c) {
                yrow[c] += w * xrow[c];
            }
        }
    }
    return y;
}

GcnLayer::GcnLayer(int64_t in_features, int64_t out_features, Rng& rng, Activation act)
    : Module("gcn_layer"),
      in_features_(in_features),
      out_features_(out_features),
      act_(act),
      weight_(in_features, out_features, rng)
{
    RegisterChild(&weight_);
}

Tensor
GcnLayer::Forward(const SparseMatrix& a_hat, const Tensor& h) const
{
    const Tensor aggregated = Spmm(a_hat, h);
    return Apply(act_, weight_.Forward(aggregated));
}

Tensor
GcnLayer::ForwardWithWeight(const SparseMatrix& a_hat, const Tensor& h,
                            const Tensor& weight) const
{
    DGNN_CHECK(weight.Rank() == 2 && weight.Dim(0) == out_features_ &&
                   weight.Dim(1) == in_features_,
               "external GCN weight must be [", out_features_, ", ", in_features_,
               "], got ", weight.GetShape().ToString());
    const Tensor aggregated = Spmm(a_hat, h);
    return Apply(act_, ops::MatMulTransposed(aggregated, weight));
}

int64_t
GcnLayer::ForwardFlops(int64_t n, int64_t nnz) const
{
    const int64_t spmm = 2 * nnz * in_features_;
    const int64_t transform = ops::MatMulFlops(n, in_features_, out_features_);
    return spmm + transform;
}

void
RowNormalize(SparseMatrix& a)
{
    for (int64_t i = 0; i < a.n; ++i) {
        const int64_t begin = a.row_offsets[static_cast<size_t>(i)];
        const int64_t end = a.row_offsets[static_cast<size_t>(i) + 1];
        double sum = 0.0;
        for (int64_t e = begin; e < end; ++e) {
            sum += a.values[static_cast<size_t>(e)];
        }
        if (sum <= 0.0) {
            continue;
        }
        for (int64_t e = begin; e < end; ++e) {
            a.values[static_cast<size_t>(e)] =
                static_cast<float>(a.values[static_cast<size_t>(e)] / sum);
        }
    }
}

}  // namespace dgnn::nn
