#include "nn/module.hpp"

#include "support/check.hpp"

namespace dgnn::nn {

std::vector<Parameter>
Module::AllParameters() const
{
    std::vector<Parameter> all = parameters_;
    for (const Module* child : children_) {
        std::vector<Parameter> child_params = child->AllParameters();
        for (Parameter& p : child_params) {
            p.name = child->Name() + "." + p.name;
            all.push_back(std::move(p));
        }
    }
    return all;
}

int64_t
Module::ParameterCount() const
{
    int64_t count = 0;
    for (const Parameter& p : AllParameters()) {
        count += p.value->NumElements();
    }
    return count;
}

int64_t
Module::ParameterBytes() const
{
    int64_t bytes = 0;
    for (const Parameter& p : AllParameters()) {
        bytes += p.value->NumBytes();
    }
    return bytes;
}

void
Module::RegisterParameter(const std::string& name, const Tensor& value)
{
    parameters_.push_back(Parameter{name, &value});
}

void
Module::RegisterChild(Module* child)
{
    DGNN_CHECK(child != nullptr, "null child module");
    children_.push_back(child);
}

}  // namespace dgnn::nn
