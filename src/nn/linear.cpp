#include "nn/linear.hpp"

namespace dgnn::nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool with_bias)
    : Module("linear"),
      in_features_(in_features),
      out_features_(out_features),
      weight_(init::XavierUniform(out_features, in_features, rng)),
      bias_(with_bias ? init::Uniform(Shape({out_features}), rng, -0.05f, 0.05f)
                      : Tensor())
{
    RegisterParameter("weight", weight_);
    if (with_bias) {
        RegisterParameter("bias", bias_);
    }
}

Tensor
Linear::Forward(const Tensor& x) const
{
    DGNN_CHECK(x.Rank() == 2 && x.Dim(1) == in_features_, "Linear expects [*, ",
               in_features_, "], got ", x.GetShape().ToString());
    return ops::LinearForward(x, weight_, bias_);
}

int64_t
Linear::ForwardFlops(int64_t batch) const
{
    return ops::MatMulFlops(batch, in_features_, out_features_) + batch * out_features_;
}

}  // namespace dgnn::nn
