#pragma once

/// @file
/// Embedding table: a learnable [count, dim] matrix with row lookup and
/// in-place row update (the mutable node/user/item memories of JODIE, TGN,
/// DyRep and LDG).

#include <vector>

#include "nn/module.hpp"

namespace dgnn::nn {

/// Learnable lookup table with mutable rows.
class Embedding : public Module {
  public:
    Embedding(int64_t count, int64_t dim, Rng& rng);

    /// Rows for @p indices -> [indices.size, dim].
    Tensor Lookup(const std::vector<int64_t>& indices) const;

    /// Overwrites the rows named by @p indices with @p rows.
    void Update(const std::vector<int64_t>& indices, const Tensor& rows);

    /// Single-row accessors.
    Tensor Row(int64_t index) const;
    void SetRow(int64_t index, const Tensor& row);

    int64_t Count() const { return count_; }
    int64_t Dim() const { return dim_; }
    const Tensor& Table() const { return table_; }

  private:
    int64_t count_;
    int64_t dim_;
    Tensor table_;
};

}  // namespace dgnn::nn
