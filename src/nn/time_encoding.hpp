#pragma once

/// @file
/// Functional time encoders: the Bochner/harmonic encoder of TGAT/TGN
/// (cos(t*w + b) feature map of relative time) and Time2Vec (Kazemi et al.).

#include "nn/module.hpp"

namespace dgnn::nn {

/// Bochner-theorem-inspired harmonic time encoding used by TGAT and TGN:
/// phi(t) = cos(t * w + b) with learnable frequencies w.
class BochnerTimeEncoder : public Module {
  public:
    BochnerTimeEncoder(int64_t dim, Rng& rng);

    /// deltas: rank-1 [n] relative times -> [n, dim] embedding.
    Tensor Forward(const Tensor& deltas) const;

    int64_t Dim() const { return dim_; }
    int64_t ForwardFlops(int64_t n) const { return 3 * n * dim_; }

  private:
    int64_t dim_;
    Tensor frequencies_;  ///< [dim]
    Tensor phases_;       ///< [dim]
};

/// Time2Vec: first component linear, the rest sinusoidal.
class Time2Vec : public Module {
  public:
    Time2Vec(int64_t dim, Rng& rng);

    /// times: rank-1 [n] -> [n, dim] embedding.
    Tensor Forward(const Tensor& times) const;

    int64_t Dim() const { return dim_; }
    int64_t ForwardFlops(int64_t n) const { return 3 * n * dim_; }

  private:
    int64_t dim_;
    Tensor weights_;  ///< [dim]
    Tensor biases_;   ///< [dim]
};

}  // namespace dgnn::nn
