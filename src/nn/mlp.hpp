#pragma once

/// @file
/// Multi-layer perceptron: stacked Linear layers with a configurable
/// activation between them.

#include <memory>
#include <vector>

#include "nn/activations.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"

namespace dgnn::nn {

/// Feed-forward network with hidden layers.
class Mlp : public Module {
  public:
    /// @param dims  layer widths, e.g. {in, hidden, hidden, out}
    Mlp(std::vector<int64_t> dims, Rng& rng, Activation act = Activation::kRelu);

    /// x: [batch, dims.front()] -> [batch, dims.back()].
    Tensor Forward(const Tensor& x) const;

    int64_t InFeatures() const { return dims_.front(); }
    int64_t OutFeatures() const { return dims_.back(); }
    int64_t ForwardFlops(int64_t batch) const;

  private:
    std::vector<int64_t> dims_;
    Activation act_;
    std::vector<std::unique_ptr<Linear>> layers_;
};

}  // namespace dgnn::nn
