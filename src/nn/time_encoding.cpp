#include "nn/time_encoding.hpp"

#include <cmath>

namespace dgnn::nn {

BochnerTimeEncoder::BochnerTimeEncoder(int64_t dim, Rng& rng)
    : Module("bochner_time"), dim_(dim)
{
    DGNN_CHECK(dim > 0, "time encoding dim must be positive, got ", dim);
    // Geometric frequency ladder as in the TGAT reference implementation:
    // w_i = 1 / 10^(i * 9 / dim), spanning ~9 decades.
    Tensor freq(Shape({dim}));
    for (int64_t i = 0; i < dim; ++i) {
        freq.Data()[i] = static_cast<float>(
            1.0 / std::pow(10.0, static_cast<double>(i) * 9.0 /
                                     static_cast<double>(dim)));
    }
    frequencies_ = std::move(freq);
    phases_ = init::Uniform(Shape({dim}), rng, 0.0f,
                            static_cast<float>(2.0 * 3.14159265358979));
    RegisterParameter("frequencies", frequencies_);
    RegisterParameter("phases", phases_);
}

Tensor
BochnerTimeEncoder::Forward(const Tensor& deltas) const
{
    DGNN_CHECK(deltas.Rank() == 1, "BochnerTimeEncoder expects rank-1 deltas, got ",
               deltas.GetShape().ToString());
    const int64_t n = deltas.Dim(0);
    Tensor out(Shape({n, dim_}));
    for (int64_t i = 0; i < n; ++i) {
        const float t = deltas.At(i);
        for (int64_t j = 0; j < dim_; ++j) {
            out.Data()[i * dim_ + j] =
                std::cos(t * frequencies_.Data()[j] + phases_.Data()[j]);
        }
    }
    return out;
}

Time2Vec::Time2Vec(int64_t dim, Rng& rng) : Module("time2vec"), dim_(dim)
{
    DGNN_CHECK(dim >= 2, "Time2Vec dim must be >= 2, got ", dim);
    weights_ = init::Uniform(Shape({dim}), rng, -1.0f, 1.0f);
    biases_ = init::Uniform(Shape({dim}), rng, -1.0f, 1.0f);
    RegisterParameter("weights", weights_);
    RegisterParameter("biases", biases_);
}

Tensor
Time2Vec::Forward(const Tensor& times) const
{
    DGNN_CHECK(times.Rank() == 1, "Time2Vec expects rank-1 times, got ",
               times.GetShape().ToString());
    const int64_t n = times.Dim(0);
    Tensor out(Shape({n, dim_}));
    for (int64_t i = 0; i < n; ++i) {
        const float t = times.At(i);
        out.Data()[i * dim_ + 0] = weights_.Data()[0] * t + biases_.Data()[0];
        for (int64_t j = 1; j < dim_; ++j) {
            out.Data()[i * dim_ + j] =
                std::sin(weights_.Data()[j] * t + biases_.Data()[j]);
        }
    }
    return out;
}

}  // namespace dgnn::nn
