#include "nn/mlp.hpp"

namespace dgnn::nn {

Mlp::Mlp(std::vector<int64_t> dims, Rng& rng, Activation act)
    : Module("mlp"), dims_(std::move(dims)), act_(act)
{
    DGNN_CHECK(dims_.size() >= 2, "MLP needs at least in/out dims, got ",
               dims_.size());
    for (size_t i = 0; i + 1 < dims_.size(); ++i) {
        layers_.push_back(std::make_unique<Linear>(dims_[i], dims_[i + 1], rng));
        RegisterChild(layers_.back().get());
    }
}

Tensor
Mlp::Forward(const Tensor& x) const
{
    Tensor h = x;
    for (size_t i = 0; i < layers_.size(); ++i) {
        h = layers_[i]->Forward(h);
        if (i + 1 < layers_.size()) {
            h = Apply(act_, h);
        }
    }
    return h;
}

int64_t
Mlp::ForwardFlops(int64_t batch) const
{
    int64_t flops = 0;
    for (const auto& layer : layers_) {
        flops += layer->ForwardFlops(batch);
    }
    return flops;
}

}  // namespace dgnn::nn
