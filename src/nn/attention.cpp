#include "nn/attention.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace dgnn::nn {

namespace {

/// Columns [begin, end) of a rank-2 tensor.
Tensor
HeadSlice(const Tensor& t, int64_t begin, int64_t end)
{
    const int64_t rows = t.Dim(0);
    const int64_t cols = t.Dim(1);
    Tensor out(Shape({rows, end - begin}));
    for (int64_t i = 0; i < rows; ++i) {
        std::copy(t.Data() + i * cols + begin, t.Data() + i * cols + end,
                  out.Data() + i * (end - begin));
    }
    return out;
}

/// Writes @p part into columns [begin, ...) of @p dst.
void
HeadWrite(Tensor& dst, const Tensor& part, int64_t begin)
{
    const int64_t rows = dst.Dim(0);
    const int64_t cols = dst.Dim(1);
    const int64_t pcols = part.Dim(1);
    for (int64_t i = 0; i < rows; ++i) {
        std::copy(part.Data() + i * pcols, part.Data() + (i + 1) * pcols,
                  dst.Data() + i * cols + begin);
    }
}

}  // namespace

MultiHeadAttention::MultiHeadAttention(int64_t model_dim, int64_t num_heads, Rng& rng)
    : Module("mha"),
      model_dim_(model_dim),
      num_heads_(num_heads),
      head_dim_(model_dim / num_heads),
      wq_(model_dim, model_dim, rng),
      wk_(model_dim, model_dim, rng),
      wv_(model_dim, model_dim, rng),
      wo_(model_dim, model_dim, rng)
{
    DGNN_CHECK(num_heads > 0 && model_dim % num_heads == 0, "model_dim ", model_dim,
               " must be divisible by num_heads ", num_heads);
    RegisterChild(&wq_);
    RegisterChild(&wk_);
    RegisterChild(&wv_);
    RegisterChild(&wo_);
}

Tensor
MultiHeadAttention::Forward(const Tensor& query, const Tensor& key,
                            const Tensor& value) const
{
    DGNN_CHECK(query.Rank() == 2 && query.Dim(1) == model_dim_,
               "query must be [*, ", model_dim_, "], got ",
               query.GetShape().ToString());
    DGNN_CHECK(key.GetShape() == value.GetShape(), "key/value shape mismatch: ",
               key.GetShape().ToString(), " vs ", value.GetShape().ToString());
    DGNN_CHECK(key.Dim(1) == model_dim_, "key must be [*, ", model_dim_, "], got ",
               key.GetShape().ToString());

    const Tensor q = wq_.Forward(query);
    const Tensor k = wk_.Forward(key);
    const Tensor v = wv_.Forward(value);

    const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
    Tensor concat(Shape({query.Dim(0), model_dim_}));
    for (int64_t h = 0; h < num_heads_; ++h) {
        const int64_t begin = h * head_dim_;
        const int64_t end = begin + head_dim_;
        const Tensor qh = HeadSlice(q, begin, end);
        const Tensor kh = HeadSlice(k, begin, end);
        const Tensor vh = HeadSlice(v, begin, end);

        const Tensor scores = ops::Scale(ops::MatMulTransposed(qh, kh), scale);
        const Tensor weights = ops::SoftmaxRows(scores);
        const Tensor out = ops::MatMul(weights, vh);
        HeadWrite(concat, out, begin);
    }
    return wo_.Forward(concat);
}

int64_t
MultiHeadAttention::ForwardFlops(int64_t q, int64_t k) const
{
    const int64_t proj = wq_.ForwardFlops(q) + wk_.ForwardFlops(k) +
                         wv_.ForwardFlops(k) + wo_.ForwardFlops(q);
    const int64_t scores = 2 * q * k * model_dim_;   // QK^T across heads
    const int64_t apply = 2 * q * k * model_dim_;    // weights x V
    const int64_t softmax = 4 * q * k * num_heads_;
    return proj + scores + apply + softmax;
}

}  // namespace dgnn::nn
