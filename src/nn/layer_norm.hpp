#pragma once

/// @file
/// Layer normalization over the last axis of a rank-2 tensor.

#include "nn/module.hpp"

namespace dgnn::nn {

/// y = gamma * (x - mean) / sqrt(var + eps) + beta, per row.
class LayerNorm : public Module {
  public:
    LayerNorm(int64_t features, Rng& rng, float eps = 1e-5f);

    /// x: [batch, features] -> normalized same shape.
    Tensor Forward(const Tensor& x) const;

    int64_t Features() const { return features_; }
    int64_t ForwardFlops(int64_t batch) const { return 8 * batch * features_; }

  private:
    int64_t features_;
    float eps_;
    Tensor gamma_;
    Tensor beta_;
};

}  // namespace dgnn::nn
