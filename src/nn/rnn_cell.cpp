#include "nn/rnn_cell.hpp"

#include "tensor/ops.hpp"

namespace dgnn::nn {

namespace {

/// Columns [begin, end) of a rank-2 tensor.
Tensor
ColSlice(const Tensor& t, int64_t begin, int64_t end)
{
    const int64_t rows = t.Dim(0);
    const int64_t cols = t.Dim(1);
    DGNN_ASSERT(begin >= 0 && begin <= end && end <= cols);
    Tensor out(Shape({rows, end - begin}));
    for (int64_t i = 0; i < rows; ++i) {
        std::copy(t.Data() + i * cols + begin, t.Data() + i * cols + end,
                  out.Data() + i * (end - begin));
    }
    return out;
}

}  // namespace

RnnCell::RnnCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : Module("rnn_cell"),
      input_size_(input_size),
      hidden_size_(hidden_size),
      ih_(input_size, hidden_size, rng),
      hh_(hidden_size, hidden_size, rng)
{
    RegisterChild(&ih_);
    RegisterChild(&hh_);
}

Tensor
RnnCell::Forward(const Tensor& x, const Tensor& h) const
{
    return ops::Tanh(ops::Add(ih_.Forward(x), hh_.Forward(h)));
}

int64_t
RnnCell::ForwardFlops(int64_t batch) const
{
    return ih_.ForwardFlops(batch) + hh_.ForwardFlops(batch) + 2 * batch * hidden_size_;
}

GruCell::GruCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : Module("gru_cell"),
      input_size_(input_size),
      hidden_size_(hidden_size),
      ih_(input_size, 3 * hidden_size, rng),
      hh_(hidden_size, 3 * hidden_size, rng)
{
    RegisterChild(&ih_);
    RegisterChild(&hh_);
}

Tensor
GruCell::Forward(const Tensor& x, const Tensor& h) const
{
    DGNN_CHECK(x.Dim(0) == h.Dim(0), "GRU batch mismatch: ", x.Dim(0), " vs ",
               h.Dim(0));
    const Tensor gi = ih_.Forward(x);  // [batch, 3H]
    const Tensor gh = hh_.Forward(h);  // [batch, 3H]
    const int64_t hs = hidden_size_;

    const Tensor r = ops::Sigmoid(
        ops::Add(ColSlice(gi, 0, hs), ColSlice(gh, 0, hs)));
    const Tensor z = ops::Sigmoid(
        ops::Add(ColSlice(gi, hs, 2 * hs), ColSlice(gh, hs, 2 * hs)));
    const Tensor n = ops::Tanh(ops::Add(
        ColSlice(gi, 2 * hs, 3 * hs), ops::Mul(r, ColSlice(gh, 2 * hs, 3 * hs))));

    // h' = (1 - z) * n + z * h
    Tensor one_minus_z(z.GetShape());
    for (int64_t i = 0; i < z.NumElements(); ++i) {
        one_minus_z.Data()[i] = 1.0f - z.Data()[i];
    }
    return ops::Add(ops::Mul(one_minus_z, n), ops::Mul(z, h));
}

int64_t
GruCell::ForwardFlops(int64_t batch) const
{
    return ih_.ForwardFlops(batch) + hh_.ForwardFlops(batch) +
           10 * batch * hidden_size_;
}

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size, Rng& rng)
    : Module("lstm_cell"),
      input_size_(input_size),
      hidden_size_(hidden_size),
      ih_(input_size, 4 * hidden_size, rng),
      hh_(hidden_size, 4 * hidden_size, rng)
{
    RegisterChild(&ih_);
    RegisterChild(&hh_);
}

LstmState
LstmCell::Forward(const Tensor& x, const LstmState& state) const
{
    DGNN_CHECK(x.Dim(0) == state.h.Dim(0), "LSTM batch mismatch: ", x.Dim(0), " vs ",
               state.h.Dim(0));
    const Tensor gates = ops::Add(ih_.Forward(x), hh_.Forward(state.h));
    const int64_t hs = hidden_size_;

    const Tensor i = ops::Sigmoid(ColSlice(gates, 0, hs));
    const Tensor f = ops::Sigmoid(ColSlice(gates, hs, 2 * hs));
    const Tensor g = ops::Tanh(ColSlice(gates, 2 * hs, 3 * hs));
    const Tensor o = ops::Sigmoid(ColSlice(gates, 3 * hs, 4 * hs));

    LstmState next;
    next.c = ops::Add(ops::Mul(f, state.c), ops::Mul(i, g));
    next.h = ops::Mul(o, ops::Tanh(next.c));
    return next;
}

LstmState
LstmCell::InitialState(int64_t batch) const
{
    return LstmState{Tensor(Shape({batch, hidden_size_})),
                     Tensor(Shape({batch, hidden_size_}))};
}

int64_t
LstmCell::ForwardFlops(int64_t batch) const
{
    return ih_.ForwardFlops(batch) + hh_.ForwardFlops(batch) +
           12 * batch * hidden_size_;
}

}  // namespace dgnn::nn
