#pragma once

/// @file
/// Base class for neural modules: a named registry of parameter tensors so
/// weight byte counts (for warm-up / transfer modeling) and deterministic
/// initialization are uniform across models.

#include <string>
#include <utility>
#include <vector>

#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

namespace dgnn::nn {

/// A named learnable tensor. The tensor itself is owned by the module as a
/// regular data member; the registry only points at it.
struct Parameter {
    std::string name;
    const Tensor* value = nullptr;
};

/// Base class: registers parameters and child modules (non-owning).
class Module {
  public:
    explicit Module(std::string name) : name_(std::move(name)) {}
    virtual ~Module() = default;

    Module(const Module&) = delete;
    Module& operator=(const Module&) = delete;

    const std::string& Name() const { return name_; }

    /// This module's own parameters (children excluded).
    const std::vector<Parameter>& OwnParameters() const { return parameters_; }

    /// All parameters including registered children, depth-first.
    std::vector<Parameter> AllParameters() const;

    /// Total parameter element count, children included.
    int64_t ParameterCount() const;

    /// Total parameter bytes, children included (weight footprint used by
    /// the warm-up and H2D transfer models).
    int64_t ParameterBytes() const;

  protected:
    /// Registers a member tensor as a parameter.
    void RegisterParameter(const std::string& name, const Tensor& value);

    /// Registers a child module for parameter aggregation.
    void RegisterChild(Module* child);

  private:
    std::string name_;
    std::vector<Parameter> parameters_;
    std::vector<Module*> children_;
};

}  // namespace dgnn::nn
