#include "nn/embedding.hpp"

#include "tensor/ops.hpp"

namespace dgnn::nn {

Embedding::Embedding(int64_t count, int64_t dim, Rng& rng)
    : Module("embedding"),
      count_(count),
      dim_(dim),
      table_(init::Normal(Shape({count, dim}), rng, 0.1f))
{
    RegisterParameter("table", table_);
}

Tensor
Embedding::Lookup(const std::vector<int64_t>& indices) const
{
    return ops::GatherRows(table_, indices);
}

void
Embedding::Update(const std::vector<int64_t>& indices, const Tensor& rows)
{
    ops::ScatterRows(table_, indices, rows);
}

Tensor
Embedding::Row(int64_t index) const
{
    return table_.Row(index);
}

void
Embedding::SetRow(int64_t index, const Tensor& row)
{
    Tensor r = row.Rank() == 1 ? row : row.Reshape(Shape({row.NumElements()}));
    table_.SetRow(index, r);
}

}  // namespace dgnn::nn
