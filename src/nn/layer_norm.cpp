#include "nn/layer_norm.hpp"

#include <cmath>

namespace dgnn::nn {

LayerNorm::LayerNorm(int64_t features, Rng& rng, float eps)
    : Module("layer_norm"),
      features_(features),
      eps_(eps),
      gamma_(init::Uniform(Shape({features}), rng, 0.9f, 1.1f)),
      beta_(Tensor(Shape({features})))
{
    RegisterParameter("gamma", gamma_);
    RegisterParameter("beta", beta_);
}

Tensor
LayerNorm::Forward(const Tensor& x) const
{
    DGNN_CHECK(x.Rank() == 2 && x.Dim(1) == features_, "LayerNorm expects [*, ",
               features_, "], got ", x.GetShape().ToString());
    const int64_t batch = x.Dim(0);
    Tensor out(x.GetShape());
    for (int64_t i = 0; i < batch; ++i) {
        const float* row = x.Data() + i * features_;
        double mean = 0.0;
        for (int64_t j = 0; j < features_; ++j) {
            mean += row[j];
        }
        mean /= static_cast<double>(features_);
        double var = 0.0;
        for (int64_t j = 0; j < features_; ++j) {
            const double d = row[j] - mean;
            var += d * d;
        }
        var /= static_cast<double>(features_);
        const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
        float* orow = out.Data() + i * features_;
        for (int64_t j = 0; j < features_; ++j) {
            orow[j] = gamma_.Data()[j] * (row[j] - static_cast<float>(mean)) * inv_std +
                      beta_.Data()[j];
        }
    }
    return out;
}

}  // namespace dgnn::nn
