#pragma once

/// @file
/// Device-resident row cache for hybrid inference. The paper's Fig 6/7
/// breakdowns show CPU->GPU data movement — node features and, for the
/// memory-based models (TGN/JODIE/DyRep), mutable node-memory rows shipped
/// over PCIe every mini-batch — as a first-order bottleneck. Interaction
/// streams have heavy temporal locality (repeat talkers on Wikipedia/Reddit
/// style graphs), so keeping recently touched rows resident on the device
/// converts repeat gathers into on-device hits.
///
/// The cache is an *index*, not storage: it decides, deterministically,
/// which row keys are device-resident and which must move. The matching
/// costs are paid through sim::Runtime's cache-aware transfer helpers
/// (GatherToDevice / WriteBackToHost) — a hit costs a device-side gather
/// kernel, a miss pays the PCIe transfer, and evicted dirty rows pay a
/// write-back copy. Numerics are never routed through the cache: it changes
/// the cost model only, so checksums are identical with and without it.

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

namespace dgnn::cache {

/// Which resident row a full cache sacrifices for a new one.
enum class EvictionPolicy {
    kLru,   ///< least-recently-touched row leaves first
    kFifo,  ///< oldest-inserted row leaves first (no touch promotion)
};

const char* ToString(EvictionPolicy policy);

/// Canonicalizes a cache-key list in place: ascending, duplicates removed.
/// The shared idiom for building a batch's unique touched-node set.
void SortUnique(std::vector<int64_t>& keys);

/// Counters one cache accumulates over its lifetime. All byte figures use
/// the configured row width, so hit_bytes is exactly the PCIe H2D traffic
/// the cache avoided ("bytes saved").
struct CacheStats {
    int64_t lookups = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t insertions = 0;
    int64_t evictions = 0;
    /// Dirty rows forced back to the host (evictions + explicit flushes).
    int64_t writeback_rows = 0;
    int64_t hit_bytes = 0;   ///< H2D bytes avoided by hits
    int64_t miss_bytes = 0;  ///< H2D bytes paid by misses

    /// hits / lookups, 0 when no lookups happened.
    double HitRate() const;

    CacheStats& operator+=(const CacheStats& other);
};

/// Field-wise difference (for "stats since the last snapshot" reporting).
CacheStats operator-(CacheStats lhs, const CacheStats& rhs);

/// Configuration of one cache instance.
struct DeviceCacheConfig {
    /// Device bytes the cache may occupy; 0 disables the cache entirely
    /// (every gather reports a miss and nothing is retained).
    int64_t capacity_bytes = 0;
    /// Width of one cached row in bytes (a node's feature or memory row).
    /// Set by the owning model; must be positive when the cache is enabled.
    int64_t row_bytes = 0;
    EvictionPolicy eviction = EvictionPolicy::kLru;

    /// A cache that never evicts — used when capturing serving cost
    /// profiles, where every unique row of the probe batch must miss
    /// exactly once.
    static DeviceCacheConfig Unbounded(int64_t row_bytes,
                                       EvictionPolicy eviction = EvictionPolicy::kLru);
};

/// Outcome of admitting one batch of row keys.
struct GatherResult {
    int64_t hit_rows = 0;
    int64_t miss_rows = 0;
    /// Dirty rows evicted by this gather — each owes a D2H write-back.
    int64_t writeback_rows = 0;
};

/// Logical-resource names of the rows one Gather touched, for the
/// happens-before hazard checker (analysis::HazardChecker). Each name is
/// generation-tagged ("row:<key>#g<gen>"): an insertion opens a new
/// residency episode with a fresh generation, so an evict-then-reinsert of
/// the same key yields a NEW resource and the checker never manufactures
/// false ordering requirements between unrelated episodes. Purely
/// observational — requesting a trace never changes cache state or stats.
struct GatherTrace {
    /// Resident rows the batch hit — read by the device-side hit-gather.
    std::vector<std::string> hit_rows;
    /// Rows this gather inserted — written by the batch's staged H2D copy.
    std::vector<std::string> inserted_rows;
    /// Dirty rows this gather evicted — read by the batch's write-back D2H.
    std::vector<std::string> evicted_dirty_rows;
};

/// The hazard-checker resource name of one residency episode of @p key.
std::string RowResource(int64_t key, int64_t generation);

/// Deterministic device-resident row cache (LRU or FIFO over row keys).
class DeviceCache {
  public:
    /// Disabled cache: every Gather is all-miss, nothing is retained.
    DeviceCache() = default;

    explicit DeviceCache(DeviceCacheConfig config);

    /// Whether the cache retains anything (positive capacity and row size).
    bool Enabled() const { return capacity_rows_ > 0; }

    int64_t RowBytes() const { return config_.row_bytes; }
    int64_t CapacityRows() const { return capacity_rows_; }
    int64_t ResidentRows() const { return static_cast<int64_t>(map_.size()); }
    int64_t ResidentBytes() const { return ResidentRows() * config_.row_bytes; }
    EvictionPolicy Eviction() const { return config_.eviction; }

    /// Looks up every key in order: residents count as hits (LRU promotes
    /// them), absences count as misses and are inserted, evicting per
    /// policy once capacity is reached. Duplicate keys within one call hit
    /// after their first occurrence. Deterministic in the key order.
    ///
    /// @p mark_dirty stamps every gathered row dirty at touch/insert time
    /// — the contract for mutable state (the batch WILL update these rows
    /// on the device). Marking at gather time rather than after the update
    /// keeps the accounting honest when the batch's working set exceeds
    /// capacity: a row inserted and evicted within the same batch still
    /// owes its write-back, which a later MarkDirty (absent keys ignored)
    /// would silently drop.
    /// When @p trace is non-null the touched rows' generation-tagged
    /// resource names are appended to it (observational only).
    GatherResult Gather(const std::vector<int64_t>& keys,
                        bool mark_dirty = false, GatherTrace* trace = nullptr);

    /// Marks resident rows dirty (mutated on the device; a write-back is
    /// owed when they leave). Absent keys are ignored.
    void MarkDirty(const std::vector<int64_t>& keys);

    /// Clears every dirty bit and returns how many rows need writing back
    /// (end-of-run synchronization of the host-side store). When
    /// @p flushed_resources is non-null the flushed rows' resource names
    /// are appended in ascending key order (deterministic regardless of
    /// the map's internal order).
    int64_t FlushDirty(std::vector<std::string>* flushed_resources = nullptr);

    bool Contains(int64_t key) const { return map_.count(key) > 0; }

    /// Lifetime counters (never reset by Gather/Flush).
    const CacheStats& Stats() const { return stats_; }
    void ResetStats() { stats_ = CacheStats{}; }

  private:
    /// Evicts the policy's victim row; accounts a write-back if dirty.
    void EvictOne(GatherResult& result, GatherTrace* trace);

    struct Entry {
        std::list<int64_t>::iterator pos;  ///< position in order_
        /// Residency episode this entry belongs to (see GatherTrace).
        int64_t generation = 0;
        bool dirty = false;
    };

    DeviceCacheConfig config_;
    int64_t capacity_rows_ = 0;
    /// Eviction order: front = next victim, back = most recently
    /// inserted/touched (touches promote only under LRU).
    std::list<int64_t> order_;
    std::unordered_map<int64_t, Entry> map_;
    CacheStats stats_;
    /// Residency-episode counter; bumped once per insertion.
    int64_t next_generation_ = 0;
};

}  // namespace dgnn::cache
