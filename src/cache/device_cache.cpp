#include "cache/device_cache.hpp"

#include <algorithm>
#include <limits>

#include "support/check.hpp"

namespace dgnn::cache {

const char*
ToString(EvictionPolicy policy)
{
    switch (policy) {
      case EvictionPolicy::kLru:
        return "LRU";
      case EvictionPolicy::kFifo:
        return "FIFO";
    }
    return "?";
}

void
SortUnique(std::vector<int64_t>& keys)
{
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
}

std::string
RowResource(int64_t key, int64_t generation)
{
    return "row:" + std::to_string(key) + "#g" + std::to_string(generation);
}

double
CacheStats::HitRate() const
{
    return lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups)
                       : 0.0;
}

CacheStats&
CacheStats::operator+=(const CacheStats& other)
{
    lookups += other.lookups;
    hits += other.hits;
    misses += other.misses;
    insertions += other.insertions;
    evictions += other.evictions;
    writeback_rows += other.writeback_rows;
    hit_bytes += other.hit_bytes;
    miss_bytes += other.miss_bytes;
    return *this;
}

CacheStats
operator-(CacheStats lhs, const CacheStats& rhs)
{
    lhs.lookups -= rhs.lookups;
    lhs.hits -= rhs.hits;
    lhs.misses -= rhs.misses;
    lhs.insertions -= rhs.insertions;
    lhs.evictions -= rhs.evictions;
    lhs.writeback_rows -= rhs.writeback_rows;
    lhs.hit_bytes -= rhs.hit_bytes;
    lhs.miss_bytes -= rhs.miss_bytes;
    return lhs;
}

DeviceCacheConfig
DeviceCacheConfig::Unbounded(int64_t row_bytes, EvictionPolicy eviction)
{
    DeviceCacheConfig config;
    config.capacity_bytes = std::numeric_limits<int64_t>::max();
    config.row_bytes = row_bytes;
    config.eviction = eviction;
    return config;
}

DeviceCache::DeviceCache(DeviceCacheConfig config) : config_(config)
{
    DGNN_CHECK(config_.capacity_bytes >= 0,
               "cache capacity must be non-negative, got ",
               config_.capacity_bytes);
    if (config_.capacity_bytes > 0) {
        DGNN_CHECK(config_.row_bytes > 0,
                   "an enabled cache needs a positive row size, got ",
                   config_.row_bytes);
        capacity_rows_ = config_.capacity_bytes / config_.row_bytes;
    }
}

GatherResult
DeviceCache::Gather(const std::vector<int64_t>& keys, bool mark_dirty,
                    GatherTrace* trace)
{
    GatherResult result;
    for (const int64_t key : keys) {
        ++stats_.lookups;
        const auto it = map_.find(key);
        if (it != map_.end()) {
            ++result.hit_rows;
            ++stats_.hits;
            stats_.hit_bytes += config_.row_bytes;
            it->second.dirty = it->second.dirty || mark_dirty;
            if (config_.eviction == EvictionPolicy::kLru) {
                order_.splice(order_.end(), order_, it->second.pos);
            }
            if (trace != nullptr) {
                trace->hit_rows.push_back(
                    RowResource(key, it->second.generation));
            }
            continue;
        }
        ++result.miss_rows;
        ++stats_.misses;
        stats_.miss_bytes += config_.row_bytes;
        if (capacity_rows_ == 0) {
            // Disabled / degenerate: nothing is retained, but a mutated
            // row still owes its sync-back to the host store.
            if (mark_dirty) {
                ++result.writeback_rows;
                ++stats_.writeback_rows;
            }
            continue;
        }
        while (ResidentRows() >= capacity_rows_) {
            EvictOne(result, trace);
        }
        const int64_t generation = next_generation_++;
        order_.push_back(key);
        map_.emplace(key, Entry{std::prev(order_.end()), generation, mark_dirty});
        ++stats_.insertions;
        if (trace != nullptr) {
            trace->inserted_rows.push_back(RowResource(key, generation));
        }
    }
    return result;
}

void
DeviceCache::EvictOne(GatherResult& result, GatherTrace* trace)
{
    DGNN_ASSERT(!order_.empty());
    const int64_t victim = order_.front();
    order_.pop_front();
    const auto it = map_.find(victim);
    DGNN_ASSERT(it != map_.end());
    if (it->second.dirty) {
        ++result.writeback_rows;
        ++stats_.writeback_rows;
        if (trace != nullptr) {
            trace->evicted_dirty_rows.push_back(
                RowResource(victim, it->second.generation));
        }
    }
    map_.erase(it);
    ++stats_.evictions;
}

void
DeviceCache::MarkDirty(const std::vector<int64_t>& keys)
{
    for (const int64_t key : keys) {
        const auto it = map_.find(key);
        if (it != map_.end()) {
            it->second.dirty = true;
        }
    }
}

int64_t
DeviceCache::FlushDirty(std::vector<std::string>* flushed_resources)
{
    // Walk in ascending key order so the resource list (and with it every
    // hazard report built from it) is independent of the hash map's
    // internal layout.
    std::vector<std::pair<int64_t, int64_t>> dirty_keys;
    for (auto& [key, entry] : map_) {  // determinism-ok: sorted below
        if (entry.dirty) {
            entry.dirty = false;
            dirty_keys.emplace_back(key, entry.generation);
        }
    }
    std::sort(dirty_keys.begin(), dirty_keys.end());
    if (flushed_resources != nullptr) {
        for (const auto& [key, generation] : dirty_keys) {
            flushed_resources->push_back(RowResource(key, generation));
        }
    }
    const auto flushed = static_cast<int64_t>(dirty_keys.size());
    stats_.writeback_rows += flushed;
    return flushed;
}

}  // namespace dgnn::cache
