#include "data/traffic_gen.hpp"

#include <cmath>
#include <vector>

#include "support/check.hpp"
#include "tensor/random.hpp"

namespace dgnn::data {

TrafficSpec
TrafficSpec::PemsLike()
{
    return TrafficSpec{};
}

Tensor
TrafficDataset::Window(int64_t t, int64_t len) const
{
    DGNN_CHECK(t >= 0 && t + len <= spec.num_timesteps, "window [", t, ", ", t + len,
               ") out of range for ", spec.num_timesteps, " timesteps");
    return signal.RowSlice(t, t + len);
}

int64_t
TrafficDataset::NumSamples() const
{
    return std::max<int64_t>(
        0, spec.num_timesteps - spec.history_len - spec.horizon + 1);
}

TrafficDataset
GenerateTraffic(const TrafficSpec& spec)
{
    DGNN_CHECK(spec.num_sensors > 0 && spec.num_timesteps > 0, "dataset '", spec.name,
               "' needs positive sizes");
    Rng rng(spec.seed);

    // Road graph: a ring of sensors with random chords, mimicking a highway
    // corridor with interchanges.
    std::vector<graph::Edge> edges;
    for (int64_t i = 0; i < spec.num_sensors; ++i) {
        const int64_t next = (i + 1) % spec.num_sensors;
        edges.push_back({i, next, 1.0f});
        edges.push_back({next, i, 1.0f});
        for (int64_t extra = 2; extra < spec.avg_degree; ++extra) {
            const int64_t j = rng.UniformInt(0, spec.num_sensors - 1);
            if (j != i) {
                edges.push_back({i, j, 0.5f});
            }
        }
    }
    graph::GraphSnapshot road(spec.num_sensors, edges);

    // Signal: daily sinusoid + two rush-hour bumps + sensor-specific phase +
    // smooth noise, spatially correlated along the ring.
    const int64_t width = spec.num_sensors * spec.channels;
    Tensor signal(Shape({spec.num_timesteps, width}));
    std::vector<float> sensor_phase(static_cast<size_t>(spec.num_sensors));
    for (auto& p : sensor_phase) {
        p = rng.Uniform(0.0f, 0.5f);
    }
    for (int64_t t = 0; t < spec.num_timesteps; ++t) {
        const double day = static_cast<double>(t) /
                           static_cast<double>(spec.num_timesteps);
        for (int64_t s = 0; s < spec.num_sensors; ++s) {
            const double phase = sensor_phase[static_cast<size_t>(s)];
            const double base = 0.5 + 0.3 * std::sin(2.0 * M_PI * (day + phase));
            const double rush1 = 0.4 * std::exp(-std::pow((day - 0.33) * 12.0, 2.0));
            const double rush2 = 0.5 * std::exp(-std::pow((day - 0.71) * 12.0, 2.0));
            for (int64_t c = 0; c < spec.channels; ++c) {
                const double v = base + rush1 + rush2 +
                                 0.05 * rng.Normal(0.0f, 1.0f) +
                                 0.1 * static_cast<double>(c);
                signal.At(t, s * spec.channels + c) = static_cast<float>(v);
            }
        }
    }

    return TrafficDataset{spec, std::move(road), std::move(signal)};
}

}  // namespace dgnn::data
