#include "data/social_evolution_gen.hpp"

#include <algorithm>
#include <map>

#include "support/check.hpp"
#include "tensor/random.hpp"

namespace dgnn::data {

PointProcessSpec
PointProcessSpec::SocialEvolutionLike()
{
    return PointProcessSpec{};
}

PointProcessSpec
PointProcessSpec::GithubLike()
{
    PointProcessSpec s;
    s.name = "github";
    s.num_actors = 400;
    s.num_events = 4000;
    s.association_frac = 0.12;  // follows/stars change topology more often
    s.burstiness = 4.0;
    s.seed = 82;
    return s;
}

PointProcessDataset
GeneratePointProcess(const PointProcessSpec& spec)
{
    DGNN_CHECK(spec.num_actors > 1 && spec.num_events >= 0, "dataset '", spec.name,
               "' needs at least two actors");
    Rng rng(spec.seed);

    // Recent-pair memory drives self-excitation.
    std::vector<std::pair<int64_t, int64_t>> hot_pairs;
    std::vector<graph::TemporalEvent> events;
    std::vector<PointEventKind> kinds;
    events.reserve(static_cast<size_t>(spec.num_events));
    kinds.reserve(static_cast<size_t>(spec.num_events));

    double t = 0.0;
    for (int64_t e = 0; e < spec.num_events; ++e) {
        t += rng.Exponential(1.0);
        int64_t u;
        int64_t v;
        const bool excited =
            !hot_pairs.empty() &&
            rng.Bernoulli(spec.burstiness / (spec.burstiness + 1.0));
        if (excited) {
            const auto& p = hot_pairs[static_cast<size_t>(
                rng.UniformInt(0, static_cast<int64_t>(hot_pairs.size()) - 1))];
            u = p.first;
            v = p.second;
        } else {
            u = rng.UniformInt(0, spec.num_actors - 1);
            do {
                v = rng.UniformInt(0, spec.num_actors - 1);
            } while (v == u);
        }
        graph::TemporalEvent ev;
        ev.src = u;
        ev.dst = v;
        ev.time = t;
        ev.feature_index = e;
        events.push_back(ev);
        kinds.push_back(rng.Bernoulli(spec.association_frac)
                            ? PointEventKind::kAssociation
                            : PointEventKind::kCommunication);

        hot_pairs.emplace_back(u, v);
        if (hot_pairs.size() > 32) {
            hot_pairs.erase(hot_pairs.begin());
        }
    }

    return PointProcessDataset{
        spec, graph::EventStream(spec.num_actors, std::move(events)),
        std::move(kinds)};
}

}  // namespace dgnn::data
