#pragma once

/// @file
/// Synthetic point-process dataset standing in for MIT Social Evolution and
/// GitHub archive streams (DyRep's and LDG's workloads): a small, dense set
/// of actors generating two event kinds — communication events (frequent,
/// between associated actors) and association events (rare topology
/// changes). Event times follow a self-exciting pattern: recent interaction
/// raises the pair's rate, matching the bursty dynamics DyRep models.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/event_stream.hpp"

namespace dgnn::data {

/// Kind of a point-process event (DyRep's two-process structure).
enum class PointEventKind {
    kCommunication,  ///< fast process (calls, messages, commits)
    kAssociation,    ///< slow process (friendship / follow topology change)
};

/// Parameters of the point-process generator.
struct PointProcessSpec {
    std::string name = "social_evolution";
    int64_t num_actors = 84;     ///< Social Evolution has 84 participants
    int64_t num_events = 4000;
    double association_frac = 0.05;  ///< fraction of association events
    double burstiness = 3.0;         ///< rate multiplier after an interaction
    uint64_t seed = 81;

    static PointProcessSpec SocialEvolutionLike();
    static PointProcessSpec GithubLike();
};

/// A generated point-process dataset.
struct PointProcessDataset {
    PointProcessSpec spec;
    graph::EventStream stream;
    std::vector<PointEventKind> kinds;  ///< aligned with stream order
};

/// Generates the dataset deterministically from the spec.
PointProcessDataset GeneratePointProcess(const PointProcessSpec& spec);

}  // namespace dgnn::data
