#include "data/molecular_gen.hpp"

#include <cmath>

#include "support/check.hpp"
#include "tensor/random.hpp"

namespace dgnn::data {

MolecularSpec
MolecularSpec::Iso17Like()
{
    return MolecularSpec{};
}

int64_t
MolecularDataset::FrameBytes() const
{
    return spec.num_atoms * spec.num_atoms * static_cast<int64_t>(sizeof(float));
}

MolecularDataset
GenerateMolecular(const MolecularSpec& spec)
{
    DGNN_CHECK(spec.num_atoms > 1 && spec.num_frames > 0, "dataset '", spec.name,
               "' needs positive sizes");
    Rng rng(spec.seed);

    // Atoms on a ring with oscillating radial displacement — bonds between
    // ring neighbors persist, longer-range bonds flicker with vibration.
    struct Atom {
        double angle;
        double amp;
        double freq;
        double phase;
    };
    std::vector<Atom> atoms(static_cast<size_t>(spec.num_atoms));
    for (int64_t i = 0; i < spec.num_atoms; ++i) {
        atoms[static_cast<size_t>(i)] = Atom{
            2.0 * M_PI * static_cast<double>(i) / static_cast<double>(spec.num_atoms),
            0.15 + 0.1 * rng.Uniform(),
            0.5 + rng.Uniform(),
            rng.Uniform(0.0f, static_cast<float>(2.0 * M_PI)),
        };
    }

    MolecularDataset ds;
    ds.spec = spec;
    ds.adjacency.reserve(static_cast<size_t>(spec.num_frames));
    const double ring_radius =
        1.0 / (2.0 * std::sin(M_PI / static_cast<double>(spec.num_atoms))) * 1.2;

    for (int64_t f = 0; f < spec.num_frames; ++f) {
        const double t = static_cast<double>(f) * 0.1;
        std::vector<double> xs(static_cast<size_t>(spec.num_atoms));
        std::vector<double> ys(static_cast<size_t>(spec.num_atoms));
        for (int64_t i = 0; i < spec.num_atoms; ++i) {
            const Atom& a = atoms[static_cast<size_t>(i)];
            const double r = ring_radius + a.amp * std::sin(a.freq * t + a.phase);
            xs[static_cast<size_t>(i)] = r * std::cos(a.angle);
            ys[static_cast<size_t>(i)] = r * std::sin(a.angle);
        }
        Tensor adj(Shape({spec.num_atoms, spec.num_atoms}));
        for (int64_t i = 0; i < spec.num_atoms; ++i) {
            for (int64_t j = 0; j < spec.num_atoms; ++j) {
                if (i == j) {
                    continue;
                }
                const double dx = xs[static_cast<size_t>(i)] - xs[static_cast<size_t>(j)];
                const double dy = ys[static_cast<size_t>(i)] - ys[static_cast<size_t>(j)];
                const double dist = std::sqrt(dx * dx + dy * dy);
                if (dist < spec.bond_threshold) {
                    adj.At(i, j) = 1.0f;
                }
            }
        }
        ds.adjacency.push_back(std::move(adj));
    }
    ds.atom_features =
        init::Normal(Shape({spec.num_atoms, spec.atom_feature_dim}), rng, 0.3f);
    return ds;
}

}  // namespace dgnn::data
