#include "data/snapshot_seq_gen.hpp"

#include <vector>

#include "support/check.hpp"
#include "tensor/random.hpp"

namespace dgnn::data {

SnapshotSpec
SnapshotSpec::SbmLike()
{
    SnapshotSpec s;
    s.name = "sbm";
    s.num_nodes = 1000;
    s.num_steps = 16;
    s.edges_per_step = 8000;
    s.node_feature_dim = 64;
    s.num_blocks = 10;
    s.intra_block_prob = 0.85;
    s.overlap = 0.7;
    s.seed = 51;
    return s;
}

SnapshotSpec
SnapshotSpec::BitcoinAlphaLike()
{
    SnapshotSpec s;
    s.name = "bitcoin_alpha";
    s.num_nodes = 3783 / 4;
    s.num_steps = 16;
    s.edges_per_step = 1500;
    s.node_feature_dim = 64;
    s.num_blocks = 6;
    s.intra_block_prob = 0.6;
    s.overlap = 0.5;
    s.signed_weights = true;
    s.seed = 52;
    return s;
}

SnapshotSpec
SnapshotSpec::RedditHyperlinkLike()
{
    SnapshotSpec s;
    s.name = "reddit_hyperlink";
    s.num_nodes = 2000;
    s.num_steps = 16;
    s.edges_per_step = 20000;  // larger average snapshot than Bitcoin
    s.node_feature_dim = 64;
    s.num_blocks = 20;
    s.intra_block_prob = 0.75;
    s.overlap = 0.55;
    s.seed = 53;
    return s;
}

namespace {

/// Draws one SBM edge.
graph::Edge
DrawEdge(Rng& rng, const SnapshotSpec& spec)
{
    const int64_t block_size = spec.num_nodes / spec.num_blocks;
    graph::Edge e;
    e.src = rng.UniformInt(0, spec.num_nodes - 1);
    if (rng.Bernoulli(spec.intra_block_prob) && block_size > 1) {
        const int64_t block = e.src / block_size;
        const int64_t lo = block * block_size;
        const int64_t hi = std::min(spec.num_nodes, lo + block_size) - 1;
        e.dst = rng.UniformInt(lo, hi);
    } else {
        e.dst = rng.UniformInt(0, spec.num_nodes - 1);
    }
    e.weight = spec.signed_weights ? (rng.Bernoulli(0.85) ? 1.0f : -1.0f)
                                   : rng.Uniform(0.5f, 1.5f);
    return e;
}

}  // namespace

SnapshotDataset
GenerateSnapshots(const SnapshotSpec& spec)
{
    DGNN_CHECK(spec.num_nodes > 0 && spec.num_steps > 0, "dataset '", spec.name,
               "' needs positive sizes");
    DGNN_CHECK(spec.overlap >= 0.0 && spec.overlap <= 1.0, "overlap ", spec.overlap,
               " out of [0, 1]");

    Rng rng(spec.seed);
    std::vector<graph::GraphSnapshot> snapshots;
    snapshots.reserve(static_cast<size_t>(spec.num_steps));

    std::vector<graph::Edge> carried;
    for (int64_t t = 0; t < spec.num_steps; ++t) {
        std::vector<graph::Edge> edges;
        edges.reserve(static_cast<size_t>(spec.edges_per_step));
        // Sliding-window overlap: keep a fraction of the previous edges.
        for (const graph::Edge& e : carried) {
            if (rng.Bernoulli(spec.overlap) &&
                static_cast<int64_t>(edges.size()) < spec.edges_per_step) {
                edges.push_back(e);
            }
        }
        while (static_cast<int64_t>(edges.size()) < spec.edges_per_step) {
            edges.push_back(DrawEdge(rng, spec));
        }
        carried = edges;
        snapshots.emplace_back(spec.num_nodes, edges);
    }

    SnapshotDataset ds{
        spec,
        graph::SnapshotSequence(spec.num_nodes, std::move(snapshots)),
        init::Normal(Shape({spec.num_nodes, spec.node_feature_dim}), rng, 0.3f)};
    return ds;
}

}  // namespace dgnn::data
