#pragma once

/// @file
/// Synthetic traffic-sensor dataset standing in for Caltrans PeMS (ASTGNN's
/// workload): a fixed road-sensor graph plus a [time, sensors, channels]
/// signal tensor with daily periodicity, rush-hour peaks, and spatial
/// correlation along the road graph.

#include <cstdint>
#include <string>

#include "graph/snapshot.hpp"
#include "tensor/tensor.hpp"

namespace dgnn::data {

/// Parameters of the traffic generator.
struct TrafficSpec {
    std::string name = "pems";
    int64_t num_sensors = 307;     ///< PeMS04 has 307 sensors
    int64_t num_timesteps = 288;   ///< one day at 5-minute bins
    int64_t channels = 3;          ///< flow / occupancy / speed
    int64_t avg_degree = 4;        ///< road-graph connectivity
    int64_t history_len = 12;      ///< encoder input window
    int64_t horizon = 12;          ///< decoder prediction window
    uint64_t seed = 61;

    static TrafficSpec PemsLike();
};

/// A generated traffic dataset.
struct TrafficDataset {
    TrafficSpec spec;
    graph::GraphSnapshot road_graph;  ///< static sensor adjacency
    Tensor signal;                    ///< [num_timesteps, num_sensors * channels]

    /// Signal window [t, t+len) flattened to [len, sensors*channels].
    Tensor Window(int64_t t, int64_t len) const;

    /// Number of (history, horizon) samples available.
    int64_t NumSamples() const;
};

/// Generates the dataset deterministically from the spec.
TrafficDataset GenerateTraffic(const TrafficSpec& spec);

}  // namespace dgnn::data
