#include "data/temporal_interactions.hpp"

#include <cmath>
#include <vector>

#include "support/check.hpp"
#include "tensor/random.hpp"

namespace dgnn::data {

InteractionSpec
InteractionSpec::WikipediaLike(int64_t num_events)
{
    InteractionSpec s;
    s.name = "wikipedia";
    s.num_users = 8227 / 4;  // scaled 4x down; ratios preserved
    s.num_items = 1000 / 4;
    s.num_events = num_events;
    s.edge_feature_dim = 172;
    s.popularity_alpha = 2.2;
    s.repeat_prob = 0.79;  // Wikipedia has strong repeat editing
    s.seed = 41;
    return s;
}

InteractionSpec
InteractionSpec::RedditLike(int64_t num_events)
{
    InteractionSpec s;
    s.name = "reddit";
    s.num_users = 10000 / 4;
    s.num_items = 984 / 4;
    s.num_events = num_events;
    s.edge_feature_dim = 172;
    s.popularity_alpha = 2.8;   // heavier popularity tail than Wikipedia
    s.repeat_prob = 0.61;
    s.seed = 42;
    return s;
}

InteractionSpec
InteractionSpec::LastFmLike(int64_t num_events)
{
    InteractionSpec s;
    s.name = "lastfm";
    s.num_users = 980 / 4;
    s.num_items = 1000 / 4;
    s.num_events = num_events;
    s.edge_feature_dim = 2;  // LastFM has no rich edge features
    s.popularity_alpha = 1.8;
    s.repeat_prob = 0.88;  // users replay the same artists
    s.seed = 43;
    return s;
}

namespace {

/// Draws an item with approximate power-law popularity via inverse CDF.
int64_t
DrawPowerLaw(Rng& rng, int64_t n, double alpha)
{
    // Zipf-like: index ~ floor(n * u^alpha) biases toward low indices.
    const double u = rng.Uniform(0.0f, 1.0f);
    const double x = std::pow(u, alpha);
    int64_t idx = static_cast<int64_t>(x * static_cast<double>(n));
    return std::min(idx, n - 1);
}

}  // namespace

InteractionDataset
GenerateInteractions(const InteractionSpec& spec)
{
    DGNN_CHECK(spec.num_users > 0 && spec.num_items > 0, "dataset '", spec.name,
               "' needs positive user/item counts");
    DGNN_CHECK(spec.num_events >= 0, "negative event count");

    Rng rng(spec.seed);
    const int64_t num_nodes = spec.num_users + spec.num_items;

    // Per-user most recent item (session behaviour).
    std::vector<int64_t> last_item(static_cast<size_t>(spec.num_users), -1);

    std::vector<graph::TemporalEvent> events;
    events.reserve(static_cast<size_t>(spec.num_events));
    double t = 0.0;
    for (int64_t e = 0; e < spec.num_events; ++e) {
        t += rng.Exponential(1.0 / spec.mean_gap);
        const int64_t user = DrawPowerLaw(rng, spec.num_users, 1.3);
        int64_t item;
        if (last_item[static_cast<size_t>(user)] >= 0 &&
            rng.Bernoulli(spec.repeat_prob)) {
            item = last_item[static_cast<size_t>(user)];
        } else {
            item = DrawPowerLaw(rng, spec.num_items, spec.popularity_alpha);
        }
        last_item[static_cast<size_t>(user)] = item;

        graph::TemporalEvent ev;
        ev.src = user;
        ev.dst = spec.num_users + item;
        ev.time = t;
        ev.feature_index = e;
        events.push_back(ev);
    }

    InteractionDataset ds{spec,
                          graph::EventStream(num_nodes, std::move(events)),
                          init::Normal(Shape({spec.num_events, spec.edge_feature_dim}),
                                       rng, 0.3f),
                          init::Normal(Shape({num_nodes, spec.edge_feature_dim}), rng,
                                       0.3f)};
    return ds;
}

}  // namespace dgnn::data
