#pragma once

/// @file
/// Synthetic discrete-time snapshot sequences standing in for the paper's
/// EvolveGCN datasets: Stochastic Block Model sequences, Bitcoin-Alpha-like
/// signed trust graphs, and Reddit-Hyperlink-like community graphs. Adjacent
/// snapshots share a sliding-window overlap fraction, which is the property
/// the delta-transfer optimization (paper 5.2.2) exploits.

#include <cstdint>
#include <string>

#include "graph/snapshot_sequence.hpp"
#include "tensor/tensor.hpp"

namespace dgnn::data {

/// Parameters of the snapshot-sequence generator.
struct SnapshotSpec {
    std::string name = "synthetic";
    int64_t num_nodes = 1000;
    int64_t num_steps = 16;
    int64_t edges_per_step = 8000;
    int64_t node_feature_dim = 64;
    int64_t num_blocks = 10;       ///< SBM communities
    double intra_block_prob = 0.8; ///< edge stays inside its community
    double overlap = 0.6;          ///< fraction of edges carried to next step
    bool signed_weights = false;   ///< Bitcoin-style +/- trust weights
    uint64_t seed = 7;

    /// IBM EvolveGCN SBM benchmark-like sequence.
    static SnapshotSpec SbmLike();

    /// Bitcoin-Alpha-like signed trust network (small, sparse).
    static SnapshotSpec BitcoinAlphaLike();

    /// Reddit-Hyperlink-like community graph (larger snapshots).
    static SnapshotSpec RedditHyperlinkLike();
};

/// A generated DTDG: snapshots + per-node features.
struct SnapshotDataset {
    SnapshotSpec spec;
    graph::SnapshotSequence sequence;
    Tensor node_features;  ///< [num_nodes, node_feature_dim]
};

/// Generates the dataset deterministically from the spec.
SnapshotDataset GenerateSnapshots(const SnapshotSpec& spec);

}  // namespace dgnn::data
