#pragma once

/// @file
/// Synthetic temporal-interaction datasets standing in for the paper's
/// Wikipedia / Reddit / LastFM streams (SNAP JODIE datasets): bipartite
/// user-item interaction streams with power-law item popularity, repeating
/// user sessions, and per-event edge features. The generator is matched on
/// the structural statistics that drive the hardware bottlenecks: event
/// count, node counts, degree skew, and feature width.

#include <cstdint>
#include <string>

#include "graph/event_stream.hpp"
#include "tensor/tensor.hpp"

namespace dgnn::data {

/// Parameters of the bipartite interaction generator.
struct InteractionSpec {
    std::string name = "synthetic";
    int64_t num_users = 1000;
    int64_t num_items = 1000;
    int64_t num_events = 20000;
    int64_t edge_feature_dim = 172;  ///< Wikipedia/Reddit use 172-d LIWC features
    double popularity_alpha = 2.0;   ///< skew exponent for item choice
    double repeat_prob = 0.7;        ///< chance a user revisits a recent item
    double mean_gap = 1.0;           ///< mean inter-event time
    uint64_t seed = 1;

    /// Wikipedia-like: ~8K users, ~1K pages, dense repeat behaviour.
    static InteractionSpec WikipediaLike(int64_t num_events = 20000);

    /// Reddit-like: ~10K users, ~1K subreddits, larger graph, heavier tail.
    static InteractionSpec RedditLike(int64_t num_events = 20000);

    /// LastFM-like: ~1K users, ~1K artists, long histories, weak features.
    static InteractionSpec LastFmLike(int64_t num_events = 20000);
};

/// A generated interaction dataset: stream + features.
struct InteractionDataset {
    InteractionSpec spec;
    graph::EventStream stream;     ///< node ids: users [0, U), items [U, U+I)
    Tensor edge_features;          ///< [num_events, edge_feature_dim]
    Tensor node_features;          ///< [U+I, edge_feature_dim]

    int64_t NumNodes() const { return stream.NumNodes(); }

    /// Item node id offset (items are numbered after users).
    int64_t ItemOffset() const { return spec.num_users; }
};

/// Generates the dataset deterministically from the spec.
InteractionDataset GenerateInteractions(const InteractionSpec& spec);

}  // namespace dgnn::data
