#pragma once

/// @file
/// Synthetic molecular-trajectory dataset standing in for ISO17 (MolDGNN's
/// workload): sequences of molecular-graph snapshots where atoms oscillate
/// and bonds form/break with distance, producing a time series of adjacency
/// matrices — the large tensors whose CPU<->GPU shuttling dominates MolDGNN.

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace dgnn::data {

/// Parameters of the molecular-trajectory generator.
struct MolecularSpec {
    std::string name = "iso17";
    int64_t num_atoms = 19;        ///< ISO17 molecules are C7O2H10 (19 atoms)
    int64_t num_frames = 512;      ///< trajectory length
    int64_t atom_feature_dim = 16; ///< one-hot element + charge channels
    double bond_threshold = 1.24;  ///< bond when distance < threshold
    uint64_t seed = 71;

    static MolecularSpec Iso17Like();
};

/// A molecular trajectory: per-frame dense adjacency + atom features.
struct MolecularDataset {
    MolecularSpec spec;
    /// Per-frame dense adjacency matrices, each [num_atoms, num_atoms].
    std::vector<Tensor> adjacency;
    Tensor atom_features;  ///< [num_atoms, atom_feature_dim]

    int64_t NumFrames() const { return static_cast<int64_t>(adjacency.size()); }

    /// Bytes of one frame's adjacency (the H2D/D2H unit of MolDGNN).
    int64_t FrameBytes() const;
};

/// Generates the dataset deterministically from the spec.
MolecularDataset GenerateMolecular(const MolecularSpec& spec);

}  // namespace dgnn::data
