#pragma once

/// @file
/// Per-batch hybrid dispatch: predict-then-place. The dispatcher prices a
/// batch's kernel chain on the CPU spec, on the GPU spec (plus PCIe
/// transfers), and on the GPU with the registered fusion chains collapsed,
/// then routes the batch to the cheapest placement. The predictor IS the
/// analytic cost model (sim/kernel.hpp, sim/fusion.hpp) — the same formulas
/// the runtime charges — so on the serial executor the decision is exact up
/// to per-launch submit/sync overheads, which only make the GPU predictions
/// optimistic (CPU is chosen conservatively).
///
/// This reproduces the Dynasparse-style dynamic placement and the
/// embedding-dimension CPU/GPU crossover of Adiletta et al. (PAPERS.md):
/// tiny or launch-bound batches stay on the host (no PCIe latency, 2 us
/// launches), dense batches go to the device, and irregular byte-bound
/// chains pick fused vs unfused per batch.
///
/// Decide() is a pure function of the WorkEstimate and the config — no
/// clocks, no RNG, no mutable state — so dispatch decisions are
/// seed-deterministic by construction.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/device_spec.hpp"
#include "sim/kernel.hpp"

namespace dgnn::dispatch {

/// Where one batch executes.
enum class Placement {
    kCpu,       ///< host runs the kernels synchronously; nothing crosses PCIe
    kGpu,       ///< device runs the unfused kernel sequence
    kGpuFused,  ///< device runs the registered chains collapsed (fewer launches)
};

inline constexpr int kNumPlacements = 3;

const char* ToString(Placement placement);

/// Dispatch policy: three static baselines plus the per-batch hybrid.
enum class DispatchMode {
    kStaticCpu,
    kStaticGpu,
    kStaticGpuFused,
    kHybrid,
};

const char* ToString(DispatchMode mode);

/// Everything the dispatcher may inspect about one batch. Borrowed kernel
/// vectors (typically a captured serve::BatchProfile's); fused_kernels may
/// be null when no fused profile exists, collapsing kGpuFused into kGpu.
struct WorkEstimate {
    int64_t batch_size = 0;

    /// Host-side work (batch build, sampling, framework overhead), us.
    sim::SimTime host_us = 0.0;

    /// Bytes that must cross PCIe if the batch runs on the device. Includes
    /// state rows a device run would have to stage (worst-case all-miss).
    int64_t h2d_bytes = 0;
    int64_t d2h_bytes = 0;

    const std::vector<sim::KernelDesc>* kernels = nullptr;
    const std::vector<sim::KernelDesc>* fused_kernels = nullptr;
};

/// Decision features derived from the estimate — the "batch stats" the
/// placement is a pure function of. Surfaced through obs/ attribution.
struct BatchStats {
    int64_t batch_size = 0;
    int64_t launches = 0;
    int64_t fused_launches = 0;
    int64_t transfer_bytes = 0;

    /// Share of kernel bytes touched with irregular (gather/scatter) access
    /// — the sparsity signal.
    double irregular_byte_frac = 0.0;

    /// Widest kernel in the chain — the density/embedding-dim signal.
    int64_t max_parallel_items = 0;
};

/// The routing verdict plus the predictions it was based on, for attribution
/// and predict-vs-actual auditing.
struct PlacementDecision {
    Placement placement = Placement::kGpu;
    sim::SimTime predicted_cpu_us = 0.0;
    sim::SimTime predicted_gpu_us = 0.0;
    sim::SimTime predicted_gpu_fused_us = 0.0;
    BatchStats stats;
};

/// Dispatcher configuration: the device specs to price against and the
/// transfer model (defaults mirror sim::RuntimeConfig's).
struct DispatcherConfig {
    DispatchMode mode = DispatchMode::kHybrid;
    sim::DeviceSpec cpu;  ///< defaulted to XeonGold6226R() by the ctor
    sim::DeviceSpec gpu;  ///< defaulted to RtxA6000() by the ctor
    double pcie_bandwidth_gbps = 12.0;
    sim::SimTime pcie_latency_us = 10.0;
};

/// Stateless per-batch placement engine.
class HybridDispatcher {
  public:
    HybridDispatcher();
    explicit HybridDispatcher(DispatcherConfig config);

    /// Route one batch. Pure function of (estimate, allow_cpu, config).
    /// allow_cpu=false masks the CPU placement — serving uses it for
    /// cache-enabled sessions whose state is device-resident (a host run
    /// would bypass the cached rows). kStaticCpu with allow_cpu=false
    /// falls back to kGpu.
    [[nodiscard]] PlacementDecision Decide(const WorkEstimate& estimate,
                                           bool allow_cpu = true) const;

    /// The decision features alone (also computed inside Decide()).
    [[nodiscard]] static BatchStats Stats(const WorkEstimate& estimate);

    [[nodiscard]] const DispatcherConfig& Config() const { return config_; }

  private:
    DispatcherConfig config_;
};

}  // namespace dgnn::dispatch
