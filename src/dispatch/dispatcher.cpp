#include "dispatch/dispatcher.hpp"

#include <algorithm>
#include <utility>

#include "support/check.hpp"

namespace dgnn::dispatch {
namespace {

sim::SimTime
TransferTime(int64_t bytes, const DispatcherConfig& config)
{
    if (bytes <= 0) {
        return 0.0;
    }
    // GB/s == kbytes per microsecond; one latency per blocking copy.
    return config.pcie_latency_us +
           static_cast<double>(bytes) / (config.pcie_bandwidth_gbps * 1e3);
}

sim::SimTime
ChainTime(const sim::DeviceSpec& spec,
          const std::vector<sim::KernelDesc>& kernels)
{
    sim::SimTime total = 0.0;
    for (const sim::KernelDesc& kernel : kernels) {
        total += sim::KernelDuration(spec, kernel);
    }
    return total;
}

}  // namespace

const char*
ToString(Placement placement)
{
    switch (placement) {
        case Placement::kCpu:
            return "cpu";
        case Placement::kGpu:
            return "gpu";
        case Placement::kGpuFused:
            return "gpu-fused";
    }
    return "?";
}

const char*
ToString(DispatchMode mode)
{
    switch (mode) {
        case DispatchMode::kStaticCpu:
            return "static-cpu";
        case DispatchMode::kStaticGpu:
            return "static-gpu";
        case DispatchMode::kStaticGpuFused:
            return "static-gpu-fused";
        case DispatchMode::kHybrid:
            return "hybrid";
    }
    return "?";
}

HybridDispatcher::HybridDispatcher() : HybridDispatcher(DispatcherConfig{}) {}

HybridDispatcher::HybridDispatcher(DispatcherConfig config)
    : config_(std::move(config))
{
    if (config_.cpu.name.empty()) {
        config_.cpu = sim::DeviceSpec::XeonGold6226R();
    }
    if (config_.gpu.name.empty()) {
        config_.gpu = sim::DeviceSpec::RtxA6000();
    }
    DGNN_CHECK(config_.pcie_bandwidth_gbps > 0.0,
               "dispatcher needs positive PCIe bandwidth");
}

BatchStats
HybridDispatcher::Stats(const WorkEstimate& estimate)
{
    DGNN_CHECK(estimate.kernels != nullptr,
               "WorkEstimate carries no kernel chain");
    BatchStats stats;
    stats.batch_size = estimate.batch_size;
    stats.launches = static_cast<int64_t>(estimate.kernels->size());
    stats.fused_launches =
        estimate.fused_kernels != nullptr
            ? static_cast<int64_t>(estimate.fused_kernels->size())
            : stats.launches;
    stats.transfer_bytes = estimate.h2d_bytes + estimate.d2h_bytes;
    int64_t total_bytes = 0;
    int64_t irregular_bytes = 0;
    for (const sim::KernelDesc& kernel : *estimate.kernels) {
        total_bytes += kernel.bytes;
        if (kernel.irregular) {
            irregular_bytes += kernel.bytes;
        }
        stats.max_parallel_items =
            std::max(stats.max_parallel_items, kernel.parallel_items);
    }
    stats.irregular_byte_frac =
        total_bytes > 0
            ? static_cast<double>(irregular_bytes) / static_cast<double>(total_bytes)
            : 0.0;
    return stats;
}

PlacementDecision
HybridDispatcher::Decide(const WorkEstimate& estimate, bool allow_cpu) const
{
    PlacementDecision decision;
    decision.stats = Stats(estimate);

    // CPU: the host already owns the inputs and keeps the outputs — no PCIe,
    // but every kernel runs at host throughput and host launch cost.
    decision.predicted_cpu_us =
        estimate.host_us + ChainTime(config_.cpu, *estimate.kernels);

    // GPU: pay both blocking transfers around the kernel chain. The serial
    // executor additionally pays per-launch submit and sync costs the model
    // omits, so these predictions are optimistic for the device — the CPU
    // placement is only chosen when it wins against a flattering GPU bound.
    const sim::SimTime transfers = TransferTime(estimate.h2d_bytes, config_) +
                                   TransferTime(estimate.d2h_bytes, config_);
    decision.predicted_gpu_us =
        estimate.host_us + transfers + ChainTime(config_.gpu, *estimate.kernels);
    decision.predicted_gpu_fused_us =
        estimate.fused_kernels != nullptr
            ? estimate.host_us + transfers +
                  ChainTime(config_.gpu, *estimate.fused_kernels)
            : decision.predicted_gpu_us;

    // No fused chain offered: kGpuFused collapses into kGpu (the static
    // fused policy falls back exactly like masked kStaticCpu does).
    const bool have_fused = estimate.fused_kernels != nullptr;

    switch (config_.mode) {
        case DispatchMode::kStaticCpu:
            decision.placement =
                allow_cpu ? Placement::kCpu : Placement::kGpu;
            return decision;
        case DispatchMode::kStaticGpu:
            decision.placement = Placement::kGpu;
            return decision;
        case DispatchMode::kStaticGpuFused:
            decision.placement =
                have_fused ? Placement::kGpuFused : Placement::kGpu;
            return decision;
        case DispatchMode::kHybrid:
            break;
    }

    // Argmin with a fixed tie-break order (fused, unfused, CPU) so equal
    // predictions dispatch identically on every run.
    decision.placement = have_fused ? Placement::kGpuFused : Placement::kGpu;
    sim::SimTime best = decision.predicted_gpu_fused_us;
    if (decision.predicted_gpu_us < best) {
        decision.placement = Placement::kGpu;
        best = decision.predicted_gpu_us;
    }
    if (allow_cpu && decision.predicted_cpu_us < best) {
        decision.placement = Placement::kCpu;
    }
    return decision;
}

}  // namespace dgnn::dispatch
