#include "serve/request.hpp"

#include "support/check.hpp"
#include "tensor/random.hpp"

namespace dgnn::serve {

std::vector<sim::SimTime>
PoissonArrivals(double rate_qps, int64_t n, uint64_t seed)
{
    DGNN_CHECK(rate_qps > 0.0, "arrival rate must be positive, got ", rate_qps);
    DGNN_CHECK(n >= 0, "request count must be non-negative, got ", n);
    // Rng::Exponential takes a rate in events per time unit; ours is per
    // second while the timeline is microseconds.
    const double rate_per_us = rate_qps / 1e6;
    Rng rng(seed);
    std::vector<sim::SimTime> arrivals;
    arrivals.reserve(static_cast<size_t>(n));
    sim::SimTime t = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        t += rng.Exponential(rate_per_us);
        arrivals.push_back(t);
    }
    return arrivals;
}

std::vector<sim::SimTime>
TraceArrivals(const graph::EventStream& stream, double target_qps, int64_t n)
{
    DGNN_CHECK(target_qps > 0.0, "target rate must be positive, got ",
               target_qps);
    DGNN_CHECK(n >= 0, "request count must be non-negative, got ", n);
    DGNN_CHECK(stream.NumEvents() >= 2,
               "trace-driven arrivals need a stream with at least 2 events");

    // Gather the stream's inter-arrival gaps (cycled if needed) and their
    // mean, then rescale so the mean gap matches the target rate.
    const int64_t num_gaps = stream.NumEvents() - 1;
    std::vector<double> gaps;
    gaps.reserve(static_cast<size_t>(n));
    double gap_sum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        const int64_t g = i % num_gaps;
        const double gap = stream.Event(g + 1).time - stream.Event(g).time;
        gaps.push_back(gap);
        gap_sum += gap;
    }
    const double mean_gap =
        n > 0 ? gap_sum / static_cast<double>(n) : 0.0;
    const double target_gap_us = 1e6 / target_qps;
    // A degenerate trace (all simultaneous events) falls back to uniform
    // spacing at the target rate.
    const double scale = mean_gap > 0.0 ? target_gap_us / mean_gap : 0.0;

    std::vector<sim::SimTime> arrivals;
    arrivals.reserve(static_cast<size_t>(n));
    sim::SimTime t = 0.0;
    for (int64_t i = 0; i < n; ++i) {
        t += scale > 0.0 ? gaps[static_cast<size_t>(i)] * scale : target_gap_us;
        arrivals.push_back(t);
    }
    return arrivals;
}

std::vector<Request>
TraceRequests(const graph::EventStream& stream, double target_qps, int64_t n)
{
    const std::vector<sim::SimTime> arrivals = TraceArrivals(stream, target_qps, n);
    std::vector<Request> requests;
    requests.reserve(arrivals.size());
    for (int64_t i = 0; i < n; ++i) {
        const graph::TemporalEvent& e = stream.Event(i % stream.NumEvents());
        requests.push_back(Request{i, arrivals[static_cast<size_t>(i)], e.src,
                                   e.dst});
    }
    return requests;
}

}  // namespace dgnn::serve
