#include "serve/batch_policy.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dgnn::serve {

FixedSizePolicy::FixedSizePolicy(int64_t batch_size) : batch_size_(batch_size)
{
    DGNN_CHECK(batch_size_ > 0, "batch size must be positive, got ",
               batch_size_);
}

std::string
FixedSizePolicy::Name() const
{
    return "fixed(" + std::to_string(batch_size_) + ")";
}

BatchDecision
FixedSizePolicy::Decide(const std::deque<Request>& queue, sim::SimTime /*now_us*/,
                        bool stream_ended)
{
    const auto depth = static_cast<int64_t>(queue.size());
    if (depth >= batch_size_) {
        return {batch_size_, kNoWake};
    }
    if (stream_ended && depth > 0) {
        return {depth, kNoWake};
    }
    return {0, kNoWake};
}

TimeoutPolicy::TimeoutPolicy(int64_t batch_size, sim::SimTime timeout_us)
    : batch_size_(batch_size), timeout_us_(timeout_us)
{
    DGNN_CHECK(batch_size_ > 0, "batch size must be positive, got ",
               batch_size_);
    DGNN_CHECK(timeout_us_ >= 0.0, "timeout must be non-negative, got ",
               timeout_us_);
}

std::string
TimeoutPolicy::Name() const
{
    return "timeout(" + std::to_string(batch_size_) + "," +
           std::to_string(static_cast<int64_t>(timeout_us_)) + "us)";
}

BatchDecision
TimeoutPolicy::Decide(const std::deque<Request>& queue, sim::SimTime now_us,
                      bool stream_ended)
{
    const auto depth = static_cast<int64_t>(queue.size());
    if (depth >= batch_size_) {
        return {batch_size_, kNoWake};
    }
    if (depth == 0) {
        return {0, kNoWake};
    }
    const sim::SimTime deadline = queue.front().arrival_us + timeout_us_;
    if (stream_ended || now_us >= deadline) {
        return {depth, kNoWake};
    }
    return {0, deadline};
}

AdaptivePolicy::AdaptivePolicy(int64_t min_batch, int64_t max_batch,
                               sim::SimTime deadline_us)
    : min_batch_(min_batch), max_batch_(max_batch), deadline_us_(deadline_us)
{
    DGNN_CHECK(min_batch_ > 0, "min batch must be positive, got ", min_batch_);
    DGNN_CHECK(max_batch_ >= min_batch_,
               "max batch must be >= min batch, got ", max_batch_);
    DGNN_CHECK(deadline_us_ >= 0.0, "deadline must be non-negative, got ",
               deadline_us_);
}

std::string
AdaptivePolicy::Name() const
{
    return "adaptive(" + std::to_string(min_batch_) + ".." +
           std::to_string(max_batch_) + "," +
           std::to_string(static_cast<int64_t>(deadline_us_)) + "us)";
}

void
AdaptivePolicy::OnArrival(sim::SimTime arrival_us)
{
    if (saw_arrival_) {
        const sim::SimTime gap = arrival_us - last_arrival_us_;
        constexpr double kAlpha = 0.2;
        // Estimate presence is tracked by a boolean, not by the value: a
        // first gap of exactly 0 (simultaneous arrivals in a burst) is a
        // legitimate "infinitely fast" estimate, not its absence.
        ewma_gap_us_ = has_gap_estimate_
                           ? (1.0 - kAlpha) * ewma_gap_us_ + kAlpha * gap
                           : gap;
        has_gap_estimate_ = true;
    }
    last_arrival_us_ = arrival_us;
    saw_arrival_ = true;
}

BatchDecision
AdaptivePolicy::Decide(const std::deque<Request>& queue, sim::SimTime now_us,
                       bool stream_ended)
{
    const auto depth = static_cast<int64_t>(queue.size());
    if (depth >= max_batch_) {
        return {max_batch_, kNoWake};
    }
    if (depth == 0) {
        return {0, kNoWake};
    }
    if (stream_ended) {
        return {depth, kNoWake};
    }
    const sim::SimTime deadline = queue.front().arrival_us + deadline_us_;
    if (now_us >= deadline) {
        return {depth, kNoWake};
    }
    // Size x deadline tradeoff: if the remaining slots cannot plausibly
    // fill before the deadline (at the estimated arrival rate), stop
    // accumulating once min_batch is reached instead of eating the full
    // deadline for nothing.
    const sim::SimTime fill_us =
        ewma_gap_us_ * static_cast<double>(max_batch_ - depth);
    if (depth >= min_batch_ &&
        (!has_gap_estimate_ || now_us + fill_us > deadline)) {
        return {depth, kNoWake};
    }
    return {0, deadline};
}

}  // namespace dgnn::serve
