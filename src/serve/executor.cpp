#include "serve/executor.hpp"

#include <algorithm>
#include <optional>

#include "support/check.hpp"

namespace dgnn::serve {

namespace {

/// The four per-slot staging buffers a batch flows through (hazard-checker
/// resources; see DESIGN.md §11). Serial execution always stages through
/// slot 0 — every stage blocks the host, so reuse is host-ordered. The
/// pipelined executor rotates slots like its double-buffered staging
/// memory: batch k owns slot k % depth until the throttle wait on its
/// completion event releases it.
struct SlotResources {
    std::string host_in;   ///< pinned host input staging
    std::string dev_in;    ///< device-side batch input buffer
    std::string dev_out;   ///< device-side batch result buffer
    std::string host_out;  ///< pinned host result staging

    explicit SlotResources(int64_t slot)
        : host_in("host_in#" + std::to_string(slot)),
          dev_in("dev_in#" + std::to_string(slot)),
          dev_out("dev_out#" + std::to_string(slot)),
          host_out("host_out#" + std::to_string(slot))
    {
    }
};

/// Footprint of the staged input copy: consumes the host staging buffer,
/// lands the device input buffer, and opens the residency episode of every
/// row the gather inserted (missed rows ride this copy).
sim::AccessSet
InputCopyAccess(const SlotResources& slot, const CacheBatchCost& cache_cost)
{
    sim::AccessSet access;
    access.reads.push_back(slot.host_in);
    access.writes.push_back(slot.dev_in);
    access.writes.insert(access.writes.end(),
                         cache_cost.row_trace.inserted_rows.begin(),
                         cache_cost.row_trace.inserted_rows.end());
    return access;
}

/// Footprint of the batch's compute kernels: consume the staged inputs,
/// produce the staged results, and (for memory models) update the batch's
/// gathered state rows in place.
sim::AccessSet
KernelAccess(const SlotResources& slot, const CacheBatchCost& cache_cost)
{
    sim::AccessSet access;
    access.reads.push_back(slot.dev_in);
    access.writes.push_back(slot.dev_out);
    if (cache_cost.rows_mutable) {
        access.writes.insert(access.writes.end(),
                             cache_cost.row_trace.hit_rows.begin(),
                             cache_cost.row_trace.hit_rows.end());
        access.writes.insert(access.writes.end(),
                             cache_cost.row_trace.inserted_rows.begin(),
                             cache_cost.row_trace.inserted_rows.end());
    }
    return access;
}

/// Footprint of the result copy: reads the device results plus any
/// evicted-dirty rows riding the transfer, lands the host staging buffer
/// and (for write-backs) the host-side state store.
sim::AccessSet
ResultCopyAccess(const SlotResources& slot, const CacheBatchCost& cache_cost)
{
    sim::AccessSet access;
    access.reads.push_back(slot.dev_out);
    access.reads.insert(access.reads.end(),
                        cache_cost.row_trace.evicted_dirty_rows.begin(),
                        cache_cost.row_trace.evicted_dirty_rows.end());
    access.writes.push_back(slot.host_out);
    if (cache_cost.writeback_rows > 0) {
        access.writes.emplace_back("host_store");
    }
    return access;
}

/// Footprint of the device-side hit-gather kernel: reads the resident rows
/// the batch hit and appends them to the staged device inputs.
sim::AccessSet
HitGatherAccess(const SlotResources& slot, const CacheBatchCost& cache_cost)
{
    sim::AccessSet access;
    access.reads = cache_cost.row_trace.hit_rows;
    access.writes.push_back(slot.dev_in);
    return access;
}

/// Declares a footprint only when an observer is attached: @p build runs
/// lazily, so unobserved runs pay neither the declaration nor the
/// resource-name construction.
class MaybeAccess {
  public:
    template <typename BuildFn>
    MaybeAccess(sim::Runtime& runtime, BuildFn&& build)
    {
        if (runtime.HasObserver()) {
            scope_.emplace(runtime, build());
        }
    }

  private:
    std::optional<sim::AccessScope> scope_;
};

}  // namespace

sim::SimTime
BatchExecutor::Drain()
{
    return runtime_.Synchronize();
}

sim::SimTime
BatchExecutor::SubmitPlaced(dispatch::Placement placement,
                            const BatchProfile& profile,
                            const CacheBatchCost& cache_cost, BatchSpans* spans)
{
    if (placement != dispatch::Placement::kCpu) {
        return Submit(profile, cache_cost, spans);
    }
    // CPU-placed batches bypass the device entirely; a cached session's
    // state is device-resident, so the serving loop never routes it here.
    DGNN_CHECK(cache_cost.hit_rows == 0 && cache_cost.miss_rows == 0 &&
                   cache_cost.writeback_rows == 0,
               "CPU placement requires an uncached session");
    sim::CategoryScope scope(runtime_, "Serving Batch");
    const sim::SimTime dispatch = runtime_.Now();
    // Host staging uses its own resource family (host_in#cpu/host_out#cpu):
    // host execution is program-ordered, so there is no reuse hazard with
    // the device slots, and the hazard checker sees a self-ordered chain.
    {
        MaybeAccess access(runtime_, [&] {
            sim::AccessSet set;
            set.writes.emplace_back("host_in#cpu");
            return set;
        });
        runtime_.RunHostFor("batch_build", profile.host_us);
    }
    const sim::SimTime host_done = runtime_.Now();
    {
        MaybeAccess access(runtime_, [&] {
            sim::AccessSet set;
            set.reads.emplace_back("host_in#cpu");
            set.writes.emplace_back("host_out#cpu");
            return set;
        });
        for (const sim::KernelDesc& kernel : profile.kernels) {
            runtime_.RunHost(kernel);
        }
    }
    if (spans != nullptr) {
        // Everything runs synchronously on the host: no throttle, and the
        // H2D boundary collapses onto host_done (nothing crosses PCIe).
        spans->dispatch_us = dispatch;
        spans->stall_done_us = dispatch;
        spans->host_done_us = host_done;
        spans->h2d_done_us = host_done;
        spans->compute_done_us = runtime_.Now();
        spans->complete_us = runtime_.Now();
    }
    return runtime_.Now();
}

sim::SimTime
SerialExecutor::Submit(const BatchProfile& profile,
                       const CacheBatchCost& cache_cost, BatchSpans* spans)
{
    sim::CategoryScope scope(runtime_, "Serving Batch");
    const SlotResources slot(0);
    const sim::SimTime dispatch = runtime_.Now();
    {
        MaybeAccess access(runtime_, [&] {
            sim::AccessSet set;
            set.writes.push_back(slot.host_in);
            return set;
        });
        runtime_.RunHostFor("batch_build", profile.host_us);
    }
    const sim::SimTime host_done = runtime_.Now();
    // Missed state rows ride the batch's single staged input copy (one
    // pinned buffer, one PCIe transaction); cache hits cost only the
    // device-side gather kernel.
    const int64_t h2d_total =
        profile.h2d_bytes + cache_cost.miss_rows * cache_cost.row_bytes;
    if (h2d_total > 0) {
        MaybeAccess access(runtime_,
                           [&] { return InputCopyAccess(slot, cache_cost); });
        runtime_.CopyToDevice(h2d_total, "serve_inputs_h2d");
    }
    const sim::SimTime h2d_done = runtime_.Now();
    if (cache_cost.hit_rows > 0) {
        MaybeAccess access(runtime_,
                           [&] { return HitGatherAccess(slot, cache_cost); });
        runtime_.GatherHits(cache_cost.hit_rows, cache_cost.row_bytes,
                            "serve_state");
    }
    {
        MaybeAccess access(runtime_,
                           [&] { return KernelAccess(slot, cache_cost); });
        for (const sim::KernelDesc& kernel : profile.kernels) {
            runtime_.Launch(kernel);
        }
    }
    (void)runtime_.Synchronize();
    const sim::SimTime compute_done = runtime_.Now();
    if (profile.d2h_bytes > 0) {
        MaybeAccess access(runtime_, [&] {
            sim::AccessSet set;
            set.reads.push_back(slot.dev_out);
            set.writes.push_back(slot.host_out);
            return set;
        });
        runtime_.CopyToHost(profile.d2h_bytes, "serve_results_d2h");
    }
    if (cache_cost.writeback_rows > 0) {
        MaybeAccess access(runtime_, [&] {
            sim::AccessSet set;
            set.reads = cache_cost.row_trace.evicted_dirty_rows;
            set.writes.emplace_back("host_store");
            return set;
        });
        runtime_.WriteBackToHost(cache_cost.writeback_rows, cache_cost.row_bytes,
                                 "serve_state");
    }
    if (spans != nullptr) {
        // Every stage blocks the host, so the boundaries are plain clock
        // reads: already monotone, no clamping needed.
        spans->dispatch_us = dispatch;
        spans->stall_done_us = dispatch;  // no pipeline throttle
        spans->host_done_us = host_done;
        spans->h2d_done_us = h2d_done;
        spans->compute_done_us = compute_done;
        spans->complete_us = runtime_.Now();
    }
    return runtime_.Now();
}

PipelinedExecutor::PipelinedExecutor(sim::Runtime& runtime, int64_t max_in_flight)
    : BatchExecutor(runtime), max_in_flight_(max_in_flight)
{
    DGNN_CHECK(max_in_flight_ >= 1, "pipeline depth must be >= 1, got ",
               max_in_flight_);
}

sim::SimTime
PipelinedExecutor::Submit(const BatchProfile& profile,
                          const CacheBatchCost& cache_cost, BatchSpans* spans)
{
    sim::CategoryScope scope(runtime_, "Serving Batch");
    const SlotResources slot(submitted_ % max_in_flight_);
    ++submitted_;
    const sim::SimTime dispatch = runtime_.Now();

    // Throttle: with max_in_flight_ batches outstanding the host blocks on
    // the oldest one before building the next (bounded staging memory).
    // The wait is also this slot's reuse fence: it is the happens-before
    // edge that orders this batch's staging writes after the previous slot
    // owner's reads (the hazard mutation suite drops exactly this edge to
    // prove the checker sees the WAR).
    while (static_cast<int64_t>(in_flight_.size()) >= max_in_flight_) {
        (void)runtime_.WaitEvent(in_flight_.front());
        in_flight_.pop_front();
    }
    const sim::SimTime stall_done = runtime_.Now();

    // Host stage for batch k+1 — overlaps whatever the device still runs.
    {
        MaybeAccess access(runtime_, [&] {
            sim::AccessSet set;
            set.writes.push_back(slot.host_in);
            return set;
        });
        runtime_.RunHostFor("batch_build", profile.host_us);
    }

    // Input stage: pinned async H2D on the copy stream; compute kernels of
    // this batch wait on its completion event, not the host. Missed state
    // rows ride the same staged copy (one pinned buffer, one DMA); the
    // hit-gather kernel queues on the compute stream behind the fence.
    const int64_t h2d_total =
        profile.h2d_bytes + cache_cost.miss_rows * cache_cost.row_bytes;
    sim::SimTime inputs_ready_us = 0.0;  // resolved after clamping below
    if (h2d_total > 0) {
        MaybeAccess access(runtime_,
                           [&] { return InputCopyAccess(slot, cache_cost); });
        (void)runtime_.CopyToDeviceAsync(h2d_total, "serve_inputs_h2d");
        const sim::Event inputs_ready = runtime_.RecordEvent(sim::StreamId::kCopy);
        runtime_.StreamWaitEvent(sim::StreamId::kCompute, inputs_ready);
        inputs_ready_us = inputs_ready.ready_us;
    }
    if (cache_cost.hit_rows > 0) {
        MaybeAccess access(runtime_,
                           [&] { return HitGatherAccess(slot, cache_cost); });
        runtime_.GatherHits(cache_cost.hit_rows, cache_cost.row_bytes,
                            "serve_state");
    }

    // Compute stage: kernels queue asynchronously behind the previous batch.
    {
        MaybeAccess access(runtime_,
                           [&] { return KernelAccess(slot, cache_cost); });
        for (const sim::KernelDesc& kernel : profile.kernels) {
            runtime_.Launch(kernel);
        }
    }

    // Result stage: D2H (results + evicted-dirty-row write-backs) behind
    // the batch's compute event.
    const sim::Event compute_done = runtime_.RecordEvent(sim::StreamId::kCompute);
    sim::Event batch_done = compute_done;
    const int64_t d2h_total = profile.d2h_bytes + cache_cost.WritebackBytes();
    if (d2h_total > 0) {
        MaybeAccess access(runtime_,
                           [&] { return ResultCopyAccess(slot, cache_cost); });
        runtime_.StreamWaitEvent(sim::StreamId::kCopy, compute_done);
        (void)runtime_.CopyToHostAsync(d2h_total, "serve_results_d2h");
        batch_done = runtime_.RecordEvent(sim::StreamId::kCopy);
    }
    in_flight_.push_back(batch_done);

    if (spans != nullptr) {
        // The host-side boundaries are clock reads; the device-side ones
        // are event completion times. Each boundary is clamped into
        // [previous boundary, complete] so the chain is monotone and ends
        // exactly at the completion time Submit returns — an event can
        // resolve before the host finished submitting (CPU-only no-op
        // copies), and a batch's H2D can queue behind older copy-stream
        // work, both of which the clamp absorbs.
        const sim::SimTime host_done = runtime_.Now();  // build + submits
        const sim::SimTime complete = batch_done.ready_us;
        spans->dispatch_us = dispatch;
        spans->stall_done_us =
            std::clamp(stall_done, spans->dispatch_us, complete);
        spans->host_done_us =
            std::clamp(host_done, spans->stall_done_us, complete);
        spans->h2d_done_us =
            std::clamp(h2d_total > 0 ? inputs_ready_us : spans->host_done_us,
                       spans->host_done_us, complete);
        spans->compute_done_us =
            std::clamp(compute_done.ready_us, spans->h2d_done_us, complete);
        spans->complete_us = complete;
    }
    return batch_done.ready_us;
}

sim::SimTime
PipelinedExecutor::Drain()
{
    while (!in_flight_.empty()) {
        (void)runtime_.WaitEvent(in_flight_.front());
        in_flight_.pop_front();
    }
    return runtime_.Synchronize();
}

}  // namespace dgnn::serve
