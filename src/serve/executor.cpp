#include "serve/executor.hpp"

#include "support/check.hpp"

namespace dgnn::serve {

sim::SimTime
BatchExecutor::Drain()
{
    return runtime_.Synchronize();
}

sim::SimTime
SerialExecutor::Submit(const BatchProfile& profile)
{
    sim::CategoryScope scope(runtime_, "Serving Batch");
    runtime_.RunHostFor("batch_build", profile.host_us);
    if (profile.h2d_bytes > 0) {
        runtime_.CopyToDevice(profile.h2d_bytes, "serve_inputs_h2d");
    }
    for (const sim::KernelDesc& kernel : profile.kernels) {
        runtime_.Launch(kernel);
    }
    runtime_.Synchronize();
    if (profile.d2h_bytes > 0) {
        runtime_.CopyToHost(profile.d2h_bytes, "serve_results_d2h");
    }
    return runtime_.Now();
}

PipelinedExecutor::PipelinedExecutor(sim::Runtime& runtime, int64_t max_in_flight)
    : BatchExecutor(runtime), max_in_flight_(max_in_flight)
{
    DGNN_CHECK(max_in_flight_ >= 1, "pipeline depth must be >= 1, got ",
               max_in_flight_);
}

sim::SimTime
PipelinedExecutor::Submit(const BatchProfile& profile)
{
    sim::CategoryScope scope(runtime_, "Serving Batch");

    // Throttle: with max_in_flight_ batches outstanding the host blocks on
    // the oldest one before building the next (bounded staging memory).
    while (static_cast<int64_t>(in_flight_.size()) >= max_in_flight_) {
        runtime_.WaitEvent(in_flight_.front());
        in_flight_.pop_front();
    }

    // Host stage for batch k+1 — overlaps whatever the device still runs.
    runtime_.RunHostFor("batch_build", profile.host_us);

    // Input stage: pinned async H2D on the copy stream; compute kernels of
    // this batch wait on its completion event, not the host.
    if (profile.h2d_bytes > 0) {
        runtime_.CopyToDeviceAsync(profile.h2d_bytes, "serve_inputs_h2d");
        const sim::Event inputs_ready = runtime_.RecordEvent(sim::StreamId::kCopy);
        runtime_.StreamWaitEvent(sim::StreamId::kCompute, inputs_ready);
    }

    // Compute stage: kernels queue asynchronously behind the previous batch.
    for (const sim::KernelDesc& kernel : profile.kernels) {
        runtime_.Launch(kernel);
    }

    // Result stage: D2H behind the batch's compute event.
    const sim::Event compute_done = runtime_.RecordEvent(sim::StreamId::kCompute);
    sim::Event batch_done = compute_done;
    if (profile.d2h_bytes > 0) {
        runtime_.StreamWaitEvent(sim::StreamId::kCopy, compute_done);
        runtime_.CopyToHostAsync(profile.d2h_bytes, "serve_results_d2h");
        batch_done = runtime_.RecordEvent(sim::StreamId::kCopy);
    }
    in_flight_.push_back(batch_done);
    return batch_done.ready_us;
}

sim::SimTime
PipelinedExecutor::Drain()
{
    while (!in_flight_.empty()) {
        runtime_.WaitEvent(in_flight_.front());
        in_flight_.pop_front();
    }
    return runtime_.Synchronize();
}

}  // namespace dgnn::serve
