#include "serve/executor.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dgnn::serve {

sim::SimTime
BatchExecutor::Drain()
{
    return runtime_.Synchronize();
}

sim::SimTime
SerialExecutor::Submit(const BatchProfile& profile,
                       const CacheBatchCost& cache_cost, BatchSpans* spans)
{
    sim::CategoryScope scope(runtime_, "Serving Batch");
    const sim::SimTime dispatch = runtime_.Now();
    runtime_.RunHostFor("batch_build", profile.host_us);
    const sim::SimTime host_done = runtime_.Now();
    // Missed state rows ride the batch's single staged input copy (one
    // pinned buffer, one PCIe transaction); cache hits cost only the
    // device-side gather kernel.
    const int64_t h2d_total =
        profile.h2d_bytes + cache_cost.miss_rows * cache_cost.row_bytes;
    if (h2d_total > 0) {
        runtime_.CopyToDevice(h2d_total, "serve_inputs_h2d");
    }
    const sim::SimTime h2d_done = runtime_.Now();
    if (cache_cost.hit_rows > 0) {
        runtime_.GatherHits(cache_cost.hit_rows, cache_cost.row_bytes,
                            "serve_state");
    }
    for (const sim::KernelDesc& kernel : profile.kernels) {
        runtime_.Launch(kernel);
    }
    runtime_.Synchronize();
    const sim::SimTime compute_done = runtime_.Now();
    if (profile.d2h_bytes > 0) {
        runtime_.CopyToHost(profile.d2h_bytes, "serve_results_d2h");
    }
    if (cache_cost.writeback_rows > 0) {
        runtime_.WriteBackToHost(cache_cost.writeback_rows, cache_cost.row_bytes,
                                 "serve_state");
    }
    if (spans != nullptr) {
        // Every stage blocks the host, so the boundaries are plain clock
        // reads: already monotone, no clamping needed.
        spans->dispatch_us = dispatch;
        spans->stall_done_us = dispatch;  // no pipeline throttle
        spans->host_done_us = host_done;
        spans->h2d_done_us = h2d_done;
        spans->compute_done_us = compute_done;
        spans->complete_us = runtime_.Now();
    }
    return runtime_.Now();
}

PipelinedExecutor::PipelinedExecutor(sim::Runtime& runtime, int64_t max_in_flight)
    : BatchExecutor(runtime), max_in_flight_(max_in_flight)
{
    DGNN_CHECK(max_in_flight_ >= 1, "pipeline depth must be >= 1, got ",
               max_in_flight_);
}

sim::SimTime
PipelinedExecutor::Submit(const BatchProfile& profile,
                          const CacheBatchCost& cache_cost, BatchSpans* spans)
{
    sim::CategoryScope scope(runtime_, "Serving Batch");
    const sim::SimTime dispatch = runtime_.Now();

    // Throttle: with max_in_flight_ batches outstanding the host blocks on
    // the oldest one before building the next (bounded staging memory).
    while (static_cast<int64_t>(in_flight_.size()) >= max_in_flight_) {
        runtime_.WaitEvent(in_flight_.front());
        in_flight_.pop_front();
    }
    const sim::SimTime stall_done = runtime_.Now();

    // Host stage for batch k+1 — overlaps whatever the device still runs.
    runtime_.RunHostFor("batch_build", profile.host_us);

    // Input stage: pinned async H2D on the copy stream; compute kernels of
    // this batch wait on its completion event, not the host. Missed state
    // rows ride the same staged copy (one pinned buffer, one DMA); the
    // hit-gather kernel queues on the compute stream behind the fence.
    const int64_t h2d_total =
        profile.h2d_bytes + cache_cost.miss_rows * cache_cost.row_bytes;
    sim::SimTime inputs_ready_us = 0.0;  // resolved after clamping below
    if (h2d_total > 0) {
        runtime_.CopyToDeviceAsync(h2d_total, "serve_inputs_h2d");
        const sim::Event inputs_ready = runtime_.RecordEvent(sim::StreamId::kCopy);
        runtime_.StreamWaitEvent(sim::StreamId::kCompute, inputs_ready);
        inputs_ready_us = inputs_ready.ready_us;
    }
    if (cache_cost.hit_rows > 0) {
        runtime_.GatherHits(cache_cost.hit_rows, cache_cost.row_bytes,
                            "serve_state");
    }

    // Compute stage: kernels queue asynchronously behind the previous batch.
    for (const sim::KernelDesc& kernel : profile.kernels) {
        runtime_.Launch(kernel);
    }

    // Result stage: D2H (results + evicted-dirty-row write-backs) behind
    // the batch's compute event.
    const sim::Event compute_done = runtime_.RecordEvent(sim::StreamId::kCompute);
    sim::Event batch_done = compute_done;
    const int64_t d2h_total = profile.d2h_bytes + cache_cost.WritebackBytes();
    if (d2h_total > 0) {
        runtime_.StreamWaitEvent(sim::StreamId::kCopy, compute_done);
        runtime_.CopyToHostAsync(d2h_total, "serve_results_d2h");
        batch_done = runtime_.RecordEvent(sim::StreamId::kCopy);
    }
    in_flight_.push_back(batch_done);

    if (spans != nullptr) {
        // The host-side boundaries are clock reads; the device-side ones
        // are event completion times. Each boundary is clamped into
        // [previous boundary, complete] so the chain is monotone and ends
        // exactly at the completion time Submit returns — an event can
        // resolve before the host finished submitting (CPU-only no-op
        // copies), and a batch's H2D can queue behind older copy-stream
        // work, both of which the clamp absorbs.
        const sim::SimTime host_done = runtime_.Now();  // build + submits
        const sim::SimTime complete = batch_done.ready_us;
        spans->dispatch_us = dispatch;
        spans->stall_done_us =
            std::clamp(stall_done, spans->dispatch_us, complete);
        spans->host_done_us =
            std::clamp(host_done, spans->stall_done_us, complete);
        spans->h2d_done_us =
            std::clamp(h2d_total > 0 ? inputs_ready_us : spans->host_done_us,
                       spans->host_done_us, complete);
        spans->compute_done_us =
            std::clamp(compute_done.ready_us, spans->h2d_done_us, complete);
        spans->complete_us = complete;
    }
    return batch_done.ready_us;
}

sim::SimTime
PipelinedExecutor::Drain()
{
    while (!in_flight_.empty()) {
        runtime_.WaitEvent(in_flight_.front());
        in_flight_.pop_front();
    }
    return runtime_.Synchronize();
}

}  // namespace dgnn::serve
