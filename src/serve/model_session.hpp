#pragma once

/// @file
/// Bridges the offline model layer to the online server. A ModelSession
/// wraps one DgnnModel and captures, per batch size, the model's exact
/// per-batch cost profile: it replays the model's batched inference entry
/// (models::SingleBatchProbe) against a scratch runtime and distills the
/// recorded trace into a BatchProfile — total host-side work (sampling,
/// batch build, framework overhead), H2D/D2H transfer volumes, and the
/// ordered device-kernel descriptors. The serving executors then re-issue
/// that profile per request batch, either serially (eager-mode semantics)
/// or pipelined across streams. Profiles are memoized per batch size, so
/// dynamic batching with variable sizes stays cheap.
///
/// Cache-aware serving: a session built with a positive cache capacity (and
/// a model exposing cacheable per-node state) owns a cache::DeviceCache
/// that stays WARM ACROSS BATCHES — the locality the offline benches cannot
/// express. Profiles are then captured with an unbounded probe cache so the
/// per-node state gather is separated out (state_rows / state_row_bytes,
/// recognized by the runtime's ":cache_miss_h2d"/":cache_writeback_d2h"
/// trace markers); at dispatch time the serving loop runs the batch's
/// actual request nodes through the live cache and the executor re-issues
/// the gather with the real hit/miss split.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cache/device_cache.hpp"
#include "models/dgnn_model.hpp"
#include "sim/kernel.hpp"
#include "sim/runtime.hpp"

namespace dgnn::serve {

/// Everything one inference batch costs, in issue order.
struct BatchProfile {
    int64_t batch_size = 0;
    /// Total host-side work per batch (sampling + batch build + framework
    /// overhead), us.
    sim::SimTime host_us = 0.0;
    /// Input bytes moved host->device per batch. When the session cache is
    /// enabled this EXCLUDES per-node state (tracked by state_rows below).
    int64_t h2d_bytes = 0;
    /// Result bytes moved device->host per batch (write-backs excluded —
    /// the live cache decides those per batch).
    int64_t d2h_bytes = 0;
    /// Unique per-node state rows the probe batch gathered, and their
    /// width. Zero when the capture ran uncached.
    int64_t state_rows = 0;
    int64_t state_row_bytes = 0;
    /// Device kernels, in launch order.
    std::vector<sim::KernelDesc> kernels;
};

/// One served model: captures and memoizes BatchProfiles.
class ModelSession {
  public:
    /// @param model          the model to serve (borrowed; must outlive the
    ///                       session)
    /// @param mode           execution mode profiles are captured under
    /// @param num_neighbors  sampler fan-out forwarded to the probe config
    /// @param cache_config   device cache shared by every batch this
    ///                       session serves; capacity 0 (the default)
    ///                       serves uncached. Only effective in hybrid mode
    ///                       for models with cacheable state.
    ModelSession(models::DgnnModel& model, sim::ExecMode mode,
                 int64_t num_neighbors = 20,
                 cache::DeviceCacheConfig cache_config = {});

    std::string ModelName() const { return model_.Name(); }
    sim::ExecMode Mode() const { return mode_; }

    /// Whether batches are served through the session's device cache.
    bool CacheEnabled() const { return cache_.Enabled(); }

    /// The session-lifetime cache (warm across batches AND across Serve
    /// runs; Serve reports per-run deltas of its stats).
    cache::DeviceCache& Cache() { return cache_; }
    const cache::DeviceCache& Cache() const { return cache_; }

    /// Whether cached rows are mutated per batch (write-back tracking).
    bool CacheRowsMutable() const { return model_.CacheRowsMutable(); }

    /// The (memoized) cost profile of a batch of @p batch_size requests.
    const BatchProfile& Profile(int64_t batch_size);

    /// The same batch captured with the model's registered fusion chains
    /// collapsed (probe runs with fuse_kernels on): fewer, fatter kernels,
    /// identical host work and transfer volumes. Memoized separately; used
    /// by the hybrid dispatcher's GPU-fused placement.
    const BatchProfile& FusedProfile(int64_t batch_size);

    /// Number of distinct batch sizes captured so far (unfused profiles).
    int64_t CapturedProfiles() const
    {
        return static_cast<int64_t>(cache_profiles_.size());
    }

  private:
    BatchProfile Capture(int64_t batch_size, bool fuse_kernels);

    models::DgnnModel& model_;
    sim::ExecMode mode_;
    int64_t num_neighbors_;
    cache::DeviceCache cache_;
    std::map<int64_t, BatchProfile> cache_profiles_;
    std::map<int64_t, BatchProfile> fused_profiles_;
};

}  // namespace dgnn::serve
