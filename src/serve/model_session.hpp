#pragma once

/// @file
/// Bridges the offline model layer to the online server. A ModelSession
/// wraps one DgnnModel and captures, per batch size, the model's exact
/// per-batch cost profile: it replays the model's batched inference entry
/// (models::SingleBatchProbe) against a scratch runtime and distills the
/// recorded trace into a BatchProfile — total host-side work (sampling,
/// batch build, framework overhead), H2D/D2H transfer volumes, and the
/// ordered device-kernel descriptors. The serving executors then re-issue
/// that profile per request batch, either serially (eager-mode semantics)
/// or pipelined across streams. Profiles are memoized per batch size, so
/// dynamic batching with variable sizes stays cheap.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "models/dgnn_model.hpp"
#include "sim/kernel.hpp"
#include "sim/runtime.hpp"

namespace dgnn::serve {

/// Everything one inference batch costs, in issue order.
struct BatchProfile {
    int64_t batch_size = 0;
    /// Total host-side work per batch (sampling + batch build + framework
    /// overhead), us.
    sim::SimTime host_us = 0.0;
    /// Input bytes moved host->device per batch.
    int64_t h2d_bytes = 0;
    /// Result bytes moved device->host per batch.
    int64_t d2h_bytes = 0;
    /// Device kernels, in launch order.
    std::vector<sim::KernelDesc> kernels;
};

/// One served model: captures and memoizes BatchProfiles.
class ModelSession {
  public:
    /// @param model         the model to serve (borrowed; must outlive the
    ///                      session)
    /// @param mode          execution mode profiles are captured under
    /// @param num_neighbors sampler fan-out forwarded to the probe config
    ModelSession(models::DgnnModel& model, sim::ExecMode mode,
                 int64_t num_neighbors = 20);

    std::string ModelName() const { return model_.Name(); }
    sim::ExecMode Mode() const { return mode_; }

    /// The (memoized) cost profile of a batch of @p batch_size requests.
    const BatchProfile& Profile(int64_t batch_size);

    /// Number of distinct batch sizes captured so far.
    int64_t CapturedProfiles() const
    {
        return static_cast<int64_t>(cache_.size());
    }

  private:
    BatchProfile Capture(int64_t batch_size);

    models::DgnnModel& model_;
    sim::ExecMode mode_;
    int64_t num_neighbors_;
    std::map<int64_t, BatchProfile> cache_;
};

}  // namespace dgnn::serve
