#include "serve/arrival_source.hpp"

#include "support/check.hpp"

namespace dgnn::serve {

PoissonSource::PoissonSource(double rate_qps, uint64_t seed)
    : rate_qps_(rate_qps), seed_(seed)
{
    DGNN_CHECK(rate_qps_ > 0.0, "arrival rate must be positive, got ",
               rate_qps_);
}

std::string
PoissonSource::Name() const
{
    return "poisson(" + std::to_string(static_cast<int64_t>(rate_qps_)) +
           "qps)";
}

std::vector<Request>
PoissonSource::Generate(int64_t n) const
{
    const std::vector<sim::SimTime> arrivals =
        PoissonArrivals(rate_qps_, n, seed_);
    std::vector<Request> requests;
    requests.reserve(arrivals.size());
    for (int64_t i = 0; i < n; ++i) {
        requests.push_back(Request{i, arrivals[static_cast<size_t>(i)]});
    }
    return requests;
}

TraceReplaySource::TraceReplaySource(const graph::EventStream& stream,
                                     double target_qps)
    : stream_(stream), target_qps_(target_qps)
{
    DGNN_CHECK(target_qps_ > 0.0, "target rate must be positive, got ",
               target_qps_);
}

std::string
TraceReplaySource::Name() const
{
    return "trace-replay(" + std::to_string(static_cast<int64_t>(target_qps_)) +
           "qps)";
}

std::vector<Request>
TraceReplaySource::Generate(int64_t n) const
{
    return TraceRequests(stream_, target_qps_, n);
}

}  // namespace dgnn::serve
