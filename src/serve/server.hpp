#pragma once

/// @file
/// The online-serving simulator: an open-loop arrival stream feeds a
/// request queue; a BatchPolicy turns the queue into batches; a
/// BatchExecutor issues each batch's captured cost profile to a fresh
/// simulated runtime. The loop is a discrete-event simulation on the
/// runtime's host clock — when there is nothing to dispatch the host idles
/// to the next arrival or policy wake-up. Produces a ServingReport with the
/// tail-latency histogram, queue/batch statistics, and sustained
/// throughput; FindMaxQpsUnderSlo searches for the highest offered rate
/// whose p99 stays under an SLO.

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/latency_histogram.hpp"
#include "dispatch/dispatcher.hpp"
#include "serve/arrival_source.hpp"
#include "serve/batch_policy.hpp"
#include "serve/executor.hpp"
#include "serve/model_session.hpp"
#include "serve/observer.hpp"
#include "serve/request.hpp"
#include "serve/shard_hook.hpp"

namespace dgnn::serve {

/// Which executor the server builds over its runtime.
enum class ExecutorKind {
    kSerial,
    kPipelined,
};

const char* ToString(ExecutorKind kind);

/// Server knobs independent of policy and load.
struct ServerOptions {
    ExecutorKind executor = ExecutorKind::kPipelined;
    /// In-flight depth bound for the pipelined executor.
    int64_t pipeline_depth = 2;
    /// Pay the one-time device warm-up before the serving window opens.
    bool warm_start = true;
    /// Optional passive observer (src/obs/). Null — the default — disables
    /// all observability hooks; the simulation is bit-identical either way
    /// because the hooks only read state.
    ServingObserver* observer = nullptr;
    /// Optional passive runtime observer (src/analysis/ — attach an
    /// analysis::HazardChecker to happens-before-check the run). Attached
    /// to the per-run runtime before any work is issued; null — the
    /// default — keeps the run bit-identical and skips all access
    /// annotation work.
    sim::RuntimeObserver* runtime_observer = nullptr;
    /// Optional runtime configuration for the run (scale-out: a topology
    /// node per shard). The execution mode is always overridden from the
    /// session; unset — the default — reproduces the historical
    /// models::MakeRuntime(mode) runtime bit-for-bit.
    std::optional<sim::RuntimeConfig> runtime_config;
    /// Optional per-batch shard intercept (src/shard/): claims the batch
    /// nodes owned by remote shards and issues the priced alltoall
    /// exchange before the batch executes. Null — the default — skips the
    /// seam entirely. Borrowed; must outlive the run.
    BatchShardHook* shard_hook = nullptr;
    /// Optional per-batch hybrid dispatcher (src/dispatch/): predicts each
    /// dispatched batch's CPU / GPU / GPU-fused cost from the session's
    /// captured profiles and routes the batch accordingly
    /// (predict-then-place). Hybrid sessions only. CPU routing is masked
    /// for cache-enabled sessions (their state is device-resident). Null —
    /// the default — keeps every batch on the executor's device path with
    /// the unfused profile, bit-identical to dispatcherless serving.
    /// Borrowed; must outlive the run.
    const dispatch::HybridDispatcher* dispatcher = nullptr;
};

/// Everything one serving run produces.
struct ServingReport {
    std::string model;
    std::string mode;
    std::string policy;
    std::string executor;

    int64_t requests = 0;
    int64_t batches = 0;
    double offered_qps = 0.0;   ///< arrival rate implied by the workload
    double achieved_qps = 0.0;  ///< completions over the serving makespan
    sim::SimTime makespan_us = 0.0;

    /// End-to-end request latency (arrival -> results on host), us.
    /// latency.OverflowCount() reports samples clamped into the top bucket
    /// (non-zero means the p99 is biased low — the saturation flag).
    core::LatencyHistogram latency;
    /// Queue depth sampled at each dispatch decision.
    core::RunningStat queue_depth;
    /// Dispatched batch sizes.
    core::RunningStat batch_size;

    /// PCIe traffic of the serving window (the Fig 6/7 transfer categories
    /// under load).
    int64_t h2d_bytes = 0;
    int64_t d2h_bytes = 0;
    /// H2D bytes served on-device by cache hits during this run.
    int64_t cache_hit_bytes = 0;
    /// Device-cache counters for THIS run (delta of the session cache,
    /// which stays warm across runs). All zero for uncached sessions.
    cache::CacheStats cache_stats;
    /// Cross-shard exchange totals across the run's batches (all-zero
    /// without a shard hook — every unsharded run).
    ExchangeCost exchange;
    /// Batches the dispatcher routed to each placement, indexed by
    /// dispatch::Placement (all-zero without a dispatcher).
    std::array<int64_t, dispatch::kNumPlacements> placement_batches{};
};

/// Runs one serving simulation of @p arrivals (relative timestamps, sorted)
/// against @p session under @p policy. Builds a fresh runtime internally;
/// deterministic for fixed inputs. Requests carry no node identities, so a
/// cache-enabled session falls back to the captured all-miss state volume.
ServingReport Serve(ModelSession& session, BatchPolicy& policy,
                    const std::vector<sim::SimTime>& arrivals,
                    const ServerOptions& options);

/// General entry: node-bearing requests (relative arrival timestamps,
/// sorted). When the session serves through a device cache, each dispatched
/// batch's unique request nodes run through the live cache — recurrent
/// nodes across batches become on-device hits, which is the cross-batch
/// locality the offline benches cannot express.
ServingReport ServeRequests(ModelSession& session, BatchPolicy& policy,
                            const std::vector<Request>& requests,
                            const ServerOptions& options);

/// Source-driven entry: generates @p n requests from @p source and serves
/// them. The ArrivalSource seam (scenario generators plug in here).
ServingReport Serve(ModelSession& session, BatchPolicy& policy,
                    const ArrivalSource& source, int64_t n,
                    const ServerOptions& options);

/// Result of the sustained-throughput search.
struct QpsSearchResult {
    /// Highest offered rate the server sustained — p99 under the SLO while
    /// completions keep pace with arrivals (0 when even the lowest probed
    /// rate failed).
    double max_qps = 0.0;
    /// p99 latency at that rate, us.
    sim::SimTime p99_us = 0.0;
    /// Serving runs the search spent.
    int64_t evaluations = 0;
};

/// Binary-searches the maximum sustained Poisson arrival rate: p99 <=
/// @p slo_us and completions keeping pace with arrivals (>= 95% of the
/// offered rate — a finite workload bounds p99 even past saturation, so
/// the latency criterion alone would not saturate). Doubles from
/// @p lo_qps until the criterion breaks, then bisects a fixed number of
/// rounds. Policies are recreated per evaluation via @p make_policy;
/// arrivals are regenerated per rate from @p seed. Deterministic.
QpsSearchResult FindMaxQpsUnderSlo(
    ModelSession& session,
    const std::function<std::unique_ptr<BatchPolicy>()>& make_policy,
    const ServerOptions& options, sim::SimTime slo_us, int64_t num_requests,
    uint64_t seed, double lo_qps = 50.0);

}  // namespace dgnn::serve
