#pragma once

/// @file
/// The serving observability seam. The serving loop (server.cpp) and the
/// batch executors expose their internal lifecycle — request admission,
/// idle wakes, per-batch stage boundaries — through this passive interface
/// so an observability layer (src/obs/) can attach per-request span
/// tracing, metrics, and bottleneck attribution WITHOUT perturbing the
/// simulation: every hook is called with read-only state after the
/// corresponding simulated work was issued, and a null observer (the
/// default) short-circuits all of it, leaving the serving loop's behavior
/// and all committed expected outputs bit-identical.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cache/device_cache.hpp"
#include "dispatch/dispatcher.hpp"
#include "serve/executor.hpp"
#include "serve/request.hpp"
#include "serve/shard_hook.hpp"
#include "sim/runtime.hpp"

namespace dgnn::serve {

/// Immutable context of one serving run, handed to the observer before the
/// serving window opens. The runtime and cache pointers stay valid until
/// OnRunEnd returns (the runtime is destroyed when the run finishes).
struct RunContext {
    std::string model;
    std::string mode;
    std::string policy;
    std::string executor;
    /// The run's runtime — counters and the event trace are readable at any
    /// hook. Never null during a run.
    sim::Runtime* runtime = nullptr;
    /// The session's device cache (disabled instance when uncached).
    const cache::DeviceCache* cache = nullptr;
    /// Absolute host time at which the serving window opened; arrival
    /// timestamps in hooks are absolute (window_start + relative arrival).
    sim::SimTime window_start_us = 0.0;
};

/// Everything the serving loop knows about one dispatched batch, delivered
/// to the observer right after the executor accepted it.
struct BatchObservation {
    int64_t batch_index = 0;
    /// Queue depth at the dispatch decision (>= the batch size).
    int64_t queue_depth = 0;
    /// Stage boundaries captured by the executor (see BatchSpans).
    BatchSpans spans;
    /// The batch's resolved cache outcome (all-zero for uncached sessions).
    CacheBatchCost cache_cost;
    /// The batch's cross-shard exchange cost (all-zero without a shard
    /// hook — i.e. in every unsharded run).
    ExchangeCost exchange;
    /// The captured cost profile the executor issued (the FUSED profile
    /// when the dispatcher placed the batch on kGpuFused).
    const BatchProfile* profile = nullptr;
    /// The hybrid dispatcher's routing verdict with the predictions it was
    /// based on; absent in dispatcherless runs.
    std::optional<dispatch::PlacementDecision> decision;
    /// The member requests, oldest first, with ABSOLUTE arrival timestamps.
    std::vector<Request> requests;
};

/// Passive observer of one serving run. All hooks default to no-ops so
/// implementations override only what they consume. Hooks are invoked in
/// simulation order: OnRunBegin, then interleaved OnArrival / OnIdleWake /
/// OnBatch, then OnRunEnd exactly once after the executor drained and the
/// end-of-run cache flush was issued.
class ServingObserver {
  public:
    virtual ~ServingObserver() = default;

    virtual void OnRunBegin(const RunContext&) {}

    /// A request was admitted to the queue (absolute arrival timestamp).
    virtual void OnArrival(const Request&) {}

    /// The loop had nothing to dispatch and idles until the wake time; the
    /// bool distinguishes policy re-evaluation deadlines (timeout flushes,
    /// true) from waits for the next arrival (false).
    virtual void OnIdleWake(sim::SimTime /*wake_us*/, bool /*policy_wake*/) {}

    /// A batch was dispatched and its completion time is known.
    virtual void OnBatch(const BatchObservation&) {}

    virtual void OnRunEnd() {}
};

}  // namespace dgnn::serve
