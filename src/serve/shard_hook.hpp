#pragma once

/// @file
/// The shard seam of the serving loop: a BatchShardHook lets a scale-out
/// layer (src/shard/) intercept each dispatched batch's unique state nodes,
/// claim the ones owned by remote shards, and issue the priced alltoall
/// exchange pulling their rows over the topology's peer links BEFORE the
/// batch executes. The seam mirrors the observer seams in spirit but is
/// ACTIVE: a hook changes the simulated timeline (peer copies, the unpack
/// kernel). The bit-identity contract is therefore conditional — a null
/// hook (the default) skips everything, and a hook that claims nothing and
/// issues an empty exchange (the 1-shard case) performs zero runtime
/// operations, reproducing the unsharded serving path bit-for-bit.

#include <cstdint>
#include <vector>

#include "sim/sim_time.hpp"

namespace dgnn::sim {
class Runtime;
}  // namespace dgnn::sim

namespace dgnn::serve {

/// What one batch's cross-shard exchange cost, as priced through the peer
/// links. All-zero when the batch needed no remote rows (or no hook ran).
struct ExchangeCost {
    /// State rows pulled from remote shards.
    int64_t remote_rows = 0;
    /// Rows the batch resolved locally after the claim (the complement).
    int64_t local_rows = 0;
    /// Bytes moved over peer links (includes the piggybacked return delta
    /// for mutable rows).
    int64_t bytes = 0;
    /// Peer transfers issued (one per remote shard with rows).
    int64_t messages = 0;
    /// Time the peer links were occupied by this exchange, us.
    sim::SimTime link_us = 0.0;

    bool Empty() const { return remote_rows == 0 && local_rows == 0; }

    ExchangeCost& operator+=(const ExchangeCost& other)
    {
        remote_rows += other.remote_rows;
        local_rows += other.local_rows;
        bytes += other.bytes;
        messages += other.messages;
        link_us += other.link_us;
        return *this;
    }
};

/// Per-batch intercept for sharded serving. The serving loop calls
/// ClaimRemote with the batch's sorted unique state nodes right before the
/// cache gather, then IssueExchange on the run's runtime right before the
/// executor submits the batch.
class BatchShardHook {
  public:
    virtual ~BatchShardHook() = default;

    /// Removes the nodes owned by remote shards from @p nodes (preserving
    /// sorted order) and stages them for the next IssueExchange call.
    /// Returns the number of nodes claimed. The remaining nodes resolve
    /// through the local shard's cache as usual.
    virtual int64_t ClaimRemote(std::vector<int64_t>& nodes) = 0;

    /// Issues the staged exchange on @p runtime (peer pulls on the copy
    /// stream, fence, unpack kernel on the compute stream) and returns its
    /// priced cost. MUST perform no runtime operation when nothing is
    /// staged — that is the 1-shard bit-identity contract.
    virtual ExchangeCost IssueExchange(sim::Runtime& runtime) = 0;
};

}  // namespace dgnn::serve
