#include "serve/server.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dgnn::serve {

const char*
ToString(ExecutorKind kind)
{
    switch (kind) {
      case ExecutorKind::kSerial:
        return "serial";
      case ExecutorKind::kPipelined:
        return "pipelined";
    }
    return "?";
}

namespace {

std::unique_ptr<BatchExecutor>
MakeExecutor(sim::Runtime& runtime, const ServerOptions& options)
{
    if (options.executor == ExecutorKind::kPipelined) {
        return std::make_unique<PipelinedExecutor>(runtime,
                                                   options.pipeline_depth);
    }
    return std::make_unique<SerialExecutor>(runtime);
}

}  // namespace

ServingReport
Serve(ModelSession& session, BatchPolicy& policy,
      const std::vector<sim::SimTime>& arrivals, const ServerOptions& options)
{
    std::vector<Request> requests;
    requests.reserve(arrivals.size());
    int64_t id = 0;
    for (const sim::SimTime t : arrivals) {
        requests.push_back(Request{id++, t});
    }
    return ServeRequests(session, policy, requests, options);
}

ServingReport
Serve(ModelSession& session, BatchPolicy& policy, const ArrivalSource& source,
      int64_t n, const ServerOptions& options)
{
    return ServeRequests(session, policy, source.Generate(n), options);
}

ServingReport
ServeRequests(ModelSession& session, BatchPolicy& policy,
              const std::vector<Request>& requests, const ServerOptions& options)
{
    DGNN_CHECK(std::is_sorted(requests.begin(), requests.end(),
                              [](const Request& a, const Request& b) {
                                  return a.arrival_us < b.arrival_us;
                              }),
               "arrival timestamps must be sorted");

    // Unset runtime_config reproduces models::MakeRuntime(mode) — a default
    // config with only the mode set — bit-for-bit.
    sim::RuntimeConfig runtime_config =
        options.runtime_config.value_or(sim::RuntimeConfig{});
    runtime_config.mode = session.Mode();
    sim::Runtime runtime{std::move(runtime_config)};
    runtime.SetObserver(options.runtime_observer);
    const cache::CacheStats cache_stats_before = session.Cache().Stats();
    std::unique_ptr<BatchExecutor> executor = MakeExecutor(runtime, options);

    if (options.warm_start) {
        // Context/model init happen before the serving window opens; model
        // weights are assumed resident (a server loads them once).
        runtime.EnsureWarm(0);
    }
    runtime.ResetMeasurementWindow();
    const sim::SimTime window_start = runtime.Now();

    ServingObserver* observer = options.observer;
    if (observer != nullptr) {
        RunContext ctx;
        ctx.model = session.ModelName();
        ctx.mode = sim::ToString(session.Mode());
        ctx.policy = policy.Name();
        ctx.executor = executor->Name();
        ctx.runtime = &runtime;
        ctx.cache = &session.Cache();
        ctx.window_start_us = window_start;
        observer->OnRunBegin(ctx);
    }

    ServingReport report;
    report.model = session.ModelName();
    report.mode = sim::ToString(session.Mode());
    report.policy = policy.Name();
    report.executor = executor->Name();
    report.requests = static_cast<int64_t>(requests.size());
    if (!requests.empty() &&
        requests.back().arrival_us > requests.front().arrival_us) {
        report.offered_qps =
            static_cast<double>(requests.size() - 1) /
            (requests.back().arrival_us - requests.front().arrival_us) * 1e6;
    }

    // Everything below runs in ABSOLUTE host time: rebasing arrivals once
    // keeps every comparison (admission, policy deadlines, idle targets) in
    // one floating-point domain. Mixing window-relative and absolute clocks
    // here can disagree by an ulp once the warm-up offset is large, and an
    // ulp of disagreement is an infinite loop in a discrete-event simulator.
    const auto n = static_cast<int64_t>(requests.size());
    std::vector<sim::SimTime> due;
    due.reserve(requests.size());
    for (const Request& r : requests) {
        due.push_back(window_start + r.arrival_us);
    }

    int64_t next_arrival = 0;
    std::deque<Request> queue;
    const sim::SimTime first_due = n > 0 ? due.front() : window_start;
    sim::SimTime last_completion = first_due;

    while (next_arrival < n || !queue.empty()) {
        const sim::SimTime now = runtime.Now();

        // Admit everything that has arrived by the current host time.
        while (next_arrival < n && due[static_cast<size_t>(next_arrival)] <= now) {
            const sim::SimTime t = due[static_cast<size_t>(next_arrival)];
            const Request& r = requests[static_cast<size_t>(next_arrival)];
            queue.push_back(Request{next_arrival, t, r.src, r.dst});
            policy.OnArrival(t);
            if (observer != nullptr) {
                observer->OnArrival(queue.back());
            }
            ++next_arrival;
        }

        const bool stream_ended = next_arrival >= n;
        const BatchDecision decision = policy.Decide(queue, now, stream_ended);

        if (decision.dispatch > 0) {
            DGNN_CHECK(decision.dispatch <= static_cast<int64_t>(queue.size()),
                       "policy dispatched more requests than queued");
            report.queue_depth.Record(static_cast<double>(queue.size()));
            report.batch_size.Record(static_cast<double>(decision.dispatch));

            const BatchProfile& profile = session.Profile(decision.dispatch);

            // Predict-then-place (src/dispatch/): price the batch on CPU,
            // GPU, and GPU-fused from the captured profiles and route it.
            // The estimate charges the device placements the worst-case
            // all-miss state volume — the same bound the executors pay for
            // uncached sessions. Cache-enabled sessions keep their batches
            // on the device (state rows are device-resident; a host run
            // would bypass them), so CPU placement is masked for them.
            const BatchProfile* exec_profile = &profile;
            dispatch::Placement placement = dispatch::Placement::kGpu;
            std::optional<dispatch::PlacementDecision> placed;
            if (options.dispatcher != nullptr) {
                DGNN_CHECK(session.Mode() == sim::ExecMode::kHybrid,
                           "the hybrid dispatcher needs a hybrid session");
                const BatchProfile& fused_profile =
                    session.FusedProfile(decision.dispatch);
                dispatch::WorkEstimate estimate;
                estimate.batch_size = profile.batch_size;
                estimate.host_us = profile.host_us;
                estimate.h2d_bytes =
                    profile.h2d_bytes +
                    profile.state_rows * profile.state_row_bytes;
                estimate.d2h_bytes = profile.d2h_bytes;
                estimate.kernels = &profile.kernels;
                estimate.fused_kernels = &fused_profile.kernels;
                placed = options.dispatcher->Decide(
                    estimate, /*allow_cpu=*/!session.CacheEnabled());
                placement = placed->placement;
                if (placement == dispatch::Placement::kGpuFused) {
                    exec_profile = &fused_profile;
                }
                ++report.placement_batches[static_cast<size_t>(placement)];
            }

            // Resolve the batch's state gather against the session's live
            // cache (warm across batches and runs). Blind endpoints (a
            // src or dst of -1) are charged their share of the probe's
            // all-miss state volume, so transfer accounting never silently
            // drops state movement — not even in mixed or half-blind
            // batches.
            CacheBatchCost cache_cost;
            ExchangeCost exchange;
            // The shard hook needs the batch's unique nodes even for
            // uncached sessions (sharded read-only feature tables still pay
            // the exchange); without a hook the collection stays gated on
            // the cache exactly as before.
            const bool want_nodes =
                session.CacheEnabled() || options.shard_hook != nullptr;
            std::vector<int64_t> nodes;
            int64_t blind_endpoints = 0;
            if (want_nodes) {
                nodes.reserve(static_cast<size_t>(2 * decision.dispatch));
                for (int64_t i = 0; i < decision.dispatch; ++i) {
                    const Request& r = queue[static_cast<size_t>(i)];
                    for (const int64_t node : {r.src, r.dst}) {
                        if (node >= 0) {
                            nodes.push_back(node);
                        } else {
                            ++blind_endpoints;
                        }
                    }
                }
                cache::SortUnique(nodes);
            }
            if (options.shard_hook != nullptr) {
                // Remote-owned nodes leave the batch's local gather; their
                // rows arrive through the exchange issued below.
                (void)options.shard_hook->ClaimRemote(nodes);
            }
            if (session.CacheEnabled()) {
                cache_cost.row_bytes = profile.state_row_bytes;
                cache_cost.rows_mutable = session.CacheRowsMutable();
                if (!nodes.empty()) {
                    const cache::GatherResult g = session.Cache().Gather(
                        nodes, session.CacheRowsMutable(),
                        runtime.HasObserver() ? &cache_cost.row_trace
                                              : nullptr);
                    cache_cost.hit_rows = g.hit_rows;
                    cache_cost.miss_rows = g.miss_rows;
                    cache_cost.writeback_rows = g.writeback_rows;
                }
                // Pro-rated all-miss charge for the endpoints the cache
                // cannot see (the probe's state_rows cover a full batch's
                // 2 * batch_size endpoints' worth of unique state);
                // ceiling division so a small blind share never truncates
                // to a free ride. Mutable rows the cache never admitted
                // also pay their sync-back per batch, like the uncached
                // baseline.
                const int64_t blind_rows =
                    blind_endpoints == 0
                        ? 0
                        : (blind_endpoints * profile.state_rows +
                           2 * profile.batch_size - 1) /
                              (2 * profile.batch_size);
                cache_cost.miss_rows += blind_rows;
                if (session.CacheRowsMutable()) {
                    cache_cost.writeback_rows += blind_rows;
                }
            }

            if (options.shard_hook != nullptr) {
                // The exchange lands on the run's streams ahead of the
                // batch's own work, so stream ordering alone serializes
                // them; an empty claim issues nothing (1-shard identity).
                exchange = options.shard_hook->IssueExchange(runtime);
                report.exchange += exchange;
            }

            BatchSpans spans;
            const sim::SimTime completion = executor->SubmitPlaced(
                placement, *exec_profile, cache_cost,
                observer != nullptr ? &spans : nullptr);
            last_completion = std::max(last_completion, completion);
            BatchObservation ob;
            if (observer != nullptr) {
                // Member requests must be copied BEFORE the pops below
                // retire them from the queue.
                ob.batch_index = report.batches;
                ob.queue_depth = static_cast<int64_t>(queue.size());
                ob.spans = spans;
                ob.cache_cost = cache_cost;
                ob.exchange = exchange;
                ob.profile = exec_profile;
                ob.decision = placed;
                ob.requests.assign(queue.begin(),
                                   queue.begin() + decision.dispatch);
            }
            for (int64_t i = 0; i < decision.dispatch; ++i) {
                report.latency.Record(completion - queue.front().arrival_us);
                queue.pop_front();
            }
            ++report.batches;
            if (observer != nullptr) {
                observer->OnBatch(ob);
            }
            continue;
        }

        // Nothing to dispatch: idle to the next actionable instant. Both
        // candidate wake targets are strictly in the future (admission
        // consumed arrivals <= now; policies only schedule wakes beyond
        // now), so the idle below always advances the clock.
        sim::SimTime wake = decision.wake_us;
        if (next_arrival < n) {
            wake = std::min(wake, due[static_cast<size_t>(next_arrival)]);
        }
        DGNN_CHECK(wake < kNoWake,
                   "batch policy stalled: no dispatch and nothing to wake for");
        if (observer != nullptr) {
            // A wake at the policy's own deadline is a timeout flush in the
            // making; a wake at the next arrival is the server going idle.
            observer->OnIdleWake(wake, wake == decision.wake_us);
        }
        sim::CategoryScope idle_scope(runtime, "Serving Idle");
        runtime.IdleUntil(wake);
        DGNN_CHECK(runtime.Now() > now, "serving loop failed to advance");
    }

    executor->Drain();
    // End-of-run sync of the host-side store, like the offline models'
    // flush: every dirty row still resident pays its write-back exactly
    // once (DESIGN.md §8 — on eviction or here). The rows stay resident,
    // so a follow-up run over the same session starts warm and clean.
    if (session.CacheEnabled() && session.CacheRowsMutable()) {
        std::vector<std::string> flushed;
        const int64_t flushed_rows = session.Cache().FlushDirty(
            runtime.HasObserver() ? &flushed : nullptr);
        sim::AccessSet access;
        access.reads = std::move(flushed);
        access.writes.emplace_back("host_store");
        sim::AccessScope access_scope(runtime, std::move(access));
        runtime.WriteBackToHost(flushed_rows, session.Cache().RowBytes(),
                                "serve_state_flush");
    }
    if (observer != nullptr) {
        observer->OnRunEnd();
    }
    report.makespan_us = last_completion - first_due;
    if (report.makespan_us > 0.0) {
        report.achieved_qps =
            static_cast<double>(report.requests) / report.makespan_us * 1e6;
    }
    report.h2d_bytes = runtime.BytesToDevice();
    report.d2h_bytes = runtime.BytesToHost();
    report.cache_hit_bytes = runtime.CacheHitBytes();
    report.cache_stats = session.Cache().Stats() - cache_stats_before;
    return report;
}

QpsSearchResult
FindMaxQpsUnderSlo(ModelSession& session,
                   const std::function<std::unique_ptr<BatchPolicy>()>& make_policy,
                   const ServerOptions& options, sim::SimTime slo_us,
                   int64_t num_requests, uint64_t seed, double lo_qps)
{
    DGNN_CHECK(slo_us > 0.0, "SLO must be positive, got ", slo_us);
    DGNN_CHECK(num_requests > 0, "need at least one request for the search");
    DGNN_CHECK(lo_qps > 0.0, "search floor must be positive, got ", lo_qps);

    QpsSearchResult result;
    struct Probe {
        bool sustained;
        sim::SimTime p99;
    };
    // "Sustained" needs both halves: the tail meets the SLO AND the server
    // keeps up with the offered rate. The second half matters because a
    // finite workload bounds p99 even past saturation (the last batch
    // always completes eventually); requiring completions to track
    // arrivals restores the steady-state meaning of the search.
    auto probe_at = [&](double rate) {
        const std::vector<sim::SimTime> arrivals =
            PoissonArrivals(rate, num_requests, seed);
        std::unique_ptr<BatchPolicy> policy = make_policy();
        const ServingReport report = Serve(session, *policy, arrivals, options);
        ++result.evaluations;
        const bool keeps_up = report.achieved_qps >= 0.95 * rate;
        return Probe{report.latency.P99() <= slo_us && keeps_up,
                     report.latency.P99()};
    };

    // Phase 1: geometric probe upward from the floor until it breaks.
    double lo = lo_qps;
    Probe at_lo = probe_at(lo);
    if (!at_lo.sustained) {
        return result;  // even the floor misses the SLO
    }
    double hi = lo;
    constexpr int kMaxDoublings = 24;
    bool bracketed = false;
    for (int i = 0; i < kMaxDoublings; ++i) {
        hi = lo * 2.0;
        const Probe p = probe_at(hi);
        if (!p.sustained) {
            bracketed = true;
            break;
        }
        lo = hi;
        at_lo = p;
    }

    // Phase 2: fixed-round bisection of (sustained lo, unsustained hi).
    if (bracketed) {
        constexpr int kBisections = 12;
        for (int i = 0; i < kBisections; ++i) {
            const double mid = 0.5 * (lo + hi);
            const Probe p = probe_at(mid);
            if (p.sustained) {
                lo = mid;
                at_lo = p;
            } else {
                hi = mid;
            }
        }
    }
    result.max_qps = lo;
    result.p99_us = at_lo.p99;
    return result;
}

}  // namespace dgnn::serve
