#include "serve/server.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dgnn::serve {

const char*
ToString(ExecutorKind kind)
{
    switch (kind) {
      case ExecutorKind::kSerial:
        return "serial";
      case ExecutorKind::kPipelined:
        return "pipelined";
    }
    return "?";
}

namespace {

std::unique_ptr<BatchExecutor>
MakeExecutor(sim::Runtime& runtime, const ServerOptions& options)
{
    if (options.executor == ExecutorKind::kPipelined) {
        return std::make_unique<PipelinedExecutor>(runtime,
                                                   options.pipeline_depth);
    }
    return std::make_unique<SerialExecutor>(runtime);
}

}  // namespace

ServingReport
Serve(ModelSession& session, BatchPolicy& policy,
      const std::vector<sim::SimTime>& arrivals, const ServerOptions& options)
{
    DGNN_CHECK(std::is_sorted(arrivals.begin(), arrivals.end()),
               "arrival timestamps must be sorted");

    sim::Runtime runtime = models::MakeRuntime(session.Mode());
    std::unique_ptr<BatchExecutor> executor = MakeExecutor(runtime, options);

    if (options.warm_start) {
        // Context/model init happen before the serving window opens; model
        // weights are assumed resident (a server loads them once).
        runtime.EnsureWarm(0);
    }
    runtime.ResetMeasurementWindow();
    const sim::SimTime window_start = runtime.Now();

    ServingReport report;
    report.model = session.ModelName();
    report.mode = sim::ToString(session.Mode());
    report.policy = policy.Name();
    report.executor = executor->Name();
    report.requests = static_cast<int64_t>(arrivals.size());
    if (!arrivals.empty() && arrivals.back() > arrivals.front()) {
        report.offered_qps = static_cast<double>(arrivals.size() - 1) /
                             (arrivals.back() - arrivals.front()) * 1e6;
    }

    // Everything below runs in ABSOLUTE host time: rebasing arrivals once
    // keeps every comparison (admission, policy deadlines, idle targets) in
    // one floating-point domain. Mixing window-relative and absolute clocks
    // here can disagree by an ulp once the warm-up offset is large, and an
    // ulp of disagreement is an infinite loop in a discrete-event simulator.
    const auto n = static_cast<int64_t>(arrivals.size());
    std::vector<sim::SimTime> due;
    due.reserve(arrivals.size());
    for (const sim::SimTime t : arrivals) {
        due.push_back(window_start + t);
    }

    int64_t next_arrival = 0;
    std::deque<Request> queue;
    const sim::SimTime first_due = n > 0 ? due.front() : window_start;
    sim::SimTime last_completion = first_due;

    while (next_arrival < n || !queue.empty()) {
        const sim::SimTime now = runtime.Now();

        // Admit everything that has arrived by the current host time.
        while (next_arrival < n && due[static_cast<size_t>(next_arrival)] <= now) {
            const sim::SimTime t = due[static_cast<size_t>(next_arrival)];
            queue.push_back(Request{next_arrival, t});
            policy.OnArrival(t);
            ++next_arrival;
        }

        const bool stream_ended = next_arrival >= n;
        const BatchDecision decision = policy.Decide(queue, now, stream_ended);

        if (decision.dispatch > 0) {
            DGNN_CHECK(decision.dispatch <= static_cast<int64_t>(queue.size()),
                       "policy dispatched more requests than queued");
            report.queue_depth.Record(static_cast<double>(queue.size()));
            report.batch_size.Record(static_cast<double>(decision.dispatch));

            const BatchProfile& profile = session.Profile(decision.dispatch);
            const sim::SimTime completion = executor->Submit(profile);
            last_completion = std::max(last_completion, completion);
            for (int64_t i = 0; i < decision.dispatch; ++i) {
                report.latency.Record(completion - queue.front().arrival_us);
                queue.pop_front();
            }
            ++report.batches;
            continue;
        }

        // Nothing to dispatch: idle to the next actionable instant. Both
        // candidate wake targets are strictly in the future (admission
        // consumed arrivals <= now; policies only schedule wakes beyond
        // now), so the idle below always advances the clock.
        sim::SimTime wake = decision.wake_us;
        if (next_arrival < n) {
            wake = std::min(wake, due[static_cast<size_t>(next_arrival)]);
        }
        DGNN_CHECK(wake < kNoWake,
                   "batch policy stalled: no dispatch and nothing to wake for");
        sim::CategoryScope idle_scope(runtime, "Serving Idle");
        runtime.IdleUntil(wake);
        DGNN_CHECK(runtime.Now() > now, "serving loop failed to advance");
    }

    executor->Drain();
    report.makespan_us = last_completion - first_due;
    if (report.makespan_us > 0.0) {
        report.achieved_qps =
            static_cast<double>(report.requests) / report.makespan_us * 1e6;
    }
    return report;
}

QpsSearchResult
FindMaxQpsUnderSlo(ModelSession& session,
                   const std::function<std::unique_ptr<BatchPolicy>()>& make_policy,
                   const ServerOptions& options, sim::SimTime slo_us,
                   int64_t num_requests, uint64_t seed, double lo_qps)
{
    DGNN_CHECK(slo_us > 0.0, "SLO must be positive, got ", slo_us);
    DGNN_CHECK(num_requests > 0, "need at least one request for the search");
    DGNN_CHECK(lo_qps > 0.0, "search floor must be positive, got ", lo_qps);

    QpsSearchResult result;
    struct Probe {
        bool sustained;
        sim::SimTime p99;
    };
    // "Sustained" needs both halves: the tail meets the SLO AND the server
    // keeps up with the offered rate. The second half matters because a
    // finite workload bounds p99 even past saturation (the last batch
    // always completes eventually); requiring completions to track
    // arrivals restores the steady-state meaning of the search.
    auto probe_at = [&](double rate) {
        const std::vector<sim::SimTime> arrivals =
            PoissonArrivals(rate, num_requests, seed);
        std::unique_ptr<BatchPolicy> policy = make_policy();
        const ServingReport report = Serve(session, *policy, arrivals, options);
        ++result.evaluations;
        const bool keeps_up = report.achieved_qps >= 0.95 * rate;
        return Probe{report.latency.P99() <= slo_us && keeps_up,
                     report.latency.P99()};
    };

    // Phase 1: geometric probe upward from the floor until it breaks.
    double lo = lo_qps;
    Probe at_lo = probe_at(lo);
    if (!at_lo.sustained) {
        return result;  // even the floor misses the SLO
    }
    double hi = lo;
    constexpr int kMaxDoublings = 24;
    bool bracketed = false;
    for (int i = 0; i < kMaxDoublings; ++i) {
        hi = lo * 2.0;
        const Probe p = probe_at(hi);
        if (!p.sustained) {
            bracketed = true;
            break;
        }
        lo = hi;
        at_lo = p;
    }

    // Phase 2: fixed-round bisection of (sustained lo, unsustained hi).
    if (bracketed) {
        constexpr int kBisections = 12;
        for (int i = 0; i < kBisections; ++i) {
            const double mid = 0.5 * (lo + hi);
            const Probe p = probe_at(mid);
            if (p.sustained) {
                lo = mid;
                at_lo = p;
            } else {
                hi = mid;
            }
        }
    }
    result.max_qps = lo;
    result.p99_us = at_lo.p99;
    return result;
}

}  // namespace dgnn::serve
