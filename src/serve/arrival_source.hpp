#pragma once

/// @file
/// The arrival-source interface: a pluggable producer of request streams
/// for the serving loop. PR 2 hard-wired two generators (Poisson and
/// trace-replay) as free functions; this extraction turns "where do
/// requests come from" into a first-class seam so adversarial scenario
/// generators (src/scenario/) can drive the server through exactly the
/// same entry points as the benign processes.
///
/// Contract: Generate(n) is a pure function of the source's construction
/// state — calling it twice returns bit-identical streams, and two sources
/// built with the same parameters agree. That determinism is what makes
/// the serving gauntlet's committed outputs and BENCH_*.json trajectory
/// diffable across machines.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/event_stream.hpp"
#include "serve/request.hpp"

namespace dgnn::serve {

/// Produces deterministic request streams on demand.
class ArrivalSource {
  public:
    virtual ~ArrivalSource() = default;

    /// Stable display name (scenario/process identifier for reports).
    virtual std::string Name() const = 0;

    /// @p n requests with sorted, non-negative relative arrival timestamps.
    /// Node-blind sources leave src/dst at -1. Deterministic: repeated
    /// calls return identical streams.
    virtual std::vector<Request> Generate(int64_t n) const = 0;
};

/// The classic open-loop load model: exponential inter-arrival gaps at a
/// fixed rate, node-blind. Wraps PoissonArrivals.
class PoissonSource final : public ArrivalSource {
  public:
    PoissonSource(double rate_qps, uint64_t seed);

    std::string Name() const override;
    std::vector<Request> Generate(int64_t n) const override;

  private:
    double rate_qps_;
    uint64_t seed_;
};

/// Replays a graph::EventStream's inter-arrival gaps (rescaled to a target
/// mean rate) together with each replayed event's endpoints, so recurrent
/// nodes reappear across batches. Wraps TraceRequests.
class TraceReplaySource final : public ArrivalSource {
  public:
    /// @p stream is borrowed and must outlive the source.
    TraceReplaySource(const graph::EventStream& stream, double target_qps);

    std::string Name() const override;
    std::vector<Request> Generate(int64_t n) const override;

  private:
    const graph::EventStream& stream_;
    double target_qps_;
};

}  // namespace dgnn::serve
