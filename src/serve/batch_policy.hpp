#pragma once

/// @file
/// Dynamic batching policies for the serving queue. The server loop asks
/// the policy what to do given the current queue and clock; the policy
/// answers with either "dispatch the first K requests now" or "wait, and
/// re-evaluate no later than wake_us" (arrivals always trigger an earlier
/// re-evaluation). Three classic points in the design space:
///
///   * FixedSizePolicy    — dispatch only full batches of B; maximum
///                          throughput, unbounded queueing delay at low load
///   * TimeoutPolicy      — full batch of B or the oldest request has
///                          waited timeout_us; bounds queueing delay
///   * AdaptivePolicy     — size x deadline: estimates the arrival rate
///                          (EWMA of inter-arrival gaps) and dispatches
///                          early when the max batch cannot fill before the
///                          oldest request's deadline would expire
///
/// Policies are stateful (the adaptive one carries its rate estimate);
/// create a fresh instance per serving run.

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "serve/request.hpp"
#include "sim/sim_time.hpp"

namespace dgnn::serve {

/// "No wake-up scheduled" sentinel: only a new arrival (or the end of the
/// arrival stream) re-triggers the policy.
inline constexpr sim::SimTime kNoWake = 1e30;

/// What the server loop should do next.
struct BatchDecision {
    /// Number of queue-front requests to dispatch now; 0 = keep waiting.
    int64_t dispatch = 0;
    /// When dispatch == 0: absolute time to re-evaluate (kNoWake = only on
    /// arrival).
    sim::SimTime wake_us = kNoWake;
};

/// Strategy deciding when the queue becomes a batch.
class BatchPolicy {
  public:
    virtual ~BatchPolicy() = default;

    virtual std::string Name() const = 0;

    /// Called by the server on every request admission (rate estimators).
    virtual void OnArrival(sim::SimTime) {}

    /// @param queue        pending requests, oldest first
    /// @param now_us       current simulated time, same clock as the queued
    ///                     arrival timestamps (policies only take
    ///                     differences, so the epoch does not matter)
    /// @param stream_ended no further arrivals will come; drain mode
    virtual BatchDecision Decide(const std::deque<Request>& queue,
                                 sim::SimTime now_us, bool stream_ended) = 0;
};

/// Dispatches only full batches of @p batch_size (flushes leftovers once
/// the arrival stream ends).
class FixedSizePolicy : public BatchPolicy {
  public:
    explicit FixedSizePolicy(int64_t batch_size);

    std::string Name() const override;
    BatchDecision Decide(const std::deque<Request>& queue, sim::SimTime now_us,
                         bool stream_ended) override;

  private:
    int64_t batch_size_;
};

/// Dispatches a full batch of @p batch_size, or whatever is queued once the
/// oldest request has waited @p timeout_us.
class TimeoutPolicy : public BatchPolicy {
  public:
    TimeoutPolicy(int64_t batch_size, sim::SimTime timeout_us);

    std::string Name() const override;
    BatchDecision Decide(const std::deque<Request>& queue, sim::SimTime now_us,
                         bool stream_ended) override;

  private:
    int64_t batch_size_;
    sim::SimTime timeout_us_;
};

/// Size x deadline adaptive batching: keeps an EWMA estimate of the
/// inter-arrival gap and, whenever filling up to @p max_batch would blow
/// the oldest request's queueing deadline, dispatches what is queued (once
/// at least @p min_batch deep, or unconditionally at the deadline).
class AdaptivePolicy : public BatchPolicy {
  public:
    AdaptivePolicy(int64_t min_batch, int64_t max_batch,
                   sim::SimTime deadline_us);

    std::string Name() const override;
    void OnArrival(sim::SimTime arrival_us) override;
    BatchDecision Decide(const std::deque<Request>& queue, sim::SimTime now_us,
                         bool stream_ended) override;

    /// Current EWMA inter-arrival estimate (us); exposed for tests.
    sim::SimTime EstimatedGapUs() const { return ewma_gap_us_; }

    /// Whether at least one inter-arrival gap has been observed (a gap of
    /// exactly 0 — a burst — still counts); exposed for tests.
    bool HasGapEstimate() const { return has_gap_estimate_; }

  private:
    int64_t min_batch_;
    int64_t max_batch_;
    sim::SimTime deadline_us_;
    sim::SimTime ewma_gap_us_ = 0.0;
    sim::SimTime last_arrival_us_ = 0.0;
    bool saw_arrival_ = false;
    bool has_gap_estimate_ = false;
};

}  // namespace dgnn::serve
