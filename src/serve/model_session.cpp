#include "serve/model_session.hpp"

#include <string_view>

#include "support/check.hpp"

namespace dgnn::serve {

namespace {

/// Trace-name markers the runtime's cache-aware helpers attach (see
/// sim::Runtime::GatherToDevice / WriteBackToHost).
constexpr std::string_view kCacheMissSuffix = ":cache_miss_h2d";
constexpr std::string_view kCacheWritebackSuffix = ":cache_writeback_d2h";

}  // namespace

ModelSession::ModelSession(models::DgnnModel& model, sim::ExecMode mode,
                           int64_t num_neighbors,
                           cache::DeviceCacheConfig cache_config)
    : model_(model), mode_(mode), num_neighbors_(num_neighbors)
{
    // The cache only exists where it can act honestly: hybrid mode,
    // positive capacity, cacheable per-node state, AND state keyed by the
    // request's own endpoints — the serving loop can only resolve src/dst
    // against the cache, so a model whose gathers reach further (TGAT's
    // sampled-neighbor features) would under-account transfers. Otherwise
    // the session serves uncached — bit-identical to a cache-less session.
    if (mode_ == sim::ExecMode::kHybrid && cache_config.capacity_bytes > 0 &&
        model_.CacheRowBytes() > 0 && model_.CacheKeysAreRequestEndpoints()) {
        cache_config.row_bytes = model_.CacheRowBytes();
        cache_ = cache::DeviceCache(cache_config);
    }
}

const BatchProfile&
ModelSession::Profile(int64_t batch_size)
{
    DGNN_CHECK(batch_size > 0, "batch size must be positive, got ", batch_size);
    auto it = cache_profiles_.find(batch_size);
    if (it == cache_profiles_.end()) {
        it = cache_profiles_
                 .emplace(batch_size, Capture(batch_size, /*fuse_kernels=*/false))
                 .first;
    }
    return it->second;
}

const BatchProfile&
ModelSession::FusedProfile(int64_t batch_size)
{
    DGNN_CHECK(batch_size > 0, "batch size must be positive, got ", batch_size);
    auto it = fused_profiles_.find(batch_size);
    if (it == fused_profiles_.end()) {
        it = fused_profiles_
                 .emplace(batch_size, Capture(batch_size, /*fuse_kernels=*/true))
                 .first;
    }
    return it->second;
}

BatchProfile
ModelSession::Capture(int64_t batch_size, bool fuse_kernels)
{
    // Replay the model's batched entry on a scratch runtime of the same
    // mode; the trace then holds every op the batch issues, with enough
    // descriptor detail (flops/bytes/parallelism/irregularity) to re-issue
    // it. Warm-up is off, numerics are capped — cost accounting is
    // identical either way (the numeric_cap contract).
    sim::Runtime scratch = models::MakeRuntime(mode_);
    models::RunConfig probe =
        models::SingleBatchProbe(mode_, batch_size, num_neighbors_);
    probe.fuse_kernels = fuse_kernels;
    if (CacheEnabled()) {
        // Probe through an unbounded scratch cache: every unique state row
        // misses exactly once and no eviction write-backs occur, so the
        // trace cleanly separates "per-node state" from everything else.
        probe.cache = cache::DeviceCacheConfig::Unbounded(model_.CacheRowBytes(),
                                                          cache_.Eviction());
    }
    model_.RunInference(scratch, probe);

    BatchProfile profile;
    profile.batch_size = batch_size;
    profile.state_row_bytes = CacheEnabled() ? model_.CacheRowBytes() : 0;
    for (const sim::TraceEvent& e : scratch.GetTrace().Events()) {
        switch (e.kind) {
          case sim::EventKind::kHostOp:
            profile.host_us += e.Duration();
            break;
          case sim::EventKind::kKernel: {
            if (CacheEnabled() && e.name.ends_with(":cache_hit_gather")) {
                // The probe cache is fresh, so hits cannot occur; guard
                // anyway — live gathers are re-issued by the executor.
                break;
            }
            sim::KernelDesc k;
            k.name = e.name;
            k.flops = e.flops;
            k.bytes = e.bytes;
            k.parallel_items = e.parallel_items;
            k.irregular = e.irregular;
            profile.kernels.push_back(std::move(k));
            break;
          }
          case sim::EventKind::kTransfer:
            if (CacheEnabled() && e.name.ends_with(kCacheMissSuffix)) {
                profile.state_rows += e.bytes / profile.state_row_bytes;
            } else if (CacheEnabled() &&
                       e.name.ends_with(kCacheWritebackSuffix)) {
                // End-of-run flush of the probe; the live session keeps its
                // rows resident instead.
            } else if (e.direction == sim::CopyDirection::kHostToDevice) {
                profile.h2d_bytes += e.bytes;
            } else if (e.direction == sim::CopyDirection::kDeviceToHost) {
                profile.d2h_bytes += e.bytes;
            }
            break;
          case sim::EventKind::kSync:
          case sim::EventKind::kMarker:
            break;
        }
    }
    // In CPU-only mode kernels run as synchronous host ops through
    // Launch(); they still surface as kKernel events, so the profile is
    // never empty for a real model.
    DGNN_CHECK(!profile.kernels.empty(),
               "batch capture for ", model_.Name(),
               " recorded no device kernels — is the model issuing work "
               "through the runtime?");
    return profile;
}

}  // namespace dgnn::serve
