#include "serve/model_session.hpp"

#include "support/check.hpp"

namespace dgnn::serve {

ModelSession::ModelSession(models::DgnnModel& model, sim::ExecMode mode,
                           int64_t num_neighbors)
    : model_(model), mode_(mode), num_neighbors_(num_neighbors)
{
}

const BatchProfile&
ModelSession::Profile(int64_t batch_size)
{
    DGNN_CHECK(batch_size > 0, "batch size must be positive, got ", batch_size);
    auto it = cache_.find(batch_size);
    if (it == cache_.end()) {
        it = cache_.emplace(batch_size, Capture(batch_size)).first;
    }
    return it->second;
}

BatchProfile
ModelSession::Capture(int64_t batch_size)
{
    // Replay the model's batched entry on a scratch runtime of the same
    // mode; the trace then holds every op the batch issues, with enough
    // descriptor detail (flops/bytes/parallelism/irregularity) to re-issue
    // it. Warm-up is off, numerics are capped — cost accounting is
    // identical either way (the numeric_cap contract).
    sim::Runtime scratch = models::MakeRuntime(mode_);
    const models::RunConfig probe =
        models::SingleBatchProbe(mode_, batch_size, num_neighbors_);
    model_.RunInference(scratch, probe);

    BatchProfile profile;
    profile.batch_size = batch_size;
    for (const sim::TraceEvent& e : scratch.GetTrace().Events()) {
        switch (e.kind) {
          case sim::EventKind::kHostOp:
            profile.host_us += e.Duration();
            break;
          case sim::EventKind::kKernel: {
            sim::KernelDesc k;
            k.name = e.name;
            k.flops = e.flops;
            k.bytes = e.bytes;
            k.parallel_items = e.parallel_items;
            k.irregular = e.irregular;
            profile.kernels.push_back(std::move(k));
            break;
          }
          case sim::EventKind::kTransfer:
            if (e.direction == sim::CopyDirection::kHostToDevice) {
                profile.h2d_bytes += e.bytes;
            } else if (e.direction == sim::CopyDirection::kDeviceToHost) {
                profile.d2h_bytes += e.bytes;
            }
            break;
          case sim::EventKind::kSync:
          case sim::EventKind::kMarker:
            break;
        }
    }
    // In CPU-only mode kernels run as synchronous host ops through
    // Launch(); they still surface as kKernel events, so the profile is
    // never empty for a real model.
    DGNN_CHECK(!profile.kernels.empty(),
               "batch capture for ", model_.Name(),
               " recorded no device kernels — is the model issuing work "
               "through the runtime?");
    return profile;
}

}  // namespace dgnn::serve
