#pragma once

/// @file
/// Batch executors: how a dispatched batch's cost profile is issued to the
/// runtime.
///
///   * SerialExecutor     — eager-mode semantics, exactly what the offline
///                          models do: host build, blocking H2D, kernels,
///                          synchronize, blocking D2H. One batch owns the
///                          whole machine at a time.
///   * PipelinedExecutor  — the serving optimization the paper's bottleneck
///                          analysis motivates: host build for batch k+1
///                          overlaps device compute for batch k. Inputs move
///                          via async pinned copies on the copy stream; the
///                          compute stream waits on the copy event; results
///                          return via an async D2H behind a compute event.
///                          A depth bound (default 2 = double buffering)
///                          throttles the host when it runs too far ahead.
///
/// Submit returns the batch's absolute completion time, which for the
/// pipelined executor generally lies beyond the host clock.

#include <cstdint>
#include <deque>

#include "serve/model_session.hpp"
#include "sim/runtime.hpp"

namespace dgnn::serve {

/// Issues batches to the simulated runtime.
class BatchExecutor {
  public:
    explicit BatchExecutor(sim::Runtime& runtime) : runtime_(runtime) {}
    virtual ~BatchExecutor() = default;

    virtual std::string Name() const = 0;

    /// Issues one batch; returns its absolute completion time (when its
    /// results are back on the host).
    virtual sim::SimTime Submit(const BatchProfile& profile) = 0;

    /// Blocks the host until every in-flight batch completes.
    virtual sim::SimTime Drain();

    sim::Runtime& GetRuntime() { return runtime_; }

  protected:
    sim::Runtime& runtime_;
};

/// Eager-mode executor: every stage blocks the host.
class SerialExecutor : public BatchExecutor {
  public:
    using BatchExecutor::BatchExecutor;

    std::string Name() const override { return "serial"; }
    sim::SimTime Submit(const BatchProfile& profile) override;
};

/// Multi-stream pipelined executor with bounded in-flight depth.
class PipelinedExecutor : public BatchExecutor {
  public:
    /// @param max_in_flight batches allowed in flight before the host
    ///                      blocks (2 = classic double buffering)
    explicit PipelinedExecutor(sim::Runtime& runtime, int64_t max_in_flight = 2);

    std::string Name() const override { return "pipelined"; }
    sim::SimTime Submit(const BatchProfile& profile) override;
    sim::SimTime Drain() override;

    int64_t InFlight() const { return static_cast<int64_t>(in_flight_.size()); }

  private:
    int64_t max_in_flight_;
    std::deque<sim::Event> in_flight_;
};

}  // namespace dgnn::serve
