#pragma once

/// @file
/// Batch executors: how a dispatched batch's cost profile is issued to the
/// runtime.
///
///   * SerialExecutor     — eager-mode semantics, exactly what the offline
///                          models do: host build, blocking H2D, kernels,
///                          synchronize, blocking D2H. One batch owns the
///                          whole machine at a time.
///   * PipelinedExecutor  — the serving optimization the paper's bottleneck
///                          analysis motivates: host build for batch k+1
///                          overlaps device compute for batch k. Inputs move
///                          via async pinned copies on the copy stream; the
///                          compute stream waits on the copy event; results
///                          return via an async D2H behind a compute event.
///                          A depth bound (default 2 = double buffering)
///                          throttles the host when it runs too far ahead.
///
/// Submit returns the batch's absolute completion time, which for the
/// pipelined executor generally lies beyond the host clock.

#include <cstdint>
#include <deque>

#include "cache/device_cache.hpp"
#include "dispatch/dispatcher.hpp"
#include "serve/model_session.hpp"
#include "sim/runtime.hpp"

namespace dgnn::serve {

/// Per-batch cache outcome the serving loop resolved against the session's
/// live device cache: how the batch's state gather splits into hits and
/// misses, and how many evicted dirty rows owe a write-back. Inactive
/// (all-zero) for uncached sessions — the profile then already carries the
/// full transfer volume.
struct CacheBatchCost {
    int64_t hit_rows = 0;
    int64_t miss_rows = 0;
    int64_t row_bytes = 0;
    int64_t writeback_rows = 0;

    /// Whether the cached rows are mutable state (the batch's kernels
    /// update them on the device) — TGN/JODIE/DyRep memory rows.
    bool rows_mutable = false;

    /// Generation-tagged row resources for the hazard checker
    /// (cache::GatherTrace semantics). Filled by the serving loop only
    /// when the runtime has an observer attached; empty otherwise.
    cache::GatherTrace row_trace;

    int64_t WritebackBytes() const { return writeback_rows * row_bytes; }
};

/// Stage-boundary timestamps of one submitted batch, filled by the
/// executors for the observability layer (src/obs/). The six boundaries are
/// monotone non-decreasing and complete_us equals the completion time
/// Submit returns, so the consecutive differences partition the batch's
/// in-executor latency exactly:
///
///   dispatch -> stall    pipeline-depth throttle wait (0 for serial)
///   stall    -> host     host-side batch build (+ async submit overheads)
///   host     -> h2d      input H2D landed on the device
///   h2d      -> compute  device kernels (incl. the cache hit-gather) done
///   compute  -> complete results (+ dirty write-backs) back on the host
///
/// For the pipelined executor the device-side boundaries are event
/// completion times clamped into [host_done, complete]: a batch's H2D may
/// queue behind the previous batch's D2H on the copy stream, and that wait
/// is attributed to the H2D stage.
struct BatchSpans {
    sim::SimTime dispatch_us = 0.0;
    sim::SimTime stall_done_us = 0.0;
    sim::SimTime host_done_us = 0.0;
    sim::SimTime h2d_done_us = 0.0;
    sim::SimTime compute_done_us = 0.0;
    sim::SimTime complete_us = 0.0;
};

/// Issues batches to the simulated runtime.
class BatchExecutor {
  public:
    explicit BatchExecutor(sim::Runtime& runtime) : runtime_(runtime) {}
    virtual ~BatchExecutor() = default;

    virtual std::string Name() const = 0;

    /// Issues one batch; returns its absolute completion time (when its
    /// results are back on the host). @p cache_cost carries the batch's
    /// resolved hit/miss split when the session serves through a device
    /// cache (all-zero for uncached sessions). When @p spans is non-null
    /// the executor records the batch's stage boundaries into it; the
    /// capture only reads the clock, so passing nullptr vs a target is
    /// simulation-identical.
    virtual sim::SimTime Submit(const BatchProfile& profile,
                                const CacheBatchCost& cache_cost,
                                BatchSpans* spans = nullptr) = 0;

    /// Placement-aware entry (the hybrid dispatcher's seam, shared by both
    /// executors). kGpu and kGpuFused forward to Submit with the profile
    /// the caller selected (the serving loop passes the fused profile for
    /// kGpuFused — the kernels arrive pre-collapsed). kCpu runs the batch
    /// synchronously on the host: build, then every kernel as a host op —
    /// nothing crosses PCIe, no streams, the host store stays
    /// authoritative. CPU placement requires an inactive cache_cost
    /// (serving only routes uncached sessions to the host).
    [[nodiscard]] sim::SimTime SubmitPlaced(dispatch::Placement placement,
                                            const BatchProfile& profile,
                                            const CacheBatchCost& cache_cost,
                                            BatchSpans* spans = nullptr);

    /// Blocks the host until every in-flight batch completes.
    virtual sim::SimTime Drain();

    sim::Runtime& GetRuntime() { return runtime_; }

  protected:
    sim::Runtime& runtime_;
};

/// Eager-mode executor: every stage blocks the host.
class SerialExecutor : public BatchExecutor {
  public:
    using BatchExecutor::BatchExecutor;

    std::string Name() const override { return "serial"; }
    sim::SimTime Submit(const BatchProfile& profile,
                        const CacheBatchCost& cache_cost,
                        BatchSpans* spans = nullptr) override;
};

/// Multi-stream pipelined executor with bounded in-flight depth.
class PipelinedExecutor : public BatchExecutor {
  public:
    /// @param max_in_flight batches allowed in flight before the host
    ///                      blocks (2 = classic double buffering)
    explicit PipelinedExecutor(sim::Runtime& runtime, int64_t max_in_flight = 2);

    std::string Name() const override { return "pipelined"; }
    sim::SimTime Submit(const BatchProfile& profile,
                        const CacheBatchCost& cache_cost,
                        BatchSpans* spans = nullptr) override;
    sim::SimTime Drain() override;

    int64_t InFlight() const { return static_cast<int64_t>(in_flight_.size()); }

  private:
    int64_t max_in_flight_;
    std::deque<sim::Event> in_flight_;
    /// Batches submitted so far; batch k stages through slot
    /// k % max_in_flight_ (the double-buffer rotation the hazard
    /// annotations describe).
    int64_t submitted_ = 0;
};

}  // namespace dgnn::serve
