#pragma once

/// @file
/// Online-serving request model and arrival processes. A request is one
/// inference unit (one interaction event for the CTDG models, one
/// snapshot/graph for the DTDG ones); an arrival process is the sorted
/// sequence of simulated arrival timestamps, relative to the start of the
/// serving window. Two generators: a Poisson process (the classic open-loop
/// load model) and a trace-driven replay that rescales the inter-arrival
/// gaps of a real graph::EventStream so its burstiness survives at any
/// target rate.

#include <cstdint>
#include <vector>

#include "graph/event_stream.hpp"
#include "sim/sim_time.hpp"

namespace dgnn::serve {

/// One queued inference request. src/dst identify the nodes the request
/// touches (the interaction's endpoints) so a cache-aware session can model
/// cross-batch locality; -1 = unknown (node-blind generators), in which
/// case cached serving falls back to the captured all-miss state volume.
struct Request {
    int64_t id = 0;
    sim::SimTime arrival_us = 0.0;
    int64_t src = -1;
    int64_t dst = -1;
};

/// Poisson arrivals: @p n exponential inter-arrival gaps at @p rate_qps
/// requests per second, deterministic in @p seed.
std::vector<sim::SimTime> PoissonArrivals(double rate_qps, int64_t n,
                                          uint64_t seed);

/// Trace-driven arrivals: replays the inter-arrival gaps of @p stream
/// (cycling when n exceeds the stream length), rescaled so the mean rate is
/// @p target_qps. Preserves the stream's burstiness profile.
std::vector<sim::SimTime> TraceArrivals(const graph::EventStream& stream,
                                        double target_qps, int64_t n);

/// Trace-driven *requests*: same timestamps as TraceArrivals plus the
/// replayed event's endpoints, so recurrent nodes in the stream (the
/// Wikipedia/Reddit repeat-talkers) reappear across serving batches and a
/// warm device cache can exploit the locality.
std::vector<Request> TraceRequests(const graph::EventStream& stream,
                                   double target_qps, int64_t n);

}  // namespace dgnn::serve
