#include "analysis/hazard_report.hpp"

#include <cstdio>

namespace dgnn::analysis {

namespace {

std::string FormatUs(sim::SimTime us)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2fus", us);
    return std::string(buf);
}

void AppendCounter(std::string& out, const char* label, int64_t value)
{
    constexpr int kPad = 18;
    out += "  ";
    out += label;
    out += ' ';
    for (int i = static_cast<int>(std::string(label).size()); i < kPad; ++i) {
        out += '.';
    }
    out += ' ';
    out += std::to_string(value);
    out += '\n';
}

}  // namespace

const char* ToString(HazardKind kind)
{
    switch (kind) {
        case HazardKind::kRaw: return "RAW";
        case HazardKind::kWar: return "WAR";
        case HazardKind::kWaw: return "WAW";
    }
    return "?";
}

std::string AccessSite::ToString() const
{
    std::string out = "op#" + std::to_string(op_index);
    out += ' ';
    out += op_name;
    out += " [";
    out += timeline;
    out += "] @ ";
    out += FormatUs(time_us);
    return out;
}

int64_t HazardReport::HazardOccurrences() const
{
    int64_t total = 0;
    for (const Hazard& hazard : hazards) {
        total += hazard.occurrences;
    }
    return total;
}

std::string HazardReport::ToText() const
{
    std::string out = "hazard report\n";
    AppendCounter(out, "ops", ops);
    AppendCounter(out, "reads", reads);
    AppendCounter(out, "writes", writes);
    AppendCounter(out, "resources", resources);
    AppendCounter(out, "events recorded", events_recorded);
    AppendCounter(out, "stream waits", stream_waits);
    AppendCounter(out, "host waits", host_waits);
    AppendCounter(out, "synchronizes", synchronizes);
    out += "  hazards ........... ";
    out += std::to_string(static_cast<int64_t>(hazards.size()));
    out += " (";
    out += std::to_string(HazardOccurrences());
    out += " occurrences)\n";
    out += "  verdict ........... ";
    out += Clean() ? "CLEAN" : "HAZARDOUS";
    out += '\n';
    for (size_t i = 0; i < hazards.size(); ++i) {
        const Hazard& hazard = hazards[i];
        out += "[";
        out += std::to_string(static_cast<int64_t>(i) + 1);
        out += "] ";
        out += analysis::ToString(hazard.kind);
        out += " on ";
        out += hazard.resource;
        out += " (x";
        out += std::to_string(hazard.occurrences);
        out += ")\n";
        out += "    prior:   " + hazard.prior.ToString() + "\n";
        out += "    current: " + hazard.current.ToString() + "\n";
        out += "    fix:     " + hazard.missing_edge + "\n";
    }
    return out;
}

void HazardReport::AppendJsonRecord(
    core::BenchJsonWriter& json,
    const std::vector<std::pair<std::string, std::string>>& labels) const
{
    json.BeginRecord();
    for (const auto& [key, value] : labels) {
        json.Field(key, value);
    }
    json.Field("ops", ops);
    json.Field("reads", reads);
    json.Field("writes", writes);
    json.Field("resources", resources);
    json.Field("events_recorded", events_recorded);
    json.Field("stream_waits", stream_waits);
    json.Field("host_waits", host_waits);
    json.Field("synchronizes", synchronizes);
    json.Field("hazards", static_cast<int64_t>(hazards.size()));
    json.Field("hazard_occurrences", HazardOccurrences());
    json.Field("verdict", Clean() ? "CLEAN" : "HAZARDOUS");
}

}  // namespace dgnn::analysis
