#include "analysis/hazard_checker.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dgnn::analysis {

std::string
ResourceFamily(const std::string& resource)
{
    const size_t hash = resource.find('#');
    return hash == std::string::npos ? resource : resource.substr(0, hash);
}

int
HazardChecker::TimelineOf(const sim::OpRecord& op)
{
    if (op.on_host) {
        return kHost;
    }
    return op.stream == sim::StreamId::kCompute ? kCompute : kCopy;
}

const char*
HazardChecker::TimelineName(int timeline)
{
    switch (timeline) {
      case kHost:
        return "host";
      case kCompute:
        return "compute";
      case kCopy:
        return "copy";
      default:
        return "?";
    }
}

void
HazardChecker::Join(VectorClock& into, const VectorClock& from)
{
    for (int t = 0; t < kTimelineCount; ++t) {
        into[t] = std::max(into[t], from[t]);
    }
}

bool
HazardChecker::HappensBefore(int timeline, int64_t epoch, const VectorClock& now)
{
    return now[timeline] >= epoch;
}

const HazardChecker::VectorClock*
HazardChecker::EventClock(const sim::Event& event) const
{
    const auto it = event_vc_.find(event.id);
    return it == event_vc_.end() ? nullptr : &it->second;
}

void
HazardChecker::OnOp(const sim::OpRecord& op)
{
    const int timeline = TimelineOf(op);

    VectorClock* vc = nullptr;
    if (timeline == kHost) {
        // A blocking D2H copy drains the compute stream before touching its
        // source rows: the host observes everything compute produced.
        if (op.kind == sim::OpKind::kCopyD2H && op.blocking) {
            Join(host_vc_, stream_vc_[kCompute - 1]);
        }
        vc = &host_vc_;
    } else {
        // Device submission: the op happens-after everything the host had
        // observed at issue time, plus earlier work on its in-order stream
        // (already folded into the stream clock).
        vc = &stream_vc_[timeline - 1];
        Join(*vc, host_vc_);
    }
    (*vc)[timeline] += 1;

    AccessSite site;
    site.op_index = op_index_++;
    site.op_name = op.name != nullptr ? *op.name : std::string("<unnamed>");
    site.timeline = TimelineName(timeline);
    site.time_us = op.end_us;

    if (op.access != nullptr) {
        for (const std::string& resource : op.access->reads) {
            CheckRead(resource, timeline, site, *vc);
        }
        for (const std::string& resource : op.access->writes) {
            CheckWrite(resource, timeline, site, *vc);
        }
    }
}

void
HazardChecker::CheckRead(const std::string& resource, int timeline,
                         const AccessSite& site, const VectorClock& now)
{
    ++reads_;
    ResourceState& state = resources_[resource];
    if (state.write_timeline >= 0 && state.write_timeline != timeline &&
        !HappensBefore(state.write_timeline, state.write.clock, now)) {
        RecordHazard(HazardKind::kRaw, resource, state.write.site,
                     state.write_timeline, site, timeline);
    }
    AccessInfo& slot = state.reads[timeline];
    slot.clock = now[timeline];
    slot.site = site;
}

void
HazardChecker::CheckWrite(const std::string& resource, int timeline,
                          const AccessSite& site, const VectorClock& now)
{
    ++writes_;
    ResourceState& state = resources_[resource];
    if (state.write_timeline >= 0 && state.write_timeline != timeline &&
        !HappensBefore(state.write_timeline, state.write.clock, now)) {
        RecordHazard(HazardKind::kWaw, resource, state.write.site,
                     state.write_timeline, site, timeline);
    }
    for (int t = 0; t < kTimelineCount; ++t) {
        const AccessInfo& read = state.reads[t];
        if (read.clock > 0 && t != timeline &&
            !HappensBefore(t, read.clock, now)) {
            RecordHazard(HazardKind::kWar, resource, read.site, t, site,
                         timeline);
        }
    }
    state.write_timeline = timeline;
    state.write.clock = now[timeline];
    state.write.site = site;
    // The write supersedes earlier reads: later conflicts are against it.
    for (AccessInfo& read : state.reads) {
        read = AccessInfo{};
    }
}

void
HazardChecker::RecordHazard(HazardKind kind, const std::string& resource,
                            const AccessSite& prior, int prior_timeline,
                            const AccessSite& current, int current_timeline)
{
    const std::string family = ResourceFamily(resource);
    const std::string key = std::string(ToString(kind)) + "|" + family + "|" +
                            prior.op_name + "|" + current.op_name;
    const auto it = hazard_index_.find(key);
    if (it != hazard_index_.end()) {
        ++hazards_[it->second].occurrences;
        return;
    }

    Hazard hazard;
    hazard.kind = kind;
    hazard.resource = resource;
    hazard.prior = prior;
    hazard.current = current;
    if (current_timeline == kHost) {
        hazard.missing_edge =
            std::string("host access unordered with the ") +
            TimelineName(prior_timeline) +
            " stream: insert WaitEvent(RecordEvent(" +
            TimelineName(prior_timeline) + ")) or Synchronize() first";
    } else if (prior_timeline == kHost) {
        // Streams join the host clock at submission, so this means the
        // host op was issued AFTER the device op yet conflicts with it.
        hazard.missing_edge =
            std::string("stream access unordered with later host work: "
                        "order the host op before submission or fence ") +
            TimelineName(current_timeline) + " behind it";
    } else {
        hazard.missing_edge =
            std::string("insert StreamWaitEvent(") +
            TimelineName(current_timeline) + ", RecordEvent(" +
            TimelineName(prior_timeline) + ")) between the sites";
    }
    hazard_index_.emplace(key, hazards_.size());
    hazards_.push_back(std::move(hazard));
}

void
HazardChecker::OnEventRecorded(const sim::Event& event, sim::StreamId stream)
{
    ++events_recorded_;
    // The event completes when work already enqueued on the stream has
    // finished; waiting on it also observes everything the recording host
    // thread had observed.
    VectorClock snapshot =
        stream_vc_[stream == sim::StreamId::kCompute ? 0 : 1];
    Join(snapshot, host_vc_);
    event_vc_[event.id] = snapshot;
}

void
HazardChecker::OnStreamWaitEvent(sim::StreamId stream, const sim::Event& event)
{
    ++stream_waits_;
    if (const VectorClock* clock = EventClock(event)) {
        Join(stream_vc_[stream == sim::StreamId::kCompute ? 0 : 1], *clock);
    }
}

void
HazardChecker::OnHostWaitEvent(const sim::Event& event)
{
    ++host_waits_;
    if (const VectorClock* clock = EventClock(event)) {
        Join(host_vc_, *clock);
    }
}

void
HazardChecker::OnSynchronize()
{
    ++synchronizes_;
    Join(host_vc_, stream_vc_[0]);
    Join(host_vc_, stream_vc_[1]);
}

HazardReport
HazardChecker::Report() const
{
    HazardReport report;
    report.ops = op_index_;
    report.reads = reads_;
    report.writes = writes_;
    report.resources = static_cast<int64_t>(resources_.size());
    report.events_recorded = events_recorded_;
    report.stream_waits = stream_waits_;
    report.host_waits = host_waits_;
    report.synchronizes = synchronizes_;
    report.hazards = hazards_;
    return report;
}

}  // namespace dgnn::analysis
