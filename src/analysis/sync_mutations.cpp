#include "analysis/sync_mutations.hpp"

#include <deque>
#include <random>
#include <string>

#include "sim/runtime.hpp"

namespace dgnn::analysis {

const char*
ToString(SyncEdge edge)
{
    switch (edge) {
      case SyncEdge::kNone:
        return "none";
      case SyncEdge::kInputFence:
        return "input-fence";
      case SyncEdge::kComputeFence:
        return "compute-fence";
      case SyncEdge::kThrottleWait:
        return "throttle-wait";
      case SyncEdge::kFinalDrain:
        return "final-drain";
    }
    return "?";
}

HazardReport
RunMutatedPipeline(SyncEdge drop, uint64_t seed, int64_t batches)
{
    constexpr int64_t kDepth = 2;
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int64_t> bytes_dist(1 << 18, 1 << 22);

    sim::RuntimeConfig config;
    config.mode = sim::ExecMode::kHybrid;
    sim::Runtime rt(config);
    HazardChecker checker;
    rt.SetObserver(&checker);

    auto kernel = [](int64_t bytes) {
        sim::KernelDesc k;
        k.name = "batch_kernel";
        k.flops = bytes;
        k.bytes = bytes;
        k.parallel_items = bytes / 4;
        return k;
    };

    std::deque<sim::Event> in_flight;
    for (int64_t batch = 0; batch < batches; ++batch) {
        const std::string slot = std::to_string(batch % kDepth);
        const int64_t bytes = bytes_dist(rng);

        // Throttle: the slot-reuse fence — waiting on the oldest in-flight
        // batch orders this batch's staging writes after its reads.
        while (static_cast<int64_t>(in_flight.size()) >= kDepth) {
            if (drop != SyncEdge::kThrottleWait) {
                (void)rt.WaitEvent(in_flight.front());
            }
            in_flight.pop_front();
        }
        {
            sim::AccessScope scope(rt,
                                   sim::AccessSet{{}, {"host_in#" + slot}});
            rt.RunHostFor("batch_build", 20.0);
        }
        {
            sim::AccessScope scope(
                rt, sim::AccessSet{{"host_in#" + slot}, {"dev_in#" + slot}});
            (void)rt.CopyToDeviceAsync(bytes, "inputs_h2d");
        }
        const sim::Event inputs_ready = rt.RecordEvent(sim::StreamId::kCopy);
        if (drop != SyncEdge::kInputFence) {
            rt.StreamWaitEvent(sim::StreamId::kCompute, inputs_ready);
        }
        {
            sim::AccessScope scope(
                rt, sim::AccessSet{{"dev_in#" + slot}, {"dev_out#" + slot}});
            rt.Launch(kernel(bytes));
        }
        const sim::Event compute_done = rt.RecordEvent(sim::StreamId::kCompute);
        if (drop != SyncEdge::kComputeFence) {
            rt.StreamWaitEvent(sim::StreamId::kCopy, compute_done);
        }
        {
            sim::AccessScope scope(
                rt, sim::AccessSet{{"dev_out#" + slot}, {"host_out#" + slot}});
            (void)rt.CopyToHostAsync(bytes, "results_d2h");
        }
        in_flight.push_back(rt.RecordEvent(sim::StreamId::kCopy));
    }

    // Final drain: the host must observe every batch's D2H before reading
    // the result staging buffers.
    while (!in_flight.empty()) {
        if (drop != SyncEdge::kFinalDrain) {
            (void)rt.WaitEvent(in_flight.front());
        }
        in_flight.pop_front();
    }
    {
        sim::AccessScope scope(
            rt, sim::AccessSet{{"host_out#0", "host_out#1"}, {}});
        rt.RunHostFor("consume_results", 10.0);
    }
    return checker.Report();
}

}  // namespace dgnn::analysis
