#include "analysis/sync_mutations.hpp"

#include <deque>
#include <random>
#include <string>

#include "sim/runtime.hpp"

namespace dgnn::analysis {

const char*
ToString(SyncEdge edge)
{
    switch (edge) {
      case SyncEdge::kNone:
        return "none";
      case SyncEdge::kInputFence:
        return "input-fence";
      case SyncEdge::kComputeFence:
        return "compute-fence";
      case SyncEdge::kThrottleWait:
        return "throttle-wait";
      case SyncEdge::kFinalDrain:
        return "final-drain";
      case SyncEdge::kExchangeFence:
        return "exchange-fence";
    }
    return "?";
}

HazardReport
RunMutatedPipeline(SyncEdge drop, uint64_t seed, int64_t batches)
{
    constexpr int64_t kDepth = 2;
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int64_t> bytes_dist(1 << 18, 1 << 22);

    sim::RuntimeConfig config;
    config.mode = sim::ExecMode::kHybrid;
    sim::Runtime rt(config);
    HazardChecker checker;
    rt.SetObserver(&checker);

    auto kernel = [](int64_t bytes) {
        sim::KernelDesc k;
        k.name = "batch_kernel";
        k.flops = bytes;
        k.bytes = bytes;
        k.parallel_items = bytes / 4;
        return k;
    };

    std::deque<sim::Event> in_flight;
    for (int64_t batch = 0; batch < batches; ++batch) {
        const std::string slot = std::to_string(batch % kDepth);
        const int64_t bytes = bytes_dist(rng);

        // Throttle: the slot-reuse fence — waiting on the oldest in-flight
        // batch orders this batch's staging writes after its reads.
        while (static_cast<int64_t>(in_flight.size()) >= kDepth) {
            if (drop != SyncEdge::kThrottleWait) {
                (void)rt.WaitEvent(in_flight.front());
            }
            in_flight.pop_front();
        }
        {
            sim::AccessScope scope(rt,
                                   sim::AccessSet{{}, {"host_in#" + slot}});
            rt.RunHostFor("batch_build", 20.0);
        }
        {
            sim::AccessScope scope(
                rt, sim::AccessSet{{"host_in#" + slot}, {"dev_in#" + slot}});
            (void)rt.CopyToDeviceAsync(bytes, "inputs_h2d");
        }
        const sim::Event inputs_ready = rt.RecordEvent(sim::StreamId::kCopy);
        if (drop != SyncEdge::kInputFence) {
            rt.StreamWaitEvent(sim::StreamId::kCompute, inputs_ready);
        }
        {
            sim::AccessScope scope(
                rt, sim::AccessSet{{"dev_in#" + slot}, {"dev_out#" + slot}});
            rt.Launch(kernel(bytes));
        }
        const sim::Event compute_done = rt.RecordEvent(sim::StreamId::kCompute);
        if (drop != SyncEdge::kComputeFence) {
            rt.StreamWaitEvent(sim::StreamId::kCopy, compute_done);
        }
        {
            sim::AccessScope scope(
                rt, sim::AccessSet{{"dev_out#" + slot}, {"host_out#" + slot}});
            (void)rt.CopyToHostAsync(bytes, "results_d2h");
        }
        in_flight.push_back(rt.RecordEvent(sim::StreamId::kCopy));
    }

    // Final drain: the host must observe every batch's D2H before reading
    // the result staging buffers.
    while (!in_flight.empty()) {
        if (drop != SyncEdge::kFinalDrain) {
            (void)rt.WaitEvent(in_flight.front());
        }
        in_flight.pop_front();
    }
    {
        sim::AccessScope scope(
            rt, sim::AccessSet{{"host_out#0", "host_out#1"}, {}});
        rt.RunHostFor("consume_results", 10.0);
    }
    return checker.Report();
}

HazardReport
RunMutatedExchange(SyncEdge drop, uint64_t seed, int64_t rounds)
{
    constexpr int64_t kSlots = 2;
    constexpr int64_t kRowBytes = 256;
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int64_t> rows_dist(64, 1024);

    sim::RuntimeConfig config;
    config.mode = sim::ExecMode::kHybrid;
    config.topology = sim::Topology::ScaleOut(2, sim::LinkSpec::PcieGen4());
    config.device_index = 0;
    sim::Runtime rt(config);
    HazardChecker checker;
    rt.SetObserver(&checker);

    // The back-fence: round k's peer pull must not overwrite a staging slot
    // the previous unpack still reads (the serving executors provide this
    // edge through their per-batch compute->copy fences). It is part of the
    // intact schedule, not a deletable mutation target.
    bool have_unpack_done = false;
    sim::Event unpack_done;
    for (int64_t round = 0; round < rounds; ++round) {
        const std::string slot = std::to_string(round % kSlots);
        const int64_t rows = rows_dist(rng);

        if (have_unpack_done) {
            rt.StreamWaitEvent(sim::StreamId::kCopy, unpack_done);
        }
        {
            sim::AccessScope scope(
                rt, sim::AccessSet{{"peer_store#1"}, {"exchange_in#" + slot}});
            (void)rt.PeerCopyAsync(1, rows * kRowBytes, "shard_exchange_pull");
        }
        const sim::Event exchange_ready =
            rt.RecordEvent(sim::StreamId::kCopy);
        if (drop != SyncEdge::kExchangeFence) {
            rt.StreamWaitEvent(sim::StreamId::kCompute, exchange_ready);
        }
        {
            sim::AccessScope scope(
                rt, sim::AccessSet{{"exchange_in#" + slot}, {"dev_state#0"}});
            sim::KernelDesc unpack;
            unpack.name = "exchange_unpack";
            unpack.flops = rows * kRowBytes / 4;
            unpack.bytes = 2 * rows * kRowBytes;
            unpack.parallel_items = rows;
            unpack.irregular = true;
            rt.Launch(unpack);
        }
        unpack_done = rt.RecordEvent(sim::StreamId::kCompute);
        have_unpack_done = true;
    }
    (void)rt.Synchronize();
    return checker.Report();
}

}  // namespace dgnn::analysis
