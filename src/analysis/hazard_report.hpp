#pragma once

/// @file
/// Hazard-report types for the happens-before checker (hazard_checker.hpp):
/// the hazard classification (RAW/WAR/WAW), the two access sites of each
/// conflict, the suggested missing synchronization edge, and a deterministic
/// text / JSON rendering of the whole report. The report is the artifact the
/// `hazard` CTest label and the TSan CI job gate on: a clean run renders a
/// stable summary block, a dirty run lists every deduplicated hazard with
/// enough context to place the missing edge.

#include <cstdint>
#include <string>
#include <vector>

#include "core/bench_json_writer.hpp"
#include "sim/sim_time.hpp"

namespace dgnn::analysis {

/// Classification of a conflicting, unordered access pair. Named from the
/// perspective of the SECOND (current) access: a RAW hazard is a read that
/// may run before the write it depends on has landed.
enum class HazardKind {
    kRaw,  ///< read-after-write unordered: the read may see stale data
    kWar,  ///< write-after-read unordered: the write may clobber a reader
    kWaw,  ///< write-after-write unordered: the final value is a coin toss
};

const char* ToString(HazardKind kind);

/// One side of a conflict: which operation touched the resource, where it
/// executed, and when.
struct AccessSite {
    int64_t op_index = 0;      ///< issue-order index within the run
    std::string op_name;       ///< kernel / copy / host-op label
    std::string timeline;      ///< "host" | "compute" | "copy"
    sim::SimTime time_us = 0.0;  ///< completion time of the access

    std::string ToString() const;
};

/// One detected hazard: the resource, both sites, and the synchronization
/// edge whose absence made the pair unordered. Repeats of the same shape
/// (same kind, resource family, op pair) are deduplicated into
/// `occurrences`.
struct Hazard {
    HazardKind kind = HazardKind::kRaw;
    std::string resource;
    AccessSite prior;
    AccessSite current;
    /// Human-readable suggestion, e.g. "missing StreamWaitEvent(compute,
    /// <event on copy>) between the sites".
    std::string missing_edge;
    int64_t occurrences = 1;
};

/// Everything one checked run produced. Counters describe the concurrency
/// structure the checker saw (they are part of the golden clean-run
/// reports: a sync edge silently disappearing shows up as a counter drift
/// even while the run stays hazard-free).
struct HazardReport {
    int64_t ops = 0;              ///< operations observed
    int64_t reads = 0;            ///< declared read accesses checked
    int64_t writes = 0;           ///< declared write accesses checked
    int64_t resources = 0;        ///< distinct resources touched
    int64_t events_recorded = 0;  ///< RecordEvent count
    int64_t stream_waits = 0;     ///< StreamWaitEvent count
    int64_t host_waits = 0;       ///< WaitEvent count
    int64_t synchronizes = 0;     ///< Synchronize count
    std::vector<Hazard> hazards;  ///< deduplicated, in detection order

    bool Clean() const { return hazards.empty(); }

    /// Total conflict occurrences across all deduplicated hazards.
    int64_t HazardOccurrences() const;

    /// Deterministic multi-line rendering: a summary block plus one
    /// paragraph per hazard.
    std::string ToText() const;

    /// Appends one flat record (the summary counters plus the hazard
    /// count) tagged with @p labels to @p json. Hazard details stay in the
    /// text rendering; the JSON record is the machine-readable gate.
    void AppendJsonRecord(
        core::BenchJsonWriter& json,
        const std::vector<std::pair<std::string, std::string>>& labels) const;
};

}  // namespace dgnn::analysis
