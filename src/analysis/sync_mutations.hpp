#pragma once

/// @file
/// The sync-edge mutation schedule: a synthetic double-buffered async
/// pipeline (mirroring serve::PipelinedExecutor's edge structure) in which
/// each happens-before edge can be individually deleted. Running the intact
/// schedule through the HazardChecker must come back clean; deleting any
/// edge must surface a hazard of a known kind on a known resource family.
/// The mutation wall (tests/analysis_test.cpp) and the hazard-audit bench
/// both drive this schedule — it is the checker's own regression fixture:
/// a detector that stops firing on a deleted edge fails the wall.

#include <cstdint>

#include "analysis/hazard_checker.hpp"
#include "analysis/hazard_report.hpp"

namespace dgnn::analysis {

/// Which synchronization edge of the synthetic pipeline to delete.
/// kNone runs the intact (hazard-free) schedule.
enum class SyncEdge {
    kNone,
    kInputFence,     ///< StreamWaitEvent(compute, inputs_ready)
    kComputeFence,   ///< StreamWaitEvent(copy, compute_done)
    kThrottleWait,   ///< WaitEvent on the oldest batch before slot reuse
    kFinalDrain,     ///< WaitEvent sweep before the host reads results
    kExchangeFence,  ///< StreamWaitEvent(compute, exchange_ready) — the
                     ///< alltoall fence ordering the unpack kernel after
                     ///< the peer pulls (RunMutatedExchange only)
};

const char* ToString(SyncEdge edge);

/// Runs the synthetic depth-2 pipeline — build, async H2D, kernel, async
/// D2H per batch staged through slot (batch % 2), then a host op consuming
/// every slot's results — over @p batches seeded batch sizes on a hybrid
/// runtime with a HazardChecker attached, deleting @p drop. Deterministic
/// in (drop, seed, batches).
HazardReport RunMutatedPipeline(SyncEdge drop, uint64_t seed,
                                int64_t batches = 6);

/// The scale-out analogue of RunMutatedPipeline: a 2-device topology
/// runtime where each round pulls seeded row counts from the peer over the
/// peer link into the exchange staging buffer (slot = round % 2), fences
/// the compute stream on the copy-stream exchange event, and launches the
/// unpack kernel scattering the staged rows into device state. Deleting
/// kExchangeFence lets the unpack read exchange_in#<slot> concurrently
/// with the peer pull writing it — the expected RAW on the exchange
/// buffer. Only kNone and kExchangeFence are deletable here; other edges
/// run the intact schedule. Deterministic in (drop, seed, rounds).
HazardReport RunMutatedExchange(SyncEdge drop, uint64_t seed,
                                int64_t rounds = 6);

}  // namespace dgnn::analysis
