#pragma once

/// @file
/// Happens-before hazard checker for the simulated async runtime — the
/// tentpole of src/analysis/. Attach one to a sim::Runtime
/// (runtime.SetObserver(&checker)) and it reconstructs the run's
/// happens-before order from the observer hooks with vector clocks over
/// three logical timelines (host thread, compute stream, copy stream).
/// Every operation issued inside an AccessScope declares the logical
/// resources it reads and writes (staging-buffer slots, cache-row
/// residency generations, host stores); a pair of conflicting accesses
/// with no happens-before edge between them is reported as a RAW / WAR /
/// WAW hazard, with both access sites and the synchronization edge whose
/// absence left them unordered.
///
/// The happens-before model (DESIGN.md §11) mirrors sim::Runtime exactly:
///   * host ops are totally ordered on the host timeline;
///   * a device op happens-after everything the host had observed at its
///     submission (the stream joins the host clock at issue) and after
///     all earlier work on its own in-order stream;
///   * a blocking D2H copy drains the compute stream first (the host joins
///     the compute timeline BEFORE the access);
///   * RecordEvent snapshots join(stream, host); StreamWaitEvent joins the
///     waiting stream with the event; WaitEvent joins the host with the
///     event; Synchronize joins the host with every stream.
///
/// Detection is report-and-continue: the access book-keeping is updated
/// even for hazardous accesses so one missing edge yields one deduplicated
/// report per (kind, resource family, op pair) rather than a cascade.
/// The checker is passive — attaching it never changes the simulated
/// timeline — and deterministic: identical runs produce identical reports.

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "analysis/hazard_report.hpp"
#include "sim/runtime.hpp"

namespace dgnn::analysis {

/// Vector-clock happens-before checker; one instance per checked run.
class HazardChecker final : public sim::RuntimeObserver {
  public:
    /// Index of each logical timeline in the vector clocks.
    enum Timeline : int {
        kHost = 0,
        kCompute = 1,
        kCopy = 2,
        kTimelineCount = 3,
    };

    /// Snapshot of everything observed so far (callable mid-run; the
    /// checker keeps accumulating afterwards).
    HazardReport Report() const;

    /// --- sim::RuntimeObserver -------------------------------------------
    void OnOp(const sim::OpRecord& op) override;
    void OnEventRecorded(const sim::Event& event, sim::StreamId stream) override;
    void OnStreamWaitEvent(sim::StreamId stream, const sim::Event& event) override;
    void OnHostWaitEvent(const sim::Event& event) override;
    void OnSynchronize() override;

  private:
    using VectorClock = std::array<int64_t, kTimelineCount>;

    /// The last recorded access of one kind to one resource from one
    /// timeline: the epoch (clock value on that timeline) plus the site
    /// for reporting. clock == 0 means "none".
    struct AccessInfo {
        int64_t clock = 0;
        AccessSite site;
    };

    /// Per-resource detector state: the most recent write plus, per
    /// timeline, the most recent read (a read is ordered after all earlier
    /// same-timeline reads, so one epoch per timeline suffices).
    struct ResourceState {
        int write_timeline = -1;  ///< -1: no write yet
        AccessInfo write;
        std::array<AccessInfo, kTimelineCount> reads;
    };

    static int TimelineOf(const sim::OpRecord& op);
    static const char* TimelineName(int timeline);

    /// Merges @p from into @p into (component-wise max).
    static void Join(VectorClock& into, const VectorClock& from);

    /// Whether an access at @p epoch on @p timeline happened-before the
    /// current op (whose timeline clock is @p now).
    static bool HappensBefore(int timeline, int64_t epoch,
                              const VectorClock& now);

    void CheckRead(const std::string& resource, int timeline,
                   const AccessSite& site, const VectorClock& now);
    void CheckWrite(const std::string& resource, int timeline,
                    const AccessSite& site, const VectorClock& now);
    void RecordHazard(HazardKind kind, const std::string& resource,
                      const AccessSite& prior, int prior_timeline,
                      const AccessSite& current, int current_timeline);

    /// The event's happens-before snapshot, or null when the event was
    /// recorded before this checker attached.
    const VectorClock* EventClock(const sim::Event& event) const;

    VectorClock host_vc_{};
    /// Compute / copy stream clocks (index by Timeline - 1).
    std::array<VectorClock, 2> stream_vc_{};
    /// Event id -> happens-before snapshot at its record point.
    std::map<int64_t, VectorClock> event_vc_;
    /// Resource name -> detector state. Ordered so every walk (reporting,
    /// counting) is deterministic.
    std::map<std::string, ResourceState> resources_;
    /// Dedup key "(kind|family|prior op|current op)" -> index in hazards_.
    std::map<std::string, size_t> hazard_index_;
    std::vector<Hazard> hazards_;

    int64_t op_index_ = 0;
    int64_t reads_ = 0;
    int64_t writes_ = 0;
    int64_t events_recorded_ = 0;
    int64_t stream_waits_ = 0;
    int64_t host_waits_ = 0;
    int64_t synchronizes_ = 0;
};

/// The resource family of @p resource: the name with any "#<instance>"
/// suffix removed (see sim::AccessSet).
std::string ResourceFamily(const std::string& resource);

}  // namespace dgnn::analysis
