/// Online serving walkthrough: putting a TGN recommender behind a
/// latency-SLO'd endpoint.
///
/// The offline benches answer "how long does a pass over the dataset
/// take?"; a production deployment asks a different question: requests
/// arrive one by one, must be batched on the fly, and the metric that
/// matters is the tail of the end-to-end latency distribution. This
/// example stands up the serve/ subsystem on the simulated Xeon + A6000
/// box and walks through the three levers it models:
///
///   1. the arrival process (Poisson vs replaying the dataset's own
///      bursty timestamps),
///   2. the dynamic batching policy (how long to hold requests),
///   3. the executor (eager serial vs multi-stream pipelined).

#include <iostream>

#include "core/table_writer.hpp"
#include "data/temporal_interactions.hpp"
#include "models/tgn.hpp"
#include "serve/server.hpp"

using namespace dgnn;

namespace {

std::string
Ms(sim::SimTime us)
{
    return core::TableWriter::Num(us / 1000.0, 2) + " ms";
}

void
PrintReport(const serve::ServingReport& r)
{
    std::cout << "  " << r.executor << " executor, " << r.policy << ": p50 "
              << Ms(r.latency.P50()) << ", p90 " << Ms(r.latency.P90())
              << ", p99 " << Ms(r.latency.P99()) << ", max "
              << Ms(r.latency.Max()) << "\n    " << r.batches
              << " batches (avg size "
              << core::TableWriter::Num(r.batch_size.Mean(), 1)
              << "), achieved "
              << core::TableWriter::Num(r.achieved_qps, 0) << " qps\n";
}

}  // namespace

int
main()
{
    std::cout << "== Online DGNN serving: TGN on a wikipedia-like stream ==\n\n";

    const data::InteractionDataset dataset = data::GenerateInteractions(
        data::InteractionSpec::WikipediaLike(8192));
    models::Tgn tgn(dataset, models::TgnConfig{});

    // A session captures the model's per-batch cost profile once per batch
    // size (sampling + batch build on the host, H2D, kernels, D2H) by
    // replaying the model's own batched inference entry.
    serve::ModelSession session(tgn, sim::ExecMode::kHybrid);
    const serve::BatchProfile& profile = session.Profile(32);
    std::cout << "Captured batch-32 profile: host "
              << core::TableWriter::Num(profile.host_us, 1) << " us, "
              << profile.kernels.size() << " kernels, H2D "
              << profile.h2d_bytes << " B, D2H " << profile.d2h_bytes
              << " B\n\n";

    constexpr int64_t kRequests = 2048;
    constexpr double kRate = 6000.0;  // offered load, requests/s

    std::cout << "-- 1. Poisson arrivals at 6000 qps, timeout batching "
                 "(32, 5 ms) --\n";
    const std::vector<sim::SimTime> poisson =
        serve::PoissonArrivals(kRate, kRequests, 42);
    for (const serve::ExecutorKind kind :
         {serve::ExecutorKind::kSerial, serve::ExecutorKind::kPipelined}) {
        serve::TimeoutPolicy policy(32, 5000.0);
        serve::ServerOptions options;
        options.executor = kind;
        PrintReport(serve::Serve(session, policy, poisson, options));
    }
    std::cout << "(at this moderate load both executors meet the SLO with "
                 "identical tails —\n overlap only pays once the machine "
                 "saturates; see section 3)\n";

    std::cout << "\n-- 2. Same load, but replaying the dataset's own "
                 "timestamps --\n";
    const std::vector<sim::SimTime> bursty =
        serve::TraceArrivals(dataset.stream, kRate, kRequests);
    for (const serve::ExecutorKind kind :
         {serve::ExecutorKind::kSerial, serve::ExecutorKind::kPipelined}) {
        serve::TimeoutPolicy policy(32, 5000.0);
        serve::ServerOptions options;
        options.executor = kind;
        PrintReport(serve::Serve(session, policy, bursty, options));
    }
    std::cout << "(trace replay preserves the stream's inter-arrival "
                 "structure at any target\n rate; a burstier production "
                 "trace would stretch the p99/max rows)\n";

    std::cout << "\n-- 3. How much traffic fits under a 20 ms p99 SLO? --\n";
    for (const serve::ExecutorKind kind :
         {serve::ExecutorKind::kSerial, serve::ExecutorKind::kPipelined}) {
        serve::ServerOptions options;
        options.executor = kind;
        const serve::QpsSearchResult found = serve::FindMaxQpsUnderSlo(
            session,
            [] { return std::make_unique<serve::TimeoutPolicy>(32, 5000.0); },
            options, 20000.0, 1024, 42);
        std::cout << "  " << serve::ToString(kind) << ": "
                  << core::TableWriter::Num(found.max_qps, 0)
                  << " qps sustained (p99 " << Ms(found.p99_us) << ", "
                  << found.evaluations << " probe runs)\n";
    }

    std::cout << "\nTakeaway: the host-side sampling/batch-build stage the "
                 "paper flags as\nbottleneck no. 2 serializes with GPU "
                 "compute in eager mode; overlapping\nthem with a second "
                 "stream and pinned async copies buys the extra\nsustained "
                 "throughput without touching the model.\n";
    return 0;
}
