// Molecular dynamics with MolDGNN on an ISO17-like trajectory: predict
// adjacency matrices frame by frame, and observe the paper's data-movement
// bottleneck — the adjacency shuttling between CPU and GPU dwarfs compute.

#include <iostream>

#include "core/bottleneck.hpp"
#include "data/molecular_gen.hpp"
#include "models/moldgnn.hpp"

int
main()
{
    using namespace dgnn;

    data::MolecularSpec spec = data::MolecularSpec::Iso17Like();
    spec.num_frames = 2048;
    const data::MolecularDataset dataset = data::GenerateMolecular(spec);

    // How dynamic is the molecular graph?
    int64_t bond_changes = 0;
    for (int64_t f = 1; f < dataset.NumFrames(); ++f) {
        for (int64_t i = 0; i < spec.num_atoms * spec.num_atoms; ++i) {
            bond_changes += dataset.adjacency[static_cast<size_t>(f)].At(i) !=
                            dataset.adjacency[static_cast<size_t>(f - 1)].At(i);
        }
    }
    std::cout << "ISO17-like trajectory: " << dataset.NumFrames() << " frames of "
              << spec.num_atoms << " atoms, " << bond_changes
              << " bond make/break events across the trajectory\n";

    for (const int64_t batch : {32, 512}) {
        models::MolDgnn model(dataset, models::MolDgnnConfig{});
        sim::Runtime runtime = models::MakeRuntime(sim::ExecMode::kHybrid);
        models::RunConfig run;
        run.batch_size = batch;
        run.numeric_cap = 8;
        const models::RunResult r = model.RunInference(runtime, run);

        std::cout << "\nbatch " << batch << ": total "
                  << sim::FormatDuration(r.total_us) << "\n"
                  << "  memory copy share: "
                  << r.breakdown.SharePct("Memory Copy")
                  << " % (paper: 80-90% at every batch size)\n"
                  << "  GPU utilization: " << r.compute_utilization_pct
                  << " % (paper: < 1%)\n"
                  << "  bytes moved: " << r.h2d_bytes / 1024 / 1024 << " MiB H2D, "
                  << r.d2h_bytes / 1024 / 1024 << " MiB D2H in "
                  << r.transfer_count << " transfers\n";

        const core::DataMovementReport dm = core::AnalyzeDataMovement(runtime);
        std::cout << "  data-movement bottleneck severity: "
                  << core::ToString(dm.severity) << "\n";
    }
    return 0;
}
