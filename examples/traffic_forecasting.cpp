// Traffic forecasting with ASTGNN on a PeMS-like sensor network: run the
// encoder-decoder across batch sizes, watch GPU utilization climb toward
// saturation (the Fig 9 effect), and read the utilization timeline.

#include <iomanip>
#include <iostream>

#include "core/trace_analysis.hpp"
#include "data/traffic_gen.hpp"
#include "models/astgnn.hpp"

int
main()
{
    using namespace dgnn;

    data::TrafficSpec spec = data::TrafficSpec::PemsLike();
    const data::TrafficDataset dataset = data::GenerateTraffic(spec);
    std::cout << "PeMS-like network: " << spec.num_sensors << " sensors, "
              << spec.num_timesteps << " five-minute bins, history "
              << spec.history_len << " -> horizon " << spec.horizon << "\n";

    for (const int64_t batch : {4, 16, 64}) {
        models::Astgnn model(dataset, models::AstgnnConfig{});
        sim::Runtime runtime = models::MakeRuntime(sim::ExecMode::kHybrid);
        models::RunConfig run;
        run.batch_size = batch;
        run.max_events = 128;
        const models::RunResult r = model.RunInference(runtime, run);
        std::cout << "\nbatch " << batch << ": total "
                  << sim::FormatDuration(r.total_us) << ", GPU utilization "
                  << std::fixed << std::setprecision(1)
                  << r.compute_utilization_pct << " %\n";
        std::cout << "  temporal attention "
                  << sim::FormatDuration(r.breakdown.TimeUs("Temporal Attention"))
                  << " vs spatial GCN "
                  << sim::FormatDuration(
                         r.breakdown.TimeUs("Spatial-attention GCN"))
                  << " (paper: temporal > 3x spatial)\n";

        // Coarse utilization timeline over the run (8 bins).
        const auto timeline = core::UtilizationTimeline(
            runtime.GetTrace(), runtime.Gpu().Name(), runtime.MeasureStart(),
            runtime.Now(), (runtime.Now() - runtime.MeasureStart()) / 8.0);
        std::cout << "  utilization timeline:";
        for (const auto& s : timeline) {
            std::cout << " " << std::setprecision(0) << s.utilization_pct << "%";
        }
        std::cout << "\n";
    }

    std::cout << "\nNote: larger batches saturate the GPU during encode and "
                 "delay the next iteration (Fig 9 of the paper).\n";
    return 0;
}
