// Quickstart: build a small continuous-time dynamic graph, run TGN inference
// on the simulated CPU+GPU system, and print the profile the library
// produces — per-module breakdown, utilization, transfers, and the
// four-bottleneck report. Start here.

#include <fstream>
#include <iostream>

#include "core/bottleneck.hpp"
#include "core/trace_analysis.hpp"
#include "data/temporal_interactions.hpp"
#include "models/tgn.hpp"

int
main()
{
    using namespace dgnn;

    // 1. A synthetic Wikipedia-like user/page interaction stream.
    data::InteractionSpec spec;
    spec.name = "quickstart";
    spec.num_users = 500;
    spec.num_items = 100;
    spec.num_events = 4000;
    spec.edge_feature_dim = 172;
    const data::InteractionDataset dataset = data::GenerateInteractions(spec);
    std::cout << "dataset: " << dataset.stream.NumEvents() << " events over "
              << dataset.NumNodes() << " nodes\n";

    // 2. A TGN model and a simulated CPU (Xeon 6226R) + GPU (RTX A6000).
    models::Tgn model(dataset, models::TgnConfig{});
    sim::Runtime runtime = models::MakeRuntime(sim::ExecMode::kHybrid);

    // 3. Inference with batch size 200 and 10 temporal neighbors.
    models::RunConfig run;
    run.batch_size = 200;
    run.num_neighbors = 10;
    const models::RunResult result = model.RunInference(runtime, run);

    // 4. What the profiler saw.
    std::cout << "\nmodel: " << result.model << " on " << result.mode
              << "\ninference: " << sim::FormatDuration(result.total_us) << " over "
              << result.iterations << " iterations ("
              << sim::FormatDuration(result.per_iteration_us) << " per iteration)\n"
              << "one-time GPU warm-up before that: "
              << sim::FormatDuration(result.warmup_one_time_us) << "\n"
              << "GPU utilization: " << result.compute_utilization_pct << " %\n"
              << "transfers: " << result.h2d_bytes / 1024 << " KiB H2D, "
              << result.d2h_bytes / 1024 << " KiB D2H\n";

    std::cout << "\nper-module breakdown (PyTorch-profiler style):\n";
    for (const core::BreakdownEntry& e : result.breakdown.Entries()) {
        std::cout << "  " << e.category << ": " << sim::FormatDuration(e.time_us)
                  << " (" << e.share_pct << " %)\n";
    }

    // 5. The paper's four-bottleneck analysis.
    const core::BottleneckReport report = core::AnalyzeAll(
        runtime, result.model, "quickstart", result.warmup_per_run_us,
        result.per_iteration_us);
    std::cout << "\n" << report.ToText();

    // 6. Export the Nsight-style timeline for chrome://tracing.
    std::ofstream trace_file("quickstart_trace.json");
    trace_file << core::ToChromeTraceJson(runtime.GetTrace());
    std::cout << "timeline written to quickstart_trace.json ("
              << runtime.GetTrace().Size()
              << " events; open with chrome://tracing or Perfetto)\n";
    return 0;
}
