// The paper, end to end: run all eight DGNNs on the simulated CPU+GPU
// system and print the full four-bottleneck report for each — the
// programmatic equivalent of the paper's section 4.

#include <iostream>
#include <memory>
#include <vector>

#include "core/bottleneck.hpp"
#include "data/molecular_gen.hpp"
#include "data/snapshot_seq_gen.hpp"
#include "data/social_evolution_gen.hpp"
#include "data/temporal_interactions.hpp"
#include "data/traffic_gen.hpp"
#include "models/astgnn.hpp"
#include "models/dyrep.hpp"
#include "models/evolvegcn.hpp"
#include "models/jodie.hpp"
#include "models/ldg.hpp"
#include "models/moldgnn.hpp"
#include "models/tgat.hpp"
#include "models/tgn.hpp"

namespace {

using namespace dgnn;

void
Report(models::DgnnModel& model, const models::RunConfig& run,
       const std::string& config_label)
{
    sim::Runtime runtime = models::MakeRuntime(run.mode);
    const models::RunResult r = model.RunInference(runtime, run);
    const core::BottleneckReport report = core::AnalyzeAll(
        runtime, r.model, config_label, r.warmup_per_run_us, r.per_iteration_us);
    std::cout << report.ToText() << "\n";
}

}  // namespace

int
main()
{
    using namespace dgnn;

    models::RunConfig run;
    run.batch_size = 256;
    run.num_neighbors = 20;
    run.numeric_cap = 4;
    run.max_events = 4000;

    const auto interactions =
        data::GenerateInteractions(data::InteractionSpec::WikipediaLike(8000));
    const auto snapshots = data::GenerateSnapshots(data::SnapshotSpec::SbmLike());
    const auto traffic = data::GenerateTraffic(data::TrafficSpec::PemsLike());
    auto molecular_spec = data::MolecularSpec::Iso17Like();
    molecular_spec.num_frames = 2048;
    const auto molecular = data::GenerateMolecular(molecular_spec);
    auto pp_spec = data::PointProcessSpec::SocialEvolutionLike();
    pp_spec.num_events = 1000;
    const auto point_process = data::GeneratePointProcess(pp_spec);

    std::cout << "Bottleneck analysis of all eight DGNNs on the simulated "
                 "Xeon 6226R + RTX A6000 system\n\n";

    {
        models::Jodie m(interactions, models::JodieConfig{});
        Report(m, run, "wikipedia, bs=256");
    }
    {
        models::Tgn m(interactions, models::TgnConfig{});
        Report(m, run, "wikipedia, bs=256, k=20");
    }
    {
        models::EvolveGcn m(snapshots,
                            models::EvolveGcnConfig{models::EvolveGcnVariant::kO,
                                                    64, 17});
        Report(m, run, "sbm, per-snapshot");
    }
    {
        models::EvolveGcn m(snapshots,
                            models::EvolveGcnConfig{models::EvolveGcnVariant::kH,
                                                    64, 17});
        Report(m, run, "sbm, per-snapshot");
    }
    {
        models::Tgat m(interactions, models::TgatConfig{});
        Report(m, run, "wikipedia, bs=256, k=20");
    }
    {
        models::Astgnn m(traffic, models::AstgnnConfig{});
        models::RunConfig astgnn_run = run;
        astgnn_run.batch_size = 16;
        astgnn_run.max_events = 128;
        Report(m, astgnn_run, "pems, bs=16");
    }
    {
        models::DyRep m(point_process, models::DyRepConfig{});
        Report(m, run, "social-evolution, per-event");
    }
    {
        models::Ldg m(point_process, models::LdgConfig{});
        Report(m, run, "social-evolution, per-event");
    }
    {
        models::MolDgnn m(molecular, models::MolDgnnConfig{});
        Report(m, run, "iso17, bs=256");
    }
    return 0;
}
