// Social recommendation with JODIE: model a user/item interaction stream
// (the paper's motivating social-network scenario), build t-batches, run
// inference on CPU and on the simulated GPU, and inspect how t-batching
// exposes parallelism — and why the RNN chain still caps GPU utilization.

#include <iostream>

#include "data/temporal_interactions.hpp"
#include "graph/tbatch.hpp"
#include "models/jodie.hpp"

int
main()
{
    using namespace dgnn;

    data::InteractionSpec spec = data::InteractionSpec::LastFmLike(6000);
    const data::InteractionDataset dataset = data::GenerateInteractions(spec);
    std::cout << "LastFM-like stream: " << dataset.stream.NumEvents()
              << " listens, " << spec.num_users << " users x " << spec.num_items
              << " artists\n";

    // t-batch statistics: how much parallelism does the algorithm expose?
    const auto tbatches =
        graph::BuildTBatches(dataset.stream, 0, dataset.stream.NumEvents());
    size_t largest = 0;
    for (const auto& tb : tbatches) {
        largest = std::max(largest, tb.event_indices.size());
    }
    std::cout << "t-batching: " << dataset.stream.NumEvents() << " events -> "
              << tbatches.size() << " t-batches (largest " << largest
              << " parallel interactions, mean "
              << static_cast<double>(dataset.stream.NumEvents()) /
                     static_cast<double>(tbatches.size())
              << ")\n";
    std::cout << "t-batch invariants hold: "
              << (graph::ValidateTBatches(dataset.stream, tbatches) ? "yes" : "NO")
              << "\n";

    // Inference on both systems.
    for (const auto mode : {sim::ExecMode::kCpuOnly, sim::ExecMode::kHybrid}) {
        models::Jodie model(dataset, models::JodieConfig{});
        sim::Runtime runtime = models::MakeRuntime(mode);
        models::RunConfig run;
        run.mode = mode;
        run.batch_size = 512;
        const models::RunResult r = model.RunInference(runtime, run);
        std::cout << "\n[" << r.mode << "] total "
                  << sim::FormatDuration(r.total_us);
        if (mode == sim::ExecMode::kHybrid) {
            std::cout << ", GPU utilization " << r.compute_utilization_pct
                      << " % (the RNN chain between t-batches serializes "
                         "execution)";
        }
        std::cout << "\n";
        for (const core::BreakdownEntry& e : r.breakdown.Entries()) {
            std::cout << "  " << e.category << ": "
                      << sim::FormatDuration(e.time_us) << " (" << e.share_pct
                      << " %)\n";
        }
    }

    // The embeddings after inference are the recommendation state: the
    // predicted item embedding for a user is a real, inspectable tensor.
    models::Jodie model(dataset, models::JodieConfig{});
    sim::Runtime runtime = models::MakeRuntime(sim::ExecMode::kCpuOnly);
    models::RunConfig run;
    run.mode = sim::ExecMode::kCpuOnly;
    run.batch_size = 512;
    model.RunInference(runtime, run);
    std::cout << "\nuser 0 embedding after the stream: "
              << model.UserEmbeddings().Row(0).ToString(6) << "\n";
    return 0;
}
