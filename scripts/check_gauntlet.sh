#!/usr/bin/env bash
# Runs the serving gauntlet and verifies both of its artifacts:
#   1. the text summary is byte-identical to docs/expected/
#      bench_serving_gauntlet.txt (the determinism gate), and
#   2. BENCH_serving_gauntlet.json passes compare_bench.py against the
#      committed baseline docs/expected/BENCH_serving_gauntlet.json
#      (the cross-PR perf-trajectory gate).
# Registered as the `serving_gauntlet_diff` CTest (label: gauntlet).
#
# Usage: check_gauntlet.sh <bench-binary> <workdir>
set -euo pipefail

bench=$1
workdir=$2
repo=$(cd "$(dirname "$0")/.." && pwd)

mkdir -p "$workdir"
cd "$workdir"

"$bench" > bench_serving_gauntlet.txt
diff -u "$repo/docs/expected/bench_serving_gauntlet.txt" \
    bench_serving_gauntlet.txt

if command -v python3 > /dev/null; then
    python3 -c "import json; json.load(open('BENCH_serving_gauntlet.json'))"
    "$repo/scripts/compare_bench.py" \
        "$repo/docs/expected/BENCH_serving_gauntlet.json" \
        BENCH_serving_gauntlet.json > /dev/null
else
    echo "note: python3 not found; skipped JSON validation"
fi

echo "serving gauntlet matches docs/expected/ and the JSON baseline"
