#!/usr/bin/env bash
# Verifies that the umbrella header src/dgnn.hpp lists every public header
# under src/. The umbrella smoke test proves the listed headers compile;
# this check proves no header is missing from the list. Registered as a
# CTest, and cheap enough to run by hand.
set -euo pipefail

cd "$(dirname "$0")/.."

missing=0
for header in $(find src -name '*.hpp' ! -name 'dgnn.hpp' | sort); do
    rel=${header#src/}
    # -x (whole line) keeps commented-out includes from counting; -F keeps
    # '.' in filenames from acting as a regex wildcard.
    if ! grep -qxF "#include \"$rel\"" src/dgnn.hpp; then
        echo "MISSING from src/dgnn.hpp: $rel"
        missing=1
    fi
done

if [ "$missing" -ne 0 ]; then
    echo "umbrella header is out of sync — add the headers above to src/dgnn.hpp"
    exit 1
fi
echo "src/dgnn.hpp includes all $(find src -name '*.hpp' ! -name 'dgnn.hpp' | wc -l) public headers"
