#!/usr/bin/env python3
"""Diff two BENCH_*.json perf-trajectory files with tolerances.

Usage:
    compare_bench.py OLD.json NEW.json [--tol FRAC] [--metric-tol KEY=FRAC ...]

Records are matched by their identity fields (every string-valued field:
scenario, model, executor, ...). For each matched record, numeric metrics
are compared with a *direction-aware* relative tolerance: a metric only
fails the gate when it moves in its BAD direction (latency/bytes up,
throughput/hit-rate down) by more than the tolerance. Improvements and
in-tolerance noise are reported but never fail.

Exit status: 0 = no out-of-tolerance regression, 1 = regression (or a
record present in OLD but missing from NEW), 2 = usage/schema error.

Intended workflow: download the BENCH_*.json artifact from a baseline CI
run (or regenerate it from the parent commit), then

    ./scripts/compare_bench.py baseline/BENCH_serving_gauntlet.json \
        BENCH_serving_gauntlet.json
"""

import argparse
import json
import sys

# Direction of "worse" per metric: +1 = larger is worse (latency, bytes,
# queueing), -1 = smaller is worse (throughput, hit rate). Metrics not
# listed are informational: drift is reported but never gates.
METRIC_DIRECTION = {
    "p50_ms": +1,
    "p90_ms": +1,
    "p99_ms": +1,
    "max_ms": +1,
    "overflow": +1,
    "h2d_mb": +1,
    "d2h_mb": +1,
    "achieved_qps": -1,
    "offered_qps": 0,  # identity of the load point, not an outcome
    "requests": 0,
    "batches": 0,
    "cache_hit_rate": -1,
    "cache_saved_mb": -1,
}

# Metrics compared with an ABSOLUTE tolerance floor as well: tiny baselines
# (0.01 ms, 2% hit rate) make pure relative gates hair-trigger.
ABSOLUTE_FLOOR = {
    "p50_ms": 0.05,
    "p90_ms": 0.05,
    "p99_ms": 0.05,
    "max_ms": 0.05,
    "cache_hit_rate": 0.01,
    "overflow": 1.0,
    "h2d_mb": 0.01,
    "d2h_mb": 0.01,
    "cache_saved_mb": 0.01,
}


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    for key in ("bench", "schema", "records"):
        if key not in doc:
            sys.exit(f"error: {path} is not a BENCH_*.json file "
                     f"(missing '{key}')")
    return doc


def record_key(record):
    """Identity = every string-valued field, in insertion order."""
    return tuple((k, v) for k, v in record.items() if isinstance(v, str))


def fmt_key(key):
    return " / ".join(v for _, v in key)


def main():
    parser = argparse.ArgumentParser(
        description="Compare two BENCH_*.json files with tolerances.")
    parser.add_argument("old", help="baseline trajectory file")
    parser.add_argument("new", help="candidate trajectory file")
    parser.add_argument("--tol", type=float, default=0.10,
                        help="default relative tolerance (default: 0.10)")
    parser.add_argument("--metric-tol", action="append", default=[],
                        metavar="KEY=FRAC",
                        help="per-metric tolerance override, repeatable")
    args = parser.parse_args()

    per_metric_tol = {}
    for spec in args.metric_tol:
        key, _, value = spec.partition("=")
        if not value:
            parser.error(f"--metric-tol expects KEY=FRAC, got '{spec}'")
        per_metric_tol[key] = float(value)

    old_doc = load(args.old)
    new_doc = load(args.new)
    if old_doc["bench"] != new_doc["bench"]:
        sys.exit(f"error: bench mismatch: {old_doc['bench']} vs "
                 f"{new_doc['bench']}")
    if old_doc["schema"] != new_doc["schema"]:
        print(f"warning: schema changed {old_doc['schema']} -> "
              f"{new_doc['schema']}; comparing shared metrics only")

    old_records = {record_key(r): r for r in old_doc["records"]}
    new_records = {record_key(r): r for r in new_doc["records"]}

    regressions = []
    improvements = []
    drifts = []

    missing = sorted(set(old_records) - set(new_records))
    added = sorted(set(new_records) - set(old_records))
    for key in missing:
        regressions.append(f"MISSING record: {fmt_key(key)}")
    for key in added:
        print(f"note: new record (no baseline): {fmt_key(key)}")

    for key in sorted(set(old_records) & set(new_records)):
        old_r, new_r = old_records[key], new_records[key]
        for metric, old_v in old_r.items():
            if not isinstance(old_v, (int, float)) or isinstance(old_v, bool):
                continue
            if metric not in new_r:
                regressions.append(
                    f"{fmt_key(key)}: metric '{metric}' disappeared")
                continue
            new_v = new_r[metric]
            direction = METRIC_DIRECTION.get(metric)
            tol = per_metric_tol.get(metric, args.tol)
            floor = ABSOLUTE_FLOOR.get(metric, 0.0)
            delta = new_v - old_v
            # Worse = moved in the bad direction beyond BOTH the relative
            # tolerance and the absolute floor.
            allowed = max(tol * abs(old_v), floor)
            line = (f"{fmt_key(key)}: {metric} {old_v:g} -> {new_v:g} "
                    f"({delta:+g}, allowed ±{allowed:g})")
            if direction is None:
                if abs(delta) > allowed:
                    drifts.append(line)
            elif direction == 0:
                continue
            elif direction * delta > allowed:
                regressions.append(line)
            elif direction * delta < -allowed:
                improvements.append(line)

    if improvements:
        print(f"-- {len(improvements)} improvement(s):")
        for line in improvements:
            print(f"   {line}")
    if drifts:
        print(f"-- {len(drifts)} unclassified metric drift(s) "
              "(informational):")
        for line in drifts:
            print(f"   {line}")
    if regressions:
        print(f"-- {len(regressions)} REGRESSION(s):")
        for line in regressions:
            print(f"   {line}")
        print(f"FAIL: {args.new} regressed vs {args.old}")
        return 1
    print(f"OK: {len(set(old_records) & set(new_records))} records within "
          f"tolerance ({args.old} -> {args.new})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
