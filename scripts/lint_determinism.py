#!/usr/bin/env python3
"""Determinism lint wall.

The repo's core contract is bit-identical output for fixed inputs: every
bench text summary and BENCH_*.json diffs byte-for-byte against committed
goldens, and the hazard checker's reports must be stable across runs. Two
classes of C++ constructs silently break that contract:

  1. ambient-entropy sources — wall-clock reads (``std::time``, ``clock()``,
     ``gettimeofday``, the ``<chrono>`` wall clocks) and unseeded randomness
     (``rand()``/``srand()``, ``std::random_device``). Simulated time comes
     from sim::SimTime and randomness from explicitly seeded engines; and

  2. iteration over unordered containers feeding output — hash-map walk
     order is implementation-defined and (for pointer keys) run-dependent,
     so a range-for over ``std::unordered_map``/``std::unordered_set`` that
     reaches any output path is a latent golden-file flake.

This linter rejects both. A finding is waived by the comment

    // determinism-ok: <reason>

on the flagged line or the line directly above it — the reason is
mandatory and should say why the construct is deterministic anyway (e.g.
"sorted below", "membership only"). CI runs this over src/ tests/ bench/
examples/ in both the build-test and sanitizer jobs; it is also wired as
the ``determinism_lint`` CTest.

Usage: lint_determinism.py [ROOT_DIR]
Exit status: 0 clean, 1 findings, 2 usage error.
"""

import re
import sys
from pathlib import Path

SCAN_DIRS = ("src", "tests", "bench", "examples")
EXTENSIONS = {".cpp", ".hpp", ".cc", ".hh", ".h"}

WAIVER = re.compile(r"//\s*determinism-ok\s*:\s*\S")

# Each banned construct: (regex, message). Patterns run against the code
# portion of a line (comments and string literals stripped), so prose like
# "event time (0 when empty)" never trips the wall-clock rule.
BANNED = [
    (re.compile(r"\bstd::time\s*\(|\btime\s*\(\s*(NULL|nullptr|0)\s*\)"),
     "wall-clock read (std::time); simulated time must come from sim::SimTime"),
    (re.compile(r"\bgettimeofday\s*\(|\bclock_gettime\s*\(|\bclock\s*\(\s*\)"),
     "wall-clock read; simulated time must come from sim::SimTime"),
    (re.compile(r"\b(?:std::chrono::)?(?:system_clock|steady_clock|"
                r"high_resolution_clock)\b"),
     "chrono wall clock; simulated time must come from sim::SimTime"),
    (re.compile(r"\brand\s*\(\s*\)|\bsrand\s*\("),
     "unseeded C randomness; use an explicitly seeded std engine"),
    (re.compile(r"\bstd::random_device\b|\brandom_device\b"),
     "std::random_device is nondeterministic; derive seeds from config"),
]

UNORDERED_DECL = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;]*>\s+(\w+)\s*[;{=(]")
RANGE_FOR = re.compile(r"\bfor\s*\([^;)]*:\s*(?:\w+\.)*(\w+)\s*\)")

STRING_LITERAL = re.compile(r'"(?:[^"\\]|\\.)*"')
LINE_COMMENT = re.compile(r"//.*$")


def strip_noise(line: str) -> str:
    """Removes string literals and // comments so patterns see only code.

    Block comments are handled coarsely (leading '* ' doc lines dropped);
    the repo's style keeps /* */ to Doxygen blocks where that suffices.
    """
    stripped = line.lstrip()
    if stripped.startswith(("*", "/*")):
        return ""
    line = STRING_LITERAL.sub('""', line)
    return LINE_COMMENT.sub("", line)


def waived(lines: list[str], index: int) -> bool:
    if WAIVER.search(lines[index]):
        return True
    return index > 0 and WAIVER.search(lines[index - 1]) is not None


def lint_file(path: Path) -> list[str]:
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except (OSError, UnicodeDecodeError) as err:
        return [f"{path}: unreadable ({err})"]

    findings = []
    # Pass 1: names declared as unordered containers anywhere in the file
    # (member or local; one namespace per file keeps collisions unlikely).
    unordered_names = set()
    for line in lines:
        code = strip_noise(line)
        for match in UNORDERED_DECL.finditer(code):
            unordered_names.add(match.group(1))

    # Pass 2: banned constructs and unordered iteration.
    for index, line in enumerate(lines):
        code = strip_noise(line)
        if not code:
            continue
        for pattern, message in BANNED:
            if pattern.search(code) and not waived(lines, index):
                findings.append(f"{path}:{index + 1}: {message}")
        for match in RANGE_FOR.finditer(code):
            if match.group(1) in unordered_names and not waived(lines, index):
                findings.append(
                    f"{path}:{index + 1}: range-for over unordered container "
                    f"'{match.group(1)}' — iteration order is "
                    "implementation-defined; sort first or waive with "
                    "'// determinism-ok: <reason>'")
    return findings


def main(argv: list[str]) -> int:
    if len(argv) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    root = Path(argv[1]) if len(argv) == 2 else Path(__file__).resolve().parent.parent
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2

    findings = []
    scanned = 0
    for sub in SCAN_DIRS:
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in EXTENSIONS and path.is_file():
                scanned += 1
                findings.extend(lint_file(path))

    for finding in findings:
        print(finding)
    print(f"determinism lint: {scanned} files scanned, "
          f"{len(findings)} finding(s)",
          file=sys.stderr if findings else sys.stdout)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
