#!/usr/bin/env bash
# Regenerates every paper artifact: builds the tier-1 configuration, runs
# each benchmark and example, and writes one output file per binary under
# results/. See docs/REPRODUCING.md for how to diff against docs/expected/.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
RESULTS_DIR=${RESULTS_DIR:-results}

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j

mkdir -p "$RESULTS_DIR"

for bin in "$BUILD_DIR"/bench/bench_* "$BUILD_DIR"/examples/example_*; do
    [ -x "$bin" ] || continue
    name=$(basename "$bin")
    # micro_kernels measures real wall-clock (nondeterministic, ~20 s) and
    # has no reference output; run it only on request.
    if [ "$name" = bench_micro_kernels ] && [ "${DGNN_RUN_MICRO:-0}" != 1 ]; then
        echo "== $name (skipped; set DGNN_RUN_MICRO=1 to include)"
        continue
    fi
    echo "== $name"
    "$bin" > "$RESULTS_DIR/$name.txt"
done

echo
echo "Wrote $(ls "$RESULTS_DIR" | wc -l) outputs to $RESULTS_DIR/."
echo "Compare: for f in docs/expected/*.txt; do diff -u \"\$f\" \"$RESULTS_DIR/\$(basename \"\$f\")\"; done"
