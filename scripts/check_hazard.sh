#!/usr/bin/env bash
# Runs the hazard audit and verifies both of its artifacts:
#   1. the text summary is byte-identical to docs/expected/
#      bench_hazard_audit.txt (the golden clean-run reports + mutation
#      wall), and
#   2. BENCH_hazard_audit.json parses and carries zero-hazard verdicts in
#      every clean_run record (the machine-readable gate the CI TSan job
#      uploads).
# Registered as the `hazard_audit_diff` CTest (label: hazard).
#
# Usage: check_hazard.sh <bench-binary> <workdir>
set -euo pipefail

bench=$1
workdir=$2
repo=$(cd "$(dirname "$0")/.." && pwd)

mkdir -p "$workdir"
cd "$workdir"

"$bench" > bench_hazard_audit.txt
diff -u "$repo/docs/expected/bench_hazard_audit.txt" bench_hazard_audit.txt

if command -v python3 > /dev/null; then
    python3 - <<'PY'
import json
with open("BENCH_hazard_audit.json") as f:
    doc = json.load(f)
records = doc["records"]
clean = [r for r in records if r["section"] == "clean_run"]
mutations = [r for r in records if r["section"] == "mutation"]
assert clean and mutations, "missing audit sections"
for r in clean:
    assert r["verdict"] == "CLEAN", f"hazardous serving cell: {r}"
for r in mutations:
    expect_clean = r["dropped_edge"] == "none"
    assert (r["verdict"] == "CLEAN") == expect_clean, f"mutation miss: {r}"
PY
else
    echo "note: python3 not found; skipped JSON validation"
fi

echo "hazard audit matches docs/expected/ and every verdict holds"
