#!/usr/bin/env bash
# Runs the shard-scaling sweep and verifies both of its artifacts:
#   1. the text summary is byte-identical to docs/expected/
#      bench_shard_scaling.txt (the determinism gate for the scale-out
#      serving path), and
#   2. BENCH_shard_scaling.json passes compare_bench.py against the
#      committed baseline docs/expected/BENCH_shard_scaling.json
#      (the cross-PR perf-trajectory gate).
# Registered as the `shard_scaling_diff` CTest (label: shard).
#
# Usage: check_shard.sh <bench-binary> <workdir>
set -euo pipefail

bench=$1
workdir=$2
repo=$(cd "$(dirname "$0")/.." && pwd)

mkdir -p "$workdir"
cd "$workdir"

"$bench" > bench_shard_scaling.txt
diff -u "$repo/docs/expected/bench_shard_scaling.txt" bench_shard_scaling.txt

if command -v python3 > /dev/null; then
    python3 -c "import json; json.load(open('BENCH_shard_scaling.json'))"
    "$repo/scripts/compare_bench.py" \
        "$repo/docs/expected/BENCH_shard_scaling.json" \
        BENCH_shard_scaling.json > /dev/null
else
    echo "note: python3 not found; skipped JSON validation"
fi

echo "shard scaling matches docs/expected/ and the JSON baseline"
