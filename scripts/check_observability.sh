#!/usr/bin/env bash
# Runs the serving observability bench and verifies its artifacts:
#   1. the text summary (span ledger, attribution sweep, windowed series,
#      Prometheus exposition, verdict) is byte-identical to
#      docs/expected/bench_serving_observability.txt, and
#   2. BENCH_serving_observability.json passes scripts/compare_bench.py
#      against the committed baseline docs/expected/
#      BENCH_serving_observability.json (the cross-PR trajectory gate).
# Registered as the `serving_observability_diff` CTest (label: obs).
#
# Usage: check_observability.sh <bench-binary> <workdir>
set -euo pipefail

bench=$1
workdir=$2
repo=$(cd "$(dirname "$0")/.." && pwd)

mkdir -p "$workdir"
cd "$workdir"

"$bench" > bench_serving_observability.txt
diff -u "$repo/docs/expected/bench_serving_observability.txt" \
    bench_serving_observability.txt

if command -v python3 > /dev/null; then
    python3 -c "import json; json.load(open('BENCH_serving_observability.json'))"
    "$repo/scripts/compare_bench.py" \
        "$repo/docs/expected/BENCH_serving_observability.json" \
        BENCH_serving_observability.json > /dev/null
else
    echo "note: python3 not found; skipped JSON validation"
fi

echo "serving observability matches docs/expected/ and the JSON baseline"
