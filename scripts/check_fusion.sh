#!/usr/bin/env bash
# Runs the fusion + hybrid-dispatch ablation and verifies its artifacts:
#   1. the text summary is byte-identical to docs/expected/
#      bench_fusion_dispatch.txt (the determinism gate for the fusion and
#      dispatch paths),
#   2. BENCH_fusion_dispatch.json passes compare_bench.py against the
#      committed baseline (the cross-PR perf-trajectory gate), and
#   3. the PR's two acceptance claims hold in the fresh JSON:
#        (a) at least one launch-bound cell cuts launch overhead >= 2x
#            when its registered chains are fused, and
#        (b) the hybrid dispatcher's sustained QPS >= every static
#            placement in every serving cell (predict-then-place never
#            loses to a fixed placement).
# Registered as the `fusion_dispatch_diff` CTest (label: fusion).
#
# Usage: check_fusion.sh <bench-binary> <workdir>
set -euo pipefail

bench=$1
workdir=$2
repo=$(cd "$(dirname "$0")/.." && pwd)

mkdir -p "$workdir"
cd "$workdir"

"$bench" > bench_fusion_dispatch.txt
diff -u "$repo/docs/expected/bench_fusion_dispatch.txt" bench_fusion_dispatch.txt

if command -v python3 > /dev/null; then
    python3 - << 'EOF'
import json

records = json.load(open("BENCH_fusion_dispatch.json"))["records"]

ablation = [r for r in records if r["table"] == "launch_ablation"]
assert ablation, "no launch_ablation records"
best = max(r["launch_reduction"] for r in ablation)
assert best >= 2.0, f"no launch-bound cell reaches a 2x reduction (best {best})"

sweep = [r for r in records if r["table"] == "serving_sweep"]
assert sweep, "no serving_sweep records"
cells = {}
for r in sweep:
    cells.setdefault((r["model"], r["offered"]), {})[r["mode"]] = r
for key, by_mode in cells.items():
    hybrid = by_mode["hybrid"]["achieved_qps"]
    for mode, r in by_mode.items():
        assert hybrid >= r["achieved_qps"], (
            f"hybrid ({hybrid}) loses to {mode} ({r['achieved_qps']}) in {key}")

print(f"acceptance ok: best launch reduction {best}x, "
      f"hybrid >= statics in {len(cells)} cells")
EOF
    "$repo/scripts/compare_bench.py" \
        "$repo/docs/expected/BENCH_fusion_dispatch.json" \
        BENCH_fusion_dispatch.json > /dev/null
else
    echo "note: python3 not found; skipped JSON validation"
fi

echo "fusion dispatch matches docs/expected/ and the JSON baseline"
