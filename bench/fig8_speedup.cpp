// Reproduces Fig 8: inference time comparison and GPU speedup against CPU
// for TGAT (a), TGN (b), DyRep (c), LDG (d), and ASTGNN (e), plus JODIE for
// completeness. Expected shapes: TGAT ~flat 2-3x (sampling-congested), TGN
// and ASTGNN speedup growing with batch size, DyRep/LDG < 1x at every batch
// size (tiny serialized kernels).

#include "bench_common.hpp"
#include "models/astgnn.hpp"
#include "models/dyrep.hpp"
#include "models/jodie.hpp"
#include "models/ldg.hpp"
#include "models/tgat.hpp"
#include "models/tgn.hpp"

namespace dgnn::bench {
namespace {

/// Runs @p make_model on both systems and returns {cpu_ms, gpu_ms}.
template <typename MakeModel>
std::pair<double, double>
CpuVsGpu(MakeModel make_model, const models::RunConfig& base)
{
    models::RunConfig cpu_run = base;
    cpu_run.mode = sim::ExecMode::kCpuOnly;
    auto cpu_model = make_model();
    sim::Runtime cpu_rt = models::MakeRuntime(sim::ExecMode::kCpuOnly);
    const models::RunResult cpu = cpu_model->RunInference(cpu_rt, cpu_run);

    models::RunConfig gpu_run = base;
    gpu_run.mode = sim::ExecMode::kHybrid;
    auto gpu_model = make_model();
    sim::Runtime gpu_rt = models::MakeRuntime(sim::ExecMode::kHybrid);
    const models::RunResult gpu = gpu_model->RunInference(gpu_rt, gpu_run);

    return {cpu.total_us / 1000.0, gpu.total_us / 1000.0};
}

void
PanelTgat()
{
    Banner("Fig 8(a): TGAT inference time, CPU vs GPU vs mini-batch size",
           "Fig 8(a): flat times, ~2-3x speedup for wiki & reddit");
    core::TableWriter table(
        {"dataset", "mini-batch", "CPU (ms)", "GPU (ms)", "speedup"});
    for (const auto& [name, ds] :
         {std::pair{"wikipedia", WikipediaDataset()},
          std::pair{"reddit", RedditDataset()}}) {
        for (const int64_t bs : {200, 400, 800, 2000, 4000}) {
            const auto [cpu_ms, gpu_ms] = CpuVsGpu(
                [&] {
                    return std::make_unique<models::Tgat>(ds, models::TgatConfig{});
                },
                BenchRun(sim::ExecMode::kHybrid, bs, 20, 4000));
            table.AddRow({name, std::to_string(bs), Ms(cpu_ms * 1000.0),
                          Ms(gpu_ms * 1000.0),
                          core::TableWriter::Num(cpu_ms / gpu_ms, 2) + "x"});
        }
    }
    std::cout << table.ToString();
}

void
PanelTgn()
{
    Banner("Fig 8(b): TGN inference time, CPU vs GPU vs batch size",
           "Fig 8(b): speedup grows with batch size");
    core::TableWriter table(
        {"dataset", "batch", "CPU (ms)", "GPU (ms)", "speedup"});
    for (const auto& [name, ds] :
         {std::pair{"wikipedia", WikipediaDataset()},
          std::pair{"reddit", RedditDataset()}}) {
        for (const int64_t bs : {128, 512, 2048, 8192}) {
            const auto [cpu_ms, gpu_ms] = CpuVsGpu(
                [&] {
                    return std::make_unique<models::Tgn>(ds, models::TgnConfig{});
                },
                BenchRun(sim::ExecMode::kHybrid, bs, 10, 8192));
            table.AddRow({name, std::to_string(bs), Ms(cpu_ms * 1000.0),
                          Ms(gpu_ms * 1000.0),
                          core::TableWriter::Num(cpu_ms / gpu_ms, 2) + "x"});
        }
    }
    std::cout << table.ToString();
}

void
PanelDyRepLdg()
{
    Banner("Fig 8(c,d): DyRep and LDG — GPU never beats CPU",
           "Fig 8(c,d): speedups 0.5x - 0.78x at every batch size");
    core::TableWriter table(
        {"model", "events", "CPU (ms)", "GPU (ms)", "speedup"});
    const auto social = SocialEvolutionDataset(1500);
    for (const int64_t events : {250, 500, 1000, 1500}) {
        const auto [cpu_ms, gpu_ms] = CpuVsGpu(
            [&] {
                return std::make_unique<models::DyRep>(social, models::DyRepConfig{});
            },
            BenchRun(sim::ExecMode::kHybrid, 1, 5, events));
        table.AddRow({"DyRep", std::to_string(events), Ms(cpu_ms * 1000.0),
                      Ms(gpu_ms * 1000.0),
                      core::TableWriter::Num(cpu_ms / gpu_ms, 2) + "x"});
    }
    for (const auto encoder : {models::LdgEncoder::kMlp, models::LdgEncoder::kBilinear}) {
        for (const int64_t events : {500, 1500}) {
            const auto [cpu_ms, gpu_ms] = CpuVsGpu(
                [&] {
                    models::LdgConfig config;
                    config.encoder = encoder;
                    return std::make_unique<models::Ldg>(social, config);
                },
                BenchRun(sim::ExecMode::kHybrid, 1, 5, events));
            table.AddRow({ToString(encoder), std::to_string(events),
                          Ms(cpu_ms * 1000.0), Ms(gpu_ms * 1000.0),
                          core::TableWriter::Num(cpu_ms / gpu_ms, 2) + "x"});
        }
    }
    // GitHub-archive-like stream (the paper's artifact also lists it for
    // the point-process models): same qualitative outcome.
    const auto github = GithubDataset(1000);
    {
        const auto [cpu_ms, gpu_ms] = CpuVsGpu(
            [&] {
                return std::make_unique<models::DyRep>(github, models::DyRepConfig{});
            },
            BenchRun(sim::ExecMode::kHybrid, 1, 5, 1000));
        table.AddRow({"DyRep (github)", "1000", Ms(cpu_ms * 1000.0),
                      Ms(gpu_ms * 1000.0),
                      core::TableWriter::Num(cpu_ms / gpu_ms, 2) + "x"});
    }
    {
        const auto [cpu_ms, gpu_ms] = CpuVsGpu(
            [&] { return std::make_unique<models::Ldg>(github, models::LdgConfig{}); },
            BenchRun(sim::ExecMode::kHybrid, 1, 5, 1000));
        table.AddRow({"LDG-MLP (github)", "1000", Ms(cpu_ms * 1000.0),
                      Ms(gpu_ms * 1000.0),
                      core::TableWriter::Num(cpu_ms / gpu_ms, 2) + "x"});
    }
    std::cout << table.ToString();
}

void
PanelAstgnn()
{
    Banner("Fig 8(e): ASTGNN inference time, CPU vs GPU vs batch size",
           "Fig 8(e): speedup grows with batch size");
    core::TableWriter table({"batch", "CPU (ms)", "GPU (ms)", "speedup"});
    const auto pems = PemsDataset();
    for (const int64_t bs : {4, 8, 16, 32, 64, 128}) {
        const auto [cpu_ms, gpu_ms] = CpuVsGpu(
            [&] {
                return std::make_unique<models::Astgnn>(pems, models::AstgnnConfig{});
            },
            BenchRun(sim::ExecMode::kHybrid, bs, 0, 128));
        table.AddRow({std::to_string(bs), Ms(cpu_ms * 1000.0), Ms(gpu_ms * 1000.0),
                      core::TableWriter::Num(cpu_ms / gpu_ms, 2) + "x"});
    }
    std::cout << table.ToString();
}

void
PanelJodie()
{
    Banner("Fig 8 (top annotations): JODIE CPU vs GPU across datasets",
           "Fig 8 header row: modest speedups despite t-batching");
    core::TableWriter table(
        {"dataset", "CPU (ms)", "GPU (ms)", "speedup"});
    for (const auto& [name, ds] :
         {std::pair{"wikipedia", WikipediaDataset()},
          std::pair{"reddit", RedditDataset()},
          std::pair{"lastfm", LastFmDataset()}}) {
        const auto [cpu_ms, gpu_ms] = CpuVsGpu(
            [&] {
                return std::make_unique<models::Jodie>(ds, models::JodieConfig{});
            },
            BenchRun(sim::ExecMode::kHybrid, 512, 0, 4096));
        table.AddRow({name, Ms(cpu_ms * 1000.0), Ms(gpu_ms * 1000.0),
                      core::TableWriter::Num(cpu_ms / gpu_ms, 2) + "x"});
    }
    std::cout << table.ToString();
}

}  // namespace
}  // namespace dgnn::bench

int
main()
{
    dgnn::bench::PanelTgat();
    dgnn::bench::PanelTgn();
    dgnn::bench::PanelDyRepLdg();
    dgnn::bench::PanelAstgnn();
    dgnn::bench::PanelJodie();
    return 0;
}
