// Reproduces Fig 7(d): JODIE inference breakdown on CPU and GPU across the
// Reddit / Wikipedia / LastFM interaction streams.

#include "bench_common.hpp"
#include "models/jodie.hpp"

int
main()
{
    using namespace dgnn;
    using namespace dgnn::bench;

    Banner("Fig 7(d): JODIE inference breakdown, CPU & GPU x 3 datasets",
           "Fig 7(d): load/project/predict/update shares per dataset");
    const std::vector<std::string> cats = {
        "Load Embedding", "Predict Item Embedding", "Project User Embedding",
        "Update Embedding"};
    core::TableWriter table({"mode", "dataset", "Load Embedding ms(%)",
                             "Predict Item ms(%)", "Project User ms(%)",
                             "Update Embedding ms(%)", "total (ms)"});
    for (const auto mode : {sim::ExecMode::kCpuOnly, sim::ExecMode::kHybrid}) {
        for (const auto& [name, ds] :
             {std::pair{"reddit", RedditDataset()},
              std::pair{"wikipedia", WikipediaDataset()},
              std::pair{"lastfm", LastFmDataset()}}) {
            models::Jodie model(ds, models::JodieConfig{});
            sim::Runtime rt = models::MakeRuntime(mode);
            const models::RunResult r =
                model.RunInference(rt, BenchRun(mode, 512, 0, 4096));
            std::vector<std::string> row = {sim::ToString(mode), name};
            for (const auto& cell : BreakdownCells(r.breakdown, cats)) {
                row.push_back(cell);
            }
            table.AddRow(row);
        }
    }
    std::cout << table.ToString();
    return 0;
}
