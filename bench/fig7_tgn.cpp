// Reproduces Fig 7(a): TGN inference breakdown per iteration across batch
// sizes {4 .. 64K}. Expected shape: Aggregate Messages Passing (which
// carries the batched CPU->GPU message transfer) dominates at large batch
// sizes (~79% at 64K in the paper).

#include "bench_common.hpp"
#include "models/tgn.hpp"

int
main()
{
    using namespace dgnn;
    using namespace dgnn::bench;

    Banner("Fig 7(a): TGN inference breakdown vs batch size",
           "Fig 7(a): message passing share grows to dominate at 64K");
    const auto ds = WikipediaDataset();
    const std::vector<std::string> cats = {
        "Update Memory", "Compute Embedding", "Aggregate Messages Passing"};
    core::TableWriter table({"batch", "Update Memory ms(%)",
                             "Compute Embedding ms(%)",
                             "Aggregate Messages Passing ms(%)", "total (ms)"});
    for (const int64_t bs : {4, 16, 128, 1024, 8192, 65536}) {
        models::Tgn model(ds, models::TgnConfig{});
        sim::Runtime rt = models::MakeRuntime(sim::ExecMode::kHybrid);
        const models::RunResult r =
            model.RunInference(rt, BenchRun(sim::ExecMode::kHybrid, bs, 10));
        std::vector<std::string> row = {std::to_string(bs)};
        for (const auto& cell : BreakdownCells(r.breakdown, cats)) {
            row.push_back(cell);
        }
        table.AddRow(row);
    }
    std::cout << table.ToString();
    return 0;
}
