/// The serving observability bench — online bottleneck attribution across
/// the gauntlet's adversarial regimes. The paper's Fig 6/7 decompose
/// inference offline, one phase breakdown per (model, dataset); this
/// harness produces the same taxonomy ONLINE, per dispatched batch, from
/// the span traces the obs/ layer records while the serving loop runs.
/// The serving knobs are deliberately latency-oriented (small batches,
/// tight flush timeout, moderate load) so the regimes separate instead of
/// everything drowning in queueing:
///
///   * TGN under benign arrivals is HOST-dominated — per-batch sampling
///     and batch build dwarf its KB-scale PCIe traffic (the device cache
///     keeps recurrent state resident);
///   * TGAT on the same stream is TRANSFER-dominated — its gathered
///     neighbor/edge features are MB-scale per batch and cache-blind (no
///     per-node state to cache), the paper's feature-traffic bottleneck;
///   * flash-crowd arrivals drive EVERY model queueing-dominated — the
///     burst outruns service capacity and wait time swamps all stages.
///
/// Four sections: span ledger (conservation check on one cell),
/// attribution sweep (scenario x model x executor), windowed series for
/// the flash crowd (the scalar report averages the burst away; the window
/// series shows the regime transition), and a Prometheus exposition of
/// one run's registry. Two deterministic outputs: this text summary
/// (diffed against docs/expected/bench_serving_observability.txt) and
/// BENCH_serving_observability.json (gated by scripts/compare_bench.py
/// against the committed baseline).
///
/// Set DGNN_OBS_REQUESTS to sweep a heavier stream and
/// DGNN_BENCH_JSON_PATH to redirect the JSON artifact.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/bench_json_writer.hpp"
#include "models/tgat.hpp"
#include "models/tgn.hpp"
#include "obs/observability.hpp"
#include "scenario/scenario.hpp"
#include "serve/server.hpp"
#include "support/check.hpp"

namespace dgnn {
namespace {

constexpr uint64_t kSeed = 1009;
constexpr double kBaseQps = 2500.0;
constexpr int64_t kServeBatch = 8;
constexpr sim::SimTime kBatchTimeoutUs = 200.0;
constexpr sim::SimTime kWindowUs = 25000.0;

int64_t
RequestCount()
{
    if (const char* env = std::getenv("DGNN_OBS_REQUESTS")) {
        return std::max<int64_t>(1, std::atoll(env));
    }
    return 1024;
}

std::string
JsonPath()
{
    if (const char* env = std::getenv("DGNN_BENCH_JSON_PATH")) {
        return env;
    }
    return "BENCH_serving_observability.json";
}

/// The gauntlet's stream with feature-heavy attributed edges: at dim 320
/// TGAT's per-batch neighbor-feature gather reaches PCIe-relevant volume
/// (several MB per batch), reproducing the paper's feature-dominated
/// traffic regime; TGN's costs barely move (its h2d is index/state scale).
data::InteractionSpec
ObservabilityDatasetSpec()
{
    data::InteractionSpec spec;
    spec.name = "obs";
    spec.num_users = 512;
    spec.num_items = 128;
    spec.num_events = 4096;
    spec.edge_feature_dim = 320;
    spec.popularity_alpha = 2.5;
    spec.repeat_prob = 0.9;
    spec.seed = 31;
    return spec;
}

std::string
Pct(double pct)
{
    return core::TableWriter::Num(pct, 1) + "%";
}

/// One sweep cell's attribution outcome, kept for the verdict section.
struct CellResult {
    std::string scenario;
    std::string model;
    std::string executor;
    obs::BottleneckCategory dominant = obs::BottleneckCategory::kQueueing;
    double conservation_err_us = 0.0;
};

/// Runs one (model, scenario, executor) cell with a fresh session and a
/// fresh observer; cache warmth and metrics must not leak across cells.
serve::ServingReport
RunCell(models::DgnnModel& model, const scenario::Scenario& s,
        const data::InteractionDataset& dataset, serve::ExecutorKind kind,
        int64_t n, obs::ServingObservability& observability)
{
    cache::DeviceCacheConfig cache_config;
    cache_config.capacity_bytes =
        dataset.NumNodes() / 4 * model.CacheRowBytes();
    cache_config.eviction = cache::EvictionPolicy::kLru;
    serve::ModelSession session(model, sim::ExecMode::kHybrid,
                                /*num_neighbors=*/10, cache_config);
    serve::TimeoutPolicy policy(kServeBatch, kBatchTimeoutUs);
    serve::ServerOptions options;
    options.executor = kind;
    options.observer = &observability;
    const scenario::ScenarioSource source(s, dataset);
    return serve::Serve(session, policy, source, n, options);
}

void
SpanLedgerSection(models::DgnnModel& model,
                  const std::vector<scenario::Scenario>& scenarios,
                  const data::InteractionDataset& dataset, int64_t n)
{
    bench::Banner("Span ledger: TGN, poisson/recurrent, pipelined",
                  "per-request span decomposition + conservation invariant");

    obs::ServingObservability observability;
    const serve::ServingReport report = RunCell(
        model, scenarios.front(), dataset, serve::ExecutorKind::kPipelined, n,
        observability);

    const obs::RequestTimeline& timeline = observability.Timeline();
    core::TableWriter table({"span", "mean (us)", "share"});
    double mean_total = 0.0;
    for (int k = 0; k < obs::kNumSpanKinds; ++k) {
        mean_total += timeline.MeanSpanUs(static_cast<obs::SpanKind>(k));
    }
    for (int k = 0; k < obs::kNumSpanKinds; ++k) {
        const auto kind = static_cast<obs::SpanKind>(k);
        const double mean = timeline.MeanSpanUs(kind);
        table.AddRow({obs::ToString(kind), core::TableWriter::Num(mean, 2),
                      Pct(mean_total > 0.0 ? 100.0 * mean / mean_total
                                           : 0.0)});
    }
    std::cout << table.ToString();
    std::cout << "requests traced: " << timeline.Count() << " of "
              << report.requests << ", mean spans sum "
              << core::TableWriter::Num(mean_total, 2)
              << " us = mean latency "
              << core::TableWriter::Num(report.latency.Mean(), 2)
              << " us, worst conservation residual "
              << (timeline.MaxConservationErrorUs() <= 1e-6 ? "<= 1e-6"
                                                            : "EXCEEDS 1e-6")
              << " us\n";
}

void
SweepModel(const std::string& model_name, models::DgnnModel& model,
           const std::vector<scenario::Scenario>& scenarios,
           const data::InteractionDataset& dataset, int64_t n,
           core::BenchJsonWriter& json, std::vector<CellResult>& cells)
{
    bench::Banner("Attribution sweep: " + model_name + " (hybrid)",
                  "per-batch Fig 6/7 taxonomy, online, per scenario x "
                  "executor");

    core::TableWriter table({"scenario", "executor", "batches", "queueing",
                             "host", "transfer", "compute", "dominant",
                             "batch votes", "p99 (ms)"});
    for (const scenario::Scenario& s : scenarios) {
        for (const serve::ExecutorKind kind :
             {serve::ExecutorKind::kSerial, serve::ExecutorKind::kPipelined}) {
            obs::ServingObservability observability;
            const serve::ServingReport report =
                RunCell(model, s, dataset, kind, n, observability);

            const obs::AttributionSummary summary =
                observability.Attribution().Summary();
            const obs::BottleneckCategory dominant = summary.DominantByTime();
            const double residual =
                observability.Timeline().MaxConservationErrorUs();
            cells.push_back({s.name, model_name, serve::ToString(kind),
                             dominant, residual});

            using Cat = obs::BottleneckCategory;
            table.AddRow(
                {s.name, serve::ToString(kind),
                 core::TableWriter::Num(
                     static_cast<double>(report.batches), 0),
                 Pct(summary.TimeSharePct(Cat::kQueueing)),
                 Pct(summary.TimeSharePct(Cat::kHost)),
                 Pct(summary.TimeSharePct(Cat::kTransfer)),
                 Pct(summary.TimeSharePct(Cat::kCompute)),
                 obs::ToString(dominant),
                 Pct(summary.BatchSharePct(summary.Dominant())) +
                     std::string(" ") + obs::ToString(summary.Dominant()),
                 bench::Ms(report.latency.P99())});

            json.BeginRecord();
            json.Field("section", "sweep");
            json.Field("scenario", s.name);
            json.Field("model", model_name);
            json.Field("executor", serve::ToString(kind));
            json.Field("dominant", obs::ToString(dominant));
            json.Field("requests", report.requests);
            json.Field("batches", report.batches);
            json.Field("queueing_pct", summary.TimeSharePct(Cat::kQueueing),
                       2);
            json.Field("host_pct", summary.TimeSharePct(Cat::kHost), 2);
            json.Field("transfer_pct", summary.TimeSharePct(Cat::kTransfer),
                       2);
            json.Field("compute_pct", summary.TimeSharePct(Cat::kCompute), 2);
            json.Field("p50_ms", report.latency.P50() / 1000.0, 4);
            json.Field("p99_ms", report.latency.P99() / 1000.0, 4);
            json.Field("cache_hit_rate", report.cache_stats.HitRate(), 4);
            json.Field("span_residual_us", residual, 9);
        }
    }
    std::cout << table.ToString();
}

void
WindowedSection(models::DgnnModel& model,
                const std::vector<scenario::Scenario>& scenarios,
                const data::InteractionDataset& dataset, int64_t n,
                core::BenchJsonWriter& json,
                obs::ServingObservability& observability)
{
    const auto it = std::find_if(
        scenarios.begin(), scenarios.end(), [](const scenario::Scenario& s) {
            return s.name == "flash-crowd/pref-burst";
        });
    DGNN_CHECK(it != scenarios.end(),
               "flash-crowd/pref-burst missing from the gauntlet registry");

    bench::Banner(
        "Windowed series: TGN, flash-crowd/pref-burst, pipelined",
        "fixed-interval QPS/p50/p99/hit-rate series through the burst");

    RunCell(model, *it, dataset, serve::ExecutorKind::kPipelined, n,
            observability);

    core::TableWriter table({"window", "start (ms)", "arrivals", "qps",
                             "p50 (ms)", "p99 (ms)", "hit rate", "h2d (MB)"});
    for (const obs::WindowStats& w : observability.Windows().Windows()) {
        char label[16];
        std::snprintf(label, sizeof(label), "w%02lld",
                      static_cast<long long>(w.index));
        table.AddRow({label, core::TableWriter::Num(w.start_us / 1000.0, 0),
                      core::TableWriter::Num(
                          static_cast<double>(w.arrivals), 0),
                      core::TableWriter::Num(w.Qps(kWindowUs), 0),
                      bench::Ms(w.latency.P50()), bench::Ms(w.latency.P99()),
                      Pct(100.0 * w.HitRate()), bench::Mb(w.h2d_bytes)});

        json.BeginRecord();
        json.Field("section", "window");
        json.Field("scenario", it->name);
        json.Field("model", "TGN");
        json.Field("executor", "pipelined");
        json.Field("window", label);
        json.Field("arrivals", w.arrivals);
        json.Field("completions", w.completions);
        json.Field("qps", w.Qps(kWindowUs), 1);
        json.Field("p50_ms", w.latency.P50() / 1000.0, 4);
        json.Field("p99_ms", w.latency.P99() / 1000.0, 4);
        json.Field("cache_hit_rate", w.HitRate(), 4);
        json.Field("h2d_mb",
                   static_cast<double>(w.h2d_bytes) / (1024.0 * 1024.0), 4);
    }
    std::cout << table.ToString();
}

void
PrometheusSection(const obs::ServingObservability& observability)
{
    bench::Banner("Prometheus exposition: the windowed run's registry",
                  "obs::MetricsRegistry::PrometheusText(), verbatim");
    std::cout << observability.Metrics().PrometheusText();
}

void
VerdictSection(const std::vector<CellResult>& cells)
{
    bench::Banner("Attribution verdict",
                  "do the regimes separate, and does conservation hold?");

    std::set<std::string> regimes;
    double worst_residual = 0.0;
    bool flash_queueing = true;
    bool tgat_benign_transfer = true;
    bool tgn_benign_host = true;
    for (const CellResult& cell : cells) {
        regimes.insert(obs::ToString(cell.dominant));
        worst_residual = std::max(worst_residual, cell.conservation_err_us);
        const bool flash = cell.scenario.rfind("flash-crowd/", 0) == 0;
        if (flash && cell.dominant != obs::BottleneckCategory::kQueueing) {
            flash_queueing = false;
        }
        if (!flash && cell.model == "TGAT" &&
            cell.dominant != obs::BottleneckCategory::kTransfer) {
            tgat_benign_transfer = false;
        }
        if (!flash && cell.model == "TGN" &&
            cell.dominant != obs::BottleneckCategory::kHost) {
            tgn_benign_host = false;
        }
    }

    std::string regime_list;
    for (const std::string& r : regimes) {
        regime_list += (regime_list.empty() ? "" : ", ") + r;
    }
    std::cout << "distinct dominant regimes: " << regimes.size() << " ("
              << regime_list << ")"
              << (regimes.size() >= 2 ? "" : " — TOO FEW, investigate")
              << "\n";
    std::cout << "flash-crowd cells queueing-dominated on every model: "
              << (flash_queueing ? "yes" : "NO — investigate") << "\n";
    std::cout << "TGAT (feature-heavy, cache-blind) transfer-dominated on "
                 "non-flash arrivals: "
              << (tgat_benign_transfer ? "yes" : "NO — investigate") << "\n";
    std::cout << "TGN (cached KB-scale state) host-dominated on non-flash "
                 "arrivals: "
              << (tgn_benign_host ? "yes" : "NO — investigate") << "\n";
    std::cout << "span conservation residual <= 1e-6 us on every cell: "
              << (worst_residual <= 1e-6 ? "yes" : "NO — investigate")
              << "\n";
}

}  // namespace
}  // namespace dgnn

int
main()
{
    using namespace dgnn;

    const int64_t n = RequestCount();
    std::cout << "DGNN serving observability (simulated Xeon Gold 6226R + "
                 "RTX A6000)\n"
              << "Online span tracing + bottleneck attribution; " << n
              << " requests per cell, base rate "
              << static_cast<int64_t>(kBaseQps) << " qps, timeout("
              << kServeBatch << "," << static_cast<int64_t>(kBatchTimeoutUs)
              << "us) batching, " << static_cast<int64_t>(kWindowUs) / 1000
              << "ms windows, seed " << kSeed << "\n";

    const auto dataset =
        data::GenerateInteractions(ObservabilityDatasetSpec());
    const std::vector<scenario::Scenario> scenarios =
        scenario::GauntletScenarios(kBaseQps, n, dataset.NumNodes(), kSeed);

    models::Tgn tgn(dataset, models::TgnConfig{172, 64, 2, 11});
    models::Tgat tgat(dataset, models::TgatConfig{});

    SpanLedgerSection(tgn, scenarios, dataset, n);

    core::BenchJsonWriter json("serving_observability");
    std::vector<CellResult> cells;
    SweepModel("TGN", tgn, scenarios, dataset, n, json, cells);
    SweepModel("TGAT", tgat, scenarios, dataset, n, json, cells);

    obs::ObservabilityOptions window_options;
    window_options.window_us = kWindowUs;
    obs::ServingObservability windowed(window_options);
    WindowedSection(tgn, scenarios, dataset, n, json, windowed);
    PrometheusSection(windowed);

    VerdictSection(cells);

    json.WriteFile(JsonPath());
    std::cout << "\njson: BENCH_serving_observability.json ("
              << json.RecordCount() << " records)\n";
    return 0;
}
