// Reproduces Table 1: summary of the eight profiled DGNNs — type, which
// features evolve with time, time-encoding method, and example tasks.

#include <iostream>

#include "core/model_summary.hpp"
#include "core/table_writer.hpp"

int
main()
{
    using namespace dgnn;
    std::cout << "Table 1: Summary of the DGNNs profiled in this work\n";
    core::TableWriter table({"DGNN", "type", "node feat", "edge feat",
                             "topology", "weights", "time encoding", "tasks"});
    auto mark = [](bool b) { return b ? std::string("yes") : std::string("-"); };
    for (const core::ModelSummary& m : core::AllModelSummaries()) {
        table.AddRow({m.name, core::ToString(m.type), mark(m.evolving_node_feature),
                      mark(m.evolving_edge_feature), mark(m.evolving_topology),
                      mark(m.evolving_weights), m.time_encoding, m.tasks});
    }
    std::cout << table.ToString();
    return 0;
}
