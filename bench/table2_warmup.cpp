// Reproduces Table 2: GPU warm-up overhead of TGN and MolDGNN — per-run
// warm-up (allocation) time and its proportion of the GPU working time
// across batch sizes — plus the section-4.4 one-time warm-up ratios for
// TGAT and EvolveGCN.

#include "bench_common.hpp"
#include "models/evolvegcn.hpp"
#include "models/moldgnn.hpp"
#include "models/tgat.hpp"
#include "models/tgn.hpp"

namespace dgnn::bench {
namespace {

template <typename Model, typename Dataset, typename ConfigT>
void
WarmupRow(core::TableWriter& table, const char* name, const Dataset& ds,
          ConfigT config, int64_t batch)
{
    Model model(ds, config);
    sim::Runtime rt = models::MakeRuntime(sim::ExecMode::kHybrid);
    const models::RunResult r =
        model.RunInference(rt, BenchRun(sim::ExecMode::kHybrid, batch, 10));
    const double warm = r.warmup_per_run_us;
    const double comp = r.compute_busy_us;
    const double warm_pct = 100.0 * warm / (warm + comp);
    table.AddRow({name, std::to_string(batch),
                  core::TableWriter::TimeWithShare(warm / 1000.0, warm_pct),
                  core::TableWriter::TimeWithShare(comp / 1000.0, 100.0 - warm_pct)});
}

void
TableTwo()
{
    Banner("Table 2: per-run GPU warm-up vs computation, TGN & MolDGNN",
           "Table 2: warm-up share of GPU working time grows with batch");
    core::TableWriter table(
        {"model", "batch", "warm-up ms(%)", "computation ms(%)"});
    const auto wiki = WikipediaDataset();
    const auto iso = Iso17Dataset(8192);
    for (const int64_t bs : {8, 32, 128, 512, 2048, 8192}) {
        WarmupRow<models::Tgn>(table, "TGN", wiki, models::TgnConfig{}, bs);
    }
    for (const int64_t bs : {8, 32, 128, 512, 2048, 8192}) {
        WarmupRow<models::MolDgnn>(table, "MolDGNN", iso, models::MolDgnnConfig{},
                                   bs);
    }
    std::cout << table.ToString();
}

void
OneTimeWarmupSection()
{
    Banner("Section 4.4: one-time GPU warm-up vs one iteration of inference",
           "text: warm-up ~6.6-6.9 s == 33x-86x one mini-batch / snapshot");
    core::TableWriter table({"model", "one-time warm-up", "one iteration",
                             "ratio"});

    {
        const auto ds = WikipediaDataset();
        models::Tgat model(ds, models::TgatConfig{});
        sim::Runtime rt = models::MakeRuntime(sim::ExecMode::kHybrid);
        const models::RunResult r =
            model.RunInference(rt, BenchRun(sim::ExecMode::kHybrid, 200, 20, 2000));
        table.AddRow({"TGAT", sim::FormatDuration(r.warmup_one_time_us),
                      sim::FormatDuration(r.per_iteration_us),
                      core::TableWriter::Num(
                          r.warmup_one_time_us / r.per_iteration_us, 0) +
                          "x"});
    }
    for (const auto variant :
         {models::EvolveGcnVariant::kO, models::EvolveGcnVariant::kH}) {
        const auto ds = BitcoinSnapshots();
        models::EvolveGcnConfig config;
        config.variant = variant;
        models::EvolveGcn model(ds, config);
        sim::Runtime rt = models::MakeRuntime(sim::ExecMode::kHybrid);
        const models::RunResult r =
            model.RunInference(rt, BenchRun(sim::ExecMode::kHybrid, 1));
        table.AddRow({ToString(variant), sim::FormatDuration(r.warmup_one_time_us),
                      sim::FormatDuration(r.per_iteration_us),
                      core::TableWriter::Num(
                          r.warmup_one_time_us / r.per_iteration_us, 0) +
                          "x"});
    }
    std::cout << table.ToString();
}

}  // namespace
}  // namespace dgnn::bench

int
main()
{
    dgnn::bench::TableTwo();
    dgnn::bench::OneTimeWarmupSection();
    return 0;
}
