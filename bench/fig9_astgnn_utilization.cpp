// Reproduces Fig 9: ASTGNN GPU-utilization timeline over two inference
// iterations at batch sizes 4 / 8 / 16, with encoder/decoder phase spans.
// Expected shape: larger batches push utilization toward saturation and the
// second iteration's encoder start is delayed behind the first decoder.

#include <iomanip>

#include "bench_common.hpp"
#include "core/trace_analysis.hpp"
#include "models/astgnn.hpp"

namespace dgnn::bench {
namespace {

/// Renders one ASCII utilization bar (50 columns == 100%).
std::string
Bar(double pct)
{
    const int width = static_cast<int>(pct / 2.0 + 0.5);
    std::string bar(static_cast<size_t>(std::max(0, width)), '#');
    return bar;
}

void
Timeline(int64_t batch)
{
    const auto ds = PemsDataset();
    models::Astgnn model(ds, models::AstgnnConfig{});
    sim::Runtime rt = models::MakeRuntime(sim::ExecMode::kHybrid);
    models::RunConfig run = BenchRun(sim::ExecMode::kHybrid, batch, 0, 2 * batch);
    const models::RunResult r = model.RunInference(rt, run);

    std::cout << "\n--- batch size " << batch << " (two iterations, total "
              << sim::FormatDuration(r.total_us) << ") ---\n";

    // Phase spans from the trace markers.
    const auto& trace = rt.GetTrace();
    sim::SimTime t0 = rt.MeasureStart();
    for (const sim::TraceEvent& e : trace.Events()) {
        if (e.kind == sim::EventKind::kMarker &&
            (e.name == "encoder_begin" || e.name == "decoder_begin")) {
            std::cout << "  " << e.name << " @ "
                      << sim::FormatDuration(e.start_us - t0) << "\n";
        }
    }

    const int64_t bins = 24;
    const sim::SimTime bin = (rt.Now() - t0) / static_cast<double>(bins);
    const auto timeline = core::UtilizationTimeline(
        trace, rt.Gpu().Name(), t0, rt.Now(), bin);
    std::cout << "  t(ms)   util%  |0        25        50        75      100|\n";
    for (const auto& sample : timeline) {
        std::cout << "  " << std::setw(7) << std::fixed << std::setprecision(2)
                  << (sample.t_us - t0) / 1000.0 << "  " << std::setw(5)
                  << std::setprecision(1) << sample.utilization_pct << "  |"
                  << std::left << std::setw(50) << Bar(sample.utilization_pct)
                  << std::right << "|\n";
    }
}

}  // namespace
}  // namespace dgnn::bench

int
main()
{
    dgnn::bench::Banner(
        "Fig 9: ASTGNN GPU utilization timeline, batch in {4, 8, 16}",
        "Fig 9: larger batches saturate the GPU; iteration-2 encode delayed");
    for (const int64_t batch : {4, 8, 16}) {
        dgnn::bench::Timeline(batch);
    }
    return 0;
}
