/// Online-serving latency/throughput characterization — the question the
/// offline paper reproduction cannot answer: what p99 latency and sustained
/// QPS does this hardware deliver for DGNN inference?
///
/// For each model x execution mode x batching policy x executor the harness
/// replays a deterministic Poisson request stream through serve::Serve and
/// reports the latency percentiles, queue/batch statistics, and the maximum
/// Poisson rate whose p99 stays under the SLO (serve::FindMaxQpsUnderSlo).
/// The punchline mirrors the paper's bottleneck analysis: overlapping host
/// batch-build with device compute (the pipelined executor) lifts sustained
/// QPS in hybrid mode, because the host-side sampling/batching stage — the
/// paper's bottleneck no. 2 — leaves the GPU idle in eager mode.
///
/// Smoke scale by default (deterministic, diffed against
/// docs/expected/bench_serving_latency.txt in CI); set
/// DGNN_SERVING_REQUESTS to sweep a heavier stream.

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "models/jodie.hpp"
#include "models/tgat.hpp"
#include "models/tgn.hpp"
#include "serve/server.hpp"

namespace dgnn {
namespace {

using serve::ExecutorKind;

constexpr uint64_t kArrivalSeed = 997;
constexpr sim::SimTime kSloUs = 20000.0;  // 20 ms p99 SLO

int64_t
RequestCount()
{
    if (const char* env = std::getenv("DGNN_SERVING_REQUESTS")) {
        return std::max<int64_t>(1, std::atoll(env));
    }
    return 1024;
}

struct PolicySpec {
    std::string label;
    std::function<std::unique_ptr<serve::BatchPolicy>()> make;
};

std::vector<PolicySpec>
Policies()
{
    std::vector<PolicySpec> specs;
    specs.push_back({"fixed(32)", [] {
                         return std::make_unique<serve::FixedSizePolicy>(32);
                     }});
    specs.push_back({"timeout(32,5ms)", [] {
                         return std::make_unique<serve::TimeoutPolicy>(32, 5000.0);
                     }});
    specs.push_back({"adaptive(8..64,5ms)", [] {
                         return std::make_unique<serve::AdaptivePolicy>(8, 64,
                                                                        5000.0);
                     }});
    return specs;
}

std::string
Qps(double v)
{
    return core::TableWriter::Num(v, 0);
}

void
SweepModel(const std::string& title, models::DgnnModel& model,
           double offered_qps, double& serial_hybrid_qps,
           double& pipelined_hybrid_qps)
{
    bench::Banner("Online serving: " + title,
                  "the serving regime motivated by Dynasparse / §6 outlook");

    const int64_t n = RequestCount();
    const std::vector<sim::SimTime> arrivals =
        serve::PoissonArrivals(offered_qps, n, kArrivalSeed);

    core::TableWriter table({"mode", "policy", "executor", "offered qps",
                             "achieved qps", "p50 (ms)", "p99 (ms)", "max (ms)",
                             "batch avg", "queue avg", "maxQPS@20ms"});

    for (const sim::ExecMode mode :
         {sim::ExecMode::kCpuOnly, sim::ExecMode::kHybrid}) {
        serve::ModelSession session(model, mode);
        for (const PolicySpec& spec : Policies()) {
            for (const ExecutorKind kind :
                 {ExecutorKind::kSerial, ExecutorKind::kPipelined}) {
                serve::ServerOptions options;
                options.executor = kind;

                std::unique_ptr<serve::BatchPolicy> policy = spec.make();
                const serve::ServingReport report =
                    serve::Serve(session, *policy, arrivals, options);

                const serve::QpsSearchResult search = serve::FindMaxQpsUnderSlo(
                    session, spec.make, options, kSloUs,
                    std::max<int64_t>(1, n / 2), kArrivalSeed);

                if (mode == sim::ExecMode::kHybrid &&
                    spec.label == "timeout(32,5ms)") {
                    if (kind == ExecutorKind::kSerial) {
                        serial_hybrid_qps = search.max_qps;
                    } else {
                        pipelined_hybrid_qps = search.max_qps;
                    }
                }

                table.AddRow({report.mode, spec.label,
                              std::string(serve::ToString(kind)),
                              Qps(report.offered_qps), Qps(report.achieved_qps),
                              bench::Ms(report.latency.P50()),
                              bench::Ms(report.latency.P99()),
                              bench::Ms(report.latency.Max()),
                              core::TableWriter::Num(report.batch_size.Mean(), 1),
                              core::TableWriter::Num(report.queue_depth.Mean(), 1),
                              search.max_qps > 0.0 ? Qps(search.max_qps) : "n/a"});
            }
        }
    }
    std::cout << table.ToString();
    std::cout << "(fixed-size batching reports n/a when no rate meets the SLO:\n"
                 " at low load the batch never fills, so waiting time alone\n"
                 " blows the p99 budget — the tail-latency case for dynamic\n"
                 " batching.)\n";
}

}  // namespace
}  // namespace dgnn

int
main()
{
    using namespace dgnn;

    std::cout << "DGNN online-serving latency characterization (simulated "
                 "Xeon Gold 6226R + RTX A6000)\n"
              << "Requests per sweep: " << RequestCount()
              << "; arrival process: Poisson (seed " << kArrivalSeed
              << "); SLO: p99 <= 20 ms\n";

    const auto wikipedia = bench::WikipediaDataset();
    const auto reddit = bench::RedditDataset();
    const auto lastfm = bench::LastFmDataset();

    models::Tgn tgn(wikipedia, models::TgnConfig{});
    models::Tgat tgat(reddit, models::TgatConfig{});
    models::Jodie jodie(lastfm, models::JodieConfig{});

    struct Row {
        const char* name;
        double serial_qps = 0.0;
        double pipelined_qps = 0.0;
    };
    Row rows[3] = {{"TGN"}, {"TGAT"}, {"JODIE"}};

    SweepModel("TGN / wikipedia-like", tgn, 4000.0, rows[0].serial_qps,
               rows[0].pipelined_qps);
    SweepModel("TGAT / reddit-like", tgat, 4000.0, rows[1].serial_qps,
               rows[1].pipelined_qps);
    SweepModel("JODIE / lastfm-like", jodie, 4000.0, rows[2].serial_qps,
               rows[2].pipelined_qps);

    bench::Banner("Pipelined vs serial sustained QPS (hybrid, timeout policy)",
                  "the overlap lever of arXiv:1709.05061 applied to serving");
    core::TableWriter summary(
        {"model", "serial maxQPS", "pipelined maxQPS", "speedup", "verdict"});
    for (const Row& row : rows) {
        const double speedup =
            row.serial_qps > 0.0 ? row.pipelined_qps / row.serial_qps : 0.0;
        summary.AddRow({row.name, Qps(row.serial_qps), Qps(row.pipelined_qps),
                        core::TableWriter::Num(speedup, 2) + "x",
                        row.pipelined_qps > row.serial_qps ? "pipelined wins"
                                                           : "no gain"});
    }
    std::cout << summary.ToString();
    return 0;
}
