// Reproduces Fig 6: memory usage and GPU utilization of TGAT (a: vs sampled
// neighbor count, b: vs mini-batch size), TGN (c: vs batch size), and
// MolDGNN (d: vs batch size). Expected shapes: (a) both grow with k;
// (b) utilization flat, memory grows; (c) utilization falls, memory grows;
// (d) utilization flat and tiny, memory grows.

#include "bench_common.hpp"
#include "models/moldgnn.hpp"
#include "models/tgat.hpp"
#include "models/tgn.hpp"

namespace dgnn::bench {
namespace {

void
PanelA()
{
    Banner("Fig 6(a): TGAT — GPU utilization & memory vs sampled neighbors",
           "Fig 6(a): util 0.18% -> 18.98% and memory rising, k in {10..300}");
    const auto ds = WikipediaDataset();
    core::TableWriter table(
        {"sampled neighbors", "GPU util (%)", "GPU mem (MB)", "CPU mem (MB)"});
    for (const int64_t k : {10, 30, 100, 300}) {
        models::Tgat model(ds, models::TgatConfig{});
        sim::Runtime rt = models::MakeRuntime(sim::ExecMode::kHybrid);
        const models::RunResult r =
            model.RunInference(rt, BenchRun(sim::ExecMode::kHybrid, 200, k, 2000));
        table.AddRow({std::to_string(k),
                      core::TableWriter::Num(r.compute_utilization_pct, 2),
                      Mb(r.compute_peak_bytes), Mb(r.cpu_peak_bytes)});
    }
    std::cout << table.ToString();
}

void
PanelB()
{
    Banner("Fig 6(b): TGAT — GPU utilization & memory vs mini-batch size",
           "Fig 6(b): util flat ~5-6%, memory rising, bs in {400..4000}");
    const auto ds = WikipediaDataset();
    core::TableWriter table(
        {"mini-batch", "GPU util (%)", "GPU mem (MB)", "CPU mem (MB)"});
    for (const int64_t bs : {400, 800, 2000, 4000}) {
        models::Tgat model(ds, models::TgatConfig{});
        sim::Runtime rt = models::MakeRuntime(sim::ExecMode::kHybrid);
        const models::RunResult r =
            model.RunInference(rt, BenchRun(sim::ExecMode::kHybrid, bs, 20, 8000));
        table.AddRow({std::to_string(bs),
                      core::TableWriter::Num(r.compute_utilization_pct, 2),
                      Mb(r.compute_peak_bytes), Mb(r.cpu_peak_bytes)});
    }
    std::cout << table.ToString();
}

void
PanelC()
{
    Banner("Fig 6(c): TGN — GPU utilization falls, memory rises with batch",
           "Fig 6(c): util 5.91% -> 0.28%, bs in {32..16K}");
    const auto ds = WikipediaDataset();
    core::TableWriter table(
        {"batch", "GPU util (%)", "GPU mem (MB)", "CPU mem (MB)"});
    for (const int64_t bs : {32, 256, 2048, 16384}) {
        models::Tgn model(ds, models::TgnConfig{});
        sim::Runtime rt = models::MakeRuntime(sim::ExecMode::kHybrid);
        const models::RunResult r =
            model.RunInference(rt, BenchRun(sim::ExecMode::kHybrid, bs, 10));
        table.AddRow({std::to_string(bs),
                      core::TableWriter::Num(r.compute_utilization_pct, 2),
                      Mb(r.compute_peak_bytes), Mb(r.cpu_peak_bytes)});
    }
    std::cout << table.ToString();
}

void
PanelD()
{
    Banner("Fig 6(d): MolDGNN — GPU utilization flat & tiny, memory rises",
           "Fig 6(d): util ~0.7% at every batch size, bs in {32..16K}");
    const auto ds = Iso17Dataset();
    core::TableWriter table(
        {"batch", "GPU util (%)", "GPU mem (MB)", "CPU mem (MB)"});
    for (const int64_t bs : {32, 256, 2048, 16384}) {
        models::MolDgnn model(ds, models::MolDgnnConfig{});
        sim::Runtime rt = models::MakeRuntime(sim::ExecMode::kHybrid);
        const models::RunResult r =
            model.RunInference(rt, BenchRun(sim::ExecMode::kHybrid, bs));
        table.AddRow({std::to_string(bs),
                      core::TableWriter::Num(r.compute_utilization_pct, 2),
                      Mb(r.compute_peak_bytes), Mb(r.cpu_peak_bytes)});
    }
    std::cout << table.ToString();
}

}  // namespace
}  // namespace dgnn::bench

int
main()
{
    dgnn::bench::PanelA();
    dgnn::bench::PanelB();
    dgnn::bench::PanelC();
    dgnn::bench::PanelD();
    return 0;
}
