/// The hazard audit — the golden clean-run reports of the happens-before
/// checker (src/analysis/). Two sections, both deterministic:
///
///   * Clean-run audit: every gauntlet scenario x model (TGN/TGAT/JODIE,
///     hybrid) x executor (serial/pipelined) served with an
///     analysis::HazardChecker attached. Each cell must come back CLEAN;
///     the concurrency-structure counters (ops, accesses, events, waits)
///     are part of the golden text, so a sync edge silently disappearing
///     from an executor shows up as a counter drift even while the run
///     stays hazard-free.
///   * Mutation wall: the synthetic double-buffered pipeline
///     (analysis::RunMutatedPipeline) with each sync edge deleted in turn.
///     Every mutation must be detected with its expected hazard kind — the
///     checker's own regression fixture.
///
/// The text summary diffs against docs/expected/bench_hazard_audit.txt in
/// CI (scripts/check_hazard.sh); BENCH_hazard_audit.json carries the same
/// verdicts machine-readably (the artifact the TSan CI job uploads).
///
/// Smoke scale by default; set DGNN_HAZARD_REQUESTS to audit a heavier
/// stream and DGNN_BENCH_JSON_PATH to redirect the JSON artifact.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/hazard_checker.hpp"
#include "analysis/sync_mutations.hpp"
#include "bench_common.hpp"
#include "core/bench_json_writer.hpp"
#include "models/jodie.hpp"
#include "models/tgat.hpp"
#include "models/tgn.hpp"
#include "scenario/scenario.hpp"
#include "serve/server.hpp"

namespace dgnn {
namespace {

constexpr uint64_t kSeed = 1009;
constexpr double kBaseQps = 20000.0;
constexpr int64_t kServeBatch = 64;
constexpr sim::SimTime kBatchTimeoutUs = 5000.0;

int64_t
RequestCount()
{
    if (const char* env = std::getenv("DGNN_HAZARD_REQUESTS")) {
        return std::max<int64_t>(1, std::atoll(env));
    }
    return 512;
}

std::string
JsonPath()
{
    if (const char* env = std::getenv("DGNN_BENCH_JSON_PATH")) {
        return env;
    }
    return "BENCH_hazard_audit.json";
}

data::InteractionSpec
AuditDatasetSpec()
{
    // The gauntlet bench's dataset (recurrent repeat-talker stream).
    data::InteractionSpec spec;
    spec.name = "gauntlet";
    spec.num_users = 512;
    spec.num_items = 128;
    spec.num_events = 4096;
    spec.edge_feature_dim = 64;
    spec.popularity_alpha = 2.5;
    spec.repeat_prob = 0.9;
    spec.seed = 31;
    return spec;
}

std::string
Verdict(const analysis::HazardReport& report)
{
    return report.Clean() ? "CLEAN" : "HAZARDOUS";
}

int64_t
AuditModel(const std::string& model_name, models::DgnnModel& model,
           const std::vector<scenario::Scenario>& scenarios,
           const data::InteractionDataset& dataset, int64_t n,
           core::BenchJsonWriter& json)
{
    bench::Banner("Hazard audit: " + model_name + " (hybrid)",
                  "happens-before check of every gauntlet serving cell");

    const int64_t capacity = dataset.NumNodes() / 4 * model.CacheRowBytes();

    int64_t dirty_cells = 0;
    core::TableWriter table({"scenario", "executor", "ops", "reads", "writes",
                             "resources", "events", "stream waits",
                             "host waits", "syncs", "hazards", "verdict"});
    for (const scenario::Scenario& s : scenarios) {
        const scenario::ScenarioSource source(s, dataset);
        for (const serve::ExecutorKind kind :
             {serve::ExecutorKind::kSerial, serve::ExecutorKind::kPipelined}) {
            // Fresh session per cell, like the gauntlet: cache warmth must
            // not leak across scenarios.
            cache::DeviceCacheConfig cache_config;
            cache_config.capacity_bytes = capacity;
            cache_config.eviction = cache::EvictionPolicy::kLru;
            serve::ModelSession session(model, sim::ExecMode::kHybrid,
                                        /*num_neighbors=*/10, cache_config);
            serve::TimeoutPolicy policy(kServeBatch, kBatchTimeoutUs);
            analysis::HazardChecker checker;
            serve::ServerOptions options;
            options.executor = kind;
            options.runtime_observer = &checker;

            (void)serve::Serve(session, policy, source, n, options);
            const analysis::HazardReport report = checker.Report();
            if (!report.Clean()) {
                ++dirty_cells;
            }

            const auto num = [](int64_t v) {
                return core::TableWriter::Num(static_cast<double>(v), 0);
            };
            table.AddRow({s.name, serve::ToString(kind), num(report.ops),
                          num(report.reads), num(report.writes),
                          num(report.resources), num(report.events_recorded),
                          num(report.stream_waits), num(report.host_waits),
                          num(report.synchronizes),
                          num(static_cast<int64_t>(report.hazards.size())),
                          Verdict(report)});

            report.AppendJsonRecord(json, {{"section", "clean_run"},
                                           {"scenario", s.name},
                                           {"model", model_name},
                                           {"executor", serve::ToString(kind)}});
        }
    }
    std::cout << table.ToString();
    return dirty_cells;
}

int64_t
MutationSection(core::BenchJsonWriter& json)
{
    bench::Banner("Mutation wall",
                  "each deleted sync edge must surface its hazard");

    constexpr uint64_t kMutationSeed = 101;
    const std::vector<analysis::SyncEdge> edges = {
        analysis::SyncEdge::kNone, analysis::SyncEdge::kInputFence,
        analysis::SyncEdge::kComputeFence, analysis::SyncEdge::kThrottleWait,
        analysis::SyncEdge::kFinalDrain};

    int64_t missed = 0;
    core::TableWriter table(
        {"dropped edge", "hazards", "occurrences", "detected", "first hazard"});
    for (const analysis::SyncEdge edge : edges) {
        const analysis::HazardReport report =
            analysis::RunMutatedPipeline(edge, kMutationSeed);
        const bool expect_clean = edge == analysis::SyncEdge::kNone;
        const bool detected = !report.Clean();
        if (detected == expect_clean) {
            ++missed;
        }
        std::string first = "-";
        if (!report.hazards.empty()) {
            first = std::string(analysis::ToString(report.hazards[0].kind)) +
                    " on " + report.hazards[0].resource;
        }
        table.AddRow(
            {analysis::ToString(edge),
             core::TableWriter::Num(static_cast<double>(report.hazards.size()),
                                    0),
             core::TableWriter::Num(
                 static_cast<double>(report.HazardOccurrences()), 0),
             expect_clean ? (detected ? "FALSE POSITIVE" : "clean (expected)")
                          : (detected ? "yes" : "MISSED"),
             first});

        report.AppendJsonRecord(
            json, {{"section", "mutation"},
                   {"dropped_edge", analysis::ToString(edge)}});
    }
    std::cout << table.ToString();
    return missed;
}

}  // namespace
}  // namespace dgnn

int
main()
{
    using namespace dgnn;

    const int64_t n = RequestCount();
    std::cout << "DGNN hazard audit (simulated Xeon Gold 6226R + RTX A6000)\n"
              << "Vector-clock happens-before check; " << n
              << " requests per cell, base rate "
              << static_cast<int64_t>(kBaseQps) << " qps, timeout("
              << kServeBatch << ","
              << static_cast<int64_t>(kBatchTimeoutUs) / 1000
              << "ms) batching, seed " << kSeed << "\n";

    const auto dataset = data::GenerateInteractions(AuditDatasetSpec());
    const std::vector<scenario::Scenario> scenarios =
        scenario::GauntletScenarios(kBaseQps, n, dataset.NumNodes(), kSeed);

    models::Tgn tgn(dataset, models::TgnConfig{172, 64, 2, 11});
    models::Tgat tgat(dataset, models::TgatConfig{});
    models::Jodie jodie(dataset, models::JodieConfig{});

    core::BenchJsonWriter json("hazard_audit");
    int64_t dirty_cells = 0;
    dirty_cells += AuditModel("TGN", tgn, scenarios, dataset, n, json);
    dirty_cells += AuditModel("TGAT", tgat, scenarios, dataset, n, json);
    dirty_cells += AuditModel("JODIE", jodie, scenarios, dataset, n, json);

    const int64_t mutation_misses = MutationSection(json);

    std::cout << "\nverdict: "
              << (dirty_cells == 0 && mutation_misses == 0
                      ? "all serving cells hazard-free; every mutation "
                        "detected"
                      : "HAZARD GATE FAILED — investigate")
              << "\n";

    json.WriteFile(JsonPath());
    std::cout << "json: BENCH_hazard_audit.json (" << json.RecordCount()
              << " records)\n";
    return dirty_cells == 0 && mutation_misses == 0 ? 0 : 1;
}
