/// Device-cache ablation — the transfer-bottleneck lever the paper's Fig
/// 6/7 breakdowns motivate: CPU->GPU movement of node features and node
/// memory dominates hybrid DGNN inference, and it is exactly the traffic a
/// device-resident cache with temporal locality can absorb.
///
/// Two exhibits:
///   1. Offline capacity x recurrence sweep (TGN / TGAT / JODIE, hybrid):
///      the same stream replayed with the cache off and at 1/8, 1/2 and
///      full state capacity, on a heavy repeat-talker stream vs a diffuse
///      one. Reports hit rate, PCIe volumes, transfer time and verifies the
///      cache never changes numerics (identical checksums).
///   2. Online serving with a warm cache (TGN, trace-replay arrivals with
///      recurrent nodes): the session cache stays warm ACROSS batches, a
///      locality regime the offline benches cannot express. A warm cache
///      must show strictly lower H2D bytes and lower p99 than the uncached
///      baseline; LRU and FIFO eviction are compared.
///
/// Deterministic; diffed against docs/expected/bench_cache_ablation.txt in
/// CI like the serving bench.

#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "models/jodie.hpp"
#include "models/tgat.hpp"
#include "models/tgn.hpp"
#include "serve/server.hpp"

namespace dgnn {
namespace {

constexpr int64_t kEvents = 4096;
constexpr int64_t kBatch = 256;
constexpr int64_t kNeighbors = 10;

data::InteractionSpec
RecurrentSpec()
{
    data::InteractionSpec spec;
    spec.name = "recurrent";  // heavy repeat-talkers (Wikipedia/Reddit-like)
    spec.num_users = 512;
    spec.num_items = 128;
    spec.num_events = kEvents;
    spec.edge_feature_dim = 64;
    spec.popularity_alpha = 2.5;
    spec.repeat_prob = 0.9;
    spec.seed = 31;
    return spec;
}

data::InteractionSpec
DiffuseSpec()
{
    data::InteractionSpec spec;
    spec.name = "diffuse";  // wide key space, weak repetition
    spec.num_users = 4096;
    spec.num_items = 2048;
    spec.num_events = kEvents;
    spec.edge_feature_dim = 64;
    spec.popularity_alpha = 1.05;
    spec.repeat_prob = 0.05;
    spec.seed = 32;
    return spec;
}

std::string
Pct(double fraction)
{
    return core::TableWriter::Num(100.0 * fraction, 1) + "%";
}

void
OfflineSweep(const std::string& title,
             const std::function<std::unique_ptr<models::DgnnModel>()>& make_model,
             const data::InteractionDataset& dataset)
{
    bench::Banner("Capacity sweep: " + title,
                  "the Fig 6/7 transfer categories vs device-cache capacity");

    const int64_t rows_full = dataset.NumNodes();
    struct Point {
        const char* label;
        int64_t rows;
    };
    const Point points[] = {{"off", 0},
                            {"1/8 state", rows_full / 8},
                            {"1/2 state", rows_full / 2},
                            {"full state", rows_full}};

    core::TableWriter table({"cache", "hit rate", "h2d (MB)", "d2h (MB)",
                             "saved (MB)", "evict", "writeback",
                             "transfer (ms)", "per-iter (ms)", "numerics"});
    double baseline_checksum = 0.0;
    for (const Point& p : points) {
        // TGN/JODIE carry state across RunInference calls, so every point
        // gets a freshly constructed model — capacity is the only variable.
        const std::unique_ptr<models::DgnnModel> model = make_model();
        sim::Runtime runtime = models::MakeRuntime(sim::ExecMode::kHybrid);
        models::RunConfig run =
            bench::BenchRun(sim::ExecMode::kHybrid, kBatch, kNeighbors);
        run.cache.capacity_bytes = p.rows * model->CacheRowBytes();
        run.cache.eviction = cache::EvictionPolicy::kLru;
        const models::RunResult r = model->RunInference(runtime, run);
        if (p.rows == 0) {
            baseline_checksum = r.output_checksum;
        }
        table.AddRow({p.label, Pct(r.cache_stats.HitRate()),
                      bench::Mb(r.h2d_bytes), bench::Mb(r.d2h_bytes),
                      bench::Mb(r.cache_hit_bytes),
                      core::TableWriter::Num(
                          static_cast<double>(r.cache_stats.evictions), 0),
                      core::TableWriter::Num(
                          static_cast<double>(r.cache_stats.writeback_rows), 0),
                      bench::Ms(r.transfer_time_us),
                      bench::Ms(r.per_iteration_us),
                      r.output_checksum == baseline_checksum
                          ? "preserved"
                          : "CHANGED (bug!)"});
    }
    std::cout << table.ToString();
}

void
ServingSection()
{
    bench::Banner(
        "Online serving with a warm device cache: TGN / recurrent trace",
        "cross-batch locality — GPU-resident state per arXiv:1709.05061");

    const auto dataset = data::GenerateInteractions(RecurrentSpec());
    // Paper-faithful memory width (TGN uses 172-d memory on Wikipedia):
    // wide rows make the state movement the dominant H2D component.
    models::Tgn tgn(dataset, models::TgnConfig{172, 64, 2, 11});

    // Saturating burst: arrivals outpace the service rate, every batch is
    // full, and the backlog drains at the server's service rate — so
    // per-batch transfer savings accumulate directly into the tail. (At
    // light load the p99 is all batching wait, which no cache can touch.)
    constexpr double kQps = 500000.0;
    constexpr int64_t kRequests = 1024;
    constexpr int64_t kServeBatch = 128;
    const std::vector<serve::Request> requests =
        serve::TraceRequests(dataset.stream, kQps, kRequests);

    // Half the node-memory state fits on the device.
    const int64_t capacity =
        dataset.NumNodes() / 2 * tgn.CacheRowBytes();

    struct Variant {
        const char* label;
        int64_t capacity_bytes;
        cache::EvictionPolicy eviction;
    };
    const Variant variants[] = {
        {"uncached", 0, cache::EvictionPolicy::kLru},
        {"cache 1/2 LRU", capacity, cache::EvictionPolicy::kLru},
        {"cache 1/2 FIFO", capacity, cache::EvictionPolicy::kFifo},
    };

    core::TableWriter table({"session", "p50 (ms)", "p99 (ms)", "overflow",
                             "h2d (MB)", "d2h (MB)", "hit rate", "saved (MB)",
                             "achieved qps"});
    double uncached_p99 = 0.0;
    int64_t uncached_h2d = 0;
    double cached_p99 = 0.0;
    int64_t cached_h2d = 0;
    for (const Variant& v : variants) {
        cache::DeviceCacheConfig cache_config;
        cache_config.capacity_bytes = v.capacity_bytes;
        cache_config.eviction = v.eviction;
        serve::ModelSession session(tgn, sim::ExecMode::kHybrid, kNeighbors,
                                    cache_config);
        serve::FixedSizePolicy policy(kServeBatch);
        // Serial (eager-mode) executor: the PCIe transfer sits on the
        // request's critical path, so the bytes the cache absorbs convert
        // directly into tail latency. (The pipelined executor hides
        // transfer latency behind compute instead; there the cache buys
        // headroom at saturation rather than p99 at this load.)
        serve::ServerOptions options;
        options.executor = serve::ExecutorKind::kSerial;
        const serve::ServingReport report =
            serve::ServeRequests(session, policy, requests, options);
        if (std::string(v.label) == "uncached") {
            uncached_p99 = report.latency.P99();
            uncached_h2d = report.h2d_bytes;
        } else if (std::string(v.label) == "cache 1/2 LRU") {
            cached_p99 = report.latency.P99();
            cached_h2d = report.h2d_bytes;
        }
        table.AddRow({v.label, bench::Ms(report.latency.P50()),
                      bench::Ms(report.latency.P99()),
                      core::TableWriter::Num(
                          static_cast<double>(report.latency.OverflowCount()), 0),
                      bench::Mb(report.h2d_bytes), bench::Mb(report.d2h_bytes),
                      Pct(report.cache_stats.HitRate()),
                      bench::Mb(report.cache_hit_bytes),
                      core::TableWriter::Num(report.achieved_qps, 0)});
    }
    std::cout << table.ToString();
    std::cout << "verdict: "
              << (cached_p99 < uncached_p99 && cached_h2d < uncached_h2d
                      ? "warm cache wins (lower H2D bytes AND lower p99)"
                      : "NO WIN — investigate")
              << "\n";
}

}  // namespace
}  // namespace dgnn

int
main()
{
    using namespace dgnn;

    std::cout << "DGNN device-cache ablation (simulated Xeon Gold 6226R + "
                 "RTX A6000)\n"
              << "Capacity x recurrence sweep, hybrid mode; "
              << kEvents << " events, batch " << kBatch << ", k = "
              << kNeighbors << "\n";

    const auto recurrent = data::GenerateInteractions(RecurrentSpec());
    const auto diffuse = data::GenerateInteractions(DiffuseSpec());

    OfflineSweep("TGN / recurrent stream",
                 [&] {
                     return std::make_unique<models::Tgn>(recurrent,
                                                          models::TgnConfig{});
                 },
                 recurrent);
    OfflineSweep("TGN / diffuse stream",
                 [&] {
                     return std::make_unique<models::Tgn>(diffuse,
                                                          models::TgnConfig{});
                 },
                 diffuse);
    OfflineSweep("TGAT / recurrent stream",
                 [&] {
                     return std::make_unique<models::Tgat>(recurrent,
                                                           models::TgatConfig{});
                 },
                 recurrent);
    OfflineSweep("TGAT / diffuse stream",
                 [&] {
                     return std::make_unique<models::Tgat>(diffuse,
                                                           models::TgatConfig{});
                 },
                 diffuse);
    OfflineSweep("JODIE / recurrent stream",
                 [&] {
                     return std::make_unique<models::Jodie>(recurrent,
                                                            models::JodieConfig{});
                 },
                 recurrent);
    OfflineSweep("JODIE / diffuse stream",
                 [&] {
                     return std::make_unique<models::Jodie>(diffuse,
                                                            models::JodieConfig{});
                 },
                 diffuse);

    ServingSection();
    return 0;
}
