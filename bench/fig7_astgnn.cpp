// Reproduces Fig 7(c): ASTGNN inference breakdown across batch sizes
// {4 .. 128}. Expected shape: temporal attention > 3x the spatial GCN;
// synchronization/data-loading share grows at large batch sizes.

#include "bench_common.hpp"
#include "models/astgnn.hpp"

int
main()
{
    using namespace dgnn;
    using namespace dgnn::bench;

    Banner("Fig 7(c): ASTGNN inference breakdown vs batch size",
           "Fig 7(c): temporal attention dominates spatial GCN > 3x");
    const auto ds = PemsDataset();
    const std::vector<std::string> cats = {
        "Etc(data loading, cuda sync)", "Memory Copy", "Position Encoding",
        "Spatial-attention GCN", "Temporal Attention"};
    core::TableWriter table({"batch", "Etc ms(%)", "Memory Copy ms(%)",
                             "Position Encoding ms(%)", "Spatial GCN ms(%)",
                             "Temporal Attention ms(%)", "total (ms)"});
    for (const int64_t bs : {4, 8, 16, 32, 64, 128}) {
        models::Astgnn model(ds, models::AstgnnConfig{});
        sim::Runtime rt = models::MakeRuntime(sim::ExecMode::kHybrid);
        const models::RunResult r =
            model.RunInference(rt, BenchRun(sim::ExecMode::kHybrid, bs, 0, 256));
        std::vector<std::string> row = {std::to_string(bs)};
        for (const auto& cell : BreakdownCells(r.breakdown, cats)) {
            row.push_back(cell);
        }
        table.AddRow(row);
    }
    std::cout << table.ToString();
    return 0;
}
