/// The serving gauntlet — adversarial scenario sweep with a machine-
/// readable perf trajectory. The paper's Fig 6/7 bottleneck breakdowns
/// were measured on benign, stationary workloads; production serving is
/// not stationary (diurnal cycles, flash crowds, bursty on/off sources)
/// and not cache-friendly (hot sets drift, celebrities appear, communities
/// churn). This harness sweeps every registry scenario
/// (scenario::GauntletScenarios) x model (TGN/TGAT/JODIE, hybrid mode) x
/// executor (serial/pipelined) through the serving loop with a warm
/// device cache and reports tail latency, sustained throughput, PCIe
/// volumes, and cache hit rate per cell.
///
/// Two outputs, both deterministic:
///   * this text summary, diffed against
///     docs/expected/bench_serving_gauntlet.txt in CI, and
///   * BENCH_serving_gauntlet.json (core::BenchJsonWriter) — the repo's
///     perf-trajectory record; scripts/compare_bench.py diffs two of them
///     with tolerances to gate perf regressions across PRs.
///
/// Smoke scale by default; set DGNN_GAUNTLET_REQUESTS to sweep a heavier
/// stream and DGNN_BENCH_JSON_PATH to redirect the JSON artifact.

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "bench_common.hpp"
#include "core/bench_json_writer.hpp"
#include "models/jodie.hpp"
#include "models/tgat.hpp"
#include "models/tgn.hpp"
#include "scenario/scenario.hpp"
#include "serve/server.hpp"

namespace dgnn {
namespace {

constexpr uint64_t kSeed = 1009;
constexpr double kBaseQps = 20000.0;
constexpr int64_t kServeBatch = 64;
constexpr sim::SimTime kBatchTimeoutUs = 5000.0;

int64_t
RequestCount()
{
    if (const char* env = std::getenv("DGNN_GAUNTLET_REQUESTS")) {
        return std::max<int64_t>(1, std::atoll(env));
    }
    return 1024;
}

std::string
JsonPath()
{
    if (const char* env = std::getenv("DGNN_BENCH_JSON_PATH")) {
        return env;
    }
    return "BENCH_serving_gauntlet.json";
}

data::InteractionSpec
GauntletDatasetSpec()
{
    data::InteractionSpec spec;
    spec.name = "gauntlet";  // recurrent repeat-talker stream (the baseline)
    spec.num_users = 512;
    spec.num_items = 128;
    spec.num_events = 4096;
    spec.edge_feature_dim = 64;
    spec.popularity_alpha = 2.5;
    spec.repeat_prob = 0.9;
    spec.seed = 31;
    return spec;
}

std::string
Pct(double fraction)
{
    return core::TableWriter::Num(100.0 * fraction, 1) + "%";
}

void
CatalogSection(const std::vector<scenario::Scenario>& scenarios,
               const data::InteractionDataset& dataset, int64_t n)
{
    bench::Banner("Scenario catalog",
                  "burstiness and locality of each adversarial regime");
    core::TableWriter table({"scenario", "arrivals", "access", "cv(gap)",
                             "peak/mean", "unique nodes", "reuse"});
    for (const scenario::Scenario& s : scenarios) {
        const std::vector<serve::Request> requests =
            scenario::GenerateRequests(s, dataset, n);
        std::vector<sim::SimTime> times;
        times.reserve(requests.size());
        for (const serve::Request& r : requests) {
            times.push_back(r.arrival_us);
        }
        // Rate windows at 1/16 of the span resolve within-run bursts
        // regardless of how much a scenario compresses the timeline.
        const double span =
            times.size() > 1 ? times.back() - times.front() : 0.0;
        const scenario::ArrivalStats arrival = scenario::CharacterizeArrivals(
            times, std::max(1.0, span / 16.0));
        const scenario::AccessStats access =
            scenario::CharacterizeAccesses(requests);
        table.AddRow({s.name, scenario::ToString(s.arrival),
                      scenario::ToString(s.access),
                      core::TableWriter::Num(arrival.cv_gap, 2),
                      core::TableWriter::Num(arrival.peak_to_mean, 2),
                      core::TableWriter::Num(
                          static_cast<double>(access.unique_nodes), 0),
                      Pct(access.reuse_fraction)});
    }
    std::cout << table.ToString();
}

struct CellKey {
    std::string scenario;
    std::string model;
    std::string executor;

    bool operator<(const CellKey& other) const
    {
        return std::tie(scenario, model, executor) <
               std::tie(other.scenario, other.model, other.executor);
    }
};

void
SweepModel(const std::string& model_name, models::DgnnModel& model,
           const std::vector<scenario::Scenario>& scenarios,
           const data::InteractionDataset& dataset, int64_t n,
           core::BenchJsonWriter& json,
           std::map<CellKey, double>& hit_rates)
{
    bench::Banner("Gauntlet: " + model_name + " (hybrid)",
                  "scenario x executor sweep with a warm device cache");

    // A quarter of the node state fits on the device: large enough that the
    // recurrent baseline gets real hits, small enough that the adversarial
    // access regimes cause eviction churn.
    const int64_t capacity =
        dataset.NumNodes() / 4 * model.CacheRowBytes();

    core::TableWriter table({"scenario", "executor", "offered qps",
                             "sustained qps", "p50 (ms)", "p99 (ms)",
                             "overflow", "h2d (MB)", "d2h (MB)", "hit rate",
                             "saved (MB)"});
    for (const scenario::Scenario& s : scenarios) {
        const scenario::ScenarioSource source(s, dataset);
        for (const serve::ExecutorKind kind :
             {serve::ExecutorKind::kSerial, serve::ExecutorKind::kPipelined}) {
            // A fresh session per cell: cache warmth must not leak across
            // scenarios, or the per-scenario hit rates would depend on
            // sweep order.
            cache::DeviceCacheConfig cache_config;
            cache_config.capacity_bytes = capacity;
            cache_config.eviction = cache::EvictionPolicy::kLru;
            serve::ModelSession session(model, sim::ExecMode::kHybrid,
                                        /*num_neighbors=*/10, cache_config);
            serve::TimeoutPolicy policy(kServeBatch, kBatchTimeoutUs);
            serve::ServerOptions options;
            options.executor = kind;

            const serve::ServingReport report =
                serve::Serve(session, policy, source, n, options);

            const double hit_rate = report.cache_stats.HitRate();
            hit_rates[CellKey{s.name, model_name,
                              serve::ToString(kind)}] = hit_rate;

            table.AddRow({s.name, serve::ToString(kind),
                          core::TableWriter::Num(report.offered_qps, 0),
                          core::TableWriter::Num(report.achieved_qps, 0),
                          bench::Ms(report.latency.P50()),
                          bench::Ms(report.latency.P99()),
                          core::TableWriter::Num(
                              static_cast<double>(report.latency.OverflowCount()),
                              0),
                          bench::Mb(report.h2d_bytes),
                          bench::Mb(report.d2h_bytes), Pct(hit_rate),
                          bench::Mb(report.cache_hit_bytes)});

            json.BeginRecord();
            json.Field("scenario", s.name);
            json.Field("model", model_name);
            json.Field("executor", serve::ToString(kind));
            json.Field("requests", report.requests);
            json.Field("batches", report.batches);
            json.Field("offered_qps", report.offered_qps, 1);
            json.Field("achieved_qps", report.achieved_qps, 1);
            json.Field("p50_ms", report.latency.P50() / 1000.0, 4);
            json.Field("p99_ms", report.latency.P99() / 1000.0, 4);
            json.Field("max_ms", report.latency.Max() / 1000.0, 4);
            json.Field("overflow", report.latency.OverflowCount());
            json.Field("h2d_mb",
                       static_cast<double>(report.h2d_bytes) / (1024.0 * 1024.0),
                       4);
            json.Field("d2h_mb",
                       static_cast<double>(report.d2h_bytes) / (1024.0 * 1024.0),
                       4);
            json.Field("cache_hit_rate", hit_rate, 4);
            json.Field("cache_saved_mb",
                       static_cast<double>(report.cache_hit_bytes) /
                           (1024.0 * 1024.0),
                       4);
        }
    }
    std::cout << table.ToString();
}

void
VerdictSection(const std::map<CellKey, double>& hit_rates)
{
    bench::Banner("Cache-adversarial verdict",
                  "do the adversarial access regimes defeat the PR 3 cache?");

    // The recurrent baseline vs the adversarial access regimes, per model
    // (serial executor; the cache sees the same stream under both).
    const char* kBaseline = "poisson/recurrent";
    const std::vector<std::string> adversarial = {
        "poisson/hotset-drift", "flash-crowd/pref-burst",
        "mmpp/community-churn"};
    // TGAT serves uncached (no per-node state cache), so its hit rates are
    // all zero — the verdict covers the cacheable models.
    const std::vector<std::string> cached_models = {"TGN", "JODIE"};

    core::TableWriter table(
        {"model", "baseline hit rate", "worst adversarial", "scenario",
         "verdict"});
    bool all_defeated = true;
    for (const std::string& model : cached_models) {
        const double baseline =
            hit_rates.at(CellKey{kBaseline, model, "serial"});
        double worst = 1.0;
        std::string worst_name;
        for (const std::string& name : adversarial) {
            const double rate = hit_rates.at(CellKey{name, model, "serial"});
            if (rate < worst) {
                worst = rate;
                worst_name = name;
            }
        }
        const bool defeated = worst < baseline;
        all_defeated = all_defeated && defeated;
        table.AddRow({model, Pct(baseline), Pct(worst), worst_name,
                      defeated ? "adversary wins (hit rate down)"
                               : "NO EFFECT — investigate"});
    }
    std::cout << table.ToString();
    std::cout << "verdict: "
              << (all_defeated
                      ? "cache-adversarial scenarios lower the hit rate on "
                        "every cacheable model"
                      : "ADVERSARIAL SCENARIOS INEFFECTIVE — investigate")
              << "\n";
}

}  // namespace
}  // namespace dgnn

int
main()
{
    using namespace dgnn;

    const int64_t n = RequestCount();
    std::cout << "DGNN serving gauntlet (simulated Xeon Gold 6226R + RTX "
                 "A6000)\n"
              << "Scenario x model x executor sweep; " << n
              << " requests per cell, base rate "
              << static_cast<int64_t>(kBaseQps) << " qps, timeout("
              << kServeBatch << ","
              << static_cast<int64_t>(kBatchTimeoutUs) / 1000
              << "ms) batching, seed " << kSeed << "\n";

    const auto dataset = data::GenerateInteractions(GauntletDatasetSpec());
    const std::vector<scenario::Scenario> scenarios =
        scenario::GauntletScenarios(kBaseQps, n, dataset.NumNodes(), kSeed);

    CatalogSection(scenarios, dataset, n);

    models::Tgn tgn(dataset, models::TgnConfig{172, 64, 2, 11});
    models::Tgat tgat(dataset, models::TgatConfig{});
    models::Jodie jodie(dataset, models::JodieConfig{});

    core::BenchJsonWriter json("serving_gauntlet");
    std::map<CellKey, double> hit_rates;
    SweepModel("TGN", tgn, scenarios, dataset, n, json, hit_rates);
    SweepModel("TGAT", tgat, scenarios, dataset, n, json, hit_rates);
    SweepModel("JODIE", jodie, scenarios, dataset, n, json, hit_rates);

    VerdictSection(hit_rates);

    json.WriteFile(JsonPath());
    std::cout << "json: BENCH_serving_gauntlet.json (" << json.RecordCount()
              << " records)\n";
    return 0;
}
