// Reproduces Fig 7(i,j): EvolveGCN (-H and -O) inference breakdown on CPU
// and GPU for the Reddit-Hyperlink-like and Bitcoin-Alpha-like snapshot
// sequences. Expected shape: GNN + RNN dominate; memory copy share is much
// larger on the bigger Reddit snapshots (the paper's data-movement point);
// the -H variant adds a visible top-k share.

#include "bench_common.hpp"
#include "models/evolvegcn.hpp"

int
main()
{
    using namespace dgnn;
    using namespace dgnn::bench;

    Banner("Fig 7(i,j): EvolveGCN breakdown, -O/-H x CPU/GPU x Reddit/Bitcoin",
           "Fig 7(i,j): memory-copy share larger on Reddit; top-k only in -H");
    const std::vector<std::string> cats = {"GNN", "RNN", "Memory Copy", "top-k"};
    core::TableWriter table({"dataset", "variant", "mode", "GNN ms(%)",
                             "RNN ms(%)", "Memory Copy ms(%)", "top-k ms(%)",
                             "total (ms)"});
    for (const auto& [name, ds] :
         {std::pair{"reddit", RedditSnapshots()},
          std::pair{"bitcoin", BitcoinSnapshots()}}) {
        for (const auto variant :
             {models::EvolveGcnVariant::kH, models::EvolveGcnVariant::kO}) {
            for (const auto mode :
                 {sim::ExecMode::kHybrid, sim::ExecMode::kCpuOnly}) {
                models::EvolveGcnConfig config;
                config.variant = variant;
                models::EvolveGcn model(ds, config);
                sim::Runtime rt = models::MakeRuntime(mode);
                const models::RunResult r =
                    model.RunInference(rt, BenchRun(mode, 1));
                std::vector<std::string> row = {name, ToString(variant),
                                                sim::ToString(mode)};
                for (const auto& cell : BreakdownCells(r.breakdown, cats)) {
                    row.push_back(cell);
                }
                table.AddRow(row);
            }
        }
    }
    std::cout << table.ToString();
    return 0;
}
