#pragma once

/// @file
/// Shared plumbing for the table/figure reproduction harnesses: paper-scale
/// dataset factories, run helpers, and printing conventions. Every bench
/// prints the same rows/series the paper's corresponding exhibit reports.

#include <cstdio>
#include <iostream>
#include <string>

#include "core/table_writer.hpp"
#include "data/molecular_gen.hpp"
#include "data/snapshot_seq_gen.hpp"
#include "data/social_evolution_gen.hpp"
#include "data/temporal_interactions.hpp"
#include "data/traffic_gen.hpp"
#include "models/dgnn_model.hpp"

namespace dgnn::bench {

/// Events per interaction stream at bench scale (keeps sweeps fast while
/// large enough that per-batch effects dominate noise).
constexpr int64_t kStreamEvents = 16384;

/// Numeric cap for bench sweeps (cost accounting always covers the full
/// batch; see models/dgnn_model.hpp header).
constexpr int64_t kBenchNumericCap = 4;

inline data::InteractionDataset
WikipediaDataset()
{
    return data::GenerateInteractions(data::InteractionSpec::WikipediaLike(kStreamEvents));
}

inline data::InteractionDataset
RedditDataset()
{
    return data::GenerateInteractions(data::InteractionSpec::RedditLike(kStreamEvents));
}

inline data::InteractionDataset
LastFmDataset()
{
    return data::GenerateInteractions(data::InteractionSpec::LastFmLike(kStreamEvents));
}

inline data::SnapshotDataset
RedditSnapshots()
{
    return data::GenerateSnapshots(data::SnapshotSpec::RedditHyperlinkLike());
}

inline data::SnapshotDataset
BitcoinSnapshots()
{
    return data::GenerateSnapshots(data::SnapshotSpec::BitcoinAlphaLike());
}

inline data::TrafficDataset
PemsDataset()
{
    return data::GenerateTraffic(data::TrafficSpec::PemsLike());
}

inline data::MolecularDataset
Iso17Dataset(int64_t frames = 16384)
{
    data::MolecularSpec spec = data::MolecularSpec::Iso17Like();
    spec.num_frames = frames;
    return data::GenerateMolecular(spec);
}

inline data::PointProcessDataset
SocialEvolutionDataset(int64_t events = 2000)
{
    data::PointProcessSpec spec = data::PointProcessSpec::SocialEvolutionLike();
    spec.num_events = events;
    return data::GeneratePointProcess(spec);
}

inline data::PointProcessDataset
GithubDataset(int64_t events = 2000)
{
    data::PointProcessSpec spec = data::PointProcessSpec::GithubLike();
    spec.num_events = events;
    return data::GeneratePointProcess(spec);
}

/// Standard bench run configuration.
inline models::RunConfig
BenchRun(sim::ExecMode mode, int64_t batch_size, int64_t neighbors = 20,
         int64_t max_events = 0)
{
    models::RunConfig run;
    run.mode = mode;
    run.batch_size = batch_size;
    run.num_neighbors = neighbors;
    run.max_events = max_events;
    run.numeric_cap = kBenchNumericCap;
    return run;
}

/// Prints a section banner matching across benches.
inline void
Banner(const std::string& title, const std::string& paper_ref)
{
    std::cout << "\n================================================================\n"
              << title << "\n(reproduces " << paper_ref << ")\n"
              << "================================================================\n";
}

/// ms with 2 decimals.
inline std::string
Ms(sim::SimTime us)
{
    return core::TableWriter::Num(us / 1000.0, 2);
}

/// Megabytes with 1 decimal.
inline std::string
Mb(int64_t bytes)
{
    return core::TableWriter::Num(static_cast<double>(bytes) / 1024.0 / 1024.0, 1);
}

}  // namespace dgnn::bench

namespace dgnn::bench {

/// Formats one breakdown row: per-category "ms (pct%)" cells followed by the
/// total, matching the annotation style of the paper's Fig 7.
inline std::vector<std::string>
BreakdownCells(const core::Breakdown& breakdown,
               const std::vector<std::string>& categories)
{
    std::vector<std::string> cells;
    for (const std::string& cat : categories) {
        cells.push_back(core::TableWriter::TimeWithShare(
            breakdown.TimeUs(cat) / 1000.0, breakdown.SharePct(cat)));
    }
    cells.push_back(core::TableWriter::Num(breakdown.TotalUs() / 1000.0, 2));
    return cells;
}

}  // namespace dgnn::bench
