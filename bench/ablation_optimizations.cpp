// Ablation study of the optimizations the paper *proposes* in section 5
// (and leaves as future work): we implement them and measure what they buy
// on the simulated system.
//
//   1. EvolveGCN pipelining (5.2.1 / Fig 10): overlap RNN/GNN across steps.
//   2. Delta snapshot transfer (5.2.2): send only changed edges per step.
//   3. TGAT sampling/compute overlap (5.1.1): hide GPU drain behind the
//      next batch's CPU sampling.
//   4. JODIE t-batching (3.3): vs fully sequential per-event processing.
//
// Every optimized variant is checked to produce the identical numeric
// checksum as its baseline — the optimizations are schedule-only.

#include "bench_common.hpp"
#include "models/evolvegcn.hpp"
#include "models/jodie.hpp"
#include "models/tgat.hpp"

namespace dgnn::bench {
namespace {

struct AblationRow {
    std::string name;
    models::RunResult baseline;
    models::RunResult optimized;
};

void
Print(core::TableWriter& table, const AblationRow& row)
{
    const double speedup = row.baseline.total_us / row.optimized.total_us;
    table.AddRow({row.name, Ms(row.baseline.total_us), Ms(row.optimized.total_us),
                  core::TableWriter::Num(speedup, 2) + "x",
                  row.baseline.output_checksum == row.optimized.output_checksum
                      ? "identical"
                      : "DIFFERENT"});
}

}  // namespace
}  // namespace dgnn::bench

int
main()
{
    using namespace dgnn;
    using namespace dgnn::bench;

    Banner("Ablations: the paper's section-5 optimizations, implemented",
           "section 5: pipelining, delta transfer, sampling overlap, t-batch");
    core::TableWriter table(
        {"optimization", "baseline (ms)", "optimized (ms)", "speedup", "numerics"});

    // 1 + 2: EvolveGCN pipelining and delta transfer (and both).
    {
        const auto ds = RedditSnapshots();
        auto run_variant = [&](bool pipelined, bool delta) {
            models::EvolveGcnConfig config;
            config.pipelined = pipelined;
            config.delta_transfer = delta;
            models::EvolveGcn model(ds, config);
            sim::Runtime rt = models::MakeRuntime(sim::ExecMode::kHybrid);
            return model.RunInference(rt, BenchRun(sim::ExecMode::kHybrid, 1));
        };
        const models::RunResult base = run_variant(false, false);
        Print(table, {"EvolveGCN pipelining (Fig 10)", base, run_variant(true, false)});
        Print(table, {"EvolveGCN delta transfer (5.2.2)", base,
                      run_variant(false, true)});
        Print(table, {"EvolveGCN both", base, run_variant(true, true)});
    }

    // 3: TGAT sampling/compute overlap.
    {
        const auto ds = WikipediaDataset();
        auto run_variant = [&](bool overlap) {
            models::TgatConfig config;
            config.overlap_sampling = overlap;
            models::Tgat model(ds, config);
            sim::Runtime rt = models::MakeRuntime(sim::ExecMode::kHybrid);
            return model.RunInference(rt,
                                      BenchRun(sim::ExecMode::kHybrid, 200, 100, 4000));
        };
        Print(table, {"TGAT sampling overlap (5.1.1)", run_variant(false),
                      run_variant(true)});
    }

    // 4: JODIE with vs without t-batching. Full numerics so the checksum
    // comparison is meaningful (a numeric cap would evaluate different
    // event subsets under the two schedules).
    {
        const auto ds = WikipediaDataset();
        auto run_variant = [&](bool tbatch) {
            models::JodieConfig config;
            config.use_tbatch = tbatch;
            models::Jodie model(ds, config);
            sim::Runtime rt = models::MakeRuntime(sim::ExecMode::kHybrid);
            models::RunConfig run = BenchRun(sim::ExecMode::kHybrid, 512, 0, 4096);
            run.numeric_cap = 0;
            return model.RunInference(rt, run);
        };
        Print(table,
              {"JODIE t-batching (3.3)", run_variant(false), run_variant(true)});
    }

    std::cout << table.ToString();
    std::cout << "\nNote: 'baseline' for the t-batch row is per-event sequential\n"
                 "processing; the optimized column is the t-batched algorithm\n"
                 "the JODIE paper reports a 9.2x training speedup for.\n";
    return 0;
}
