// Reproduces Fig 7(e-h): TGAT inference breakdown per iteration vs sampled
// neighborhood size {10 .. 300}, on GPU and CPU, for the Wikipedia-like and
// Reddit-like streams. Expected shape: CPU-side neighborhood sampling takes
// the dominant share everywhere and grows in absolute terms with the
// neighborhood size; memory copy grows with neighborhood size on GPU.

#include "bench_common.hpp"
#include "models/tgat.hpp"

namespace dgnn::bench {
namespace {

void
Panel(const char* panel, const char* dataset_name,
      const data::InteractionDataset& ds, sim::ExecMode mode)
{
    Banner(std::string("Fig 7(") + panel + "): TGAT breakdown - " +
               sim::ToString(mode) + " - " + dataset_name,
           "Fig 7(e-h): sampling dominates at every neighborhood size");
    const std::vector<std::string> cats = {
        "Sampling (CPU)", "Memory Copy", "Attention Layer", "Time Encoding",
        "Cuda Synchronization"};
    core::TableWriter table({"neighbors", "Sampling (CPU) ms(%)",
                             "Memory Copy ms(%)", "Attention Layer ms(%)",
                             "Time Encoding ms(%)", "Cuda Sync ms(%)",
                             "total/iter (ms)"});
    for (const int64_t k : {10, 30, 50, 100, 200, 300}) {
        models::Tgat model(ds, models::TgatConfig{});
        sim::Runtime rt = models::MakeRuntime(mode);
        const models::RunResult r =
            model.RunInference(rt, BenchRun(mode, 200, k, 2000));
        // Per-iteration values, as the paper annotates.
        std::vector<std::string> row = {std::to_string(k)};
        const double iters = static_cast<double>(r.iterations);
        for (const std::string& cat : cats) {
            row.push_back(core::TableWriter::TimeWithShare(
                r.breakdown.TimeUs(cat) / 1000.0 / iters,
                r.breakdown.SharePct(cat)));
        }
        row.push_back(core::TableWriter::Num(r.per_iteration_us / 1000.0, 2));
        table.AddRow(row);
    }
    std::cout << table.ToString();
}

}  // namespace
}  // namespace dgnn::bench

int
main()
{
    using namespace dgnn;
    using namespace dgnn::bench;
    const auto wiki = WikipediaDataset();
    const auto reddit = RedditDataset();
    Panel("e", "Wikipedia", wiki, sim::ExecMode::kHybrid);
    Panel("f", "Wikipedia", wiki, sim::ExecMode::kCpuOnly);
    Panel("g", "Reddit", reddit, sim::ExecMode::kHybrid);
    Panel("h", "Reddit", reddit, sim::ExecMode::kCpuOnly);
    return 0;
}
