// Google-benchmark microbenchmarks of the real host kernels behind the
// simulator: GEMM, attention, GRU, SpMM, temporal sampling, t-batching.
// These measure actual wall-clock performance of the numeric substrate
// (unlike the fig/table harnesses, which report simulated device time).

#include <benchmark/benchmark.h>

#include "data/temporal_interactions.hpp"
#include "graph/tbatch.hpp"
#include "graph/temporal_sampler.hpp"
#include "nn/attention.hpp"
#include "nn/gcn.hpp"
#include "nn/rnn_cell.hpp"
#include "sim/device_spec.hpp"
#include "sim/fusion.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace {

using namespace dgnn;

void
BM_MatMul(benchmark::State& state)
{
    const int64_t n = state.range(0);
    Rng rng(1);
    const Tensor a = init::Normal(Shape({n, n}), rng);
    const Tensor b = init::Normal(Shape({n, n}), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::MatMul(a, b));
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void
BM_MatMulTransposed(benchmark::State& state)
{
    const int64_t n = state.range(0);
    Rng rng(1);
    const Tensor a = init::Normal(Shape({n, n}), rng);
    const Tensor b = init::Normal(Shape({n, n}), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ops::MatMulTransposed(a, b));
    }
    state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMulTransposed)->Arg(32)->Arg(64)->Arg(128);

void
BM_Attention(benchmark::State& state)
{
    const int64_t k = state.range(0);
    Rng rng(2);
    nn::MultiHeadAttention mha(64, 2, rng);
    const Tensor q = init::Normal(Shape({1, 64}), rng);
    const Tensor kv = init::Normal(Shape({k, 64}), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(mha.Forward(q, kv, kv));
    }
}
BENCHMARK(BM_Attention)->Arg(10)->Arg(50)->Arg(200);

void
BM_GruCell(benchmark::State& state)
{
    const int64_t batch = state.range(0);
    Rng rng(3);
    nn::GruCell cell(64, 64, rng);
    const Tensor x = init::Normal(Shape({batch, 64}), rng);
    const Tensor h = init::Normal(Shape({batch, 64}), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cell.Forward(x, h));
    }
}
BENCHMARK(BM_GruCell)->Arg(1)->Arg(64)->Arg(512);

void
BM_Spmm(benchmark::State& state)
{
    const int64_t n = state.range(0);
    Rng rng(4);
    nn::SparseMatrix a;
    a.n = n;
    a.row_offsets.resize(static_cast<size_t>(n) + 1);
    for (int64_t i = 0; i < n; ++i) {
        a.row_offsets[static_cast<size_t>(i) + 1] =
            a.row_offsets[static_cast<size_t>(i)] + 8;
        for (int64_t e = 0; e < 8; ++e) {
            a.col_indices.push_back(rng.UniformInt(0, n - 1));
            a.values.push_back(1.0f / 8.0f);
        }
    }
    const Tensor x = init::Normal(Shape({n, 64}), rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(nn::Spmm(a, x));
    }
    state.SetItemsProcessed(state.iterations() * n * 8 * 64 * 2);
}
BENCHMARK(BM_Spmm)->Arg(256)->Arg(1024)->Arg(4096);

void
BM_TemporalSampling(benchmark::State& state)
{
    const int64_t k = state.range(0);
    data::InteractionSpec spec;
    spec.num_users = 500;
    spec.num_items = 200;
    spec.num_events = 20000;
    spec.edge_feature_dim = 2;
    const auto ds = data::GenerateInteractions(spec);
    graph::TemporalAdjacency adj(ds.stream);
    graph::TemporalNeighborSampler sampler(adj, graph::SamplingStrategy::kUniform,
                                           7);
    const double t_query = ds.stream.EndTime();
    int64_t node = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sampler.Sample(node % 500, t_query, k));
        ++node;
    }
}
BENCHMARK(BM_TemporalSampling)->Arg(10)->Arg(50)->Arg(300);

void
BM_TBatchBuild(benchmark::State& state)
{
    const int64_t events = state.range(0);
    data::InteractionSpec spec;
    spec.num_users = 500;
    spec.num_items = 200;
    spec.num_events = events;
    spec.edge_feature_dim = 2;
    const auto ds = data::GenerateInteractions(spec);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            graph::BuildTBatches(ds.stream, 0, ds.stream.NumEvents()));
    }
    state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_TBatchBuild)->Arg(1000)->Arg(10000);

// A JODIE-style launch-bound t-batch chain (4 narrow launches -> 1 fused)
// at the given t-batch width. Wall-clock measures the collapse + pricing
// path itself; the counters report what the simulator charges for the chain
// fused vs unfused on the GPU spec (sim_speedup is the launch-overhead
// reduction the fusion layer buys per t-batch).
void
BM_FusedChain(benchmark::State& state)
{
    const int64_t m = state.range(0);  // t-batch rows
    const int64_t d = 64;              // embed dim
    sim::FusedKernelDesc fused;
    fused.name = "jodie_tbatch_fused";
    fused.parts = {
        {"project_user", m * d, m * d * 8, m, false},
        {"predict_item", 2 * m * d * d, m * d * 8, m, false},
        {"rnn_update", 6 * m * d * d, m * d * 12, m, false},
        {"rnn_update", 6 * m * d * d, m * d * 12, m, false},
    };
    fused.intermediate_bytes = {m * d * 4, 0, 0};

    const sim::DeviceSpec gpu = sim::DeviceSpec::RtxA6000();
    double fused_us = 0.0;
    double unfused_us = 0.0;
    for (auto _ : state) {
        fused_us = sim::FusedDuration(gpu, fused);
        unfused_us = sim::UnfusedDuration(gpu, fused);
        benchmark::DoNotOptimize(fused_us);
        benchmark::DoNotOptimize(unfused_us);
    }
    state.counters["sim_unfused_us"] = unfused_us;
    state.counters["sim_fused_us"] = fused_us;
    state.counters["sim_speedup"] = unfused_us / fused_us;
}
BENCHMARK(BM_FusedChain)->Arg(1)->Arg(16)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
