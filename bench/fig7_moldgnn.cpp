// Reproduces Fig 7(b): MolDGNN inference breakdown across batch sizes
// {16 .. 16K}. Expected shape: Memory Copy occupies the overwhelming share
// (~80-90% in the paper) at every batch size.

#include "bench_common.hpp"
#include "models/moldgnn.hpp"

int
main()
{
    using namespace dgnn;
    using namespace dgnn::bench;

    Banner("Fig 7(b): MolDGNN inference breakdown vs batch size",
           "Fig 7(b): memory copy ~80-90% regardless of batch size");
    const auto ds = Iso17Dataset();
    const std::vector<std::string> cats = {"FFN", "GCN", "LSTM", "Memory Copy"};
    core::TableWriter table({"batch", "FFN ms(%)", "GCN ms(%)", "LSTM ms(%)",
                             "Memory Copy ms(%)", "total (ms)"});
    for (const int64_t bs : {16, 64, 256, 1024, 4096, 16384}) {
        models::MolDgnn model(ds, models::MolDgnnConfig{});
        sim::Runtime rt = models::MakeRuntime(sim::ExecMode::kHybrid);
        const models::RunResult r =
            model.RunInference(rt, BenchRun(sim::ExecMode::kHybrid, bs));
        std::vector<std::string> row = {std::to_string(bs)};
        for (const auto& cell : BreakdownCells(r.breakdown, cats)) {
            row.push_back(cell);
        }
        table.AddRow(row);
    }
    std::cout << table.ToString();
    return 0;
}
