/// The shard-scaling sweep — scale-out serving of one arrival trace across
/// a multi-device topology (src/shard/ over the sim/ topology layer). For
/// each model (TGN, TGAT) the sweep crosses:
///
///   shards       1 / 2 / 4 / 8 topology nodes, one serving loop each
///   partitioner  hash vs greedy edge-cut (seeded, deterministic)
///   interconnect PCIe-class vs NVLink-class peer links
///
/// and reports the cluster's sustained QPS (completions over the slowest
/// shard's makespan), merged tail latency, the partition's edge cut and
/// balance, and the cross-shard communication tax (peer-link occupancy as
/// a share of total shard serving time). The 1-shard rows reproduce the
/// unsharded serving path bit-for-bit — the scale-out seam's identity
/// contract.
///
/// The text summary diffs against docs/expected/bench_shard_scaling.txt in
/// CI (scripts/check_shard.sh); BENCH_shard_scaling.json carries the
/// trajectory for scripts/compare_bench.py.
///
/// Smoke scale by default; set DGNN_SHARD_REQUESTS to sweep a heavier
/// stream and DGNN_BENCH_JSON_PATH to redirect the JSON artifact.

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/bench_json_writer.hpp"
#include "models/tgat.hpp"
#include "models/tgn.hpp"
#include "scenario/scenario.hpp"
#include "serve/batch_policy.hpp"
#include "shard/sharded_server.hpp"

namespace dgnn {
namespace {

constexpr uint64_t kSeed = 1009;
constexpr double kBaseQps = 240000.0;
constexpr int64_t kServeBatch = 64;
constexpr sim::SimTime kBatchTimeoutUs = 5000.0;
constexpr uint64_t kPartitionSeed = 7;

int64_t
RequestCount()
{
    if (const char* env = std::getenv("DGNN_SHARD_REQUESTS")) {
        return std::max<int64_t>(1, std::atoll(env));
    }
    return 512;
}

std::string
JsonPath()
{
    if (const char* env = std::getenv("DGNN_BENCH_JSON_PATH")) {
        return env;
    }
    return "BENCH_shard_scaling.json";
}

data::InteractionSpec
ShardDatasetSpec()
{
    // The hazard-audit dataset (recurrent repeat-talker stream): enough
    // nodes that an 8-way partition still owns meaningful state per shard.
    data::InteractionSpec spec;
    spec.name = "gauntlet";
    spec.num_users = 512;
    spec.num_items = 128;
    spec.num_events = 4096;
    spec.edge_feature_dim = 64;
    spec.popularity_alpha = 2.5;
    spec.repeat_prob = 0.9;
    spec.seed = 31;
    return spec;
}

std::vector<serve::Request>
ShardTrace(const data::InteractionDataset& dataset, int64_t n)
{
    // Overloaded Poisson arrivals over trace-replay endpoints: one shard
    // saturates, so the sweep measures capacity, not arrival pacing.
    scenario::Scenario s;
    s.name = "shard-replay";
    s.poisson_qps = kBaseQps;
    s.poisson_seed = kSeed;
    return scenario::GenerateRequests(s, dataset, n);
}

void
SweepModel(const std::string& model_name, models::DgnnModel& model,
           const data::InteractionDataset& dataset,
           const std::vector<serve::Request>& requests,
           core::BenchJsonWriter& json)
{
    bench::Banner(
        "Shard scaling: " + model_name + " (hybrid, pipelined)",
        "scale-out extension of the paper's serving bottleneck analysis");

    core::TableWriter table({"partitioner", "link", "shards", "sustained qps",
                             "p50 ms", "p99 ms", "edge cut", "balance",
                             "remote rows", "exchange MB", "comm tax %"});
    for (const shard::PartitionerKind partitioner :
         {shard::PartitionerKind::kHash, shard::PartitionerKind::kGreedy}) {
        for (const sim::LinkSpec& interconnect :
             {sim::LinkSpec::PcieGen4(), sim::LinkSpec::NvlinkClass()}) {
            for (const int32_t shards : {1, 2, 4, 8}) {
                shard::ShardedOptions options;
                options.num_shards = shards;
                options.partitioner = partitioner;
                options.interconnect = interconnect;
                options.partition_seed = kPartitionSeed;
                options.cache_config.capacity_bytes =
                    dataset.NumNodes() / 4 * model.CacheRowBytes();
                options.cache_config.eviction = cache::EvictionPolicy::kLru;
                options.num_neighbors = 10;

                const shard::ShardedReport report = shard::ServeSharded(
                    model, sim::ExecMode::kHybrid, dataset.NumNodes(),
                    requests, [] {
                        return std::make_unique<serve::TimeoutPolicy>(
                            kServeBatch, kBatchTimeoutUs);
                    },
                    options);

                const std::string link = sim::ToString(interconnect.kind);
                table.AddRow(
                    {report.partitioner, link, std::to_string(shards),
                     core::TableWriter::Num(report.sustained_qps, 1),
                     bench::Ms(report.latency.P50()),
                     bench::Ms(report.latency.P99()),
                     core::TableWriter::Num(
                         static_cast<double>(report.edge_cut), 0),
                     core::TableWriter::Num(report.balance_factor, 3),
                     core::TableWriter::Num(
                         static_cast<double>(report.exchange.remote_rows), 0),
                     bench::Mb(report.exchange.bytes),
                     core::TableWriter::Num(report.comm_tax_pct, 2)});

                json.BeginRecord();
                json.Field("model", model_name);
                json.Field("partitioner", report.partitioner);
                json.Field("interconnect", link);
                json.Field("shards", std::to_string(shards));
                json.Field("requests", report.requests);
                json.Field("achieved_qps", report.sustained_qps, 1);
                json.Field("p50_ms", report.latency.P50() / 1000.0, 3);
                json.Field("p99_ms", report.latency.P99() / 1000.0, 3);
                json.Field("edge_cut", report.edge_cut);
                json.Field("balance_factor", report.balance_factor, 3);
                json.Field("remote_rows", report.exchange.remote_rows);
                json.Field("exchange_mb",
                           static_cast<double>(report.exchange.bytes) / 1024.0 /
                               1024.0,
                           2);
                json.Field("comm_tax_pct", report.comm_tax_pct, 2);
            }
        }
    }
    std::cout << table.ToString();
}

}  // namespace
}  // namespace dgnn

int
main()
{
    using namespace dgnn;

    const int64_t n = RequestCount();
    std::cout << "DGNN shard scaling (simulated Xeon Gold 6226R + RTX A6000 "
                 "per shard)\n"
              << "One trace served at scale-out; " << n
              << " requests, base rate " << static_cast<int64_t>(kBaseQps)
              << " qps, timeout(" << kServeBatch << ","
              << static_cast<int64_t>(kBatchTimeoutUs) / 1000
              << "ms) batching, partition seed " << kPartitionSeed << "\n";

    const auto dataset = data::GenerateInteractions(ShardDatasetSpec());
    const std::vector<serve::Request> requests = ShardTrace(dataset, n);

    models::Tgn tgn(dataset, models::TgnConfig{172, 64, 2, 11});
    models::Tgat tgat(dataset, models::TgatConfig{});

    core::BenchJsonWriter json("shard_scaling");
    SweepModel("TGN", tgn, dataset, requests, json);
    SweepModel("TGAT", tgat, dataset, requests, json);

    json.WriteFile(JsonPath());
    std::cout << "\njson: BENCH_shard_scaling.json (" << json.RecordCount()
              << " records)\n";
    return 0;
}
