/// The fusion + hybrid-dispatch ablation — the launch-overhead killer
/// (src/sim/fusion.hpp + src/dispatch/ over the serving stack). Two sweeps:
///
///   Table A  launch-overhead ablation: per model (TGN, TGAT, JODIE) and
///            batch size, the captured serving profile with and without the
///            registered fusion chains collapsed — launches, the per-batch
///            launch+submit overhead each sequence pays, and the reduction
///            factor. JODIE's per-t-batch 4-launch RNN chain is the paper's
///            launch-bound cell (Fig 7d, GPU util 1.5-2.5%): fusing it cuts
///            launch overhead 4x.
///
///   Table B  serving sweep: model x offered Poisson rate x dispatch mode
///            (static-cpu / static-gpu / static-gpu-fused / per-batch
///            hybrid) on the serial executor, uncached sessions. Reports
///            sustained QPS, tail latency, and the placement mix the hybrid
///            dispatcher chose. The hybrid row must sustain >= every static
///            row at the same cell — predict-then-place never loses to a
///            fixed placement.
///
/// The text summary diffs against docs/expected/bench_fusion_dispatch.txt
/// in CI (scripts/check_fusion.sh); BENCH_fusion_dispatch.json carries the
/// trajectory for scripts/compare_bench.py plus the two acceptance checks.
///
/// Smoke scale by default; set DGNN_FUSION_REQUESTS to sweep a heavier
/// stream and DGNN_BENCH_JSON_PATH to redirect the JSON artifact.

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/bench_json_writer.hpp"
#include "dispatch/dispatcher.hpp"
#include "models/fusion_catalog.hpp"
#include "models/jodie.hpp"
#include "models/tgat.hpp"
#include "models/tgn.hpp"
#include "scenario/scenario.hpp"
#include "serve/batch_policy.hpp"
#include "serve/server.hpp"
#include "sim/runtime.hpp"

namespace dgnn {
namespace {

constexpr uint64_t kSeed = 1013;
constexpr int64_t kServeBatch = 64;
constexpr sim::SimTime kBatchTimeoutUs = 3000.0;
constexpr int64_t kNumNeighbors = 10;

int64_t
RequestCount()
{
    if (const char* env = std::getenv("DGNN_FUSION_REQUESTS")) {
        return std::max<int64_t>(1, std::atoll(env));
    }
    return 512;
}

std::string
JsonPath()
{
    if (const char* env = std::getenv("DGNN_BENCH_JSON_PATH")) {
        return env;
    }
    return "BENCH_fusion_dispatch.json";
}

data::InteractionSpec
FusionDatasetSpec()
{
    // The hazard-audit dataset (recurrent repeat-talker stream) — the same
    // stream the gauntlet and shard sweeps serve, so cells are comparable
    // across benches.
    data::InteractionSpec spec;
    spec.name = "gauntlet";
    spec.num_users = 512;
    spec.num_items = 128;
    spec.num_events = 4096;
    spec.edge_feature_dim = 64;
    spec.popularity_alpha = 2.5;
    spec.repeat_prob = 0.9;
    spec.seed = 31;
    return spec;
}

void
PrintCatalog()
{
    bench::Banner("Registered fusion chains",
                  "the launch-bound producer->consumer chains of Figs 6/7");
    core::TableWriter table({"model", "chain", "launches", "parts"});
    for (const models::FusionPlan& plan : models::FusionCatalog()) {
        std::string parts;
        for (const std::string& part : plan.parts) {
            if (!parts.empty()) {
                parts += " + ";
            }
            parts += part;
        }
        table.AddRow({plan.model, plan.chain,
                      std::to_string(plan.parts.size()), parts});
    }
    std::cout << table.ToString();
}

void
LaunchAblation(const std::vector<models::DgnnModel*>& model_list,
               core::BenchJsonWriter& json)
{
    bench::Banner(
        "Launch-overhead ablation: captured profile, fused vs unfused",
        "Fig 6/7 launch-bound cells — kernel launch + submit per batch");

    const sim::DeviceSpec gpu = sim::DeviceSpec::RtxA6000();
    const sim::RuntimeConfig runtime_defaults;
    const double per_launch_us =
        gpu.launch_overhead_us + runtime_defaults.submit_overhead_us;

    core::TableWriter table({"model", "batch", "launches", "fused launches",
                             "launch+submit us", "fused us", "reduction"});
    for (models::DgnnModel* model : model_list) {
        serve::ModelSession session(*model, sim::ExecMode::kHybrid,
                                    kNumNeighbors);
        for (const int64_t batch : {int64_t{4}, int64_t{64}, int64_t{256}}) {
            const serve::BatchProfile& unfused = session.Profile(batch);
            const serve::BatchProfile& fused = session.FusedProfile(batch);
            const auto launches = static_cast<int64_t>(unfused.kernels.size());
            const auto fused_launches =
                static_cast<int64_t>(fused.kernels.size());
            const double unfused_us =
                static_cast<double>(launches) * per_launch_us;
            const double fused_us =
                static_cast<double>(fused_launches) * per_launch_us;
            const double reduction = unfused_us / fused_us;

            table.AddRow({model->Name(), std::to_string(batch),
                          std::to_string(launches),
                          std::to_string(fused_launches),
                          core::TableWriter::Num(unfused_us, 1),
                          core::TableWriter::Num(fused_us, 1),
                          core::TableWriter::Num(reduction, 2) + "x"});

            json.BeginRecord();
            json.Field("table", "launch_ablation");
            json.Field("model", model->Name());
            json.Field("batch", std::to_string(batch));
            json.Field("launches", launches);
            json.Field("fused_launches", fused_launches);
            json.Field("launch_overhead_us", unfused_us, 1);
            json.Field("fused_launch_overhead_us", fused_us, 1);
            json.Field("launch_reduction", reduction, 2);
        }
    }
    std::cout << table.ToString();
}

std::string
PlacementMix(const serve::ServingReport& report)
{
    std::string mix;
    for (int i = 0; i < dispatch::kNumPlacements; ++i) {
        if (!mix.empty()) {
            mix += "/";
        }
        mix += std::to_string(report.placement_batches[static_cast<size_t>(i)]);
    }
    return mix;  // cpu/gpu/gpu-fused
}

void
ServingSweep(const std::vector<models::DgnnModel*>& model_list,
             const data::InteractionDataset& dataset, int64_t n,
             core::BenchJsonWriter& json)
{
    constexpr double kRates[] = {2000.0, 8000.0, 32000.0};
    constexpr dispatch::DispatchMode kModes[] = {
        dispatch::DispatchMode::kStaticCpu,
        dispatch::DispatchMode::kStaticGpu,
        dispatch::DispatchMode::kStaticGpuFused,
        dispatch::DispatchMode::kHybrid,
    };

    for (models::DgnnModel* model : model_list) {
        bench::Banner(
            "Hybrid dispatch serving sweep: " + model->Name() +
                " (serial, uncached)",
            "per-batch predict-then-place vs the static placements");

        core::TableWriter table({"offered qps", "mode", "sustained qps",
                                 "p50 ms", "p99 ms", "cpu/gpu/fused"});
        serve::ModelSession session(*model, sim::ExecMode::kHybrid,
                                    kNumNeighbors);
        for (const double rate : kRates) {
            scenario::Scenario s;
            s.name = "fusion-replay";
            s.poisson_qps = rate;
            s.poisson_seed = kSeed;
            const std::vector<serve::Request> requests =
                scenario::GenerateRequests(s, dataset, n);

            for (const dispatch::DispatchMode mode : kModes) {
                dispatch::DispatcherConfig config;
                config.mode = mode;
                const dispatch::HybridDispatcher dispatcher(config);

                serve::TimeoutPolicy policy(kServeBatch, kBatchTimeoutUs);
                serve::ServerOptions options;
                options.executor = serve::ExecutorKind::kSerial;
                options.dispatcher = &dispatcher;

                const serve::ServingReport report =
                    serve::ServeRequests(session, policy, requests, options);

                table.AddRow(
                    {core::TableWriter::Num(rate, 0),
                     dispatch::ToString(mode),
                     core::TableWriter::Num(report.achieved_qps, 1),
                     bench::Ms(report.latency.P50()),
                     bench::Ms(report.latency.P99()), PlacementMix(report)});

                json.BeginRecord();
                json.Field("table", "serving_sweep");
                json.Field("model", model->Name());
                json.Field("offered", core::TableWriter::Num(rate, 0));
                json.Field("mode", dispatch::ToString(mode));
                json.Field("requests", report.requests);
                json.Field("batches", report.batches);
                json.Field("achieved_qps", report.achieved_qps, 1);
                json.Field("p50_ms", report.latency.P50() / 1000.0, 3);
                json.Field("p99_ms", report.latency.P99() / 1000.0, 3);
                json.Field("cpu_batches", report.placement_batches[0]);
                json.Field("gpu_batches", report.placement_batches[1]);
                json.Field("fused_batches", report.placement_batches[2]);
            }
        }
        std::cout << table.ToString();
    }
}

}  // namespace
}  // namespace dgnn

int
main()
{
    using namespace dgnn;

    const int64_t n = RequestCount();
    std::cout << "DGNN fusion + hybrid dispatch (simulated Xeon Gold 6226R "
                 "vs RTX A6000)\n"
              << "Registered-chain kernel fusion + per-batch "
                 "predict-then-place; "
              << n << " requests per serving cell, timeout(" << kServeBatch
              << "," << static_cast<int64_t>(kBatchTimeoutUs) / 1000
              << "ms) batching, seed " << kSeed << "\n";

    const auto dataset = data::GenerateInteractions(FusionDatasetSpec());

    models::Tgn tgn(dataset, models::TgnConfig{172, 64, 2, 11});
    models::Tgat tgat(dataset, models::TgatConfig{});
    models::Jodie jodie(dataset, models::JodieConfig{});
    const std::vector<models::DgnnModel*> model_list = {&tgn, &tgat, &jodie};

    core::BenchJsonWriter json("fusion_dispatch");
    PrintCatalog();
    LaunchAblation(model_list, json);
    ServingSweep(model_list, dataset, n, json);

    json.WriteFile(JsonPath());
    std::cout << "\njson: BENCH_fusion_dispatch.json (" << json.RecordCount()
              << " records)\n";
    return 0;
}
