// Tests for the serving observability layer (src/obs/): the labeled
// metrics registry and its deterministic exports, per-request span
// tracing with the conservation invariant, windowed aggregation,
// bottleneck attribution, the merged chrome-trace export, and — most
// importantly — the property that attaching an observer NEVER changes
// the simulation.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "support/check.hpp"

#include "core/trace_analysis.hpp"
#include "data/temporal_interactions.hpp"
#include "models/tgn.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "obs/observability.hpp"
#include "obs/request_timeline.hpp"
#include "obs/windowed_metrics.hpp"
#include "scenario/scenario.hpp"
#include "serve/server.hpp"

namespace dgnn::obs {
namespace {

data::InteractionDataset
TinyInteractions()
{
    data::InteractionSpec spec;
    spec.name = "tiny";
    spec.num_users = 20;
    spec.num_items = 12;
    spec.num_events = 400;
    spec.edge_feature_dim = 8;
    spec.seed = 5;
    return data::GenerateInteractions(spec);
}

// ----------------------------------------------------------------- metrics

TEST(MetricsTest, RenderLabelsSortsAndEscapes)
{
    EXPECT_EQ(RenderLabels({}), "");
    EXPECT_EQ(RenderLabels({{"b", "2"}, {"a", "1"}}), "{a=\"1\",b=\"2\"}");
    EXPECT_EQ(RenderLabels({{"k", "a\"b\\c\nd"}}),
              "{k=\"a\\\"b\\\\c\\nd\"}");
}

TEST(MetricsTest, FormatMetricValueIsDeterministic)
{
    EXPECT_EQ(FormatMetricValue(0.0), "0");
    EXPECT_EQ(FormatMetricValue(42.0), "42");
    EXPECT_EQ(FormatMetricValue(-3.0), "-3");
    EXPECT_EQ(FormatMetricValue(1.5), "1.5");
    EXPECT_EQ(FormatMetricValue(0.125), "0.125");
    // %.6f then trailing-zero trim.
    EXPECT_EQ(FormatMetricValue(1.0 / 3.0), "0.333333");
}

TEST(MetricsTest, CountersGaugesSummariesAccumulate)
{
    MetricsRegistry registry;
    registry.CounterAdd("c", 2.0);
    registry.CounterAdd("c", 3.0);
    EXPECT_DOUBLE_EQ(registry.CounterValue("c"), 5.0);
    // Same name, different labels = a distinct series.
    registry.CounterAdd("c", 7.0, {{"x", "1"}});
    EXPECT_DOUBLE_EQ(registry.CounterValue("c"), 5.0);
    EXPECT_DOUBLE_EQ(registry.CounterValue("c", {{"x", "1"}}), 7.0);

    registry.GaugeSet("g", 1.0);
    registry.GaugeSet("g", 9.0);  // last write wins
    EXPECT_DOUBLE_EQ(registry.GaugeValue("g"), 9.0);

    registry.SummaryObserve("s", 2.0);
    registry.SummaryObserve("s", 4.0);
    const core::RunningStat* stat = registry.Summary("s");
    ASSERT_NE(stat, nullptr);
    EXPECT_EQ(stat->Count(), 2);
    EXPECT_DOUBLE_EQ(stat->Mean(), 3.0);
    EXPECT_EQ(registry.Summary("missing"), nullptr);
    EXPECT_EQ(registry.InstrumentCount(), 4);
}

TEST(MetricsTest, PrometheusTextGolden)
{
    MetricsRegistry registry;
    registry.CounterAdd("dgnn_requests_total", 3.0, {{"model", "tgn"}});
    registry.CounterAdd("dgnn_requests_total", 1.0, {{"model", "jodie"}});
    registry.GaugeSet("dgnn_queue_depth", 2.5);
    registry.SummaryObserve("dgnn_batch_size", 2.0);
    registry.SummaryObserve("dgnn_batch_size", 6.0);

    // The golden exposition: families sorted counter/gauge/summary, series
    // sorted by rendered labels within a name, one TYPE header per family.
    const std::string expected =
        "# TYPE dgnn_requests_total counter\n"
        "dgnn_requests_total{model=\"jodie\"} 1\n"
        "dgnn_requests_total{model=\"tgn\"} 3\n"
        "# TYPE dgnn_queue_depth gauge\n"
        "dgnn_queue_depth 2.5\n"
        "# TYPE dgnn_batch_size summary\n"
        "dgnn_batch_size_count 2\n"
        "dgnn_batch_size_sum 8\n"
        "dgnn_batch_size_min 2\n"
        "dgnn_batch_size_mean 4\n"
        "dgnn_batch_size_max 6\n"
        "dgnn_batch_size_stddev 2\n";
    EXPECT_EQ(registry.PrometheusText(), expected);
}

TEST(MetricsTest, JsonSnapshotGolden)
{
    MetricsRegistry registry;
    registry.CounterAdd("c_total", 4.0, {{"m", "x"}});
    registry.GaugeSet("g_now", 1.25);
    registry.SummaryObserve("s_us", 3.0);

    const std::string json = registry.ToJson();
    // Envelope and field order are schema-stable (BenchJsonWriter).
    EXPECT_NE(json.find("\"bench\": \"metrics_snapshot\""), std::string::npos);
    EXPECT_NE(
        json.find("{\"metric\": \"c_total\", \"type\": \"counter\", "
                  "\"labels\": \"{m=\\\"x\\\"}\", \"value\": 4.000000}"),
        std::string::npos);
    EXPECT_NE(json.find("{\"metric\": \"g_now\", \"type\": \"gauge\", "
                        "\"labels\": \"\", \"value\": 1.250000}"),
              std::string::npos);
    EXPECT_NE(
        json.find("{\"metric\": \"s_us\", \"type\": \"summary\", \"labels\": "
                  "\"\", \"count\": 1, \"sum\": 3.000000"),
        std::string::npos)
        << json;
    // Byte-identical across calls — the determinism contract.
    EXPECT_EQ(json, registry.ToJson());
}

// ---------------------------------------------------------------- timeline

serve::BatchObservation
SyntheticBatch()
{
    serve::BatchObservation ob;
    ob.batch_index = 3;
    ob.queue_depth = 5;
    ob.spans.dispatch_us = 100.0;
    ob.spans.stall_done_us = 110.0;
    ob.spans.host_done_us = 130.0;
    ob.spans.h2d_done_us = 170.0;
    ob.spans.compute_done_us = 200.0;
    ob.spans.complete_us = 220.0;
    ob.requests = {serve::Request{7, 40.0}, serve::Request{8, 90.0}};
    return ob;
}

TEST(RequestTimelineTest, SpansDecomposeTheBatchBoundaries)
{
    RequestTimeline timeline;
    timeline.RecordBatch(SyntheticBatch());
    ASSERT_EQ(timeline.Count(), 2);

    const RequestRecord& r0 = timeline.Records()[0];
    EXPECT_EQ(r0.id, 7);
    EXPECT_EQ(r0.batch_index, 3);
    EXPECT_EQ(r0.batch_size, 2);
    EXPECT_DOUBLE_EQ(r0.span_us[static_cast<size_t>(SpanKind::kQueue)], 60.0);
    EXPECT_DOUBLE_EQ(r0.span_us[static_cast<size_t>(SpanKind::kStall)], 10.0);
    EXPECT_DOUBLE_EQ(r0.span_us[static_cast<size_t>(SpanKind::kHostPrep)],
                     20.0);
    EXPECT_DOUBLE_EQ(r0.span_us[static_cast<size_t>(SpanKind::kH2d)], 40.0);
    EXPECT_DOUBLE_EQ(r0.span_us[static_cast<size_t>(SpanKind::kCompute)],
                     30.0);
    EXPECT_DOUBLE_EQ(r0.span_us[static_cast<size_t>(SpanKind::kD2h)], 20.0);
    // Conservation: spans telescope to the end-to-end latency.
    EXPECT_DOUBLE_EQ(r0.SpanTotalUs(), r0.LatencyUs());

    // The second member shares every stage span but owns its queue wait.
    const RequestRecord& r1 = timeline.Records()[1];
    EXPECT_DOUBLE_EQ(r1.span_us[static_cast<size_t>(SpanKind::kQueue)], 10.0);
    EXPECT_DOUBLE_EQ(r1.SpanTotalUs(), r1.LatencyUs());

    EXPECT_LE(timeline.MaxConservationErrorUs(), 1e-9);
    EXPECT_DOUBLE_EQ(timeline.MeanSpanUs(SpanKind::kQueue), 35.0);
}

TEST(RequestTimelineTest, SpanKindNamesAreStable)
{
    EXPECT_STREQ(ToString(SpanKind::kQueue), "queue");
    EXPECT_STREQ(ToString(SpanKind::kStall), "stall");
    EXPECT_STREQ(ToString(SpanKind::kHostPrep), "host");
    EXPECT_STREQ(ToString(SpanKind::kH2d), "h2d");
    EXPECT_STREQ(ToString(SpanKind::kCompute), "compute");
    EXPECT_STREQ(ToString(SpanKind::kD2h), "d2h");
}

// ----------------------------------------------------------------- windows

TEST(WindowedMetricsTest, BinsObservationsIntoContiguousWindows)
{
    WindowedMetrics windows(100.0);
    windows.SetOrigin(1000.0);
    windows.OnArrival(1000.0);   // window 0
    windows.OnArrival(1099.0);   // window 0
    windows.OnArrival(1100.0);   // window 1
    windows.OnCompletion(1350.0, 42.0);  // window 3 (2 stays quiet)
    windows.OnBatch(1350.0, 1000, 200, 6, 2);

    const auto& w = windows.Windows();
    ASSERT_EQ(w.size(), 4u);
    EXPECT_EQ(w[0].arrivals, 2);
    EXPECT_EQ(w[1].arrivals, 1);
    EXPECT_EQ(w[2].arrivals, 0);  // quiet windows materialize with zeros
    EXPECT_EQ(w[2].completions, 0);
    EXPECT_EQ(w[3].completions, 1);
    EXPECT_EQ(w[3].batches, 1);
    EXPECT_EQ(w[3].h2d_bytes, 1000);
    EXPECT_DOUBLE_EQ(w[3].latency.Mean(), 42.0);
    EXPECT_DOUBLE_EQ(w[3].HitRate(), 0.75);
    EXPECT_DOUBLE_EQ(w[0].HitRate(), 0.0);  // no gathers -> 0, not NaN
    // Window starts are origin-relative.
    EXPECT_DOUBLE_EQ(w[3].start_us, 300.0);
    // QPS: completions over the window length.
    EXPECT_DOUBLE_EQ(w[3].Qps(100.0), 1e4);

    EXPECT_THROW(WindowedMetrics(0.0), Error);
}

// ------------------------------------------------------------- attribution

TEST(AttributionTest, ClassifyPicksTheLargestComponent)
{
    EXPECT_EQ(Classify(10.0, 1.0, 2.0, 3.0), BottleneckCategory::kQueueing);
    EXPECT_EQ(Classify(1.0, 10.0, 2.0, 3.0), BottleneckCategory::kHost);
    EXPECT_EQ(Classify(1.0, 2.0, 10.0, 3.0), BottleneckCategory::kTransfer);
    EXPECT_EQ(Classify(1.0, 2.0, 3.0, 10.0), BottleneckCategory::kCompute);
    // Ties break deterministically on the earlier enum value.
    EXPECT_EQ(Classify(5.0, 5.0, 5.0, 5.0), BottleneckCategory::kQueueing);
    EXPECT_EQ(Classify(1.0, 5.0, 5.0, 5.0), BottleneckCategory::kHost);
}

TEST(AttributionTest, BatchDecompositionAndSummary)
{
    BottleneckAttributor attributor;
    attributor.OnBatch(SyntheticBatch());
    ASSERT_EQ(attributor.Batches().size(), 1u);

    const BatchAttribution& a = attributor.Batches()[0];
    // queueing = mean member queue wait (35) + stall (10).
    EXPECT_DOUBLE_EQ(a.queueing_us, 45.0);
    EXPECT_DOUBLE_EQ(a.host_us, 20.0);
    // transfer = h2d (40) + d2h (20).
    EXPECT_DOUBLE_EQ(a.transfer_us, 60.0);
    EXPECT_DOUBLE_EQ(a.compute_us, 30.0);
    EXPECT_EQ(a.dominant, BottleneckCategory::kTransfer);

    const AttributionSummary summary = attributor.Summary();
    EXPECT_EQ(summary.total_batches, 1);
    EXPECT_EQ(summary.batches[static_cast<size_t>(
                  BottleneckCategory::kTransfer)],
              1);
    EXPECT_EQ(summary.Dominant(), BottleneckCategory::kTransfer);
    EXPECT_EQ(summary.DominantByTime(), BottleneckCategory::kTransfer);
    EXPECT_DOUBLE_EQ(
        summary.BatchSharePct(BottleneckCategory::kTransfer), 100.0);
    EXPECT_NEAR(summary.TimeSharePct(BottleneckCategory::kTransfer),
                100.0 * 60.0 / 155.0, 1e-9);
}

// --------------------------------------------- serving-loop integration

serve::ServingReport
ServeScenario(const scenario::Scenario& s,
              const data::InteractionDataset& dataset,
              serve::ExecutorKind kind, int64_t n,
              ServingObservability* obs)
{
    models::Tgn tgn(dataset, models::TgnConfig{16, 16, 2, 11});
    cache::DeviceCacheConfig cache_config;
    cache_config.capacity_bytes = dataset.NumNodes() / 4 * tgn.CacheRowBytes();
    serve::ModelSession session(tgn, sim::ExecMode::kHybrid,
                                /*num_neighbors=*/4, cache_config);
    serve::TimeoutPolicy policy(8, 2000.0);
    serve::ServerOptions options;
    options.executor = kind;
    options.observer = obs;
    const scenario::ScenarioSource source(s, dataset);
    return serve::Serve(session, policy, source, n, options);
}

TEST(ObservabilityTest, SpanConservationHoldsForEveryGauntletScenario)
{
    const auto dataset = TinyInteractions();
    const auto scenarios =
        scenario::GauntletScenarios(4000.0, 160, dataset.NumNodes(), 21);
    ASSERT_GE(scenarios.size(), 5u);

    for (const scenario::Scenario& s : scenarios) {
        for (const serve::ExecutorKind kind :
             {serve::ExecutorKind::kSerial, serve::ExecutorKind::kPipelined}) {
            SCOPED_TRACE(s.name + std::string(" / ") +
                         serve::ToString(kind));
            ServingObservability obs;
            const serve::ServingReport report =
                ServeScenario(s, dataset, kind, 160, &obs);

            // Every request has a record, and its six spans sum to the
            // end-to-end latency the report's histogram recorded.
            EXPECT_EQ(obs.Timeline().Count(), report.requests);
            EXPECT_LE(obs.Timeline().MaxConservationErrorUs(), 1e-6);

            // Spans are non-negative (monotone boundaries).
            for (const RequestRecord& rec : obs.Timeline().Records()) {
                for (const double span : rec.span_us) {
                    EXPECT_GE(span, 0.0);
                }
            }

            // The attributor saw every batch; windows cover every request.
            EXPECT_EQ(static_cast<int64_t>(obs.Attribution().Batches().size()),
                      report.batches);
            int64_t completions = 0;
            int64_t arrivals = 0;
            for (const WindowStats& w : obs.Windows().Windows()) {
                completions += w.completions;
                arrivals += w.arrivals;
            }
            EXPECT_EQ(completions, report.requests);
            EXPECT_EQ(arrivals, report.requests);
        }
    }
}

TEST(ObservabilityTest, AttachingAnObserverDoesNotPerturbTheSimulation)
{
    const auto dataset = TinyInteractions();
    const auto scenarios =
        scenario::GauntletScenarios(4000.0, 120, dataset.NumNodes(), 9);
    const scenario::Scenario& s = scenarios.front();

    for (const serve::ExecutorKind kind :
         {serve::ExecutorKind::kSerial, serve::ExecutorKind::kPipelined}) {
        SCOPED_TRACE(serve::ToString(kind));
        const serve::ServingReport bare =
            ServeScenario(s, dataset, kind, 120, nullptr);
        ServingObservability obs;
        const serve::ServingReport observed =
            ServeScenario(s, dataset, kind, 120, &obs);

        // Bit-identical simulation outcomes.
        EXPECT_EQ(bare.requests, observed.requests);
        EXPECT_EQ(bare.batches, observed.batches);
        EXPECT_EQ(bare.makespan_us, observed.makespan_us);
        EXPECT_EQ(bare.latency.Mean(), observed.latency.Mean());
        EXPECT_EQ(bare.latency.P99(), observed.latency.P99());
        EXPECT_EQ(bare.h2d_bytes, observed.h2d_bytes);
        EXPECT_EQ(bare.d2h_bytes, observed.d2h_bytes);
        EXPECT_EQ(bare.cache_stats.hits, observed.cache_stats.hits);
        EXPECT_EQ(bare.cache_stats.misses, observed.cache_stats.misses);
    }
}

TEST(ObservabilityTest, MetricsAgreeWithTheServingReport)
{
    const auto dataset = TinyInteractions();
    const auto scenarios =
        scenario::GauntletScenarios(4000.0, 120, dataset.NumNodes(), 9);
    ServingObservability obs;
    const serve::ServingReport report = ServeScenario(
        scenarios.front(), dataset, serve::ExecutorKind::kPipelined, 120,
        &obs);

    const Labels labels = {{"model", report.model},
                           {"mode", report.mode},
                           {"policy", report.policy},
                           {"executor", report.executor}};
    EXPECT_DOUBLE_EQ(
        obs.Metrics().CounterValue("dgnn_serve_requests_total", labels),
        static_cast<double>(report.requests));
    EXPECT_DOUBLE_EQ(
        obs.Metrics().CounterValue("dgnn_serve_completions_total", labels),
        static_cast<double>(report.requests));
    EXPECT_DOUBLE_EQ(
        obs.Metrics().CounterValue("dgnn_serve_batches_total", labels),
        static_cast<double>(report.batches));
    // The observer's batch-derived transfer counters reproduce the
    // runtime's serving-window PCIe accounting... up to the end-of-run
    // dirty flush, which is outside any batch; the sim-side counter
    // (cursor delta) includes it.
    EXPECT_DOUBLE_EQ(
        obs.Metrics().CounterValue("dgnn_sim_h2d_bytes_total", labels),
        static_cast<double>(report.h2d_bytes));
    EXPECT_DOUBLE_EQ(
        obs.Metrics().CounterValue("dgnn_sim_d2h_bytes_total", labels),
        static_cast<double>(report.d2h_bytes));
    EXPECT_DOUBLE_EQ(
        obs.Metrics().CounterValue("dgnn_cache_hit_rows_total", labels),
        static_cast<double>(report.cache_stats.hits));

    const core::RunningStat* batch_size =
        obs.Metrics().Summary("dgnn_serve_batch_size", labels);
    ASSERT_NE(batch_size, nullptr);
    EXPECT_EQ(batch_size->Count(), report.batches);
    EXPECT_DOUBLE_EQ(batch_size->Mean(), report.batch_size.Mean());

    EXPECT_EQ(obs.RunsObserved(), 1);
}

TEST(ObservabilityTest, MergedChromeTraceContainsAllLanes)
{
    const auto dataset = TinyInteractions();
    const auto scenarios =
        scenario::GauntletScenarios(4000.0, 60, dataset.NumNodes(), 9);
    ServingObservability obs;
    ServeScenario(scenarios.front(), dataset,
                  serve::ExecutorKind::kPipelined, 60, &obs);

    const std::string json = obs.MergedChromeTraceJson();
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_EQ(json.substr(json.size() - 2), "]}");
    // Device lanes (pid 1) and serving lanes (pid 2) both present.
    EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
    EXPECT_NE(json.find("\"pid\":2"), std::string::npos);
    EXPECT_NE(json.find("\"tid\":\"serve:compute\""), std::string::npos);
    EXPECT_NE(json.find("\"tid\":\"serve:requests\""), std::string::npos);
    // Balanced braces — cheap structural validity check.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

// ------------------------------------------- chrome-trace escaping (core)

TEST(ChromeTraceEscapingTest, HostileEventStringsAreEscaped)
{
    sim::Trace trace;
    sim::TraceEvent e;
    e.kind = sim::EventKind::kKernel;
    e.name = "evil\"name\\with\ncontrol";
    e.category = "cat\"egory";
    e.device = "dev\\ice";
    e.start_us = 1.0;
    e.end_us = 2.0;
    trace.Add(e);

    const std::string json = core::ToChromeTraceJson(trace);
    // The raw quote must never survive unescaped inside a JSON string.
    EXPECT_NE(json.find("evil\\\"name\\\\with\\ncontrol"), std::string::npos)
        << json;
    EXPECT_NE(json.find("cat\\\"egory"), std::string::npos);
    EXPECT_NE(json.find("dev\\\\ice"), std::string::npos);
    // Structural validity: balanced braces and quotes pair up.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace dgnn::obs
