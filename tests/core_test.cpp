// Tests for the profiling/bottleneck-analysis core (the paper's primary
// contribution): profiler, breakdown, trace analysis, bottleneck analyzers,
// table writer, Table-1 model registry.

#include <fstream>

#include <gtest/gtest.h>

#include "support/check.hpp"

#include <cstdio>

#include "core/bottleneck.hpp"
#include "core/breakdown.hpp"
#include "core/csv_writer.hpp"
#include "core/latency_histogram.hpp"
#include "core/model_summary.hpp"
#include "core/profiler.hpp"
#include "core/table_writer.hpp"
#include "core/trace_analysis.hpp"
#include "sim/runtime.hpp"

namespace dgnn::core {
namespace {

sim::Runtime
MakeRuntime(sim::ExecMode mode = sim::ExecMode::kHybrid)
{
    sim::RuntimeConfig c;
    c.mode = mode;
    return sim::Runtime(c);
}

sim::KernelDesc
Kernel(int64_t flops = 1000000, int64_t items = 1000)
{
    sim::KernelDesc k;
    k.name = "k";
    k.flops = flops;
    k.parallel_items = items;
    return k;
}

TEST(ProfilerTest, RangesNestAndTotal)
{
    sim::Runtime rt = MakeRuntime();
    Profiler prof(rt);
    {
        ProfileScope outer(prof, "outer");
        rt.RunHostFor("a", 10.0);
        {
            ProfileScope inner(prof, "inner");
            rt.RunHostFor("b", 5.0);
        }
    }
    ASSERT_EQ(prof.Ranges().size(), 2u);
    // Inner closes first.
    EXPECT_EQ(prof.Ranges()[0].name, "inner");
    EXPECT_DOUBLE_EQ(prof.Ranges()[0].Duration(), 5.0);
    EXPECT_EQ(prof.Ranges()[0].depth, 1);
    EXPECT_EQ(prof.Ranges()[1].name, "outer");
    EXPECT_DOUBLE_EQ(prof.Ranges()[1].Duration(), 15.0);
    EXPECT_EQ(prof.Ranges()[1].depth, 0);

    const auto totals = prof.RangeTotals();
    EXPECT_DOUBLE_EQ(totals.at("outer"), 15.0);
    EXPECT_EQ(prof.OpenDepth(), 0);
}

TEST(ProfilerTest, EndWithoutBeginThrows)
{
    sim::Runtime rt = MakeRuntime();
    Profiler prof(rt);
    EXPECT_THROW(prof.End(), Error);
    prof.Begin("open");
    EXPECT_THROW(prof.Clear(), Error);
    prof.End();
    prof.Clear();
    EXPECT_TRUE(prof.Ranges().empty());
}

TEST(BreakdownTest, SharesSumToHundred)
{
    sim::Runtime rt = MakeRuntime();
    rt.ResetMeasurementWindow();
    {
        sim::CategoryScope s(rt, "GNN");
        rt.RunHostFor("x", 60.0);
    }
    {
        sim::CategoryScope s(rt, "RNN");
        rt.RunHostFor("y", 40.0);
    }
    const Breakdown b = Breakdown::FromRuntime(rt);
    double total = 0.0;
    for (const auto& e : b.Entries()) {
        total += e.share_pct;
    }
    EXPECT_NEAR(total, 100.0, 1e-9);
    EXPECT_NEAR(b.SharePct("GNN"), 60.0, 1e-9);
    EXPECT_NEAR(b.TimeUs("RNN"), 40.0, 1e-9);
    EXPECT_DOUBLE_EQ(b.SharePct("absent"), 0.0);
    EXPECT_EQ(b.Categories().front(), "GNN");  // sorted by share
}

TEST(BreakdownTest, FoldsSmallCategories)
{
    sim::Runtime rt = MakeRuntime();
    rt.ResetMeasurementWindow();
    {
        sim::CategoryScope s(rt, "big");
        rt.RunHostFor("x", 99.5);
    }
    {
        sim::CategoryScope s(rt, "tiny");
        rt.RunHostFor("y", 0.5);
    }
    const Breakdown folded = Breakdown::FromRuntime(rt, true, 1.0);
    EXPECT_DOUBLE_EQ(folded.SharePct("tiny"), 0.0);
    EXPECT_GT(folded.SharePct("Others"), 0.0);
}

TEST(TraceAnalysisTest, UtilizationTimelineCoverage)
{
    sim::Runtime rt = MakeRuntime();
    rt.Launch(Kernel());
    (void)rt.Synchronize();
    const std::string gpu = rt.Gpu().Name();
    const auto timeline =
        UtilizationTimeline(rt.GetTrace(), gpu, 0.0, rt.Now(), rt.Now() / 4.0);
    ASSERT_GE(timeline.size(), 4u);
    double max_util = 0.0;
    for (const auto& s : timeline) {
        EXPECT_GE(s.utilization_pct, 0.0);
        EXPECT_LE(s.utilization_pct, 100.0);
        max_util = std::max(max_util, s.utilization_pct);
    }
    EXPECT_GT(max_util, 0.0);
    EXPECT_THROW(UtilizationTimeline(rt.GetTrace(), gpu, 0.0, 1.0, 0.0), Error);
}

TEST(TraceAnalysisTest, BusyAndTransferQueries)
{
    sim::Runtime rt = MakeRuntime();
    rt.Launch(Kernel());
    rt.CopyToDevice(1 << 20, "in");
    rt.CopyToHost(1 << 10, "out");
    (void)rt.Synchronize();
    const std::string gpu = rt.Gpu().Name();
    EXPECT_GT(DeviceBusyTime(rt.GetTrace(), gpu, 0.0, rt.Now()), 0.0);
    EXPECT_EQ(TransferredBytes(rt.GetTrace(), sim::CopyDirection::kHostToDevice, 0.0,
                               rt.Now()),
              1 << 20);
    EXPECT_EQ(TransferredBytes(rt.GetTrace(), sim::CopyDirection::kDeviceToHost, 0.0,
                               rt.Now()),
              1 << 10);
    EXPECT_GT(TransferBusyTime(rt.GetTrace(), 0.0, rt.Now()), 0.0);
    EXPECT_EQ(KernelCount(rt.GetTrace(), gpu, 0.0, rt.Now()), 1);
    EXPECT_GT(MeanKernelOccupancy(rt.GetTrace(), gpu, 0.0, rt.Now()), 0.0);
}

TEST(TraceAnalysisTest, ChromeTraceJsonWellFormed)
{
    sim::Runtime rt = MakeRuntime();
    rt.Launch(Kernel());
    (void)rt.Synchronize();
    const std::string json = ToChromeTraceJson(rt.GetTrace());
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(BottleneckTest, TemporalDependencySeverityForTinyKernels)
{
    sim::Runtime rt = MakeRuntime();
    rt.ResetMeasurementWindow();
    for (int i = 0; i < 20; ++i) {
        rt.Launch(Kernel(1000, 1));
        (void)rt.Synchronize();
        rt.RunHostFor("gap", 500.0);  // long CPU gaps -> low utilization
    }
    const TemporalDependencyReport r = AnalyzeTemporalDependency(rt);
    EXPECT_LT(r.compute_utilization_pct, 20.0);
    EXPECT_EQ(r.kernel_count, 20);
    EXPECT_GT(r.launch_overhead_share_pct, 0.0);
    EXPECT_NE(r.severity, Severity::kNone);
}

TEST(BottleneckTest, WorkloadImbalanceDetectsCpuBound)
{
    sim::Runtime rt = MakeRuntime();
    rt.ResetMeasurementWindow();
    rt.RunHostFor("sampling", 10000.0);
    rt.Launch(Kernel());
    (void)rt.Synchronize();
    const WorkloadImbalanceReport r = AnalyzeWorkloadImbalance(rt);
    EXPECT_GT(r.cpu_busy_us, r.gpu_busy_us);
    EXPECT_GT(r.imbalance_ratio, 1.5);
    EXPECT_NE(r.severity, Severity::kNone);
}

TEST(BottleneckTest, DataMovementShare)
{
    sim::Runtime rt = MakeRuntime();
    rt.ResetMeasurementWindow();
    rt.CopyToDevice(64 << 20, "big");
    rt.Launch(Kernel());
    (void)rt.Synchronize();
    const DataMovementReport r = AnalyzeDataMovement(rt);
    EXPECT_EQ(r.h2d_bytes, 64 << 20);
    EXPECT_GT(r.transfer_share_pct, 40.0);
    EXPECT_EQ(r.severity, Severity::kSevere);
}

TEST(BottleneckTest, WarmupRatioAndReportText)
{
    sim::Runtime rt = MakeRuntime();
    rt.EnsureWarm(1 << 20);
    rt.ResetMeasurementWindow();
    rt.Launch(Kernel());
    (void)rt.Synchronize();
    const BottleneckReport report =
        AnalyzeAll(rt, "TestModel", "bs=32", 12.0, 1000.0);
    EXPECT_GT(report.warmup.one_time_vs_iteration, 30.0);
    EXPECT_EQ(report.warmup.severity, Severity::kSevere);
    const std::string text = report.ToText();
    EXPECT_NE(text.find("TestModel"), std::string::npos);
    EXPECT_NE(text.find("temporal data dependency"), std::string::npos);
    EXPECT_NE(text.find("workload imbalance"), std::string::npos);
    EXPECT_NE(text.find("data movement"), std::string::npos);
    EXPECT_NE(text.find("GPU warm-up"), std::string::npos);
}

TEST(TableWriterTest, AlignmentAndContents)
{
    TableWriter t({"model", "time"});
    t.AddRow({"TGAT", TableWriter::Num(12.345, 1)});
    t.AddRow({"TGN", TableWriter::TimeWithShare(5.5, 49.6)});
    const std::string s = t.ToString();
    EXPECT_NE(s.find("| model"), std::string::npos);
    EXPECT_NE(s.find("12.3"), std::string::npos);
    EXPECT_NE(s.find("5.50 (50%)"), std::string::npos);
    EXPECT_EQ(t.RowCount(), 2u);
    EXPECT_THROW(t.AddRow({"only-one"}), Error);
    EXPECT_THROW(TableWriter({}), Error);
}

TEST(ModelSummaryTest, TableOneContents)
{
    const auto& all = AllModelSummaries();
    ASSERT_EQ(all.size(), 8u);
    // Paper Table 1 order and properties.
    EXPECT_EQ(all[0].name, "JODIE");
    EXPECT_EQ(all[0].type, DgnnType::kContinuous);
    EXPECT_TRUE(all[0].evolving_weights);
    EXPECT_FALSE(all[0].evolving_topology);

    const ModelSummary& egcn = FindModelSummary("EvolveGCN");
    EXPECT_EQ(egcn.type, DgnnType::kDiscrete);
    EXPECT_TRUE(egcn.evolving_topology);
    EXPECT_EQ(egcn.time_encoding, "RNN");

    const ModelSummary& ldg = FindModelSummary("LDG");
    EXPECT_TRUE(ldg.evolving_weights);

    EXPECT_THROW(FindModelSummary("NotAModel"), Error);
    EXPECT_STREQ(ToString(DgnnType::kDiscrete), "discrete");
}

TEST(CsvWriterTest, RendersHeaderAndRows)
{
    CsvWriter csv({"model", "time_ms"});
    csv.AddRow({"TGAT", "12.5"});
    csv.AddRow({"TGN", "3.25"});
    EXPECT_EQ(csv.ToString(), "model,time_ms\nTGAT,12.5\nTGN,3.25\n");
    EXPECT_EQ(csv.RowCount(), 2u);
}

TEST(CsvWriterTest, QuotesSpecialFields)
{
    CsvWriter csv({"a"});
    csv.AddRow({"has,comma"});
    csv.AddRow({"has\"quote"});
    const std::string out = csv.ToString();
    EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(CsvWriterTest, WidthMismatchAndEmptyHeaderThrow)
{
    CsvWriter csv({"a", "b"});
    EXPECT_THROW(csv.AddRow({"only-one"}), Error);
    EXPECT_THROW(CsvWriter({}), Error);
}

TEST(CsvWriterTest, WriteFileRoundTrip)
{
    CsvWriter csv({"x", "y"});
    csv.AddRow({"1", "2"});
    const std::string path = ::testing::TempDir() + "dgnn_csv_test.csv";
    csv.WriteFile(path);
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "x,y");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2");
    std::remove(path.c_str());
    EXPECT_THROW(csv.WriteFile("/nonexistent_dir_zz/f.csv"), Error);
}

TEST(ModelSummaryTest, ContinuousModelsCount)
{
    int continuous = 0;
    for (const auto& m : AllModelSummaries()) {
        if (m.type == DgnnType::kContinuous) {
            ++continuous;
        }
    }
    EXPECT_EQ(continuous, 5);  // JODIE, TGN, TGAT, DyRep, LDG
}

TEST(LatencyHistogramTest, ExactPercentilesOnUniformDistribution)
{
    LatencyHistogram h;
    for (int i = 1; i <= 1000; ++i) {
        h.Record(static_cast<double>(i));
    }
    EXPECT_EQ(h.Count(), 1000);
    EXPECT_DOUBLE_EQ(h.Min(), 1.0);
    EXPECT_DOUBLE_EQ(h.Max(), 1000.0);
    EXPECT_DOUBLE_EQ(h.Mean(), 500.5);
    // Quantiles within the 1% bucket resolution of the exact order stats.
    EXPECT_NEAR(h.P50(), 500.0, 500.0 * 0.011);
    EXPECT_NEAR(h.P90(), 900.0, 900.0 * 0.011);
    EXPECT_NEAR(h.P99(), 990.0, 990.0 * 0.011);
    // Extremes are exact, not bucket-rounded.
    EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1000.0);
}

TEST(LatencyHistogramTest, ExactPercentilesOnPointMassAndBimodal)
{
    // Point mass: every quantile is the single value.
    LatencyHistogram point;
    for (int i = 0; i < 100; ++i) {
        point.Record(42.0);
    }
    EXPECT_DOUBLE_EQ(point.P50(), 42.0);
    EXPECT_DOUBLE_EQ(point.P99(), 42.0);
    EXPECT_DOUBLE_EQ(point.Max(), 42.0);

    // Bimodal 90/10 mix: p50 sits on the low mode, p99 on the high one.
    LatencyHistogram mix;
    for (int i = 0; i < 90; ++i) {
        mix.Record(10.0);
    }
    for (int i = 0; i < 10; ++i) {
        mix.Record(10000.0);
    }
    EXPECT_NEAR(mix.P50(), 10.0, 10.0 * 0.011);
    EXPECT_NEAR(mix.Quantile(0.95), 10000.0, 10000.0 * 0.011);
}

TEST(LatencyHistogramTest, CountsOverflowsAboveTheCeiling)
{
    LatencyHistogram h(1.0, 1000.0, 1.5);
    h.Record(10.0);
    h.Record(999.0);
    EXPECT_EQ(h.OverflowCount(), 0);

    // Samples beyond max_value_us still clamp into the top bucket (the
    // quantile path is unchanged), but the truncation is now counted — a
    // non-zero OverflowCount flags a p99 biased low under saturation.
    h.Record(5000.0);
    h.Record(1e9);
    EXPECT_EQ(h.OverflowCount(), 2);
    EXPECT_EQ(h.Count(), 4);
    EXPECT_DOUBLE_EQ(h.Max(), 1e9);  // exact max still tracked on the side

    // Merge accumulates overflow counts too.
    LatencyHistogram other(1.0, 1000.0, 1.5);
    other.Record(2000.0);
    h.Merge(other);
    EXPECT_EQ(h.OverflowCount(), 3);
    EXPECT_EQ(h.Count(), 5);
}

TEST(LatencyHistogramTest, EmptyHistogramBehaviour)
{
    LatencyHistogram h;
    EXPECT_TRUE(h.Empty());
    EXPECT_EQ(h.Count(), 0);
    EXPECT_DOUBLE_EQ(h.Min(), 0.0);
    EXPECT_DOUBLE_EQ(h.Max(), 0.0);
    EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.P50(), 0.0);
    EXPECT_DOUBLE_EQ(h.P99(), 0.0);
    EXPECT_THROW(h.Quantile(1.5), Error);
    EXPECT_THROW(h.Quantile(-0.1), Error);
}

TEST(LatencyHistogramTest, MergeMatchesCombinedRecording)
{
    LatencyHistogram low;
    LatencyHistogram high;
    LatencyHistogram combined;
    for (int i = 1; i <= 500; ++i) {
        low.Record(static_cast<double>(i));
        combined.Record(static_cast<double>(i));
    }
    for (int i = 501; i <= 1000; ++i) {
        high.Record(static_cast<double>(i));
        combined.Record(static_cast<double>(i));
    }

    low.Merge(high);
    EXPECT_EQ(low.Count(), combined.Count());
    EXPECT_DOUBLE_EQ(low.Min(), combined.Min());
    EXPECT_DOUBLE_EQ(low.Max(), combined.Max());
    EXPECT_DOUBLE_EQ(low.Mean(), combined.Mean());
    for (const double q : {0.1, 0.5, 0.9, 0.99}) {
        EXPECT_DOUBLE_EQ(low.Quantile(q), combined.Quantile(q));
    }

    // Merging an empty histogram changes nothing.
    const double p99_before = low.P99();
    low.Merge(LatencyHistogram());
    EXPECT_DOUBLE_EQ(low.P99(), p99_before);

    // Layout mismatch is an error.
    LatencyHistogram other_layout(1.0, 100.0, 1.5);
    EXPECT_THROW(low.Merge(other_layout), Error);
}

TEST(LatencyHistogramTest, MergePreservesTotalsWithOverflowAndEmpties)
{
    // Conservation under every merge direction: Count, OverflowCount, and
    // the sample sum (via Mean * Count) must all be additive — including
    // when one side is empty or both sides clamp samples above the ceiling.
    LatencyHistogram a(1.0, 1000.0, 1.5);
    a.Record(5.0);
    a.Record(700.0);
    a.Record(4000.0);  // overflow
    LatencyHistogram b(1.0, 1000.0, 1.5);
    b.Record(30.0);
    b.Record(2e6);  // overflow
    b.Record(9e6);  // overflow
    const double sum_a = a.Mean() * static_cast<double>(a.Count());
    const double sum_b = b.Mean() * static_cast<double>(b.Count());

    // Empty into non-empty: a no-op on every total.
    a.Merge(LatencyHistogram(1.0, 1000.0, 1.5));
    EXPECT_EQ(a.Count(), 3);
    EXPECT_EQ(a.OverflowCount(), 1);
    EXPECT_DOUBLE_EQ(a.Mean() * 3.0, sum_a);

    // Non-empty into empty: the empty side adopts a's totals exactly.
    LatencyHistogram adopted(1.0, 1000.0, 1.5);
    adopted.Merge(a);
    EXPECT_EQ(adopted.Count(), 3);
    EXPECT_EQ(adopted.OverflowCount(), 1);
    EXPECT_DOUBLE_EQ(adopted.Min(), a.Min());
    EXPECT_DOUBLE_EQ(adopted.Max(), a.Max());
    EXPECT_DOUBLE_EQ(adopted.Mean(), a.Mean());
    EXPECT_DOUBLE_EQ(adopted.P99(), a.P99());

    // Empty into empty stays empty.
    LatencyHistogram still_empty(1.0, 1000.0, 1.5);
    still_empty.Merge(LatencyHistogram(1.0, 1000.0, 1.5));
    EXPECT_TRUE(still_empty.Empty());
    EXPECT_EQ(still_empty.OverflowCount(), 0);

    // Overflow counts and sums are additive across a real merge.
    a.Merge(b);
    EXPECT_EQ(a.Count(), 6);
    EXPECT_EQ(a.OverflowCount(), 3);
    EXPECT_DOUBLE_EQ(a.Mean() * 6.0, sum_a + sum_b);
    EXPECT_DOUBLE_EQ(a.Min(), 5.0);
    EXPECT_DOUBLE_EQ(a.Max(), 9e6);
}

TEST(RunningStatTest, TracksMinMeanMaxAndMerges)
{
    RunningStat s;
    EXPECT_EQ(s.Count(), 0);
    EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
    s.Record(4.0);
    s.Record(8.0);
    s.Record(6.0);
    EXPECT_EQ(s.Count(), 3);
    EXPECT_DOUBLE_EQ(s.Min(), 4.0);
    EXPECT_DOUBLE_EQ(s.Max(), 8.0);
    EXPECT_DOUBLE_EQ(s.Mean(), 6.0);

    RunningStat t;
    t.Record(100.0);
    s.Merge(t);
    EXPECT_EQ(s.Count(), 4);
    EXPECT_DOUBLE_EQ(s.Max(), 100.0);
    EXPECT_DOUBLE_EQ(s.Mean(), 29.5);
}

TEST(RunningStatTest, WelfordVarianceMatchesTheTwoPassFormula)
{
    const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    RunningStat s;
    for (const double v : values) {
        s.Record(v);
    }
    // Textbook population variance of this series is exactly 4.
    EXPECT_DOUBLE_EQ(s.Variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.StdDev(), 2.0);

    // Welford stays stable when the mean dwarfs the spread — the naive
    // sum-of-squares formula loses all significant digits here.
    RunningStat shifted;
    for (const double v : values) {
        shifted.Record(v + 1e9);
    }
    EXPECT_NEAR(shifted.Variance(), 4.0, 1e-4);
}

TEST(RunningStatTest, VarianceEdgeCases)
{
    RunningStat s;
    EXPECT_DOUBLE_EQ(s.Variance(), 0.0);  // empty
    EXPECT_DOUBLE_EQ(s.StdDev(), 0.0);
    s.Record(42.0);
    EXPECT_DOUBLE_EQ(s.Variance(), 0.0);  // one sample
    s.Record(42.0);
    EXPECT_DOUBLE_EQ(s.Variance(), 0.0);  // no spread
}

TEST(RunningStatTest, MergeReducesSplitStreamsToTheCombinedMoments)
{
    // Split one series arbitrarily; merged moments must equal the
    // single-stream moments (the Chan et al. parallel combination).
    const std::vector<double> values = {1.0, 5.0, 2.5, 8.0, 3.0, 9.5, 4.0};
    RunningStat whole;
    for (const double v : values) {
        whole.Record(v);
    }
    RunningStat left;
    RunningStat right;
    for (size_t i = 0; i < values.size(); ++i) {
        (i < 3 ? left : right).Record(values[i]);
    }
    left.Merge(right);
    EXPECT_EQ(left.Count(), whole.Count());
    EXPECT_DOUBLE_EQ(left.Mean(), whole.Mean());
    EXPECT_NEAR(left.Variance(), whole.Variance(), 1e-12);
    EXPECT_DOUBLE_EQ(left.Min(), whole.Min());
    EXPECT_DOUBLE_EQ(left.Max(), whole.Max());
}

TEST(RunningStatTest, MergeEmptyAndSingleSampleCases)
{
    RunningStat empty;
    RunningStat loaded;
    loaded.Record(3.0);
    loaded.Record(7.0);

    // Merging an empty stat is a no-op.
    RunningStat a = loaded;
    a.Merge(empty);
    EXPECT_EQ(a.Count(), 2);
    EXPECT_DOUBLE_EQ(a.Variance(), loaded.Variance());

    // Merging INTO an empty stat adopts the other side wholesale.
    RunningStat b;
    b.Merge(loaded);
    EXPECT_EQ(b.Count(), 2);
    EXPECT_DOUBLE_EQ(b.Mean(), 5.0);
    EXPECT_DOUBLE_EQ(b.Variance(), 4.0);

    // One-sample merges: variance emerges purely from the cross term.
    RunningStat one;
    one.Record(10.0);
    RunningStat other;
    other.Record(20.0);
    one.Merge(other);
    EXPECT_EQ(one.Count(), 2);
    EXPECT_DOUBLE_EQ(one.Mean(), 15.0);
    EXPECT_DOUBLE_EQ(one.Variance(), 25.0);
}

}  // namespace
}  // namespace dgnn::core
