// Cross-model integration tests: the qualitative *shapes* the paper reports
// must emerge from the simulator — who wins CPU vs GPU, which phase
// dominates, how utilization trends with batch size / neighbor count.

#include <gtest/gtest.h>

#include "core/bottleneck.hpp"
#include "models/astgnn.hpp"
#include "models/dyrep.hpp"
#include "models/evolvegcn.hpp"
#include "models/jodie.hpp"
#include "models/ldg.hpp"
#include "models/moldgnn.hpp"
#include "models/tgat.hpp"
#include "models/tgn.hpp"

namespace dgnn::models {
namespace {

RunConfig
MakeRun(sim::ExecMode mode, int64_t batch, int64_t neighbors = 8)
{
    RunConfig run;
    run.mode = mode;
    run.batch_size = batch;
    run.num_neighbors = neighbors;
    run.numeric_cap = 4;  // integration tests exercise timing, not math
    return run;
}

data::InteractionDataset
MidInteractions(int64_t events = 2000)
{
    data::InteractionSpec spec;
    spec.name = "mid";
    spec.num_users = 300;
    spec.num_items = 100;
    spec.num_events = events;
    spec.edge_feature_dim = 32;
    spec.seed = 15;
    return data::GenerateInteractions(spec);
}

TEST(SpeedupShapes, DyRepGpuSlowerThanCpu)
{
    // Fig 8(c): GPU speedup < 1 for all batch sizes.
    data::PointProcessSpec spec = data::PointProcessSpec::SocialEvolutionLike();
    spec.num_events = 300;
    const auto ds = data::GeneratePointProcess(spec);

    DyRep gpu_model(ds, DyRepConfig{});
    sim::Runtime gpu_rt = MakeRuntime(sim::ExecMode::kHybrid);
    const RunResult gpu = gpu_model.RunInference(gpu_rt, MakeRun(sim::ExecMode::kHybrid, 32));

    DyRep cpu_model(ds, DyRepConfig{});
    sim::Runtime cpu_rt = MakeRuntime(sim::ExecMode::kCpuOnly);
    const RunResult cpu =
        cpu_model.RunInference(cpu_rt, MakeRun(sim::ExecMode::kCpuOnly, 32));

    const double speedup = cpu.total_us / gpu.total_us;
    EXPECT_LT(speedup, 1.0);
    EXPECT_GT(speedup, 0.2);  // slower, but not absurdly so
}

TEST(SpeedupShapes, LdgGpuSlowerThanCpu)
{
    // Fig 8(d).
    data::PointProcessSpec spec = data::PointProcessSpec::SocialEvolutionLike();
    spec.num_events = 300;
    const auto ds = data::GeneratePointProcess(spec);

    Ldg gpu_model(ds, LdgConfig{});
    sim::Runtime gpu_rt = MakeRuntime(sim::ExecMode::kHybrid);
    const RunResult gpu = gpu_model.RunInference(gpu_rt, MakeRun(sim::ExecMode::kHybrid, 32));

    Ldg cpu_model(ds, LdgConfig{});
    sim::Runtime cpu_rt = MakeRuntime(sim::ExecMode::kCpuOnly);
    const RunResult cpu =
        cpu_model.RunInference(cpu_rt, MakeRun(sim::ExecMode::kCpuOnly, 32));

    EXPECT_LT(cpu.total_us / gpu.total_us, 1.0);
}

TEST(SpeedupShapes, TgnSpeedupGrowsWithBatchSize)
{
    // Fig 8(b): TGN's GPU advantage grows with batch size.
    const auto ds = MidInteractions(4000);
    std::vector<double> speedups;
    for (const int64_t batch : {16, 256, 4000}) {
        Tgn gpu_model(ds, TgnConfig{});
        sim::Runtime gpu_rt = MakeRuntime(sim::ExecMode::kHybrid);
        const RunResult gpu =
            gpu_model.RunInference(gpu_rt, MakeRun(sim::ExecMode::kHybrid, batch));

        Tgn cpu_model(ds, TgnConfig{});
        sim::Runtime cpu_rt = MakeRuntime(sim::ExecMode::kCpuOnly);
        const RunResult cpu =
            cpu_model.RunInference(cpu_rt, MakeRun(sim::ExecMode::kCpuOnly, batch));
        speedups.push_back(cpu.total_us / gpu.total_us);
    }
    // The GPU advantage at the largest batch clearly exceeds the smallest
    // batch (the paper's Fig 8(b) trend), and large batches do win.
    EXPECT_GT(speedups.back(), 1.2 * speedups.front());
    EXPECT_GT(speedups.back(), 1.0);
}

TEST(SpeedupShapes, TgatSpeedupFlatWithBatchSize)
{
    // Fig 8(a): TGAT inference time barely improves with mini-batch size
    // because CPU-side sampling congests the pipeline.
    const auto ds = MidInteractions(3000);
    std::vector<double> speedups;
    for (const int64_t batch : {100, 300, 1000}) {
        Tgat gpu_model(ds, TgatConfig{});
        sim::Runtime gpu_rt = MakeRuntime(sim::ExecMode::kHybrid);
        const RunResult gpu =
            gpu_model.RunInference(gpu_rt, MakeRun(sim::ExecMode::kHybrid, batch, 10));

        Tgat cpu_model(ds, TgatConfig{});
        sim::Runtime cpu_rt = MakeRuntime(sim::ExecMode::kCpuOnly);
        const RunResult cpu =
            cpu_model.RunInference(cpu_rt, MakeRun(sim::ExecMode::kCpuOnly, batch, 10));
        speedups.push_back(cpu.total_us / gpu.total_us);
    }
    // Flat: max/min within 2x across a 10x batch sweep.
    const auto [lo, hi] = std::minmax_element(speedups.begin(), speedups.end());
    EXPECT_LT(*hi / *lo, 2.0);
}

TEST(BottleneckShapes, TgatSamplingDominatesInference)
{
    // Fig 7(e-h): neighborhood sampling takes the majority of TGAT time.
    const auto ds = MidInteractions(2000);
    Tgat model(ds, TgatConfig{});
    sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
    const RunResult r = model.RunInference(rt, MakeRun(sim::ExecMode::kHybrid, 200, 20));
    EXPECT_GT(r.breakdown.SharePct("Sampling (CPU)"), 40.0);
}

TEST(BottleneckShapes, MolDgnnMemoryCopyDominates)
{
    // Fig 7(b): memory copy is ~80-90% of MolDGNN time at any batch size.
    data::MolecularSpec spec = data::MolecularSpec::Iso17Like();
    spec.num_frames = 256;
    const auto ds = data::GenerateMolecular(spec);
    for (const int64_t batch : {16, 64, 256}) {
        MolDgnn model(ds, MolDgnnConfig{});
        sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
        const RunResult r =
            model.RunInference(rt, MakeRun(sim::ExecMode::kHybrid, batch));
        EXPECT_GT(r.breakdown.SharePct("Memory Copy"), 50.0)
            << "batch " << batch;
    }
}

TEST(BottleneckShapes, TgnUtilizationDecreasesWithBatchSize)
{
    // Fig 6(c): endpoints of the batch sweep — small batches keep the GPU
    // visibly busier than huge transfer-bound batches. Needs a Wikipedia-
    // scale node pool so large batches actually coalesce memory updates.
    data::InteractionSpec spec = data::InteractionSpec::WikipediaLike(4000);
    const auto ds = data::GenerateInteractions(spec);
    std::vector<double> utils;
    for (const int64_t batch : {32, 4000}) {
        Tgn model(ds, TgnConfig{});
        sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
        const RunResult r =
            model.RunInference(rt, MakeRun(sim::ExecMode::kHybrid, batch));
        utils.push_back(r.compute_utilization_pct);
    }
    EXPECT_GT(utils.front(), 1.3 * utils.back());
}

TEST(BottleneckShapes, TgnMemoryGrowsWithBatchSize)
{
    // Fig 6(c) second series: peak memory rises with batch size.
    const auto ds = MidInteractions(4000);
    int64_t prev_mem = 0;
    for (const int64_t batch : {32, 512, 4000}) {
        Tgn model(ds, TgnConfig{});
        sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
        const RunResult r =
            model.RunInference(rt, MakeRun(sim::ExecMode::kHybrid, batch));
        EXPECT_GE(r.compute_peak_bytes, prev_mem);
        prev_mem = r.compute_peak_bytes;
    }
}

TEST(BottleneckShapes, TgatUtilizationGrowsWithNeighborCount)
{
    // Fig 6(a): more sampled neighbors -> more GPU work per sampled byte.
    const auto ds = MidInteractions(2000);
    double prev_util = 0.0;
    for (const int64_t k : {10, 50, 200}) {
        Tgat model(ds, TgatConfig{});
        sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
        const RunResult r =
            model.RunInference(rt, MakeRun(sim::ExecMode::kHybrid, 200, k));
        EXPECT_GT(r.compute_utilization_pct, prev_util) << "k=" << k;
        prev_util = r.compute_utilization_pct;
    }
}

TEST(BottleneckShapes, LowGpuUtilizationAcrossSequentialModels)
{
    // Section 4.1: EvolveGCN / MolDGNN < 1%, JODIE ~1.5-2.5%, DyRep < 2%.
    {
        const auto ds = data::GenerateSnapshots(data::SnapshotSpec::SbmLike());
        EvolveGcn model(ds, EvolveGcnConfig{});
        sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
        const RunResult r = model.RunInference(rt, MakeRun(sim::ExecMode::kHybrid, 1));
        EXPECT_LT(r.compute_utilization_pct, 30.0);
    }
    {
        data::PointProcessSpec spec = data::PointProcessSpec::SocialEvolutionLike();
        spec.num_events = 200;
        const auto ds = data::GeneratePointProcess(spec);
        DyRep model(ds, DyRepConfig{});
        sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
        const RunResult r = model.RunInference(rt, MakeRun(sim::ExecMode::kHybrid, 1));
        EXPECT_LT(r.compute_utilization_pct, 10.0);
    }
}

TEST(WarmupShapes, OneTimeWarmupManyIterationsOfInference)
{
    // Section 4.4: warm-up is 33x - 86x one mini-batch of inference.
    const auto ds = MidInteractions(2000);
    Tgat model(ds, TgatConfig{});
    sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
    const RunResult r = model.RunInference(rt, MakeRun(sim::ExecMode::kHybrid, 200, 20));
    const double ratio = r.warmup_one_time_us / r.per_iteration_us;
    EXPECT_GT(ratio, 10.0);
}

TEST(WarmupShapes, WarmupShareGrowsWithBatchSize)
{
    // Table 2: per-run warm-up share of GPU working time grows with batch.
    data::MolecularSpec spec = data::MolecularSpec::Iso17Like();
    spec.num_frames = 512;
    const auto ds = data::GenerateMolecular(spec);
    double prev_share = 0.0;
    for (const int64_t batch : {8, 128, 512}) {
        MolDgnn model(ds, MolDgnnConfig{});
        sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
        const RunResult r =
            model.RunInference(rt, MakeRun(sim::ExecMode::kHybrid, batch));
        const double share =
            r.warmup_per_run_us / (r.warmup_per_run_us + r.compute_busy_us);
        EXPECT_GT(share, prev_share) << "batch " << batch;
        prev_share = share;
    }
}

TEST(BottleneckReportIntegration, FullReportForTgn)
{
    const auto ds = MidInteractions(1000);
    Tgn model(ds, TgnConfig{});
    sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
    const RunResult r = model.RunInference(rt, MakeRun(sim::ExecMode::kHybrid, 128));
    const core::BottleneckReport report = core::AnalyzeAll(
        rt, r.model, "bs=128", r.warmup_per_run_us, r.per_iteration_us);
    EXPECT_EQ(report.model, "TGN");
    EXPECT_GT(report.elapsed_us, 0.0);
    EXPECT_GT(report.data_movement.h2d_bytes, 0);
    EXPECT_GT(report.temporal_dependency.kernel_count, 0);
    EXPECT_FALSE(report.ToText().empty());
}

}  // namespace
}  // namespace dgnn::models
