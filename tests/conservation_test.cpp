// Cross-cutting conservation laws, parameterized over every model and both
// execution modes. Whatever a model does, the simulator's invariants must
// hold: category times partition elapsed time, device busy time never
// exceeds elapsed, trace events stay inside the run window and ordered per
// stream, transfer byte counters match the trace, and checksums are finite.

#include <cmath>
#include <functional>
#include <memory>

#include <gtest/gtest.h>

#include "core/trace_analysis.hpp"
#include "models/astgnn.hpp"
#include "models/dyrep.hpp"
#include "models/evolvegcn.hpp"
#include "models/jodie.hpp"
#include "models/ldg.hpp"
#include "models/moldgnn.hpp"
#include "models/tgat.hpp"
#include "models/tgn.hpp"

namespace dgnn::models {
namespace {

/// A named model factory bound to its own dataset lifetime.
struct ModelCase {
    std::string name;
    std::function<std::unique_ptr<DgnnModel>()> make;
};

/// Shared datasets (constructed once; factories capture by reference).
struct Fixtures {
    data::InteractionDataset interactions = data::GenerateInteractions([] {
        data::InteractionSpec spec;
        spec.num_users = 60;
        spec.num_items = 30;
        spec.num_events = 300;
        spec.edge_feature_dim = 16;
        spec.seed = 33;
        return spec;
    }());
    data::SnapshotDataset snapshots = data::GenerateSnapshots([] {
        data::SnapshotSpec spec;
        spec.num_nodes = 80;
        spec.num_steps = 5;
        spec.edges_per_step = 400;
        spec.node_feature_dim = 16;
        spec.seed = 34;
        return spec;
    }());
    data::TrafficDataset traffic = data::GenerateTraffic([] {
        data::TrafficSpec spec;
        spec.num_sensors = 20;
        spec.num_timesteps = 60;
        spec.seed = 35;
        return spec;
    }());
    data::MolecularDataset molecular = data::GenerateMolecular([] {
        data::MolecularSpec spec;
        spec.num_frames = 48;
        spec.seed = 36;
        return spec;
    }());
    data::PointProcessDataset point_process = data::GeneratePointProcess([] {
        data::PointProcessSpec spec;
        spec.num_actors = 20;
        spec.num_events = 80;
        spec.seed = 37;
        return spec;
    }());
};

Fixtures&
SharedFixtures()
{
    static Fixtures fixtures;
    return fixtures;
}

std::vector<ModelCase>
AllModelCases()
{
    Fixtures& f = SharedFixtures();
    return {
        {"JODIE",
         [&f] { return std::make_unique<Jodie>(f.interactions, JodieConfig{16, 13, true}); }},
        {"TGN",
         [&f] { return std::make_unique<Tgn>(f.interactions, TgnConfig{16, 16, 2, 11}); }},
        {"TGAT",
         [&f] { return std::make_unique<Tgat>(f.interactions, TgatConfig{16, 2, 1, 4, 7, false}); }},
        {"EvolveGCN-O",
         [&f] {
             return std::make_unique<EvolveGcn>(
                 f.snapshots, EvolveGcnConfig{EvolveGcnVariant::kO, 16, 17});
         }},
        {"EvolveGCN-H",
         [&f] {
             return std::make_unique<EvolveGcn>(
                 f.snapshots, EvolveGcnConfig{EvolveGcnVariant::kH, 16, 17});
         }},
        {"ASTGNN",
         [&f] { return std::make_unique<Astgnn>(f.traffic, AstgnnConfig{8, 2, 1, 1, 23}); }},
        {"MolDGNN",
         [&f] { return std::make_unique<MolDgnn>(f.molecular, MolDgnnConfig{8, 16, 19}); }},
        {"DyRep",
         [&f] { return std::make_unique<DyRep>(f.point_process, DyRepConfig{8, 3, 29}); }},
        {"LDG",
         [&f] {
             return std::make_unique<Ldg>(f.point_process,
                                          LdgConfig{LdgEncoder::kMlp, 8, 4, 3, 31});
         }},
    };
}

struct CaseParam {
    size_t case_index;
    sim::ExecMode mode;
};

std::string
ParamName(const ::testing::TestParamInfo<CaseParam>& info)
{
    std::string name = AllModelCases()[info.param.case_index].name;
    for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) {
            c = '_';
        }
    }
    return name + "_" + sim::ToString(info.param.mode);
}

class ConservationLaws : public ::testing::TestWithParam<CaseParam> {};

TEST_P(ConservationLaws, HoldForEveryModelAndMode)
{
    const CaseParam param = GetParam();
    const ModelCase model_case = AllModelCases()[param.case_index];

    auto model = model_case.make();
    sim::Runtime rt = MakeRuntime(param.mode);
    RunConfig run;
    run.mode = param.mode;
    run.batch_size = 16;
    run.num_neighbors = 4;
    const RunResult r = model->RunInference(rt, run);

    // 1. The run did something and the clock moved forward.
    EXPECT_GT(r.total_us, 0.0);
    EXPECT_GT(r.iterations, 0);
    EXPECT_TRUE(std::isfinite(r.output_checksum));

    // 2. Category times partition elapsed window time exactly.
    double category_total = 0.0;
    for (const auto& [name, t] : rt.CategoryTimes()) {
        EXPECT_GE(t, 0.0) << name;
        category_total += t;
    }
    EXPECT_NEAR(category_total, rt.ElapsedInWindow(),
                1e-6 * std::max(1.0, rt.ElapsedInWindow()));

    // 3. Breakdown shares sum to 100 %.
    double share_total = 0.0;
    for (const auto& e : r.breakdown.Entries()) {
        share_total += e.share_pct;
    }
    EXPECT_NEAR(share_total, 100.0, 1e-6);

    // 4. Device busy time cannot exceed elapsed time (single stream).
    EXPECT_LE(rt.ComputeDevice().BusyTime(), rt.ElapsedInWindow() + 1e-6);
    EXPECT_LE(rt.ComputeDevice().WeightedBusyTime(),
              rt.ComputeDevice().BusyTime() + 1e-6);

    // 5. Trace events live inside [0, Now] with non-negative durations,
    //    and kernel events never overlap (one compute stream).
    sim::SimTime prev_kernel_end = 0.0;
    for (const sim::TraceEvent& e : rt.GetTrace().Events()) {
        EXPECT_GE(e.start_us, 0.0);
        EXPECT_LE(e.end_us, rt.Now() + 1e-6);
        EXPECT_GE(e.Duration(), -1e-9);
        if (e.kind == sim::EventKind::kKernel) {
            EXPECT_GE(e.start_us, prev_kernel_end - 1e-6);
            prev_kernel_end = e.end_us;
            EXPECT_GE(e.occupancy, 0.0);
            EXPECT_LE(e.occupancy, 1.0);
        }
    }

    // 6. Transfer counters agree with the trace.
    const int64_t h2d = core::TransferredBytes(
        rt.GetTrace(), sim::CopyDirection::kHostToDevice, rt.MeasureStart(),
        rt.Now() + 1.0);
    const int64_t d2h = core::TransferredBytes(
        rt.GetTrace(), sim::CopyDirection::kDeviceToHost, rt.MeasureStart(),
        rt.Now() + 1.0);
    EXPECT_EQ(h2d, r.h2d_bytes);
    EXPECT_EQ(d2h, r.d2h_bytes);

    // 7. CPU-only runs move no bytes and leave GPU memory untouched.
    if (param.mode == sim::ExecMode::kCpuOnly) {
        EXPECT_EQ(r.h2d_bytes, 0);
        EXPECT_EQ(r.d2h_bytes, 0);
        EXPECT_DOUBLE_EQ(rt.SyncWaitTime(), 0.0);
    } else {
        // 8. Hybrid runs allocated device memory and it was tracked.
        EXPECT_GT(rt.Gpu().Memory().PeakBytes(), 0);
    }

    // 9. No memory leaks: after the model's buffers go out of scope inside
    //    RunInference, only long-lived buffers (weights/state) may remain;
    //    live never exceeds peak.
    EXPECT_LE(rt.ComputeDevice().Memory().LiveBytes(),
              rt.ComputeDevice().Memory().PeakBytes());
}

std::vector<CaseParam>
AllParams()
{
    std::vector<CaseParam> params;
    for (size_t i = 0; i < AllModelCases().size(); ++i) {
        params.push_back({i, sim::ExecMode::kHybrid});
        params.push_back({i, sim::ExecMode::kCpuOnly});
    }
    return params;
}

INSTANTIATE_TEST_SUITE_P(AllModels, ConservationLaws,
                         ::testing::ValuesIn(AllParams()), ParamName);

}  // namespace
}  // namespace dgnn::models
