// Tests for src/shard/ and the sim topology layer underneath it.
//
// Four layers:
//   * topology unit checks: scale-out construction, peer-link lookup, and
//     the 1-device bit-identity contract (a topology-carrying runtime must
//     reproduce the historical single-pair runtime exactly);
//   * partition-book suite: round-trip serialization, seed determinism,
//     exactly-one-shard coverage, balance bounds, edge-cut accounting
//     against hand-computed cuts, and greedy-beats-hash on clustered
//     graphs;
//   * exchange-hook unit checks: claim/plan splitting, peer-link pricing,
//     and the zero-runtime-ops guarantee of an empty claim;
//   * sharded serving: 1-shard bit-identity against the plain serving
//     path, sustained-QPS scaling with shard count, hazard-freedom of the
//     exchange schedule under the checker, and detection of a deleted
//     exchange fence in the REAL serving path.

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "analysis/hazard_checker.hpp"
#include "data/temporal_interactions.hpp"
#include "models/tgn.hpp"
#include "scenario/scenario.hpp"
#include "serve/batch_policy.hpp"
#include "serve/server.hpp"
#include "shard/exchange.hpp"
#include "shard/partition_book.hpp"
#include "shard/sharded_server.hpp"
#include "sim/topology.hpp"

namespace dgnn::shard {
namespace {

// ----------------------------------------------------------------- topology

TEST(TopologyTest, SinglePairHasOneDefaultNode)
{
    const sim::Topology t = sim::Topology::SinglePair();
    EXPECT_EQ(t.DeviceCount(), 1);
    EXPECT_EQ(t.NodeAt(0).host_link.kind, sim::LinkKind::kPcie);
}

TEST(TopologyTest, ScaleOutWiresEveryPeerPair)
{
    const sim::Topology t =
        sim::Topology::ScaleOut(4, sim::LinkSpec::NvlinkClass());
    EXPECT_EQ(t.DeviceCount(), 4);
    for (int32_t i = 0; i < 4; ++i) {
        for (int32_t j = 0; j < 4; ++j) {
            if (i == j) {
                continue;
            }
            const sim::LinkSpec& link = t.PeerLink(i, j);
            EXPECT_EQ(link.kind, sim::LinkKind::kNvlink);
            EXPECT_DOUBLE_EQ(link.bandwidth_gbps, 80.0);
        }
    }
}

TEST(TopologyTest, AddNodePreservesExistingPeerLinks)
{
    sim::Topology t = sim::Topology::ScaleOut(2, sim::LinkSpec::NvlinkClass());
    t.AddNode(sim::TopologyNode{});
    EXPECT_EQ(t.DeviceCount(), 3);
    EXPECT_EQ(t.PeerLink(0, 1).kind, sim::LinkKind::kNvlink);
    // Fresh links to the new node default to PCIe.
    EXPECT_EQ(t.PeerLink(0, 2).kind, sim::LinkKind::kPcie);
}

TEST(TopologyTest, OneDeviceTopologyRuntimeIsBitIdentical)
{
    auto drive = [](sim::Runtime& rt) {
        (void)rt.CopyToDeviceAsync(1 << 20, "h2d");
        const sim::Event ready = rt.RecordEvent(sim::StreamId::kCopy);
        rt.StreamWaitEvent(sim::StreamId::kCompute, ready);
        sim::KernelDesc k;
        k.name = "work";
        k.flops = 1 << 22;
        k.bytes = 1 << 21;
        k.parallel_items = 1 << 16;
        rt.Launch(k);
        return rt.Synchronize();
    };
    sim::RuntimeConfig plain;
    plain.mode = sim::ExecMode::kHybrid;
    sim::Runtime baseline(plain);

    sim::RuntimeConfig with_topology;
    with_topology.mode = sim::ExecMode::kHybrid;
    with_topology.topology =
        sim::Topology::ScaleOut(1, sim::LinkSpec::PcieGen4());
    with_topology.device_index = 0;
    sim::Runtime sharded(with_topology);

    EXPECT_EQ(drive(baseline), drive(sharded));
    EXPECT_EQ(baseline.Now(), sharded.Now());
    EXPECT_EQ(sharded.ClusterDevices(), 1);
}

// ----------------------------------------------------------- partition book

TEST(PartitionBookTest, SerializeRoundTrips)
{
    const PartitionBook book = HashPartition(257, 4, /*seed=*/7);
    const PartitionBook copy = PartitionBook::Deserialize(book.Serialize());
    EXPECT_TRUE(book == copy);
    EXPECT_EQ(copy.NumShards(), 4);
    EXPECT_EQ(copy.NumNodes(), 257);
}

TEST(PartitionBookTest, SameSeedIsBitIdentical)
{
    EXPECT_TRUE(HashPartition(1000, 4, 42) == HashPartition(1000, 4, 42));
    EXPECT_FALSE(HashPartition(1000, 4, 42) == HashPartition(1000, 4, 43));

    const std::vector<std::pair<int64_t, int64_t>> edges = {
        {0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {6, 7}};
    EXPECT_TRUE(GreedyEdgeCutPartition(8, 2, edges, 42) ==
                GreedyEdgeCutPartition(8, 2, edges, 42));
}

TEST(PartitionBookTest, EveryNodeOwnedByExactlyOneShard)
{
    for (const int32_t shards : {1, 2, 4, 8}) {
        const PartitionBook book = HashPartition(500, shards, 11);
        const std::vector<int64_t> sizes = book.ShardSizes();
        EXPECT_EQ(static_cast<int32_t>(sizes.size()), shards);
        EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), int64_t{0}),
                  500);
        for (int64_t node = 0; node < 500; ++node) {
            const int32_t owner = book.ShardOf(node);
            EXPECT_GE(owner, 0);
            EXPECT_LT(owner, shards);
        }
    }
}

TEST(PartitionBookTest, OutOfBookNodesFoldDeterministically)
{
    const PartitionBook book = HashPartition(100, 4, 3);
    for (const int64_t node : {int64_t{-1}, int64_t{100}, int64_t{100000}}) {
        const int32_t owner = book.ShardOf(node);
        EXPECT_GE(owner, 0);
        EXPECT_LT(owner, 4);
        EXPECT_EQ(owner, book.ShardOf(node));
    }
}

TEST(PartitionBookTest, EdgeCutMatchesHandCount)
{
    // Nodes 0,1 on shard 0; nodes 2,3 on shard 1.
    const PartitionBook book(2, {0, 0, 1, 1});
    const std::vector<std::pair<int64_t, int64_t>> edges = {
        {0, 1},   // internal to shard 0
        {2, 3},   // internal to shard 1
        {1, 2},   // cut
        {0, 3},   // cut
        {3, 3}};  // self-loop, never cut
    EXPECT_EQ(EdgeCut(book, edges), 2);
}

TEST(PartitionBookTest, HashIsReasonablyBalanced)
{
    const PartitionBook book = HashPartition(10000, 8, 5);
    EXPECT_LT(book.BalanceFactor(), 1.15);
}

TEST(PartitionBookTest, GreedyRespectsCapacityAndBeatsHashOnClusters)
{
    // Two dense 32-node communities: a ring plus chords inside each.
    std::vector<std::pair<int64_t, int64_t>> edges;
    for (int64_t c = 0; c < 2; ++c) {
        const int64_t base = c * 32;
        for (int64_t i = 0; i < 32; ++i) {
            edges.emplace_back(base + i, base + (i + 1) % 32);
            edges.emplace_back(base + i, base + (i + 7) % 32);
        }
    }
    const PartitionBook greedy = GreedyEdgeCutPartition(64, 2, edges, 9);
    const PartitionBook hash = HashPartition(64, 2, 9);
    EXPECT_LT(EdgeCut(greedy, edges), EdgeCut(hash, edges));
    // The capacity penalty keeps the greedy assignment within its slack.
    EXPECT_LE(greedy.BalanceFactor(), 1.2);
}

// ------------------------------------------------------------ exchange hook

TEST(ExchangeTest, BuildPlanSplitsLocalFromRemotePreservingOrder)
{
    const PartitionBook book(2, {0, 1, 0, 1, 0});
    std::vector<int64_t> nodes = {0, 1, 2, 3, 4};
    const ExchangePlan plan = BuildExchangePlan(book, /*self_shard=*/0, nodes);
    EXPECT_EQ(nodes, (std::vector<int64_t>{0, 2, 4}));
    EXPECT_EQ(plan.local_rows, 3);
    EXPECT_EQ(plan.RemoteRows(), 2);
    EXPECT_EQ(plan.rows_per_shard[1], 2);
    EXPECT_EQ(plan.rows_per_shard[0], 0);
}

TEST(ExchangeTest, EmptyClaimIssuesZeroRuntimeOps)
{
    const PartitionBook book = HashPartition(100, 1, 1);
    ExchangeConfig config;
    config.row_bytes = 256;
    ShardExchangeHook hook(book, 0, config);

    std::vector<int64_t> nodes = {5, 6, 7};
    EXPECT_EQ(hook.ClaimRemote(nodes), 0);
    EXPECT_EQ(nodes.size(), 3u);

    sim::RuntimeConfig rc;
    rc.mode = sim::ExecMode::kHybrid;
    rc.topology = sim::Topology::ScaleOut(1, sim::LinkSpec::PcieGen4());
    sim::Runtime rt(rc);
    const sim::SimTime before = rt.Now();
    const serve::ExchangeCost cost = hook.IssueExchange(rt);
    EXPECT_EQ(rt.Now(), before);
    EXPECT_EQ(rt.PeerCopyCount(), 0);
    EXPECT_EQ(cost.remote_rows, 0);
    EXPECT_EQ(cost.local_rows, 3);
    EXPECT_EQ(hook.Rounds(), 0);
}

TEST(ExchangeTest, RemoteRowsArePricedThroughThePeerLink)
{
    const PartitionBook book(2, {0, 1, 0, 1});
    ExchangeConfig config;
    config.row_bytes = 256;
    config.rows_mutable = true;  // 2x for the piggybacked return delta
    ShardExchangeHook hook(book, 0, config);

    std::vector<int64_t> nodes = {0, 1, 2, 3};
    EXPECT_EQ(hook.ClaimRemote(nodes), 2);

    sim::RuntimeConfig rc;
    rc.mode = sim::ExecMode::kHybrid;
    rc.topology = sim::Topology::ScaleOut(2, sim::LinkSpec::PcieGen4());
    rc.device_index = 0;
    sim::Runtime rt(rc);
    const serve::ExchangeCost cost = hook.IssueExchange(rt);
    (void)rt.Synchronize();

    EXPECT_EQ(cost.remote_rows, 2);
    EXPECT_EQ(cost.messages, 1);
    EXPECT_EQ(cost.bytes, 2 * 256 * 2);
    EXPECT_GT(cost.link_us, 0.0);
    EXPECT_EQ(rt.PeerBytes(), cost.bytes);
    EXPECT_EQ(rt.PeerCopyCount(), 1);
    EXPECT_EQ(hook.Rounds(), 1);
    EXPECT_EQ(hook.Totals().remote_rows, 2);
}

// ---------------------------------------------------------- sharded serving

data::InteractionDataset
ShardDataset()
{
    data::InteractionSpec spec;
    spec.name = "shard-test";
    spec.num_users = 256;
    spec.num_items = 64;
    spec.num_events = 2048;
    spec.edge_feature_dim = 32;
    spec.popularity_alpha = 2.5;
    spec.repeat_prob = 0.9;
    spec.seed = 31;
    return data::GenerateInteractions(spec);
}

std::vector<serve::Request>
ShardRequests(const data::InteractionDataset& dataset, double qps, int64_t n)
{
    scenario::Scenario s;
    s.name = "shard-replay";
    s.poisson_qps = qps;
    s.poisson_seed = 1009;
    return scenario::GenerateRequests(s, dataset, n);
}

ShardedOptions
BaseOptions(const data::InteractionDataset& dataset, models::Tgn& model,
            int32_t shards)
{
    ShardedOptions options;
    options.num_shards = shards;
    options.cache_config.capacity_bytes =
        dataset.NumNodes() / 4 * model.CacheRowBytes();
    options.cache_config.eviction = cache::EvictionPolicy::kLru;
    options.num_neighbors = 10;
    return options;
}

std::function<std::unique_ptr<serve::BatchPolicy>()>
MakeTimeoutPolicy()
{
    return [] {
        return std::make_unique<serve::TimeoutPolicy>(/*batch_size=*/32,
                                                      /*timeout_us=*/5000.0);
    };
}

TEST(ShardedServingTest, OneShardReproducesPlainServingBitForBit)
{
    const auto dataset = ShardDataset();
    models::Tgn model(dataset, models::TgnConfig{64, 32, 1, 11});
    const std::vector<serve::Request> requests =
        ShardRequests(dataset, /*qps=*/4000.0, /*n=*/384);

    const ShardedOptions options = BaseOptions(dataset, model, /*shards=*/1);
    const ShardedReport sharded =
        ServeSharded(model, sim::ExecMode::kHybrid, dataset.NumNodes(),
                     requests, MakeTimeoutPolicy(), options);

    serve::ModelSession session(model, sim::ExecMode::kHybrid,
                                options.num_neighbors, options.cache_config);
    serve::TimeoutPolicy policy(32, 5000.0);
    const serve::ServingReport plain = serve::ServeRequests(
        session, policy, requests, serve::ServerOptions{});

    ASSERT_EQ(sharded.shards.size(), 1u);
    const serve::ServingReport& lone = sharded.shards[0];
    EXPECT_EQ(lone.requests, plain.requests);
    EXPECT_EQ(lone.batches, plain.batches);
    EXPECT_EQ(lone.makespan_us, plain.makespan_us);
    EXPECT_EQ(lone.latency.P50(), plain.latency.P50());
    EXPECT_EQ(lone.latency.P99(), plain.latency.P99());
    EXPECT_EQ(lone.h2d_bytes, plain.h2d_bytes);
    EXPECT_EQ(lone.d2h_bytes, plain.d2h_bytes);
    EXPECT_EQ(lone.cache_stats.hits, plain.cache_stats.hits);
    // And no exchange ever fired.
    EXPECT_EQ(sharded.exchange.remote_rows, 0);
    EXPECT_EQ(sharded.exchange.bytes, 0);
    EXPECT_EQ(sharded.edge_cut, 0);
}

TEST(ShardedServingTest, SustainedQpsScalesWithShards)
{
    const auto dataset = ShardDataset();
    models::Tgn model(dataset, models::TgnConfig{64, 32, 1, 11});
    // Overload a single shard so the cluster rate is capacity-bound.
    const std::vector<serve::Request> requests =
        ShardRequests(dataset, /*qps=*/20000.0, /*n=*/512);

    const ShardedReport one =
        ServeSharded(model, sim::ExecMode::kHybrid, dataset.NumNodes(),
                     requests, MakeTimeoutPolicy(),
                     BaseOptions(dataset, model, 1));
    const ShardedReport four =
        ServeSharded(model, sim::ExecMode::kHybrid, dataset.NumNodes(),
                     requests, MakeTimeoutPolicy(),
                     BaseOptions(dataset, model, 4));

    EXPECT_EQ(one.requests, four.requests);
    EXPECT_GT(four.sustained_qps, one.sustained_qps);
    // Scale-out is not free: the exchange moved real bytes and the report
    // says so.
    EXPECT_GT(four.exchange.remote_rows, 0);
    EXPECT_GT(four.exchange.bytes, 0);
    EXPECT_GT(four.exchange.link_us, 0.0);
    EXPECT_GT(four.comm_tax_pct, 0.0);
    EXPECT_GT(four.edge_cut, 0);
}

TEST(ShardedServingTest, DeterministicAcrossRuns)
{
    const auto dataset = ShardDataset();
    models::Tgn model(dataset, models::TgnConfig{64, 32, 1, 11});
    const std::vector<serve::Request> requests =
        ShardRequests(dataset, 8000.0, 256);
    const ShardedOptions options = BaseOptions(dataset, model, 2);

    const ShardedReport a =
        ServeSharded(model, sim::ExecMode::kHybrid, dataset.NumNodes(),
                     requests, MakeTimeoutPolicy(), options);
    const ShardedReport b =
        ServeSharded(model, sim::ExecMode::kHybrid, dataset.NumNodes(),
                     requests, MakeTimeoutPolicy(), options);
    EXPECT_EQ(a.sustained_qps, b.sustained_qps);
    EXPECT_EQ(a.makespan_us, b.makespan_us);
    EXPECT_EQ(a.exchange.bytes, b.exchange.bytes);
    EXPECT_EQ(a.exchange.link_us, b.exchange.link_us);
    EXPECT_EQ(a.edge_cut, b.edge_cut);
}

/// Serves shard 0's sub-stream of a 2-shard split through the REAL serving
/// loop with an exchange hook and a hazard checker attached.
analysis::HazardReport
CheckedShardRun(bool install_fence, int64_t* rounds_out)
{
    const auto dataset = ShardDataset();
    models::Tgn model(dataset, models::TgnConfig{64, 32, 1, 11});
    const std::vector<serve::Request> requests =
        ShardRequests(dataset, 8000.0, 384);

    const PartitionBook book = HashPartition(dataset.NumNodes(), 2, 1);
    std::vector<serve::Request> shard0;
    for (const serve::Request& r : requests) {
        if (RouteShard(book, r) == 0) {
            shard0.push_back(r);
        }
    }

    ExchangeConfig exchange_config;
    exchange_config.row_bytes = model.CacheRowBytes();
    exchange_config.rows_mutable = model.CacheRowsMutable();
    exchange_config.install_fence = install_fence;
    ShardExchangeHook hook(book, 0, exchange_config);

    cache::DeviceCacheConfig cache_config;
    cache_config.capacity_bytes =
        dataset.NumNodes() / 4 * model.CacheRowBytes();
    cache_config.eviction = cache::EvictionPolicy::kLru;
    serve::ModelSession session(model, sim::ExecMode::kHybrid, 10,
                                cache_config);
    serve::TimeoutPolicy policy(32, 5000.0);

    analysis::HazardChecker checker;
    serve::ServerOptions options;
    sim::RuntimeConfig rc;
    rc.topology = sim::Topology::ScaleOut(2, sim::LinkSpec::PcieGen4());
    rc.device_index = 0;
    options.runtime_config = rc;
    options.shard_hook = &hook;
    options.runtime_observer = &checker;
    (void)serve::ServeRequests(session, policy, shard0, options);
    if (rounds_out != nullptr) {
        *rounds_out = hook.Rounds();
    }
    return checker.Report();
}

TEST(ShardedServingTest, ExchangeScheduleIsHazardFree)
{
    int64_t rounds = 0;
    const analysis::HazardReport report =
        CheckedShardRun(/*install_fence=*/true, &rounds);
    EXPECT_TRUE(report.Clean()) << report.ToText();
    // The exchange actually ran — a vacuously clean run proves nothing.
    EXPECT_GT(rounds, 0);
}

TEST(ShardedServingTest, DeletedExchangeFenceIsCaughtInServing)
{
    int64_t rounds = 0;
    const analysis::HazardReport report =
        CheckedShardRun(/*install_fence=*/false, &rounds);
    EXPECT_GT(rounds, 0);
    ASSERT_FALSE(report.Clean());
    bool raw_on_exchange = false;
    for (const analysis::Hazard& hazard : report.hazards) {
        if (hazard.kind == analysis::HazardKind::kRaw &&
            analysis::ResourceFamily(hazard.resource) == "exchange_in") {
            raw_on_exchange = true;
        }
    }
    EXPECT_TRUE(raw_on_exchange) << report.ToText();
}

}  // namespace
}  // namespace dgnn::shard
