// Tests for the synthetic dataset generators.

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "data/molecular_gen.hpp"
#include "data/snapshot_seq_gen.hpp"
#include "data/social_evolution_gen.hpp"
#include "data/temporal_interactions.hpp"
#include "data/traffic_gen.hpp"

namespace dgnn::data {
namespace {

TEST(InteractionsTest, SizesAndBipartiteRange)
{
    InteractionSpec spec;
    spec.num_users = 30;
    spec.num_items = 20;
    spec.num_events = 500;
    spec.edge_feature_dim = 8;
    const InteractionDataset ds = GenerateInteractions(spec);
    EXPECT_EQ(ds.stream.NumEvents(), 500);
    EXPECT_EQ(ds.NumNodes(), 50);
    EXPECT_EQ(ds.edge_features.GetShape(), Shape({500, 8}));
    EXPECT_EQ(ds.node_features.GetShape(), Shape({50, 8}));
    for (const auto& e : ds.stream.Events()) {
        EXPECT_LT(e.src, 30);                 // src is a user
        EXPECT_GE(e.dst, ds.ItemOffset());    // dst is an item
        EXPECT_LT(e.dst, 50);
    }
}

TEST(InteractionsTest, TimesAreNonDecreasing)
{
    const InteractionDataset ds =
        GenerateInteractions(InteractionSpec::WikipediaLike(300));
    double prev = -1.0;
    for (const auto& e : ds.stream.Events()) {
        EXPECT_GE(e.time, prev);
        prev = e.time;
    }
}

TEST(InteractionsTest, DeterministicForSameSeed)
{
    const InteractionDataset a =
        GenerateInteractions(InteractionSpec::RedditLike(200));
    const InteractionDataset b =
        GenerateInteractions(InteractionSpec::RedditLike(200));
    ASSERT_EQ(a.stream.NumEvents(), b.stream.NumEvents());
    for (int64_t i = 0; i < a.stream.NumEvents(); ++i) {
        EXPECT_EQ(a.stream.Event(i).src, b.stream.Event(i).src);
        EXPECT_EQ(a.stream.Event(i).dst, b.stream.Event(i).dst);
        EXPECT_EQ(a.stream.Event(i).time, b.stream.Event(i).time);
    }
    EXPECT_EQ(a.edge_features.Sum(), b.edge_features.Sum());
}

TEST(InteractionsTest, PresetsDiffer)
{
    const auto wiki = InteractionSpec::WikipediaLike(100);
    const auto reddit = InteractionSpec::RedditLike(100);
    const auto lastfm = InteractionSpec::LastFmLike(100);
    EXPECT_NE(wiki.name, reddit.name);
    EXPECT_GT(reddit.num_users, wiki.num_users);
    EXPECT_LT(lastfm.edge_feature_dim, wiki.edge_feature_dim);
}

TEST(InteractionsTest, PopularItemSkew)
{
    // Power-law popularity: the most popular item should receive far more
    // interactions than the median item.
    InteractionSpec spec;
    spec.num_users = 50;
    spec.num_items = 100;
    spec.num_events = 5000;
    spec.edge_feature_dim = 2;
    spec.repeat_prob = 0.0;  // isolate the popularity draw
    const InteractionDataset ds = GenerateInteractions(spec);
    std::vector<int64_t> counts(100, 0);
    for (const auto& e : ds.stream.Events()) {
        ++counts[static_cast<size_t>(e.dst - ds.ItemOffset())];
    }
    std::sort(counts.begin(), counts.end());
    EXPECT_GT(counts.back(), 4 * counts[50]);
}

TEST(SnapshotGenTest, ShapesAndOverlap)
{
    SnapshotSpec spec = SnapshotSpec::SbmLike();
    spec.num_nodes = 200;
    spec.num_steps = 6;
    spec.edges_per_step = 1000;
    const SnapshotDataset ds = GenerateSnapshots(spec);
    EXPECT_EQ(ds.sequence.NumSteps(), 6);
    EXPECT_EQ(ds.sequence.Step(0).NumEdges(), 1000);
    EXPECT_EQ(ds.node_features.Dim(0), 200);
    // Sliding-window overlap should be clearly visible between steps.
    EXPECT_GT(ds.sequence.MeanOverlap(), 0.2);
}

TEST(SnapshotGenTest, BitcoinHasSignedWeights)
{
    SnapshotSpec spec = SnapshotSpec::BitcoinAlphaLike();
    spec.num_nodes = 100;
    spec.num_steps = 3;
    spec.edges_per_step = 500;
    const SnapshotDataset ds = GenerateSnapshots(spec);
    bool saw_negative = false;
    for (int64_t t = 0; t < ds.sequence.NumSteps(); ++t) {
        const auto& snap = ds.sequence.Step(t);
        for (int64_t u = 0; u < snap.NumNodes(); ++u) {
            for (float w : snap.Weights(u)) {
                saw_negative |= w < 0.0f;
            }
        }
    }
    EXPECT_TRUE(saw_negative);
}

TEST(SnapshotGenTest, DeterministicForSameSeed)
{
    const SnapshotDataset a = GenerateSnapshots(SnapshotSpec::SbmLike());
    const SnapshotDataset b = GenerateSnapshots(SnapshotSpec::SbmLike());
    EXPECT_EQ(a.sequence.TotalEdges(), b.sequence.TotalEdges());
    EXPECT_DOUBLE_EQ(a.sequence.MeanOverlap(), b.sequence.MeanOverlap());
}

TEST(TrafficGenTest, SignalShapeAndWindows)
{
    TrafficSpec spec = TrafficSpec::PemsLike();
    spec.num_sensors = 50;
    spec.num_timesteps = 100;
    const TrafficDataset ds = GenerateTraffic(spec);
    EXPECT_EQ(ds.signal.GetShape(), Shape({100, 50 * spec.channels}));
    EXPECT_TRUE(ds.signal.AllFinite());
    const Tensor w = ds.Window(10, 12);
    EXPECT_EQ(w.Dim(0), 12);
    EXPECT_THROW(ds.Window(95, 12), Error);
    EXPECT_EQ(ds.NumSamples(), 100 - spec.history_len - spec.horizon + 1);
}

TEST(TrafficGenTest, RoadGraphConnected)
{
    TrafficSpec spec = TrafficSpec::PemsLike();
    spec.num_sensors = 40;
    const TrafficDataset ds = GenerateTraffic(spec);
    EXPECT_EQ(ds.road_graph.NumNodes(), 40);
    for (int64_t i = 0; i < 40; ++i) {
        EXPECT_GE(ds.road_graph.Degree(i), 1);  // at least the ring edge
    }
}

TEST(TrafficGenTest, DailyPeriodicityVisible)
{
    // Rush-hour bumps: signal variance along the day must be non-trivial.
    TrafficSpec spec = TrafficSpec::PemsLike();
    spec.num_sensors = 10;
    spec.num_timesteps = 288;
    const TrafficDataset ds = GenerateTraffic(spec);
    float lo = 1e9f;
    float hi = -1e9f;
    for (int64_t t = 0; t < 288; ++t) {
        const float v = ds.signal.At(t, 0);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    EXPECT_GT(hi - lo, 0.3f);
}

TEST(MolecularGenTest, FramesAndAdjacency)
{
    MolecularSpec spec = MolecularSpec::Iso17Like();
    spec.num_frames = 32;
    const MolecularDataset ds = GenerateMolecular(spec);
    EXPECT_EQ(ds.NumFrames(), 32);
    EXPECT_EQ(ds.adjacency[0].GetShape(), Shape({19, 19}));
    EXPECT_EQ(ds.FrameBytes(), 19 * 19 * 4);
    // Bonds are symmetric by construction (distance-based).
    const Tensor& a = ds.adjacency[5];
    for (int64_t i = 0; i < 19; ++i) {
        EXPECT_EQ(a.At(i, i), 0.0f);
        for (int64_t j = 0; j < 19; ++j) {
            EXPECT_EQ(a.At(i, j), a.At(j, i));
        }
    }
}

TEST(MolecularGenTest, TopologyEvolves)
{
    MolecularSpec spec = MolecularSpec::Iso17Like();
    spec.num_frames = 64;
    const MolecularDataset ds = GenerateMolecular(spec);
    // The dynamic graph must actually change over the trajectory.
    double diff = 0.0;
    for (int64_t f = 1; f < ds.NumFrames(); ++f) {
        for (int64_t i = 0; i < ds.adjacency[0].NumElements(); ++i) {
            diff += std::fabs(ds.adjacency[static_cast<size_t>(f)].At(i) -
                              ds.adjacency[static_cast<size_t>(f - 1)].At(i));
        }
    }
    EXPECT_GT(diff, 0.0);
}

TEST(PointProcessTest, EventKindsAndBurstiness)
{
    PointProcessSpec spec = PointProcessSpec::SocialEvolutionLike();
    spec.num_events = 2000;
    const PointProcessDataset ds = GeneratePointProcess(spec);
    EXPECT_EQ(ds.stream.NumEvents(), 2000);
    ASSERT_EQ(ds.kinds.size(), 2000u);

    int64_t associations = 0;
    for (const auto kind : ds.kinds) {
        associations += kind == PointEventKind::kAssociation ? 1 : 0;
    }
    // ~5% association events.
    EXPECT_GT(associations, 40);
    EXPECT_LT(associations, 250);

    // Self-excitation: repeated pairs should be common.
    std::map<std::pair<int64_t, int64_t>, int64_t> pair_counts;
    for (const auto& e : ds.stream.Events()) {
        ++pair_counts[{e.src, e.dst}];
    }
    int64_t max_count = 0;
    for (const auto& [pair, count] : pair_counts) {
        max_count = std::max(max_count, count);
    }
    EXPECT_GT(max_count, 3);
}

TEST(PointProcessTest, GithubPresetLarger)
{
    const auto social = PointProcessSpec::SocialEvolutionLike();
    const auto github = PointProcessSpec::GithubLike();
    EXPECT_GT(github.num_actors, social.num_actors);
    EXPECT_GT(github.association_frac, social.association_frac);
}

TEST(PointProcessTest, Deterministic)
{
    const PointProcessDataset a =
        GeneratePointProcess(PointProcessSpec::SocialEvolutionLike());
    const PointProcessDataset b =
        GeneratePointProcess(PointProcessSpec::SocialEvolutionLike());
    ASSERT_EQ(a.stream.NumEvents(), b.stream.NumEvents());
    for (int64_t i = 0; i < a.stream.NumEvents(); ++i) {
        EXPECT_EQ(a.stream.Event(i).src, b.stream.Event(i).src);
        EXPECT_EQ(a.stream.Event(i).dst, b.stream.Event(i).dst);
    }
}

}  // namespace
}  // namespace dgnn::data
