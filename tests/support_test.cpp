// Tests for the error-handling substrate and failure injection across the
// library: user-facing precondition violations must throw dgnn::Error with
// actionable messages, and resource exhaustion must surface cleanly.

#include <gtest/gtest.h>

#include "models/tgat.hpp"
#include "models/tgn.hpp"
#include "support/check.hpp"

namespace dgnn {
namespace {

TEST(CheckTest, PassingConditionIsSilent)
{
    EXPECT_NO_THROW(DGNN_CHECK(1 + 1 == 2, "math works"));
}

TEST(CheckTest, FailingConditionThrowsErrorWithMessage)
{
    try {
        DGNN_CHECK(false, "widget ", 42, " exploded");
        FAIL() << "DGNN_CHECK did not throw";
    } catch (const Error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("widget 42 exploded"), std::string::npos);
        EXPECT_NE(what.find("check failed"), std::string::npos);
        // Location info for debugging.
        EXPECT_NE(what.find("support_test.cpp"), std::string::npos);
    }
}

TEST(CheckTest, ErrorIsARuntimeError)
{
    // Callers may catch std::runtime_error generically.
    EXPECT_THROW(DGNN_CHECK(false, "generic"), std::runtime_error);
}

TEST(FailureInjectionTest, DeviceOutOfMemorySurfacesAsError)
{
    // A GPU with a tiny memory capacity must reject model working sets with
    // a clean Error, not UB.
    sim::RuntimeConfig config;
    config.mode = sim::ExecMode::kHybrid;
    config.gpu.memory_bytes = 1024;  // 1 KiB GPU
    sim::Runtime rt(config);

    data::InteractionSpec spec;
    spec.num_users = 30;
    spec.num_items = 20;
    spec.num_events = 100;
    spec.edge_feature_dim = 16;
    const auto ds = data::GenerateInteractions(spec);
    models::Tgn model(ds, models::TgnConfig{16, 16, 2, 11});
    models::RunConfig run;
    run.batch_size = 16;
    run.num_neighbors = 4;
    EXPECT_THROW(model.RunInference(rt, run), Error);
}

TEST(FailureInjectionTest, InvalidModelConfigRejected)
{
    data::InteractionSpec spec;
    spec.num_users = 10;
    spec.num_items = 5;
    spec.num_events = 20;
    spec.edge_feature_dim = 4;
    const auto ds = data::GenerateInteractions(spec);
    // Zero attention layers is a configuration error, caught at build time.
    EXPECT_THROW(models::Tgat(ds, models::TgatConfig{16, 2, 0, 4, 7, false}),
                 Error);
    // Attention head count must divide the embedding dimension.
    EXPECT_THROW(models::Tgat(ds, models::TgatConfig{10, 4, 1, 4, 7, false}),
                 Error);
}

TEST(FailureInjectionTest, BatchSizeZeroRejected)
{
    data::InteractionSpec spec;
    spec.num_users = 10;
    spec.num_items = 5;
    spec.num_events = 20;
    spec.edge_feature_dim = 4;
    const auto ds = data::GenerateInteractions(spec);
    models::Tgn model(ds, models::TgnConfig{8, 8, 2, 11});
    sim::Runtime rt = models::MakeRuntime(sim::ExecMode::kCpuOnly);
    models::RunConfig run;
    run.mode = sim::ExecMode::kCpuOnly;
    run.batch_size = 0;
    EXPECT_THROW(model.RunInference(rt, run), Error);
}

TEST(FormatDurationTest, UnitSelection)
{
    EXPECT_EQ(sim::FormatDuration(12.0), "12.00 us");
    EXPECT_EQ(sim::FormatDuration(12000.0), "12.00 ms");
    EXPECT_EQ(sim::FormatDuration(3.2e6), "3.20 s");
    EXPECT_EQ(sim::FormatDuration(-1500.0), "-1.50 ms");
}

}  // namespace
}  // namespace dgnn
