// Tests for the online-serving subsystem: arrival generators, dynamic
// batching policies, batch-cost capture, the serial vs pipelined
// executors, the serving loop, and the sustained-QPS search.

#include <gtest/gtest.h>

#include <memory>

#include "support/check.hpp"

#include "data/temporal_interactions.hpp"
#include "models/jodie.hpp"
#include "models/tgn.hpp"
#include "serve/server.hpp"

namespace dgnn::serve {
namespace {

data::InteractionDataset
TinyInteractions()
{
    data::InteractionSpec spec;
    spec.name = "tiny";
    spec.num_users = 20;
    spec.num_items = 12;
    spec.num_events = 400;
    spec.edge_feature_dim = 8;
    spec.seed = 5;
    return data::GenerateInteractions(spec);
}

// ---------------------------------------------------------------- arrivals

TEST(ArrivalsTest, PoissonIsDeterministicSortedAndRateMatched)
{
    const auto a = PoissonArrivals(1000.0, 2000, 7);
    const auto b = PoissonArrivals(1000.0, 2000, 7);
    ASSERT_EQ(a.size(), 2000u);
    EXPECT_EQ(a, b);  // bit-identical for a fixed seed
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
    // Mean inter-arrival of 1000 qps is 1000 us; LLN puts the empirical
    // mean well within 10% at n = 2000.
    const double mean_gap = a.back() / static_cast<double>(a.size());
    EXPECT_NEAR(mean_gap, 1000.0, 100.0);

    const auto c = PoissonArrivals(1000.0, 2000, 8);
    EXPECT_NE(a, c);  // seed matters
}

TEST(ArrivalsTest, TraceReplayRescalesToTargetRate)
{
    const auto ds = TinyInteractions();
    const auto arrivals = TraceArrivals(ds.stream, 500.0, 300);
    ASSERT_EQ(arrivals.size(), 300u);
    EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
    // Rescaling makes the mean gap hit the target rate exactly.
    const double mean_gap = arrivals.back() / 300.0;
    EXPECT_NEAR(mean_gap, 1e6 / 500.0, 1e-6);
}

TEST(ArrivalsTest, InvalidParametersThrow)
{
    EXPECT_THROW(PoissonArrivals(0.0, 10, 1), Error);
    EXPECT_THROW(PoissonArrivals(100.0, -1, 1), Error);
    const auto ds = TinyInteractions();
    EXPECT_THROW(TraceArrivals(ds.stream, -5.0, 10), Error);
}

// ---------------------------------------------------------- arrival sources

TEST(ArrivalSourceTest, PoissonSourceWrapsTheFreeFunctionExactly)
{
    const PoissonSource source(1000.0, 7);
    EXPECT_EQ(source.Name(), "poisson(1000qps)");

    const auto requests = source.Generate(200);
    const auto raw = PoissonArrivals(1000.0, 200, 7);
    ASSERT_EQ(requests.size(), 200u);
    for (size_t i = 0; i < requests.size(); ++i) {
        EXPECT_EQ(requests[i].id, static_cast<int64_t>(i));
        EXPECT_EQ(requests[i].arrival_us, raw[i]);
        EXPECT_EQ(requests[i].src, -1);  // node-blind by contract
        EXPECT_EQ(requests[i].dst, -1);
    }
    EXPECT_THROW(PoissonSource(0.0, 1), Error);
}

TEST(ArrivalSourceTest, TraceReplaySourceCarriesEndpoints)
{
    const auto ds = TinyInteractions();
    const TraceReplaySource source(ds.stream, 500.0);
    EXPECT_EQ(source.Name(), "trace-replay(500qps)");

    const auto requests = source.Generate(100);
    const auto direct = TraceRequests(ds.stream, 500.0, 100);
    ASSERT_EQ(requests.size(), direct.size());
    for (size_t i = 0; i < requests.size(); ++i) {
        EXPECT_EQ(requests[i].arrival_us, direct[i].arrival_us);
        EXPECT_EQ(requests[i].src, direct[i].src);
        EXPECT_EQ(requests[i].dst, direct[i].dst);
        EXPECT_GE(requests[i].src, 0);  // replay is node-bearing
    }
    EXPECT_THROW(TraceReplaySource(ds.stream, 0.0), Error);
}

TEST(ArrivalSourceTest, ServeViaSourceMatchesServeRequests)
{
    // The Serve(source) overload must be a pure composition of Generate +
    // ServeRequests: same report either way, through the virtual interface.
    const auto ds = TinyInteractions();
    models::Tgn tgn(ds, models::TgnConfig{16, 16, 2, 11});
    ModelSession session(tgn, sim::ExecMode::kHybrid, 4);
    const TraceReplaySource source(ds.stream, 2000.0);
    const ArrivalSource& virt = source;
    ServerOptions options;
    options.executor = ExecutorKind::kPipelined;

    TimeoutPolicy policy_a(16, 3000.0);
    const ServingReport via_source =
        Serve(session, policy_a, virt, 128, options);
    TimeoutPolicy policy_b(16, 3000.0);
    const ServingReport via_requests =
        ServeRequests(session, policy_b, source.Generate(128), options);

    EXPECT_EQ(via_source.requests, via_requests.requests);
    EXPECT_EQ(via_source.batches, via_requests.batches);
    EXPECT_DOUBLE_EQ(via_source.makespan_us, via_requests.makespan_us);
    EXPECT_DOUBLE_EQ(via_source.latency.P50(), via_requests.latency.P50());
    EXPECT_DOUBLE_EQ(via_source.latency.P99(), via_requests.latency.P99());
    EXPECT_EQ(via_source.h2d_bytes, via_requests.h2d_bytes);
}

// ---------------------------------------------------------------- policies

std::deque<Request>
QueueOf(std::initializer_list<double> arrivals)
{
    std::deque<Request> q;
    int64_t id = 0;
    for (const double t : arrivals) {
        q.push_back(Request{id++, t});
    }
    return q;
}

TEST(BatchPolicyTest, FixedSizeWaitsForFullBatch)
{
    FixedSizePolicy policy(4);
    const auto three = QueueOf({0.0, 1.0, 2.0});
    EXPECT_EQ(policy.Decide(three, 10.0, false).dispatch, 0);
    // Flushes leftovers once the stream ends.
    EXPECT_EQ(policy.Decide(three, 10.0, true).dispatch, 3);

    const auto five = QueueOf({0.0, 1.0, 2.0, 3.0, 4.0});
    EXPECT_EQ(policy.Decide(five, 10.0, false).dispatch, 4);
}

TEST(BatchPolicyTest, TimeoutDispatchesWhenOldestExpires)
{
    TimeoutPolicy policy(8, 100.0);
    const auto queue = QueueOf({50.0, 60.0});
    // Before the deadline: wait, and wake exactly at it.
    const BatchDecision wait = policy.Decide(queue, 100.0, false);
    EXPECT_EQ(wait.dispatch, 0);
    EXPECT_DOUBLE_EQ(wait.wake_us, 150.0);
    // At/after the deadline: flush the queue.
    EXPECT_EQ(policy.Decide(queue, 150.0, false).dispatch, 2);
    // A full batch dispatches regardless of age.
    const auto full = QueueOf({0, 1, 2, 3, 4, 5, 6, 7, 8});
    EXPECT_EQ(policy.Decide(full, 2.0, false).dispatch, 8);
}

TEST(BatchPolicyTest, AdaptiveDispatchesEarlyWhenFillIsHopeless)
{
    AdaptivePolicy policy(2, 64, 1000.0);
    // Feed a slow arrival stream: one request per 900 us.
    policy.OnArrival(0.0);
    policy.OnArrival(900.0);
    policy.OnArrival(1800.0);
    EXPECT_GT(policy.EstimatedGapUs(), 0.0);
    // Two queued, 62 slots to fill at ~900 us each, deadline in 1000 us:
    // filling is hopeless, so it dispatches the queued pair early.
    const auto pair = QueueOf({1700.0, 1800.0});
    EXPECT_EQ(policy.Decide(pair, 1850.0, false).dispatch, 2);

    // A fast stream (1 us gaps) makes filling plausible: keep waiting.
    AdaptivePolicy fast(2, 64, 1000.0);
    for (int i = 0; i < 50; ++i) {
        fast.OnArrival(static_cast<double>(i));
    }
    const auto queued = QueueOf({48.0, 49.0});
    const BatchDecision wait = fast.Decide(queued, 50.0, false);
    EXPECT_EQ(wait.dispatch, 0);
    EXPECT_DOUBLE_EQ(wait.wake_us, 1048.0);
    // The deadline still forces a flush.
    EXPECT_EQ(fast.Decide(queued, 1048.0, false).dispatch, 2);
}

TEST(BatchPolicyTest, AdaptiveTreatsZeroFirstGapAsAnEstimate)
{
    AdaptivePolicy policy(2, 64, 1000.0);
    // A burst: two simultaneous arrivals. The first observed gap is
    // exactly 0, which IS a rate estimate ("arrivals are instantaneous"),
    // not its absence — the old `ewma > 0` sentinel got stuck in
    // no-estimate mode forever here.
    policy.OnArrival(100.0);
    policy.OnArrival(100.0);
    EXPECT_TRUE(policy.HasGapEstimate());
    EXPECT_DOUBLE_EQ(policy.EstimatedGapUs(), 0.0);

    // With an instantaneous-rate estimate, filling to max_batch is
    // plausible: keep accumulating instead of dispatching at min_batch.
    const auto pair = QueueOf({100.0, 100.0});
    const BatchDecision wait = policy.Decide(pair, 150.0, false);
    EXPECT_EQ(wait.dispatch, 0);
    EXPECT_DOUBLE_EQ(wait.wake_us, 1100.0);
    // The oldest request's deadline still bounds the wait.
    EXPECT_EQ(policy.Decide(pair, 1100.0, false).dispatch, 2);

    // Later non-zero gaps blend into the EWMA normally.
    policy.OnArrival(600.0);
    EXPECT_GT(policy.EstimatedGapUs(), 0.0);
}

TEST(BatchPolicyTest, FixedSizePartialBatchWaitsOutLullsUntilStreamEnd)
{
    FixedSizePolicy policy(8);
    const auto partial = QueueOf({0.0, 1.0, 2.0});
    // A long lull: no matter how stale the queue grows, a partial batch
    // neither dispatches nor schedules a timed wake — only a new arrival
    // or the end of the stream re-triggers the policy.
    for (const double now : {10.0, 1e4, 1e7, 1e9}) {
        const BatchDecision d = policy.Decide(partial, now, false);
        EXPECT_EQ(d.dispatch, 0);
        EXPECT_DOUBLE_EQ(d.wake_us, kNoWake);
    }
    // Stream end flushes the leftovers.
    EXPECT_EQ(policy.Decide(partial, 1e9, true).dispatch, 3);
}

TEST(BatchPolicyTest, InvalidConfigurationsThrow)
{
    EXPECT_THROW(FixedSizePolicy(0), Error);
    EXPECT_THROW(TimeoutPolicy(4, -1.0), Error);
    EXPECT_THROW(AdaptivePolicy(8, 4, 100.0), Error);
}

// ----------------------------------------------------------- model session

TEST(ModelSessionTest, CapturesAndMemoizesBatchProfiles)
{
    const auto ds = TinyInteractions();
    models::Tgn tgn(ds, models::TgnConfig{16, 16, 2, 11});
    ModelSession session(tgn, sim::ExecMode::kHybrid, 4);

    const BatchProfile& p16 = session.Profile(16);
    EXPECT_EQ(p16.batch_size, 16);
    EXPECT_GT(p16.host_us, 0.0);
    EXPECT_GT(p16.h2d_bytes, 0);
    EXPECT_GT(p16.d2h_bytes, 0);
    EXPECT_FALSE(p16.kernels.empty());

    // Memoized: same object back, no re-capture.
    const BatchProfile& again = session.Profile(16);
    EXPECT_EQ(&p16, &again);
    EXPECT_EQ(session.CapturedProfiles(), 1);

    // Bigger batches cost more host time and move more bytes.
    const BatchProfile& p32 = session.Profile(32);
    EXPECT_EQ(session.CapturedProfiles(), 2);
    EXPECT_GT(p32.host_us, p16.host_us);
    EXPECT_GT(p32.h2d_bytes, p16.h2d_bytes);
}

TEST(ModelSessionTest, CpuOnlyProfilesHaveNoTransfers)
{
    const auto ds = TinyInteractions();
    models::Tgn tgn(ds, models::TgnConfig{16, 16, 2, 11});
    ModelSession session(tgn, sim::ExecMode::kCpuOnly, 4);
    const BatchProfile& p = session.Profile(16);
    EXPECT_EQ(p.h2d_bytes, 0);
    EXPECT_EQ(p.d2h_bytes, 0);
    EXPECT_FALSE(p.kernels.empty());
}

// ----------------------------------------------------------------- serving

ServerOptions
Options(ExecutorKind kind)
{
    ServerOptions o;
    o.executor = kind;
    return o;
}

TEST(ServeTest, AllRequestsServedAndLatenciesPositive)
{
    const auto ds = TinyInteractions();
    models::Jodie jodie(ds, models::JodieConfig{16, 13});
    ModelSession session(jodie, sim::ExecMode::kHybrid, 4);
    const auto arrivals = PoissonArrivals(2000.0, 256, 11);

    TimeoutPolicy policy(16, 3000.0);
    const ServingReport report =
        Serve(session, policy, arrivals, Options(ExecutorKind::kPipelined));

    EXPECT_EQ(report.requests, 256);
    EXPECT_EQ(report.latency.Count(), 256);  // nothing lost or duplicated
    EXPECT_GT(report.latency.Min(), 0.0);    // completion after arrival
    EXPECT_GT(report.batches, 0);
    EXPECT_LE(report.batch_size.Max(), 16.0);
    EXPECT_GT(report.achieved_qps, 0.0);
    EXPECT_EQ(report.model, "JODIE");
    EXPECT_EQ(report.executor, "pipelined");
}

TEST(ServeTest, DeterministicAcrossRuns)
{
    const auto ds = TinyInteractions();
    models::Tgn tgn(ds, models::TgnConfig{16, 16, 2, 11});
    ModelSession session(tgn, sim::ExecMode::kHybrid, 4);
    const auto arrivals = PoissonArrivals(3000.0, 200, 3);

    auto run = [&] {
        TimeoutPolicy policy(16, 2000.0);
        return Serve(session, policy, arrivals,
                     Options(ExecutorKind::kPipelined));
    };
    const ServingReport a = run();
    const ServingReport b = run();
    EXPECT_DOUBLE_EQ(a.latency.P50(), b.latency.P50());
    EXPECT_DOUBLE_EQ(a.latency.P99(), b.latency.P99());
    EXPECT_DOUBLE_EQ(a.makespan_us, b.makespan_us);
    EXPECT_EQ(a.batches, b.batches);
}

TEST(ServeTest, SerialAndPipelinedAgreeInCpuOnlyMode)
{
    // Without a device there is nothing to overlap: the pipelined executor
    // must degenerate to exactly the serial schedule.
    const auto ds = TinyInteractions();
    models::Jodie jodie(ds, models::JodieConfig{16, 13});
    ModelSession session(jodie, sim::ExecMode::kCpuOnly, 4);
    const auto arrivals = PoissonArrivals(1500.0, 128, 19);

    TimeoutPolicy p1(16, 3000.0);
    const ServingReport serial =
        Serve(session, p1, arrivals, Options(ExecutorKind::kSerial));
    TimeoutPolicy p2(16, 3000.0);
    const ServingReport pipelined =
        Serve(session, p2, arrivals, Options(ExecutorKind::kPipelined));

    EXPECT_DOUBLE_EQ(serial.latency.P99(), pipelined.latency.P99());
    EXPECT_DOUBLE_EQ(serial.makespan_us, pipelined.makespan_us);
}

TEST(ServeTest, PipelinedBeatsSerialAtSaturationInHybridMode)
{
    // At a saturating arrival rate the serial executor's makespan is the
    // sum of host and device time; the pipelined executor overlaps them
    // and must finish the same workload strictly faster.
    const auto ds = TinyInteractions();
    models::Tgn tgn(ds, models::TgnConfig{16, 16, 2, 11});
    ModelSession session(tgn, sim::ExecMode::kHybrid, 4);
    const auto arrivals = PoissonArrivals(1e6, 384, 23);  // instant backlog

    FixedSizePolicy p1(16);
    const ServingReport serial =
        Serve(session, p1, arrivals, Options(ExecutorKind::kSerial));
    FixedSizePolicy p2(16);
    const ServingReport pipelined =
        Serve(session, p2, arrivals, Options(ExecutorKind::kPipelined));

    EXPECT_LT(pipelined.makespan_us, serial.makespan_us);
    EXPECT_GT(pipelined.achieved_qps, serial.achieved_qps);
}

TEST(ServeTest, ZeroArrivalStreamDrainsCleanly)
{
    // An empty trace must produce an empty report — no spin waiting for
    // requests that never come, no division by a zero makespan.
    const auto ds = TinyInteractions();
    models::Tgn tgn(ds, models::TgnConfig{16, 16, 2, 11});
    ModelSession session(tgn, sim::ExecMode::kHybrid, 4);
    TimeoutPolicy policy(16, 3000.0);

    const ServingReport report = Serve(session, policy, std::vector<sim::SimTime>{},
                                       Options(ExecutorKind::kSerial));
    EXPECT_EQ(report.requests, 0);
    EXPECT_EQ(report.batches, 0);
    EXPECT_TRUE(report.latency.Empty());
    EXPECT_EQ(report.latency.OverflowCount(), 0);
    EXPECT_DOUBLE_EQ(report.makespan_us, 0.0);
    EXPECT_DOUBLE_EQ(report.offered_qps, 0.0);
    EXPECT_DOUBLE_EQ(report.achieved_qps, 0.0);
    EXPECT_EQ(report.h2d_bytes, 0);

    // Same through the node-bearing and source-driven entry points.
    TimeoutPolicy policy2(16, 3000.0);
    const ServingReport via_requests = ServeRequests(
        session, policy2, {}, Options(ExecutorKind::kPipelined));
    EXPECT_EQ(via_requests.requests, 0);
    EXPECT_EQ(via_requests.batches, 0);

    TimeoutPolicy policy3(16, 3000.0);
    const TraceReplaySource source(ds.stream, 1000.0);
    const ServingReport via_source = Serve(session, policy3, source, 0,
                                           Options(ExecutorKind::kSerial));
    EXPECT_EQ(via_source.requests, 0);
    EXPECT_EQ(via_source.batches, 0);
}

TEST(ServeTest, SingleRequestFlushesAtStreamEndBeforeTimeout)
{
    // One request, batch budget 16, 5 ms timeout: the stream ends the
    // moment the request is admitted, so the timeout policy must flush the
    // partial batch immediately — latency is service time, NOT the 5 ms
    // timeout the request could never fill a batch within.
    const auto ds = TinyInteractions();
    models::Tgn tgn(ds, models::TgnConfig{16, 16, 2, 11});
    ModelSession session(tgn, sim::ExecMode::kHybrid, 4);
    TimeoutPolicy policy(16, 5000.0);

    const ServingReport report =
        Serve(session, policy, std::vector<sim::SimTime>{100.0},
              Options(ExecutorKind::kSerial));
    EXPECT_EQ(report.requests, 1);
    EXPECT_EQ(report.batches, 1);
    EXPECT_EQ(report.latency.Count(), 1);
    EXPECT_GT(report.latency.Max(), 0.0);
    EXPECT_LT(report.latency.Max(), 5000.0);  // did not wait out the timeout
    EXPECT_DOUBLE_EQ(report.batch_size.Max(), 1.0);
}

TEST(ServeTest, TimeoutWakesAPartialBatchDuringALull)
{
    // Two requests 40 ms apart with a 5 ms timeout: the first cannot see
    // end-of-stream (the second is still pending), so it must be dispatched
    // by the timeout wake — latency >= timeout, and nowhere near the 40 ms
    // a fill-or-end-of-stream policy would strand it for.
    const auto ds = TinyInteractions();
    models::Tgn tgn(ds, models::TgnConfig{16, 16, 2, 11});
    ModelSession session(tgn, sim::ExecMode::kHybrid, 4);
    TimeoutPolicy policy(16, 5000.0);

    const ServingReport report =
        Serve(session, policy, std::vector<sim::SimTime>{0.0, 40000.0},
              Options(ExecutorKind::kSerial));
    EXPECT_EQ(report.requests, 2);
    EXPECT_EQ(report.batches, 2);  // the lull forces two singleton batches
    EXPECT_EQ(report.latency.Count(), 2);
    EXPECT_GE(report.latency.Max(), 5000.0);   // first waited its deadline
    EXPECT_LT(report.latency.Max(), 20000.0);  // but not until the lull ended
}

TEST(ServeTest, QpsSearchFindsSustainedRate)
{
    const auto ds = TinyInteractions();
    models::Jodie jodie(ds, models::JodieConfig{16, 13});
    ModelSession session(jodie, sim::ExecMode::kHybrid, 4);

    const QpsSearchResult found = FindMaxQpsUnderSlo(
        session, [] { return std::make_unique<TimeoutPolicy>(16, 2000.0); },
        Options(ExecutorKind::kPipelined), 10000.0, 256, 5);

    EXPECT_GT(found.max_qps, 0.0);
    EXPECT_LE(found.p99_us, 10000.0);
    EXPECT_GT(found.evaluations, 0);

    // The found rate is actually servable: replaying it meets the SLO.
    const auto arrivals = PoissonArrivals(found.max_qps, 256, 5);
    TimeoutPolicy policy(16, 2000.0);
    const ServingReport report =
        Serve(session, policy, arrivals, Options(ExecutorKind::kPipelined));
    EXPECT_LE(report.latency.P99(), 10000.0);
}

}  // namespace
}  // namespace dgnn::serve
