// End-to-end tests for the eight DGNN models: every model runs on both the
// CPU-only and CPU+GPU simulated systems on a tiny dataset with full
// numerics, produces a deterministic checksum, and reports the breakdown
// categories the paper's Fig 7 names.

#include <gtest/gtest.h>

#include "models/astgnn.hpp"
#include "models/dyrep.hpp"
#include "models/evolvegcn.hpp"
#include "models/jodie.hpp"
#include "models/ldg.hpp"
#include "models/moldgnn.hpp"
#include "models/tgat.hpp"
#include "models/tgn.hpp"

namespace dgnn::models {
namespace {

data::InteractionDataset
TinyInteractions()
{
    data::InteractionSpec spec;
    spec.name = "tiny";
    spec.num_users = 20;
    spec.num_items = 12;
    spec.num_events = 120;
    spec.edge_feature_dim = 8;
    spec.seed = 5;
    return data::GenerateInteractions(spec);
}

data::SnapshotDataset
TinySnapshots()
{
    data::SnapshotSpec spec;
    spec.name = "tiny";
    spec.num_nodes = 40;
    spec.num_steps = 4;
    spec.edges_per_step = 150;
    spec.node_feature_dim = 8;
    spec.seed = 6;
    return data::GenerateSnapshots(spec);
}

data::MolecularDataset
TinyMolecular()
{
    data::MolecularSpec spec;
    spec.num_frames = 24;
    spec.seed = 7;
    return data::GenerateMolecular(spec);
}

data::TrafficDataset
TinyTraffic()
{
    data::TrafficSpec spec;
    spec.num_sensors = 16;
    spec.num_timesteps = 48;
    spec.seed = 8;
    return data::GenerateTraffic(spec);
}

data::PointProcessDataset
TinyPointProcess()
{
    data::PointProcessSpec spec;
    spec.num_actors = 15;
    spec.num_events = 60;
    spec.seed = 9;
    return data::GeneratePointProcess(spec);
}

RunConfig
SmallRun(sim::ExecMode mode)
{
    RunConfig run;
    run.mode = mode;
    run.batch_size = 16;
    run.num_neighbors = 4;
    run.numeric_cap = 0;  // full numerics
    return run;
}

/// Runs a model twice with fresh runtimes; both runs must agree exactly.
template <typename ModelFactory>
void
ExpectDeterministic(ModelFactory make_model, const RunConfig& run)
{
    auto m1 = make_model();
    sim::Runtime r1 = MakeRuntime(run.mode);
    const RunResult a = m1->RunInference(r1, run);

    auto m2 = make_model();
    sim::Runtime r2 = MakeRuntime(run.mode);
    const RunResult b = m2->RunInference(r2, run);

    EXPECT_DOUBLE_EQ(a.total_us, b.total_us);
    EXPECT_DOUBLE_EQ(a.output_checksum, b.output_checksum);
    EXPECT_EQ(a.iterations, b.iterations);
}

TEST(TgatTest, RunsOnBothModesWithExpectedCategories)
{
    const auto ds = TinyInteractions();
    for (const auto mode : {sim::ExecMode::kHybrid, sim::ExecMode::kCpuOnly}) {
        Tgat model(ds, TgatConfig{16, 2, 1, 4, 7});
        sim::Runtime rt = MakeRuntime(mode);
        const RunResult r = model.RunInference(rt, SmallRun(mode));
        EXPECT_GT(r.total_us, 0.0);
        EXPECT_EQ(r.iterations, (120 + 15) / 16);
        EXPECT_GT(r.breakdown.SharePct("Sampling (CPU)"), 0.0);
        EXPECT_GT(r.breakdown.SharePct("Attention Layer"), 0.0);
        EXPECT_GT(r.breakdown.SharePct("Time Encoding"), 0.0);
        if (mode == sim::ExecMode::kHybrid) {
            EXPECT_GT(r.breakdown.SharePct("Memory Copy"), 0.0);
            EXPECT_GT(r.h2d_bytes, 0);
            EXPECT_GT(r.compute_peak_bytes, 0);
        } else {
            EXPECT_EQ(r.h2d_bytes, 0);
        }
        EXPECT_NE(r.output_checksum, 0.0);
    }
}

TEST(TgatTest, Deterministic)
{
    const auto ds = TinyInteractions();
    ExpectDeterministic(
        [&] { return std::make_unique<Tgat>(ds, TgatConfig{16, 2, 1, 4, 7}); },
        SmallRun(sim::ExecMode::kHybrid));
}

TEST(TgatTest, TwoLayerRecursionRuns)
{
    const auto ds = TinyInteractions();
    Tgat model(ds, TgatConfig{8, 2, 2, 2, 7});
    sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
    RunConfig run = SmallRun(sim::ExecMode::kHybrid);
    run.max_events = 32;
    const RunResult r = model.RunInference(rt, run);
    EXPECT_GT(r.total_us, 0.0);
    EXPECT_NE(r.output_checksum, 0.0);
}

TEST(TgatTest, EmbeddingIsTimeDependent)
{
    const auto ds = TinyInteractions();
    Tgat model(ds, TgatConfig{16, 2, 1, 4, 7});
    graph::TemporalAdjacency adj(ds.stream);
    graph::TemporalNeighborSampler sampler(
        adj, graph::SamplingStrategy::kMostRecent, 3);
    const double t_mid = (ds.stream.StartTime() + ds.stream.EndTime()) / 2.0;
    const Tensor early = model.ComputeEmbedding(sampler, 0, t_mid, 4, 1);
    const Tensor late =
        model.ComputeEmbedding(sampler, 0, ds.stream.EndTime() + 1.0, 4, 1);
    EXPECT_EQ(early.GetShape(), late.GetShape());
    // A node's temporal embedding must evolve as history accumulates.
    double diff = 0.0;
    for (int64_t i = 0; i < early.NumElements(); ++i) {
        diff += std::fabs(early.At(i) - late.At(i));
    }
    EXPECT_GT(diff, 1e-6);
}

TEST(TgnTest, RunsAndUpdatesMemory)
{
    const auto ds = TinyInteractions();
    Tgn model(ds, TgnConfig{16, 16, 2, 11});
    const Tensor before = model.Memory().Table();
    sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
    const RunResult r = model.RunInference(rt, SmallRun(sim::ExecMode::kHybrid));
    EXPECT_GT(r.total_us, 0.0);
    EXPECT_GT(r.breakdown.SharePct("Update Memory"), 0.0);
    EXPECT_GT(r.breakdown.SharePct("Compute Embedding"), 0.0);
    EXPECT_GT(r.breakdown.SharePct("Aggregate Messages Passing"), 0.0);
    // Node memory must actually change during inference.
    const Tensor after = model.Memory().Table();
    double diff = 0.0;
    for (int64_t i = 0; i < before.NumElements(); ++i) {
        diff += std::fabs(before.At(i) - after.At(i));
    }
    EXPECT_GT(diff, 1e-3);
}

TEST(TgnTest, Deterministic)
{
    const auto ds = TinyInteractions();
    ExpectDeterministic(
        [&] { return std::make_unique<Tgn>(ds, TgnConfig{16, 16, 2, 11}); },
        SmallRun(sim::ExecMode::kHybrid));
}

TEST(TgnTest, MessageDimComposition)
{
    const auto ds = TinyInteractions();
    Tgn model(ds, TgnConfig{16, 16, 2, 11});
    EXPECT_EQ(model.MessageDim(), 16 + 16 + 16 + 8);
    EXPECT_GT(model.WeightBytes(), 0);
}

TEST(JodieTest, RunsWithPaperCategories)
{
    const auto ds = TinyInteractions();
    Jodie model(ds, JodieConfig{16, 13});
    sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
    const RunResult r = model.RunInference(rt, SmallRun(sim::ExecMode::kHybrid));
    EXPECT_GT(r.total_us, 0.0);
    EXPECT_GT(r.breakdown.SharePct("Load Embedding"), 0.0);
    EXPECT_GT(r.breakdown.SharePct("Project User Embedding"), 0.0);
    EXPECT_GT(r.breakdown.SharePct("Predict Item Embedding"), 0.0);
    EXPECT_GT(r.breakdown.SharePct("Update Embedding"), 0.0);
}

TEST(JodieTest, DeterministicAndEmbeddingsEvolve)
{
    const auto ds = TinyInteractions();
    ExpectDeterministic(
        [&] { return std::make_unique<Jodie>(ds, JodieConfig{16, 13}); },
        SmallRun(sim::ExecMode::kCpuOnly));

    Jodie model(ds, JodieConfig{16, 13});
    const Tensor before = model.UserEmbeddings().Table();
    sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
    model.RunInference(rt, SmallRun(sim::ExecMode::kHybrid));
    const Tensor after = model.UserEmbeddings().Table();
    double diff = 0.0;
    for (int64_t i = 0; i < before.NumElements(); ++i) {
        diff += std::fabs(before.At(i) - after.At(i));
    }
    EXPECT_GT(diff, 1e-3);
}

TEST(EvolveGcnTest, BothVariantsRun)
{
    const auto ds = TinySnapshots();
    for (const auto variant : {EvolveGcnVariant::kO, EvolveGcnVariant::kH}) {
        EvolveGcn model(ds, EvolveGcnConfig{variant, 8, 17});
        sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
        const RunResult r =
            model.RunInference(rt, SmallRun(sim::ExecMode::kHybrid));
        EXPECT_EQ(r.iterations, 4);  // one per snapshot
        EXPECT_GT(r.breakdown.SharePct("GNN"), 0.0);
        EXPECT_GT(r.breakdown.SharePct("RNN"), 0.0);
        EXPECT_GT(r.breakdown.SharePct("Memory Copy"), 0.0);
        if (variant == EvolveGcnVariant::kH) {
            EXPECT_GT(r.breakdown.SharePct("top-k"), 0.0);
            EXPECT_EQ(r.model, "EvolveGCN-H");
        } else {
            EXPECT_EQ(r.breakdown.SharePct("top-k"), 0.0);
            EXPECT_EQ(r.model, "EvolveGCN-O");
        }
    }
}

TEST(EvolveGcnTest, WeightsEvolveAcrossSteps)
{
    const auto ds = TinySnapshots();
    EvolveGcn model(ds, EvolveGcnConfig{EvolveGcnVariant::kO, 8, 17});
    const Tensor w_before = model.LayerWeight(0);
    sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
    model.RunInference(rt, SmallRun(sim::ExecMode::kHybrid));
    const Tensor w_after = model.LayerWeight(0);
    double diff = 0.0;
    for (int64_t i = 0; i < w_before.NumElements(); ++i) {
        diff += std::fabs(w_before.At(i) - w_after.At(i));
    }
    EXPECT_GT(diff, 1e-3);
    EXPECT_THROW(model.LayerWeight(5), Error);
}

TEST(MolDgnnTest, RunsWithMemoryCopyDominant)
{
    const auto ds = TinyMolecular();
    MolDgnn model(ds, MolDgnnConfig{8, 16, 19});
    sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
    RunConfig run = SmallRun(sim::ExecMode::kHybrid);
    run.batch_size = 8;
    const RunResult r = model.RunInference(rt, run);
    EXPECT_EQ(r.iterations, 3);  // 24 frames / 8
    EXPECT_GT(r.breakdown.SharePct("Memory Copy"), 0.0);
    EXPECT_GT(r.breakdown.SharePct("GCN"), 0.0);
    EXPECT_GT(r.breakdown.SharePct("LSTM"), 0.0);
    EXPECT_GT(r.breakdown.SharePct("FFN"), 0.0);
}

TEST(MolDgnnTest, Deterministic)
{
    const auto ds = TinyMolecular();
    ExpectDeterministic(
        [&] { return std::make_unique<MolDgnn>(ds, MolDgnnConfig{8, 16, 19}); },
        SmallRun(sim::ExecMode::kHybrid));
}

TEST(AstgnnTest, RunsWithPaperCategories)
{
    const auto ds = TinyTraffic();
    Astgnn model(ds, AstgnnConfig{8, 2, 1, 1, 23});
    sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
    RunConfig run = SmallRun(sim::ExecMode::kHybrid);
    run.batch_size = 4;
    const RunResult r = model.RunInference(rt, run);
    EXPECT_GT(r.total_us, 0.0);
    EXPECT_GT(r.breakdown.SharePct("Temporal Attention"), 0.0);
    EXPECT_GT(r.breakdown.SharePct("Spatial-attention GCN"), 0.0);
    EXPECT_GT(r.breakdown.SharePct("Position Encoding"), 0.0);
    EXPECT_GT(r.breakdown.SharePct("Memory Copy"), 0.0);
    EXPECT_GT(r.breakdown.SharePct("Etc(data loading, cuda sync)"), 0.0);
}

TEST(AstgnnTest, TemporalAttentionDominatesSpatial)
{
    // Paper 4.2.2: temporal attention > 3x spatial GCN.
    const auto ds = TinyTraffic();
    Astgnn model(ds, AstgnnConfig{8, 2, 2, 2, 23});
    sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
    RunConfig run = SmallRun(sim::ExecMode::kHybrid);
    run.batch_size = 8;
    const RunResult r = model.RunInference(rt, run);
    EXPECT_GT(r.breakdown.TimeUs("Temporal Attention"),
              r.breakdown.TimeUs("Spatial-attention GCN"));
}

TEST(DyRepTest, SequentialEventsAndIntensity)
{
    const auto ds = TinyPointProcess();
    DyRep model(ds, DyRepConfig{8, 3, 29});
    sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
    const RunResult r = model.RunInference(rt, SmallRun(sim::ExecMode::kHybrid));
    EXPECT_EQ(r.iterations, 60);  // one per event
    EXPECT_GT(r.breakdown.SharePct("Temporal Attention"), 0.0);
    EXPECT_GT(r.breakdown.SharePct("Node Embedding Update"), 0.0);
    EXPECT_GT(r.breakdown.SharePct("Conditional Intensity"), 0.0);
    // Intensities are positive (softplus).
    EXPECT_GT(model.Intensity(0, 1), 0.0);
}

TEST(DyRepTest, ExpectedNextEventTimeIsInverseIntensity)
{
    const auto ds = TinyPointProcess();
    DyRep model(ds, DyRepConfig{8, 3, 29});
    const double lambda = model.Intensity(0, 1);
    EXPECT_GT(lambda, 0.0);
    EXPECT_NEAR(model.ExpectedNextEventTime(0, 1), 1.0 / lambda, 1e-12);
    // Hotter pairs (higher intensity) are expected sooner.
    const double t01 = model.ExpectedNextEventTime(0, 1);
    const double t23 = model.ExpectedNextEventTime(2, 3);
    EXPECT_NE(t01, t23);
}

TEST(DyRepTest, Deterministic)
{
    const auto ds = TinyPointProcess();
    ExpectDeterministic(
        [&] { return std::make_unique<DyRep>(ds, DyRepConfig{8, 3, 29}); },
        SmallRun(sim::ExecMode::kHybrid));
}

TEST(LdgTest, BothEncodersRun)
{
    const auto ds = TinyPointProcess();
    for (const auto enc : {LdgEncoder::kMlp, LdgEncoder::kBilinear}) {
        Ldg model(ds, LdgConfig{enc, 8, 4, 3, 31});
        sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
        const RunResult r =
            model.RunInference(rt, SmallRun(sim::ExecMode::kHybrid));
        EXPECT_EQ(r.iterations, 60);
        EXPECT_GT(r.breakdown.SharePct("Encoder (NRI)"), 0.0);
        EXPECT_GT(r.breakdown.SharePct("Bilinear Decoder"), 0.0);
        if (enc == LdgEncoder::kMlp) {
            EXPECT_EQ(r.model, "LDG-MLP");
        } else {
            EXPECT_EQ(r.model, "LDG-bilinear");
        }
    }
}

TEST(LdgTest, PairScoreIsBilinear)
{
    const auto ds = TinyPointProcess();
    Ldg model(ds, LdgConfig{LdgEncoder::kMlp, 8, 4, 3, 31});
    // Bilinear form: score depends on both arguments.
    const double s01 = model.PairScore(0, 1);
    const double s02 = model.PairScore(0, 2);
    EXPECT_NE(s01, s02);
}

TEST(AllModelsTest, WarmupReportedOnGpuRuns)
{
    const auto ds = TinyInteractions();
    Tgn model(ds, TgnConfig{16, 16, 2, 11});
    sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
    const RunResult r = model.RunInference(rt, SmallRun(sim::ExecMode::kHybrid));
    EXPECT_GT(r.warmup_one_time_us, 1e6);  // seconds of one-time warm-up
    EXPECT_GT(r.warmup_per_run_us, 0.0);
    // Warm-up is outside the measured window.
    EXPECT_LT(r.total_us, r.warmup_one_time_us);
}

TEST(AllModelsTest, NumericCapKeepsCostAccountingIdentical)
{
    // With a numeric cap the simulated timing must not change — only the
    // host-side math volume does.
    const auto ds = TinyInteractions();
    RunConfig full = SmallRun(sim::ExecMode::kHybrid);
    RunConfig capped = full;
    capped.numeric_cap = 2;

    Tgat m1(ds, TgatConfig{16, 2, 1, 4, 7});
    sim::Runtime r1 = MakeRuntime(sim::ExecMode::kHybrid);
    const RunResult a = m1.RunInference(r1, full);

    Tgat m2(ds, TgatConfig{16, 2, 1, 4, 7});
    sim::Runtime r2 = MakeRuntime(sim::ExecMode::kHybrid);
    const RunResult b = m2.RunInference(r2, capped);

    EXPECT_DOUBLE_EQ(a.total_us, b.total_us);
    EXPECT_EQ(a.h2d_bytes, b.h2d_bytes);
    EXPECT_EQ(a.iterations, b.iterations);
}

TEST(AllModelsTest, CategoryTimesPartitionElapsedWindow)
{
    // Invariant the Fig 7 breakdowns rely on: after a full run, the
    // per-category host times partition the measured window exactly —
    // every microsecond the host spends is attributed to exactly one
    // category (async kernel time is captured through the Synchronize
    // waits the models perform).
    const auto interactions = TinyInteractions();
    const auto snapshots = TinySnapshots();
    const auto molecular = TinyMolecular();
    const auto traffic = TinyTraffic();
    const auto point_process = TinyPointProcess();

    std::vector<std::unique_ptr<DgnnModel>> all;
    all.push_back(std::make_unique<Jodie>(interactions, JodieConfig{16, 13}));
    all.push_back(std::make_unique<Tgat>(interactions, TgatConfig{16, 2, 1, 4, 7}));
    all.push_back(std::make_unique<Tgn>(interactions, TgnConfig{16, 16, 2, 11}));
    all.push_back(std::make_unique<DyRep>(point_process, DyRepConfig{8, 3, 29}));
    all.push_back(std::make_unique<Ldg>(point_process,
                                        LdgConfig{LdgEncoder::kMlp, 8, 4, 3, 31}));
    all.push_back(std::make_unique<EvolveGcn>(
        snapshots, EvolveGcnConfig{EvolveGcnVariant::kO, 8, 17}));
    all.push_back(std::make_unique<Astgnn>(traffic, AstgnnConfig{8, 2, 1, 1, 23}));
    all.push_back(std::make_unique<MolDgnn>(molecular, MolDgnnConfig{8, 16, 19}));
    ASSERT_EQ(all.size(), 8u);  // every model in models/

    for (const auto& model : all) {
        for (const sim::ExecMode mode :
             {sim::ExecMode::kCpuOnly, sim::ExecMode::kHybrid}) {
            sim::Runtime rt = MakeRuntime(mode);
            model->RunInference(rt, SmallRun(mode));
            double category_sum = 0.0;
            for (const auto& [category, time_us] : rt.CategoryTimes()) {
                category_sum += time_us;
            }
            // Exact partition up to double rounding: the same host-time
            // deltas are summed in different association orders, so allow
            // a 1e-9 relative slack (sub-nanosecond here).
            const double tolerance =
                1e-9 * std::max(1.0, rt.ElapsedInWindow());
            EXPECT_NEAR(category_sum, rt.ElapsedInWindow(), tolerance)
                << model->Name() << " in mode " << sim::ToString(mode);
        }
    }
}

}  // namespace
}  // namespace dgnn::models
