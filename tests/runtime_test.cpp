// Tests for the simulated runtime: clock semantics, async kernels, copies,
// synchronization, category accounting, measurement windows.

#include <gtest/gtest.h>

#include "support/check.hpp"

#include "sim/runtime.hpp"

namespace dgnn::sim {
namespace {

RuntimeConfig
HybridConfig()
{
    RuntimeConfig c;
    c.mode = ExecMode::kHybrid;
    return c;
}

RuntimeConfig
CpuConfig()
{
    RuntimeConfig c;
    c.mode = ExecMode::kCpuOnly;
    return c;
}

KernelDesc
SmallKernel()
{
    KernelDesc k;
    // Assign via std::string to dodge GCC 12's -Wrestrict false positive on
    // short-literal assignment under -O2 (GCC bug 105329).
    k.name = std::string("k");
    k.flops = 1000000;
    k.bytes = 1000;
    k.parallel_items = 1000;
    return k;
}

TEST(RuntimeTest, StartsAtTimeZero)
{
    Runtime rt(HybridConfig());
    EXPECT_DOUBLE_EQ(rt.Now(), 0.0);
    EXPECT_TRUE(rt.HasGpu());
    Runtime cpu_rt(CpuConfig());
    EXPECT_FALSE(cpu_rt.HasGpu());
    EXPECT_THROW(cpu_rt.Gpu(), Error);
}

TEST(RuntimeTest, HostOpAdvancesClock)
{
    Runtime rt(HybridConfig());
    const SimTime end = rt.RunHost(SmallKernel());
    EXPECT_GT(end, 0.0);
    EXPECT_DOUBLE_EQ(rt.Now(), end);
    EXPECT_GT(rt.Cpu().BusyTime(), 0.0);
}

TEST(RuntimeTest, RunHostForExactDuration)
{
    Runtime rt(HybridConfig());
    rt.RunHostFor("load", 42.0);
    EXPECT_DOUBLE_EQ(rt.Now(), 42.0);
    EXPECT_THROW(rt.RunHostFor("bad", -1.0), Error);
}

TEST(RuntimeTest, GpuKernelIsAsynchronous)
{
    Runtime rt(HybridConfig());
    const SimTime completion = rt.Launch(SmallKernel());
    // Host only paid the submit cost; the kernel finishes later.
    EXPECT_LT(rt.Now(), completion);
    const SimTime synced = rt.Synchronize();
    EXPECT_DOUBLE_EQ(synced, completion);
    EXPECT_DOUBLE_EQ(rt.Now(), completion);
    EXPECT_GT(rt.SyncWaitTime(), 0.0);
}

TEST(RuntimeTest, CpuOnlyKernelIsSynchronous)
{
    Runtime rt(CpuConfig());
    const SimTime completion = rt.Launch(SmallKernel());
    EXPECT_DOUBLE_EQ(rt.Now(), completion);
    // Synchronize is a no-op without a GPU.
    EXPECT_DOUBLE_EQ(rt.Synchronize(), completion);
    EXPECT_DOUBLE_EQ(rt.SyncWaitTime(), 0.0);
}

TEST(RuntimeTest, KernelsSerializeOnStream)
{
    Runtime rt(HybridConfig());
    const SimTime first = rt.Launch(SmallKernel());
    const SimTime second = rt.Launch(SmallKernel());
    EXPECT_GT(second, first);
}

TEST(RuntimeTest, CopiesBlockHostAndCount)
{
    Runtime rt(HybridConfig());
    const SimTime t0 = rt.Now();
    rt.CopyToDevice(1 << 20, "h2d");
    EXPECT_GT(rt.Now(), t0);
    EXPECT_EQ(rt.BytesToDevice(), 1 << 20);
    rt.CopyToHost(1 << 10, "d2h");
    EXPECT_EQ(rt.BytesToHost(), 1 << 10);
    EXPECT_EQ(rt.TransferCount(), 2);
    EXPECT_GT(rt.TransferTime(), 0.0);
}

TEST(RuntimeTest, CopiesAreNoOpsInCpuMode)
{
    Runtime rt(CpuConfig());
    rt.CopyToDevice(1 << 20, "h2d");
    rt.CopyToHost(1 << 20, "d2h");
    EXPECT_DOUBLE_EQ(rt.Now(), 0.0);
    EXPECT_EQ(rt.BytesToDevice(), 0);
    EXPECT_EQ(rt.TransferCount(), 0);
}

TEST(RuntimeTest, CopyToHostWaitsForKernels)
{
    Runtime rt(HybridConfig());
    const SimTime kernel_done = rt.Launch(SmallKernel());
    rt.CopyToHost(100, "result");
    // The D2H copy cannot start before the producing kernel finished.
    EXPECT_GT(rt.Now(), kernel_done);
}

TEST(RuntimeTest, KernelAfterCopyWaitsForData)
{
    Runtime rt(HybridConfig());
    rt.CopyToDevice(10 << 20, "input");
    const SimTime copy_done = rt.Now();
    const SimTime kernel_done = rt.Launch(SmallKernel());
    EXPECT_GT(kernel_done, copy_done);
}

TEST(RuntimeTest, CategoryAccountingPartitionsElapsed)
{
    Runtime rt(HybridConfig());
    rt.ResetMeasurementWindow();
    {
        CategoryScope scope(rt, "Phase A");
        rt.RunHostFor("a", 10.0);
    }
    {
        CategoryScope scope(rt, "Phase B");
        rt.RunHostFor("b", 30.0);
        rt.Launch(SmallKernel());
        (void)rt.Synchronize();
    }
    const auto& cats = rt.CategoryTimes();
    double total = 0.0;
    for (const auto& [name, t] : cats) {
        total += t;
    }
    EXPECT_NEAR(total, rt.ElapsedInWindow(), 1e-9);
    EXPECT_DOUBLE_EQ(cats.at("Phase A"), 10.0);
    EXPECT_GT(cats.at("Phase B"), 30.0);
}

TEST(RuntimeTest, NestedCategoriesAttributeToInnermost)
{
    Runtime rt(HybridConfig());
    rt.PushCategory("outer");
    rt.RunHostFor("x", 5.0);
    rt.PushCategory("inner");
    rt.RunHostFor("y", 7.0);
    rt.PopCategory();
    rt.RunHostFor("z", 2.0);
    rt.PopCategory();
    EXPECT_DOUBLE_EQ(rt.CategoryTimes().at("outer"), 7.0);
    EXPECT_DOUBLE_EQ(rt.CategoryTimes().at("inner"), 7.0);
    EXPECT_THROW(rt.PopCategory(), Error);
}

TEST(RuntimeTest, MeasurementWindowResets)
{
    Runtime rt(HybridConfig());
    rt.RunHostFor("setup", 100.0);
    rt.CopyToDevice(1000, "w");
    rt.ResetMeasurementWindow();
    EXPECT_DOUBLE_EQ(rt.ElapsedInWindow(), 0.0);
    EXPECT_EQ(rt.BytesToDevice(), 0);
    EXPECT_DOUBLE_EQ(rt.Cpu().BusyTime(), 0.0);
    rt.RunHostFor("work", 50.0);
    EXPECT_DOUBLE_EQ(rt.ElapsedInWindow(), 50.0);
}

TEST(RuntimeTest, UtilizationReflectsBusyFraction)
{
    Runtime rt(HybridConfig());
    rt.ResetMeasurementWindow();
    rt.Launch(SmallKernel());
    (void)rt.Synchronize();
    rt.RunHostFor("idle_gpu", rt.ElapsedInWindow());  // double the window
    const double util = rt.ComputeUtilizationPct();
    EXPECT_GT(util, 0.0);
    EXPECT_LT(util, 100.0);
}

TEST(RuntimeTest, AllocationsTrackPeaks)
{
    Runtime rt(HybridConfig());
    {
        DeviceBuffer buf = rt.AllocDevice(1 << 20, "activations");
        EXPECT_EQ(rt.Gpu().Memory().LiveBytes(), 1 << 20);
        DeviceBuffer host_buf = rt.AllocHost(1 << 10, "staging");
        EXPECT_EQ(rt.Cpu().Memory().LiveBytes(), 1 << 10);
    }
    // RAII released both.
    EXPECT_EQ(rt.Gpu().Memory().LiveBytes(), 0);
    EXPECT_EQ(rt.Cpu().Memory().LiveBytes(), 0);
    EXPECT_EQ(rt.Gpu().Memory().PeakBytes(), 1 << 20);
}

TEST(RuntimeTest, DeviceBufferMoveSemantics)
{
    Runtime rt(HybridConfig());
    DeviceBuffer a = rt.AllocDevice(100, "a");
    DeviceBuffer b = std::move(a);
    EXPECT_FALSE(a.Valid());
    EXPECT_TRUE(b.Valid());
    EXPECT_EQ(b.Bytes(), 100);
    b.Release();
    EXPECT_FALSE(b.Valid());
    EXPECT_EQ(rt.Gpu().Memory().LiveBytes(), 0);
}

TEST(RuntimeTest, DeviceBufferMoveAssignReleasesExisting)
{
    // Regression: move-assigning into a buffer that still owns an
    // allocation must free that allocation (not leak it in the pool).
    Runtime rt(HybridConfig());
    DeviceBuffer a = rt.AllocDevice(100, "a");
    DeviceBuffer b = rt.AllocDevice(250, "b");
    EXPECT_EQ(rt.Gpu().Memory().LiveBytes(), 350);
    EXPECT_EQ(rt.Gpu().Memory().LiveAllocationCount(), 2);

    a = std::move(b);  // a's original 100 B must be released here
    EXPECT_EQ(rt.Gpu().Memory().LiveBytes(), 250);
    EXPECT_EQ(rt.Gpu().Memory().LiveAllocationCount(), 1);
    EXPECT_TRUE(a.Valid());
    EXPECT_EQ(a.Bytes(), 250);
    EXPECT_FALSE(b.Valid());

    a.Release();
    EXPECT_EQ(rt.Gpu().Memory().LiveBytes(), 0);
}

TEST(RuntimeTest, AsyncCopyDoesNotBlockHost)
{
    Runtime rt(HybridConfig());
    const SimTime before = rt.Now();
    const SimTime copy_end = rt.CopyToDeviceAsync(8 << 20, "h2d_async");
    // Host paid only the submit overhead; the DMA runs behind it.
    EXPECT_DOUBLE_EQ(rt.Now(), before + RuntimeConfig{}.submit_overhead_us);
    EXPECT_GT(copy_end, rt.Now());
    EXPECT_DOUBLE_EQ(rt.StreamReadyTime(StreamId::kCopy), copy_end);
    EXPECT_EQ(rt.BytesToDevice(), 8 << 20);
    // The blocking variant would have advanced the host to the copy end.
    Runtime blocking(HybridConfig());
    blocking.CopyToDevice(8 << 20, "h2d_blocking");
    EXPECT_GT(blocking.Now(), rt.Now());
}

TEST(RuntimeTest, EventsOrderComputeAfterAsyncCopy)
{
    Runtime rt(HybridConfig());
    const SimTime copy_end = rt.CopyToDeviceAsync(4 << 20, "inputs");
    const Event inputs_ready = rt.RecordEvent(StreamId::kCopy);
    EXPECT_DOUBLE_EQ(inputs_ready.ready_us, copy_end);

    rt.StreamWaitEvent(StreamId::kCompute, inputs_ready);
    const SimTime kernel_end = rt.Launch(SmallKernel());
    // The kernel may not start before its input copy finished.
    EXPECT_GE(kernel_end, copy_end);

    const Event compute_done = rt.RecordEvent(StreamId::kCompute);
    EXPECT_DOUBLE_EQ(compute_done.ready_us, kernel_end);

    // Host wait on the event advances the clock and counts as sync time.
    const SimTime waited = rt.WaitEvent(compute_done);
    EXPECT_DOUBLE_EQ(waited, kernel_end);
    EXPECT_GT(rt.SyncWaitTime(), 0.0);
}

TEST(RuntimeTest, RecordEventOnIdleStreamCompletesImmediately)
{
    Runtime rt(HybridConfig());
    rt.RunHostFor("host_work", 100.0);
    const Event e = rt.RecordEvent(StreamId::kCompute);
    // Nothing is queued: the event is already complete at record time.
    EXPECT_DOUBLE_EQ(e.ready_us, rt.Now());
    const SimTime before = rt.Now();
    (void)rt.WaitEvent(e);
    EXPECT_DOUBLE_EQ(rt.Now(), before);
    EXPECT_DOUBLE_EQ(rt.SyncWaitTime(), 0.0);
}

TEST(RuntimeTest, AsyncPrimitivesAreNoOpsInCpuMode)
{
    Runtime rt(CpuConfig());
    const SimTime t0 = rt.Now();
    EXPECT_DOUBLE_EQ(rt.CopyToDeviceAsync(1 << 20, "h2d"), t0);
    EXPECT_DOUBLE_EQ(rt.CopyToHostAsync(1 << 20, "d2h"), t0);
    const Event e = rt.RecordEvent(StreamId::kCopy);
    rt.StreamWaitEvent(StreamId::kCompute, e);
    (void)rt.WaitEvent(e);
    EXPECT_DOUBLE_EQ(rt.Now(), t0);
    EXPECT_EQ(rt.BytesToDevice(), 0);
    EXPECT_EQ(rt.TransferCount(), 0);
}

TEST(RuntimeTest, SynchronizeDrainsCopyStreamToo)
{
    Runtime rt(HybridConfig());
    const SimTime copy_end = rt.CopyToDeviceAsync(16 << 20, "big_h2d");
    EXPECT_LT(rt.Now(), copy_end);
    (void)rt.Synchronize();
    EXPECT_DOUBLE_EQ(rt.Now(), copy_end);
}

TEST(RuntimeTest, AsyncCopyOverlapsComputeAcrossStreams)
{
    // Pipelined issue order: kernel on the compute stream, then an async
    // H2D for the *next* batch on the copy stream. Both proceed
    // concurrently, so the drain point is the max of the two, strictly
    // less than the serial sum.
    KernelDesc big = SmallKernel();
    big.flops = 500000000;
    big.parallel_items = 1 << 20;

    Runtime serial(HybridConfig());
    serial.Launch(big);
    (void)serial.Synchronize();
    serial.CopyToDevice(32 << 20, "h2d");
    const SimTime serial_total = serial.Now();

    Runtime overlapped(HybridConfig());
    overlapped.Launch(big);
    (void)overlapped.CopyToDeviceAsync(32 << 20, "h2d");
    (void)overlapped.Synchronize();
    const SimTime overlapped_total = overlapped.Now();

    EXPECT_LT(overlapped_total, serial_total);
}

TEST(RuntimeTest, IdleUntilAdvancesClockWithoutBusyTime)
{
    Runtime rt(HybridConfig());
    rt.ResetMeasurementWindow();
    const SimTime busy_before = rt.Cpu().BusyTime();
    rt.PushCategory("Serving Idle");
    rt.IdleUntil(rt.Now() + 1234.5);
    rt.PopCategory();
    EXPECT_DOUBLE_EQ(rt.ElapsedInWindow(), 1234.5);
    EXPECT_DOUBLE_EQ(rt.Cpu().BusyTime(), busy_before);
    EXPECT_DOUBLE_EQ(rt.CategoryTimes().at("Serving Idle"), 1234.5);
    // Idling into the past is a no-op.
    const SimTime now = rt.Now();
    rt.IdleUntil(now - 100.0);
    EXPECT_DOUBLE_EQ(rt.Now(), now);
}

TEST(RuntimeTest, TraceCarriesKernelDescriptorFields)
{
    Runtime rt(HybridConfig());
    KernelDesc k = SmallKernel();
    k.parallel_items = 777;
    k.irregular = true;
    rt.Launch(k);
    const TraceEvent& e = rt.GetTrace().Events().back();
    EXPECT_EQ(e.kind, EventKind::kKernel);
    EXPECT_EQ(e.parallel_items, 777);
    EXPECT_TRUE(e.irregular);
}

TEST(RuntimeTest, WarmupAdvancesClockOnce)
{
    Runtime rt(HybridConfig());
    EXPECT_FALSE(rt.IsWarm());
    const OneTimeWarmup w = rt.EnsureWarm(4 << 20);
    EXPECT_TRUE(rt.IsWarm());
    EXPECT_GT(w.TotalUs(), 1e6);  // seconds of warm-up
    EXPECT_DOUBLE_EQ(rt.Now(), w.TotalUs());
    // Second call is cached and free.
    rt.EnsureWarm(4 << 20);
    EXPECT_DOUBLE_EQ(rt.Now(), w.TotalUs());
}

TEST(RuntimeTest, PerRunWarmupScalesWithBytes)
{
    Runtime rt(HybridConfig());
    const PerRunWarmup small = rt.RunAllocWarmup(1 << 20);
    const PerRunWarmup big = rt.RunAllocWarmup(256 << 20);
    EXPECT_GT(big.alloc_us, small.alloc_us);
}

TEST(RuntimeTest, TraceRecordsAllEventKinds)
{
    Runtime rt(HybridConfig());
    rt.RunHostFor("host", 1.0);
    rt.Launch(SmallKernel());
    rt.CopyToDevice(100, "h2d");
    (void)rt.Synchronize();
    rt.Marker("done");
    bool saw_host = false;
    bool saw_kernel = false;
    bool saw_transfer = false;
    bool saw_marker = false;
    for (const TraceEvent& e : rt.GetTrace().Events()) {
        saw_host |= e.kind == EventKind::kHostOp;
        saw_kernel |= e.kind == EventKind::kKernel;
        saw_transfer |= e.kind == EventKind::kTransfer;
        saw_marker |= e.kind == EventKind::kMarker;
    }
    EXPECT_TRUE(saw_host);
    EXPECT_TRUE(saw_kernel);
    EXPECT_TRUE(saw_transfer);
    EXPECT_TRUE(saw_marker);
}

TEST(RuntimeTest, TraceTimestampsAreOrderedPerDevice)
{
    Runtime rt(HybridConfig());
    for (int i = 0; i < 5; ++i) {
        rt.Launch(SmallKernel());
    }
    (void)rt.Synchronize();
    SimTime prev_end = 0.0;
    for (const TraceEvent& e : rt.GetTrace().Events()) {
        if (e.kind == EventKind::kKernel) {
            EXPECT_GE(e.start_us, prev_end);
            prev_end = e.end_us;
        }
        EXPECT_GE(e.end_us, e.start_us);
    }
}

TEST(RuntimeTest, GpuSlowerForTinySerializedKernels)
{
    // The DyRep/LDG phenomenon: tiny kernels + per-op sync make the GPU
    // path slower than the CPU path.
    KernelDesc tiny;
    tiny.name = "tiny";
    tiny.flops = 10000;
    tiny.bytes = 1000;
    tiny.parallel_items = 32;

    Runtime gpu(HybridConfig());
    gpu.ResetMeasurementWindow();
    for (int i = 0; i < 100; ++i) {
        gpu.Launch(tiny);
        (void)gpu.Synchronize();
    }
    Runtime cpu(CpuConfig());
    cpu.ResetMeasurementWindow();
    for (int i = 0; i < 100; ++i) {
        cpu.Launch(tiny);
        (void)cpu.Synchronize();
    }
    EXPECT_GT(gpu.ElapsedInWindow(), cpu.ElapsedInWindow());
}

TEST(RuntimeTest, GpuFasterForLargeParallelKernels)
{
    KernelDesc big;
    big.name = "big";
    big.flops = 2000000000;
    big.bytes = 1 << 20;
    big.parallel_items = 1000000;

    Runtime gpu(HybridConfig());
    gpu.ResetMeasurementWindow();
    gpu.Launch(big);
    (void)gpu.Synchronize();
    Runtime cpu(CpuConfig());
    cpu.ResetMeasurementWindow();
    cpu.Launch(big);
    EXPECT_LT(gpu.ElapsedInWindow(), cpu.ElapsedInWindow());
}

}  // namespace
}  // namespace dgnn::sim
