// Tests for the device-resident cache: eviction policies, dirty-row
// write-back, stats accounting, the runtime's cache-aware transfer helpers,
// and the invariant the whole design rests on — the cache reshapes the cost
// model (fewer PCIe bytes) without ever touching numerics.

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "support/check.hpp"

#include "cache/device_cache.hpp"
#include "data/temporal_interactions.hpp"
#include "models/jodie.hpp"
#include "models/tgat.hpp"
#include "models/tgn.hpp"
#include "serve/server.hpp"
#include "tensor/random.hpp"

namespace dgnn {
namespace {

using cache::DeviceCache;
using cache::DeviceCacheConfig;
using cache::EvictionPolicy;
using cache::GatherResult;

DeviceCacheConfig
Config(int64_t capacity_rows, EvictionPolicy eviction = EvictionPolicy::kLru,
       int64_t row_bytes = 64)
{
    DeviceCacheConfig config;
    config.capacity_bytes = capacity_rows * row_bytes;
    config.row_bytes = row_bytes;
    config.eviction = eviction;
    return config;
}

// ------------------------------------------------------------- DeviceCache

TEST(DeviceCacheTest, CapacityIsExpressedInBytes)
{
    DeviceCache cache(Config(4, EvictionPolicy::kLru, 256));
    EXPECT_TRUE(cache.Enabled());
    EXPECT_EQ(cache.CapacityRows(), 4);
    EXPECT_EQ(cache.RowBytes(), 256);
    EXPECT_EQ(cache.ResidentRows(), 0);

    cache.Gather({1, 2, 3});
    EXPECT_EQ(cache.ResidentRows(), 3);
    EXPECT_EQ(cache.ResidentBytes(), 3 * 256);
}

TEST(DeviceCacheTest, LruEvictsLeastRecentlyTouched)
{
    DeviceCache cache(Config(2));
    cache.Gather({1, 2});  // resident: 1, 2
    cache.Gather({1});     // touch 1 => 2 is now the LRU victim
    const GatherResult g = cache.Gather({3});
    EXPECT_EQ(g.miss_rows, 1);
    EXPECT_TRUE(cache.Contains(1));
    EXPECT_FALSE(cache.Contains(2));
    EXPECT_TRUE(cache.Contains(3));
}

TEST(DeviceCacheTest, FifoEvictsOldestInsertedDespiteTouches)
{
    DeviceCache cache(Config(2, EvictionPolicy::kFifo));
    cache.Gather({1, 2});
    cache.Gather({1});  // touching 1 must NOT promote it under FIFO
    cache.Gather({3});
    EXPECT_FALSE(cache.Contains(1));
    EXPECT_TRUE(cache.Contains(2));
    EXPECT_TRUE(cache.Contains(3));
}

TEST(DeviceCacheTest, DuplicateKeysWithinOneGatherHitAfterFirst)
{
    DeviceCache cache(Config(8));
    const GatherResult g = cache.Gather({5, 5, 5});
    EXPECT_EQ(g.miss_rows, 1);
    EXPECT_EQ(g.hit_rows, 2);
}

TEST(DeviceCacheTest, DirtyRowsOweWritebackOnEviction)
{
    DeviceCache cache(Config(2));
    cache.Gather({1, 2});
    cache.MarkDirty({1});
    // Insert two new rows: both residents leave, but only row 1 was dirty.
    const GatherResult g = cache.Gather({3, 4});
    EXPECT_EQ(g.writeback_rows, 1);
    EXPECT_EQ(cache.Stats().evictions, 2);
    EXPECT_EQ(cache.Stats().writeback_rows, 1);
}

TEST(DeviceCacheTest, GatherMarkDirtyStampsRowsAtTouchTime)
{
    DeviceCache cache(Config(4));
    cache.Gather({1, 2}, /*mark_dirty=*/true);
    EXPECT_EQ(cache.FlushDirty(), 2);

    // A dirty hit on a clean row upgrades it.
    cache.Gather({1});
    cache.Gather({1}, /*mark_dirty=*/true);
    EXPECT_EQ(cache.FlushDirty(), 1);
}

TEST(DeviceCacheTest, SameBatchEvictionStillOwesWriteback)
{
    // A mutable-state batch whose unique-row count exceeds capacity: rows
    // inserted and evicted within ONE gather must still pay their
    // write-back — this is the thrashing case a deferred MarkDirty would
    // silently drop (the updates would simply vanish from the accounting).
    DeviceCache cache(Config(2));
    const GatherResult g =
        cache.Gather({1, 2, 3, 4, 5}, /*mark_dirty=*/true);
    EXPECT_EQ(g.miss_rows, 5);
    EXPECT_EQ(g.writeback_rows, 3);  // 1, 2, 3 evicted dirty
    EXPECT_EQ(cache.FlushDirty(), 2);  // 4, 5 still resident and dirty
}

TEST(DeviceCacheTest, FlushDirtyCountsAndClears)
{
    DeviceCache cache(Config(4));
    cache.Gather({1, 2, 3});
    cache.MarkDirty({1, 3});
    cache.MarkDirty({99});  // absent keys are ignored
    EXPECT_EQ(cache.FlushDirty(), 2);
    EXPECT_EQ(cache.FlushDirty(), 0);  // bits cleared
    EXPECT_EQ(cache.Stats().writeback_rows, 2);
}

TEST(DeviceCacheTest, DisabledCacheMissesEverythingAndRetainsNothing)
{
    DeviceCache disabled;  // default-constructed
    const GatherResult g = disabled.Gather({1, 2, 1});
    EXPECT_EQ(g.miss_rows, 3);
    EXPECT_EQ(g.hit_rows, 0);
    EXPECT_FALSE(disabled.Enabled());
    EXPECT_EQ(disabled.ResidentRows(), 0);

    DeviceCacheConfig zero;
    zero.capacity_bytes = 0;
    DeviceCache cache(zero);
    EXPECT_FALSE(cache.Enabled());
    EXPECT_EQ(cache.Gather({7}).miss_rows, 1);
    EXPECT_EQ(cache.ResidentRows(), 0);
}

TEST(DeviceCacheTest, StatsAccountBytesAndHitRate)
{
    DeviceCache cache(Config(8, EvictionPolicy::kLru, 100));
    cache.Gather({1, 2});
    cache.Gather({1, 2});
    const cache::CacheStats& s = cache.Stats();
    EXPECT_EQ(s.lookups, 4);
    EXPECT_EQ(s.hits, 2);
    EXPECT_EQ(s.misses, 2);
    EXPECT_EQ(s.hit_bytes, 200);
    EXPECT_EQ(s.miss_bytes, 200);
    EXPECT_DOUBLE_EQ(s.HitRate(), 0.5);

    // Delta via operator- (per-run reporting over a shared cache).
    const cache::CacheStats before = s;
    cache.Gather({1});
    const cache::CacheStats delta = cache.Stats() - before;
    EXPECT_EQ(delta.lookups, 1);
    EXPECT_EQ(delta.hits, 1);
}

TEST(DeviceCacheTest, DeterministicHitMissSequenceForSameKeyStream)
{
    auto run = [] {
        Rng rng(123);
        DeviceCache cache(Config(16));
        std::vector<int64_t> sequence;
        for (int i = 0; i < 200; ++i) {
            std::vector<int64_t> keys;
            for (int j = 0; j < 8; ++j) {
                keys.push_back(rng.UniformInt(0, 63));
            }
            const GatherResult g = cache.Gather(keys);
            sequence.push_back(g.hit_rows);
            sequence.push_back(g.miss_rows);
            sequence.push_back(g.writeback_rows);
        }
        return sequence;
    };
    EXPECT_EQ(run(), run());
}

TEST(DeviceCacheTest, InvalidConfigurationsThrow)
{
    DeviceCacheConfig negative;
    negative.capacity_bytes = -1;
    EXPECT_THROW(DeviceCache{negative}, Error);

    DeviceCacheConfig no_row;
    no_row.capacity_bytes = 1024;
    no_row.row_bytes = 0;
    EXPECT_THROW(DeviceCache{no_row}, Error);
}

// --------------------------------------------------- runtime cost surface

TEST(RuntimeCacheTest, GatherChargesMissesToPcieAndHitsToDevice)
{
    sim::Runtime runtime = models::MakeRuntime(sim::ExecMode::kHybrid);
    runtime.ResetMeasurementWindow();
    runtime.GatherToDevice(4, 6, 256, "state");
    (void)runtime.Synchronize();

    EXPECT_EQ(runtime.BytesToDevice(), 6 * 256);  // misses only
    EXPECT_EQ(runtime.CacheHitBytes(), 4 * 256);

    bool saw_miss_transfer = false;
    bool saw_hit_kernel = false;
    for (const sim::TraceEvent& e : runtime.GetTrace().Events()) {
        if (e.kind == sim::EventKind::kTransfer &&
            e.name == "state:cache_miss_h2d") {
            saw_miss_transfer = true;
        }
        if (e.kind == sim::EventKind::kKernel &&
            e.name == "state:cache_hit_gather") {
            saw_hit_kernel = true;
        }
    }
    EXPECT_TRUE(saw_miss_transfer);
    EXPECT_TRUE(saw_hit_kernel);

    runtime.WriteBackToHost(3, 256, "state");
    EXPECT_EQ(runtime.BytesToHost(), 3 * 256);
}

TEST(RuntimeCacheTest, CpuOnlyModeIsANoOp)
{
    sim::Runtime runtime = models::MakeRuntime(sim::ExecMode::kCpuOnly);
    runtime.ResetMeasurementWindow();
    const sim::SimTime before = runtime.Now();
    runtime.GatherToDevice(4, 6, 256, "state");
    runtime.GatherHits(4, 256, "state");
    runtime.WriteBackToHost(3, 256, "state");
    EXPECT_DOUBLE_EQ(runtime.Now(), before);
    EXPECT_EQ(runtime.BytesToDevice(), 0);
    EXPECT_EQ(runtime.BytesToHost(), 0);
    EXPECT_EQ(runtime.CacheHitBytes(), 0);
}

// ------------------------------------------------------------ model level

data::InteractionDataset
TinyInteractions()
{
    data::InteractionSpec spec;
    spec.name = "tiny";
    spec.num_users = 24;
    spec.num_items = 12;
    spec.num_events = 512;
    spec.edge_feature_dim = 8;
    spec.repeat_prob = 0.8;
    spec.seed = 5;
    return data::GenerateInteractions(spec);
}

models::RunConfig
HybridRun(int64_t cache_capacity_bytes)
{
    models::RunConfig run;
    run.mode = sim::ExecMode::kHybrid;
    run.batch_size = 64;
    run.num_neighbors = 4;
    run.cache.capacity_bytes = cache_capacity_bytes;
    return run;
}

TEST(ModelCacheTest, TgnCachePreservesNumericsAndReducesTransfers)
{
    const auto ds = TinyInteractions();
    const models::TgnConfig config{16, 16, 2, 11};

    models::Tgn uncached_model(ds, config);
    sim::Runtime r1 = models::MakeRuntime(sim::ExecMode::kHybrid);
    const models::RunResult uncached =
        uncached_model.RunInference(r1, HybridRun(0));

    models::Tgn cached_model(ds, config);
    sim::Runtime r2 = models::MakeRuntime(sim::ExecMode::kHybrid);
    const models::RunResult cached = cached_model.RunInference(
        r2, HybridRun(ds.NumNodes() * cached_model.CacheRowBytes()));

    // The cache must never change the math.
    EXPECT_DOUBLE_EQ(cached.output_checksum, uncached.output_checksum);
    // ...while strictly shrinking both PCIe directions on a recurrent
    // stream (memory rows stay resident; sync-back becomes evictions).
    EXPECT_LT(cached.h2d_bytes, uncached.h2d_bytes);
    EXPECT_LT(cached.d2h_bytes, uncached.d2h_bytes);
    EXPECT_GT(cached.cache_stats.hits, 0);
    EXPECT_EQ(cached.cache_hit_bytes, cached.cache_stats.hit_bytes);
    EXPECT_EQ(uncached.cache_stats.lookups, 0);
}

TEST(ModelCacheTest, JodieCachePreservesNumericsAndReducesTransfers)
{
    const auto ds = TinyInteractions();
    const models::JodieConfig config{16, 13};

    models::Jodie uncached_model(ds, config);
    sim::Runtime r1 = models::MakeRuntime(sim::ExecMode::kHybrid);
    const models::RunResult uncached =
        uncached_model.RunInference(r1, HybridRun(0));

    models::Jodie cached_model(ds, config);
    sim::Runtime r2 = models::MakeRuntime(sim::ExecMode::kHybrid);
    const models::RunResult cached = cached_model.RunInference(
        r2, HybridRun(ds.NumNodes() * cached_model.CacheRowBytes()));

    EXPECT_DOUBLE_EQ(cached.output_checksum, uncached.output_checksum);
    EXPECT_LT(cached.h2d_bytes, uncached.h2d_bytes);
    EXPECT_LT(cached.d2h_bytes, uncached.d2h_bytes);
    EXPECT_GT(cached.cache_stats.hits, 0);
}

TEST(ModelCacheTest, CpuOnlyRunBypassesTheCacheUntouched)
{
    const auto ds = TinyInteractions();
    const models::TgnConfig config{16, 16, 2, 11};

    auto run_cpu = [&](int64_t capacity_rows) {
        models::Tgn model(ds, config);
        sim::Runtime runtime = models::MakeRuntime(sim::ExecMode::kCpuOnly);
        models::RunConfig run;
        run.mode = sim::ExecMode::kCpuOnly;
        run.batch_size = 64;
        run.num_neighbors = 4;
        run.cache.capacity_bytes = capacity_rows * model.CacheRowBytes();
        return model.RunInference(runtime, run);
    };
    const models::RunResult without = run_cpu(0);
    const models::RunResult with = run_cpu(ds.NumNodes());

    // A configured cache must leave a CPU-only run bit-identical.
    EXPECT_DOUBLE_EQ(with.output_checksum, without.output_checksum);
    EXPECT_DOUBLE_EQ(with.total_us, without.total_us);
    EXPECT_EQ(with.h2d_bytes, 0);
    EXPECT_EQ(with.cache_stats.lookups, 0);
    EXPECT_EQ(with.cache_hit_bytes, 0);
}

TEST(ModelCacheTest, CachedRunsAreDeterministic)
{
    const auto ds = TinyInteractions();
    auto run_once = [&] {
        models::Tgn model(ds, models::TgnConfig{16, 16, 2, 11});
        sim::Runtime runtime = models::MakeRuntime(sim::ExecMode::kHybrid);
        return model.RunInference(
            runtime, HybridRun(ds.NumNodes() / 2 * model.CacheRowBytes()));
    };
    const models::RunResult a = run_once();
    const models::RunResult b = run_once();
    EXPECT_DOUBLE_EQ(a.output_checksum, b.output_checksum);
    EXPECT_DOUBLE_EQ(a.total_us, b.total_us);
    EXPECT_EQ(a.h2d_bytes, b.h2d_bytes);
    EXPECT_EQ(a.cache_stats.hits, b.cache_stats.hits);
    EXPECT_EQ(a.cache_stats.misses, b.cache_stats.misses);
    EXPECT_EQ(a.cache_stats.evictions, b.cache_stats.evictions);
}

// ---------------------------------------------------------------- serving

TEST(ServingCacheTest, WarmCacheLowersH2dAndStaysWarmAcrossBatches)
{
    const auto ds = TinyInteractions();
    models::Tgn tgn(ds, models::TgnConfig{16, 16, 2, 11});
    const auto requests = serve::TraceRequests(ds.stream, 50000.0, 256);

    serve::ServerOptions options;
    options.executor = serve::ExecutorKind::kSerial;

    serve::ModelSession uncached(tgn, sim::ExecMode::kHybrid, 4);
    serve::FixedSizePolicy p1(32);
    const serve::ServingReport base =
        serve::ServeRequests(uncached, p1, requests, options);

    cache::DeviceCacheConfig cache_config;
    cache_config.capacity_bytes = ds.NumNodes() * tgn.CacheRowBytes();
    serve::ModelSession cached(tgn, sim::ExecMode::kHybrid, 4, cache_config);
    EXPECT_TRUE(cached.CacheEnabled());
    serve::FixedSizePolicy p2(32);
    const serve::ServingReport warm =
        serve::ServeRequests(cached, p2, requests, options);

    EXPECT_EQ(warm.requests, base.requests);
    EXPECT_LT(warm.h2d_bytes, base.h2d_bytes);
    // Recurrent trace nodes must hit across batches — the cross-batch
    // locality the offline path cannot express.
    EXPECT_GT(warm.cache_stats.hits, 0);
    EXPECT_GT(warm.cache_hit_bytes, 0);
    EXPECT_EQ(base.cache_stats.lookups, 0);

    // A second serving run over the same session starts WARM: strictly
    // more hits than the cold first run.
    serve::FixedSizePolicy p3(32);
    const serve::ServingReport second =
        serve::ServeRequests(cached, p3, requests, options);
    EXPECT_GT(second.cache_stats.hits, warm.cache_stats.hits);
    EXPECT_LT(second.h2d_bytes, warm.h2d_bytes);
}

TEST(ServingCacheTest, CachedServingIsDeterministic)
{
    const auto ds = TinyInteractions();
    const auto requests = serve::TraceRequests(ds.stream, 50000.0, 200);
    auto run_once = [&] {
        models::Tgn tgn(ds, models::TgnConfig{16, 16, 2, 11});
        cache::DeviceCacheConfig cache_config;
        cache_config.capacity_bytes =
            ds.NumNodes() / 2 * tgn.CacheRowBytes();
        serve::ModelSession session(tgn, sim::ExecMode::kHybrid, 4,
                                    cache_config);
        serve::FixedSizePolicy policy(32);
        serve::ServerOptions options;
        return serve::ServeRequests(session, policy, requests, options);
    };
    const serve::ServingReport a = run_once();
    const serve::ServingReport b = run_once();
    EXPECT_DOUBLE_EQ(a.latency.P99(), b.latency.P99());
    EXPECT_DOUBLE_EQ(a.makespan_us, b.makespan_us);
    EXPECT_EQ(a.h2d_bytes, b.h2d_bytes);
    EXPECT_EQ(a.cache_stats.hits, b.cache_stats.hits);
    EXPECT_EQ(a.cache_stats.misses, b.cache_stats.misses);
}

TEST(ServingCacheTest, NonEndpointKeyedModelsServeUncached)
{
    // TGAT's per-batch gathers reach sampled-neighbor feature rows the
    // serving loop cannot see from src/dst alone — a cache it cannot
    // resolve honestly. The session must fall back to uncached serving
    // (full transfer volume in the profile) rather than under-account.
    const auto ds = TinyInteractions();
    models::Tgat tgat(ds, models::TgatConfig{16, 2, 1, 4, 7});
    cache::DeviceCacheConfig cache_config;
    cache_config.capacity_bytes = ds.NumNodes() * tgat.CacheRowBytes();
    serve::ModelSession session(tgat, sim::ExecMode::kHybrid, 4, cache_config);
    EXPECT_FALSE(session.CacheEnabled());
    const serve::BatchProfile& p = session.Profile(16);
    EXPECT_EQ(p.state_rows, 0);
    EXPECT_GT(p.h2d_bytes, 0);
}

TEST(ServingCacheTest, CpuOnlySessionBypassesTheCache)
{
    const auto ds = TinyInteractions();
    models::Tgn tgn(ds, models::TgnConfig{16, 16, 2, 11});
    cache::DeviceCacheConfig cache_config;
    cache_config.capacity_bytes = ds.NumNodes() * tgn.CacheRowBytes();
    serve::ModelSession session(tgn, sim::ExecMode::kCpuOnly, 4, cache_config);
    EXPECT_FALSE(session.CacheEnabled());

    const auto requests = serve::TraceRequests(ds.stream, 2000.0, 64);
    serve::TimeoutPolicy policy(16, 3000.0);
    serve::ServerOptions options;
    const serve::ServingReport report =
        serve::ServeRequests(session, policy, requests, options);
    EXPECT_EQ(report.requests, 64);
    EXPECT_EQ(report.h2d_bytes, 0);
    EXPECT_EQ(report.cache_stats.lookups, 0);
}

TEST(ServingCacheTest, MixedBlindBatchesStillChargeBlindStateMovement)
{
    // A batch mixing node-bearing and node-blind requests must charge the
    // blind requests' share of state movement (pro-rated all-miss), not
    // silently drop it because SOME requests carried nodes.
    const auto ds = TinyInteractions();
    models::Tgn tgn(ds, models::TgnConfig{16, 16, 2, 11});
    cache::DeviceCacheConfig cache_config;
    cache_config.capacity_bytes = ds.NumNodes() * tgn.CacheRowBytes();

    auto serve_with = [&](bool blind_half) {
        models::Tgn model(ds, models::TgnConfig{16, 16, 2, 11});
        serve::ModelSession session(model, sim::ExecMode::kHybrid, 4,
                                    cache_config);
        auto requests = serve::TraceRequests(ds.stream, 50000.0, 128);
        if (blind_half) {
            for (size_t i = 0; i < requests.size(); i += 2) {
                requests[i].src = -1;
                requests[i].dst = -1;
            }
        }
        serve::FixedSizePolicy policy(32);
        serve::ServerOptions options;
        options.executor = serve::ExecutorKind::kSerial;
        return serve::ServeRequests(session, policy, requests, options);
    };
    const serve::ServingReport full = serve_with(false);
    const serve::ServingReport mixed = serve_with(true);

    // Blind requests all-miss while their node-bearing twins could have
    // hit: the mixed run must move at least as many H2D bytes as the
    // fully node-bearing one, and its cache sees only half the lookups.
    EXPECT_GE(mixed.h2d_bytes, full.h2d_bytes);
    EXPECT_LT(mixed.cache_stats.lookups, full.cache_stats.lookups);
    EXPECT_GT(mixed.cache_stats.lookups, 0);
}

// ----------------------------------------- randomized invariant checking

/// Independent reference model of the DeviceCache contract, built on a
/// vector (not the cache's intrusive list) so a shared bug can't hide in a
/// shared data structure. Victim = front of `order`; LRU promotes touched
/// rows to the back, FIFO never promotes. `episodes` counts clean->dirty
/// transitions — the conservation law says every such episode is paid for
/// by exactly one write-back (dirty eviction, mid-run flush, or the final
/// flush), so after a final FlushDirty, writebacks == episodes.
struct ReferenceCache {
    int64_t capacity_rows = 0;
    bool lru = true;
    std::vector<int64_t> order;
    std::unordered_map<int64_t, bool> dirty;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t insertions = 0;
    int64_t evictions = 0;
    int64_t writebacks = 0;
    int64_t episodes = 0;

    void Touch(int64_t key, bool mark_dirty)
    {
        const auto it = dirty.find(key);
        if (it != dirty.end()) {
            ++hits;
            if (mark_dirty && !it->second) {
                it->second = true;
                ++episodes;
            }
            if (lru) {
                order.erase(std::find(order.begin(), order.end(), key));
                order.push_back(key);
            }
            return;
        }
        ++misses;
        if (capacity_rows == 0) {
            if (mark_dirty) {
                // Mutated but unretainable: a degenerate dirty episode,
                // opened and paid for in the same lookup.
                ++writebacks;
                ++episodes;
            }
            return;
        }
        while (static_cast<int64_t>(order.size()) >= capacity_rows) {
            const int64_t victim = order.front();
            order.erase(order.begin());
            if (dirty.at(victim)) {
                ++writebacks;
            }
            dirty.erase(victim);
            ++evictions;
        }
        order.push_back(key);
        dirty.emplace(key, mark_dirty);
        ++insertions;
        if (mark_dirty) {
            ++episodes;
        }
    }

    void MarkDirty(int64_t key)
    {
        const auto it = dirty.find(key);
        if (it != dirty.end() && !it->second) {
            it->second = true;
            ++episodes;
        }
    }

    int64_t Flush()
    {
        int64_t flushed = 0;
        // determinism-ok: order-independent count-and-clear
        for (auto& [key, is_dirty] : dirty) {
            if (is_dirty) {
                is_dirty = false;
                ++flushed;
            }
        }
        writebacks += flushed;
        return flushed;
    }
};

void
RunRandomizedCacheTrial(EvictionPolicy policy, int64_t capacity_rows,
                        uint64_t seed, int64_t num_ops)
{
    const int64_t row_bytes = 64;
    DeviceCache cache(Config(capacity_rows, policy, row_bytes));
    ReferenceCache ref;
    ref.capacity_rows = cache.CapacityRows();
    ref.lru = policy == EvictionPolicy::kLru;

    Rng rng(seed);
    // Skewed key mix: most draws from a hot pool ~1.5x capacity (real
    // eviction churn), the rest from a wide cold range.
    auto draw_key = [&]() {
        if (rng.Bernoulli(0.7)) {
            return rng.UniformInt(0, std::max<int64_t>(capacity_rows, 1) * 3 / 2);
        }
        return rng.UniformInt(0, 499);
    };

    for (int64_t op = 0; op < num_ops; ++op) {
        const int64_t kind = rng.UniformInt(0, 19);
        if (kind < 16) {  // Gather, sometimes dirty
            const int64_t batch = rng.UniformInt(1, 12);
            const bool mark_dirty = rng.Bernoulli(0.4);
            std::vector<int64_t> keys;
            for (int64_t i = 0; i < batch; ++i) {
                keys.push_back(draw_key());  // duplicates allowed on purpose
            }
            const GatherResult result = cache.Gather(keys, mark_dirty);
            const int64_t hits_before = ref.hits;
            const int64_t misses_before = ref.misses;
            const int64_t writebacks_before = ref.writebacks;
            for (const int64_t key : keys) {
                ref.Touch(key, mark_dirty);
            }
            ASSERT_EQ(result.hit_rows, ref.hits - hits_before);
            ASSERT_EQ(result.miss_rows, ref.misses - misses_before);
            ASSERT_EQ(result.writeback_rows,
                      ref.writebacks - writebacks_before);
        } else if (kind < 18) {  // MarkDirty a few (possibly absent) keys
            std::vector<int64_t> keys = {draw_key(), draw_key()};
            cache.MarkDirty(keys);
            for (const int64_t key : keys) {
                ref.MarkDirty(key);
            }
        } else if (kind == 18) {  // mid-run flush
            ASSERT_EQ(cache.FlushDirty(), ref.Flush());
        } else {  // probe Contains on a sample key
            const int64_t key = draw_key();
            ASSERT_EQ(cache.Contains(key), ref.dirty.count(key) > 0);
        }

        // Hard invariants after EVERY operation.
        ASSERT_LE(cache.ResidentBytes(), capacity_rows * row_bytes);
        ASSERT_EQ(cache.ResidentRows(),
                  static_cast<int64_t>(ref.order.size()));
        const cache::CacheStats& stats = cache.Stats();
        ASSERT_EQ(stats.hits, ref.hits);
        ASSERT_EQ(stats.misses, ref.misses);
        ASSERT_EQ(stats.lookups, ref.hits + ref.misses);
        ASSERT_EQ(stats.insertions, ref.insertions);
        ASSERT_EQ(stats.evictions, ref.evictions);
        ASSERT_EQ(stats.writeback_rows, ref.writebacks);
        ASSERT_EQ(stats.hit_bytes, ref.hits * row_bytes);
        ASSERT_EQ(stats.miss_bytes, ref.misses * row_bytes);
    }

    // Recency/eviction order must agree exactly, not just in cardinality:
    // every reference-resident key is resident in the cache too.
    for (const int64_t key : ref.order) {
        EXPECT_TRUE(cache.Contains(key));
    }

    // Conservation: drain the dirty set; every clean->dirty episode must
    // have paid exactly one write-back by now — no lost or double syncs.
    ASSERT_EQ(cache.FlushDirty(), ref.Flush());
    EXPECT_EQ(cache.Stats().writeback_rows, ref.episodes);
    EXPECT_EQ(cache.FlushDirty(), 0);  // idempotent once drained
}

TEST(DeviceCacheRandomizedTest, LruMatchesReferenceModelOverRandomOps)
{
    RunRandomizedCacheTrial(EvictionPolicy::kLru, 32, 12345, 3000);
}

TEST(DeviceCacheRandomizedTest, FifoMatchesReferenceModelOverRandomOps)
{
    RunRandomizedCacheTrial(EvictionPolicy::kFifo, 32, 54321, 3000);
}

TEST(DeviceCacheRandomizedTest, TinyAndDisabledCapacitiesStayConsistent)
{
    // Capacity 1 maximizes eviction churn; capacity 0 exercises the
    // unretained-dirty write-back path on every mutating miss.
    RunRandomizedCacheTrial(EvictionPolicy::kLru, 1, 99, 1500);
    RunRandomizedCacheTrial(EvictionPolicy::kFifo, 1, 98, 1500);
    RunRandomizedCacheTrial(EvictionPolicy::kLru, 0, 97, 1500);
}

TEST(ServingCacheTest, NodeBlindArrivalsFallBackToProbeStateVolume)
{
    const auto ds = TinyInteractions();
    models::Tgn tgn(ds, models::TgnConfig{16, 16, 2, 11});
    cache::DeviceCacheConfig cache_config;
    cache_config.capacity_bytes = ds.NumNodes() * tgn.CacheRowBytes();
    serve::ModelSession session(tgn, sim::ExecMode::kHybrid, 4, cache_config);

    // Timestamp-only arrivals carry no node ids: the cache cannot resolve
    // hits, but the state movement must still be charged (all-miss).
    const auto arrivals = serve::PoissonArrivals(2000.0, 64, 7);
    serve::TimeoutPolicy policy(16, 3000.0);
    serve::ServerOptions options;
    const serve::ServingReport report =
        serve::Serve(session, policy, arrivals, options);
    EXPECT_EQ(report.cache_stats.lookups, 0);
    EXPECT_GT(report.h2d_bytes, 0);
}

}  // namespace
}  // namespace dgnn
