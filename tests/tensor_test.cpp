// Unit tests for the tensor substrate: Shape and Tensor semantics.

#include <gtest/gtest.h>

#include "tensor/tensor.hpp"

namespace dgnn {
namespace {

TEST(ShapeTest, RankAndElements)
{
    const Shape s({3, 4});
    EXPECT_EQ(s.Rank(), 2);
    EXPECT_EQ(s.NumElements(), 12);
    EXPECT_EQ(s.Dim(0), 3);
    EXPECT_EQ(s.Dim(1), 4);
}

TEST(ShapeTest, NegativeAxisCountsFromBack)
{
    const Shape s({2, 5, 7});
    EXPECT_EQ(s.Dim(-1), 7);
    EXPECT_EQ(s.Dim(-2), 5);
    EXPECT_EQ(s.Dim(-3), 2);
}

TEST(ShapeTest, OutOfRangeAxisThrows)
{
    const Shape s({2, 2});
    EXPECT_THROW(s.Dim(2), Error);
    EXPECT_THROW(s.Dim(-3), Error);
}

TEST(ShapeTest, ScalarShape)
{
    const Shape s({});
    EXPECT_EQ(s.Rank(), 0);
    EXPECT_EQ(s.NumElements(), 1);
}

TEST(ShapeTest, ZeroDimension)
{
    const Shape s({0, 5});
    EXPECT_EQ(s.NumElements(), 0);
}

TEST(ShapeTest, NegativeDimensionThrows)
{
    EXPECT_THROW(Shape({-1, 2}), Error);
}

TEST(ShapeTest, TooManyDimensionsThrows)
{
    EXPECT_THROW(Shape({1, 2, 3, 4, 5}), Error);
}

TEST(ShapeTest, EqualityAndToString)
{
    EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
    EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
    EXPECT_EQ(Shape({2, 3}).ToString(), "[2, 3]");
}

TEST(TensorTest, ZeroInitialized)
{
    const Tensor t(Shape({2, 3}));
    EXPECT_EQ(t.NumElements(), 6);
    for (int64_t i = 0; i < t.NumElements(); ++i) {
        EXPECT_EQ(t.At(i), 0.0f);
    }
}

TEST(TensorTest, FillConstructor)
{
    const Tensor t(Shape({4}), 2.5f);
    for (int64_t i = 0; i < 4; ++i) {
        EXPECT_EQ(t.At(i), 2.5f);
    }
}

TEST(TensorTest, ValueConstructorChecksCount)
{
    EXPECT_NO_THROW(Tensor(Shape({2, 2}), {1.0f, 2.0f, 3.0f, 4.0f}));
    EXPECT_THROW(Tensor(Shape({2, 2}), {1.0f, 2.0f}), Error);
}

TEST(TensorTest, FromVector)
{
    const Tensor t = Tensor::FromVector({1.0f, 2.0f, 3.0f});
    EXPECT_EQ(t.Rank(), 1);
    EXPECT_EQ(t.Dim(0), 3);
    EXPECT_EQ(t.At(2), 3.0f);
}

TEST(TensorTest, Eye)
{
    const Tensor t = Tensor::Eye(3);
    for (int64_t i = 0; i < 3; ++i) {
        for (int64_t j = 0; j < 3; ++j) {
            EXPECT_EQ(t.At(i, j), i == j ? 1.0f : 0.0f);
        }
    }
}

TEST(TensorTest, TwoDimAccessRowMajor)
{
    Tensor t(Shape({2, 3}));
    t.At(1, 2) = 7.0f;
    EXPECT_EQ(t.At(5), 7.0f);  // row-major flat position
}

TEST(TensorTest, ThreeDimAccess)
{
    Tensor t(Shape({2, 3, 4}));
    t.At(1, 2, 3) = 9.0f;
    EXPECT_EQ(t.At(1 * 12 + 2 * 4 + 3), 9.0f);
}

TEST(TensorTest, BoundsChecking)
{
    Tensor t(Shape({2, 2}));
    EXPECT_THROW(t.At(4), Error);
    EXPECT_THROW(t.At(2, 0), Error);
    EXPECT_THROW(t.At(0, 2), Error);
    EXPECT_THROW(t.At(-1), Error);
}

TEST(TensorTest, WrongRankAccessThrows)
{
    Tensor t(Shape({4}));
    EXPECT_THROW(t.At(0, 0), Error);
    EXPECT_THROW(t.At(0, 0, 0), Error);
}

TEST(TensorTest, ReshapePreservesData)
{
    Tensor t = Tensor::FromVector({1, 2, 3, 4, 5, 6});
    const Tensor r = t.Reshape(Shape({2, 3}));
    EXPECT_EQ(r.At(0, 0), 1.0f);
    EXPECT_EQ(r.At(1, 2), 6.0f);
}

TEST(TensorTest, ReshapeWrongCountThrows)
{
    Tensor t(Shape({4}));
    EXPECT_THROW(t.Reshape(Shape({5})), Error);
}

TEST(TensorTest, RowAndSetRow)
{
    Tensor t(Shape({3, 2}));
    t.SetRow(1, Tensor::FromVector({5.0f, 6.0f}));
    const Tensor r = t.Row(1);
    EXPECT_EQ(r.At(0), 5.0f);
    EXPECT_EQ(r.At(1), 6.0f);
    EXPECT_EQ(t.Row(0).At(0), 0.0f);
}

TEST(TensorTest, SetRowWrongWidthThrows)
{
    Tensor t(Shape({3, 2}));
    EXPECT_THROW(t.SetRow(0, Tensor::FromVector({1.0f})), Error);
    EXPECT_THROW(t.SetRow(3, Tensor::FromVector({1.0f, 2.0f})), Error);
}

TEST(TensorTest, RowSlice)
{
    Tensor t = Tensor::FromVector({1, 2, 3, 4, 5, 6}).Reshape(Shape({3, 2}));
    const Tensor s = t.RowSlice(1, 3);
    EXPECT_EQ(s.Dim(0), 2);
    EXPECT_EQ(s.At(0, 0), 3.0f);
    EXPECT_EQ(s.At(1, 1), 6.0f);
    EXPECT_THROW(t.RowSlice(2, 1), Error);
    EXPECT_THROW(t.RowSlice(0, 4), Error);
}

TEST(TensorTest, SumMeanAbsMax)
{
    const Tensor t = Tensor::FromVector({-3.0f, 1.0f, 2.0f});
    EXPECT_DOUBLE_EQ(t.Sum(), 0.0);
    EXPECT_DOUBLE_EQ(t.Mean(), 0.0);
    EXPECT_EQ(t.AbsMax(), 3.0f);
}

TEST(TensorTest, MeanOfEmptyThrows)
{
    const Tensor t(Shape({0}));
    EXPECT_THROW(t.Mean(), Error);
}

TEST(TensorTest, AllFinite)
{
    Tensor t = Tensor::FromVector({1.0f, 2.0f});
    EXPECT_TRUE(t.AllFinite());
    t.At(0) = std::numeric_limits<float>::infinity();
    EXPECT_FALSE(t.AllFinite());
    t.At(0) = std::numeric_limits<float>::quiet_NaN();
    EXPECT_FALSE(t.AllFinite());
}

TEST(TensorTest, FillOverwrites)
{
    Tensor t(Shape({2, 2}), 1.0f);
    t.Fill(4.0f);
    EXPECT_EQ(t.Sum(), 16.0);
}

TEST(TensorTest, NumBytes)
{
    const Tensor t(Shape({3, 5}));
    EXPECT_EQ(t.NumBytes(), 3 * 5 * 4);
}

TEST(TensorTest, ToStringTruncates)
{
    const Tensor t(Shape({100}), 1.0f);
    const std::string s = t.ToString(4);
    EXPECT_NE(s.find("..."), std::string::npos);
}

TEST(TensorTest, DefaultConstructedIsEmpty)
{
    const Tensor t;
    EXPECT_TRUE(t.Empty());
    EXPECT_EQ(t.NumElements(), 0);
}

/// Property sweep: reshape roundtrip preserves sum for assorted shapes.
class TensorReshapeProperty : public ::testing::TestWithParam<int64_t> {};

TEST_P(TensorReshapeProperty, ReshapeRoundTripPreservesSum)
{
    const int64_t n = GetParam();
    Tensor t(Shape({n, 4}));
    for (int64_t i = 0; i < t.NumElements(); ++i) {
        t.At(i) = static_cast<float>(i % 17) - 8.0f;
    }
    const double before = t.Sum();
    const Tensor r = t.Reshape(Shape({4, n})).Reshape(Shape({n * 4}));
    EXPECT_DOUBLE_EQ(r.Sum(), before);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TensorReshapeProperty,
                         ::testing::Values(1, 2, 3, 8, 17, 64, 129));

}  // namespace
}  // namespace dgnn
