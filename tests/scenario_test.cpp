// Tests for the adversarial scenario subsystem: seed determinism of every
// generator (the property the committed gauntlet outputs and the
// BENCH_*.json trajectory depend on), the statistical signatures each
// regime must show (burstiness, rate peaks, locality), the access-shaper
// regimes, the scenario registry, and the BenchJsonWriter's stable
// serialization.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/bench_json_writer.hpp"
#include "data/temporal_interactions.hpp"
#include "scenario/scenario.hpp"
#include "support/check.hpp"

namespace dgnn::scenario {
namespace {

data::InteractionDataset
TinyInteractions()
{
    data::InteractionSpec spec;
    spec.name = "tiny";
    spec.num_users = 24;
    spec.num_items = 8;
    spec.num_events = 300;
    spec.edge_feature_dim = 4;
    spec.seed = 5;
    return data::GenerateInteractions(spec);
}

void
ExpectSameRequests(const std::vector<serve::Request>& a,
                   const std::vector<serve::Request>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].arrival_us, b[i].arrival_us);  // bit-identical
        EXPECT_EQ(a[i].src, b[i].src);
        EXPECT_EQ(a[i].dst, b[i].dst);
    }
}

bool
SameEndpoints(const std::vector<serve::Request>& a,
              const std::vector<serve::Request>& b)
{
    if (a.size() != b.size()) {
        return false;
    }
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].src != b[i].src || a[i].dst != b[i].dst) {
            return false;
        }
    }
    return true;
}

// ------------------------------------------------------- arrival patterns

TEST(ArrivalPatternsTest, DiurnalIsSeedDeterministicSortedAndCyclic)
{
    DiurnalSpec spec;
    spec.base_qps = 2000.0;
    spec.peak_ratio = 6.0;
    spec.period_s = 0.5;
    spec.seed = 11;

    const auto a = DiurnalArrivals(spec, 2000);
    const auto b = DiurnalArrivals(spec, 2000);
    ASSERT_EQ(a.size(), 2000u);
    EXPECT_EQ(a, b);  // bit-identical for a fixed seed
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));

    spec.seed = 12;
    EXPECT_NE(a, DiurnalArrivals(spec, 2000));  // seed matters

    // The rate cycle must be visible: windowed peak rate well above the
    // mean (a homogeneous Poisson at this n stays near 1).
    const ArrivalStats stats = CharacterizeArrivals(a, 50000.0);
    EXPECT_GT(stats.peak_to_mean, 1.3);
}

TEST(ArrivalPatternsTest, FlashCrowdIsSeedDeterministicWithDenseWindow)
{
    FlashCrowdSpec spec;
    spec.base_qps = 1000.0;
    spec.spike_factor = 16.0;
    spec.spike_start_s = 0.3;
    spec.spike_duration_s = 0.2;
    spec.seed = 21;

    const auto a = FlashCrowdArrivals(spec, 1500);
    const auto b = FlashCrowdArrivals(spec, 1500);
    EXPECT_EQ(a, b);
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));

    spec.seed = 22;
    EXPECT_NE(a, FlashCrowdArrivals(spec, 1500));

    // The crowd window concentrates arrivals: gaps are far more variable
    // than Poisson (CV 1) and the windowed peak dwarfs the mean.
    const ArrivalStats stats = CharacterizeArrivals(a, 50000.0);
    EXPECT_GT(stats.cv_gap, 1.3);
    EXPECT_GT(stats.peak_to_mean, 3.0);
}

TEST(ArrivalPatternsTest, MmppIsSeedDeterministicAndBursty)
{
    MmppSpec spec;
    spec.on_qps = 5000.0;
    spec.off_qps = 200.0;
    spec.mean_on_s = 0.05;
    spec.mean_off_s = 0.2;
    spec.seed = 31;

    const auto a = MmppArrivals(spec, 2000);
    const auto b = MmppArrivals(spec, 2000);
    EXPECT_EQ(a, b);
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));

    spec.seed = 32;
    EXPECT_NE(a, MmppArrivals(spec, 2000));

    // ON/OFF modulation makes inter-arrival gaps over-dispersed.
    const ArrivalStats stats = CharacterizeArrivals(a, 50000.0);
    EXPECT_GT(stats.cv_gap, 1.2);
}

TEST(ArrivalPatternsTest, InvalidSpecsThrow)
{
    DiurnalSpec diurnal;
    diurnal.peak_ratio = 0.5;  // < 1
    EXPECT_THROW(DiurnalArrivals(diurnal, 10), Error);

    FlashCrowdSpec flash;
    flash.base_qps = 0.0;
    EXPECT_THROW(FlashCrowdArrivals(flash, 10), Error);

    MmppSpec mmpp;
    mmpp.mean_on_s = 0.0;
    EXPECT_THROW(MmppArrivals(mmpp, 10), Error);
}

TEST(ArrivalPatternsTest, CharacterizeUniformSpacingIsFlat)
{
    std::vector<sim::SimTime> uniform;
    for (int i = 0; i < 100; ++i) {
        uniform.push_back(1000.0 * i);
    }
    const ArrivalStats stats = CharacterizeArrivals(uniform, 10000.0);
    EXPECT_NEAR(stats.cv_gap, 0.0, 1e-9);
    EXPECT_NEAR(stats.peak_to_mean, 1.0, 0.1);
    // Degenerate inputs do not blow up.
    EXPECT_EQ(CharacterizeArrivals({}, 1000.0).cv_gap, 0.0);
    EXPECT_EQ(CharacterizeArrivals({5.0}, 1000.0).peak_to_mean, 0.0);
}

// -------------------------------------------------------- access patterns

std::vector<serve::Request>
TimedRequests(int64_t n)
{
    std::vector<serve::Request> requests;
    for (int64_t i = 0; i < n; ++i) {
        requests.push_back(serve::Request{i, static_cast<double>(i) * 100.0});
    }
    return requests;
}

TEST(AccessPatternsTest, DriftingHotSetIsSeedDeterministicAndDrifts)
{
    DriftingHotSetSpec spec;
    spec.num_nodes = 1000;
    spec.hot_nodes = 50;
    spec.hot_fraction = 0.9;
    spec.drift_every = 200;
    spec.drift_stride = 50;
    spec.seed = 41;

    auto a = TimedRequests(800);
    auto b = TimedRequests(800);
    AssignDriftingHotSet(a, spec);
    AssignDriftingHotSet(b, spec);
    EXPECT_TRUE(SameEndpoints(a, b));

    auto c = TimedRequests(800);
    spec.seed = 42;
    AssignDriftingHotSet(c, spec);
    EXPECT_FALSE(SameEndpoints(a, c));
    spec.seed = 41;

    auto in_window = [&](const serve::Request& r, int64_t lo, int64_t hi) {
        return (r.src >= lo && r.src < hi) && (r.dst >= lo && r.dst < hi);
    };
    // First interval: traffic concentrates on hot set [0, 50); after the
    // first rotation the hot set has moved to [50, 100).
    int64_t first_hot = 0;
    int64_t second_hot = 0;
    for (int64_t i = 0; i < 200; ++i) {
        first_hot += in_window(a[static_cast<size_t>(i)], 0, 50) ? 1 : 0;
        second_hot += in_window(a[static_cast<size_t>(200 + i)], 50, 100) ? 1 : 0;
    }
    EXPECT_GT(first_hot, 120);   // ~0.81 * 200 expected (both endpoints hot)
    EXPECT_GT(second_hot, 120);  // the set DID drift
    for (const serve::Request& r : a) {
        EXPECT_GE(r.src, 0);
        EXPECT_LT(r.src, spec.num_nodes);
        EXPECT_GE(r.dst, 0);
        EXPECT_LT(r.dst, spec.num_nodes);
    }
}

TEST(AccessPatternsTest, PreferentialBurstsHammerAStarNode)
{
    PreferentialBurstSpec spec;
    spec.num_nodes = 500;
    spec.attach_bias = 0.8;
    spec.burst_every = 300;
    spec.burst_len = 40;
    spec.seed = 51;

    auto a = TimedRequests(600);
    auto b = TimedRequests(600);
    AssignPreferentialBursts(a, spec);
    AssignPreferentialBursts(b, spec);
    EXPECT_TRUE(SameEndpoints(a, b));

    auto c = TimedRequests(600);
    spec.seed = 52;
    AssignPreferentialBursts(c, spec);
    EXPECT_FALSE(SameEndpoints(a, c));

    // Every request of a burst window shares the same (fresh) star src.
    for (int64_t start : {int64_t{0}, int64_t{300}}) {
        const int64_t star = a[static_cast<size_t>(start)].src;
        for (int64_t i = start; i < start + 40; ++i) {
            EXPECT_EQ(a[static_cast<size_t>(i)].src, star);
        }
    }
    // Preferential attachment concentrates endpoints: far fewer unique
    // nodes than uniform sampling would touch (~1200 draws over 500 nodes
    // uniformly covers ~450).
    const AccessStats stats = CharacterizeAccesses(a);
    EXPECT_LT(stats.unique_nodes, 350);
    EXPECT_GT(stats.reuse_fraction, 0.5);
}

TEST(AccessPatternsTest, CommunityChurnMovesTheActiveCommunity)
{
    CommunityChurnSpec spec;
    spec.num_communities = 10;
    spec.community_size = 100;
    spec.in_community = 0.95;
    spec.churn_every = 250;
    spec.seed = 61;

    auto a = TimedRequests(1000);
    auto b = TimedRequests(1000);
    AssignCommunityChurn(a, spec);
    AssignCommunityChurn(b, spec);
    EXPECT_TRUE(SameEndpoints(a, b));

    auto c = TimedRequests(1000);
    spec.seed = 62;
    AssignCommunityChurn(c, spec);
    EXPECT_FALSE(SameEndpoints(a, c));

    // Interval 0 concentrates in community 0 ([0, 100)); the churn at
    // request 250 must move the bulk of traffic OUT of community 0.
    auto in_first_community = [&](const serve::Request& r) {
        return r.src < 100 && r.dst < 100;
    };
    int64_t first = 0;
    int64_t second = 0;
    for (int64_t i = 0; i < 250; ++i) {
        first += in_first_community(a[static_cast<size_t>(i)]) ? 1 : 0;
        second += in_first_community(a[static_cast<size_t>(250 + i)]) ? 1 : 0;
    }
    EXPECT_GT(first, 200);  // ~0.90 * 250 expected in community 0
    EXPECT_LT(second, 50);  // the active community churned away
}

// ------------------------------------------------- scenarios and registry

TEST(ScenarioTest, EveryRegistryScenarioIsSeedDeterministic)
{
    const auto dataset = TinyInteractions();
    const auto scenarios =
        GauntletScenarios(2000.0, 512, dataset.NumNodes(), 77);
    ASSERT_GE(scenarios.size(), 5u);

    for (const Scenario& s : scenarios) {
        SCOPED_TRACE(s.name);
        const auto a = GenerateRequests(s, dataset, 512);
        const auto b = GenerateRequests(s, dataset, 512);
        ExpectSameRequests(a, b);  // guards the BENCH_*.json trajectory

        ASSERT_EQ(a.size(), 512u);
        EXPECT_TRUE(std::is_sorted(
            a.begin(), a.end(), [](const serve::Request& x,
                                   const serve::Request& y) {
                return x.arrival_us < y.arrival_us;
            }));
        for (size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].id, static_cast<int64_t>(i));
            EXPECT_GE(a[i].src, 0);  // every gauntlet scenario is node-aware
            EXPECT_GE(a[i].dst, 0);
        }
    }
}

TEST(ScenarioTest, DifferentRegistrySeedsDiffer)
{
    const auto dataset = TinyInteractions();
    const auto s77 = GauntletScenarios(2000.0, 256, dataset.NumNodes(), 77);
    const auto s78 = GauntletScenarios(2000.0, 256, dataset.NumNodes(), 78);
    ASSERT_EQ(s77.size(), s78.size());
    // Arrival times must differ under a different seed for every scenario.
    for (size_t i = 0; i < s77.size(); ++i) {
        SCOPED_TRACE(s77[i].name);
        const auto a = GenerateRequests(s77[i], dataset, 256);
        const auto b = GenerateRequests(s78[i], dataset, 256);
        bool same_times = true;
        for (size_t j = 0; j < a.size(); ++j) {
            same_times = same_times && a[j].arrival_us == b[j].arrival_us;
        }
        EXPECT_FALSE(same_times);
    }
}

TEST(ScenarioTest, ScenarioSourceMatchesGenerateRequests)
{
    const auto dataset = TinyInteractions();
    const auto scenarios =
        GauntletScenarios(2000.0, 128, dataset.NumNodes(), 7);
    const Scenario& s = scenarios.front();
    const ScenarioSource source(s, dataset);
    EXPECT_EQ(source.Name(), s.name);
    ExpectSameRequests(source.Generate(128),
                       GenerateRequests(s, dataset, 128));
    // The ArrivalSource contract: repeated Generate calls are identical.
    ExpectSameRequests(source.Generate(64), source.Generate(64));
}

TEST(ScenarioTest, RegistryNamesAreUniqueAndStable)
{
    const auto dataset = TinyInteractions();
    const auto scenarios =
        GauntletScenarios(2000.0, 256, dataset.NumNodes(), 1);
    std::vector<std::string> names;
    for (const Scenario& s : scenarios) {
        names.push_back(s.name);
    }
    auto sorted = names;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                sorted.end());
    // The gauntlet's regression gate keys records by these names — renames
    // break trajectory comparisons, so treat this list as an API.
    EXPECT_EQ(names.front(), "poisson/recurrent");
    EXPECT_TRUE(std::find(names.begin(), names.end(),
                          "poisson/hotset-drift") != names.end());
}

// ----------------------------------------------------- bench JSON writer

TEST(BenchJsonWriterTest, EmitsStableSchemaAndEscapes)
{
    core::BenchJsonWriter json("unit_test", 3);
    json.BeginRecord();
    json.Field("name", std::string("a\"b\\c\nd"));
    json.Field("count", int64_t{42});
    json.Field("ratio", 0.123456, 4);
    json.BeginRecord();
    json.Field("name", "second");
    EXPECT_EQ(json.RecordCount(), 2);
    EXPECT_EQ(json.ToString(),
              "{\"bench\": \"unit_test\", \"schema\": 3, \"records\": [\n"
              "  {\"name\": \"a\\\"b\\\\c\\nd\", \"count\": 42, "
              "\"ratio\": 0.1235},\n"
              "  {\"name\": \"second\"}\n"
              "]}\n");

    core::BenchJsonWriter empty("empty");
    EXPECT_EQ(empty.ToString(),
              "{\"bench\": \"empty\", \"schema\": 1, \"records\": []}\n");

    EXPECT_THROW(core::BenchJsonWriter(""), Error);
    core::BenchJsonWriter no_record("x");
    EXPECT_THROW(no_record.Field("k", int64_t{1}), Error);
}

}  // namespace
}  // namespace dgnn::scenario
