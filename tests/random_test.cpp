// Tests for the deterministic RNG and tensor initializers.

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/random.hpp"

namespace dgnn {
namespace {

TEST(RngTest, SameSeedSameSequence)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.Uniform(), b.Uniform());
    }
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 50; ++i) {
        if (a.Uniform() == b.Uniform()) {
            ++same;
        }
    }
    EXPECT_LT(same, 5);
}

TEST(RngTest, UniformRespectsRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const float v = rng.Uniform(-2.0f, 3.0f);
        EXPECT_GE(v, -2.0f);
        EXPECT_LT(v, 3.0f);
    }
}

TEST(RngTest, UniformIntInclusive)
{
    Rng rng(8);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.UniformInt(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
    EXPECT_THROW(rng.UniformInt(3, 2), Error);
}

TEST(RngTest, NormalMoments)
{
    Rng rng(9);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.Normal(1.0f, 2.0f);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 1.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ExponentialPositiveWithMean)
{
    Rng rng(10);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.Exponential(2.0);
        EXPECT_GT(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.05);
    EXPECT_THROW(rng.Exponential(0.0), Error);
}

TEST(RngTest, BernoulliFrequency)
{
    Rng rng(11);
    int heads = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        heads += rng.Bernoulli(0.3) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.03);
}

TEST(RngTest, ForkProducesIndependentStream)
{
    Rng a(12);
    Rng child = a.Fork();
    // Forked generator should not mirror the parent.
    int same = 0;
    for (int i = 0; i < 50; ++i) {
        if (a.Uniform() == child.Uniform()) {
            ++same;
        }
    }
    EXPECT_LT(same, 5);
}

TEST(InitTest, UniformTensorWithinBounds)
{
    Rng rng(13);
    const Tensor t = init::Uniform(Shape({20, 20}), rng, -0.5f, 0.5f);
    EXPECT_GE(t.NumElements(), 1);
    for (int64_t i = 0; i < t.NumElements(); ++i) {
        EXPECT_GE(t.At(i), -0.5f);
        EXPECT_LT(t.At(i), 0.5f);
    }
}

TEST(InitTest, NormalTensorFiniteWithSpread)
{
    Rng rng(14);
    const Tensor t = init::Normal(Shape({50, 10}), rng, 0.2f);
    EXPECT_TRUE(t.AllFinite());
    EXPECT_GT(t.AbsMax(), 0.0f);
    EXPECT_LT(std::fabs(t.Mean()), 0.05);
}

TEST(InitTest, XavierBound)
{
    Rng rng(15);
    const int64_t fan_out = 30;
    const int64_t fan_in = 20;
    const Tensor w = init::XavierUniform(fan_out, fan_in, rng);
    EXPECT_EQ(w.GetShape(), Shape({fan_out, fan_in}));
    const float bound = std::sqrt(6.0f / (fan_in + fan_out));
    EXPECT_LE(w.AbsMax(), bound);
    EXPECT_THROW(init::XavierUniform(0, 5, rng), Error);
}

TEST(InitTest, DeterministicAcrossRuns)
{
    Rng a(99);
    Rng b(99);
    const Tensor ta = init::Normal(Shape({8, 8}), a);
    const Tensor tb = init::Normal(Shape({8, 8}), b);
    for (int64_t i = 0; i < ta.NumElements(); ++i) {
        EXPECT_EQ(ta.At(i), tb.At(i));
    }
}

}  // namespace
}  // namespace dgnn
